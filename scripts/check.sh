#!/usr/bin/env bash
# Tier-1 verification: configure + build + full ctest + the loopback
# integration check (psc_serve/psc_client round-trip), then rebuild the
# align kernels plus the store/service/net layers under ASan/UBSan
# (PSC_ENABLE_SANITIZERS) and rerun their tests, so the SIMD kernel's
# lane loads/stores, the mmap-backed index views (including the
# corrupted-file rejection paths), and the wire-frame parsers (including
# the malformed-frame rejection paths) are memory-checked.
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."
jobs=${1:-$(nproc)}

echo "== tier 1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

echo "== tier 1: step-3 kernel shoot-out bench builds =="
cmake --build build -j "$jobs" --target step3_kernels

echo "== tier 1: board-residency bench builds =="
cmake --build build -j "$jobs" --target board_residency

echo "== tier 1: loopback integration check =="
scripts/loopback_check.sh build

echo "== tier 1: sharding equivalence check =="
scripts/shard_check.sh build

echo "== tier 1: cluster fan-out check (router vs unsharded) =="
scripts/cluster_check.sh build

echo "== tier 1: multi-tenant check (quotas + fair scheduler) =="
scripts/tenant_check.sh build

echo "== tier 1: live-ingest check (append+refresh vs full rebuild) =="
scripts/ingest_check.sh build

echo "== sanitizers: align/core/rasc/store/service/net/cluster tests under ASan/UBSan =="
cmake -B build-asan -S . \
  -DPSC_ENABLE_SANITIZERS=ON \
  -DPSC_BUILD_BENCH=OFF \
  -DPSC_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-asan -j "$jobs" --target align_test core_test \
  rasc_test store_test service_test net_test cluster_test
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir build-asan --output-on-failure \
  -R '^(align|core|rasc|store|service|net|cluster)_test$'

echo "== sanitizers: board cache + scheduler focused run under ASan =="
# The board cache is shared mutable state across worker passes and the
# scheduler reorders the worker's own queue; keep both memory-checked
# even if the suite regexes above are reshuffled.
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
  ./build-asan/tests/rasc_test --gtest_filter='BoardCache.*'
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
  ./build-asan/tests/service_test --gtest_filter='BoardScheduler.*'

echo "== sanitizers: step-3 kernel equality focused run under ASan =="
# Redundant with the suite runs above on purpose: the bit-identity
# property (every kernel tier x worker count x barrier/overlap path)
# must stay memory-checked even if the suites above are reshuffled.
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
  ./build-asan/tests/align_test --gtest_filter='GappedSimd.*'
ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=halt_on_error=1 \
  ./build-asan/tests/core_test --gtest_filter='Step3Kernels.*'

echo "== sanitizers: executor/overlap/service/cluster tests under TSan =="
cmake -B build-tsan -S . \
  -DPSC_ENABLE_SANITIZERS=thread \
  -DPSC_BUILD_BENCH=OFF \
  -DPSC_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j "$jobs" --target util_test core_test \
  service_test cluster_test
TSAN_OPTIONS="halt_on_error=1 suppressions=$PWD/scripts/tsan.supp" \
  ctest --test-dir build-tsan --output-on-failure \
  -R '^(util|core|service|cluster)_test$'

echo "== sanitizers: step-3 kernel equality (incl. overlap path) under TSan =="
TSAN_OPTIONS="halt_on_error=1 suppressions=$PWD/scripts/tsan.supp" \
  ./build-tsan/tests/core_test --gtest_filter='Step3Kernels.*'

echo "== sanitizers: board scheduler byte-identity under TSan =="
# The affinity scheduler changes which thread touches the board cache
# when; the byte-identity property tests drive the full worker loop.
TSAN_OPTIONS="halt_on_error=1 suppressions=$PWD/scripts/tsan.supp" \
  ./build-tsan/tests/service_test --gtest_filter='BoardScheduler.*'

echo "== all checks passed =="
