#!/usr/bin/env bash
# Multi-tenant integration check: one psc_serve, several tenants.
#
#  1. Baseline: a plain (no tenancy flags) server answers a query;
#     the bytes are the reference.
#  2. The same store served with --tenant-config + --fair-scheduler:
#     every tenant's ADMITTED reply must be byte-identical to the
#     baseline (`cmp` is the whole comparison) -- quotas and fairness
#     may reorder or reject, never rewrite.
#  3. Per-tenant accounting is visible in --stats (one row per tenant).
#  4. A qps-capped tenant hammering with --repeat gets typed
#     quota-exceeded rejections that are COUNTED, not fatal: some
#     submissions still land, and the client's post-rejection ping
#     proves the connection survived.
#
# Usage: scripts/tenant_check.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
build=${1:-build}

index="$build/tools/psc_index"
serve="$build/tools/psc_serve"
client="$build/tools/psc_client"
for binary in "$index" "$serve" "$client"; do
  if [[ ! -x $binary ]]; then
    echo "tenant_check: missing $binary (build the default targets first)" >&2
    exit 1
  fi
done

work=$(mktemp -d)
server_pid=""
cleanup() {
  [[ -n $server_pid ]] && kill "$server_pid" 2>/dev/null || true
  [[ -n $server_pid ]] && wait "$server_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

stop_server() {
  kill "$server_pid" 2>/dev/null || true
  wait "$server_pid" 2>/dev/null || true
  server_pid=""
}

start_server() {  # start_server [extra flags...]
  rm -f "$work/port.txt"
  "$serve" --bank-root="$work" --port=0 --port-file="$work/port.txt" \
    --backend=host-parallel "$@" &
  server_pid=$!
  for _ in $(seq 1 100); do
    [[ -s $work/port.txt ]] && break
    sleep 0.1
  done
  [[ -s $work/port.txt ]] || { echo "server never wrote its port" >&2; exit 1; }
  port=$(cat "$work/port.txt")
}

# --- a tiny bank + queries (deterministic, checked-in inline) -----------
cat > "$work/bank.fa" <<'EOF'
>ref0
MKVLITGAGSGIGLELAKQFAREGYKVAVTDINEEKLQELKEELGDNVIGIVGDVSSEED
VKRAVAEAVERFGRIDVLVNNAGITRDNLLMRMKEEEWDDVIDTNLKGVFNCTQAVSRIM
>ref1
MSTNPKPQRKTKRNTNRRPQDVKFPGGGQIVGGVYLLPRRGPRLGVRATRKTSERSQPRG
RRQPIPKARRPEGRTWAQPGYPWPLYGNEGCGWAGWLLSPRGSRPSWGPTDPRRRSRNLG
>ref2
MAHHHHHHMGTLEAQTQGPGSMSDKIIHLTDDSFDTDVLKADGAILVDFWAEWCGPCKMI
APILDEIADEYQGKLTVAKLNIDQNPGTAPKYGIRGIPTLLLFKNGEVAATKVGALSKGQ
EOF

cat > "$work/queries.fa" <<'EOF'
>q0_ref0_like
MKVLITGAGSGIGLELAKQFAREGYKVAVTDINEEKLQELKEELGDNVIGIVGDVSSEED
>q1_ref2_like
APILDEIADEYQGKLTVAKLNIDQNPGTAPKYGIRGIPTLLLFKNGEVAATKVGALSKGQ
EOF

cat > "$work/tenants.conf" <<'EOF'
# fairness weights plus one deliberately throttled tenant
tenant alice weight=1
tenant bob weight=4
tenant capped qps=1
EOF

echo "== tenant: building the store =="
"$index" --input="$work/bank.fa" --kind=protein --out="$work/bank"

echo "== tenant: single-tenant baseline reply =="
start_server
"$client" --port="$port" --bank=bank --query="$work/queries.fa" \
  --output-binary > "$work/baseline.bin"
stop_server

echo "== tenant: two identified tenants, fair scheduler on =="
start_server --tenant-config="$work/tenants.conf" --fair-scheduler
"$client" --port="$port" --ping
for tenant in alice bob; do
  "$client" --port="$port" --tenant="$tenant" --bank=bank \
    --query="$work/queries.fa" --output-binary > "$work/$tenant.bin"
  cmp "$work/baseline.bin" "$work/$tenant.bin"
done
echo "   admitted replies byte-identical to the single-tenant run"

echo "== tenant: per-tenant accounting in --stats =="
"$client" --port="$port" --stats > "$work/stats.txt"
grep -q "^fair_scheduler=1" "$work/stats.txt"
grep -q "^tenant=alice .*admitted=1 " "$work/stats.txt"
grep -q "^tenant=bob .*admitted=1 " "$work/stats.txt"
grep -q "^tenant=bob weight=4" "$work/stats.txt"

echo "== tenant: over-quota gets typed rejections, connection survives =="
# 8 submissions against a 1 qps bucket: at least one lands (the burst
# token), several are rejected, and the client pings afterwards -- a
# rejection that killed the connection would fail the run here.
"$client" --port="$port" --tenant=capped --repeat=8 --bank=bank \
  --query="$work/queries.fa" --output-binary \
  > "$work/capped.bin" 2> "$work/capped.err"
cmp "$work/baseline.bin" "$work/capped.bin"
summary=$(grep "^# repeat summary:" "$work/capped.err")
echo "   $summary"
admitted=$(sed -n 's/.*admitted=\([0-9]*\).*/\1/p' <<< "$summary")
rejected=$(sed -n 's/.*rejected=\([0-9]*\).*/\1/p' <<< "$summary")
[[ $admitted -ge 1 ]] || { echo "tenant_check: no submission admitted" >&2; exit 1; }
[[ $rejected -ge 1 ]] || { echo "tenant_check: qps cap never rejected" >&2; exit 1; }
"$client" --port="$port" --stats | grep -q "^tenant=capped .*rejected=$rejected "

echo "== tenant check passed =="
