#!/usr/bin/env bash
# Loopback integration check: start psc_serve over a prebuilt store, run
# psc_client queries against it, and require the remote reply to be
# bit-for-bit identical to an in-process psc_search over the same store
# (both sides emit the versioned match encoding via --output-binary, so
# `cmp` is the whole comparison). Then fire concurrent clients and
# require coalescing to be visible in the stats frame
# (batches < queries_completed).
#
# Usage: scripts/loopback_check.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
build=${1:-build}

index="$build/tools/psc_index"
serve="$build/tools/psc_serve"
client="$build/tools/psc_client"
search="$build/examples/psc_search"
for binary in "$index" "$serve" "$client" "$search"; do
  if [[ ! -x $binary ]]; then
    echo "loopback_check: missing $binary (build the default targets first)" >&2
    exit 1
  fi
done

work=$(mktemp -d)
server_pid=""
cleanup() {
  [[ -n $server_pid ]] && kill "$server_pid" 2>/dev/null || true
  [[ -n $server_pid ]] && wait "$server_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

# --- a tiny bank + queries (deterministic, checked-in inline) -----------
cat > "$work/bank.fa" <<'EOF'
>ref0
MKVLITGAGSGIGLELAKQFAREGYKVAVTDINEEKLQELKEELGDNVIGIVGDVSSEED
VKRAVAEAVERFGRIDVLVNNAGITRDNLLMRMKEEEWDDVIDTNLKGVFNCTQAVSRIM
>ref1
MSTNPKPQRKTKRNTNRRPQDVKFPGGGQIVGGVYLLPRRGPRLGVRATRKTSERSQPRG
RRQPIPKARRPEGRTWAQPGYPWPLYGNEGCGWAGWLLSPRGSRPSWGPTDPRRRSRNLG
>ref2
MAHHHHHHMGTLEAQTQGPGSMSDKIIHLTDDSFDTDVLKADGAILVDFWAEWCGPCKMI
APILDEIADEYQGKLTVAKLNIDQNPGTAPKYGIRGIPTLLLFKNGEVAATKVGALSKGQ
EOF

cat > "$work/queries.fa" <<'EOF'
>q0_ref0_like
MKVLITGAGSGIGLELAKQFAREGYKVAVTDINEEKLQELKEELGDNVIGIVGDVSSEED
>q1_ref2_like
APILDEIADEYQGKLTVAKLNIDQNPGTAPKYGIRGIPTLLLFKNGEVAATKVGALSKGQ
>q2_random
QWERTYIPASDFGHKLCVNMQWERTYIPASDFGHKLCVNMQWERTYIPASDFGHKLCVNM
EOF

echo "== loopback: building the store =="
"$index" --input="$work/bank.fa" --kind=protein --out="$work/bank"

echo "== loopback: in-process reference (psc_search --output-binary) =="
"$search" --subject-index="$work/bank" --query="$work/queries.fa" \
  --backend=host-parallel --output-binary > "$work/reference.bin"

echo "== loopback: starting psc_serve =="
"$serve" --bank-root="$work" --port=0 --port-file="$work/port.txt" \
  --backend=host-parallel &
server_pid=$!
for _ in $(seq 1 100); do
  [[ -s $work/port.txt ]] && break
  sleep 0.1
done
[[ -s $work/port.txt ]] || { echo "server never wrote its port" >&2; exit 1; }
port=$(cat "$work/port.txt")

"$client" --port="$port" --ping

echo "== loopback: remote query must be bit-identical =="
"$client" --port="$port" --bank=bank --query="$work/queries.fa" \
  --output-binary > "$work/remote.bin"
cmp "$work/reference.bin" "$work/remote.bin"
echo "   bit-for-bit OK ($(wc -c < "$work/remote.bin") bytes)"

echo "== loopback: concurrent clients must coalesce =="
coalesced=0
for round in 1 2 3 4 5; do
  pids=()
  for i in 1 2 3 4; do
    "$client" --port="$port" --bank=bank --query="$work/queries.fa" \
      --output-binary > "$work/concurrent_$i.bin" 2>/dev/null &
    pids+=($!)
  done
  for pid in "${pids[@]}"; do wait "$pid"; done
  for i in 1 2 3 4; do cmp "$work/reference.bin" "$work/concurrent_$i.bin"; done
  batches=$("$client" --port="$port" --stats | sed -n 's/^batches=//p')
  completed=$("$client" --port="$port" --stats | sed -n 's/^queries_completed=//p')
  if [[ $batches -lt $completed ]]; then
    coalesced=1
    echo "   round $round: $completed queries in $batches batches"
    break
  fi
done
if [[ $coalesced -ne 1 ]]; then
  echo "loopback_check: concurrent clients never coalesced" >&2
  exit 1
fi

echo "== loopback: typed errors on the wire =="
if "$client" --port="$port" --bank=no_such_bank --query="$work/queries.fa" \
    > /dev/null 2> "$work/err.txt"; then
  echo "loopback_check: expected a bank-not-found failure" >&2
  exit 1
fi
grep -q "bank-not-found" "$work/err.txt"

echo "== loopback check passed =="
