#!/usr/bin/env bash
# Sharding equivalence check: index the same bank unsharded and at
# several --shard-max-bytes caps, then require every sharded store to
# answer queries bit-for-bit identically to the unsharded one (both
# sides emit the versioned match encoding via --output-binary, so `cmp`
# is the whole comparison). The caps are chosen so the shard counts
# cover 1 (a one-shard manifest must degenerate cleanly), 2, and
# one-sequence-per-shard.
#
# Usage: scripts/shard_check.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
build=${1:-build}

index="$build/tools/psc_index"
search="$build/examples/psc_search"
for binary in "$index" "$search"; do
  if [[ ! -x $binary ]]; then
    echo "shard_check: missing $binary (build the default targets first)" >&2
    exit 1
  fi
done

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

# --- a tiny bank + queries (deterministic, checked-in inline) -----------
cat > "$work/bank.fa" <<'EOF'
>ref0
MKVLITGAGSGIGLELAKQFAREGYKVAVTDINEEKLQELKEELGDNVIGIVGDVSSEED
VKRAVAEAVERFGRIDVLVNNAGITRDNLLMRMKEEEWDDVIDTNLKGVFNCTQAVSRIM
>ref1
MSTNPKPQRKTKRNTNRRPQDVKFPGGGQIVGGVYLLPRRGPRLGVRATRKTSERSQPRG
RRQPIPKARRPEGRTWAQPGYPWPLYGNEGCGWAGWLLSPRGSRPSWGPTDPRRRSRNLG
>ref2
MAHHHHHHMGTLEAQTQGPGSMSDKIIHLTDDSFDTDVLKADGAILVDFWAEWCGPCKMI
APILDEIADEYQGKLTVAKLNIDQNPGTAPKYGIRGIPTLLLFKNGEVAATKVGALSKGQ
EOF

cat > "$work/queries.fa" <<'EOF'
>q0_ref0_like
MKVLITGAGSGIGLELAKQFAREGYKVAVTDINEEKLQELKEELGDNVIGIVGDVSSEED
>q1_ref2_like
APILDEIADEYQGKLTVAKLNIDQNPGTAPKYGIRGIPTLLLFKNGEVAATKVGALSKGQ
>q2_random
QWERTYIPASDFGHKLCVNMQWERTYIPASDFGHKLCVNMQWERTYIPASDFGHKLCVNM
EOF

echo "== shard: unsharded reference store =="
"$index" --input="$work/bank.fa" --kind=protein --out="$work/plain"
"$search" --subject-index="$work/plain" --query="$work/queries.fa" \
  --backend=host-parallel --output-binary > "$work/reference.bin"
echo "   reference: $(wc -c < "$work/reference.bin") bytes"

# Caps picked for the inline bank above (each record encodes to 132
# bytes): a huge cap collapses to one shard, 300 bytes splits after two
# sequences, and 1 byte forces every sequence into its own shard
# (oversized sequences get a private shard).
counts=()
for cap in 10000000 300 1; do
  prefix="$work/sharded_$cap"
  echo "== shard: --shard-max-bytes=$cap =="
  "$index" --input="$work/bank.fa" --kind=protein --out="$prefix" \
    --shard-max-bytes="$cap"
  [[ -f $prefix.pscman ]] || { echo "shard_check: no manifest for cap $cap" >&2; exit 1; }
  shards=$(ls "$prefix".shard*.pscbank | wc -l)
  counts+=("$shards")
  echo "   $shards shard(s)"
  "$search" --subject-index="$prefix" --query="$work/queries.fa" \
    --backend=host-parallel --output-binary > "$prefix.bin"
  cmp "$work/reference.bin" "$prefix.bin"
  echo "   bit-for-bit OK"
done

# The three caps must actually exercise three distinct shard counts,
# and the huge cap must degenerate to a single shard.
if [[ ${counts[0]} -ne 1 ]]; then
  echo "shard_check: huge cap produced ${counts[0]} shards, expected 1" >&2
  exit 1
fi
if [[ ${counts[0]} -eq ${counts[1]} || ${counts[1]} -eq ${counts[2]} ||
      ${counts[0]} -eq ${counts[2]} ]]; then
  echo "shard_check: caps did not produce distinct shard counts (${counts[*]})" >&2
  exit 1
fi

echo "== shard: --inspect reads the manifest =="
"$index" --inspect="$work/sharded_300" | tee "$work/inspect.txt"
grep -q "shard" "$work/inspect.txt"

echo "== shard check passed (counts: ${counts[*]}) =="
