#!/usr/bin/env bash
# Live-ingest equivalence check: build a sharded store from bank A and
# serve it (psc_serve behind psc_router with an '=all' claim), then
# append bank B with `psc_index --append` while both processes keep
# running. Before the refresh the servers must still answer from the
# pinned revision-1 generation; after `psc_client --refresh` both must
# answer bit-for-bit identically to a fresh full rebuild of A+B served
# cold (both sides emit the versioned match encoding via
# --output-binary, so `cmp` is the whole comparison). A final pass
# rebuilds A+B with --compress and requires the same bytes again, so the
# v3 LZSS cold-storage mode rides the same equivalence proof.
#
# Usage: scripts/ingest_check.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
build=${1:-build}

index="$build/tools/psc_index"
serve="$build/tools/psc_serve"
client="$build/tools/psc_client"
router="$build/tools/psc_router"
for binary in "$index" "$serve" "$client" "$router"; do
  if [[ ! -x $binary ]]; then
    echo "ingest_check: missing $binary (build the default targets first)" >&2
    exit 1
  fi
done

work=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
  for pid in "${pids[@]}"; do wait "$pid" 2>/dev/null || true; done
  rm -rf "$work"
}
trap cleanup EXIT

# --- bank A, the live-ingest delta B, and queries ----------------------
# q1 only matches a sequence in B: its results MUST change at refresh,
# so a server that silently keeps serving revision 1 cannot pass.
cat > "$work/bank_a.fa" <<'EOF'
>ref0
MKVLITGAGSGIGLELAKQFAREGYKVAVTDINEEKLQELKEELGDNVIGIVGDVSSEED
VKRAVAEAVERFGRIDVLVNNAGITRDNLLMRMKEEEWDDVIDTNLKGVFNCTQAVSRIM
>ref1
MSTNPKPQRKTKRNTNRRPQDVKFPGGGQIVGGVYLLPRRGPRLGVRATRKTSERSQPRG
RRQPIPKARRPEGRTWAQPGYPWPLYGNEGCGWAGWLLSPRGSRPSWGPTDPRRRSRNLG
>ref2
MAHHHHHHMGTLEAQTQGPGSMSDKIIHLTDDSFDTDVLKADGAILVDFWAEWCGPCKMI
APILDEIADEYQGKLTVAKLNIDQNPGTAPKYGIRGIPTLLLFKNGEVAATKVGALSKGQ
EOF

cat > "$work/bank_b.fa" <<'EOF'
>new0
MDSKGSSQKGSRLLLLLVVSNLLLCQGVVSTPVCPNGPGNCQVSLRDLFDRAVMVSHYIH
DLSSEMFNEFDKRYAQGKGFITMALNSCHTSSLPTPEDKEQAQQTHHEVLMSLILGLLRS
>new1
MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQVKVK
ALPDAQFEVVHSLAKWKRQTLGQHDFSAGEGLYTHMKALRPDEDRLSPLHSVYVDQWDWE
EOF

cat > "$work/queries.fa" <<'EOF'
>q0_ref0_like
MKVLITGAGSGIGLELAKQFAREGYKVAVTDINEEKLQELKEELGDNVIGIVGDVSSEED
>q1_new0_like
DLSSEMFNEFDKRYAQGKGFITMALNSCHTSSLPTPEDKEQAQQTHHEVLMSLILGLLRS
>q2_random
QWERTYIPASDFGHKLCVNMQWERTYIPASDFGHKLCVNMQWERTYIPASDFGHKLCVNM
EOF

cat "$work/bank_a.fa" "$work/bank_b.fa" > "$work/bank_ab.fa"

echo "== ingest: revision-1 store from bank A (one sequence per shard) =="
"$index" --input="$work/bank_a.fa" --kind=protein --out="$work/bank" \
  --shard-max-bytes=1

echo "== ingest: starting psc_serve + psc_router (=all claim) =="
# --max-resident must hold the manifest generation AND the router's
# per-shard loads at once: the revision pin is only as durable as
# residency, so an evicted generation would legitimately come back at
# the on-disk revision and void the pre-refresh pinning assertion below.
"$serve" --bank-root="$work" --port=0 --port-file="$work/serve.port" \
  --backend=host-parallel --max-resident=32 &
pids+=($!)
for _ in $(seq 1 100); do
  [[ -s $work/serve.port ]] && break
  sleep 0.1
done
[[ -s $work/serve.port ]] || { echo "psc_serve never wrote its port" >&2; exit 1; }
serve_port=$(cat "$work/serve.port")

"$router" --manifest="$work/bank" --bank=bank \
  --replicas="127.0.0.1:$serve_port=all" \
  --port=0 --port-file="$work/router.port" &
pids+=($!)
for _ in $(seq 1 100); do
  [[ -s $work/router.port ]] && break
  sleep 0.1
done
[[ -s $work/router.port ]] || { echo "psc_router never wrote its port" >&2; exit 1; }
router_port=$(cat "$work/router.port")

query() {  # query <port> <outfile>
  "$client" --port="$1" --bank=bank --query="$work/queries.fa" \
    --output-binary > "$2"
}

echo "== ingest: revision-1 baseline query =="
query "$serve_port" "$work/rev1_direct.bin"
query "$router_port" "$work/rev1_routed.bin"
cmp "$work/rev1_direct.bin" "$work/rev1_routed.bin"

echo "== ingest: appending bank B under the live servers =="
"$index" --input="$work/bank_b.fa" --kind=protein --out="$work/bank" --append
[[ -f $work/bank.shard03.pscbank ]] || {
  echo "ingest_check: --append did not write a tail shard" >&2; exit 1; }

echo "== ingest: before the refresh both still serve revision 1 =="
query "$serve_port" "$work/pinned_direct.bin"
query "$router_port" "$work/pinned_routed.bin"
cmp "$work/rev1_direct.bin" "$work/pinned_direct.bin"
cmp "$work/rev1_routed.bin" "$work/pinned_routed.bin"
echo "   pinned generation intact"

echo "== ingest: refreshing replica and router to revision 2 =="
"$client" --port="$serve_port" --refresh=bank | tee "$work/refresh1.txt"
grep -q "revision 2" "$work/refresh1.txt"
"$client" --port="$router_port" --refresh=bank | tee "$work/refresh2.txt"
grep -q "revision 2" "$work/refresh2.txt"

query "$serve_port" "$work/rev2_direct.bin"
query "$router_port" "$work/rev2_routed.bin"
if cmp -s "$work/rev1_direct.bin" "$work/rev2_direct.bin"; then
  echo "ingest_check: refresh did not change the answer (q1 must hit bank B)" >&2
  exit 1
fi

echo "== ingest: fresh full rebuild of A+B served cold is the referee =="
"$index" --input="$work/bank_ab.fa" --kind=protein --out="$work/full" \
  --shard-max-bytes=1
"$serve" --bank-root="$work" --port=0 --port-file="$work/full.port" \
  --backend=host-parallel --max-resident=32 &
pids+=($!)
for _ in $(seq 1 100); do
  [[ -s $work/full.port ]] && break
  sleep 0.1
done
[[ -s $work/full.port ]] || { echo "referee psc_serve never wrote its port" >&2; exit 1; }
full_port=$(cat "$work/full.port")
"$client" --port="$full_port" --bank=full --query="$work/queries.fa" \
  --output-binary > "$work/reference.bin"

cmp "$work/reference.bin" "$work/rev2_direct.bin"
echo "   append+refresh == full rebuild (direct)"
cmp "$work/reference.bin" "$work/rev2_routed.bin"
echo "   append+refresh == full rebuild (through psc_router)"

echo "== ingest: re-refresh at the same revision is an idempotent no-op =="
"$client" --port="$serve_port" --refresh=bank | grep -q "revision 2"
query "$serve_port" "$work/rev2_again.bin"
cmp "$work/reference.bin" "$work/rev2_again.bin"

echo "== ingest: compressed full rebuild answers the same bytes =="
"$index" --input="$work/bank_ab.fa" --kind=protein --out="$work/packed" \
  --shard-max-bytes=1 --compress
"$client" --port="$full_port" --bank=packed --query="$work/queries.fa" \
  --output-binary > "$work/packed.bin"
cmp "$work/reference.bin" "$work/packed.bin"
plain_bytes=$(cat "$work"/full.shard*.pscbank | wc -c)
packed_bytes=$(cat "$work"/packed.shard*.pscbank | wc -c)
echo "   bit-for-bit OK (compressed banks $packed_bytes bytes vs $plain_bytes plain)"

echo "== ingest check passed =="
