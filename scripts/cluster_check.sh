#!/usr/bin/env bash
# Cluster integration check: shard a store, serve the shards from three
# psc_serve replicas with a redundant shard map, put psc_router in front,
# and require the routed reply to be bit-for-bit identical to an
# in-process psc_search over the unsharded store (both sides emit the
# versioned match encoding via --output-binary, so `cmp` is the whole
# comparison). Then kill a replica whose shards are all redundantly held
# and require the identical bytes again; finally kill the remaining
# replicas and require a typed error frame -- never a hang.
#
# Usage: scripts/cluster_check.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
build=${1:-build}

index="$build/tools/psc_index"
serve="$build/tools/psc_serve"
client="$build/tools/psc_client"
router="$build/tools/psc_router"
search="$build/examples/psc_search"
for binary in "$index" "$serve" "$client" "$router" "$search"; do
  if [[ ! -x $binary ]]; then
    echo "cluster_check: missing $binary (build the default targets first)" >&2
    exit 1
  fi
done

work=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
  for pid in "${pids[@]}"; do wait "$pid" 2>/dev/null || true; done
  rm -rf "$work"
}
trap cleanup EXIT

# --- a tiny bank + queries (deterministic, checked-in inline) -----------
cat > "$work/bank.fa" <<'EOF'
>ref0
MKVLITGAGSGIGLELAKQFAREGYKVAVTDINEEKLQELKEELGDNVIGIVGDVSSEED
VKRAVAEAVERFGRIDVLVNNAGITRDNLLMRMKEEEWDDVIDTNLKGVFNCTQAVSRIM
>ref1
MSTNPKPQRKTKRNTNRRPQDVKFPGGGQIVGGVYLLPRRGPRLGVRATRKTSERSQPRG
RRQPIPKARRPEGRTWAQPGYPWPLYGNEGCGWAGWLLSPRGSRPSWGPTDPRRRSRNLG
>ref2
MAHHHHHHMGTLEAQTQGPGSMSDKIIHLTDDSFDTDVLKADGAILVDFWAEWCGPCKMI
APILDEIADEYQGKLTVAKLNIDQNPGTAPKYGIRGIPTLLLFKNGEVAATKVGALSKGQ
EOF

cat > "$work/queries.fa" <<'EOF'
>q0_ref0_like
MKVLITGAGSGIGLELAKQFAREGYKVAVTDINEEKLQELKEELGDNVIGIVGDVSSEED
>q1_ref2_like
APILDEIADEYQGKLTVAKLNIDQNPGTAPKYGIRGIPTLLLFKNGEVAATKVGALSKGQ
>q2_random
QWERTYIPASDFGHKLCVNMQWERTYIPASDFGHKLCVNMQWERTYIPASDFGHKLCVNM
EOF

echo "== cluster: unsharded reference store =="
"$index" --input="$work/bank.fa" --kind=protein --out="$work/plain"
"$search" --subject-index="$work/plain" --query="$work/queries.fa" \
  --backend=host-parallel --output-binary > "$work/reference.bin"
echo "   reference: $(wc -c < "$work/reference.bin") bytes"

echo "== cluster: sharded store (one sequence per shard) =="
"$index" --input="$work/bank.fa" --kind=protein --out="$work/bank" \
  --shard-max-bytes=1
shards=$(ls "$work"/bank.shard*.pscbank | wc -l)
if [[ $shards -ne 3 ]]; then
  echo "cluster_check: expected 3 shards, got $shards" >&2
  exit 1
fi

# Redundant map: every shard is held by exactly two of the three
# replicas, so any single replica is expendable.
declare -a shard_maps=("bank:0,1" "bank:1,2" "bank:0,2")
declare -a replica_specs=("0,1" "1,2" "0,2")
declare -a ports
echo "== cluster: starting 3 psc_serve replicas =="
for i in 0 1 2; do
  "$serve" --bank-root="$work" --shards="${shard_maps[$i]}" --port=0 \
    --port-file="$work/replica_$i.port" --backend=host-parallel &
  pids+=($!)
done
for i in 0 1 2; do
  for _ in $(seq 1 100); do
    [[ -s $work/replica_$i.port ]] && break
    sleep 0.1
  done
  [[ -s $work/replica_$i.port ]] || {
    echo "replica $i never wrote its port" >&2; exit 1; }
  ports[$i]=$(cat "$work/replica_$i.port")
done

replicas=""
for i in 0 1 2; do
  replicas+="127.0.0.1:${ports[$i]}=${replica_specs[$i]};"
done

echo "== cluster: starting psc_router =="
"$router" --manifest="$work/bank" --bank=bank --replicas="$replicas" \
  --port=0 --port-file="$work/router.port" \
  --max-attempts=3 --retry-backoff=0.05 --health-interval=0.5 &
router_pid=$!
pids+=($router_pid)
for _ in $(seq 1 100); do
  [[ -s $work/router.port ]] && break
  sleep 0.1
done
[[ -s $work/router.port ]] || { echo "router never wrote its port" >&2; exit 1; }
router_port=$(cat "$work/router.port")

"$client" --port="$router_port" --ping

echo "== cluster: routed query must be bit-identical =="
"$client" --port="$router_port" --bank=bank --query="$work/queries.fa" \
  --output-binary > "$work/routed.bin"
cmp "$work/reference.bin" "$work/routed.bin"
echo "   bit-for-bit OK ($(wc -c < "$work/routed.bin") bytes)"

echo "== cluster: stats frame reports all three replicas up =="
"$client" --port="$router_port" --stats | tee "$work/stats.txt"
if [[ $(grep -c '^replica=.* up=1 ' "$work/stats.txt") -ne 3 ]]; then
  echo "cluster_check: expected 3 live replica rows" >&2
  exit 1
fi

echo "== cluster: killing replica 2 (all its shards are redundant) =="
kill "${pids[2]}" 2>/dev/null
wait "${pids[2]}" 2>/dev/null || true
"$client" --port="$router_port" --bank=bank --query="$work/queries.fa" \
  --output-binary > "$work/degraded.bin"
cmp "$work/reference.bin" "$work/degraded.bin"
echo "   bit-for-bit OK with a dead replica"

echo "== cluster: wrong bank name is a typed error =="
if "$client" --port="$router_port" --bank=no_such_bank \
    --query="$work/queries.fa" > /dev/null 2> "$work/err.txt"; then
  echo "cluster_check: expected a bank-not-found failure" >&2
  exit 1
fi
grep -q "bank-not-found" "$work/err.txt"

echo "== cluster: killing the remaining replicas uncovers the shards =="
kill "${pids[0]}" "${pids[1]}" 2>/dev/null
wait "${pids[0]}" 2>/dev/null || true
wait "${pids[1]}" 2>/dev/null || true
# First failure may read as unreachable (the dead replicas are being
# discovered mid-query); once they are benched, the typed verdict must
# be shard-unavailable. Both are typed error frames, never a hang.
if "$client" --port="$router_port" --bank=bank --query="$work/queries.fa" \
    > /dev/null 2> "$work/err1.txt"; then
  echo "cluster_check: expected a failure with every replica dead" >&2
  exit 1
fi
grep -Eq "shard-unavailable|unreachable" "$work/err1.txt"
if "$client" --port="$router_port" --bank=bank --query="$work/queries.fa" \
    > /dev/null 2> "$work/err2.txt"; then
  echo "cluster_check: expected a failure with every replica dead" >&2
  exit 1
fi
grep -q "shard-unavailable" "$work/err2.txt"
echo "   typed shard-unavailable error, connection intact:"
"$client" --port="$router_port" --ping

echo "== cluster: stats frame reports the replicas down =="
"$client" --port="$router_port" --stats | tee "$work/stats2.txt"
if [[ $(grep -c '^replica=.* up=0 ' "$work/stats2.txt") -ne 3 ]]; then
  echo "cluster_check: expected 3 dead replica rows" >&2
  exit 1
fi

echo "== cluster check passed =="
