#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bio/translate.hpp"
#include "core/result_codec.hpp"
#include "index/index_table.hpp"
#include "service/search_service.hpp"
#include "service/shard_query.hpp"
#include "sim/genome_generator.hpp"
#include "sim/mutation.hpp"
#include "sim/protein_generator.hpp"
#include "store/bank_store.hpp"
#include "store/format.hpp"
#include "store/index_store.hpp"
#include "store/shard_store.hpp"
#include "util/rng.hpp"

namespace psc::service {
namespace {

/// One reference workload saved in several shardings: the unsharded
/// .pscbank/.pscidx pair plus a sharded store per requested cap.
/// Removes every file on destruction.
struct ShardedWorkload {
  bio::SequenceBank proteins{bio::SequenceKind::kProtein};
  bio::SequenceBank genome_bank{bio::SequenceKind::kProtein};
  std::string plain_prefix;
  std::vector<std::string> sharded_prefixes;
  std::vector<std::size_t> shard_counts;

  ShardedWorkload(std::uint64_t seed, const std::string& name,
                  const std::vector<std::uint64_t>& caps) {
    util::Xoshiro256 rng(seed);
    for (int i = 0; i < 5; ++i) {
      proteins.add(sim::generate_protein("p" + std::to_string(i), 100, rng));
    }
    sim::GenomeConfig config;
    config.length = 20000;
    config.seed = seed;
    bio::Sequence genome = sim::generate_genome(config);
    sim::MutationConfig divergence;
    divergence.substitution_rate = 0.15;
    divergence.indel_rate = 0.0;
    sim::plant_gene(genome, sim::mutate_protein(proteins[0], divergence, rng),
                    3000, true, rng);
    sim::plant_gene(genome, sim::mutate_protein(proteins[2], divergence, rng),
                    9001, false, rng);
    genome_bank = bio::frames_to_bank(bio::translate_six_frames(genome));

    const index::SeedModel model = index::SeedModel::subset_w4();
    plain_prefix = ::testing::TempDir() + "/" + name;
    const index::IndexTable table(genome_bank, model);
    const std::uint64_t checksum =
        store::save_bank(plain_prefix + ".pscbank", genome_bank);
    store::save_index(plain_prefix + ".pscidx", table, model, checksum);

    for (std::size_t i = 0; i < caps.size(); ++i) {
      const std::string prefix =
          plain_prefix + "_cap" + std::to_string(i);
      const store::ShardManifest manifest =
          store::write_sharded_store(prefix, genome_bank, model, caps[i]);
      sharded_prefixes.push_back(prefix);
      shard_counts.push_back(manifest.shards.size());
    }
  }

  ~ShardedWorkload() {
    std::remove((plain_prefix + ".pscbank").c_str());
    std::remove((plain_prefix + ".pscidx").c_str());
    for (std::size_t i = 0; i < sharded_prefixes.size(); ++i) {
      std::remove(store::manifest_path(sharded_prefixes[i]).c_str());
      for (std::size_t s = 0; s < shard_counts[i]; ++s) {
        const std::string pair = store::shard_prefix(sharded_prefixes[i], s);
        std::remove((pair + ".pscbank").c_str());
        std::remove((pair + ".pscidx").c_str());
      }
    }
  }

  bio::SequenceBank query(std::size_t i) const {
    bio::SequenceBank bank(bio::SequenceKind::kProtein);
    bank.add(proteins[i]);
    return bank;
  }
};

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(ShardQuery, FanOutIsBitIdenticalToUnshardedAcrossShardCounts) {
  // The tentpole's acceptance bar, at the library level: for shard
  // counts including 1, the merged fan-out encodes byte-for-byte
  // identical to the unsharded store's result.
  const ShardedWorkload workload(40, "shardq_identity", {0, 4096, 600});
  ASSERT_EQ(workload.shard_counts[0], 1u);
  ASSERT_GT(workload.shard_counts[1], 1u);
  ASSERT_GT(workload.shard_counts[2], workload.shard_counts[1]);

  const index::SeedModel model = index::SeedModel::subset_w4();
  core::PipelineOptions options;
  options.with_traceback = true;

  const LoadedBankSet plain =
      load_bank_set(workload.plain_prefix, model, true);
  EXPECT_FALSE(plain.sharded);
  ASSERT_EQ(plain.shard_count(), 1u);
  const core::PipelineResult reference = run_query_over_set(
      workload.proteins, plain, options, bio::SubstitutionMatrix::blosum62());
  ASSERT_FALSE(reference.matches.empty());
  const std::vector<std::uint8_t> reference_bytes =
      core::encode_matches(reference.matches);

  // The unsharded set path must itself equal a direct pipeline run.
  const core::PipelineResult direct = core::run_pipeline(
      workload.proteins, workload.genome_bank, options,
      bio::SubstitutionMatrix::blosum62());
  EXPECT_EQ(core::encode_matches(direct.matches), reference_bytes);

  for (std::size_t i = 0; i < workload.sharded_prefixes.size(); ++i) {
    const LoadedBankSet set =
        load_bank_set(workload.sharded_prefixes[i], model, true);
    EXPECT_TRUE(set.sharded);
    ASSERT_EQ(set.shard_count(), workload.shard_counts[i]);
    EXPECT_EQ(set.total_sequences, workload.genome_bank.size());
    EXPECT_EQ(set.total_residues, workload.genome_bank.total_residues());
    const core::PipelineResult fanned =
        run_query_over_set(workload.proteins, set, options,
                           bio::SubstitutionMatrix::blosum62());
    EXPECT_EQ(core::encode_matches(fanned.matches), reference_bytes)
        << "shards=" << workload.shard_counts[i];
    // Per-pair work partitions across shards, so the summed counters
    // must reproduce the unsharded totals exactly.
    EXPECT_EQ(fanned.counters.step2_pairs, reference.counters.step2_pairs);
    EXPECT_EQ(fanned.counters.step2_hits, reference.counters.step2_hits);
    EXPECT_EQ(fanned.counters.step3_extensions,
              reference.counters.step3_extensions);
    EXPECT_EQ(fanned.counters.bank1_occurrences,
              reference.counters.bank1_occurrences);
  }
}

TEST(ShardService, ShardedBankAnswersIdenticallyThroughService) {
  const ShardedWorkload workload(41, "shardq_service", {800});
  ASSERT_GT(workload.shard_counts[0], 1u);
  ServiceConfig config;
  config.max_resident = 1 + workload.shard_counts[0];
  SearchService service(config);

  const QueryResult plain =
      service.submit(workload.proteins, workload.plain_prefix).get();
  const QueryResult sharded =
      service.submit(workload.proteins, workload.sharded_prefixes[0]).get();
  ASSERT_FALSE(plain.matches.empty());
  EXPECT_EQ(core::encode_matches(sharded.matches),
            core::encode_matches(plain.matches));

  const ServiceStats stats = service.snapshot();
  EXPECT_EQ(stats.resident_banks, 2u);
  EXPECT_EQ(stats.resident_shards, 1u + workload.shard_counts[0]);
}

TEST(ShardService, LruEvictsWholeSetsNeverPartialOnes) {
  const ShardedWorkload a(42, "shardq_lru_a", {700});
  const ShardedWorkload b(43, "shardq_lru_b", {});
  const ShardedWorkload c(44, "shardq_lru_c", {});
  const std::size_t a_shards = a.shard_counts[0];
  ASSERT_GE(a_shards, 3u);

  ServiceConfig config;
  config.max_resident = a_shards + 1;
  SearchService service(config);

  service.submit(a.query(0), a.sharded_prefixes[0]).get();  // set resident
  service.submit(b.query(0), b.plain_prefix).get();  // fills the cap
  ServiceStats stats = service.snapshot();
  EXPECT_EQ(stats.resident_banks, 2u);
  EXPECT_EQ(stats.resident_shards, a_shards + 1);
  EXPECT_EQ(stats.evictions, 0u);

  // One more plain bank does not fit; the whole shard set (the oldest
  // entry) goes at once -- never some of its shards.
  service.submit(c.query(0), c.plain_prefix).get();
  stats = service.snapshot();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.resident_banks, 2u);
  EXPECT_EQ(stats.resident_shards, 2u);

  EXPECT_TRUE(service.submit(b.query(1), b.plain_prefix)
                  .get()
                  .bank_was_resident);
  EXPECT_FALSE(service.submit(a.query(1), a.sharded_prefixes[0])
                   .get()
                   .bank_was_resident);
}

TEST(ShardService, SetLargerThanCapIsServedTransiently) {
  const ShardedWorkload big(45, "shardq_big", {700});
  const ShardedWorkload small(46, "shardq_small", {});
  ASSERT_GT(big.shard_counts[0], 2u);
  ServiceConfig config;
  config.max_resident = 2;
  SearchService service(config);

  service.submit(small.query(0), small.plain_prefix).get();
  // The oversized set is answered correctly but cached nowhere, and it
  // does not push the resident plain bank out to make room it could
  // never use.
  const QueryResult reply =
      service.submit(big.proteins, big.sharded_prefixes[0]).get();
  EXPECT_FALSE(reply.matches.empty());
  ServiceStats stats = service.snapshot();
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.resident_banks, 1u);
  EXPECT_EQ(stats.resident_shards, 1u);
  EXPECT_TRUE(service.submit(small.query(0), small.plain_prefix)
                  .get()
                  .bank_was_resident);
  EXPECT_FALSE(service.submit(big.query(0), big.sharded_prefixes[0])
                   .get()
                   .bank_was_resident);
}

TEST(ShardService, RefreshAdoptsAppendedGenerationByteIdentically) {
  // The live-ingest acceptance bar at the service level: an appended
  // generation is invisible until refresh_manifest (the serving
  // generation is pinned by revision), and after the refresh the answer
  // is byte-identical to a from-scratch rebuild of the combined bank.
  const ShardedWorkload workload(51, "shardq_refresh", {800});
  const std::string prefix = workload.sharded_prefixes[0];
  const std::size_t base_shards = workload.shard_counts[0];
  ASSERT_GT(base_shards, 1u);
  const index::SeedModel model = index::SeedModel::subset_w4();

  ServiceConfig config;
  config.max_resident = 4 * base_shards + 8;
  SearchService service(config);

  const QueryResult before = service.submit(workload.proteins, prefix).get();
  ASSERT_FALSE(before.matches.empty());

  // The delta: a second planted genome's translated fragments, so the
  // next generation genuinely answers differently (bigger search space
  // shifts E-values; new fragments add matches).
  util::Xoshiro256 rng(52);
  sim::GenomeConfig gconfig;
  gconfig.length = 8000;
  gconfig.seed = 52;
  bio::Sequence genome2 = sim::generate_genome(gconfig);
  sim::MutationConfig divergence;
  divergence.substitution_rate = 0.1;
  divergence.indel_rate = 0.0;
  sim::plant_gene(genome2,
                  sim::mutate_protein(workload.proteins[1], divergence, rng),
                  2000, true, rng);
  const bio::SequenceBank delta =
      bio::frames_to_bank(bio::translate_six_frames(genome2));
  const store::ShardManifest extended =
      store::append_sharded_store(prefix, delta, model);
  EXPECT_EQ(extended.revision, 2u);

  // Un-refreshed: the pinned generation still answers exactly as before,
  // from residency.
  const QueryResult pinned = service.submit(workload.proteins, prefix).get();
  EXPECT_TRUE(pinned.bank_was_resident);
  EXPECT_EQ(core::encode_matches(pinned.matches),
            core::encode_matches(before.matches));

  // Refresh: the service adopts revision 2 and the next pass runs over
  // the extended set.
  EXPECT_EQ(service.refresh_manifest(prefix), 2u);
  const QueryResult after = service.submit(workload.proteins, prefix).get();
  EXPECT_FALSE(after.bank_was_resident);
  EXPECT_NE(core::encode_matches(after.matches),
            core::encode_matches(before.matches));

  // The proof: a from-scratch full rebuild of the combined bank (with
  // its own shard boundaries) answers byte-for-byte the same.
  bio::SequenceBank combined(bio::SequenceKind::kProtein);
  for (const bio::Sequence& s : workload.genome_bank) combined.add(s);
  for (const bio::Sequence& s : delta) combined.add(s);
  const std::string rebuilt = ::testing::TempDir() + "/shardq_refresh_rebuilt";
  const store::ShardManifest rebuilt_manifest =
      store::write_sharded_store(rebuilt, combined, model, 800);
  const QueryResult reference =
      service.submit(workload.proteins, rebuilt).get();
  EXPECT_EQ(core::encode_matches(after.matches),
            core::encode_matches(reference.matches));

  const ServiceStats stats = service.snapshot();
  EXPECT_EQ(stats.manifest_refreshes, 1u);
  // Loading generation 2 adopted every still-valid shard from the
  // resident generation 1 instead of re-reading it from disk.
  EXPECT_EQ(stats.refresh_shards_reused, base_shards);
  EXPECT_EQ(stats.store_revision, 2u);

  const std::string tail =
      store::shard_prefix(prefix, extended.shards.size() - 1);
  std::remove((tail + ".pscbank").c_str());
  std::remove((tail + ".pscidx").c_str());
  std::remove(store::manifest_path(rebuilt).c_str());
  for (std::size_t s = 0; s < rebuilt_manifest.shards.size(); ++s) {
    const std::string pair = store::shard_prefix(rebuilt, s);
    std::remove((pair + ".pscbank").c_str());
    std::remove((pair + ".pscidx").c_str());
  }
}

TEST(ShardService, EvictionKeysGenerationsByRevisionNotPrefix) {
  // The satellite-2 regression: with two generations of one prefix
  // resident (pre- and post-refresh), whole-set eviction must take
  // exactly the stale generation -- pins are keyed by manifest revision,
  // not by prefix alone. A prefix-keyed eviction would tear shards out
  // from under the other generation (ASan catches the use-after-free).
  const ShardedWorkload a(53, "shardq_gen_a", {700});
  const ShardedWorkload b(54, "shardq_gen_b", {});
  const std::size_t n = a.shard_counts[0];
  ASSERT_GE(n, 2u);
  const index::SeedModel model = index::SeedModel::subset_w4();

  ServiceConfig config;
  config.max_resident = 2 * n + 1;  // both generations, nothing more
  SearchService service(config);

  const QueryResult gen1 = service.submit(a.proteins, a.sharded_prefixes[0]).get();

  // An empty delta is the smallest legal ingest tick: revision 2, one
  // empty tail shard, same content.
  const bio::SequenceBank empty(bio::SequenceKind::kProtein);
  const store::ShardManifest extended =
      store::append_sharded_store(a.sharded_prefixes[0], empty, model);
  EXPECT_EQ(service.refresh_manifest(a.sharded_prefixes[0]), 2u);

  const QueryResult gen2 = service.submit(a.proteins, a.sharded_prefixes[0]).get();
  EXPECT_EQ(core::encode_matches(gen2.matches),
            core::encode_matches(gen1.matches));
  ServiceStats stats = service.snapshot();
  EXPECT_EQ(stats.resident_banks, 2u);  // both generations, same prefix
  EXPECT_EQ(stats.resident_shards, n + (n + 1));
  EXPECT_EQ(stats.refresh_shards_reused, n);

  // A plain bank overflows the cap: the stale generation (the LRU
  // entry) goes as a whole; the serving generation keeps every shard.
  service.submit(b.query(0), b.plain_prefix).get();
  stats = service.snapshot();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.resident_banks, 2u);
  EXPECT_EQ(stats.resident_shards, (n + 1) + 1);
  const QueryResult still_resident =
      service.submit(a.proteins, a.sharded_prefixes[0]).get();
  EXPECT_TRUE(still_resident.bank_was_resident);
  EXPECT_EQ(core::encode_matches(still_resident.matches),
            core::encode_matches(gen1.matches));

  const std::string tail =
      store::shard_prefix(a.sharded_prefixes[0], extended.shards.size() - 1);
  std::remove((tail + ".pscbank").c_str());
  std::remove((tail + ".pscidx").c_str());
}

TEST(ShardService, EvictedPinReloadsAtTheOnDiskRevisionConsistently) {
  // A revision pin is only as durable as residency: once the pinned
  // generation is evicted, the superseding append has already replaced
  // the manifest on disk, so the reload can only produce the new
  // revision. The regression: the entry must be KEYED by what was
  // actually loaded (and the pin moved forward), or a revision-1 key
  // caches revision-2 data -- the later refresh_manifest(2) then misses
  // its own resident set and reloads a generation it already holds.
  const ShardedWorkload a(55, "shardq_pin_a", {700});
  const ShardedWorkload b(56, "shardq_pin_b", {400});
  const std::size_t n = a.shard_counts[0];
  const std::size_t m = b.shard_counts[0];
  ASSERT_GE(n, 2u);
  ASSERT_GE(m, 2u);
  const index::SeedModel model = index::SeedModel::subset_w4();

  ServiceConfig config;
  // Either set fits alone, never both: loading `b` must EVICT `a`'s
  // pinned generation (not serve transiently past the cap).
  config.max_resident = n + m - 1;
  SearchService service(config);

  const QueryResult gen1 = service.submit(a.proteins, a.sharded_prefixes[0]).get();

  // `b`'s set overflows the cap and evicts `a`'s pinned generation.
  service.submit(b.proteins, b.sharded_prefixes[0]).get();
  EXPECT_EQ(service.snapshot().evictions, 1u);

  // The append lands while nothing of `a` is resident.
  const bio::SequenceBank empty(bio::SequenceKind::kProtein);
  const store::ShardManifest extended =
      store::append_sharded_store(a.sharded_prefixes[0], empty, model);
  EXPECT_EQ(extended.revision, 2u);

  // Un-refreshed query: the reload adopts the on-disk revision 2 (the
  // empty delta keeps the answer identical) and the stats say so.
  const QueryResult reloaded =
      service.submit(a.proteins, a.sharded_prefixes[0]).get();
  EXPECT_FALSE(reloaded.bank_was_resident);
  EXPECT_EQ(core::encode_matches(reloaded.matches),
            core::encode_matches(gen1.matches));
  EXPECT_EQ(service.snapshot().store_revision, 2u);

  // The refresh is now a no-op for residency: the set loaded above was
  // keyed at revision 2, so the next pass HITS instead of reloading.
  EXPECT_EQ(service.refresh_manifest(a.sharded_prefixes[0]), 2u);
  const QueryResult after = service.submit(a.proteins, a.sharded_prefixes[0]).get();
  EXPECT_TRUE(after.bank_was_resident);
  EXPECT_EQ(core::encode_matches(after.matches),
            core::encode_matches(gen1.matches));

  const std::string tail =
      store::shard_prefix(a.sharded_prefixes[0], extended.shards.size() - 1);
  std::remove((tail + ".pscbank").c_str());
  std::remove((tail + ".pscidx").c_str());
}

TEST(ShardService, CompressedStoreAnswersByteIdentically) {
  // Cold-shard compression is a storage decision, not a semantic one:
  // the same bank saved compressed answers byte-for-byte identically,
  // and the v6 gauge reports the resident compressed shards.
  const ShardedWorkload workload(55, "shardq_cmp", {800});
  const index::SeedModel model = index::SeedModel::subset_w4();
  const std::string packed = ::testing::TempDir() + "/shardq_cmp_packed";
  const store::ShardManifest packed_manifest = store::write_sharded_store(
      packed, workload.genome_bank, model, 800, /*threads=*/0,
      /*serial_index=*/false, /*compress=*/true);
  EXPECT_EQ(packed_manifest.shards.size(), workload.shard_counts[0]);

  ServiceConfig config;
  config.max_resident = 2 * workload.shard_counts[0] + 2;
  SearchService service(config);
  const QueryResult plain =
      service.submit(workload.proteins, workload.sharded_prefixes[0]).get();
  const QueryResult compressed =
      service.submit(workload.proteins, packed).get();
  ASSERT_FALSE(plain.matches.empty());
  EXPECT_EQ(core::encode_matches(compressed.matches),
            core::encode_matches(plain.matches));

  const ServiceStats stats = service.snapshot();
  EXPECT_EQ(stats.resident_compressed_shards, packed_manifest.shards.size());

  std::remove(store::manifest_path(packed).c_str());
  for (std::size_t s = 0; s < packed_manifest.shards.size(); ++s) {
    const std::string pair = store::shard_prefix(packed, s);
    std::remove((pair + ".pscbank").c_str());
    std::remove((pair + ".pscidx").c_str());
  }
}

TEST(ShardService, ShardSwappedForAnotherBankIsRejected) {
  // Two self-consistent sharded stores; grafting one store's shard pair
  // into the other passes every per-file check and must still die on the
  // manifest's recorded bank checksum, as a typed error on the future.
  const ShardedWorkload a(47, "shardq_swap_a", {700});
  const ShardedWorkload b(48, "shardq_swap_b", {700});
  ASSERT_GE(a.shard_counts[0], 2u);
  ASSERT_GE(b.shard_counts[0], 2u);

  const std::string a0 = store::shard_prefix(a.sharded_prefixes[0], 0);
  const std::string b0 = store::shard_prefix(b.sharded_prefixes[0], 0);
  const std::vector<char> original_bank = slurp(a0 + ".pscbank");
  const std::vector<char> original_index = slurp(a0 + ".pscidx");
  spit(a0 + ".pscbank", slurp(b0 + ".pscbank"));
  spit(a0 + ".pscidx", slurp(b0 + ".pscidx"));

  SearchService service;
  auto poisoned = service.submit(a.query(0), a.sharded_prefixes[0]);
  EXPECT_THROW(
      {
        try {
          poisoned.get();
        } catch (const store::StoreError& e) {
          EXPECT_EQ(e.code(), store::StoreErrorCode::kBankMismatch);
          throw;
        }
      },
      store::StoreError);

  // Restoring the real shard restores service.
  spit(a0 + ".pscbank", original_bank);
  spit(a0 + ".pscidx", original_index);
  EXPECT_FALSE(
      service.submit(a.proteins, a.sharded_prefixes[0]).get().matches.empty());
}

TEST(ShardService, IndexFromAnotherBankIsRejectedUnsharded) {
  // The plain-pair variant of the same defense: a v2 index recording
  // bank A's checksum must refuse to load over bank B even though both
  // files are individually intact.
  const ShardedWorkload a(49, "shardq_cross_a", {});
  const ShardedWorkload b(50, "shardq_cross_b", {});
  const std::vector<char> original = slurp(a.plain_prefix + ".pscidx");
  spit(a.plain_prefix + ".pscidx", slurp(b.plain_prefix + ".pscidx"));

  SearchService service;
  auto poisoned = service.submit(a.query(0), a.plain_prefix);
  EXPECT_THROW(
      {
        try {
          poisoned.get();
        } catch (const store::StoreError& e) {
          EXPECT_EQ(e.code(), store::StoreErrorCode::kBankMismatch);
          throw;
        }
      },
      store::StoreError);
  spit(a.plain_prefix + ".pscidx", original);
}

}  // namespace
}  // namespace psc::service
