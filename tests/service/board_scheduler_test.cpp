// The swap-minimizing batch scheduler, three layers deep:
//  - pick_next_group as a pure function against hand-computed oracles,
//  - the scheduling invariant (per-request reply bytes identical to
//    FIFO across arrival orders) at the service level,
//  - the board-swap counters against a scripted oracle with the RASC
//    backend live, plus the stats codec's v2/v3/v4 negotiation.
#include "service/scheduler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bio/translate.hpp"
#include "core/result_codec.hpp"
#include "index/index_table.hpp"
#include "service/search_service.hpp"
#include "sim/genome_generator.hpp"
#include "sim/mutation.hpp"
#include "sim/protein_generator.hpp"
#include "store/bank_store.hpp"
#include "store/index_store.hpp"
#include "util/rng.hpp"

namespace psc::service {
namespace {

GroupView group(std::uint64_t bank, std::uint64_t seq, std::uint64_t work,
                std::uint64_t waited = 0) {
  return GroupView{bank, seq, work, waited};
}

TEST(BoardScheduler, FifoAlwaysPicksGloballyOldest) {
  const std::vector<GroupView> groups = {
      group(/*bank=*/2, /*seq=*/5, /*work=*/1000),
      group(/*bank=*/1, /*seq=*/3, /*work=*/10),
      group(/*bank=*/2, /*seq=*/8, /*work=*/1000),
  };
  // Bank 2 is on the board and heavy; FIFO ignores both signals.
  const PickResult pick =
      pick_next_group(groups, /*board_bank=*/2, SchedulerPolicy::kFifo,
                      /*starvation_rounds=*/4);
  EXPECT_EQ(pick.index, 1u);
  EXPECT_FALSE(pick.reordered);
  EXPECT_FALSE(pick.starvation_promotion);
  EXPECT_TRUE(pick.bank_switch);  // board holds 2, pick targets 1
}

TEST(BoardScheduler, AffinityServesOnBoardBankBeforeOlderGroups) {
  const std::vector<GroupView> groups = {
      group(/*bank=*/1, /*seq=*/0, /*work=*/500),  // older, off-board
      group(/*bank=*/2, /*seq=*/4, /*work=*/10),   // on-board
  };
  const PickResult pick =
      pick_next_group(groups, /*board_bank=*/2, SchedulerPolicy::kAffinity,
                      /*starvation_rounds=*/4);
  EXPECT_EQ(pick.index, 1u);
  EXPECT_TRUE(pick.reordered);  // passed over the seq-0 group
  EXPECT_FALSE(pick.bank_switch);
  EXPECT_FALSE(pick.starvation_promotion);
}

TEST(BoardScheduler, AffinityPicksOldestWithinTheOnBoardBank) {
  const std::vector<GroupView> groups = {
      group(/*bank=*/2, /*seq=*/9, /*work=*/1000),
      group(/*bank=*/2, /*seq=*/4, /*work=*/1),
      group(/*bank=*/1, /*seq=*/7, /*work=*/50),
  };
  const PickResult pick =
      pick_next_group(groups, /*board_bank=*/2, SchedulerPolicy::kAffinity,
                      /*starvation_rounds=*/0);
  // Within the resident bank, age wins over work.
  EXPECT_EQ(pick.index, 1u);
}

TEST(BoardScheduler, AffinitySwapsToHeaviestBankWhenBoardDrained) {
  // Board holds bank 9, which has no queued work: the swap goes to the
  // bank with the most summed residues (bank 3: 60+50 > bank 1: 100).
  const std::vector<GroupView> groups = {
      group(/*bank=*/1, /*seq=*/0, /*work=*/100),
      group(/*bank=*/3, /*seq=*/2, /*work=*/60),
      group(/*bank=*/3, /*seq=*/5, /*work=*/50),
  };
  const PickResult pick =
      pick_next_group(groups, /*board_bank=*/9, SchedulerPolicy::kAffinity,
                      /*starvation_rounds=*/8);
  EXPECT_EQ(pick.index, 1u);  // oldest group of bank 3
  EXPECT_TRUE(pick.bank_switch);
  EXPECT_TRUE(pick.reordered);
}

TEST(BoardScheduler, AffinityWorkTieBreaksTowardOldestBank) {
  const std::vector<GroupView> groups = {
      group(/*bank=*/7, /*seq=*/3, /*work=*/100),
      group(/*bank=*/4, /*seq=*/1, /*work=*/100),
  };
  // Equal work: the bank holding the older group wins, and with an
  // empty board (key 0) the pick is still deterministic.
  const PickResult pick =
      pick_next_group(groups, /*board_bank=*/0, SchedulerPolicy::kAffinity,
                      /*starvation_rounds=*/4);
  EXPECT_EQ(pick.index, 1u);
  EXPECT_FALSE(pick.reordered);
}

TEST(BoardScheduler, StarvationPromotionOutranksAffinity) {
  const std::vector<GroupView> groups = {
      group(/*bank=*/2, /*seq=*/10, /*work=*/900),          // on-board
      group(/*bank=*/1, /*seq=*/0, /*work=*/1, /*waited=*/4),
      group(/*bank=*/5, /*seq=*/1, /*work=*/1, /*waited=*/5),
  };
  const PickResult pick =
      pick_next_group(groups, /*board_bank=*/2, SchedulerPolicy::kAffinity,
                      /*starvation_rounds=*/4);
  // Both starving groups outrank the resident bank; the *oldest*
  // starving group wins so the guard cannot starve its own clients.
  EXPECT_EQ(pick.index, 1u);
  EXPECT_TRUE(pick.starvation_promotion);
  EXPECT_TRUE(pick.bank_switch);
}

TEST(BoardScheduler, ZeroStarvationRoundsDisablesTheGuard) {
  const std::vector<GroupView> groups = {
      group(/*bank=*/2, /*seq=*/10, /*work=*/900),
      group(/*bank=*/1, /*seq=*/0, /*work=*/1, /*waited=*/1000),
  };
  const PickResult pick =
      pick_next_group(groups, /*board_bank=*/2, SchedulerPolicy::kAffinity,
                      /*starvation_rounds=*/0);
  EXPECT_EQ(pick.index, 0u);  // affinity rules; no promotion possible
  EXPECT_FALSE(pick.starvation_promotion);
}

TEST(BoardScheduler, StarvationGuardBoundsWaitRounds) {
  // Adversarial stream: the on-board bank (A=2) receives a fresh heavy
  // group every round; one bank-B group arrived first and would starve
  // forever under pure affinity. Simulate the worker's aging exactly:
  // every group not picked in a round ages by one.
  constexpr std::uint64_t kGuard = 4;
  GroupView victim = group(/*bank=*/3, /*seq=*/0, /*work=*/1);
  std::uint64_t rounds = 0;
  bool served = false;
  for (std::uint64_t seq = 1; seq <= kGuard + 2; ++seq) {
    std::vector<GroupView> groups = {
        group(/*bank=*/2, /*seq=*/seq, /*work=*/1'000'000), victim};
    const PickResult pick = pick_next_group(
        groups, /*board_bank=*/2, SchedulerPolicy::kAffinity, kGuard);
    ++rounds;
    if (pick.index == 1) {
      EXPECT_TRUE(pick.starvation_promotion);
      served = true;
      break;
    }
    ++victim.rounds_waited;
  }
  ASSERT_TRUE(served);
  // Waits exactly kGuard rounds before the promotion fires on the next.
  EXPECT_EQ(rounds, kGuard + 1);
}

TEST(BoardScheduler, EmptyPendingSetThrows) {
  EXPECT_THROW(pick_next_group({}, 0, SchedulerPolicy::kFifo, 0),
               std::invalid_argument);
  EXPECT_THROW(pick_next_group({}, 0, SchedulerPolicy::kAffinity, 4),
               std::invalid_argument);
}

TEST(BoardScheduler, AffinityKeyNeverReturnsTheEmptySentinel) {
  EXPECT_NE(bank_affinity_key(""), 0u);
  EXPECT_NE(bank_affinity_key("bank_a|subset-w4"), 0u);
  EXPECT_EQ(bank_affinity_key("x"), bank_affinity_key("x"));
  EXPECT_NE(bank_affinity_key("bank_a"), bank_affinity_key("bank_b"));
}

TEST(BoardScheduler, PolicyNamesRoundTrip) {
  SchedulerPolicy policy = SchedulerPolicy::kFifo;
  EXPECT_TRUE(parse_scheduler_policy("affinity", policy));
  EXPECT_EQ(policy, SchedulerPolicy::kAffinity);
  EXPECT_TRUE(parse_scheduler_policy("fifo", policy));
  EXPECT_EQ(policy, SchedulerPolicy::kFifo);
  EXPECT_STREQ(scheduler_policy_name(SchedulerPolicy::kAffinity), "affinity");
  EXPECT_STREQ(scheduler_policy_name(SchedulerPolicy::kFifo), "fifo");
  SchedulerPolicy untouched = SchedulerPolicy::kAffinity;
  EXPECT_FALSE(parse_scheduler_policy("lifo", untouched));
  EXPECT_EQ(untouched, SchedulerPolicy::kAffinity);
}

// ---------------------------------------------------------------------------
// Service-level properties.

/// A saved reference bank the service can load (mirrors the fixture in
/// search_service_test.cpp, smaller).
struct SavedBank {
  bio::SequenceBank proteins{bio::SequenceKind::kProtein};
  std::string prefix;

  SavedBank(std::uint64_t seed, const std::string& name) {
    util::Xoshiro256 rng(seed);
    for (int i = 0; i < 3; ++i) {
      proteins.add(sim::generate_protein("p" + std::to_string(i), 80, rng));
    }
    sim::GenomeConfig config;
    config.length = 9000;
    config.seed = seed;
    bio::Sequence genome = sim::generate_genome(config);
    sim::MutationConfig divergence;
    divergence.substitution_rate = 0.15;
    divergence.indel_rate = 0.0;
    sim::plant_gene(genome, sim::mutate_protein(proteins[0], divergence, rng),
                    2000, true, rng);
    const bio::SequenceBank genome_bank =
        bio::frames_to_bank(bio::translate_six_frames(genome));

    prefix = ::testing::TempDir() + "/" + name;
    const index::SeedModel model = index::SeedModel::subset_w4();
    store::save_bank(prefix + ".pscbank", genome_bank);
    store::save_index(prefix + ".pscidx", index::IndexTable(genome_bank, model),
                      model);
  }

  ~SavedBank() {
    std::remove((prefix + ".pscbank").c_str());
    std::remove((prefix + ".pscidx").c_str());
  }

  bio::SequenceBank query(std::size_t i) const {
    bio::SequenceBank bank(bio::SequenceKind::kProtein);
    bank.add(proteins[i]);
    return bank;
  }
};

/// Runs `arrivals` (indices into `banks`) as one batch under `policy`
/// and returns the per-request encoded match bytes, in arrival order.
std::vector<std::vector<std::uint8_t>> run_stream(
    SchedulerPolicy policy, const std::vector<const SavedBank*>& banks,
    const std::vector<std::size_t>& arrivals) {
  ServiceConfig config;
  config.scheduler = policy;
  config.max_drain_per_round = 2;  // several scheduling rounds per stream
  config.starvation_rounds = 2;
  SearchService service(config);

  std::vector<ServiceRequest> stream;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    ServiceRequest request;
    request.query = banks[arrivals[i]]->query(i % 3);
    request.bank_prefix = banks[arrivals[i]]->prefix;
    request.options = service.default_query_options();
    stream.push_back(std::move(request));
  }
  auto futures = service.submit_batch(std::move(stream));

  std::vector<std::vector<std::uint8_t>> replies;
  for (auto& future : futures) {
    std::vector<std::uint8_t> bytes;
    core::append_matches(bytes, future.get().matches);
    replies.push_back(std::move(bytes));
  }
  return replies;
}

TEST(BoardScheduler, MixedBankStreamsByteIdenticalToFifoAcrossOrders) {
  const SavedBank a(21, "sched_prop_a");
  const SavedBank b(22, "sched_prop_b");
  const SavedBank c(23, "sched_prop_c");
  const std::vector<const SavedBank*> banks = {&a, &b, &c};

  // Interleaved (the residency-adversarial order), runs-of-one-bank, and
  // a back-loaded order that makes affinity reorder across the stream.
  const std::vector<std::vector<std::size_t>> orders = {
      {0, 1, 2, 0, 1, 2},
      {0, 0, 1, 1, 2, 2},
      {2, 1, 0, 2, 0, 2},
  };
  for (const auto& arrivals : orders) {
    const auto fifo = run_stream(SchedulerPolicy::kFifo, banks, arrivals);
    const auto affinity =
        run_stream(SchedulerPolicy::kAffinity, banks, arrivals);
    ASSERT_EQ(fifo.size(), affinity.size());
    for (std::size_t i = 0; i < fifo.size(); ++i) {
      EXPECT_EQ(fifo[i], affinity[i])
          << "request " << i << " diverged under affinity scheduling";
    }
  }
}

TEST(BoardScheduler, BoardSwapCountersMatchScriptedOracle) {
  // Sequential submissions (each .get() before the next submit) pin the
  // service order to the script A,B,A,A,B regardless of policy, so the
  // board cache must walk exactly: A cold-upload, B swap, A swap,
  // A skip, B swap -> 1 bitstream, 4 uploads, 3 swaps, 1 skip.
  const SavedBank a(24, "sched_oracle_a");
  const SavedBank b(25, "sched_oracle_b");

  ServiceConfig config;
  config.options.backend = core::Step2Backend::kRasc;
  config.scheduler = SchedulerPolicy::kAffinity;
  SearchService service(config);

  const SavedBank* script[] = {&a, &b, &a, &a, &b};
  for (const SavedBank* bank : script) {
    service.submit(bank->query(0), bank->prefix).get();
  }

  const ServiceStats stats = service.snapshot();
  EXPECT_EQ(stats.board_bitstream_loads, 1u);
  EXPECT_EQ(stats.board_bank_uploads, 4u);
  EXPECT_EQ(stats.board_swaps, 3u);
  EXPECT_EQ(stats.bank_uploads_skipped, 1u);
  EXPECT_GT(stats.board_upload_seconds, 0.0);
  EXPECT_GT(stats.board_upload_seconds_saved, 0.0);
  EXPECT_GT(stats.accel_modeled_seconds, 0.0);
  EXPECT_EQ(stats.scheduler_rounds, 5u);
  EXPECT_EQ(stats.scheduler_policy, "affinity");
}

TEST(BoardScheduler, HostBackendLeavesBoardCountersAtZero) {
  const SavedBank a(26, "sched_host_a");
  SearchService service;  // default host backend
  service.submit(a.query(0), a.prefix).get();
  const ServiceStats stats = service.snapshot();
  EXPECT_EQ(stats.board_bank_uploads, 0u);
  EXPECT_EQ(stats.board_swaps, 0u);
  EXPECT_DOUBLE_EQ(stats.accel_modeled_seconds, 0.0);
  EXPECT_EQ(stats.scheduler_rounds, 1u);
}

// ---------------------------------------------------------------------------
// Stats codec: v4 fields and cross-version negotiation.

ServiceStats v4_sample() {
  ServiceStats stats;
  stats.queries_submitted = 9;
  stats.queries_completed = 8;
  stats.batches = 4;
  stats.board_bitstream_loads = 2;
  stats.board_bank_uploads = 6;
  stats.board_swaps = 3;
  stats.bank_uploads_skipped = 11;
  stats.board_upload_seconds = 1.25;
  stats.board_upload_seconds_saved = 4.5;
  stats.accel_modeled_seconds = 7.75;
  stats.scheduler_rounds = 14;
  stats.scheduler_reorders = 5;
  stats.starvation_promotions = 1;
  stats.bank_switches = 4;
  stats.scheduler_policy = "affinity";
  ReplicaStats replica;
  replica.endpoint = "host:7001";
  replica.up = true;
  replica.requests = 3;
  stats.replicas.push_back(replica);
  return stats;
}

TEST(ServiceCodec, V4RoundTripsBoardAndSchedulerFields) {
  const ServiceStats stats = v4_sample();
  const ServiceStats decoded =
      decode_service_stats(encode_service_stats(stats));
  EXPECT_EQ(decoded.board_bitstream_loads, 2u);
  EXPECT_EQ(decoded.board_bank_uploads, 6u);
  EXPECT_EQ(decoded.board_swaps, 3u);
  EXPECT_EQ(decoded.bank_uploads_skipped, 11u);
  EXPECT_DOUBLE_EQ(decoded.board_upload_seconds, 1.25);
  EXPECT_DOUBLE_EQ(decoded.board_upload_seconds_saved, 4.5);
  EXPECT_DOUBLE_EQ(decoded.accel_modeled_seconds, 7.75);
  EXPECT_EQ(decoded.scheduler_rounds, 14u);
  EXPECT_EQ(decoded.scheduler_reorders, 5u);
  EXPECT_EQ(decoded.starvation_promotions, 1u);
  EXPECT_EQ(decoded.bank_switches, 4u);
  EXPECT_EQ(decoded.scheduler_policy, "affinity");
  ASSERT_EQ(decoded.replicas.size(), 1u);
  EXPECT_EQ(decoded.replicas[0].endpoint, "host:7001");
}

TEST(ServiceCodec, EncodesLegacyVersionsForOldClients) {
  const ServiceStats stats = v4_sample();
  // v3: replica table present, board/scheduler fields omitted. The
  // decoder (which understands every supported vintage) must read the
  // frame cleanly and leave the v4 fields defaulted.
  const ServiceStats v3 =
      decode_service_stats(encode_service_stats(stats, 3));
  EXPECT_EQ(v3.queries_submitted, 9u);
  ASSERT_EQ(v3.replicas.size(), 1u);
  EXPECT_EQ(v3.board_bank_uploads, 0u);
  EXPECT_TRUE(v3.scheduler_policy.empty());

  // v2: no replica table either.
  const ServiceStats v2 =
      decode_service_stats(encode_service_stats(stats, 2));
  EXPECT_EQ(v2.queries_submitted, 9u);
  EXPECT_TRUE(v2.replicas.empty());
  EXPECT_EQ(v2.board_swaps, 0u);

  // A v3 frame is shorter than v4, v2 shorter than v3 -- the version
  // byte really gates the payload.
  EXPECT_LT(encode_service_stats(stats, 2).size(),
            encode_service_stats(stats, 3).size());
  EXPECT_LT(encode_service_stats(stats, 3).size(),
            encode_service_stats(stats).size());
}

TEST(ServiceCodec, RejectsUnsupportedVersionsAndTrailingBytes) {
  const ServiceStats stats = v4_sample();
  EXPECT_THROW(encode_service_stats(stats, 1), core::CodecError);
  EXPECT_THROW(encode_service_stats(stats, 7), core::CodecError);

  std::vector<std::uint8_t> bytes = encode_service_stats(stats);
  bytes.push_back(0);
  EXPECT_THROW(decode_service_stats(bytes), core::CodecError);
  bytes.pop_back();
  bytes[0] = 0x7f;  // version skew
  EXPECT_THROW(decode_service_stats(bytes), core::CodecError);
}

}  // namespace
}  // namespace psc::service
