#include "service/search_service.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "bio/translate.hpp"
#include "index/index_table.hpp"
#include "sim/genome_generator.hpp"
#include "sim/mutation.hpp"
#include "sim/protein_generator.hpp"
#include "store/bank_store.hpp"
#include "store/format.hpp"
#include "store/index_store.hpp"
#include "util/rng.hpp"

namespace psc::service {
namespace {

/// A saved reference bank: proteins planted into a genome, translated,
/// indexed and written to <prefix>.pscbank/.pscidx for the service to
/// load. Removes the files on destruction.
struct SavedBank {
  bio::SequenceBank proteins{bio::SequenceKind::kProtein};
  bio::SequenceBank genome_bank{bio::SequenceKind::kProtein};
  std::string prefix;

  explicit SavedBank(std::uint64_t seed, const std::string& name) {
    util::Xoshiro256 rng(seed);
    for (int i = 0; i < 5; ++i) {
      proteins.add(sim::generate_protein("p" + std::to_string(i), 100, rng));
    }
    sim::GenomeConfig config;
    config.length = 20000;
    config.seed = seed;
    bio::Sequence genome = sim::generate_genome(config);
    sim::MutationConfig divergence;
    divergence.substitution_rate = 0.15;
    divergence.indel_rate = 0.0;
    sim::plant_gene(genome, sim::mutate_protein(proteins[0], divergence, rng),
                    3000, true, rng);
    sim::plant_gene(genome, sim::mutate_protein(proteins[2], divergence, rng),
                    9001, false, rng);
    genome_bank = bio::frames_to_bank(bio::translate_six_frames(genome));

    prefix = ::testing::TempDir() + "/" + name;
    const index::SeedModel model = index::SeedModel::subset_w4();
    const index::IndexTable table(genome_bank, model);
    store::save_bank(prefix + ".pscbank", genome_bank);
    store::save_index(prefix + ".pscidx", table, model);
  }

  ~SavedBank() {
    std::remove((prefix + ".pscbank").c_str());
    std::remove((prefix + ".pscidx").c_str());
  }

  /// A single-protein query bank around member `i`.
  bio::SequenceBank query(std::size_t i) const {
    bio::SequenceBank bank(bio::SequenceKind::kProtein);
    bank.add(proteins[i]);
    return bank;
  }
};

TEST(SearchService, MatchesDirectPipelineRun) {
  const SavedBank saved(1, "svc_direct");
  ServiceConfig config;
  SearchService service(config);
  const QueryResult reply = service.search(saved.proteins, saved.prefix);

  core::PipelineResult direct = core::run_pipeline(
      saved.proteins, saved.genome_bank, config.options, config.matrix);
  ASSERT_FALSE(reply.matches.empty());
  ASSERT_EQ(reply.matches.size(), direct.matches.size());
  for (std::size_t i = 0; i < reply.matches.size(); ++i) {
    EXPECT_EQ(reply.matches[i].bank0_sequence,
              direct.matches[i].bank0_sequence);
    EXPECT_EQ(reply.matches[i].bank1_sequence,
              direct.matches[i].bank1_sequence);
    EXPECT_EQ(reply.matches[i].alignment.score,
              direct.matches[i].alignment.score);
  }
  EXPECT_GT(reply.latency_seconds, 0.0);
  EXPECT_EQ(reply.batch_size, 1u);
  EXPECT_FALSE(reply.bank_was_resident);
}

TEST(SearchService, CacheHitsOnRepeatQueries) {
  const SavedBank saved(2, "svc_cache");
  SearchService service;
  const QueryResult first = service.search(saved.query(0), saved.prefix);
  const QueryResult second = service.search(saved.query(2), saved.prefix);
  EXPECT_FALSE(first.bank_was_resident);
  EXPECT_TRUE(second.bank_was_resident);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries_submitted, 2u);
  EXPECT_EQ(stats.queries_completed, 2u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.resident_banks, 1u);
  EXPECT_EQ(stats.queries_failed, 0u);
  EXPECT_GT(stats.total_latency_seconds, 0.0);
}

TEST(SearchService, CoalescesBatchedQueriesIntoOnePass) {
  const SavedBank saved(3, "svc_batch");
  SearchService service;
  // Warm the cache so the batch below is one clean coalesced pass.
  service.search(saved.query(1), saved.prefix);

  std::vector<bio::SequenceBank> queries;
  for (const std::size_t i : {0u, 2u, 4u}) queries.push_back(saved.query(i));
  auto futures = service.submit_batch(std::move(queries), saved.prefix);
  ASSERT_EQ(futures.size(), 3u);

  // Each coalesced reply must equal its own individual search.
  const std::size_t members[] = {0, 2, 4};
  for (std::size_t q = 0; q < futures.size(); ++q) {
    const QueryResult reply = futures[q].get();
    EXPECT_EQ(reply.batch_size, 3u);
    EXPECT_TRUE(reply.bank_was_resident);
    const QueryResult solo = service.search(saved.query(members[q]), saved.prefix);
    ASSERT_EQ(reply.matches.size(), solo.matches.size());
    for (std::size_t m = 0; m < reply.matches.size(); ++m) {
      EXPECT_EQ(reply.matches[m].bank0_sequence, 0u);
      EXPECT_EQ(reply.matches[m].bank1_sequence,
                solo.matches[m].bank1_sequence);
      EXPECT_EQ(reply.matches[m].alignment.score,
                solo.matches[m].alignment.score);
    }
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.max_batch, 3u);
  // 1 warmup + 1 coalesced + 3 solo = 5 passes, 7 queries.
  EXPECT_EQ(stats.batches, 5u);
  EXPECT_EQ(stats.queries_completed, 7u);
}

TEST(SearchService, LruEvictsLeastRecentlyUsedBank) {
  const SavedBank a(4, "svc_lru_a");
  const SavedBank b(5, "svc_lru_b");
  const SavedBank c(6, "svc_lru_c");
  ServiceConfig config;
  config.max_resident = 2;
  SearchService service(config);

  service.search(a.query(0), a.prefix);  // miss, cache {a}
  service.search(b.query(0), b.prefix);  // miss, cache {a,b}
  service.search(a.query(1), a.prefix);  // hit, a freshened
  service.search(c.query(0), c.prefix);  // miss, evicts b
  const QueryResult again_a = service.search(a.query(2), a.prefix);  // hit
  EXPECT_TRUE(again_a.bank_was_resident);
  const QueryResult again_b = service.search(b.query(1), b.prefix);  // miss
  EXPECT_FALSE(again_b.bank_was_resident);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.cache_misses, 4u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.resident_banks, 2u);
}

TEST(SearchService, CapacityZeroNeverCaches) {
  const SavedBank saved(7, "svc_nocache");
  ServiceConfig config;
  config.max_resident = 0;
  SearchService service(config);
  service.search(saved.query(0), saved.prefix);
  const QueryResult second = service.search(saved.query(0), saved.prefix);
  EXPECT_FALSE(second.bank_was_resident);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_misses, 2u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.resident_banks, 0u);
}

TEST(SearchService, MissingBankFailsThatQueryOnly) {
  const SavedBank saved(8, "svc_missing");
  SearchService service;
  auto bad = service.submit(saved.query(0), saved.prefix + "_nonexistent");
  EXPECT_THROW(
      {
        try {
          bad.get();
        } catch (const store::StoreError& e) {
          EXPECT_EQ(e.code(), store::StoreErrorCode::kIo);
          throw;
        }
      },
      store::StoreError);
  // The service keeps serving after a failed load.
  const QueryResult good = service.search(saved.proteins, saved.prefix);
  EXPECT_FALSE(good.matches.empty());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries_failed, 1u);
  EXPECT_EQ(stats.queries_completed, 1u);
}

TEST(SearchService, RejectsNonProteinQueries) {
  SearchService service;
  bio::SequenceBank dna(bio::SequenceKind::kDna);
  dna.add(bio::Sequence::dna_from_letters("g", "ACGT"));
  EXPECT_THROW(service.submit(dna, "anything"), std::invalid_argument);
}

TEST(SearchService, DrainsPendingQueriesOnShutdown) {
  const SavedBank saved(9, "svc_drain");
  std::future<QueryResult> pending;
  {
    SearchService service;
    pending = service.submit(saved.query(0), saved.prefix);
  }  // destructor joins after draining
  const QueryResult reply = pending.get();
  EXPECT_EQ(reply.batch_size, 1u);
}

}  // namespace
}  // namespace psc::service
