#include "service/search_service.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <utility>

#include "bio/translate.hpp"
#include "core/result_codec.hpp"
#include "index/index_table.hpp"
#include "sim/genome_generator.hpp"
#include "sim/mutation.hpp"
#include "sim/protein_generator.hpp"
#include "store/bank_store.hpp"
#include "store/format.hpp"
#include "store/index_store.hpp"
#include "util/rng.hpp"

namespace psc::service {
namespace {

/// A saved reference bank: proteins planted into a genome, translated,
/// indexed and written to <prefix>.pscbank/.pscidx for the service to
/// load. Removes the files on destruction.
struct SavedBank {
  bio::SequenceBank proteins{bio::SequenceKind::kProtein};
  bio::SequenceBank genome_bank{bio::SequenceKind::kProtein};
  std::string prefix;

  explicit SavedBank(std::uint64_t seed, const std::string& name) {
    util::Xoshiro256 rng(seed);
    for (int i = 0; i < 5; ++i) {
      proteins.add(sim::generate_protein("p" + std::to_string(i), 100, rng));
    }
    sim::GenomeConfig config;
    config.length = 20000;
    config.seed = seed;
    bio::Sequence genome = sim::generate_genome(config);
    sim::MutationConfig divergence;
    divergence.substitution_rate = 0.15;
    divergence.indel_rate = 0.0;
    sim::plant_gene(genome, sim::mutate_protein(proteins[0], divergence, rng),
                    3000, true, rng);
    sim::plant_gene(genome, sim::mutate_protein(proteins[2], divergence, rng),
                    9001, false, rng);
    genome_bank = bio::frames_to_bank(bio::translate_six_frames(genome));

    prefix = ::testing::TempDir() + "/" + name;
    const index::SeedModel model = index::SeedModel::subset_w4();
    const index::IndexTable table(genome_bank, model);
    store::save_bank(prefix + ".pscbank", genome_bank);
    store::save_index(prefix + ".pscidx", table, model);
  }

  ~SavedBank() {
    std::remove((prefix + ".pscbank").c_str());
    std::remove((prefix + ".pscidx").c_str());
  }

  /// A single-protein query bank around member `i`.
  bio::SequenceBank query(std::size_t i) const {
    bio::SequenceBank bank(bio::SequenceKind::kProtein);
    bank.add(proteins[i]);
    return bank;
  }
};

TEST(SearchService, MatchesDirectPipelineRun) {
  const SavedBank saved(1, "svc_direct");
  ServiceConfig config;
  SearchService service(config);
  const QueryResult reply = service.submit(saved.proteins, saved.prefix).get();

  core::PipelineResult direct = core::run_pipeline(
      saved.proteins, saved.genome_bank, config.options, config.matrix);
  ASSERT_FALSE(reply.matches.empty());
  ASSERT_EQ(reply.matches.size(), direct.matches.size());
  for (std::size_t i = 0; i < reply.matches.size(); ++i) {
    EXPECT_EQ(reply.matches[i].bank0_sequence,
              direct.matches[i].bank0_sequence);
    EXPECT_EQ(reply.matches[i].bank1_sequence,
              direct.matches[i].bank1_sequence);
    EXPECT_EQ(reply.matches[i].alignment.score,
              direct.matches[i].alignment.score);
  }
  EXPECT_GT(reply.latency_seconds, 0.0);
  EXPECT_EQ(reply.batch_size, 1u);
  EXPECT_FALSE(reply.bank_was_resident);
}

TEST(SearchService, CacheHitsOnRepeatQueries) {
  const SavedBank saved(2, "svc_cache");
  SearchService service;
  const QueryResult first = service.submit(saved.query(0), saved.prefix).get();
  const QueryResult second = service.submit(saved.query(2), saved.prefix).get();
  EXPECT_FALSE(first.bank_was_resident);
  EXPECT_TRUE(second.bank_was_resident);

  const ServiceStats stats = service.snapshot();
  EXPECT_EQ(stats.queries_submitted, 2u);
  EXPECT_EQ(stats.queries_completed, 2u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.resident_banks, 1u);
  EXPECT_EQ(stats.queries_failed, 0u);
  EXPECT_GT(stats.total_latency_seconds, 0.0);
}

TEST(SearchService, CoalescesBatchedQueriesIntoOnePass) {
  const SavedBank saved(3, "svc_batch");
  SearchService service;
  // Warm the cache so the batch below is one clean coalesced pass.
  service.submit(saved.query(1), saved.prefix).get();

  std::vector<bio::SequenceBank> queries;
  for (const std::size_t i : {0u, 2u, 4u}) queries.push_back(saved.query(i));
  auto futures = service.submit_batch(std::move(queries), saved.prefix);
  ASSERT_EQ(futures.size(), 3u);

  // Each coalesced reply must equal its own individual search.
  const std::size_t members[] = {0, 2, 4};
  for (std::size_t q = 0; q < futures.size(); ++q) {
    const QueryResult reply = futures[q].get();
    EXPECT_EQ(reply.batch_size, 3u);
    EXPECT_TRUE(reply.bank_was_resident);
    const QueryResult solo = service.submit(saved.query(members[q]), saved.prefix).get();
    ASSERT_EQ(reply.matches.size(), solo.matches.size());
    for (std::size_t m = 0; m < reply.matches.size(); ++m) {
      EXPECT_EQ(reply.matches[m].bank0_sequence, 0u);
      EXPECT_EQ(reply.matches[m].bank1_sequence,
                solo.matches[m].bank1_sequence);
      EXPECT_EQ(reply.matches[m].alignment.score,
                solo.matches[m].alignment.score);
    }
  }

  const ServiceStats stats = service.snapshot();
  EXPECT_EQ(stats.max_batch, 3u);
  // 1 warmup + 1 coalesced + 3 solo = 5 passes, 7 queries.
  EXPECT_EQ(stats.batches, 5u);
  EXPECT_EQ(stats.queries_completed, 7u);
}

TEST(SearchService, LruEvictsLeastRecentlyUsedBank) {
  const SavedBank a(4, "svc_lru_a");
  const SavedBank b(5, "svc_lru_b");
  const SavedBank c(6, "svc_lru_c");
  ServiceConfig config;
  config.max_resident = 2;
  SearchService service(config);

  service.submit(a.query(0), a.prefix).get();  // miss, cache {a}
  service.submit(b.query(0), b.prefix).get();  // miss, cache {a,b}
  service.submit(a.query(1), a.prefix).get();  // hit, a freshened
  service.submit(c.query(0), c.prefix).get();  // miss, evicts b
  const QueryResult again_a = service.submit(a.query(2), a.prefix).get();  // hit
  EXPECT_TRUE(again_a.bank_was_resident);
  const QueryResult again_b = service.submit(b.query(1), b.prefix).get();  // miss
  EXPECT_FALSE(again_b.bank_was_resident);

  const ServiceStats stats = service.snapshot();
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.cache_misses, 4u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.resident_banks, 2u);
}

TEST(SearchService, CapacityZeroNeverCaches) {
  const SavedBank saved(7, "svc_nocache");
  ServiceConfig config;
  config.max_resident = 0;
  SearchService service(config);
  service.submit(saved.query(0), saved.prefix).get();
  const QueryResult second = service.submit(saved.query(0), saved.prefix).get();
  EXPECT_FALSE(second.bank_was_resident);
  const ServiceStats stats = service.snapshot();
  EXPECT_EQ(stats.cache_misses, 2u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.resident_banks, 0u);
}

TEST(SearchService, MissingBankFailsThatQueryOnly) {
  const SavedBank saved(8, "svc_missing");
  SearchService service;
  auto bad = service.submit(saved.query(0), saved.prefix + "_nonexistent");
  EXPECT_THROW(
      {
        try {
          bad.get();
        } catch (const store::StoreError& e) {
          EXPECT_EQ(e.code(), store::StoreErrorCode::kIo);
          throw;
        }
      },
      store::StoreError);
  // The service keeps serving after a failed load.
  const QueryResult good = service.submit(saved.proteins, saved.prefix).get();
  EXPECT_FALSE(good.matches.empty());
  const ServiceStats stats = service.snapshot();
  EXPECT_EQ(stats.queries_failed, 1u);
  EXPECT_EQ(stats.queries_completed, 1u);
}

TEST(SearchService, RejectsNonProteinQueries) {
  SearchService service;
  bio::SequenceBank dna(bio::SequenceKind::kDna);
  dna.add(bio::Sequence::dna_from_letters("g", "ACGT"));
  EXPECT_THROW(service.submit(dna, "anything"), std::invalid_argument);
}

TEST(SearchService, TracksPerBatchLatency) {
  const SavedBank saved(10, "svc_latency");
  SearchService service;
  service.submit(saved.query(0), saved.prefix).get();
  ServiceStats stats = service.snapshot();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_GT(stats.total_batch_latency_seconds, 0.0);
  EXPECT_GT(stats.max_batch_latency_seconds, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_batch_latency_seconds,
                   stats.total_batch_latency_seconds);
  // A batch's latency is its slowest member's, so the per-batch total can
  // never exceed the per-query total.
  EXPECT_LE(stats.total_batch_latency_seconds,
            stats.total_latency_seconds + 1e-12);

  service.submit(saved.query(1), saved.prefix).get();
  stats = service.snapshot();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_NEAR(stats.mean_batch_latency_seconds,
              stats.total_batch_latency_seconds / 2.0, 1e-12);
  EXPECT_GE(stats.max_batch_latency_seconds,
            stats.mean_batch_latency_seconds);
  EXPECT_LE(stats.max_batch_latency_seconds,
            stats.total_batch_latency_seconds + 1e-12);
}

TEST(SearchService, RequestsWithDifferingOptionsDoNotCoalesce) {
  const SavedBank saved(11, "svc_opts_split");
  SearchService service;
  service.submit(saved.query(0), saved.prefix).get();  // warm the cache

  std::vector<ServiceRequest> requests(2);
  for (ServiceRequest& request : requests) {
    request.query = saved.query(0);
    request.bank_prefix = saved.prefix;
    request.options = service.default_query_options();
  }
  requests[1].options.e_value_cutoff *= 10.0;
  auto futures = service.submit_batch(std::move(requests));
  EXPECT_EQ(futures[0].get().batch_size, 1u);
  EXPECT_EQ(futures[1].get().batch_size, 1u);
  const ServiceStats stats = service.snapshot();
  EXPECT_EQ(stats.batches, 3u);  // warm-up pass + one per option group
  EXPECT_EQ(stats.queries_completed, 3u);
}

TEST(SearchService, PerQueryOptionsControlTraceback) {
  const SavedBank saved(12, "svc_opts_tb");
  SearchService service;
  ServiceRequest with;
  with.query = saved.proteins;
  with.bank_prefix = saved.prefix;
  with.options = service.default_query_options();
  with.options.with_traceback = true;
  ServiceRequest without = with;
  without.query = saved.proteins;
  without.options.with_traceback = false;

  const QueryResult traced = service.submit(std::move(with)).get();
  const QueryResult plain = service.submit(std::move(without)).get();
  ASSERT_FALSE(traced.matches.empty());
  ASSERT_EQ(traced.matches.size(), plain.matches.size());
  EXPECT_FALSE(traced.matches.front().alignment.ops.empty());
  for (const core::Match& match : plain.matches) {
    EXPECT_TRUE(match.alignment.ops.empty());
  }
}

TEST(QueryOptions, FingerprintSeparatesEveryField) {
  const QueryOptions base;
  QueryOptions traceback = base;
  traceback.with_traceback = true;
  QueryOptions composition = base;
  composition.composition_based_stats = true;
  QueryOptions cutoff = base;
  cutoff.e_value_cutoff = 10.0;

  EXPECT_EQ(base.fingerprint(), QueryOptions{}.fingerprint());
  EXPECT_NE(base.fingerprint(), traceback.fingerprint());
  EXPECT_NE(base.fingerprint(), composition.fingerprint());
  EXPECT_NE(base.fingerprint(), cutoff.fingerprint());
  EXPECT_NE(traceback.fingerprint(), composition.fingerprint());
}

TEST(QueryOptions, GroupKeySeparatesTheFullOptionGrid) {
  // The grouping key must keep every distinct option set apart -- the
  // property the coalescer relies on. Walk the whole grid: a spread of
  // cutoffs (including denormal, huge and sign-of-zero cases) crossed
  // with every flag combination.
  const double cutoffs[] = {1e-300, 1e-12,  1e-6, 1e-3, 0.5,
                            1.0,    10.0,   1e6,  1e300, 5e-324,
                            0.0,    -0.0};
  const double spaces[] = {0.0, 1.0, 2.5e7};
  std::vector<CoalesceKey> keys;
  for (const double cutoff : cutoffs) {
    for (const double space : spaces) {
      for (const bool traceback : {false, true}) {
        for (const bool composition : {false, true}) {
          QueryOptions options;
          options.e_value_cutoff = cutoff;
          options.search_space_residues = space;
          options.with_traceback = traceback;
          options.composition_based_stats = composition;
          keys.push_back(options.group_key());
        }
      }
    }
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t j = i + 1; j < keys.size(); ++j) {
      EXPECT_NE(keys[i], keys[j]) << "grid entries " << i << " and " << j
                                  << " coalesced";
    }
  }
}

/// Two *distinct* option sets engineered to share a fingerprint: with
/// fp = (bits * K) ^ flags and K odd (so invertible mod 2^64), picking
/// bits' = ((bits * K) ^ 1) * K^-1 and flipping with_traceback collides
/// exactly. The worker must still keep them in separate passes.
std::pair<QueryOptions, QueryOptions> colliding_options() {
  constexpr std::uint64_t kMultiplier = 0x9e3779b97f4a7c15ull;
  std::uint64_t inverse = kMultiplier;  // Newton: doubles correct bits
  for (int i = 0; i < 6; ++i) {
    inverse *= 2 - kMultiplier * inverse;
  }
  QueryOptions a;
  a.e_value_cutoff = 1e-3;
  a.with_traceback = false;
  std::uint64_t a_bits = 0;
  std::memcpy(&a_bits, &a.e_value_cutoff, sizeof(a_bits));
  QueryOptions b;
  const std::uint64_t b_bits = ((a_bits * kMultiplier) ^ 1u) * inverse;
  std::memcpy(&b.e_value_cutoff, &b_bits, sizeof(b_bits));
  b.with_traceback = true;
  return {a, b};
}

TEST(QueryOptions, EngineeredFingerprintCollisionKeepsDistinctGroupKeys) {
  const auto [a, b] = colliding_options();
  ASSERT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.group_key(), b.group_key());
}

TEST(SearchService, FingerprintCollisionDoesNotCoalescePasses) {
  // The regression the exact grouping key exists for: were the worker to
  // group by fingerprint(), these two requests would share one pass and
  // one of them would be answered under the other's cutoff.
  const SavedBank saved(13, "svc_collision");
  SearchService service;
  service.submit(saved.query(0), saved.prefix).get();  // warm the cache

  const auto [a, b] = colliding_options();
  std::vector<ServiceRequest> requests(2);
  requests[0].query = saved.query(0);
  requests[0].bank_prefix = saved.prefix;
  requests[0].options = a;
  requests[1].query = saved.query(0);
  requests[1].bank_prefix = saved.prefix;
  requests[1].options = b;
  auto futures = service.submit_batch(std::move(requests));
  EXPECT_EQ(futures[0].get().batch_size, 1u);
  EXPECT_EQ(futures[1].get().batch_size, 1u);
  const ServiceStats stats = service.snapshot();
  EXPECT_EQ(stats.batches, 3u);  // warm-up + one per colliding option set
}

TEST(ServiceCodec, QueryResultRoundTrips) {
  QueryResult result;
  result.latency_seconds = 0.25;
  result.batch_size = 3;
  result.bank_was_resident = true;
  core::Match match;
  match.bank0_sequence = 1;
  match.bank1_sequence = 9;
  match.alignment.score = 77;
  match.alignment.begin0 = 4;
  match.alignment.end0 = 40;
  match.alignment.begin1 = 5;
  match.alignment.end1 = 41;
  match.alignment.ops = {align::Op::kMatch, align::Op::kInsert0,
                         align::Op::kInsert1, align::Op::kMatch};
  match.bit_score = 33.5;
  match.e_value = 1e-9;
  result.matches.push_back(match);

  const std::vector<std::uint8_t> bytes = encode_query_result(result);
  const QueryResult decoded = decode_query_result(bytes);
  EXPECT_EQ(decoded.batch_size, result.batch_size);
  EXPECT_EQ(decoded.bank_was_resident, result.bank_was_resident);
  EXPECT_DOUBLE_EQ(decoded.latency_seconds, result.latency_seconds);
  ASSERT_EQ(decoded.matches.size(), 1u);
  EXPECT_EQ(decoded.matches[0].bank1_sequence, 9u);
  EXPECT_EQ(decoded.matches[0].alignment.ops, match.alignment.ops);

  // Truncations and trailing garbage are typed errors, never crashes.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_THROW(decode_query_result(prefix), core::CodecError);
  }
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_THROW(decode_query_result(padded), core::CodecError);
}

TEST(ServiceCodec, ServiceStatsRoundTrips) {
  ServiceStats stats;
  stats.queries_submitted = 11;
  stats.queries_completed = 10;
  stats.queries_failed = 1;
  stats.batches = 4;
  stats.cache_hits = 3;
  stats.cache_misses = 1;
  stats.evictions = 2;
  stats.max_batch = 5;
  stats.total_latency_seconds = 1.5;
  stats.total_batch_latency_seconds = 0.9;
  stats.max_batch_latency_seconds = 0.5;
  stats.mean_batch_latency_seconds = 0.225;
  stats.queue_depth = 7;
  stats.resident_banks = 2;

  const std::vector<std::uint8_t> bytes = encode_service_stats(stats);
  const ServiceStats decoded = decode_service_stats(bytes);
  EXPECT_EQ(decoded.queries_submitted, stats.queries_submitted);
  EXPECT_EQ(decoded.queries_completed, stats.queries_completed);
  EXPECT_EQ(decoded.queries_failed, stats.queries_failed);
  EXPECT_EQ(decoded.batches, stats.batches);
  EXPECT_EQ(decoded.cache_hits, stats.cache_hits);
  EXPECT_EQ(decoded.cache_misses, stats.cache_misses);
  EXPECT_EQ(decoded.evictions, stats.evictions);
  EXPECT_EQ(decoded.max_batch, stats.max_batch);
  EXPECT_DOUBLE_EQ(decoded.total_latency_seconds,
                   stats.total_latency_seconds);
  EXPECT_DOUBLE_EQ(decoded.total_batch_latency_seconds,
                   stats.total_batch_latency_seconds);
  EXPECT_DOUBLE_EQ(decoded.max_batch_latency_seconds,
                   stats.max_batch_latency_seconds);
  EXPECT_DOUBLE_EQ(decoded.mean_batch_latency_seconds,
                   stats.mean_batch_latency_seconds);
  EXPECT_EQ(decoded.queue_depth, stats.queue_depth);
  EXPECT_EQ(decoded.resident_banks, stats.resident_banks);

  std::vector<std::uint8_t> skewed = bytes;
  skewed[0] = 0xff;  // version byte
  EXPECT_THROW(decode_service_stats(skewed), core::CodecError);
}

TEST(SearchService, FairSchedulerKeepsRepliesByteIdentical) {
  // The acceptance bar for tenancy: fairness and quotas may reorder or
  // reject, but an ADMITTED query's reply bytes never change. A skewed
  // two-tenant stream is run through a FIFO service and a weighted-fair
  // one; every reply must match byte for byte.
  const SavedBank saved(11, "svc_fair_bytes");
  const auto run = [&](bool fair) {
    ServiceConfig config;
    config.fair_scheduler = fair;
    config.fair_quantum = 64;  // tiny quantum: maximal reordering
    TenantPolicy heavy;
    heavy.weight = 10.0;
    config.tenants.tenants["heavy"] = heavy;
    SearchService service(config);

    std::vector<ServiceRequest> requests;
    for (const std::size_t i : {0u, 2u, 4u, 1u}) {
      ServiceRequest request;
      request.query = saved.query(i);
      request.bank_prefix = saved.prefix;
      request.options = service.default_query_options();
      request.tenant.name = i == 1u ? "light" : "heavy";
      requests.push_back(std::move(request));
    }
    std::vector<std::vector<std::uint8_t>> replies;
    for (auto& future : service.submit_batch(std::move(requests))) {
      replies.push_back(core::encode_matches(future.get().matches));
    }
    return replies;
  };

  const std::vector<std::vector<std::uint8_t>> fifo = run(false);
  const std::vector<std::vector<std::uint8_t>> fair = run(true);
  ASSERT_EQ(fifo.size(), fair.size());
  for (std::size_t i = 0; i < fifo.size(); ++i) {
    EXPECT_EQ(fifo[i], fair[i]) << "request " << i;
  }
}

TEST(SearchService, SnapshotCarriesTenantRowsAndFairFlag) {
  const SavedBank saved(12, "svc_tenant_rows");
  ServiceConfig config;
  config.fair_scheduler = true;
  SearchService service(config);

  ServiceRequest named;
  named.query = saved.query(0);
  named.bank_prefix = saved.prefix;
  named.options = service.default_query_options();
  named.tenant.name = "alice";
  service.submit(std::move(named)).get();
  // The convenience overload leaves the tenant empty -> default row.
  service.submit(saved.query(1), saved.prefix).get();

  const ServiceStats stats = service.snapshot();
  EXPECT_TRUE(stats.fair_scheduler);
  ASSERT_EQ(stats.tenants.size(), 2u);
  EXPECT_EQ(stats.tenants[0].name, "alice");
  EXPECT_EQ(stats.tenants[0].admitted, 1u);
  EXPECT_EQ(stats.tenants[0].completed, 1u);
  EXPECT_GT(stats.tenants[0].query_residues, 0u);
  // The resident-bytes gauge settles with the request: nothing is in
  // flight at snapshot time, so nothing is charged.
  EXPECT_EQ(stats.tenants[0].resident_bytes, 0u);
  EXPECT_EQ(stats.tenants[0].queued, 0u);
  EXPECT_EQ(stats.tenants[1].name, kDefaultTenantName);
  EXPECT_EQ(stats.tenants[1].admitted, 1u);
}

TEST(SearchService, OverQuotaSubmitRejectsWithoutQueuing) {
  const SavedBank saved(13, "svc_quota");
  ServiceConfig config;
  config.tenants.default_policy.max_in_flight = 1;
  SearchService service(config);

  // A two-request batch cannot fit the single in-flight slot: admission
  // is all-or-nothing, so submit_batch throws AT SUBMIT (nothing is
  // queued, nothing runs) and rolls the first member's admit back.
  std::vector<ServiceRequest> batch;
  for (int i = 0; i < 2; ++i) {
    ServiceRequest request;
    request.query = saved.query(static_cast<std::size_t>(i));
    request.bank_prefix = saved.prefix;
    request.options = service.default_query_options();
    batch.push_back(std::move(request));
  }
  try {
    service.submit_batch(std::move(batch));
    FAIL() << "expected QuotaError";
  } catch (const QuotaError& e) {
    EXPECT_EQ(e.kind(), QuotaKind::kInFlight);
  }

  // The rollback released the slot: a single submit passes and runs.
  EXPECT_FALSE(service.submit(saved.query(2), saved.prefix).get()
                   .matches.empty());
  const ServiceStats stats = service.snapshot();
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].rejected, 1u);
  EXPECT_EQ(stats.tenants[0].admitted, 1u);
  EXPECT_EQ(stats.tenants[0].completed, 1u);
  EXPECT_EQ(stats.tenants[0].queued, 0u);
}

TEST(SearchService, DrainsPendingQueriesOnShutdown) {
  const SavedBank saved(9, "svc_drain");
  std::future<QueryResult> pending;
  {
    SearchService service;
    pending = service.submit(saved.query(0), saved.prefix);
  }  // destructor joins after draining
  const QueryResult reply = pending.get();
  EXPECT_EQ(reply.batch_size, 1u);
}

}  // namespace
}  // namespace psc::service
