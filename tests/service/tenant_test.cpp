// Unit tests for the multi-tenant policy layer: tenant names, the
// --tenant-config parser, the TenantRegistry quota gates (qps,
// in-flight, resident-bytes, hedge budget) and the DRR FairScheduler,
// including the starvation bound the scheduler documents.
#include "service/tenant.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/scheduler.hpp"

namespace psc::service {
namespace {

TEST(TenantName, ValidatesCharsetAndLength) {
  EXPECT_TRUE(tenant_name_is_valid("alice"));
  EXPECT_TRUE(tenant_name_is_valid("team-alpha.batch_7"));
  EXPECT_TRUE(tenant_name_is_valid("A"));
  EXPECT_TRUE(tenant_name_is_valid(std::string(64, 'x')));  // at the cap

  EXPECT_FALSE(tenant_name_is_valid(""));  // the "no identity" sentinel
  EXPECT_FALSE(tenant_name_is_valid(std::string(65, 'x')));
  EXPECT_FALSE(tenant_name_is_valid("has space"));
  EXPECT_FALSE(tenant_name_is_valid("semi;colon"));
  EXPECT_FALSE(tenant_name_is_valid(std::string("nul\0byte", 8)));
  EXPECT_FALSE(tenant_name_is_valid("emph\xc3\xa9"));
}

TEST(TenantName, EmptyNormalizesToDefault) {
  EXPECT_EQ(normalize_tenant_name(""), kDefaultTenantName);
  EXPECT_EQ(normalize_tenant_name("alice"), "alice");
  EXPECT_EQ(normalize_tenant_name("default"), "default");
}

TEST(TenantConfigParser, ParsesPoliciesCommentsAndDefault) {
  std::istringstream in(
      "# heavy batch tenant\n"
      "\n"
      "tenant default qps=50\n"
      "tenant batch weight=4 qps=200 in-flight=16 resident-mb=512\n"
      "tenant interactive hedges-per-sec=2 # trailing comment\n");
  const TenantConfig config = parse_tenant_config(in);

  EXPECT_DOUBLE_EQ(config.default_policy.max_qps, 50.0);
  ASSERT_EQ(config.tenants.size(), 3u);

  const TenantPolicy& batch = config.policy_for("batch");
  EXPECT_DOUBLE_EQ(batch.weight, 4.0);
  EXPECT_DOUBLE_EQ(batch.max_qps, 200.0);
  EXPECT_EQ(batch.max_in_flight, 16u);
  EXPECT_EQ(batch.max_resident_bytes, std::uint64_t{512} << 20);
  EXPECT_DOUBLE_EQ(batch.hedges_per_second, -1.0);  // untouched default

  EXPECT_DOUBLE_EQ(config.policy_for("interactive").hedges_per_second, 2.0);
  // Unknown tenants inherit the default policy.
  EXPECT_DOUBLE_EQ(config.policy_for("stranger").max_qps, 50.0);
}

TEST(TenantConfigParser, MalformedLinesThrowWithLineNumber) {
  const auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return parse_tenant_config(in);
  };
  const std::pair<const char*, const char*> cases[] = {
      {"client alice qps=1\n", "line 1"},          // not 'tenant'
      {"tenant\n", "line 1"},                      // missing name
      {"tenant bad name!\n", "line 1"},            // invalid charset... name
      {"tenant a qps\n", "line 1"},                // not key=value
      {"tenant a qps=\n", "line 1"},               // empty value
      {"tenant a qps=abc\n", "line 1"},            // non-numeric
      {"tenant a turbo=1\n", "line 1"},            // unknown key
      {"tenant a in-flight=-1\n", "line 1"},       // negative count
      {"tenant ok qps=1\ntenant b qps=x\n", "line 2"},
  };
  for (const auto& [text, where] : cases) {
    try {
      parse(text);
      FAIL() << "expected invalid_argument for: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(where), std::string::npos)
          << e.what();
    }
  }
}

/// Registry with an injected bank-size table, so resident-bytes tests
/// never touch the filesystem.
TenantRegistry registry_with(TenantConfig config,
                             std::map<std::string, std::uint64_t> banks = {}) {
  return TenantRegistry(
      std::move(config),
      [banks = std::move(banks)](const std::string& prefix) -> std::uint64_t {
        const auto it = banks.find(prefix);
        return it == banks.end() ? 0 : it->second;
      });
}

TEST(TenantRegistry, QpsBucketAdmitsBurstThenRejectsTyped) {
  TenantConfig config;
  config.default_policy.max_qps = 1.0;
  TenantRegistry registry = registry_with(config);

  registry.admit("default", 10, "bank");
  try {
    registry.admit("default", 10, "bank");
    FAIL() << "expected QuotaError";
  } catch (const QuotaError& e) {
    EXPECT_EQ(e.kind(), QuotaKind::kQueriesPerSecond);
    EXPECT_EQ(e.tenant(), "default");
    EXPECT_EQ(quota_kind_name(e.kind()), std::string("queries-per-second"));
  }

  const std::vector<TenantStats> rows = registry.snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].admitted, 1u);
  EXPECT_EQ(rows[0].rejected, 1u);
  EXPECT_EQ(rows[0].queued, 1u);
  EXPECT_EQ(rows[0].query_residues, 10u);
}

TEST(TenantRegistry, SubUnitQpsStillAdmitsTheFirstQuery) {
  // Burst floors at one token: a 0.01 qps tenant gets one query now and
  // one every 100 seconds -- never "rejected forever".
  TenantConfig config;
  config.default_policy.max_qps = 0.01;
  TenantRegistry registry = registry_with(config);
  EXPECT_NO_THROW(registry.admit("default", 1, "bank"));
  EXPECT_THROW(registry.admit("default", 1, "bank"), QuotaError);
}

TEST(TenantRegistry, InFlightCapFreesOnComplete) {
  TenantConfig config;
  config.default_policy.max_in_flight = 2;
  TenantRegistry registry = registry_with(config);

  registry.admit("a", 1, "bank");
  registry.admit("a", 1, "bank");
  try {
    registry.admit("a", 1, "bank");
    FAIL() << "expected QuotaError";
  } catch (const QuotaError& e) {
    EXPECT_EQ(e.kind(), QuotaKind::kInFlight);
  }

  registry.complete("a", "bank", /*success=*/true, 0.25);
  EXPECT_NO_THROW(registry.admit("a", 1, "bank"));

  const std::vector<TenantStats> rows = registry.snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].admitted, 3u);
  EXPECT_EQ(rows[0].completed, 1u);
  EXPECT_EQ(rows[0].queued, 2u);
  EXPECT_DOUBLE_EQ(rows[0].max_latency_seconds, 0.25);
}

TEST(TenantRegistry, ResidentBytesChargePerPrefixWithRefCounts) {
  TenantConfig config;
  config.default_policy.max_resident_bytes = 250;
  TenantRegistry registry =
      registry_with(config, {{"banks/a", 100}, {"banks/b", 200}});

  registry.admit("t", 1, "banks/a");
  // A second request against the SAME bank adds no new charge.
  registry.admit("t", 1, "banks/a");
  EXPECT_EQ(registry.snapshot()[0].resident_bytes, 100u);

  try {
    registry.admit("t", 1, "banks/b");  // 100 + 200 > 250
    FAIL() << "expected QuotaError";
  } catch (const QuotaError& e) {
    EXPECT_EQ(e.kind(), QuotaKind::kResidentBytes);
  }

  // The charge outlives the first completion (one reference remains)
  // and is released with the last one.
  registry.complete("t", "banks/a", true, 0.01);
  EXPECT_EQ(registry.snapshot()[0].resident_bytes, 100u);
  registry.complete("t", "banks/a", true, 0.01);
  EXPECT_EQ(registry.snapshot()[0].resident_bytes, 0u);
  EXPECT_NO_THROW(registry.admit("t", 1, "banks/b"));
}

TEST(TenantRegistry, CancelRollsBackEverythingButTheQpsToken) {
  TenantConfig config;
  config.default_policy.max_qps = 1.0;
  TenantRegistry registry = registry_with(config, {{"bank", 64}});

  registry.admit("t", 7, "bank");
  registry.cancel("t", "bank");

  const std::vector<TenantStats> rows = registry.snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].admitted, 0u);   // the admit is rolled back...
  EXPECT_EQ(rows[0].queued, 0u);
  EXPECT_EQ(rows[0].resident_bytes, 0u);
  EXPECT_EQ(rows[0].completed, 0u);  // ...without faking an outcome
  EXPECT_EQ(rows[0].failed, 0u);

  // The qps token stays spent: the tenant did ask.
  EXPECT_THROW(registry.admit("t", 1, "bank"), QuotaError);
}

TEST(TenantRegistry, HedgeBudgetUnlimitedZeroAndMetered) {
  TenantConfig config;  // default hedges_per_second = -1: unlimited
  TenantPolicy none;
  none.hedges_per_second = 0.0;
  TenantPolicy one;
  one.hedges_per_second = 1.0;
  config.tenants["never"] = none;
  config.tenants["metered"] = one;
  TenantRegistry registry = registry_with(config);

  for (int i = 0; i < 5; ++i) EXPECT_TRUE(registry.try_spend_hedge("free"));
  EXPECT_FALSE(registry.try_spend_hedge("never"));
  EXPECT_FALSE(registry.try_spend_hedge("never"));
  EXPECT_TRUE(registry.try_spend_hedge("metered"));   // burst of one
  EXPECT_FALSE(registry.try_spend_hedge("metered"));  // bucket drained

  for (const TenantStats& row : registry.snapshot()) {
    if (row.name == "free") {
      EXPECT_EQ(row.hedges, 5u);
      EXPECT_EQ(row.hedges_denied, 0u);
    } else if (row.name == "never") {
      EXPECT_EQ(row.hedges, 0u);
      EXPECT_EQ(row.hedges_denied, 2u);
    } else if (row.name == "metered") {
      EXPECT_EQ(row.hedges, 1u);
      EXPECT_EQ(row.hedges_denied, 1u);
    }
  }
}

TEST(TenantRegistry, SnapshotListsConfiguredAndSeenTenantsSorted) {
  TenantConfig config;
  TenantPolicy heavy;
  heavy.weight = 8.0;
  config.tenants["beta"] = heavy;
  config.tenants["alpha"] = TenantPolicy{};
  TenantRegistry registry = registry_with(config);

  // Configured tenants are listed before any traffic; an outer-gate
  // rejection creates the row for a brand-new tenant.
  registry.record_rejection("zed");

  const std::vector<TenantStats> rows = registry.snapshot();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].name, "alpha");
  EXPECT_EQ(rows[1].name, "beta");
  EXPECT_DOUBLE_EQ(rows[1].weight, 8.0);
  EXPECT_EQ(rows[2].name, "zed");
  EXPECT_EQ(rows[2].rejected, 1u);

  EXPECT_DOUBLE_EQ(registry.weight("beta"), 8.0);
  EXPECT_DOUBLE_EQ(registry.weight("stranger"), 1.0);
  // Degenerate weights are floored, never zero.
  TenantConfig zero;
  zero.default_policy.weight = 0.0;
  EXPECT_GT(registry_with(zero).weight("anyone"), 0.0);
}

// ---------------------------------------------------------------------------
// FairScheduler (DRR across tenants)

GroupView group(std::uint64_t bank, std::uint64_t seq,
                std::vector<TenantShare> shares) {
  GroupView view;
  view.bank = bank;
  view.earliest_seq = seq;
  view.work = 0;
  for (const TenantShare& share : shares) view.work += share.work;
  view.shares = std::move(shares);
  return view;
}

FairScheduler::WeightFn weights(std::map<std::string, double> table) {
  return [table = std::move(table)](const std::string& tenant) {
    const auto it = table.find(tenant);
    return it == table.end() ? 1.0 : it->second;
  };
}

TEST(FairScheduler, EqualWeightsAlternateDeterministically) {
  FairScheduler::Config config;
  config.quantum = 100;
  config.within = SchedulerPolicy::kFifo;

  // Two runs over the same arrival stream must produce the same serve
  // order (the ring, deficits and cursor are all deterministic).
  for (int run = 0; run < 2; ++run) {
    FairScheduler scheduler(config);
    std::vector<GroupView> groups;
    std::uint64_t seq = 0;
    // tenant a keeps four groups pending, tenant b four as well.
    for (int i = 0; i < 4; ++i) {
      groups.push_back(group(1, seq++, {{"a", 100}}));
      groups.push_back(group(2, seq++, {{"b", 100}}));
    }
    std::vector<std::string> serves;
    while (!groups.empty()) {
      const PickResult pick = scheduler.pick(groups, 0, weights({}));
      serves.push_back(groups[pick.index].shares[0].tenant);
      groups.erase(groups.begin() + static_cast<std::ptrdiff_t>(pick.index));
    }
    EXPECT_EQ(serves, (std::vector<std::string>{"a", "b", "a", "b", "a", "b",
                                                "a", "b"}))
        << "run " << run;
  }
}

TEST(FairScheduler, RiderOnASharedPassPaysItsOwnShare) {
  FairScheduler::Config config;
  config.quantum = 100;
  config.within = SchedulerPolicy::kFifo;
  FairScheduler scheduler(config);

  // g0 is a cross-tenant coalesced pass (a and b both aboard); b also
  // has an older solo group than a's. Serving g0 debits BOTH members,
  // so a's younger solo group is served before b's older one: b already
  // got work by riding the shared pass.
  std::vector<GroupView> groups = {
      group(1, 0, {{"a", 100}, {"b", 100}}),
      group(2, 1, {{"b", 100}}),
      group(3, 2, {{"a", 100}}),
  };

  const PickResult first = scheduler.pick(groups, 0, weights({}));
  EXPECT_EQ(first.index, 0u);  // the shared pass
  groups.erase(groups.begin());

  const PickResult second = scheduler.pick(groups, 0, weights({}));
  EXPECT_EQ(groups[second.index].shares[0].tenant, "a");
  EXPECT_TRUE(second.reordered);  // passed over b's older group
  groups.erase(groups.begin() + static_cast<std::ptrdiff_t>(second.index));

  const PickResult third = scheduler.pick(groups, 0, weights({}));
  EXPECT_EQ(groups[third.index].shares[0].tenant, "b");
}

TEST(FairScheduler, ShareLessGroupsFallBackToPlainAffinity) {
  // Legacy callers that never fill GroupView::shares must keep the
  // non-fair behavior: oldest group first under kFifo, no throw.
  FairScheduler::Config config;
  config.within = SchedulerPolicy::kFifo;
  FairScheduler scheduler(config);
  const std::vector<GroupView> groups = {group(1, 5, {}), group(2, 3, {})};
  EXPECT_EQ(scheduler.pick(groups, 0, weights({})).index, 1u);
}

TEST(FairScheduler, LightTenantWaitIsWithinTheDrrBoundAtTenToOneSkew) {
  // The bound documented in scheduler.hpp: a tenant is served within
  // ceil(max_cost / (quantum * weight)) ring laps. With quantum 64,
  // light weight 1 and uniform group cost 512, the light tenant's gap
  // between serves is at most ceil(512/64) + 1 = 9 picks, no matter how
  // much work the 10x-weight heavy tenant keeps pending.
  FairScheduler::Config config;
  config.quantum = 64;
  config.within = SchedulerPolicy::kFifo;
  config.starvation_rounds = 0;  // isolate pure DRR (no aging rescue)
  FairScheduler scheduler(config);
  const FairScheduler::WeightFn weight =
      weights({{"heavy", 10.0}, {"light", 1.0}});
  const std::uint64_t kCost = 512;
  const int kBound = 9;

  std::uint64_t seq = 0;
  std::vector<GroupView> groups;
  const auto refill = [&] {
    std::size_t heavy_pending = 0;
    bool light_pending = false;
    for (const GroupView& g : groups) {
      if (g.shares[0].tenant == "heavy") ++heavy_pending;
      if (g.shares[0].tenant == "light") light_pending = true;
    }
    while (heavy_pending < 3) {
      groups.push_back(group(1 + seq % 4, seq, {{"heavy", kCost}}));
      ++seq;
      ++heavy_pending;
    }
    if (!light_pending) {
      groups.push_back(group(1 + seq % 4, seq, {{"light", kCost}}));
      ++seq;
    }
  };

  int since_light = 0;
  int max_gap = 0;
  int light_serves = 0;
  for (int picks = 0; picks < 400; ++picks) {
    refill();
    const PickResult pick = scheduler.pick(groups, 0, weight);
    const std::string tenant = groups[pick.index].shares[0].tenant;
    groups.erase(groups.begin() + static_cast<std::ptrdiff_t>(pick.index));
    if (tenant == "light") {
      ++light_serves;
      since_light = 0;
    } else {
      ++since_light;
      max_gap = std::max(max_gap, since_light);
    }
  }
  EXPECT_GE(light_serves, 400 / (kBound + 1));
  EXPECT_LE(max_gap, kBound) << "light tenant waited " << max_gap
                             << " picks, DRR bound is " << kBound;
}

TEST(FairScheduler, StarvationGuardOutranksWeightsAtScaledThreshold) {
  // In fair mode the aging guard scales with queue depth (a group is
  // starving after starvation_rounds * pending_groups rounds), so that
  // sustained backlog -- where EVERY group waits ~depth rounds -- does
  // not flatten DRR into FIFO. At the scaled threshold the guard still
  // outranks weights.
  FairScheduler::Config config;
  config.quantum = 1 << 20;  // heavy's deficit always covers its groups
  config.within = SchedulerPolicy::kFifo;
  config.starvation_rounds = 3;
  FairScheduler scheduler(config);
  const FairScheduler::WeightFn weight =
      weights({{"heavy", 100.0}, {"light", 1e-9}});  // floored, tiny

  std::vector<GroupView> groups = {
      group(1, 0, {{"heavy", 64}}),
      group(2, 1, {{"light", 64}}),
  };
  groups[1].rounds_waited = 5;  // below 3 * 2: not starving yet
  EXPECT_EQ(scheduler.pick(groups, 0, weight).index, 0u);

  groups[1].rounds_waited = 6;  // at the scaled threshold
  const PickResult pick = scheduler.pick(groups, 0, weight);
  EXPECT_EQ(pick.index, 1u);
  EXPECT_TRUE(pick.starvation_promotion);
}

}  // namespace
}  // namespace psc::service
