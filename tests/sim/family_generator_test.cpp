#include "sim/family_generator.hpp"

#include <gtest/gtest.h>

#include "align/gapped.hpp"

namespace psc::sim {
namespace {

TEST(GenerateFamilies, CountsMatchConfig) {
  FamilyConfig config;
  config.families = 5;
  config.members_per_family = 4;
  const FamilyBenchmark benchmark = generate_families(config);
  EXPECT_EQ(benchmark.members.size(), 20u);
  EXPECT_EQ(benchmark.family_of.size(), 20u);
  EXPECT_EQ(benchmark.family_count, 5u);
}

TEST(GenerateFamilies, FamilyLabelsAreBlocked) {
  FamilyConfig config;
  config.families = 3;
  config.members_per_family = 2;
  const FamilyBenchmark benchmark = generate_families(config);
  EXPECT_EQ(benchmark.family_of[0], 0u);
  EXPECT_EQ(benchmark.family_of[1], 0u);
  EXPECT_EQ(benchmark.family_of[2], 1u);
  EXPECT_EQ(benchmark.family_of[5], 2u);
}

TEST(GenerateFamilies, MembersOfSameFamilyAreSimilar) {
  FamilyConfig config;
  config.families = 2;
  config.members_per_family = 3;
  config.ancestor_length = 200;
  config.divergence.substitution_rate = 0.15;
  const FamilyBenchmark benchmark = generate_families(config);

  const auto& m = bio::SubstitutionMatrix::blosum62();
  const auto& a = benchmark.members[0];
  const auto& b = benchmark.members[1];  // same family
  const auto& c = benchmark.members[3];  // different family
  const align::Alignment same = align::smith_waterman(
      {a.data(), a.size()}, {b.data(), b.size()}, m, align::GapParams{});
  const align::Alignment diff = align::smith_waterman(
      {a.data(), a.size()}, {c.data(), c.size()}, m, align::GapParams{});
  EXPECT_GT(same.score, 3 * diff.score);
}

TEST(GenerateFamilies, Deterministic) {
  FamilyConfig config;
  config.families = 2;
  config.members_per_family = 2;
  const FamilyBenchmark a = generate_families(config);
  const FamilyBenchmark b = generate_families(config);
  for (std::size_t i = 0; i < a.members.size(); ++i) {
    EXPECT_EQ(a.members[i].residues(), b.members[i].residues());
  }
}

TEST(GenerateFamilies, EmptyFamilyThrows) {
  FamilyConfig config;
  config.members_per_family = 0;
  EXPECT_THROW(generate_families(config), std::invalid_argument);
}

TEST(SplitQueries, SplitsPerFamily) {
  FamilyConfig config;
  config.families = 4;
  config.members_per_family = 5;
  const FamilyBenchmark benchmark = generate_families(config);
  const QueryTargetSplit split = split_queries(benchmark, 2);
  EXPECT_EQ(split.queries.size(), 8u);
  EXPECT_EQ(split.targets.size(), 12u);
  EXPECT_EQ(split.query_family.size(), 8u);
  EXPECT_EQ(split.target_family.size(), 12u);
}

TEST(SplitQueries, EveryFamilyRepresentedOnBothSides) {
  FamilyConfig config;
  config.families = 3;
  config.members_per_family = 4;
  const FamilyBenchmark benchmark = generate_families(config);
  const QueryTargetSplit split = split_queries(benchmark, 1);
  std::vector<int> queries_per(3, 0);
  std::vector<int> targets_per(3, 0);
  for (const auto f : split.query_family) ++queries_per[f];
  for (const auto f : split.target_family) ++targets_per[f];
  for (int f = 0; f < 3; ++f) {
    EXPECT_EQ(queries_per[f], 1);
    EXPECT_EQ(targets_per[f], 3);
  }
}

TEST(SplitQueries, ZeroQueriesMeansAllTargets) {
  FamilyConfig config;
  config.families = 2;
  config.members_per_family = 3;
  const FamilyBenchmark benchmark = generate_families(config);
  const QueryTargetSplit split = split_queries(benchmark, 0);
  EXPECT_EQ(split.queries.size(), 0u);
  EXPECT_EQ(split.targets.size(), 6u);
}

}  // namespace
}  // namespace psc::sim
