#include "sim/mutation.hpp"

#include <gtest/gtest.h>

#include "bio/substitution_matrix.hpp"
#include "sim/protein_generator.hpp"

namespace psc::sim {
namespace {

TEST(MutateProtein, ZeroRatesLeaveSequenceIntact) {
  util::Xoshiro256 rng(1);
  const bio::Sequence original = generate_protein("p", 200, rng);
  MutationConfig config;
  config.substitution_rate = 0.0;
  config.indel_rate = 0.0;
  const bio::Sequence mutated = mutate_protein(original, config, rng);
  EXPECT_EQ(mutated.residues(), original.residues());
  EXPECT_NE(mutated.id().find("|mut"), std::string::npos);
}

TEST(MutateProtein, SubstitutionRateControlsIdentity) {
  util::Xoshiro256 rng(2);
  const bio::Sequence original = generate_protein("p", 5000, rng);
  MutationConfig config;
  config.substitution_rate = 0.3;
  config.indel_rate = 0.0;
  const bio::Sequence mutated = mutate_protein(original, config, rng);
  ASSERT_EQ(mutated.size(), original.size());
  std::size_t identical = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (original[i] == mutated[i]) ++identical;
  }
  const double identity =
      static_cast<double>(identical) / static_cast<double>(original.size());
  EXPECT_NEAR(identity, expected_identity(config), 0.03);
}

TEST(MutateProtein, SubstitutionsPreferConservativeReplacements) {
  util::Xoshiro256 rng(3);
  const bio::Sequence original = generate_protein("p", 20000, rng);
  MutationConfig config;
  config.substitution_rate = 1.0;  // mutate every position
  config.indel_rate = 0.0;
  config.conservation = 1.0;
  const bio::Sequence mutated = mutate_protein(original, config, rng);
  const auto& matrix = bio::SubstitutionMatrix::blosum62();
  double mean_score = 0.0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    mean_score += matrix.score(original[i], mutated[i]);
  }
  mean_score /= static_cast<double>(original.size());
  // Random replacement would average well below zero (about -1); the
  // BLOSUM-conditioned model must stay distinctly higher.
  EXPECT_GT(mean_score, -0.5);
}

TEST(MutateProtein, IndelsChangeLength) {
  util::Xoshiro256 rng(4);
  const bio::Sequence original = generate_protein("p", 1000, rng);
  MutationConfig config;
  config.substitution_rate = 0.0;
  config.indel_rate = 0.05;
  const bio::Sequence mutated = mutate_protein(original, config, rng);
  EXPECT_NE(mutated.size(), original.size());
}

TEST(MutateProtein, OutputsOnlyStandardResidues) {
  util::Xoshiro256 rng(5);
  const bio::Sequence original = generate_protein("p", 500, rng);
  MutationConfig config;
  config.substitution_rate = 0.5;
  config.indel_rate = 0.05;
  const bio::Sequence mutated = mutate_protein(original, config, rng);
  for (std::size_t i = 0; i < mutated.size(); ++i) {
    EXPECT_LT(mutated[i], bio::kNumAminoAcids);
  }
}

TEST(MutateProtein, LengthStaysCloseWithBalancedIndels) {
  util::Xoshiro256 rng(6);
  const bio::Sequence original = generate_protein("p", 5000, rng);
  MutationConfig config;
  config.substitution_rate = 0.0;
  config.indel_rate = 0.02;
  const bio::Sequence mutated = mutate_protein(original, config, rng);
  // Insertions and deletions are symmetric; expect within 5%.
  EXPECT_NEAR(static_cast<double>(mutated.size()),
              static_cast<double>(original.size()),
              0.05 * static_cast<double>(original.size()));
}

TEST(ExpectedIdentity, Formula) {
  MutationConfig config;
  config.substitution_rate = 0.25;
  EXPECT_DOUBLE_EQ(expected_identity(config), 0.75);
}

}  // namespace
}  // namespace psc::sim
