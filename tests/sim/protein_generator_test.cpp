#include "sim/protein_generator.hpp"

#include <gtest/gtest.h>

#include <array>

namespace psc::sim {
namespace {

TEST(GenerateProtein, ExactLengthAndStandardResidues) {
  util::Xoshiro256 rng(1);
  const bio::Sequence protein = generate_protein("p", 123, rng);
  EXPECT_EQ(protein.size(), 123u);
  EXPECT_EQ(protein.id(), "p");
  for (std::size_t i = 0; i < protein.size(); ++i) {
    EXPECT_LT(protein[i], bio::kNumAminoAcids);
  }
}

TEST(GenerateProtein, CompositionTracksRobinsonFrequencies) {
  util::Xoshiro256 rng(2);
  std::array<std::size_t, bio::kNumAminoAcids> counts{};
  const std::size_t total = 200000;
  const bio::Sequence protein = generate_protein("p", total, rng);
  for (std::size_t i = 0; i < protein.size(); ++i) ++counts[protein[i]];
  const auto& freq = bio::robinson_frequencies();
  for (std::size_t r = 0; r < bio::kNumAminoAcids; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / static_cast<double>(total),
                freq[r], 0.01);
  }
}

TEST(GenerateProteinBank, CountAndIds) {
  ProteinBankConfig config;
  config.count = 25;
  config.id_prefix = "q";
  const bio::SequenceBank bank = generate_protein_bank(config);
  ASSERT_EQ(bank.size(), 25u);
  EXPECT_EQ(bank[0].id(), "q0");
  EXPECT_EQ(bank[24].id(), "q24");
}

TEST(GenerateProteinBank, Deterministic) {
  ProteinBankConfig config;
  config.count = 10;
  config.seed = 5;
  const bio::SequenceBank a = generate_protein_bank(config);
  const bio::SequenceBank b = generate_protein_bank(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].residues(), b[i].residues());
  }
}

TEST(GenerateProteinBank, LengthsWithinBounds) {
  ProteinBankConfig config;
  config.count = 200;
  config.mean_length = 100;
  config.min_length = 40;
  config.max_length = 400;
  const bio::SequenceBank bank = generate_protein_bank(config);
  for (const auto& protein : bank) {
    EXPECT_GE(protein.size(), 40u);
    EXPECT_LE(protein.size(), 400u);
  }
}

TEST(GenerateProteinBank, MeanLengthRoughlyRespected) {
  ProteinBankConfig config;
  config.count = 2000;
  config.mean_length = 300;
  config.min_length = 1;
  config.max_length = 10000;
  const bio::SequenceBank bank = generate_protein_bank(config);
  const double mean = static_cast<double>(bank.total_residues()) /
                      static_cast<double>(bank.size());
  EXPECT_NEAR(mean, 300.0, 30.0);
}

TEST(GenerateProteinBank, LengthsVary) {
  ProteinBankConfig config;
  config.count = 50;
  const bio::SequenceBank bank = generate_protein_bank(config);
  std::size_t distinct = 0;
  for (std::size_t i = 1; i < bank.size(); ++i) {
    if (bank[i].size() != bank[0].size()) ++distinct;
  }
  EXPECT_GT(distinct, 10u);
}

}  // namespace
}  // namespace psc::sim
