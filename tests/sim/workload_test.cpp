#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace psc::sim {
namespace {

ScaledWorkloadConfig tiny_config() {
  ScaledWorkloadConfig config;
  config.scale = 0.0003;  // ~66 knt genome, a few proteins per bank
  return config;
}

TEST(PaperBankSizes, MatchThePaper) {
  const auto& sizes = paper_bank_sizes();
  ASSERT_EQ(sizes.size(), 4u);
  EXPECT_EQ(sizes[0].second, 1000u);
  EXPECT_EQ(sizes[3].second, 30000u);
  EXPECT_EQ(paper_genome_size(), 220'000'000u);
}

TEST(BuildPaperWorkload, FourNestedBanks) {
  const PaperWorkload workload = build_paper_workload(tiny_config());
  ASSERT_EQ(workload.banks.size(), 4u);
  EXPECT_EQ(workload.banks[0].label, "1K");
  EXPECT_EQ(workload.banks[3].label, "30K");
  // Nested: each bank is a prefix of the next.
  for (std::size_t b = 0; b + 1 < workload.banks.size(); ++b) {
    const auto& small = workload.banks[b].proteins;
    const auto& large = workload.banks[b + 1].proteins;
    ASSERT_LE(small.size(), large.size());
    for (std::size_t i = 0; i < small.size(); ++i) {
      EXPECT_EQ(small[i].residues(), large[i].residues());
    }
  }
}

TEST(BuildPaperWorkload, BankSizesScale) {
  ScaledWorkloadConfig config;
  config.scale = 0.01;
  const PaperWorkload workload = build_paper_workload(config);
  EXPECT_EQ(workload.banks[0].proteins.size(), 10u);
  EXPECT_EQ(workload.banks[1].proteins.size(), 30u);
  EXPECT_EQ(workload.banks[2].proteins.size(), 100u);
  EXPECT_EQ(workload.banks[3].proteins.size(), 300u);
  EXPECT_EQ(workload.genome.size(), 2'200'000u);
}

TEST(BuildPaperWorkload, GenomeBankIsTranslatedFragments) {
  const PaperWorkload workload = build_paper_workload(tiny_config());
  EXPECT_GT(workload.genome_bank.size(), 0u);
  EXPECT_EQ(workload.genome_bank.kind(), bio::SequenceKind::kProtein);
  for (std::size_t i = 0; i < std::min<std::size_t>(20, workload.genome_bank.size()); ++i) {
    EXPECT_GE(workload.genome_bank[i].size(), 20u);
  }
}

TEST(BuildPaperWorkload, PlantsHomologs) {
  const PaperWorkload workload = build_paper_workload(tiny_config());
  EXPECT_GT(workload.planted_genes, 0u);
}

TEST(BuildPaperWorkload, Deterministic) {
  const PaperWorkload a = build_paper_workload(tiny_config());
  const PaperWorkload b = build_paper_workload(tiny_config());
  EXPECT_EQ(a.genome.residues(), b.genome.residues());
  EXPECT_EQ(a.banks[0].proteins[0].residues(),
            b.banks[0].proteins[0].residues());
}

TEST(BuildPaperWorkload, InvalidScaleThrows) {
  ScaledWorkloadConfig config;
  config.scale = 0.0;
  EXPECT_THROW(build_paper_workload(config), std::invalid_argument);
  config.scale = 1.5;
  EXPECT_THROW(build_paper_workload(config), std::invalid_argument);
}

TEST(ScaleFromEnv, ParsesKeywordsAndNumbers) {
  ::setenv("PSC_SCALE", "small", 1);
  EXPECT_DOUBLE_EQ(scale_from_env(), 0.01);
  ::setenv("PSC_SCALE", "medium", 1);
  EXPECT_DOUBLE_EQ(scale_from_env(), 0.05);
  ::setenv("PSC_SCALE", "large", 1);
  EXPECT_DOUBLE_EQ(scale_from_env(), 0.2);
  ::setenv("PSC_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(scale_from_env(), 0.5);
  ::setenv("PSC_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(scale_from_env(), 0.01);
  ::unsetenv("PSC_SCALE");
  EXPECT_DOUBLE_EQ(scale_from_env(), 0.01);
}

}  // namespace
}  // namespace psc::sim
