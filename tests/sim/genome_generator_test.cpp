#include "sim/genome_generator.hpp"

#include <gtest/gtest.h>

#include "bio/translate.hpp"

namespace psc::sim {
namespace {

TEST(GenerateGenome, RespectsLength) {
  GenomeConfig config;
  config.length = 5000;
  const bio::Sequence genome = generate_genome(config);
  EXPECT_EQ(genome.size(), 5000u);
  EXPECT_EQ(genome.kind(), bio::SequenceKind::kDna);
}

TEST(GenerateGenome, Deterministic) {
  GenomeConfig config;
  config.length = 2000;
  config.seed = 123;
  const bio::Sequence a = generate_genome(config);
  const bio::Sequence b = generate_genome(config);
  EXPECT_EQ(a.residues(), b.residues());
}

TEST(GenerateGenome, SeedChangesOutput) {
  GenomeConfig config;
  config.length = 2000;
  config.seed = 1;
  const bio::Sequence a = generate_genome(config);
  config.seed = 2;
  const bio::Sequence b = generate_genome(config);
  EXPECT_NE(a.residues(), b.residues());
}

TEST(GenerateGenome, GcContentApproximatelyRespected) {
  GenomeConfig config;
  config.length = 100000;
  config.gc_content = 0.41;
  config.markov_strength = 0.0;  // i.i.d. so the check is exact-ish
  const bio::Sequence genome = generate_genome(config);
  std::size_t gc = 0;
  for (std::size_t i = 0; i < genome.size(); ++i) {
    if (genome[i] == 1 || genome[i] == 2) ++gc;
  }
  EXPECT_NEAR(static_cast<double>(gc) / static_cast<double>(genome.size()),
              0.41, 0.02);
}

TEST(GenerateGenome, OnlyValidNucleotides) {
  GenomeConfig config;
  config.length = 10000;
  const bio::Sequence genome = generate_genome(config);
  for (std::size_t i = 0; i < genome.size(); ++i) {
    EXPECT_LT(genome[i], 4);
  }
}

TEST(GenerateGenome, MarkovStructureSuppressesCpG) {
  GenomeConfig config;
  config.length = 200000;
  config.markov_strength = 1.0;
  const bio::Sequence genome = generate_genome(config);
  std::size_t cg = 0;  // C followed by G
  std::size_t gc = 0;  // G followed by C
  for (std::size_t i = 0; i + 1 < genome.size(); ++i) {
    if (genome[i] == 1 && genome[i + 1] == 2) ++cg;
    if (genome[i] == 2 && genome[i + 1] == 1) ++gc;
  }
  EXPECT_LT(cg, gc / 2);  // CpG strongly depleted relative to GpC
}

TEST(PlantGene, ForwardStrandTranslatesBack) {
  GenomeConfig config;
  config.length = 1000;
  bio::Sequence genome = generate_genome(config);
  const bio::Sequence protein =
      bio::Sequence::protein_from_letters("p", "MKVLARNDCQEGHIKW");
  util::Xoshiro256 rng(7);
  plant_gene(genome, protein, 120, /*forward=*/true, rng);

  const auto frame = bio::translate_frame(genome, 1 + (120 % 3));
  const std::string translated = frame.protein.to_letters();
  EXPECT_NE(translated.find("MKVLARNDCQEGHIKW"), std::string::npos);
}

TEST(PlantGene, ReverseStrandTranslatesBack) {
  GenomeConfig config;
  config.length = 1000;
  bio::Sequence genome = generate_genome(config);
  const bio::Sequence protein =
      bio::Sequence::protein_from_letters("p", "MKVLARNDCQEGHIKW");
  util::Xoshiro256 rng(7);
  plant_gene(genome, protein, 123, /*forward=*/false, rng);

  // The protein must appear in one of the three reverse frames.
  bool found = false;
  for (int frame : {-1, -2, -3}) {
    const auto tf = bio::translate_frame(genome, frame);
    if (tf.protein.to_letters().find("MKVLARNDCQEGHIKW") !=
        std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(PlantGene, DoesNotFitThrows) {
  GenomeConfig config;
  config.length = 30;
  bio::Sequence genome = generate_genome(config);
  const bio::Sequence protein =
      bio::Sequence::protein_from_letters("p", "MKVLARNDCQEGHIKW");
  util::Xoshiro256 rng(7);
  EXPECT_THROW(plant_gene(genome, protein, 0, true, rng), std::out_of_range);
}

TEST(PlantBank, PlantsEveryProtein) {
  GenomeConfig config;
  config.length = 20000;
  bio::Sequence genome = generate_genome(config);
  bio::SequenceBank bank(bio::SequenceKind::kProtein);
  for (int i = 0; i < 5; ++i) {
    bank.add(bio::Sequence::protein_from_letters(
        "p" + std::to_string(i), "MKVLARNDCQEGHIKWMKVLARNDCQEGHIKW"));
  }
  util::Xoshiro256 rng(9);
  const auto plants = plant_bank(genome, bank, rng);
  ASSERT_EQ(plants.size(), 5u);
  for (std::size_t i = 0; i + 1 < plants.size(); ++i) {
    EXPECT_LE(plants[i].genome_begin + 3 * plants[i].protein_length,
              plants[i + 1].genome_begin + 3 * plants[i + 1].protein_length);
  }
}

TEST(PlantBank, GenomeTooSmallThrows) {
  GenomeConfig config;
  config.length = 100;
  bio::Sequence genome = generate_genome(config);
  bio::SequenceBank bank(bio::SequenceKind::kProtein);
  bank.add(bio::Sequence::protein_from_letters(
      "p", std::string(200, 'A').c_str()));
  util::Xoshiro256 rng(9);
  EXPECT_THROW(plant_bank(genome, bank, rng), std::invalid_argument);
}

}  // namespace
}  // namespace psc::sim
