// The ISSUE's bit-identity property at pipeline level: for every
// --step3-kernel, every tested worker count, and both the barrier and
// the overlapped step-2/3 paths, the pipeline output -- scores,
// tracebacks, E-values, and step-3 counters -- is bit-identical to the
// scalar sequential reference.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "align/gapped_simd.hpp"
#include "core/pipeline.hpp"
#include "sim/genome_generator.hpp"
#include "sim/mutation.hpp"
#include "sim/protein_generator.hpp"

namespace psc::core {
namespace {

struct TestBanks {
  bio::SequenceBank proteins{bio::SequenceKind::kProtein};
  bio::Sequence genome;

  explicit TestBanks(std::uint64_t seed) {
    util::Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < 4; ++i) {
      proteins.add(sim::generate_protein("p" + std::to_string(i), 100, rng));
    }
    sim::GenomeConfig config;
    config.length = 12000;
    config.seed = seed;
    genome = sim::generate_genome(config);
    sim::MutationConfig divergence;
    divergence.substitution_rate = 0.15;
    divergence.indel_rate = 0.0;
    sim::plant_gene(genome, sim::mutate_protein(proteins[0], divergence, rng),
                    2500, true, rng);
    sim::plant_gene(genome, sim::mutate_protein(proteins[2], divergence, rng),
                    8001, false, rng);
  }
};

void expect_identical(const std::vector<Match>& a, const std::vector<Match>& b,
                      const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bank0_sequence, b[i].bank0_sequence) << label << " #" << i;
    EXPECT_EQ(a[i].bank1_sequence, b[i].bank1_sequence) << label << " #" << i;
    EXPECT_EQ(a[i].alignment.score, b[i].alignment.score) << label << " #" << i;
    EXPECT_EQ(a[i].alignment.begin0, b[i].alignment.begin0) << label << " #" << i;
    EXPECT_EQ(a[i].alignment.end0, b[i].alignment.end0) << label << " #" << i;
    EXPECT_EQ(a[i].alignment.begin1, b[i].alignment.begin1) << label << " #" << i;
    EXPECT_EQ(a[i].alignment.end1, b[i].alignment.end1) << label << " #" << i;
    EXPECT_EQ(a[i].alignment.ops, b[i].alignment.ops) << label << " #" << i;
    EXPECT_EQ(a[i].bit_score, b[i].bit_score) << label << " #" << i;
    EXPECT_EQ(a[i].e_value, b[i].e_value) << label << " #" << i;
  }
}

TEST(Step3Kernels, AllKernelsWorkersAndPathsMatchScalarSequential) {
  const TestBanks banks(21);
  PipelineOptions reference;
  reference.backend = Step2Backend::kHostSequential;
  reference.step3_kernel = align::GappedKernel::kScalar;
  reference.with_traceback = true;
  const PipelineResult ref =
      run_pipeline_genome(banks.proteins, banks.genome, reference);
  ASSERT_FALSE(ref.matches.empty());
  EXPECT_EQ(ref.step3_engine, "scalar");

  const std::size_t hardware = std::thread::hardware_concurrency() == 0
                                   ? 1
                                   : std::thread::hardware_concurrency();
  for (const align::GappedKernel kernel :
       {align::GappedKernel::kPortable, align::GappedKernel::kAvx2,
        align::GappedKernel::kAuto}) {
    for (const std::size_t threads :
         std::vector<std::size_t>{1, 2, 7, hardware}) {
      for (const bool overlap : {false, true}) {
        PipelineOptions options;
        options.backend = Step2Backend::kHostParallel;
        options.step3_kernel = kernel;
        options.with_traceback = true;
        options.host_threads = threads;
        options.step3_threads = threads;
        options.overlap_steps23 = overlap;
        const PipelineResult result =
            run_pipeline_genome(banks.proteins, banks.genome, options);
        const std::string label =
            std::string("kernel=") + align::gapped_kernel_name(kernel) +
            " threads=" + std::to_string(threads) +
            " overlap=" + std::to_string(overlap);
        expect_identical(ref.matches, result.matches, label);
        EXPECT_EQ(result.counters.step2_hits, ref.counters.step2_hits)
            << label;
        EXPECT_EQ(result.counters.step3_extensions,
                  ref.counters.step3_extensions)
            << label;
        // The resolved engine is reported, never the raw request.
        EXPECT_NE(result.step3_engine, "auto") << label;
        EXPECT_FALSE(result.step3_engine.empty()) << label;
        if (kernel == align::GappedKernel::kAvx2 &&
            align::gapped_avx2_available()) {
          EXPECT_EQ(result.step3_engine, "avx2") << label;
        }
      }
    }
  }
}

TEST(Step3Kernels, CompositionStatsAndEValuePathsMatch) {
  // Composition-based statistics rescale E-values per query; the kernel
  // must not perturb a single bit of them.
  const TestBanks banks(22);
  PipelineOptions reference;
  reference.backend = Step2Backend::kHostSequential;
  reference.step3_kernel = align::GappedKernel::kScalar;
  reference.composition_based_stats = true;
  reference.with_traceback = true;
  const PipelineResult ref =
      run_pipeline_genome(banks.proteins, banks.genome, reference);

  for (const align::GappedKernel kernel :
       {align::GappedKernel::kPortable, align::GappedKernel::kAuto}) {
    PipelineOptions options = reference;
    options.backend = Step2Backend::kHostParallel;
    options.step3_kernel = kernel;
    options.host_threads = 3;
    options.step3_threads = 3;
    options.overlap_steps23 = true;
    const PipelineResult result =
        run_pipeline_genome(banks.proteins, banks.genome, options);
    expect_identical(ref.matches, result.matches,
                     std::string("composition kernel=") +
                         align::gapped_kernel_name(kernel));
  }
}

TEST(Step3Kernels, RascHybridScreenUnchangedByKernel) {
  // The hybrid backend's banded screen runs through the gap operator;
  // its survivor set (and thus the final matches) must not depend on
  // the kernel used for the functional pass.
  const TestBanks banks(23);
  PipelineOptions reference;
  reference.backend = Step2Backend::kRasc;
  reference.step3_kernel = align::GappedKernel::kScalar;
  reference.with_traceback = true;
  const PipelineResult ref =
      run_pipeline_genome(banks.proteins, banks.genome, reference);

  PipelineOptions simd = reference;
  simd.step3_kernel = align::GappedKernel::kAuto;
  const PipelineResult result =
      run_pipeline_genome(banks.proteins, banks.genome, simd);
  expect_identical(ref.matches, result.matches, "rasc hybrid");
}

}  // namespace
}  // namespace psc::core
