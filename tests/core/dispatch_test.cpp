#include "core/dispatch.hpp"

#include <gtest/gtest.h>

#include "core/step1_index.hpp"
#include "core/step2_host.hpp"
#include "sim/protein_generator.hpp"

namespace psc::core {
namespace {

struct TestBanks {
  bio::SequenceBank bank0{bio::SequenceKind::kProtein};
  bio::SequenceBank bank1{bio::SequenceKind::kProtein};
  PipelineOptions options;
  Step1Result step1;

  explicit TestBanks(std::uint64_t seed)
      : step1{index::SeedModel::subset_w4(),
              index::IndexTable(bio::SequenceBank(bio::SequenceKind::kProtein),
                                index::SeedModel::subset_w4()),
              index::IndexTable(bio::SequenceBank(bio::SequenceKind::kProtein),
                                index::SeedModel::subset_w4()),
              0} {
    util::Xoshiro256 rng(seed);
    for (int i = 0; i < 5; ++i) {
      bank0.add(sim::generate_protein("a" + std::to_string(i), 120, rng));
    }
    for (int i = 0; i < 8; ++i) {
      bank1.add(sim::generate_protein("b" + std::to_string(i), 150, rng));
    }
    // Shared region so hits exist.
    bio::Sequence& target = bank1.mutable_sequence(2);
    for (std::size_t k = 0; k < 40; ++k) {
      target.mutable_residues()[30 + k] = bank0[1][20 + k];
    }
    step1 = run_step1(bank0, bank1, options);
  }

  DispatchConfig make_config(double fraction) const {
    DispatchConfig config;
    config.host_fraction = fraction;
    config.host_threads = 2;
    config.shape = options.shape;
    config.threshold = 30;
    config.rasc.psc.num_pes = 32;
    config.rasc.psc.window_length = options.shape.length();
    config.rasc.psc.threshold = 30;
    config.rasc.shape = options.shape;
    return config;
  }
};

TEST(Dispatch, AllOnAcceleratorMatchesHostReference) {
  const TestBanks banks(1);
  const HostStep2Result reference = run_step2_host(
      banks.bank0, banks.step1.table0, banks.bank1, banks.step1.table1,
      bio::SubstitutionMatrix::blosum62(), banks.options.shape, 30);
  const DispatchResult dispatched = run_step2_dispatch(
      banks.bank0, banks.step1.table0, banks.bank1, banks.step1.table1,
      bio::SubstitutionMatrix::blosum62(), banks.make_config(0.0));
  EXPECT_EQ(dispatched.hits.size(), reference.hits.size());
  EXPECT_EQ(dispatched.host_pairs, 0u);
  EXPECT_DOUBLE_EQ(dispatched.host_seconds, 0.0);
  EXPECT_GT(dispatched.accel_seconds, 0.0);
}

TEST(Dispatch, AllOnHost) {
  const TestBanks banks(2);
  const DispatchResult dispatched = run_step2_dispatch(
      banks.bank0, banks.step1.table0, banks.bank1, banks.step1.table1,
      bio::SubstitutionMatrix::blosum62(), banks.make_config(1.0));
  EXPECT_EQ(dispatched.accel_pairs, 0u);
  EXPECT_DOUBLE_EQ(dispatched.accel_seconds, 0.0);
  EXPECT_GT(dispatched.host_seconds, 0.0);
  EXPECT_FALSE(dispatched.hits.empty());
}

TEST(Dispatch, HitSetsIdenticalAcrossFractions) {
  const TestBanks banks(3);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const DispatchResult reference = run_step2_dispatch(
      banks.bank0, banks.step1.table0, banks.bank1, banks.step1.table1, m,
      banks.make_config(0.0));
  for (const double fraction : {0.25, 0.5, 0.75}) {
    const DispatchResult result = run_step2_dispatch(
        banks.bank0, banks.step1.table0, banks.bank1, banks.step1.table1, m,
        banks.make_config(fraction));
    EXPECT_EQ(result.hits, reference.hits) << fraction;
    EXPECT_EQ(result.pairs, reference.pairs);
  }
}

TEST(Dispatch, FractionControlsSplit) {
  const TestBanks banks(4);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const DispatchResult quarter = run_step2_dispatch(
      banks.bank0, banks.step1.table0, banks.bank1, banks.step1.table1, m,
      banks.make_config(0.25));
  const DispatchResult three_quarters = run_step2_dispatch(
      banks.bank0, banks.step1.table0, banks.bank1, banks.step1.table1, m,
      banks.make_config(0.75));
  EXPECT_LT(quarter.host_pairs, three_quarters.host_pairs);
  EXPECT_GT(quarter.accel_pairs, three_quarters.accel_pairs);
  // The target is an upper bound on the host share by construction.
  EXPECT_LE(static_cast<double>(quarter.host_pairs),
            0.25 * static_cast<double>(quarter.pairs) + 1.0);
}

TEST(Dispatch, CombinedIsMax) {
  DispatchResult result;
  result.host_seconds = 2.0;
  result.accel_seconds = 3.0;
  EXPECT_DOUBLE_EQ(result.combined_seconds(), 3.0);
  result.host_seconds = 5.0;
  EXPECT_DOUBLE_EQ(result.combined_seconds(), 5.0);
}

TEST(Dispatch, InvalidFractionThrows) {
  const TestBanks banks(5);
  EXPECT_THROW(
      run_step2_dispatch(banks.bank0, banks.step1.table0, banks.bank1,
                         banks.step1.table1,
                         bio::SubstitutionMatrix::blosum62(),
                         banks.make_config(-0.1)),
      std::invalid_argument);
  EXPECT_THROW(
      run_step2_dispatch(banks.bank0, banks.step1.table0, banks.bank1,
                         banks.step1.table1,
                         bio::SubstitutionMatrix::blosum62(),
                         banks.make_config(1.5)),
      std::invalid_argument);
}

}  // namespace
}  // namespace psc::core
