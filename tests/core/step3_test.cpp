#include "core/step3_gapped.hpp"

#include <gtest/gtest.h>

#include "sim/mutation.hpp"
#include "sim/protein_generator.hpp"

namespace psc::core {
namespace {

struct TestBanks {
  bio::SequenceBank bank0{bio::SequenceKind::kProtein};
  bio::SequenceBank bank1{bio::SequenceKind::kProtein};
  PipelineOptions options;

  explicit TestBanks(std::uint64_t seed) {
    util::Xoshiro256 rng(seed);
    const bio::Sequence ancestor = sim::generate_protein("anc", 120, rng);
    bank0.add(bio::Sequence("q", bio::SequenceKind::kProtein,
                            std::vector<std::uint8_t>(ancestor.residues())));
    sim::MutationConfig divergence;
    divergence.substitution_rate = 0.2;
    bank1.add(sim::mutate_protein(ancestor, divergence, rng));
    bank1.add(sim::generate_protein("noise", 200, rng));
  }
};

TEST(Step3, ExtendsSeedIntoSignificantMatch) {
  const TestBanks banks(1);
  // A seed hit in the middle of the homologous pair.
  std::vector<align::SeedPairHit> hits = {
      align::SeedPairHit{{0, 50}, {0, 50}, 40}};
  const Step3Result result =
      run_step3(banks.bank0, banks.bank1, hits,
                bio::SubstitutionMatrix::blosum62(), banks.options);
  ASSERT_EQ(result.matches.size(), 1u);
  const Match& match = result.matches[0];
  EXPECT_EQ(match.bank0_sequence, 0u);
  EXPECT_EQ(match.bank1_sequence, 0u);
  EXPECT_LE(match.e_value, banks.options.e_value_cutoff);
  EXPECT_GT(match.alignment.end0 - match.alignment.begin0, 50u);
}

TEST(Step3, EmptyHitsEmptyResult) {
  const TestBanks banks(2);
  const Step3Result result =
      run_step3(banks.bank0, banks.bank1, {},
                bio::SubstitutionMatrix::blosum62(), banks.options);
  EXPECT_TRUE(result.matches.empty());
  EXPECT_EQ(result.extensions, 0u);
}

TEST(Step3, RedundantSeedsCollapseToOneMatch) {
  const TestBanks banks(3);
  // Several seeds inside the same homologous region.
  std::vector<align::SeedPairHit> hits;
  for (std::uint32_t off = 30; off <= 80; off += 10) {
    hits.push_back(align::SeedPairHit{{0, off}, {0, off}, 40});
  }
  const Step3Result result =
      run_step3(banks.bank0, banks.bank1, hits,
                bio::SubstitutionMatrix::blosum62(), banks.options);
  EXPECT_EQ(result.matches.size(), 1u);
  // Coverage suppression means far fewer extensions than seeds.
  EXPECT_LT(result.extensions, hits.size());
}

TEST(Step3, WeakSeedsProduceNoMatches) {
  const TestBanks banks(4);
  // Seed between the query and the unrelated sequence.
  std::vector<align::SeedPairHit> hits = {
      align::SeedPairHit{{0, 50}, {1, 50}, 20}};
  const Step3Result result =
      run_step3(banks.bank0, banks.bank1, hits,
                bio::SubstitutionMatrix::blosum62(), banks.options);
  EXPECT_TRUE(result.matches.empty());
  EXPECT_EQ(result.extensions, 1u);
}

TEST(Step3, TracebackRequestedProducesOps) {
  TestBanks banks(5);
  banks.options.with_traceback = true;
  std::vector<align::SeedPairHit> hits = {
      align::SeedPairHit{{0, 50}, {0, 50}, 40}};
  const Step3Result result =
      run_step3(banks.bank0, banks.bank1, hits,
                bio::SubstitutionMatrix::blosum62(), banks.options);
  ASSERT_EQ(result.matches.size(), 1u);
  EXPECT_FALSE(result.matches[0].alignment.ops.empty());
}

TEST(Step3, MatchesSortedByEValue) {
  util::Xoshiro256 rng(6);
  bio::SequenceBank bank0(bio::SequenceKind::kProtein);
  bio::SequenceBank bank1(bio::SequenceKind::kProtein);
  const bio::Sequence a = sim::generate_protein("a", 150, rng);
  bank0.add(bio::Sequence("q", bio::SequenceKind::kProtein,
                          std::vector<std::uint8_t>(a.residues())));
  // Full copy (strong) and half copy (weaker).
  bank1.add(bio::Sequence("full", bio::SequenceKind::kProtein,
                          std::vector<std::uint8_t>(a.residues())));
  bio::Sequence half = sim::generate_protein("half", 150, rng);
  for (std::size_t k = 0; k < 60; ++k) {
    half.mutable_residues()[k] = a[k];
  }
  bank1.add(std::move(half));

  PipelineOptions options;
  std::vector<align::SeedPairHit> hits = {
      align::SeedPairHit{{0, 70}, {0, 70}, 40},
      align::SeedPairHit{{0, 30}, {1, 30}, 40}};
  const Step3Result result = run_step3(
      bank0, bank1, hits, bio::SubstitutionMatrix::blosum62(), options);
  ASSERT_EQ(result.matches.size(), 2u);
  EXPECT_LE(result.matches[0].e_value, result.matches[1].e_value);
  EXPECT_EQ(result.matches[0].bank1_sequence, 0u);
}

TEST(Step3, ParallelMatchesSequential) {
  util::Xoshiro256 rng(77);
  bio::SequenceBank bank0(bio::SequenceKind::kProtein);
  bio::SequenceBank bank1(bio::SequenceKind::kProtein);
  // Several homologous pairs so multiple groups exist.
  std::vector<align::SeedPairHit> hits;
  for (std::uint32_t p = 0; p < 6; ++p) {
    const bio::Sequence ancestor =
        sim::generate_protein("anc" + std::to_string(p), 100, rng);
    bank0.add(bio::Sequence("q" + std::to_string(p),
                            bio::SequenceKind::kProtein,
                            std::vector<std::uint8_t>(ancestor.residues())));
    sim::MutationConfig divergence;
    divergence.substitution_rate = 0.2;
    divergence.indel_rate = 0.0;
    bank1.add(sim::mutate_protein(ancestor, divergence, rng));
    for (std::uint32_t off = 20; off <= 60; off += 20) {
      hits.push_back(align::SeedPairHit{{p, off}, {p, off}, 40});
    }
  }

  PipelineOptions sequential;
  sequential.step3_threads = 1;
  PipelineOptions parallel;
  parallel.step3_threads = 4;
  const Step3Result a = run_step3(bank0, bank1, hits,
                                  bio::SubstitutionMatrix::blosum62(),
                                  sequential);
  const Step3Result b = run_step3(bank0, bank1, hits,
                                  bio::SubstitutionMatrix::blosum62(),
                                  parallel);
  EXPECT_EQ(a.extensions, b.extensions);
  ASSERT_EQ(a.matches.size(), b.matches.size());
  for (std::size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].bank0_sequence, b.matches[i].bank0_sequence);
    EXPECT_EQ(a.matches[i].alignment.score, b.matches[i].alignment.score);
    EXPECT_DOUBLE_EQ(a.matches[i].e_value, b.matches[i].e_value);
  }
}

TEST(FinalizeMatches, RemovesOverlappingDuplicates) {
  std::vector<Match> matches(2);
  matches[0].bank0_sequence = matches[1].bank0_sequence = 1;
  matches[0].bank1_sequence = matches[1].bank1_sequence = 2;
  matches[0].alignment.begin0 = 10;
  matches[0].alignment.end0 = 60;
  matches[0].alignment.begin1 = 10;
  matches[0].alignment.end1 = 60;
  matches[0].alignment.score = 100;
  matches[0].e_value = 1e-10;
  matches[1].alignment.begin0 = 20;
  matches[1].alignment.end0 = 55;
  matches[1].alignment.begin1 = 20;
  matches[1].alignment.end1 = 55;
  matches[1].alignment.score = 50;
  matches[1].e_value = 1e-5;
  finalize_matches(matches);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].alignment.score, 100);
}

TEST(FinalizeMatches, KeepsDistinctRegions) {
  std::vector<Match> matches(2);
  matches[0].bank0_sequence = matches[1].bank0_sequence = 1;
  matches[0].bank1_sequence = matches[1].bank1_sequence = 2;
  matches[0].alignment.begin0 = 0;
  matches[0].alignment.end0 = 40;
  matches[0].alignment.begin1 = 0;
  matches[0].alignment.end1 = 40;
  matches[1].alignment.begin0 = 100;
  matches[1].alignment.end0 = 140;
  matches[1].alignment.begin1 = 100;
  matches[1].alignment.end1 = 140;
  finalize_matches(matches);
  EXPECT_EQ(matches.size(), 2u);
}

TEST(FinalizeMatches, DifferentSequencePairsNeverMerge) {
  std::vector<Match> matches(2);
  matches[0].bank0_sequence = 1;
  matches[1].bank0_sequence = 2;
  matches[0].bank1_sequence = matches[1].bank1_sequence = 3;
  for (auto& m : matches) {
    m.alignment.begin0 = 0;
    m.alignment.end0 = 40;
    m.alignment.begin1 = 0;
    m.alignment.end1 = 40;
  }
  finalize_matches(matches);
  EXPECT_EQ(matches.size(), 2u);
}

}  // namespace
}  // namespace psc::core
