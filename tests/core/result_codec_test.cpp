#include "core/result_codec.hpp"

#include <gtest/gtest.h>

#include <span>
#include <vector>

namespace psc::core {
namespace {

Match sample_match(std::uint32_t query, std::uint32_t subject) {
  Match match;
  match.bank0_sequence = query;
  match.bank1_sequence = subject;
  match.alignment.score = 52;
  match.alignment.begin0 = 3;
  match.alignment.end0 = 33;
  match.alignment.begin1 = 1000;
  match.alignment.end1 = 1031;
  match.alignment.ops = {align::Op::kMatch, align::Op::kMatch,
                         align::Op::kInsert0, align::Op::kInsert1};
  match.bit_score = 24.75;
  match.e_value = 3e-7;
  return match;
}

TEST(ResultCodec, EmptySectionRoundTrips) {
  const std::vector<std::uint8_t> bytes = encode_matches({});
  const std::vector<Match> decoded = decode_matches(bytes);
  EXPECT_TRUE(decoded.empty());
  // version + reserved + count
  EXPECT_EQ(bytes.size(), 4u + 4u + 8u);
}

TEST(ResultCodec, MatchesRoundTripExactly) {
  std::vector<Match> matches;
  matches.push_back(sample_match(0, 7));
  matches.push_back(sample_match(3, 1));
  matches[1].alignment.ops.clear();  // traceback-free match
  matches[1].alignment.score = -4;

  const std::vector<std::uint8_t> bytes = encode_matches(matches);
  const std::vector<Match> decoded = decode_matches(bytes);
  ASSERT_EQ(decoded.size(), matches.size());
  for (std::size_t i = 0; i < matches.size(); ++i) {
    EXPECT_EQ(decoded[i].bank0_sequence, matches[i].bank0_sequence);
    EXPECT_EQ(decoded[i].bank1_sequence, matches[i].bank1_sequence);
    EXPECT_EQ(decoded[i].alignment.score, matches[i].alignment.score);
    EXPECT_EQ(decoded[i].alignment.begin0, matches[i].alignment.begin0);
    EXPECT_EQ(decoded[i].alignment.end0, matches[i].alignment.end0);
    EXPECT_EQ(decoded[i].alignment.begin1, matches[i].alignment.begin1);
    EXPECT_EQ(decoded[i].alignment.end1, matches[i].alignment.end1);
    EXPECT_EQ(decoded[i].alignment.ops, matches[i].alignment.ops);
    EXPECT_DOUBLE_EQ(decoded[i].bit_score, matches[i].bit_score);
    EXPECT_DOUBLE_EQ(decoded[i].e_value, matches[i].e_value);
  }
  // Determinism: the same matches always encode to the same bytes.
  EXPECT_EQ(encode_matches(matches), bytes);
}

TEST(ResultCodec, EveryTruncationThrows) {
  const std::vector<Match> matches = {sample_match(1, 2)};
  const std::vector<std::uint8_t> bytes = encode_matches(matches);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_THROW(decode_matches(prefix), CodecError) << "cut=" << cut;
  }
}

TEST(ResultCodec, RejectsTrailingBytes) {
  std::vector<std::uint8_t> bytes = encode_matches({});
  bytes.push_back(0x00);
  EXPECT_THROW(decode_matches(std::span<const std::uint8_t>(bytes)),
               CodecError);
}

TEST(ResultCodec, RejectsVersionSkew) {
  std::vector<std::uint8_t> bytes = encode_matches({});
  bytes[0] = 0x2a;
  EXPECT_THROW(decode_matches(std::span<const std::uint8_t>(bytes)),
               CodecError);
}

TEST(ResultCodec, RejectsHostileMatchCountBeforeAllocating) {
  // version 1 | reserved | count = 2^63: structurally impossible for a
  // 16-byte buffer; must throw before reserving anything.
  std::vector<std::uint8_t> bytes;
  codec::put_u32(bytes, kMatchCodecVersion);
  codec::put_u32(bytes, 0);
  codec::put_u64(bytes, std::uint64_t{1} << 63);
  EXPECT_THROW(decode_matches(std::span<const std::uint8_t>(bytes)),
               CodecError);
}

TEST(ResultCodec, RejectsHostileOpsCount) {
  std::vector<Match> matches = {sample_match(0, 0)};
  std::vector<std::uint8_t> bytes = encode_matches(matches);
  // The ops count is the u64 right before the 4 op bytes at the tail.
  const std::size_t ops_count_offset = bytes.size() - 4 - 8;
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[ops_count_offset + i] = 0xff;
  }
  EXPECT_THROW(decode_matches(std::span<const std::uint8_t>(bytes)),
               CodecError);
}

TEST(ResultCodec, RejectsOutOfRangeOpByte) {
  std::vector<Match> matches = {sample_match(0, 0)};
  std::vector<std::uint8_t> bytes = encode_matches(matches);
  bytes.back() = 0x03;  // one past align::Op::kInsert1
  EXPECT_THROW(decode_matches(std::span<const std::uint8_t>(bytes)),
               CodecError);
}

TEST(ResultCodec, EmbeddedSectionLeavesCursorAtEnd) {
  std::vector<std::uint8_t> bytes;
  codec::put_u32(bytes, 0xdeadbeef);  // container field before the section
  append_matches(bytes, std::vector<Match>{sample_match(5, 6)});
  codec::put_u32(bytes, 0xfeedface);  // container field after the section

  codec::Reader reader(bytes);
  EXPECT_EQ(reader.u32("before"), 0xdeadbeefu);
  const std::vector<Match> decoded = decode_matches(reader);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(reader.u32("after"), 0xfeedfaceu);
  EXPECT_TRUE(reader.done());
}

TEST(CodecReader, BoundsCheckedPrimitives) {
  std::vector<std::uint8_t> bytes;
  codec::put_u32(bytes, 7);
  codec::put_i32(bytes, -3);
  codec::put_u64(bytes, 1234567890123ull);
  codec::put_f64(bytes, -0.5);

  codec::Reader reader(bytes);
  EXPECT_EQ(reader.u32("a"), 7u);
  EXPECT_EQ(reader.i32("b"), -3);
  EXPECT_EQ(reader.u64("c"), 1234567890123ull);
  EXPECT_DOUBLE_EQ(reader.f64("d"), -0.5);
  EXPECT_TRUE(reader.done());
  EXPECT_THROW(reader.u32("past the end"), CodecError);
}

}  // namespace
}  // namespace psc::core
