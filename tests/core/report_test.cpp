#include "core/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/pipeline.hpp"
#include "sim/genome_generator.hpp"
#include "sim/protein_generator.hpp"

namespace psc::core {
namespace {

struct ReportFixture {
  bio::SequenceBank proteins{bio::SequenceKind::kProtein};
  bio::Sequence genome;
  bio::SequenceBank genome_bank;
  std::vector<bio::FrameFragment> fragments;
  PipelineResult result;

  ReportFixture() {
    util::Xoshiro256 rng(55);
    proteins.add(sim::generate_protein("queryA", 90, rng));
    proteins.add(sim::generate_protein("queryB", 90, rng));
    sim::GenomeConfig config;
    config.length = 15000;
    config.seed = 56;
    genome = sim::generate_genome(config);
    sim::plant_gene(genome, proteins[0], 4000, true, rng);
    sim::plant_gene(genome, proteins[1], 9000, false, rng);
    genome_bank = bio::frames_to_bank_mapped(
        bio::translate_six_frames(genome), genome.size(), 20, fragments);
    PipelineOptions options;
    options.with_traceback = true;
    result = run_pipeline(proteins, genome_bank, options);
  }
};

TEST(Report, TabularHasTwelveColumnsPerMatch) {
  const ReportFixture fixture;
  ASSERT_GE(fixture.result.matches.size(), 2u);
  std::ostringstream out;
  write_tabular(out, fixture.result.matches, fixture.proteins,
                fixture.genome_bank);
  std::istringstream lines(out.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    std::size_t tabs = 0;
    for (const char c : line) tabs += c == '\t' ? 1 : 0;
    EXPECT_EQ(tabs, 11u) << line;
  }
  EXPECT_EQ(count, fixture.result.matches.size());
}

TEST(Report, TabularIdentityIsHighForPlantedGene) {
  const ReportFixture fixture;
  std::ostringstream out;
  write_tabular(out, fixture.result.matches, fixture.proteins,
                fixture.genome_bank);
  // First (best) line: qseqid \t sseqid \t pident ...
  std::istringstream first_line(out.str());
  std::string qseqid, sseqid, pident;
  std::getline(first_line, qseqid, '\t');
  std::getline(first_line, sseqid, '\t');
  std::getline(first_line, pident, '\t');
  EXPECT_TRUE(qseqid == "queryA" || qseqid == "queryB");
  EXPECT_GT(std::stod(pident), 95.0);  // exact planted copy
}

TEST(Report, TabularCoordinatesAreOneBasedInclusive) {
  const ReportFixture fixture;
  std::ostringstream out;
  write_tabular(out, fixture.result.matches, fixture.proteins,
                fixture.genome_bank);
  std::istringstream fields(out.str());
  std::string token;
  for (int i = 0; i < 6; ++i) std::getline(fields, token, '\t');
  std::getline(fields, token, '\t');  // qstart
  EXPECT_GE(std::stoul(token), 1u);
}

TEST(Report, MatchGenomeRangeForwardAndReverse) {
  bio::FrameFragment forward;
  forward.frame = 2;
  forward.genome_begin = 100;
  forward.genome_end = 400;
  Match match;
  match.alignment.begin1 = 10;
  match.alignment.end1 = 20;
  {
    const auto [lo, hi] = match_genome_range(match, forward);
    EXPECT_EQ(lo, 130u);
    EXPECT_EQ(hi, 160u);
  }
  bio::FrameFragment reverse = forward;
  reverse.frame = -1;
  {
    const auto [lo, hi] = match_genome_range(match, reverse);
    EXPECT_EQ(lo, 400u - 60);
    EXPECT_EQ(hi, 400u - 30);
  }
}

TEST(Report, Gff3CoversPlantedRegions) {
  const ReportFixture fixture;
  std::ostringstream out;
  write_gff3(out, fixture.result.matches, fixture.proteins,
             fixture.fragments, "chr-test");
  const std::string text = out.str();
  EXPECT_EQ(text.rfind("##gff-version 3\n", 0), 0u);
  EXPECT_NE(text.find("chr-test\tpsclib\tprotein_match"), std::string::npos);
  // One planted gene per strand: both strand symbols appear.
  EXPECT_NE(text.find("\t+\t"), std::string::npos);
  EXPECT_NE(text.find("\t-\t"), std::string::npos);
  // Forward gene occupies [4000, 4270); the GFF line must mention a start
  // near 4001 (1-based).
  EXPECT_NE(text.find("\t4001\t"), std::string::npos);
}

TEST(Report, EmptyMatchListWritesHeaderOnly) {
  std::ostringstream tab, gff;
  const bio::SequenceBank empty(bio::SequenceKind::kProtein);
  write_tabular(tab, {}, empty, empty);
  EXPECT_TRUE(tab.str().empty());
  write_gff3(gff, {}, empty, {}, "g");
  EXPECT_EQ(gff.str(), "##gff-version 3\n");
}

TEST(Report, NoTracebackDegradesGracefully) {
  const ReportFixture fixture;
  // Strip ops to simulate a score-only run.
  std::vector<Match> stripped = fixture.result.matches;
  for (auto& match : stripped) match.alignment.ops.clear();
  std::ostringstream out;
  write_tabular(out, stripped, fixture.proteins, fixture.genome_bank);
  std::istringstream fields(out.str());
  std::string token;
  std::getline(fields, token, '\t');  // qseqid
  std::getline(fields, token, '\t');  // sseqid
  std::getline(fields, token, '\t');  // pident
  EXPECT_DOUBLE_EQ(std::stod(token), 0.0);
  std::getline(fields, token, '\t');  // length (from ranges)
  EXPECT_GT(std::stoul(token), 0u);
}

}  // namespace
}  // namespace psc::core
