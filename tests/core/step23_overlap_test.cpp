#include "core/step23_overlap.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "core/step2_host.hpp"
#include "core/step3_gapped.hpp"
#include "sim/genome_generator.hpp"
#include "sim/mutation.hpp"
#include "sim/protein_generator.hpp"

namespace psc::core {
namespace {

struct TestBanks {
  bio::SequenceBank proteins{bio::SequenceKind::kProtein};
  bio::Sequence genome;

  explicit TestBanks(std::uint64_t seed, std::size_t n_proteins = 4,
                     std::size_t genome_length = 12000) {
    util::Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < n_proteins; ++i) {
      proteins.add(sim::generate_protein("p" + std::to_string(i), 100, rng));
    }
    sim::GenomeConfig config;
    config.length = genome_length;
    config.seed = seed;
    genome = sim::generate_genome(config);
    sim::MutationConfig divergence;
    divergence.substitution_rate = 0.15;
    divergence.indel_rate = 0.0;
    sim::plant_gene(genome, sim::mutate_protein(proteins[0], divergence, rng),
                    2500, true, rng);
    sim::plant_gene(genome, sim::mutate_protein(proteins[2], divergence, rng),
                    8001, false, rng);
  }
};

/// Bit-identical match comparison: every field, including the alignment
/// geometry, traceback ops and the floating-point statistics. This is
/// the property the overlapped pipeline promises.
void expect_identical(const std::vector<Match>& a, const std::vector<Match>& b,
                      const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].bank0_sequence, b[i].bank0_sequence) << label << " #" << i;
    EXPECT_EQ(a[i].bank1_sequence, b[i].bank1_sequence) << label << " #" << i;
    EXPECT_EQ(a[i].alignment.score, b[i].alignment.score) << label << " #" << i;
    EXPECT_EQ(a[i].alignment.begin0, b[i].alignment.begin0) << label << " #" << i;
    EXPECT_EQ(a[i].alignment.end0, b[i].alignment.end0) << label << " #" << i;
    EXPECT_EQ(a[i].alignment.begin1, b[i].alignment.begin1) << label << " #" << i;
    EXPECT_EQ(a[i].alignment.end1, b[i].alignment.end1) << label << " #" << i;
    EXPECT_EQ(a[i].alignment.ops, b[i].alignment.ops) << label << " #" << i;
    EXPECT_EQ(a[i].bit_score, b[i].bit_score) << label << " #" << i;
    EXPECT_EQ(a[i].e_value, b[i].e_value) << label << " #" << i;
  }
}

// The determinism property of the ISSUE: for every tested worker count,
// both the barrier and the overlapped host-parallel paths, and both
// schedules, the pipeline output is bit-identical to kHostSequential.
TEST(OverlapDeterminism, AllThreadCountsMatchSequential) {
  const TestBanks banks(21);
  PipelineOptions reference;
  reference.backend = Step2Backend::kHostSequential;
  reference.with_traceback = true;
  const PipelineResult ref =
      run_pipeline_genome(banks.proteins, banks.genome, reference);
  ASSERT_FALSE(ref.matches.empty());

  const std::size_t hardware = std::thread::hardware_concurrency() == 0
                                   ? 1
                                   : std::thread::hardware_concurrency();
  for (const std::size_t threads :
       std::vector<std::size_t>{1, 2, 7, hardware}) {
    for (const bool overlap : {false, true}) {
      for (const Step2Schedule schedule :
           {Step2Schedule::kStatic, Step2Schedule::kCostAware}) {
        PipelineOptions options;
        options.backend = Step2Backend::kHostParallel;
        options.with_traceback = true;
        options.host_threads = threads;
        options.step3_threads = threads;
        options.overlap_steps23 = overlap;
        options.step2_schedule = schedule;
        const PipelineResult result =
            run_pipeline_genome(banks.proteins, banks.genome, options);
        const std::string label =
            "threads=" + std::to_string(threads) +
            " overlap=" + std::to_string(overlap) +
            " schedule=" + step2_schedule_name(schedule);
        expect_identical(ref.matches, result.matches, label);
        EXPECT_EQ(result.counters.step2_pairs, ref.counters.step2_pairs)
            << label;
        EXPECT_EQ(result.counters.step2_hits, ref.counters.step2_hits)
            << label;
        EXPECT_EQ(result.counters.step3_extensions,
                  ref.counters.step3_extensions)
            << label;
        EXPECT_GE(result.counters.step3_eager_extensions,
                  result.counters.step3_extensions)
            << label;
      }
    }
  }
}

TEST(OverlapDriver, DirectOutcomeMatchesBarrierReference) {
  // Drive run_steps23_overlapped directly against prebuilt tables and
  // compare with the sequential step2 + step3 composition.
  util::Xoshiro256 rng(33);
  bio::SequenceBank bank0(bio::SequenceKind::kProtein);
  bio::SequenceBank bank1(bio::SequenceKind::kProtein);
  for (int i = 0; i < 5; ++i) {
    bank0.add(sim::generate_protein("q" + std::to_string(i), 120, rng));
  }
  for (int i = 0; i < 8; ++i) {
    bank1.add(sim::generate_protein("t" + std::to_string(i), 150, rng));
  }
  // Shared regions so step 3 has real work.
  for (std::size_t k = 0; k < 40; ++k) {
    bank1.mutable_sequence(2).mutable_residues()[30 + k] = bank0[1][10 + k];
    bank1.mutable_sequence(5).mutable_residues()[60 + k] = bank0[3][40 + k];
  }

  PipelineOptions options;
  options.backend = Step2Backend::kHostParallel;
  options.with_traceback = true;
  options.ungapped_threshold = 30;
  const index::SeedModel model = make_seed_model(options.seed_model);
  const index::IndexTable t0(bank0, model);
  const index::IndexTable t1(bank1, model);
  const auto& matrix = bio::SubstitutionMatrix::blosum62();

  HostStep2Result step2 =
      run_step2_host(bank0, t0, bank1, t1, matrix, options.shape,
                     options.ungapped_threshold, options.step2_kernel);
  ASSERT_FALSE(step2.hits.empty());
  const std::size_t expected_hits = step2.hits.size();
  const Step3Result step3 =
      run_step3(bank0, bank1, std::move(step2.hits), matrix, options);

  const OverlapOutcome outcome = run_steps23_overlapped(
      bank0, t0, bank1, t1, matrix, options, /*workers=*/3);
  expect_identical(step3.matches, outcome.matches, "direct overlap");
  EXPECT_EQ(outcome.pairs, step2.pairs);
  EXPECT_EQ(outcome.hits, expected_hits);
  EXPECT_EQ(outcome.extensions, step3.extensions);
  // Every replayed aligner call is either a precomputed eager result or
  // a counted recompute, so total computed work bounds the sequential
  // count from above; the per-worker coverage filter bounds it by the
  // hit count plus recomputes from below-optimal skips.
  EXPECT_GE(outcome.eager_extensions, outcome.extensions);
  EXPECT_LE(outcome.eager_extensions, expected_hits + outcome.extensions);
  EXPECT_GE(outcome.total_seconds, outcome.step2_seconds);
}

TEST(OverlapDriver, CompositionStatsSurviveOverlap) {
  const TestBanks banks(22);
  PipelineOptions reference;
  reference.backend = Step2Backend::kHostSequential;
  reference.composition_based_stats = true;
  const PipelineResult ref =
      run_pipeline_genome(banks.proteins, banks.genome, reference);

  PipelineOptions overlapped = reference;
  overlapped.backend = Step2Backend::kHostParallel;
  overlapped.host_threads = 3;
  overlapped.step3_threads = 3;
  overlapped.overlap_steps23 = true;
  const PipelineResult result =
      run_pipeline_genome(banks.proteins, banks.genome, overlapped);
  expect_identical(ref.matches, result.matches, "composition stats");
}

TEST(OverlapDriver, EmptyHitStreamProducesNoMatches) {
  // Banks with nothing in common below the threshold: workers must
  // close the channel cleanly with zero batches.
  util::Xoshiro256 rng(44);
  bio::SequenceBank bank0(bio::SequenceKind::kProtein);
  bio::SequenceBank bank1(bio::SequenceKind::kProtein);
  bank0.add(sim::generate_protein("q", 60, rng));
  bank1.add(sim::generate_protein("t", 60, rng));

  PipelineOptions options;
  options.backend = Step2Backend::kHostParallel;
  options.ungapped_threshold = 1000;  // unreachable
  const index::SeedModel model = make_seed_model(options.seed_model);
  const index::IndexTable t0(bank0, model);
  const index::IndexTable t1(bank1, model);
  const OverlapOutcome outcome =
      run_steps23_overlapped(bank0, t0, bank1, t1,
                             bio::SubstitutionMatrix::blosum62(), options,
                             /*workers=*/4);
  EXPECT_TRUE(outcome.matches.empty());
  EXPECT_EQ(outcome.hits, 0u);
  EXPECT_EQ(outcome.extensions, 0u);
}

}  // namespace
}  // namespace psc::core
