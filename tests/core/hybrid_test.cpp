#include "core/hybrid.hpp"

#include <gtest/gtest.h>

#include "bio/translate.hpp"
#include "core/pipeline.hpp"
#include "sim/genome_generator.hpp"
#include "sim/mutation.hpp"
#include "sim/protein_generator.hpp"

namespace psc::core {
namespace {

struct TestData {
  bio::SequenceBank proteins{bio::SequenceKind::kProtein};
  bio::Sequence genome;

  explicit TestData(std::uint64_t seed) {
    util::Xoshiro256 rng(seed);
    for (int i = 0; i < 6; ++i) {
      proteins.add(sim::generate_protein("p" + std::to_string(i), 120, rng));
    }
    sim::GenomeConfig config;
    config.length = 30000;
    config.seed = seed;
    genome = sim::generate_genome(config);
    sim::MutationConfig divergence;
    divergence.substitution_rate = 0.15;
    divergence.indel_rate = 0.0;
    sim::plant_gene(genome, sim::mutate_protein(proteins[1], divergence, rng),
                    5000, true, rng);
    sim::plant_gene(genome, sim::mutate_protein(proteins[4], divergence, rng),
                    15001, false, rng);
  }
};

HybridOptions make_options() {
  HybridOptions options;
  options.base.rasc.psc.num_pes = 64;
  options.gap.num_lanes = 8;
  options.gap.band = 12;
  options.gap.window_length = 128;
  options.gap.threshold = 40;
  return options;
}

TEST(HybridPipeline, FindsSameMatchesAsPlainPipeline) {
  const TestData data(1);
  const bio::SequenceBank genome_bank =
      bio::frames_to_bank(bio::translate_six_frames(data.genome));

  PipelineOptions plain;
  plain.backend = Step2Backend::kRasc;
  plain.rasc.psc.num_pes = 64;
  const PipelineResult reference =
      run_pipeline(data.proteins, genome_bank, plain);

  const HybridResult hybrid =
      run_hybrid_pipeline(data.proteins, genome_bank, make_options());

  ASSERT_EQ(hybrid.matches.size(), reference.matches.size());
  for (std::size_t i = 0; i < hybrid.matches.size(); ++i) {
    EXPECT_EQ(hybrid.matches[i].bank0_sequence,
              reference.matches[i].bank0_sequence);
    EXPECT_EQ(hybrid.matches[i].bank1_sequence,
              reference.matches[i].bank1_sequence);
    EXPECT_EQ(hybrid.matches[i].alignment.score,
              reference.matches[i].alignment.score);
  }
}

TEST(HybridPipeline, ScreenReducesHostWork) {
  const TestData data(2);
  const bio::SequenceBank genome_bank =
      bio::frames_to_bank(bio::translate_six_frames(data.genome));
  const HybridResult hybrid =
      run_hybrid_pipeline(data.proteins, genome_bank, make_options());
  // The banded screen must discard a meaningful share of step-2 hits
  // before the host sees them.
  EXPECT_LT(hybrid.screen_survivors, hybrid.counters.step2_hits);
  EXPECT_EQ(hybrid.gap_stats.pairs, hybrid.counters.step2_hits);
  EXPECT_EQ(hybrid.gap_stats.survivors, hybrid.screen_survivors);
}

TEST(HybridPipeline, TimingFieldsPopulated) {
  const TestData data(3);
  const bio::SequenceBank genome_bank =
      bio::frames_to_bank(bio::translate_six_frames(data.genome));
  const HybridResult hybrid =
      run_hybrid_pipeline(data.proteins, genome_bank, make_options());
  EXPECT_GT(hybrid.step1_seconds, 0.0);
  EXPECT_GT(hybrid.psc_seconds, 0.0);
  EXPECT_GT(hybrid.gap_seconds, 0.0);
  EXPECT_GE(hybrid.overall_seconds(),
            hybrid.step1_seconds + std::max(hybrid.psc_seconds,
                                            hybrid.gap_seconds));
  // Overlapped stages: overall is less than a serial sum would be.
  EXPECT_LT(hybrid.overall_seconds(),
            hybrid.step1_seconds + hybrid.psc_seconds + hybrid.gap_seconds +
                hybrid.host_step3_seconds + 1e-9);
}

TEST(HybridPipeline, TightScreenDropsMatches) {
  const TestData data(4);
  const bio::SequenceBank genome_bank =
      bio::frames_to_bank(bio::translate_six_frames(data.genome));
  HybridOptions loose = make_options();
  HybridOptions absurd = make_options();
  absurd.gap.threshold = 10000;  // nothing passes
  const HybridResult a =
      run_hybrid_pipeline(data.proteins, genome_bank, loose);
  const HybridResult b =
      run_hybrid_pipeline(data.proteins, genome_bank, absurd);
  EXPECT_FALSE(a.matches.empty());
  EXPECT_TRUE(b.matches.empty());
  EXPECT_EQ(b.screen_survivors, 0u);
}

TEST(HybridPipeline, ForcesSingleFpgaForPsc) {
  const TestData data(5);
  const bio::SequenceBank genome_bank =
      bio::frames_to_bank(bio::translate_six_frames(data.genome));
  HybridOptions options = make_options();
  options.base.rasc.num_fpgas = 2;  // must be overridden internally
  const HybridResult hybrid =
      run_hybrid_pipeline(data.proteins, genome_bank, options);
  EXPECT_GT(hybrid.psc_stats.cycles_total(), 0u);
}

}  // namespace
}  // namespace psc::core
