#include "core/modes.hpp"

#include <gtest/gtest.h>

#include "sim/genome_generator.hpp"
#include "sim/protein_generator.hpp"

namespace psc::core {
namespace {

/// Reverse-translates `protein` into DNA at the start of a random genome.
bio::Sequence genome_encoding(const bio::Sequence& protein,
                              std::size_t genome_length, std::uint64_t seed) {
  sim::GenomeConfig config;
  config.length = genome_length;
  config.seed = seed;
  bio::Sequence genome = sim::generate_genome(config);
  util::Xoshiro256 rng(seed ^ 0xabcdULL);
  sim::plant_gene(genome, protein, 3000, true, rng);
  return genome;
}

struct Shared {
  bio::Sequence protein;
  bio::SequenceBank protein_bank{bio::SequenceKind::kProtein};
  bio::Sequence genome;

  explicit Shared(std::uint64_t seed) {
    util::Xoshiro256 rng(seed);
    protein = sim::generate_protein("shared", 120, rng);
    protein_bank.add(bio::Sequence("q", bio::SequenceKind::kProtein,
                                   std::vector<std::uint8_t>(protein.residues())));
    protein_bank.add(sim::generate_protein("noise", 150, rng));
    genome = genome_encoding(protein, 20000, seed);
  }
};

TEST(Modes, BlastpFindsProteinInProteinBank) {
  const Shared shared(1);
  bio::SequenceBank subjects(bio::SequenceKind::kProtein);
  subjects.add(bio::Sequence("t", bio::SequenceKind::kProtein,
                             std::vector<std::uint8_t>(shared.protein.residues())));
  const ModeResult result =
      blastp(shared.protein_bank, subjects, PipelineOptions{});
  ASSERT_FALSE(result.pipeline.matches.empty());
  EXPECT_EQ(result.pipeline.matches[0].bank0_sequence, 0u);
  EXPECT_TRUE(result.bank0_fragments.empty());
  EXPECT_TRUE(result.bank1_fragments.empty());
}

TEST(Modes, TblastnFindsGeneWithProvenance) {
  const Shared shared(2);
  const ModeResult result =
      tblastn(shared.protein_bank, shared.genome, PipelineOptions{});
  ASSERT_FALSE(result.pipeline.matches.empty());
  EXPECT_TRUE(result.bank0_fragments.empty());
  ASSERT_FALSE(result.bank1_fragments.empty());
  // The best match's fragment must cover the planted region [3000, 3360).
  const Match& best = result.pipeline.matches[0];
  const bio::FrameFragment& fragment =
      result.bank1_fragments[best.bank1_sequence];
  EXPECT_LT(fragment.genome_begin, 3360u);
  EXPECT_GT(fragment.genome_end, 3000u);
}

TEST(Modes, BlastxFindsProteinFromDnaQuery) {
  const Shared shared(3);
  const ModeResult result =
      blastx(shared.genome, shared.protein_bank, PipelineOptions{});
  ASSERT_FALSE(result.pipeline.matches.empty());
  ASSERT_FALSE(result.bank0_fragments.empty());
  EXPECT_TRUE(result.bank1_fragments.empty());
  // The match's subject must be the shared protein, not the noise.
  EXPECT_EQ(result.pipeline.matches[0].bank1_sequence, 0u);
}

TEST(Modes, TblastxFindsGeneInBothGenomes) {
  const Shared shared(4);
  // A second genome encoding the same protein elsewhere.
  const bio::Sequence genome2 = genome_encoding(shared.protein, 20000, 99);
  const ModeResult result =
      tblastx(shared.genome, genome2, PipelineOptions{});
  ASSERT_FALSE(result.pipeline.matches.empty());
  EXPECT_FALSE(result.bank0_fragments.empty());
  EXPECT_FALSE(result.bank1_fragments.empty());
}

TEST(Modes, TblastxNoHitsOnUnrelatedGenomes) {
  sim::GenomeConfig config;
  config.length = 15000;
  config.seed = 5;
  const bio::Sequence g1 = sim::generate_genome(config);
  config.seed = 6;
  const bio::Sequence g2 = sim::generate_genome(config);
  const ModeResult result = tblastx(g1, g2, PipelineOptions{});
  EXPECT_LE(result.pipeline.matches.size(), 1u);  // noise tolerance
}

TEST(Modes, AllModesShareTheRascBackend) {
  const Shared shared(7);
  PipelineOptions options;
  options.backend = Step2Backend::kRasc;
  options.rasc.psc.num_pes = 32;
  const ModeResult result =
      tblastn(shared.protein_bank, shared.genome, options);
  ASSERT_FALSE(result.pipeline.matches.empty());
  EXPECT_GT(result.pipeline.operator_stats.cycles_total(), 0u);
}

}  // namespace
}  // namespace psc::core
