#include "core/cli_options.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace psc::core {
namespace {

/// Runs the shared pipeline flags through a fresh parser.
bool parse_with(const std::vector<std::string>& extra_args,
                PipelineOptions& options,
                PipelineOptions defaults = PipelineOptions{}) {
  util::ArgParser args("test", "cli_options test");
  add_pipeline_options(args, defaults);
  std::vector<const char*> argv = {"test"};
  for (const std::string& arg : extra_args) argv.push_back(arg.c_str());
  if (!args.parse(static_cast<int>(argv.size()), argv.data())) {
    ADD_FAILURE() << "ArgParser rejected the flag spelling";
    return false;
  }
  return parse_pipeline_options(args, options);
}

TEST(CliOptions, DefaultsComeFromTheCallersBaseline) {
  PipelineOptions defaults;
  defaults.backend = Step2Backend::kRasc;
  PipelineOptions options;
  ASSERT_TRUE(parse_with({}, options, defaults));
  EXPECT_EQ(options.backend, Step2Backend::kRasc);

  defaults.backend = Step2Backend::kHostParallel;
  ASSERT_TRUE(parse_with({}, options, defaults));
  EXPECT_EQ(options.backend, Step2Backend::kHostParallel);
}

TEST(CliOptions, ParsesEveryBackendSpelling) {
  PipelineOptions options;
  ASSERT_TRUE(parse_with({"--backend=rasc"}, options));
  EXPECT_EQ(options.backend, Step2Backend::kRasc);
  ASSERT_TRUE(parse_with({"--backend=host"}, options));
  EXPECT_EQ(options.backend, Step2Backend::kHostSequential);
  ASSERT_TRUE(parse_with({"--backend=host-sequential"}, options));
  EXPECT_EQ(options.backend, Step2Backend::kHostSequential);
  ASSERT_TRUE(parse_with({"--backend=host-parallel"}, options));
  EXPECT_EQ(options.backend, Step2Backend::kHostParallel);
  EXPECT_FALSE(parse_with({"--backend=gpu"}, options));
}

TEST(CliOptions, ParsesKernelScheduleAndThreads) {
  PipelineOptions options;
  ASSERT_TRUE(parse_with({"--step2-kernel=scalar", "--step2-schedule=static",
                          "--threads=3"},
                         options));
  EXPECT_EQ(options.step2_kernel, align::UngappedKernel::kScalar);
  EXPECT_EQ(options.step2_schedule, Step2Schedule::kStatic);
  EXPECT_EQ(options.host_threads, 3u);
  EXPECT_EQ(options.step3_threads, 3u);

  EXPECT_FALSE(parse_with({"--step2-kernel=fpga"}, options));
  EXPECT_FALSE(parse_with({"--step2-schedule=greedy"}, options));
  EXPECT_FALSE(parse_with({"--threads=-1"}, options));
}

TEST(CliOptions, ParsesStep3Kernel) {
  PipelineOptions options;
  ASSERT_TRUE(parse_with({}, options));
  EXPECT_EQ(options.step3_kernel, align::GappedKernel::kAuto);
  ASSERT_TRUE(parse_with({"--step3-kernel=scalar"}, options));
  EXPECT_EQ(options.step3_kernel, align::GappedKernel::kScalar);
  ASSERT_TRUE(parse_with({"--step3-kernel=portable"}, options));
  EXPECT_EQ(options.step3_kernel, align::GappedKernel::kPortable);
  ASSERT_TRUE(parse_with({"--step3-kernel=avx2"}, options));
  EXPECT_EQ(options.step3_kernel, align::GappedKernel::kAvx2);
  EXPECT_FALSE(parse_with({"--step3-kernel=fpga"}, options));
}

TEST(CliOptions, ParsesAcceleratorShapeAndStats) {
  PipelineOptions options;
  ASSERT_TRUE(parse_with({"--backend=rasc", "--pes=64", "--fpgas=2",
                          "--evalue=0.5", "--composition"},
                         options));
  EXPECT_EQ(options.rasc.psc.num_pes, 64u);
  EXPECT_EQ(options.rasc.num_fpgas, 2u);
  EXPECT_DOUBLE_EQ(options.e_value_cutoff, 0.5);
  EXPECT_TRUE(options.composition_based_stats);
  EXPECT_FALSE(parse_with({"--pes=0"}, options));
  EXPECT_FALSE(parse_with({"--fpgas=-2"}, options));
}

TEST(CliOptions, SeedModelOptionRoundTrips) {
  for (const SeedModelKind kind :
       {SeedModelKind::kSubsetW4, SeedModelKind::kSubsetW4Coarse,
        SeedModelKind::kExactW4, SeedModelKind::kExactW3}) {
    util::ArgParser args("test", "seed model");
    add_seed_model_option(args, kind);
    const char* argv[] = {"test"};
    ASSERT_TRUE(args.parse(1, argv));
    SeedModelKind parsed = SeedModelKind::kExactW3;
    ASSERT_TRUE(parse_seed_model_option(args, parsed));
    EXPECT_EQ(parsed, kind);
  }

  util::ArgParser args("test", "seed model");
  add_seed_model_option(args, SeedModelKind::kSubsetW4);
  const char* argv[] = {"test", "--seed-model=subset-w9"};
  ASSERT_TRUE(args.parse(2, argv));
  SeedModelKind parsed = SeedModelKind::kSubsetW4;
  EXPECT_FALSE(parse_seed_model_option(args, parsed));
}

TEST(CliOptions, MatrixOptionLoadsBuiltinAndRejectsMissingFile) {
  {
    util::ArgParser args("test", "matrix");
    add_matrix_option(args);
    const char* argv[] = {"test"};
    ASSERT_TRUE(args.parse(1, argv));
    bio::SubstitutionMatrix matrix;
    ASSERT_TRUE(parse_matrix_option(args, matrix));
    EXPECT_EQ(matrix.cells(), bio::SubstitutionMatrix::blosum62().cells());
  }
  {
    util::ArgParser args("test", "matrix");
    add_matrix_option(args);
    const char* argv[] = {"test", "--matrix=/nonexistent/m.txt"};
    ASSERT_TRUE(args.parse(2, argv));
    bio::SubstitutionMatrix matrix;
    EXPECT_FALSE(parse_matrix_option(args, matrix));
  }
}

}  // namespace
}  // namespace psc::core
