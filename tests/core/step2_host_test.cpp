#include "core/step2_host.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "align/ungapped.hpp"
#include "index/neighborhood.hpp"
#include "sim/protein_generator.hpp"
#include "util/executor.hpp"

namespace psc::core {
namespace {

struct TestBanks {
  bio::SequenceBank bank0{bio::SequenceKind::kProtein};
  bio::SequenceBank bank1{bio::SequenceKind::kProtein};
  index::SeedModel model = index::SeedModel::subset_w4();
  index::WindowShape shape{4, 6};

  explicit TestBanks(std::uint64_t seed, std::size_t n0 = 4, std::size_t n1 = 6) {
    util::Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < n0; ++i) {
      bank0.add(sim::generate_protein("a" + std::to_string(i), 100, rng));
    }
    for (std::size_t i = 0; i < n1; ++i) {
      bank1.add(sim::generate_protein("b" + std::to_string(i), 130, rng));
    }
    // Guarantee a strong shared region.
    bio::Sequence& target = bank1.mutable_sequence(0);
    for (std::size_t k = 0; k < 30; ++k) {
      target.mutable_residues()[40 + k] = bank0[0][20 + k];
    }
  }
};

std::vector<align::SeedPairHit> sorted(std::vector<align::SeedPairHit> hits) {
  std::sort(hits.begin(), hits.end(), [](const align::SeedPairHit& a,
                                         const align::SeedPairHit& b) {
    return std::tuple(a.bank0.sequence, a.bank0.offset, a.bank1.sequence,
                      a.bank1.offset, a.score) <
           std::tuple(b.bank0.sequence, b.bank0.offset, b.bank1.sequence,
                      b.bank1.offset, b.score);
  });
  return hits;
}

TEST(HostStep2, FindsSharedRegion) {
  const TestBanks banks(1);
  const index::IndexTable t0(banks.bank0, banks.model);
  const index::IndexTable t1(banks.bank1, banks.model);
  const HostStep2Result result =
      run_step2_host(banks.bank0, t0, banks.bank1, t1,
                     bio::SubstitutionMatrix::blosum62(), banks.shape, 30);
  ASSERT_FALSE(result.hits.empty());
  bool found = false;
  for (const auto& hit : result.hits) {
    if (hit.bank0.sequence == 0 && hit.bank1.sequence == 0) found = true;
    EXPECT_GE(hit.score, 30);
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(result.pairs, index::IndexTable::pair_count(t0, t1));
}

TEST(HostStep2, HitsMatchDirectKernelEvaluation) {
  const TestBanks banks(2, 2, 3);
  const index::IndexTable t0(banks.bank0, banks.model);
  const index::IndexTable t1(banks.bank1, banks.model);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const int threshold = 25;
  const HostStep2Result result = run_step2_host(
      banks.bank0, t0, banks.bank1, t1, m, banks.shape, threshold);

  // Recompute by brute force over keys.
  std::vector<align::SeedPairHit> expected;
  index::WindowBatch b0(banks.shape.length());
  index::WindowBatch b1(banks.shape.length());
  for (std::size_t k = 0; k < t0.key_space(); ++k) {
    const auto key = static_cast<index::SeedKey>(k);
    if (t0.list_length(key) == 0 || t1.list_length(key) == 0) continue;
    index::extract_windows(banks.bank0, t0.occurrences(key), banks.shape, b0);
    index::extract_windows(banks.bank1, t1.occurrences(key), banks.shape, b1);
    for (std::size_t i = 0; i < b0.size(); ++i) {
      for (std::size_t j = 0; j < b1.size(); ++j) {
        const int score =
            align::ungapped_window_score(b0.window(i), b1.window(j), m);
        if (score >= threshold) {
          expected.push_back(
              align::SeedPairHit{b0.source(i), b1.source(j), score});
        }
      }
    }
  }
  EXPECT_EQ(sorted(result.hits), sorted(expected));
}

TEST(HostStep2, ParallelMatchesSequential) {
  const TestBanks banks(3);
  const index::IndexTable t0(banks.bank0, banks.model);
  const index::IndexTable t1(banks.bank1, banks.model);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const HostStep2Result seq =
      run_step2_host(banks.bank0, t0, banks.bank1, t1, m, banks.shape, 28);
  for (const std::size_t threads : {1u, 2u, 4u, 7u}) {
    const HostStep2Result par = run_step2_host_parallel(
        banks.bank0, t0, banks.bank1, t1, m, banks.shape, 28, threads);
    EXPECT_EQ(par.pairs, seq.pairs) << threads;
    EXPECT_EQ(sorted(par.hits), sorted(seq.hits)) << threads;
  }
}

TEST(HostStep2, AllKernelsProduceIdenticalHitSets) {
  const TestBanks banks(6);
  const index::IndexTable t0(banks.bank0, banks.model);
  const index::IndexTable t1(banks.bank1, banks.model);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const HostStep2Result scalar =
      run_step2_host(banks.bank0, t0, banks.bank1, t1, m, banks.shape, 26,
                     align::UngappedKernel::kScalar);
  EXPECT_EQ(scalar.kernel, align::UngappedKernel::kScalar);
  EXPECT_EQ(scalar.cells, scalar.pairs * banks.shape.length());
  ASSERT_FALSE(scalar.hits.empty());
  for (const auto kernel :
       {align::UngappedKernel::kAuto, align::UngappedKernel::kBlocked,
        align::UngappedKernel::kSimd}) {
    const HostStep2Result other = run_step2_host(
        banks.bank0, t0, banks.bank1, t1, m, banks.shape, 26, kernel);
    EXPECT_EQ(sorted(other.hits), sorted(scalar.hits))
        << align::ungapped_kernel_name(kernel);
    EXPECT_EQ(other.pairs, scalar.pairs);
    const HostStep2Result parallel =
        run_step2_host_parallel(banks.bank0, t0, banks.bank1, t1, m,
                                banks.shape, 26, 3, kernel);
    EXPECT_EQ(sorted(parallel.hits), sorted(scalar.hits))
        << align::ungapped_kernel_name(kernel);
  }
}

TEST(HostStep2, ThresholdMonotonicity) {
  const TestBanks banks(4);
  const index::IndexTable t0(banks.bank0, banks.model);
  const index::IndexTable t1(banks.bank1, banks.model);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const auto loose =
      run_step2_host(banks.bank0, t0, banks.bank1, t1, m, banks.shape, 20);
  const auto tight =
      run_step2_host(banks.bank0, t0, banks.bank1, t1, m, banks.shape, 40);
  EXPECT_GE(loose.hits.size(), tight.hits.size());
  EXPECT_EQ(loose.pairs, tight.pairs);  // same work, different filter
}

TEST(HostStep2, EmptyBanksNoHits) {
  bio::SequenceBank empty(bio::SequenceKind::kProtein);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const index::IndexTable t_empty(empty, model);
  const TestBanks banks(5, 1, 1);
  const index::IndexTable t1(banks.bank1, model);
  const HostStep2Result result =
      run_step2_host(empty, t_empty, banks.bank1, t1,
                     bio::SubstitutionMatrix::blosum62(), banks.shape, 10);
  EXPECT_TRUE(result.hits.empty());
  EXPECT_EQ(result.pairs, 0u);
}

TEST(HostStep2, CostAwareChunksPartitionKeySpace) {
  const TestBanks banks(6);
  const index::IndexTable t0(banks.bank0, banks.model);
  const index::IndexTable t1(banks.bank1, banks.model);
  for (const std::size_t parts : {1u, 2u, 5u, 16u}) {
    const auto chunks = cost_aware_key_chunks(t0, t1, parts);
    ASSERT_FALSE(chunks.empty());
    EXPECT_LE(chunks.size(), parts);
    // Contiguous, non-overlapping, exhaustive cover of [0, key_space).
    EXPECT_EQ(chunks.front().first, 0u);
    for (std::size_t i = 1; i < chunks.size(); ++i) {
      EXPECT_EQ(chunks[i].first, chunks[i - 1].second);
      EXPECT_LT(chunks[i].first, chunks[i].second);
    }
    EXPECT_EQ(chunks.back().second, t0.key_space());
  }
}

TEST(HostStep2, CostAwareChunksBalanceWork) {
  const TestBanks banks(7);
  const index::IndexTable t0(banks.bank0, banks.model);
  const index::IndexTable t1(banks.bank1, banks.model);
  auto chunk_cost = [&](std::size_t first, std::size_t last) {
    std::uint64_t cost = 0;
    for (std::size_t k = first; k < last; ++k) {
      const auto key = static_cast<index::SeedKey>(k);
      cost += static_cast<std::uint64_t>(t0.list_length(key)) *
              t1.list_length(key);
    }
    return cost;
  };
  const std::uint64_t total = chunk_cost(0, t0.key_space());
  ASSERT_GT(total, 0u);
  const std::size_t parts = 4;
  const auto chunks = cost_aware_key_chunks(t0, t1, parts);
  const std::uint64_t target = (total + parts - 1) / parts;
  // The greedy cut closes a chunk at the first key crossing the target,
  // so no chunk exceeds target by more than one key's cost -- and no
  // key's cost can exceed the total.
  for (const auto& [first, last] : chunks) {
    EXPECT_LE(chunk_cost(first, last), 2 * target + total / parts);
  }
}

TEST(HostStep2, EmptyTablesFallBackToStaticChunks) {
  bio::SequenceBank empty(bio::SequenceKind::kProtein);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const index::IndexTable t_empty(empty, model);
  const auto chunks = cost_aware_key_chunks(t_empty, t_empty, 4);
  ASSERT_FALSE(chunks.empty());
  EXPECT_EQ(chunks.front().first, 0u);
  EXPECT_EQ(chunks.back().second, t_empty.key_space());
}

TEST(HostStep2, SchedulesProduceIdenticalHits) {
  const TestBanks banks(8);
  const index::IndexTable t0(banks.bank0, banks.model);
  const index::IndexTable t1(banks.bank1, banks.model);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const HostStep2Result fixed = run_step2_host_parallel(
      banks.bank0, t0, banks.bank1, t1, m, banks.shape, 26, 3,
      align::UngappedKernel::kAuto, Step2Schedule::kStatic);
  const HostStep2Result balanced = run_step2_host_parallel(
      banks.bank0, t0, banks.bank1, t1, m, banks.shape, 26, 3,
      align::UngappedKernel::kAuto, Step2Schedule::kCostAware);
  EXPECT_EQ(fixed.hits, balanced.hits);  // both normalized
  EXPECT_EQ(fixed.pairs, balanced.pairs);
  EXPECT_EQ(fixed.cells, balanced.cells);
}

TEST(HostStep2, RunsOnPrivateExecutor) {
  const TestBanks banks(9);
  const index::IndexTable t0(banks.bank0, banks.model);
  const index::IndexTable t1(banks.bank1, banks.model);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const HostStep2Result reference =
      run_step2_host(banks.bank0, t0, banks.bank1, t1, m, banks.shape, 26);
  util::Executor executor(2);
  const HostStep2Result result = run_step2_host_parallel(
      banks.bank0, t0, banks.bank1, t1, m, banks.shape, 26, 2,
      align::UngappedKernel::kAuto, Step2Schedule::kCostAware, &executor);
  EXPECT_EQ(sorted(result.hits), sorted(reference.hits));
}

}  // namespace
}  // namespace psc::core
