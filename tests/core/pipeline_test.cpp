#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/genome_generator.hpp"
#include "sim/mutation.hpp"
#include "sim/protein_generator.hpp"

namespace psc::core {
namespace {

struct TestBanks {
  bio::SequenceBank proteins{bio::SequenceKind::kProtein};
  bio::Sequence genome;

  explicit TestBanks(std::uint64_t seed, std::size_t n_proteins = 5,
                 std::size_t genome_length = 20000) {
    util::Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < n_proteins; ++i) {
      proteins.add(sim::generate_protein("p" + std::to_string(i), 100, rng));
    }
    sim::GenomeConfig config;
    config.length = genome_length;
    config.seed = seed;
    genome = sim::generate_genome(config);
    // Plant diverged copies of proteins 0 and 2.
    sim::MutationConfig divergence;
    divergence.substitution_rate = 0.15;
    divergence.indel_rate = 0.0;
    const bio::Sequence copy0 =
        sim::mutate_protein(proteins[0], divergence, rng);
    const bio::Sequence copy2 =
        sim::mutate_protein(proteins[2], divergence, rng);
    sim::plant_gene(genome, copy0, 3000, true, rng);
    sim::plant_gene(genome, copy2, 9001, false, rng);
  }
};

TEST(Pipeline, HostSequentialFindsPlantedGenes) {
  const TestBanks banks(1);
  PipelineOptions options;
  options.backend = Step2Backend::kHostSequential;
  const PipelineResult result =
      run_pipeline_genome(banks.proteins, banks.genome, options);

  ASSERT_FALSE(result.matches.empty());
  bool found0 = false, found2 = false;
  for (const Match& match : result.matches) {
    if (match.bank0_sequence == 0) found0 = true;
    if (match.bank0_sequence == 2) found2 = true;
  }
  EXPECT_TRUE(found0);
  EXPECT_TRUE(found2);  // reverse-strand plant found via frame -1/-2/-3
  EXPECT_GT(result.counters.step2_pairs, 0u);
  EXPECT_GE(result.counters.step2_hits, result.counters.step3_extensions);
}

TEST(Pipeline, StepTimesPopulated) {
  const TestBanks banks(2);
  PipelineOptions options;
  const PipelineResult result =
      run_pipeline_genome(banks.proteins, banks.genome, options);
  EXPECT_GT(result.times.step1_index, 0.0);
  EXPECT_GT(result.times.step2_ungapped, 0.0);
  EXPECT_GT(result.times.step3_gapped, 0.0);
  EXPECT_NEAR(result.times.percent(result.times.step1_index) +
                  result.times.percent(result.times.step2_ungapped) +
                  result.times.percent(result.times.step3_gapped),
              100.0, 1e-6);
}

TEST(Pipeline, HostParallelMatchesSequential) {
  const TestBanks banks(3);
  PipelineOptions sequential;
  sequential.backend = Step2Backend::kHostSequential;
  PipelineOptions parallel;
  parallel.backend = Step2Backend::kHostParallel;
  parallel.host_threads = 3;

  const PipelineResult a =
      run_pipeline_genome(banks.proteins, banks.genome, sequential);
  const PipelineResult b =
      run_pipeline_genome(banks.proteins, banks.genome, parallel);
  ASSERT_EQ(a.matches.size(), b.matches.size());
  EXPECT_EQ(a.counters.step2_pairs, b.counters.step2_pairs);
  EXPECT_EQ(a.counters.step2_hits, b.counters.step2_hits);
  for (std::size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].bank0_sequence, b.matches[i].bank0_sequence);
    EXPECT_EQ(a.matches[i].alignment.score, b.matches[i].alignment.score);
  }
}

TEST(Pipeline, RascBackendMatchesHostMatches) {
  const TestBanks banks(4);
  PipelineOptions host;
  host.backend = Step2Backend::kHostSequential;
  PipelineOptions rasc;
  rasc.backend = Step2Backend::kRasc;
  rasc.rasc.psc.num_pes = 32;
  rasc.rasc.psc.slot_size = 8;

  const PipelineResult a =
      run_pipeline_genome(banks.proteins, banks.genome, host);
  const PipelineResult b =
      run_pipeline_genome(banks.proteins, banks.genome, rasc);
  ASSERT_EQ(a.matches.size(), b.matches.size());
  for (std::size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].bank0_sequence, b.matches[i].bank0_sequence);
    EXPECT_EQ(a.matches[i].bank1_sequence, b.matches[i].bank1_sequence);
    EXPECT_EQ(a.matches[i].alignment.score, b.matches[i].alignment.score);
  }
  // Step-2 counters agree too.
  EXPECT_EQ(a.counters.step2_pairs, b.counters.step2_pairs);
  EXPECT_EQ(a.counters.step2_hits, b.counters.step2_hits);
  // RASC populates accelerator reporting.
  EXPECT_EQ(b.fpga_reports.size(), 1u);
  EXPECT_GT(b.operator_stats.cycles_total(), 0u);
  EXPECT_GT(b.times.step2_ungapped, 0.0);
}

TEST(Pipeline, RascModeledTimeIndependentOfHostWallTime) {
  const TestBanks banks(5);
  PipelineOptions options;
  options.backend = Step2Backend::kRasc;
  options.rasc.psc.num_pes = 64;
  const PipelineResult result =
      run_pipeline_genome(banks.proteins, banks.genome, options);
  // The modeled time is cycles/clock + transfers, not the simulation wall
  // time.
  const double expected =
      result.fpga_reports[0].compute_seconds +
      result.fpga_reports[0].transfer_seconds +
      result.fpga_reports[0].overhead_seconds;
  EXPECT_NEAR(result.times.step2_ungapped, expected, 1e-9);
}

TEST(Pipeline, MorePesReduceModeledStep2TimeWhenListsAreLong) {
  // More PEs only pay off when IL0 index lists exceed the array (the
  // paper's small-bank caveat, section 4.1). Fifty copies of the same
  // protein give every populated key a 50-deep IL0 list, so a 16-PE array
  // needs 4 rounds where a 64-PE array needs one.
  const TestBanks banks(6, 5, 40000);
  bio::SequenceBank dense(bio::SequenceKind::kProtein);
  for (int copy = 0; copy < 50; ++copy) {
    dense.add(bio::Sequence(
        "c" + std::to_string(copy), bio::SequenceKind::kProtein,
        std::vector<std::uint8_t>(banks.proteins[0].residues())));
  }
  PipelineOptions small;
  small.backend = Step2Backend::kRasc;
  small.rasc.psc.num_pes = 16;
  PipelineOptions large = small;
  large.rasc.psc.num_pes = 64;
  const PipelineResult a = run_pipeline_genome(dense, banks.genome, small);
  const PipelineResult b = run_pipeline_genome(dense, banks.genome, large);
  EXPECT_LT(b.operator_stats.cycles_total(), a.operator_stats.cycles_total());
  EXPECT_GT(a.operator_stats.rounds, b.operator_stats.rounds);
}

TEST(Pipeline, ThresholdControlsStep2Hits) {
  const TestBanks banks(7);
  PipelineOptions loose;
  loose.ungapped_threshold = 25;
  PipelineOptions tight;
  tight.ungapped_threshold = 45;
  const PipelineResult a =
      run_pipeline_genome(banks.proteins, banks.genome, loose);
  const PipelineResult b =
      run_pipeline_genome(banks.proteins, banks.genome, tight);
  EXPECT_GT(a.counters.step2_hits, b.counters.step2_hits);
}

TEST(Pipeline, CompositionStatsAdjustEValues) {
  const TestBanks banks(10);
  PipelineOptions plain;
  PipelineOptions adjusted;
  adjusted.composition_based_stats = true;
  const PipelineResult a =
      run_pipeline_genome(banks.proteins, banks.genome, plain);
  const PipelineResult b =
      run_pipeline_genome(banks.proteins, banks.genome, adjusted);
  ASSERT_FALSE(a.matches.empty());
  ASSERT_FALSE(b.matches.empty());
  // The planted homologies survive either statistic (borderline random
  // matches may flip across the E-value cutoff as lambda shifts).
  auto found = [](const PipelineResult& r, std::uint32_t query) {
    for (const Match& m : r.matches) {
      if (m.bank0_sequence == query) return true;
    }
    return false;
  };
  EXPECT_TRUE(found(a, 0) && found(a, 2));
  EXPECT_TRUE(found(b, 0) && found(b, 2));
  // Alignments themselves are untouched -- only the statistics (and
  // hence the E-value ranking) change.
  auto best_score = [](const PipelineResult& r) {
    int best = 0;
    for (const Match& m : r.matches) best = std::max(best, m.alignment.score);
    return best;
  };
  EXPECT_EQ(best_score(a), best_score(b));
}

TEST(Pipeline, Step3ThreadsDoNotChangeResults) {
  const TestBanks banks(11);
  PipelineOptions sequential;
  sequential.step3_threads = 1;
  PipelineOptions threaded;
  threaded.step3_threads = 4;
  const PipelineResult a =
      run_pipeline_genome(banks.proteins, banks.genome, sequential);
  const PipelineResult b =
      run_pipeline_genome(banks.proteins, banks.genome, threaded);
  ASSERT_EQ(a.matches.size(), b.matches.size());
  for (std::size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].alignment.score, b.matches[i].alignment.score);
    EXPECT_EQ(a.matches[i].bank0_sequence, b.matches[i].bank0_sequence);
  }
  EXPECT_EQ(a.counters.step3_extensions, b.counters.step3_extensions);
}

TEST(Pipeline, EmptyProteinBankYieldsNothing) {
  const TestBanks banks(8, 5, 10000);
  bio::SequenceBank empty(bio::SequenceKind::kProtein);
  PipelineOptions options;
  const PipelineResult result =
      run_pipeline_genome(empty, banks.genome, options);
  EXPECT_TRUE(result.matches.empty());
  EXPECT_EQ(result.counters.step2_pairs, 0u);
}

TEST(Pipeline, BankVsBankDirectUse) {
  // The public API also accepts two protein banks directly.
  util::Xoshiro256 rng(9);
  bio::SequenceBank a(bio::SequenceKind::kProtein);
  bio::SequenceBank b(bio::SequenceKind::kProtein);
  const bio::Sequence shared = sim::generate_protein("shared", 90, rng);
  a.add(bio::Sequence("q", bio::SequenceKind::kProtein,
                      std::vector<std::uint8_t>(shared.residues())));
  b.add(bio::Sequence("t", bio::SequenceKind::kProtein,
                      std::vector<std::uint8_t>(shared.residues())));
  b.add(sim::generate_protein("noise", 200, rng));

  PipelineOptions options;
  const PipelineResult result = run_pipeline(a, b, options);
  ASSERT_FALSE(result.matches.empty());
  EXPECT_EQ(result.matches[0].bank1_sequence, 0u);
}

}  // namespace
}  // namespace psc::core
