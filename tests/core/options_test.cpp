#include "core/options.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/executor.hpp"

namespace psc::core {
namespace {

TEST(MakeSeedModel, ProducesConfiguredModels) {
  EXPECT_EQ(make_seed_model(SeedModelKind::kSubsetW4).name(), "subset-w4");
  EXPECT_EQ(make_seed_model(SeedModelKind::kExactW4).width(), 4u);
  EXPECT_EQ(make_seed_model(SeedModelKind::kExactW3).width(), 3u);
}

TEST(BackendName, AllNamed) {
  EXPECT_EQ(backend_name(Step2Backend::kHostSequential), "host-sequential");
  EXPECT_EQ(backend_name(Step2Backend::kHostParallel), "host-parallel");
  EXPECT_EQ(backend_name(Step2Backend::kRasc), "rasc");
}

TEST(PipelineOptions, DefaultsValidate) {
  PipelineOptions options;
  EXPECT_NO_THROW(options.validate());
  EXPECT_EQ(options.shape.length(), 64u);
}

TEST(PipelineOptions, SeedWidthMismatchThrows) {
  PipelineOptions options;
  options.seed_model = SeedModelKind::kExactW3;  // width 3 vs shape width 4
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options.shape.seed_width = 3;
  EXPECT_NO_THROW(options.validate());
}

TEST(PipelineOptions, BadEValueThrows) {
  PipelineOptions options;
  options.e_value_cutoff = 0.0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
}

TEST(PipelineOptions, RascBackendValidatesFpgas) {
  PipelineOptions options;
  options.backend = Step2Backend::kRasc;
  options.rasc.num_fpgas = 3;
  EXPECT_THROW(options.validate(), std::invalid_argument);
  options.rasc.num_fpgas = 2;
  EXPECT_NO_THROW(options.validate());
}

TEST(PipelineOptions, ZeroSeedWidthThrows) {
  PipelineOptions options;
  options.shape.seed_width = 0;
  EXPECT_THROW(options.validate(), std::invalid_argument);
}

TEST(PipelineOptions, SetThreadsMapsBothStages) {
  PipelineOptions options;
  options.set_threads(5);
  EXPECT_EQ(options.host_threads, 5u);
  EXPECT_EQ(options.step3_threads, 5u);
  EXPECT_NO_THROW(options.validate());
}

TEST(PipelineOptions, SetThreadsZeroMeansAllCores) {
  // step3_threads treats 0 and 1 both as "sequential", so "all cores"
  // must be resolved eagerly for step 3; host_threads resolves 0 itself.
  PipelineOptions options;
  options.set_threads(0);
  EXPECT_EQ(options.host_threads, 0u);
  EXPECT_EQ(options.step3_threads, util::default_thread_count());
  EXPECT_NO_THROW(options.validate());
}

TEST(Step2ScheduleNames, RoundTrip) {
  EXPECT_EQ(step2_schedule_name(Step2Schedule::kStatic), "static");
  EXPECT_EQ(step2_schedule_name(Step2Schedule::kCostAware), "cost-aware");
  EXPECT_EQ(parse_step2_schedule("static"), Step2Schedule::kStatic);
  EXPECT_EQ(parse_step2_schedule("cost-aware"), Step2Schedule::kCostAware);
  EXPECT_THROW(parse_step2_schedule("fifo"), std::invalid_argument);
}

}  // namespace
}  // namespace psc::core
