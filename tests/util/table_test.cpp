#include "util/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace psc::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table;
  table.set_header({"bank", "time"});
  table.add_row({"1K", "2379"});
  table.add_row({"3K", "7089"});
  const std::string out = table.render();
  EXPECT_NE(out.find("bank"), std::string::npos);
  EXPECT_NE(out.find("2,379") == std::string::npos ? out.find("2379")
                                                   : out.find("2379"),
            std::string::npos);
  EXPECT_NE(out.find("3K"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable table;
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, NumbersAreRightAligned) {
  TextTable table;
  table.set_header({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"y", "12345"});
  const std::string out = table.render();
  // "1" should be padded on the left to the width of "12345".
  EXPECT_NE(out.find("    1 |"), std::string::npos);
}

TEST(TextTable, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 1), "2.0");
  EXPECT_EQ(TextTable::num(-0.5, 2), "-0.50");
}

TEST(TextTable, CountInsertsSeparators) {
  EXPECT_EQ(TextTable::count(0), "0");
  EXPECT_EQ(TextTable::count(999), "999");
  EXPECT_EQ(TextTable::count(1000), "1,000");
  EXPECT_EQ(TextTable::count(1234567), "1,234,567");
  EXPECT_EQ(TextTable::count(-12345), "-12,345");
}

TEST(TextTable, RuleSeparatesSections) {
  TextTable table;
  table.set_header({"col"});
  table.add_row({"above"});
  table.add_rule();
  table.add_row({"below"});
  const std::string out = table.render();
  // Header rule + top + bottom + explicit = at least 4 rules.
  std::size_t rules = 0;
  for (std::size_t pos = 0; (pos = out.find("+-", pos)) != std::string::npos;
       ++pos) {
    ++rules;
  }
  EXPECT_GE(rules, 4u);
}

TEST(TextTable, EmptyTableStillRenders) {
  TextTable table;
  EXPECT_FALSE(table.render().empty());
  EXPECT_EQ(table.rows(), 0u);
}

}  // namespace
}  // namespace psc::util
