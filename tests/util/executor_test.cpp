#include "util/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace psc::util {
namespace {

TEST(Executor, RunsSubmittedTasks) {
  Executor executor(4);
  Executor::TaskGroup group(executor);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    group.run([&counter] { counter.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(Executor, ZeroThreadsMeansHardwareConcurrency) {
  Executor executor(0);
  EXPECT_GE(executor.size(), 1u);
}

TEST(Executor, SharedSingletonIsStable) {
  Executor& a = Executor::shared();
  Executor& b = Executor::shared();
  EXPECT_EQ(&a, &b);
  Executor::TaskGroup group(a);
  std::atomic<bool> ran{false};
  group.run([&ran] { ran = true; });
  group.wait();
  EXPECT_TRUE(ran);
}

TEST(Executor, GroupIsReusableAfterWait) {
  Executor executor(2);
  Executor::TaskGroup group(executor);
  std::atomic<int> counter{0};
  group.run([&counter] { counter.fetch_add(1); });
  group.wait();
  EXPECT_EQ(counter.load(), 1);
  for (int i = 0; i < 50; ++i) {
    group.run([&counter] { counter.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(counter.load(), 51);
}

TEST(Executor, WorkSpreadsAcrossWorkers) {
  // Many slow-ish tasks on a wide executor must not all land on one
  // thread: submission round-robins and idle workers steal. Exact
  // distribution is scheduling-dependent; require more than one thread
  // to have participated (time slicing on a 1-core box still yields
  // distinct thread ids).
  Executor executor(4);
  Executor::TaskGroup group(executor);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  for (int i = 0; i < 64; ++i) {
    group.run([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      std::lock_guard<std::mutex> lock(mutex);
      seen.insert(std::this_thread::get_id());
    });
  }
  group.wait();
  EXPECT_GT(seen.size(), 1u);
}

TEST(Executor, MaxParallelCapsConcurrency) {
  Executor executor(8);
  Executor::TaskGroup group(executor, 2);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 40; ++i) {
    group.run([&] {
      const int now = running.fetch_add(1) + 1;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      running.fetch_sub(1);
    });
  }
  group.wait();
  EXPECT_LE(peak.load(), 2);
}

TEST(Executor, NestedSubmitAndWait) {
  // A task spawns its own child group on the same executor and waits on
  // it; wait() help-runs queued tasks, so this must not deadlock even
  // when tasks outnumber workers.
  Executor executor(2);
  Executor::TaskGroup outer(executor);
  std::atomic<int> children{0};
  for (int i = 0; i < 8; ++i) {
    outer.run([&executor, &children] {
      Executor::TaskGroup inner(executor);
      for (int j = 0; j < 8; ++j) {
        inner.run([&children] { children.fetch_add(1); });
      }
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(children.load(), 64);
}

TEST(Executor, WaitRethrowsFirstTaskException) {
  Executor executor(2);
  Executor::TaskGroup group(executor);
  for (int i = 0; i < 4; ++i) {
    group.run([] { throw std::runtime_error("task failed"); });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  // The group recovers: a clean batch after the failure works.
  std::atomic<bool> ran{false};
  group.run([&ran] { ran = true; });
  group.wait();
  EXPECT_TRUE(ran);
}

TEST(Executor, FailureAbandonsBacklog) {
  // With a cap of 1 the group queues tasks internally; a throw cancels
  // the not-yet-started remainder, and wait() still returns (then
  // rethrows) instead of hanging on abandoned work.
  Executor executor(2);
  Executor::TaskGroup group(executor, 1);
  std::atomic<int> ran{0};
  group.run([&] {
    ran.fetch_add(1);
    throw std::runtime_error("first task failed");
  });
  for (int i = 0; i < 16; ++i) {
    group.run([&] { ran.fetch_add(1); });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  // The real assertion is that wait() returned at all; how many of the
  // queued tasks slipped in before the failure landed is scheduling-
  // dependent, but the thrower itself certainly ran.
  EXPECT_GE(ran.load(), 1);
}

TEST(Executor, ManySmallBatches) {
  // The service pattern: one long-lived executor, many short task
  // groups. Exercises the sleep/wake path repeatedly.
  Executor executor(3);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 100; ++batch) {
    Executor::TaskGroup group(executor);
    for (int i = 0; i < 4; ++i) {
      group.run([&total] { total.fetch_add(1); });
    }
    group.wait();
  }
  EXPECT_EQ(total.load(), 400);
}

TEST(Executor, WaitOnEmptyGroupReturnsImmediately) {
  Executor executor(2);
  Executor::TaskGroup group(executor);
  group.wait();  // no tasks: must not block
  SUCCEED();
}

TEST(Blocks, EvenSplit) {
  const auto chunks = blocks(0, 12, 3);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0], (std::pair<std::size_t, std::size_t>(0, 4)));
  EXPECT_EQ(chunks[1], (std::pair<std::size_t, std::size_t>(4, 8)));
  EXPECT_EQ(chunks[2], (std::pair<std::size_t, std::size_t>(8, 12)));
}

TEST(Blocks, RemainderGoesToFirstBlocks) {
  const auto chunks = blocks(0, 10, 4);
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_EQ(chunks[0], (std::pair<std::size_t, std::size_t>(0, 3)));
  EXPECT_EQ(chunks[1], (std::pair<std::size_t, std::size_t>(3, 6)));
  EXPECT_EQ(chunks[2], (std::pair<std::size_t, std::size_t>(6, 8)));
  EXPECT_EQ(chunks[3], (std::pair<std::size_t, std::size_t>(8, 10)));
}

TEST(Blocks, MorePartsThanItems) {
  const auto chunks = blocks(0, 2, 8);
  ASSERT_EQ(chunks.size(), 2u);  // never emits empty chunks
  EXPECT_EQ(chunks[0], (std::pair<std::size_t, std::size_t>(0, 1)));
  EXPECT_EQ(chunks[1], (std::pair<std::size_t, std::size_t>(1, 2)));
}

TEST(Blocks, EmptyRange) {
  EXPECT_TRUE(blocks(5, 5, 4).empty());
  EXPECT_TRUE(blocks(7, 3, 4).empty());
  EXPECT_TRUE(blocks(0, 9, 0).empty());
}

TEST(Blocks, DefaultThreadCountIsAtLeastOne) {
  EXPECT_GE(default_thread_count(), 1u);
}

}  // namespace
}  // namespace psc::util
