#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace psc::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(257);
  pool.parallel_for(0, touched.size(), [&touched](std::size_t i) {
    touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 10,
                        [](std::size_t i) {
                          if (i == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPoolBlocks, EvenSplit) {
  const auto blocks = ThreadPool::blocks(0, 12, 3);
  ASSERT_EQ(blocks.size(), 3u);
  const auto expected0 = std::make_pair<std::size_t, std::size_t>(0, 4);
  const auto expected1 = std::make_pair<std::size_t, std::size_t>(4, 8);
  const auto expected2 = std::make_pair<std::size_t, std::size_t>(8, 12);
  EXPECT_EQ(blocks[0], expected0);
  EXPECT_EQ(blocks[1], expected1);
  EXPECT_EQ(blocks[2], expected2);
}

TEST(ThreadPoolBlocks, RemainderGoesToFirstBlocks) {
  const auto blocks = ThreadPool::blocks(0, 10, 4);
  ASSERT_EQ(blocks.size(), 4u);
  std::size_t total = 0;
  std::size_t previous_end = 0;
  for (const auto& [lo, hi] : blocks) {
    EXPECT_EQ(lo, previous_end);
    total += hi - lo;
    previous_end = hi;
  }
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(blocks[0].second - blocks[0].first, 3u);
}

TEST(ThreadPoolBlocks, MorePartsThanItems) {
  const auto blocks = ThreadPool::blocks(0, 2, 8);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].second - blocks[0].first, 1u);
}

TEST(ThreadPoolBlocks, EmptyRange) {
  EXPECT_TRUE(ThreadPool::blocks(5, 5, 4).empty());
  EXPECT_TRUE(ThreadPool::blocks(7, 3, 4).empty());
}

TEST(DefaultThreadCount, IsPositive) {
  EXPECT_GE(default_thread_count(), 1u);
}

}  // namespace
}  // namespace psc::util
