#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

namespace psc::util {
namespace {

TEST(Xoshiro256, SameSeedSameSequence) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, ZeroSeedIsValid) {
  Xoshiro256 rng(0);
  // The SplitMix64 expansion must not land in the forbidden all-zero state.
  bool any_nonzero = false;
  for (int i = 0; i < 16; ++i) any_nonzero |= rng() != 0;
  EXPECT_TRUE(any_nonzero);
}

TEST(Xoshiro256, BoundedStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Xoshiro256, BoundedZeroReturnsZero) {
  Xoshiro256 rng(7);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Xoshiro256, BoundedOneReturnsZero) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Xoshiro256, BoundedCoversAllValues) {
  Xoshiro256 rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    ASSERT_GE(u, -2.0);
    ASSERT_LT(u, 3.0);
  }
}

TEST(Xoshiro256, ChanceExtremes) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Xoshiro256, ChanceMatchesProbability) {
  Xoshiro256 rng(19);
  int heads = 0;
  for (int i = 0; i < 20000; ++i) heads += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 20000.0, 0.3, 0.02);
}

TEST(Xoshiro256, SplitStreamsAreIndependent) {
  Xoshiro256 parent(23);
  Xoshiro256 child = parent.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, JumpChangesSequence) {
  Xoshiro256 a(29);
  Xoshiro256 b(29);
  b.jump();
  EXPECT_NE(a(), b());
}

TEST(SampleCumulative, PicksByWeight) {
  Xoshiro256 rng(31);
  const std::array<double, 3> cum = {0.1, 0.2, 1.0};  // weights .1/.1/.8
  std::array<int, 3> counts{};
  for (int i = 0; i < 30000; ++i) ++counts[sample_cumulative(rng, cum)];
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.8, 0.02);
}

}  // namespace
}  // namespace psc::util
