#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace psc::util {
namespace {

/// Restores the global log level on scope exit so tests don't leak state.
struct LevelGuard {
  LogLevel saved = log_level();
  ~LevelGuard() { set_log_level(saved); }
};

TEST(Logging, DefaultLevelIsWarn) {
  // The library must not spam stdout/stderr by default.
  LevelGuard guard;
  EXPECT_EQ(static_cast<int>(log_level()),
            static_cast<int>(LogLevel::kWarn));
}

TEST(Logging, SetAndGetLevel) {
  LevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(static_cast<int>(log_level()),
            static_cast<int>(LogLevel::kDebug));
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(static_cast<int>(log_level()), static_cast<int>(LogLevel::kOff));
}

TEST(Logging, SuppressedLevelsDoNotCrash) {
  LevelGuard guard;
  set_log_level(LogLevel::kOff);
  log_line(LogLevel::kError, "must be discarded silently");
  log_debug() << "also discarded " << 42;
  log_info() << "and this";
}

TEST(Logging, StreamInterfaceFormats) {
  LevelGuard guard;
  set_log_level(LogLevel::kOff);  // nothing printed; exercise the path
  log_warn() << "value=" << 3.5 << " name=" << std::string("x");
  log_error() << 1 << 2 << 3;
}

TEST(Logging, ConcurrentLoggingIsSafe) {
  LevelGuard guard;
  set_log_level(LogLevel::kOff);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 200; ++i) log_line(LogLevel::kError, "stress");
    });
  }
  for (auto& thread : threads) thread.join();
}

}  // namespace
}  // namespace psc::util
