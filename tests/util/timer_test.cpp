#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace psc::util {
namespace {

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.seconds(), 0.015);
  EXPECT_LT(timer.seconds(), 5.0);
}

TEST(Timer, ResetRestartsClock) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.reset();
  EXPECT_LT(timer.seconds(), 0.015);
}

TEST(PhaseProfiler, AccumulatesNamedPhases) {
  PhaseProfiler profiler;
  profiler.add("step1", 1.0);
  profiler.add("step2", 3.0);
  profiler.add("step1", 1.0);
  EXPECT_DOUBLE_EQ(profiler.total("step1"), 2.0);
  EXPECT_DOUBLE_EQ(profiler.total("step2"), 3.0);
  EXPECT_DOUBLE_EQ(profiler.grand_total(), 5.0);
}

TEST(PhaseProfiler, PercentSumsToHundred) {
  PhaseProfiler profiler;
  profiler.add("a", 1.0);
  profiler.add("b", 2.0);
  profiler.add("c", 7.0);
  EXPECT_NEAR(profiler.percent("a") + profiler.percent("b") +
                  profiler.percent("c"),
              100.0, 1e-9);
  EXPECT_NEAR(profiler.percent("c"), 70.0, 1e-9);
}

TEST(PhaseProfiler, UnknownPhaseIsZero) {
  PhaseProfiler profiler;
  EXPECT_DOUBLE_EQ(profiler.total("nothing"), 0.0);
  EXPECT_DOUBLE_EQ(profiler.percent("nothing"), 0.0);
}

TEST(PhaseProfiler, PreservesFirstUseOrder) {
  PhaseProfiler profiler;
  profiler.add("z", 1.0);
  profiler.add("a", 1.0);
  profiler.add("z", 1.0);
  ASSERT_EQ(profiler.names().size(), 2u);
  EXPECT_EQ(profiler.names()[0], "z");
  EXPECT_EQ(profiler.names()[1], "a");
}

TEST(PhaseProfiler, ScopeRecordsOnDestruction) {
  PhaseProfiler profiler;
  {
    auto scope = profiler.scope("timed");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(profiler.total("timed"), 0.005);
}

TEST(PhaseProfiler, ClearResetsEverything) {
  PhaseProfiler profiler;
  profiler.add("x", 1.0);
  profiler.clear();
  EXPECT_TRUE(profiler.names().empty());
  EXPECT_DOUBLE_EQ(profiler.grand_total(), 0.0);
}

}  // namespace
}  // namespace psc::util
