#include "util/args.hpp"

#include <gtest/gtest.h>

namespace psc::util {
namespace {

ArgParser make_parser() {
  ArgParser parser("test", "unit test parser");
  parser.add_option("count", "10", "how many");
  parser.add_option("name", "default", "a name");
  parser.add_option("ratio", "0.5", "a ratio");
  parser.add_flag("verbose", "talk more");
  return parser;
}

TEST(ArgParser, DefaultsApply) {
  ArgParser parser = make_parser();
  const char* argv[] = {"test"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_EQ(parser.get_int("count"), 10);
  EXPECT_EQ(parser.get("name"), "default");
  EXPECT_DOUBLE_EQ(parser.get_double("ratio"), 0.5);
  EXPECT_FALSE(parser.get_flag("verbose"));
}

TEST(ArgParser, EqualsSyntax) {
  ArgParser parser = make_parser();
  const char* argv[] = {"test", "--count=42", "--name=alpha"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.get_int("count"), 42);
  EXPECT_EQ(parser.get("name"), "alpha");
}

TEST(ArgParser, SpaceSyntax) {
  ArgParser parser = make_parser();
  const char* argv[] = {"test", "--count", "7"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.get_int("count"), 7);
}

TEST(ArgParser, FlagSetsTrue) {
  ArgParser parser = make_parser();
  const char* argv[] = {"test", "--verbose"};
  ASSERT_TRUE(parser.parse(2, argv));
  EXPECT_TRUE(parser.get_flag("verbose"));
}

TEST(ArgParser, UnknownOptionFails) {
  ArgParser parser = make_parser();
  const char* argv[] = {"test", "--bogus=1"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(ArgParser, MissingValueFails) {
  ArgParser parser = make_parser();
  const char* argv[] = {"test", "--count"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(ArgParser, HelpReturnsFalse) {
  ArgParser parser = make_parser();
  const char* argv[] = {"test", "--help"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(ArgParser, PositionalCollected) {
  ArgParser parser = make_parser();
  const char* argv[] = {"test", "input.fa", "--count=1", "output.fa"};
  ASSERT_TRUE(parser.parse(4, argv));
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "input.fa");
  EXPECT_EQ(parser.positional()[1], "output.fa");
}

TEST(ArgParser, UsageListsOptions) {
  ArgParser parser = make_parser();
  const std::string usage = parser.usage();
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("how many"), std::string::npos);
}

TEST(ArgParser, UndeclaredGetThrows) {
  ArgParser parser = make_parser();
  const char* argv[] = {"test"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_THROW(parser.get("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace psc::util
