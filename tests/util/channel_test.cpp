#include "util/channel.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace psc::util {
namespace {

TEST(BoundedChannel, PushPopRoundTrip) {
  BoundedChannel<int> channel(4);
  channel.push(1);
  channel.push(2);
  int out = 0;
  EXPECT_TRUE(channel.try_pop(out));
  EXPECT_EQ(out, 1);
  const auto second = channel.pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 2);
  EXPECT_FALSE(channel.try_pop(out));
}

TEST(BoundedChannel, PopDrainsThenSignalsClosed) {
  BoundedChannel<int> channel(4);
  channel.push(7);
  channel.close();
  EXPECT_TRUE(channel.closed());
  const auto first = channel.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 7);
  EXPECT_FALSE(channel.pop().has_value());
}

TEST(BoundedChannel, PushAfterCloseThrows) {
  BoundedChannel<int> channel(4);
  channel.close();
  EXPECT_THROW(channel.push(1), std::logic_error);
}

TEST(BoundedChannel, BlockingPushResumesWhenDrained) {
  BoundedChannel<int> channel(1);
  channel.push(1);
  std::thread producer([&] { channel.push(2); });  // blocks: full
  int out = 0;
  while (!channel.try_pop(out)) {
    std::this_thread::yield();
  }
  EXPECT_EQ(out, 1);
  producer.join();
  const auto second = channel.pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 2);
}

TEST(BoundedChannel, BlockedPopWakesOnClose) {
  BoundedChannel<int> channel(2);
  std::thread consumer([&] { EXPECT_FALSE(channel.pop().has_value()); });
  channel.close();
  consumer.join();
}

TEST(BoundedChannel, ManyProducersOneConsumer) {
  BoundedChannel<int> channel(3);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&channel, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        channel.push(p * kPerProducer + i);
      }
    });
  }
  std::thread closer([&] {
    for (auto& producer : producers) producer.join();
    channel.close();
  });
  long long sum = 0;
  int count = 0;
  while (const auto item = channel.pop()) {
    sum += *item;
    ++count;
  }
  closer.join();
  EXPECT_EQ(count, kProducers * kPerProducer);
  const int n = kProducers * kPerProducer;
  EXPECT_EQ(sum, static_cast<long long>(n) * (n - 1) / 2);
}

}  // namespace
}  // namespace psc::util
