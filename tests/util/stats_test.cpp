#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace psc::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(5.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 5.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(RunningStats, KnownSeries) {
  RunningStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(v);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats stats;
  stats.add(-3.0);
  stats.add(3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), -3.0);
}

TEST(Percentile, MedianOfOddList) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Percentile, InterpolatesBetweenPoints) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Percentile, Extremes) {
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 9.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 9.0}, 1.0), 9.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
}

TEST(Pearson, PerfectCorrelation) {
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
}

TEST(Pearson, PerfectAntiCorrelation) {
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(Pearson, DegenerateInputsAreZero) {
  EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);  // zero variance
  EXPECT_DOUBLE_EQ(pearson({1, 2}, {1}), 0.0);           // length mismatch
  EXPECT_DOUBLE_EQ(pearson({1}, {1}), 0.0);              // too short
}

}  // namespace
}  // namespace psc::util
