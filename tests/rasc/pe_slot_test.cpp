#include "rasc/pe_slot.hpp"

#include <gtest/gtest.h>

#include "align/ungapped.hpp"

namespace psc::rasc {
namespace {

std::vector<std::uint8_t> encode(const std::string& letters) {
  std::vector<std::uint8_t> out;
  for (const char c : letters) out.push_back(bio::encode_protein(c));
  return out;
}

TEST(PeSlot, LoadsWindowsSequentially) {
  const auto& m = bio::SubstitutionMatrix::blosum62();
  PeSlot slot(0, 2, 4, m, 0);
  EXPECT_TRUE(slot.has_free_pe());
  const auto w1 = encode("MKVL");
  const auto w2 = encode("ARND");
  for (const auto r : w1) slot.load_residue(r, 10);
  EXPECT_EQ(slot.loaded_pes(), 1u);
  for (const auto r : w2) slot.load_residue(r, 11);
  EXPECT_EQ(slot.loaded_pes(), 2u);
  EXPECT_FALSE(slot.has_free_pe());
  EXPECT_EQ(slot.pe(0).il0_index(), 10u);
  EXPECT_EQ(slot.pe(1).il0_index(), 11u);
}

TEST(PeSlot, LoadIntoFullSlotThrows) {
  PeSlot slot(0, 1, 2, bio::SubstitutionMatrix::blosum62(), 0);
  const auto w = encode("MK");
  for (const auto r : w) slot.load_residue(r, 0);
  EXPECT_THROW(slot.load_residue(0, 1), std::logic_error);
}

TEST(PeSlot, ComputeWindowScoresAllLoadedPes) {
  const auto& m = bio::SubstitutionMatrix::blosum62();
  PeSlot slot(0, 3, 4, m, 0);  // threshold 0: everything passes
  const auto w1 = encode("MKVL");
  const auto w2 = encode("ARND");
  for (const auto r : w1) slot.load_residue(r, 0);
  for (const auto r : w2) slot.load_residue(r, 1);

  const auto il1 = encode("MKVL");
  std::vector<ResultRecord> passing;
  slot.compute_window(il1.data(), 99, passing);
  ASSERT_EQ(passing.size(), 2u);  // third PE not loaded
  EXPECT_EQ(passing[0].il0_index, 0u);
  EXPECT_EQ(passing[0].il1_index, 99u);
  EXPECT_EQ(passing[0].score, align::ungapped_window_score(w1, il1, m));
  EXPECT_EQ(passing[1].il0_index, 1u);
  EXPECT_EQ(passing[1].score, align::ungapped_window_score(w2, il1, m));
}

TEST(PeSlot, ThresholdFiltersResults) {
  const auto& m = bio::SubstitutionMatrix::blosum62();
  PeSlot slot(0, 2, 4, m, 15);
  const auto good = encode("MKVL");
  const auto bad = encode("GGGG");
  for (const auto r : good) slot.load_residue(r, 0);
  for (const auto r : bad) slot.load_residue(r, 1);

  const auto il1 = encode("MKVL");  // self-score 18; G-vs-MKVL ~ 0
  std::vector<ResultRecord> passing;
  slot.compute_window(il1.data(), 0, passing);
  ASSERT_EQ(passing.size(), 1u);
  EXPECT_EQ(passing[0].il0_index, 0u);
  EXPECT_GE(passing[0].score, 15);
}

TEST(PeSlot, ComputeCycleEmitsAtWindowBoundary) {
  const auto& m = bio::SubstitutionMatrix::blosum62();
  PeSlot slot(0, 1, 4, m, 0);
  const auto w = encode("MKVL");
  for (const auto r : w) slot.load_residue(r, 0);

  const auto il1 = encode("MKVL");
  std::vector<ResultRecord> passing;
  for (std::size_t k = 0; k < 3; ++k) {
    slot.compute_cycle(il1[k], 0, passing);
    EXPECT_TRUE(passing.empty());
  }
  slot.compute_cycle(il1[3], 0, passing);
  ASSERT_EQ(passing.size(), 1u);
  EXPECT_EQ(passing[0].score, align::ungapped_window_score(w, il1, m));
}

TEST(PeSlot, ResetClearsLoadState) {
  PeSlot slot(0, 2, 2, bio::SubstitutionMatrix::blosum62(), 0);
  const auto w = encode("MK");
  for (const auto r : w) slot.load_residue(r, 0);
  slot.reset();
  EXPECT_EQ(slot.loaded_pes(), 0u);
  EXPECT_TRUE(slot.has_free_pe());
  for (const auto r : w) slot.load_residue(r, 5);
  EXPECT_EQ(slot.pe(0).il0_index(), 5u);
}

TEST(PeSlot, ZeroPesThrows) {
  EXPECT_THROW(PeSlot(0, 0, 4, bio::SubstitutionMatrix::blosum62(), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace psc::rasc
