#include "rasc/psc_operator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "align/ungapped.hpp"
#include "sim/protein_generator.hpp"
#include "util/rng.hpp"

namespace psc::rasc {
namespace {

struct TestData {
  bio::SequenceBank bank{bio::SequenceKind::kProtein};
  index::WindowBatch il0;
  index::WindowBatch il1;

  TestData(std::size_t window_length, std::size_t n0, std::size_t n1,
           std::uint64_t seed)
      : il0(window_length), il1(window_length) {
    util::Xoshiro256 rng(seed);
    bank.add(sim::generate_protein("pool", 4000, rng));
    const index::WindowShape shape{4, (window_length - 4) / 2};
    for (std::uint32_t i = 0; i < n0; ++i) {
      il0.append(bank, index::Occurrence{0, 40 + 17 * i}, shape);
    }
    for (std::uint32_t j = 0; j < n1; ++j) {
      il1.append(bank, index::Occurrence{0, 41 + 13 * j}, shape);
    }
  }
};

std::vector<ResultRecord> sorted(std::vector<ResultRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const ResultRecord& a, const ResultRecord& b) {
              if (a.il0_index != b.il0_index) return a.il0_index < b.il0_index;
              return a.il1_index < b.il1_index;
            });
  return records;
}

PscConfig small_config(std::size_t pes = 8, int threshold = 10) {
  PscConfig config;
  config.num_pes = pes;
  config.slot_size = 4;
  config.window_length = 16;
  config.threshold = threshold;
  config.fifo_depth = 16;
  return config;
}

TEST(PscOperator, BatchMatchesGoldenKernel) {
  const TestData data(16, 6, 9, 1);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  PscOperator op(small_config(), m);
  std::vector<ResultRecord> records;
  op.run_key(data.il0, data.il1, records);

  // Golden: score every pair with the scalar kernel.
  std::vector<ResultRecord> expected;
  for (std::uint32_t i = 0; i < data.il0.size(); ++i) {
    for (std::uint32_t j = 0; j < data.il1.size(); ++j) {
      const int score = align::ungapped_window_score(
          data.il0.window(i), data.il1.window(j), m);
      if (score >= 10) expected.push_back(ResultRecord{i, j, score});
    }
  }
  EXPECT_EQ(sorted(records), sorted(expected));
  EXPECT_EQ(op.stats().comparisons, data.il0.size() * data.il1.size());
  EXPECT_EQ(op.stats().hits, expected.size());
}

TEST(PscOperator, CycleExactMatchesBatchResults) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const TestData data(16, 10, 14, seed);
    const auto& m = bio::SubstitutionMatrix::blosum62();
    PscOperator batch_op(small_config(), m);
    PscOperator exact_op(small_config(), m);
    std::vector<ResultRecord> batch_records;
    std::vector<ResultRecord> exact_records;
    batch_op.run_key(data.il0, data.il1, batch_records);
    exact_op.run_key_cycle_exact(data.il0, data.il1, exact_records);
    EXPECT_EQ(sorted(batch_records), sorted(exact_records));
    EXPECT_EQ(batch_op.stats().comparisons, exact_op.stats().comparisons);
    EXPECT_EQ(batch_op.stats().hits, exact_op.stats().hits);
    EXPECT_EQ(batch_op.stats().rounds, exact_op.stats().rounds);
  }
}

TEST(PscOperator, CycleExactCycleCountCloseToBatchModel) {
  const TestData data(16, 10, 30, 4);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  PscOperator batch_op(small_config(8, 60), m);  // high threshold: few hits
  PscOperator exact_op(small_config(8, 60), m);
  std::vector<ResultRecord> sink;
  batch_op.run_key(data.il0, data.il1, sink);
  exact_op.run_key_cycle_exact(data.il0, data.il1, sink);
  const double batch_cycles =
      static_cast<double>(batch_op.stats().cycles_total());
  const double exact_cycles =
      static_cast<double>(exact_op.stats().cycles_total());
  // The batch timing model is the documented closed form; the cycle-exact
  // engine may differ by cascade-traversal latency only.
  EXPECT_NEAR(exact_cycles, batch_cycles, 0.05 * batch_cycles + 64.0);
}

TEST(PscOperator, LoadCyclesFollowFormula) {
  const TestData data(16, 5, 7, 5);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const PscConfig config = small_config();
  PscOperator op(config, m);
  std::vector<ResultRecord> sink;
  op.run_key(data.il0, data.il1, sink);
  // One round: load = 5 windows * 16 + skew; compute = 7 * 16 + skew.
  EXPECT_EQ(op.stats().cycles_load, 5u * 16 + config.skew_cycles());
  EXPECT_EQ(op.stats().cycles_compute, 7u * 16 + config.skew_cycles());
  EXPECT_EQ(op.stats().rounds, 1u);
}

TEST(PscOperator, MultipleRoundsWhenIl0ExceedsArray) {
  const TestData data(16, 20, 6, 6);  // 20 windows > 8 PEs -> 3 rounds
  const auto& m = bio::SubstitutionMatrix::blosum62();
  PscOperator op(small_config(), m);
  std::vector<ResultRecord> sink;
  op.run_key(data.il0, data.il1, sink);
  EXPECT_EQ(op.stats().rounds, 3u);
  EXPECT_EQ(op.stats().comparisons, 20u * 6);
  // Rounds re-stream IL1: compute cycles triple.
  EXPECT_EQ(op.stats().cycles_compute,
            3 * (6u * 16 + op.config().skew_cycles()));
}

TEST(PscOperator, UtilizationReflectsArrayFill) {
  const auto& m = bio::SubstitutionMatrix::blosum62();
  {
    const TestData data(16, 2, 10, 7);  // 2 of 8 PEs busy
    PscOperator op(small_config(), m);
    std::vector<ResultRecord> sink;
    op.run_key(data.il0, data.il1, sink);
    EXPECT_NEAR(op.stats().utilization(), 0.25, 1e-9);
  }
  {
    const TestData data(16, 8, 10, 7);  // full array
    PscOperator op(small_config(), m);
    std::vector<ResultRecord> sink;
    op.run_key(data.il0, data.il1, sink);
    EXPECT_NEAR(op.stats().utilization(), 1.0, 1e-9);
  }
}

TEST(PscOperator, EmptyBatchesAreNoops) {
  const auto& m = bio::SubstitutionMatrix::blosum62();
  PscOperator op(small_config(), m);
  index::WindowBatch empty(16);
  const TestData data(16, 3, 3, 8);
  std::vector<ResultRecord> sink;
  op.run_key(empty, data.il1, sink);
  op.run_key(data.il0, empty, sink);
  EXPECT_TRUE(sink.empty());
  EXPECT_EQ(op.stats().cycles_total(), 0u);
  EXPECT_EQ(op.stats().keys, 0u);
}

TEST(PscOperator, WindowLengthMismatchThrows) {
  const auto& m = bio::SubstitutionMatrix::blosum62();
  PscOperator op(small_config(), m);
  index::WindowBatch wrong(8);
  index::WindowBatch right(16);
  std::vector<ResultRecord> sink;
  EXPECT_THROW(op.run_key(wrong, right, sink), std::invalid_argument);
  EXPECT_THROW(op.run_key_cycle_exact(right, wrong, sink),
               std::invalid_argument);
}

TEST(PscOperator, LowThresholdInducesStalls) {
  // Threshold 0 makes every comparison a result; with 8 PEs emitting per
  // 16-cycle tick into shallow FIFOs the cascade must saturate.
  const TestData data(16, 8, 200, 9);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  PscConfig config = small_config(8, 0);
  config.fifo_depth = 2;
  PscOperator op(config, m);
  std::vector<ResultRecord> sink;
  op.run_key(data.il0, data.il1, sink);
  EXPECT_EQ(sink.size(), 8u * 200);
  EXPECT_GT(op.stats().cycles_stall, 0u);
}

TEST(PscOperator, HighThresholdAvoidsStalls) {
  const TestData data(16, 8, 200, 9);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  PscOperator op(small_config(8, 1000), m);
  std::vector<ResultRecord> sink;
  op.run_key(data.il0, data.il1, sink);
  EXPECT_TRUE(sink.empty());
  EXPECT_EQ(op.stats().cycles_stall, 0u);
}

TEST(PscOperator, StatsAccumulateAcrossKeys) {
  const TestData data(16, 4, 5, 10);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  PscOperator op(small_config(), m);
  std::vector<ResultRecord> sink;
  op.run_key(data.il0, data.il1, sink);
  const auto after_one = op.stats().cycles_total();
  op.run_key(data.il0, data.il1, sink);
  EXPECT_EQ(op.stats().cycles_total(), 2 * after_one);
  EXPECT_EQ(op.stats().keys, 2u);
  op.reset_stats();
  EXPECT_EQ(op.stats().cycles_total(), 0u);
}

TEST(PscOperator, ModeledSecondsUsesClock) {
  const TestData data(16, 4, 5, 11);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  PscConfig config = small_config();
  config.clock_hz = 100e6;
  PscOperator op(config, m);
  std::vector<ResultRecord> sink;
  op.run_key(data.il0, data.il1, sink);
  EXPECT_NEAR(op.modeled_seconds(),
              static_cast<double>(op.stats().cycles_total()) / 100e6, 1e-12);
}

/// Property sweep: batch and cycle-exact engines agree on hit sets across
/// PE-array geometries.
class OperatorGeometry
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(OperatorGeometry, EnginesAgree) {
  const auto [pes, slot_size] = GetParam();
  const TestData data(16, 13, 11, 1234);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  PscConfig config;
  config.num_pes = pes;
  config.slot_size = slot_size;
  config.window_length = 16;
  config.threshold = 8;
  config.fifo_depth = 8;
  PscOperator batch_op(config, m);
  PscOperator exact_op(config, m);
  std::vector<ResultRecord> batch_records, exact_records;
  batch_op.run_key(data.il0, data.il1, batch_records);
  exact_op.run_key_cycle_exact(data.il0, data.il1, exact_records);
  EXPECT_EQ(sorted(batch_records), sorted(exact_records));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, OperatorGeometry,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(4, 2),
                      std::make_tuple(8, 8), std::make_tuple(16, 4),
                      std::make_tuple(13, 5), std::make_tuple(64, 8)));

/// Property sweep: across thresholds, the operator's hit set equals the
/// golden kernel filtered at that threshold, and hits shrink
/// monotonically.
class OperatorThreshold : public ::testing::TestWithParam<int> {};

TEST_P(OperatorThreshold, MatchesFilteredGoldenKernel) {
  const int threshold = GetParam();
  const TestData data(16, 9, 12, 555);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  PscOperator op(small_config(8, threshold), m);
  std::vector<ResultRecord> records;
  op.run_key(data.il0, data.il1, records);

  std::vector<ResultRecord> expected;
  for (std::uint32_t i = 0; i < data.il0.size(); ++i) {
    for (std::uint32_t j = 0; j < data.il1.size(); ++j) {
      const int score = align::ungapped_window_score(
          data.il0.window(i), data.il1.window(j), m);
      if (score >= threshold) expected.push_back(ResultRecord{i, j, score});
    }
  }
  EXPECT_EQ(sorted(records), sorted(expected));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, OperatorThreshold,
                         ::testing::Values(0, 5, 12, 20, 35, 60, 1000));

/// Property sweep: engines agree across window lengths too.
class OperatorWindowLength : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OperatorWindowLength, EnginesAgreeAndCyclesScale) {
  const std::size_t length = GetParam();
  const TestData data(length, 7, 9, 777);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  PscConfig config;
  config.num_pes = 8;
  config.slot_size = 4;
  config.window_length = length;
  config.threshold = 8;
  PscOperator batch_op(config, m);
  PscOperator exact_op(config, m);
  std::vector<ResultRecord> batch_records, exact_records;
  batch_op.run_key(data.il0, data.il1, batch_records);
  exact_op.run_key_cycle_exact(data.il0, data.il1, exact_records);
  EXPECT_EQ(sorted(batch_records), sorted(exact_records));
  // Streaming cycles scale linearly with the window.
  EXPECT_EQ(batch_op.stats().cycles_load,
            7 * length + config.skew_cycles());
  EXPECT_EQ(batch_op.stats().cycles_compute,
            9 * length + config.skew_cycles());
}

INSTANTIATE_TEST_SUITE_P(WindowLengths, OperatorWindowLength,
                         ::testing::Values(8, 16, 44, 64, 94, 124));

TEST(PscOperator, StallStressWithTinyFifosStaysCorrect) {
  // Failure injection: FIFO depth 1, threshold 0 -> every comparison is a
  // result and the cascade saturates constantly. The cycle-exact engine
  // must still deliver every result (stalls, not drops).
  const TestData data(16, 8, 60, 888);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  PscConfig config = small_config(8, 0);
  config.fifo_depth = 1;
  PscOperator exact_op(config, m);
  std::vector<ResultRecord> records;
  exact_op.run_key_cycle_exact(data.il0, data.il1, records);
  EXPECT_EQ(records.size(), 8u * 60);
  EXPECT_GT(exact_op.stats().cycles_stall, 0u);

  // And the batch engine produces the same result multiset.
  PscOperator batch_op(config, m);
  std::vector<ResultRecord> batch_records;
  batch_op.run_key(data.il0, data.il1, batch_records);
  EXPECT_EQ(sorted(batch_records), sorted(records));
}

}  // namespace
}  // namespace psc::rasc
