#include "rasc/controllers.hpp"

#include <gtest/gtest.h>

namespace psc::rasc {
namespace {

index::WindowBatch make_batch(std::initializer_list<const char*> windows) {
  bio::SequenceBank bank(bio::SequenceKind::kProtein);
  std::size_t length = 0;
  for (const char* w : windows) length = std::string(w).size();
  index::WindowBatch batch(length);
  index::WindowShape shape{length, 0};
  std::uint32_t i = 0;
  for (const char* w : windows) {
    bank.add(bio::Sequence::protein_from_letters("w" + std::to_string(i), w));
    batch.append(bank, index::Occurrence{i, 0}, shape);
    ++i;
  }
  return batch;
}

TEST(InputController, StreamsResiduesInOrder) {
  const auto batch = make_batch({"MKVL"});
  InputController controller(batch);
  std::string streamed;
  while (auto emission = controller.next()) {
    streamed.push_back(bio::decode_protein(emission->residue));
  }
  EXPECT_EQ(streamed, "MKVL");
  EXPECT_TRUE(controller.exhausted());
}

TEST(InputController, MarksWindowBoundaries) {
  const auto batch = make_batch({"MKVL", "ARND"});
  InputController controller(batch);
  std::vector<bool> completes;
  std::vector<std::uint32_t> indices;
  while (auto emission = controller.next()) {
    completes.push_back(emission->window_complete);
    indices.push_back(emission->window_index);
  }
  ASSERT_EQ(completes.size(), 8u);
  EXPECT_FALSE(completes[0]);
  EXPECT_TRUE(completes[3]);
  EXPECT_TRUE(completes[7]);
  EXPECT_EQ(indices[0], 0u);
  EXPECT_EQ(indices[4], 1u);
}

TEST(InputController, RestrictLimitsStream) {
  const auto batch = make_batch({"MKVL", "ARND", "CQEG"});
  InputController controller(batch);
  controller.restrict(1, 1);
  std::string streamed;
  while (auto emission = controller.next()) {
    streamed.push_back(bio::decode_protein(emission->residue));
    EXPECT_EQ(emission->window_index, 1u);
  }
  EXPECT_EQ(streamed, "ARND");
}

TEST(InputController, RewindReplaysStream) {
  const auto batch = make_batch({"MK"});
  // Window length 2 here; make_batch uses last window's length -- both 2.
  InputController controller(batch);
  int first_count = 0;
  while (controller.next()) ++first_count;
  controller.rewind();
  int second_count = 0;
  while (controller.next()) ++second_count;
  EXPECT_EQ(first_count, second_count);
}

TEST(InputController, RestrictPastEndThrows) {
  const auto batch = make_batch({"MKVL"});
  InputController controller(batch);
  EXPECT_THROW(controller.restrict(2, 1), std::out_of_range);
}

TEST(InputController, RestrictCountClampsToBatch) {
  const auto batch = make_batch({"MKVL", "ARND"});
  InputController controller(batch);
  controller.restrict(1, 100);
  int windows = 0;
  while (auto emission = controller.next()) {
    windows += emission->window_complete ? 1 : 0;
  }
  EXPECT_EQ(windows, 1);
}

TEST(OutputController, CollectsAndTakes) {
  OutputController controller;
  controller.accept(ResultRecord{1, 2, 3});
  controller.accept(ResultRecord{4, 5, 6});
  EXPECT_EQ(controller.results().size(), 2u);
  const auto taken = controller.take();
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[1].il1_index, 5u);
}

TEST(OutputController, ClearEmpties) {
  OutputController controller;
  controller.accept(ResultRecord{1, 2, 3});
  controller.clear();
  EXPECT_TRUE(controller.results().empty());
}

}  // namespace
}  // namespace psc::rasc
