#include "rasc/sgi_core.hpp"

#include <gtest/gtest.h>

namespace psc::rasc {
namespace {

TEST(SgiCore, RegisterWriteReadRoundTrip) {
  SgiCore core;
  core.write_register(AdrRegister::kThreshold, 38);
  core.write_register(AdrRegister::kWindowLength, 64);
  EXPECT_EQ(core.read_register(AdrRegister::kThreshold), 38u);
  EXPECT_EQ(core.read_register(AdrRegister::kWindowLength), 64u);
}

TEST(SgiCore, DoorbellProtocol) {
  SgiCore core;
  EXPECT_FALSE(core.busy());
  EXPECT_EQ(core.read_register(AdrRegister::kStatus), 0u);
  core.ring_doorbell();
  EXPECT_TRUE(core.busy());
  EXPECT_EQ(core.read_register(AdrRegister::kStatus), 1u);
  core.complete(123, 4567);
  EXPECT_FALSE(core.busy());
  EXPECT_EQ(core.read_register(AdrRegister::kResultCount), 123u);
  EXPECT_EQ(core.read_register(AdrRegister::kCycleCounter), 4567u);
}

TEST(SgiCore, DoorbellWhileBusyThrows) {
  SgiCore core;
  core.ring_doorbell();
  EXPECT_THROW(core.ring_doorbell(), std::logic_error);
}

TEST(SgiCore, CompleteWhileIdleThrows) {
  SgiCore core;
  EXPECT_THROW(core.complete(0, 0), std::logic_error);
}

TEST(SgiCore, ConfigWriteWhileBusyThrows) {
  SgiCore core;
  core.ring_doorbell();
  EXPECT_THROW(core.write_register(AdrRegister::kThreshold, 1),
               std::logic_error);
  // Control register stays writable (abort/reset path).
  EXPECT_NO_THROW(core.write_register(AdrRegister::kControl, 0));
}

TEST(SgiCore, DeviceOwnedRegistersAreReadOnly) {
  SgiCore core;
  EXPECT_THROW(core.write_register(AdrRegister::kStatus, 1), std::logic_error);
  EXPECT_THROW(core.write_register(AdrRegister::kResultCount, 1),
               std::logic_error);
  EXPECT_THROW(core.write_register(AdrRegister::kCycleCounter, 1),
               std::logic_error);
}

TEST(SgiCore, DoorbellClearsDeviceCounters) {
  SgiCore core;
  core.ring_doorbell();
  core.complete(99, 100);
  core.ring_doorbell();
  EXPECT_EQ(core.read_register(AdrRegister::kResultCount), 0u);
  EXPECT_EQ(core.read_register(AdrRegister::kCycleCounter), 0u);
  core.complete(1, 2);
}

TEST(SgiCore, MmioTimeAccumulates) {
  SgiCore core(1e-6);
  core.write_register(AdrRegister::kThreshold, 1);  // 1 write
  core.ring_doorbell();                             // 1 doorbell
  core.complete(0, 0);                              // device side: free
  core.read_register(AdrRegister::kStatus);         // 1 read
  EXPECT_NEAR(core.mmio_seconds(), 3e-6, 1e-12);
  EXPECT_EQ(core.writes(), 1u);
  EXPECT_EQ(core.reads(), 1u);
  EXPECT_EQ(core.doorbells(), 1u);
}

TEST(SgiCore, NegativeLatencyThrows) {
  EXPECT_THROW(SgiCore(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace psc::rasc
