#include "rasc/gap_operator.hpp"

#include <gtest/gtest.h>

#include "sim/protein_generator.hpp"
#include "util/rng.hpp"

namespace psc::rasc {
namespace {

struct Pairs {
  bio::SequenceBank bank{bio::SequenceKind::kProtein};
  index::WindowBatch batch0;
  index::WindowBatch batch1;

  Pairs(std::size_t window_length, std::size_t count, std::uint64_t seed)
      : batch0(window_length), batch1(window_length) {
    util::Xoshiro256 rng(seed);
    bank.add(sim::generate_protein("pool", 3000, rng));
    const index::WindowShape shape{4, (window_length - 4) / 2};
    for (std::uint32_t i = 0; i < count; ++i) {
      batch0.append(bank, index::Occurrence{0, 60 + 19 * i}, shape);
      batch1.append(bank, index::Occurrence{0, 61 + 23 * i}, shape);
    }
  }
};

GapOperatorConfig make_config(std::size_t lanes = 4, int threshold = 0,
                              std::size_t window = 32) {
  GapOperatorConfig config;
  config.num_lanes = lanes;
  config.band = 8;
  config.window_length = window;
  config.threshold = threshold;
  return config;
}

TEST(GapOperator, ScoresMatchBandedKernel) {
  const Pairs pairs(32, 7, 1);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const align::GapParams params;
  GapOperator op(make_config(), m, params);
  std::vector<ResultRecord> out;
  op.run_pairs(pairs.batch0, pairs.batch1, out);
  ASSERT_EQ(out.size(), 7u);  // threshold 0: every pair reported
  for (const ResultRecord& record : out) {
    EXPECT_EQ(record.il0_index, record.il1_index);
    EXPECT_EQ(record.score,
              align::banded_window_score(pairs.batch0.window(record.il0_index),
                                         pairs.batch1.window(record.il1_index),
                                         8, params, m));
  }
}

TEST(GapOperator, ThresholdFilters) {
  const Pairs pairs(32, 10, 2);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  GapOperator loose(make_config(4, 0), m, align::GapParams{});
  GapOperator tight(make_config(4, 60), m, align::GapParams{});
  std::vector<ResultRecord> all, few;
  loose.run_pairs(pairs.batch0, pairs.batch1, all);
  tight.run_pairs(pairs.batch0, pairs.batch1, few);
  EXPECT_EQ(all.size(), 10u);
  EXPECT_LT(few.size(), all.size());
  EXPECT_EQ(tight.stats().pairs, 10u);
  EXPECT_EQ(tight.stats().survivors, few.size());
}

TEST(GapOperator, CycleModelFollowsClosedForm) {
  const std::size_t window = 32;
  const Pairs pairs(window, 9, 3);
  GapOperator op(make_config(4, 0, window), bio::SubstitutionMatrix::blosum62(),
                 align::GapParams{});
  std::vector<ResultRecord> out;
  op.run_pairs(pairs.batch0, pairs.batch1, out);
  // 9 pairs over 4 lanes -> 3 rounds; per round M load + 2M-1 compute.
  EXPECT_EQ(op.stats().cycles_load, 3u * window);
  EXPECT_EQ(op.stats().cycles_compute, 3u * (2 * window - 1));
  EXPECT_NEAR(op.modeled_seconds(),
              static_cast<double>(op.stats().cycles_total()) / 100e6, 1e-15);
}

TEST(GapOperator, LaneUtilization) {
  const Pairs pairs(32, 9, 4);
  GapOperator op(make_config(4, 0), bio::SubstitutionMatrix::blosum62(),
                 align::GapParams{});
  std::vector<ResultRecord> out;
  op.run_pairs(pairs.batch0, pairs.batch1, out);
  // 9 busy lane-ticks of 12 (3 rounds x 4 lanes).
  EXPECT_NEAR(op.stats().utilization(), 9.0 / 12.0, 1e-12);
}

TEST(GapOperator, MoreLanesFewerCycles) {
  const Pairs pairs(32, 16, 5);
  GapOperator narrow(make_config(2, 0), bio::SubstitutionMatrix::blosum62(),
                     align::GapParams{});
  GapOperator wide(make_config(16, 0), bio::SubstitutionMatrix::blosum62(),
                   align::GapParams{});
  std::vector<ResultRecord> out;
  narrow.run_pairs(pairs.batch0, pairs.batch1, out);
  out.clear();
  wide.run_pairs(pairs.batch0, pairs.batch1, out);
  EXPECT_GT(narrow.stats().cycles_total(), wide.stats().cycles_total());
}

TEST(GapOperator, EmptyBatchIsNoop) {
  index::WindowBatch empty0(32), empty1(32);
  GapOperator op(make_config(), bio::SubstitutionMatrix::blosum62(),
                 align::GapParams{});
  std::vector<ResultRecord> out;
  op.run_pairs(empty0, empty1, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(op.stats().cycles_total(), 0u);
}

TEST(GapOperator, MismatchedInputsThrow) {
  const Pairs pairs(32, 3, 6);
  index::WindowBatch other(32);
  GapOperator op(make_config(), bio::SubstitutionMatrix::blosum62(),
                 align::GapParams{});
  std::vector<ResultRecord> out;
  EXPECT_THROW(op.run_pairs(pairs.batch0, other, out), std::invalid_argument);
  index::WindowBatch wrong_len(16);
  EXPECT_THROW(op.run_pairs(wrong_len, wrong_len, out), std::invalid_argument);
}

TEST(GapOperator, InvalidConfigThrows) {
  const auto& m = bio::SubstitutionMatrix::blosum62();
  GapOperatorConfig config = make_config();
  config.num_lanes = 0;
  EXPECT_THROW(GapOperator(config, m, align::GapParams{}),
               std::invalid_argument);
  config = make_config();
  config.band = 0;
  EXPECT_THROW(GapOperator(config, m, align::GapParams{}),
               std::invalid_argument);
}

TEST(GapOperator, HomologousPairScoresAboveNoise) {
  util::Xoshiro256 rng(7);
  bio::SequenceBank bank(bio::SequenceKind::kProtein);
  bio::Sequence a = sim::generate_protein("a", 200, rng);
  bio::Sequence b = sim::generate_protein("b", 200, rng);
  // Copy a 40-residue stretch from a into b at a slightly shifted spot.
  for (std::size_t k = 0; k < 40; ++k) {
    b.mutable_residues()[82 + k] = a[80 + k];
  }
  bank.add(std::move(a));
  bank.add(std::move(b));

  const index::WindowShape shape{4, 30};  // window 64
  index::WindowBatch w0(shape.length()), w1(shape.length());
  w0.append(bank, index::Occurrence{0, 95}, shape);   // inside the copy
  w1.append(bank, index::Occurrence{1, 97}, shape);   // shifted by 2
  w0.append(bank, index::Occurrence{0, 160}, shape);  // noise pair
  w1.append(bank, index::Occurrence{1, 30}, shape);

  GapOperatorConfig config = make_config(2, 0, shape.length());
  GapOperator op(config, bio::SubstitutionMatrix::blosum62(),
                 align::GapParams{});
  std::vector<ResultRecord> out;
  op.run_pairs(w0, w1, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_GT(out[0].score, out[1].score + 40);  // homology dominates
}

}  // namespace
}  // namespace psc::rasc
