// BoardCache: the cross-run residency state the stateful accelerator
// accounting hangs off. The tests drive scripted touch sequences against
// hand-computed oracles for what each run must pay.
#include "rasc/board_cache.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace psc::rasc {
namespace {

TEST(BoardCache, FirstTouchPaysBitstreamAndUpload) {
  BoardCache cache(1);
  const BoardTouch touch = cache.touch(0, 0xAA, 2.0);
  EXPECT_TRUE(touch.load_bitstream);
  EXPECT_TRUE(touch.upload_bank);
  EXPECT_FALSE(touch.swapped);  // nothing was evicted

  const BoardCacheStats stats = cache.stats();
  EXPECT_EQ(stats.bitstream_loads, 1u);
  EXPECT_EQ(stats.bank_uploads, 1u);
  EXPECT_EQ(stats.board_swaps, 0u);
  EXPECT_EQ(stats.uploads_skipped, 0u);
  EXPECT_DOUBLE_EQ(stats.upload_seconds, 2.0);
  EXPECT_DOUBLE_EQ(stats.upload_seconds_saved, 0.0);
}

TEST(BoardCache, RepeatTouchSkipsEverything) {
  BoardCache cache(1);
  cache.touch(0, 0xAA, 2.0);
  const BoardTouch touch = cache.touch(0, 0xAA, 2.0);
  EXPECT_FALSE(touch.load_bitstream);  // configured for process lifetime
  EXPECT_FALSE(touch.upload_bank);     // image already resident
  EXPECT_FALSE(touch.swapped);

  const BoardCacheStats stats = cache.stats();
  EXPECT_EQ(stats.bitstream_loads, 1u);
  EXPECT_EQ(stats.bank_uploads, 1u);
  EXPECT_EQ(stats.uploads_skipped, 1u);
  EXPECT_DOUBLE_EQ(stats.upload_seconds_saved, 2.0);
}

TEST(BoardCache, DifferentImageSwapsWithoutReconfiguring) {
  BoardCache cache(1);
  cache.touch(0, 0xAA, 2.0);
  const BoardTouch touch = cache.touch(0, 0xBB, 3.0);
  EXPECT_FALSE(touch.load_bitstream);
  EXPECT_TRUE(touch.upload_bank);
  EXPECT_TRUE(touch.swapped);  // 0xBB evicted 0xAA

  const BoardCacheStats stats = cache.stats();
  EXPECT_EQ(stats.bitstream_loads, 1u);
  EXPECT_EQ(stats.bank_uploads, 2u);
  EXPECT_EQ(stats.board_swaps, 1u);
  EXPECT_DOUBLE_EQ(stats.upload_seconds, 5.0);
}

TEST(BoardCache, ScriptedMixedStreamMatchesOracle) {
  // The bench's adversarial shape: A,B,A,A,B on one FPGA.
  // Oracle: uploads at A(cold), B(swap), A(swap), B(swap); the repeated
  // A is the only skip -> 4 uploads, 3 swaps, 1 skip.
  BoardCache cache(2);
  cache.touch(0, 'A', 1.0);
  cache.touch(0, 'B', 1.0);
  cache.touch(0, 'A', 1.0);
  cache.touch(0, 'A', 1.0);
  cache.touch(0, 'B', 1.0);

  const BoardCacheStats stats = cache.stats();
  EXPECT_EQ(stats.bitstream_loads, 1u);
  EXPECT_EQ(stats.bank_uploads, 4u);
  EXPECT_EQ(stats.board_swaps, 3u);
  EXPECT_EQ(stats.uploads_skipped, 1u);
  EXPECT_DOUBLE_EQ(stats.upload_seconds, 4.0);
  EXPECT_DOUBLE_EQ(stats.upload_seconds_saved, 1.0);
}

TEST(BoardCache, FpgasTrackResidencyIndependently) {
  BoardCache cache(2);
  cache.touch(0, 'A', 1.0);
  const BoardTouch touch1 = cache.touch(1, 'A', 1.0);
  // FPGA 1 has its own SRAM: same image still uploads (and configures).
  EXPECT_TRUE(touch1.load_bitstream);
  EXPECT_TRUE(touch1.upload_bank);

  EXPECT_EQ(cache.resident(0), std::uint64_t{'A'});
  EXPECT_EQ(cache.resident(1), std::uint64_t{'A'});
  const BoardCacheStats stats = cache.stats();
  EXPECT_EQ(stats.bitstream_loads, 2u);
  EXPECT_EQ(stats.bank_uploads, 2u);
  EXPECT_EQ(stats.board_swaps, 0u);
}

TEST(BoardCache, ResidentReportsEmptyBeforeFirstTouch) {
  BoardCache cache(2);
  EXPECT_FALSE(cache.resident(0).has_value());
  cache.touch(0, 'A', 1.0);
  EXPECT_TRUE(cache.resident(0).has_value());
  EXPECT_FALSE(cache.resident(1).has_value());
}

TEST(BoardCache, ResetForgetsStateAndCounters) {
  BoardCache cache(1);
  cache.touch(0, 'A', 1.0);
  cache.reset();
  EXPECT_FALSE(cache.resident(0).has_value());
  EXPECT_EQ(cache.stats().bank_uploads, 0u);
  // Post-reset touch re-pays the bitstream: the reset models a fresh
  // process, not a warm board.
  EXPECT_TRUE(cache.touch(0, 'A', 1.0).load_bitstream);
}

TEST(BoardCache, RejectsBadIndices) {
  EXPECT_THROW(BoardCache(0), std::invalid_argument);
  BoardCache cache(2);
  EXPECT_THROW(cache.touch(2, 'A', 1.0), std::out_of_range);
  EXPECT_THROW(cache.resident(2), std::out_of_range);
}

}  // namespace
}  // namespace psc::rasc
