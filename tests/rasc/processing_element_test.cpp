#include "rasc/processing_element.hpp"

#include <gtest/gtest.h>

#include "align/ungapped.hpp"
#include "util/rng.hpp"

namespace psc::rasc {
namespace {

std::vector<std::uint8_t> encode(const std::string& letters) {
  std::vector<std::uint8_t> out;
  for (const char c : letters) out.push_back(bio::encode_protein(c));
  return out;
}

void load(ProcessingElement& pe, const std::vector<std::uint8_t>& window,
          std::uint32_t index = 0) {
  for (const std::uint8_t r : window) pe.load_residue(r, index);
}

TEST(ProcessingElement, LoadsInWindowLengthSteps) {
  const auto& m = bio::SubstitutionMatrix::blosum62();
  ProcessingElement pe(4, m);
  EXPECT_FALSE(pe.loaded());
  const auto window = encode("MKVL");
  pe.load_residue(window[0], 3);
  pe.load_residue(window[1], 3);
  EXPECT_FALSE(pe.loaded());
  pe.load_residue(window[2], 3);
  pe.load_residue(window[3], 3);
  EXPECT_TRUE(pe.loaded());
  EXPECT_EQ(pe.il0_index(), 3u);
}

TEST(ProcessingElement, OverloadThrows) {
  ProcessingElement pe(2, bio::SubstitutionMatrix::blosum62());
  load(pe, encode("MK"));
  EXPECT_THROW(pe.load_residue(0, 0), std::logic_error);
}

TEST(ProcessingElement, ComputeBeforeLoadThrows) {
  ProcessingElement pe(2, bio::SubstitutionMatrix::blosum62());
  EXPECT_THROW(pe.compute_cycle(0), std::logic_error);
  EXPECT_THROW(pe.compute_window(nullptr), std::logic_error);
}

TEST(ProcessingElement, CycleByCycleEqualsScalarKernel) {
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const auto a = encode("MKVLARND");
  const auto b = encode("MKVWARND");
  ProcessingElement pe(a.size(), m);
  load(pe, a);

  std::optional<int> result;
  for (std::size_t k = 0; k < b.size(); ++k) {
    result = pe.compute_cycle(b[k]);
    if (k + 1 < b.size()) EXPECT_FALSE(result.has_value());
  }
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, align::ungapped_window_score(a, b, m));
}

TEST(ProcessingElement, ComputeWindowEqualsCycleByCycle) {
  util::Xoshiro256 rng(12);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint8_t> a(32), b(32);
    for (auto& r : a) r = static_cast<std::uint8_t>(rng.bounded(20));
    for (auto& r : b) r = static_cast<std::uint8_t>(rng.bounded(20));
    ProcessingElement pe(32, m);
    load(pe, a);
    const int fast = pe.compute_window(b.data());
    std::optional<int> slow;
    for (const auto r : b) slow = pe.compute_cycle(r);
    ASSERT_TRUE(slow.has_value());
    EXPECT_EQ(fast, *slow);
  }
}

TEST(ProcessingElement, ShiftRegisterFeedbackAllowsReuse) {
  // The same stored IL0 window must score several IL1 windows in a row
  // (feedback loop of Figure 2).
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const auto stored = encode("MKVLARND");
  ProcessingElement pe(stored.size(), m);
  load(pe, stored);
  const auto b1 = encode("MKVLARND");
  const auto b2 = encode("WWWWWWWW");
  const auto b3 = encode("MKVLWRND");
  EXPECT_EQ(pe.compute_window(b1.data()),
            align::ungapped_window_score(stored, b1, m));
  EXPECT_EQ(pe.compute_window(b2.data()),
            align::ungapped_window_score(stored, b2, m));
  std::optional<int> r;
  for (const auto c : b3) r = pe.compute_cycle(c);
  EXPECT_EQ(*r, align::ungapped_window_score(stored, b3, m));
}

TEST(ProcessingElement, ResetAllowsNewWindow) {
  const auto& m = bio::SubstitutionMatrix::blosum62();
  ProcessingElement pe(4, m);
  load(pe, encode("MKVL"), 1);
  pe.reset();
  EXPECT_FALSE(pe.loaded());
  load(pe, encode("WWWW"), 2);
  EXPECT_EQ(pe.il0_index(), 2u);
  const auto b = encode("WWWW");
  EXPECT_EQ(pe.compute_window(b.data()),
            align::ungapped_window_score(encode("WWWW"), b, m));
}

TEST(ProcessingElement, ZeroWindowLengthThrows) {
  EXPECT_THROW(ProcessingElement(0, bio::SubstitutionMatrix::blosum62()),
               std::invalid_argument);
}

TEST(ProcessingElement, ScoreIsClampedNonNegative) {
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const auto a = encode("GGGG");
  const auto b = encode("WWWW");
  ProcessingElement pe(4, m);
  load(pe, a);
  EXPECT_EQ(pe.compute_window(b.data()), 0);
}

}  // namespace
}  // namespace psc::rasc
