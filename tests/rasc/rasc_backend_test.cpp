#include "rasc/rasc_backend.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/protein_generator.hpp"

namespace psc::rasc {
namespace {

struct Banks {
  bio::SequenceBank bank0{bio::SequenceKind::kProtein};
  bio::SequenceBank bank1{bio::SequenceKind::kProtein};

  explicit Banks(std::uint64_t seed) {
    util::Xoshiro256 rng(seed);
    // Shared homologous stretch so seeds and hits exist.
    const bio::Sequence shared = sim::generate_protein("core", 40, rng);
    auto patch = [&shared](bio::Sequence& seq, std::size_t at) {
      for (std::size_t k = 0; k < shared.size(); ++k) {
        seq.mutable_residues()[at + k] = shared[k];
      }
    };
    for (int i = 0; i < 6; ++i) {
      bio::Sequence seq = sim::generate_protein("q" + std::to_string(i), 120, rng);
      if (i == 0) patch(seq, 30);
      bank0.add(std::move(seq));
    }
    for (int i = 0; i < 10; ++i) {
      bio::Sequence seq = sim::generate_protein("s" + std::to_string(i), 150, rng);
      if (i == 3) patch(seq, 60);
      if (i == 7) patch(seq, 10);
      bank1.add(std::move(seq));
    }
  }
};

RascStep2Config make_config(std::size_t fpgas = 1) {
  RascStep2Config config;
  config.psc.num_pes = 16;
  config.psc.slot_size = 4;
  config.psc.window_length = 32;
  config.psc.threshold = 25;
  config.psc.fifo_depth = 16;
  config.shape = index::WindowShape{4, 14};
  config.num_fpgas = fpgas;
  return config;
}

TEST(RascBackend, FindsPlantedHomology) {
  const Banks banks(1);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const index::IndexTable t0(banks.bank0, model);
  const index::IndexTable t1(banks.bank1, model);
  const RascStep2Result result =
      run_rasc_step2(banks.bank0, t0, banks.bank1, t1,
                     bio::SubstitutionMatrix::blosum62(), make_config());
  ASSERT_FALSE(result.hits.empty());
  bool hits_seq3 = false;
  for (const auto& hit : result.hits) {
    if (hit.bank0.sequence == 0 && hit.bank1.sequence == 3) hits_seq3 = true;
    EXPECT_GE(hit.score, 25);
  }
  EXPECT_TRUE(hits_seq3);
  EXPECT_GT(result.modeled_seconds, 0.0);
  EXPECT_EQ(result.fpgas.size(), 1u);
}

TEST(RascBackend, TwoFpgasSameHitsAsOne) {
  const Banks banks(2);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const index::IndexTable t0(banks.bank0, model);
  const index::IndexTable t1(banks.bank1, model);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  RascStep2Result one = run_rasc_step2(banks.bank0, t0, banks.bank1, t1, m,
                                       make_config(1));
  RascStep2Result two = run_rasc_step2(banks.bank0, t0, banks.bank1, t1, m,
                                       make_config(2));
  auto key = [](const align::SeedPairHit& h) {
    return std::tuple(h.bank0.sequence, h.bank0.offset, h.bank1.sequence,
                      h.bank1.offset, h.score);
  };
  auto sort_hits = [&](std::vector<align::SeedPairHit>& hits) {
    std::sort(hits.begin(), hits.end(),
              [&](const auto& a, const auto& b) { return key(a) < key(b); });
  };
  sort_hits(one.hits);
  sort_hits(two.hits);
  EXPECT_EQ(one.hits, two.hits);
  EXPECT_EQ(two.fpgas.size(), 2u);
}

TEST(RascBackend, TwoFpgasReduceModeledTime) {
  const Banks banks(3);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const index::IndexTable t0(banks.bank0, model);
  const index::IndexTable t1(banks.bank1, model);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const RascStep2Result one =
      run_rasc_step2(banks.bank0, t0, banks.bank1, t1, m, make_config(1));
  const RascStep2Result two =
      run_rasc_step2(banks.bank0, t0, banks.bank1, t1, m, make_config(2));
  // Compute cycles split across the boards; modeled wall time must drop
  // (fixed bitstream cost keeps the ratio below 2).
  EXPECT_LT(two.modeled_seconds, one.modeled_seconds);
  const std::uint64_t cycles_one = one.stats.cycles_total();
  const std::uint64_t cycles_two = std::max(
      two.fpgas[0].stats.cycles_total(), two.fpgas[1].stats.cycles_total());
  EXPECT_LT(cycles_two, cycles_one);
}

TEST(RascBackend, ThreadedAndSequentialDriversAgree) {
  const Banks banks(4);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const index::IndexTable t0(banks.bank0, model);
  const index::IndexTable t1(banks.bank1, model);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  RascStep2Config threaded = make_config(2);
  threaded.threaded = true;
  RascStep2Config sequential = make_config(2);
  sequential.threaded = false;
  RascStep2Result a =
      run_rasc_step2(banks.bank0, t0, banks.bank1, t1, m, threaded);
  RascStep2Result b =
      run_rasc_step2(banks.bank0, t0, banks.bank1, t1, m, sequential);
  EXPECT_EQ(a.hits.size(), b.hits.size());
  EXPECT_DOUBLE_EQ(a.modeled_seconds, b.modeled_seconds);
}

TEST(RascBackend, CycleExactEngineAgreesWithBatch) {
  const Banks banks(5);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const index::IndexTable t0(banks.bank0, model);
  const index::IndexTable t1(banks.bank1, model);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  RascStep2Config batch = make_config(1);
  RascStep2Config exact = make_config(1);
  exact.cycle_exact = true;
  RascStep2Result rb = run_rasc_step2(banks.bank0, t0, banks.bank1, t1, m, batch);
  RascStep2Result re = run_rasc_step2(banks.bank0, t0, banks.bank1, t1, m, exact);
  auto as_set = [](std::vector<align::SeedPairHit> hits) {
    std::sort(hits.begin(), hits.end(), [](const auto& a, const auto& b) {
      return std::tuple(a.bank0.sequence, a.bank0.offset, a.bank1.sequence,
                        a.bank1.offset) <
             std::tuple(b.bank0.sequence, b.bank0.offset, b.bank1.sequence,
                        b.bank1.offset);
    });
    return hits;
  };
  EXPECT_EQ(as_set(rb.hits), as_set(re.hits));
}

TEST(RascBackend, ConfigValidation) {
  const Banks banks(6);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const index::IndexTable t0(banks.bank0, model);
  const index::IndexTable t1(banks.bank1, model);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  RascStep2Config bad_shape = make_config();
  bad_shape.shape = index::WindowShape{4, 10};  // length 24 != 32
  EXPECT_THROW(run_rasc_step2(banks.bank0, t0, banks.bank1, t1, m, bad_shape),
               std::invalid_argument);
  RascStep2Config bad_fpgas = make_config();
  bad_fpgas.num_fpgas = 3;
  EXPECT_THROW(run_rasc_step2(banks.bank0, t0, banks.bank1, t1, m, bad_fpgas),
               std::invalid_argument);
}

TEST(RascBackend, ReportsTransferAndOverhead) {
  const Banks banks(7);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const index::IndexTable t0(banks.bank0, model);
  const index::IndexTable t1(banks.bank1, model);
  const RascStep2Result result =
      run_rasc_step2(banks.bank0, t0, banks.bank1, t1,
                     bio::SubstitutionMatrix::blosum62(), make_config());
  const FpgaRunReport& report = result.fpgas[0];
  EXPECT_GT(report.compute_seconds, 0.0);
  EXPECT_GT(report.transfer_seconds, 0.0);
  // Bitstream load dominates the small test overheads.
  EXPECT_GE(report.overhead_seconds,
            PlatformConfig{}.bitstream_load_seconds);
  EXPECT_NEAR(report.total_seconds(),
              report.compute_seconds + report.transfer_seconds +
                  report.overhead_seconds,
              1e-12);
}

TEST(RascBackend, BoardModeChargesBankSetupOnlyOnFirstRun) {
  const Banks banks(8);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const index::IndexTable t0(banks.bank0, model);
  const index::IndexTable t1(banks.bank1, model);
  const auto& m = bio::SubstitutionMatrix::blosum62();

  BoardCache board(1);
  RascStep2Config config = make_config();
  config.board = &board;
  config.bank_image_id = 0xB0A7D;

  const RascStep2Result first =
      run_rasc_step2(banks.bank0, t0, banks.bank1, t1, m, config);
  EXPECT_EQ(first.fpgas[0].bitstream_loads, 1u);
  EXPECT_EQ(first.fpgas[0].bank_uploads, 1u);
  EXPECT_EQ(first.fpgas[0].board_swaps, 0u);
  EXPECT_GT(first.fpgas[0].upload_seconds, 0.0);

  // Same image still resident: the repeat run pays neither the bitstream
  // (process-lifetime) nor the bank DMA, and says how much it saved.
  const RascStep2Result second =
      run_rasc_step2(banks.bank0, t0, banks.bank1, t1, m, config);
  EXPECT_EQ(second.fpgas[0].bitstream_loads, 0u);
  EXPECT_EQ(second.fpgas[0].bank_uploads, 0u);
  EXPECT_EQ(second.fpgas[0].bank_uploads_skipped, 1u);
  EXPECT_DOUBLE_EQ(second.fpgas[0].upload_seconds_saved,
                   first.fpgas[0].upload_seconds);
  EXPECT_LT(second.modeled_seconds, first.modeled_seconds);
  EXPECT_EQ(first.hits.size(), second.hits.size());
}

TEST(RascBackend, BoardModeSwapsWhenImageChanges) {
  const Banks banks(9);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const index::IndexTable t0(banks.bank0, model);
  const index::IndexTable t1(banks.bank1, model);
  const auto& m = bio::SubstitutionMatrix::blosum62();

  BoardCache board(1);
  RascStep2Config config = make_config();
  config.board = &board;
  config.bank_image_id = 1;
  run_rasc_step2(banks.bank0, t0, banks.bank1, t1, m, config);

  config.bank_image_id = 2;
  const RascStep2Result swapped =
      run_rasc_step2(banks.bank0, t0, banks.bank1, t1, m, config);
  // A different image evicts the resident one: upload again, swap
  // counted, but the bitstream stays configured.
  EXPECT_EQ(swapped.fpgas[0].bitstream_loads, 0u);
  EXPECT_EQ(swapped.fpgas[0].bank_uploads, 1u);
  EXPECT_EQ(swapped.fpgas[0].board_swaps, 1u);
  EXPECT_EQ(swapped.fpgas[0].bank_uploads_skipped, 0u);
}

TEST(RascBackend, LegacyStatelessAccountingUnchangedByBoardField) {
  const Banks banks(10);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const index::IndexTable t0(banks.bank0, model);
  const index::IndexTable t1(banks.bank1, model);
  const auto& m = bio::SubstitutionMatrix::blosum62();

  // board == nullptr is the paper's single-shot structure: bitstream
  // charged every run, no residency counters, and bit-identical timing
  // across repeats.
  const RascStep2Result a =
      run_rasc_step2(banks.bank0, t0, banks.bank1, t1, m, make_config());
  const RascStep2Result b =
      run_rasc_step2(banks.bank0, t0, banks.bank1, t1, m, make_config());
  EXPECT_EQ(a.fpgas[0].bitstream_loads, 1u);
  EXPECT_EQ(b.fpgas[0].bitstream_loads, 1u);
  EXPECT_EQ(a.fpgas[0].bank_uploads, 0u);
  EXPECT_EQ(a.fpgas[0].bank_uploads_skipped, 0u);
  EXPECT_DOUBLE_EQ(a.modeled_seconds, b.modeled_seconds);
}

TEST(RascBackend, BoardModeHitsMatchLegacy) {
  const Banks banks(11);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const index::IndexTable t0(banks.bank0, model);
  const index::IndexTable t1(banks.bank1, model);
  const auto& m = bio::SubstitutionMatrix::blosum62();

  const RascStep2Result legacy =
      run_rasc_step2(banks.bank0, t0, banks.bank1, t1, m, make_config());

  BoardCache board(2);
  RascStep2Config config = make_config(2);
  config.board = &board;
  config.bank_image_id = 7;
  RascStep2Result stateful =
      run_rasc_step2(banks.bank0, t0, banks.bank1, t1, m, config);

  // Residency only re-prices transfers; the hit set cannot move.
  auto key = [](const align::SeedPairHit& h) {
    return std::tuple(h.bank0.sequence, h.bank0.offset, h.bank1.sequence,
                      h.bank1.offset, h.score);
  };
  auto sorted = [&](std::vector<align::SeedPairHit> hits) {
    std::sort(hits.begin(), hits.end(),
              [&](const auto& a, const auto& b) { return key(a) < key(b); });
    return hits;
  };
  EXPECT_EQ(sorted(legacy.hits), sorted(stateful.hits));
}

TEST(RascBackend, BoardTrackingFewerFpgasThanConfiguredThrows) {
  const Banks banks(12);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const index::IndexTable t0(banks.bank0, model);
  const index::IndexTable t1(banks.bank1, model);
  BoardCache board(1);
  RascStep2Config config = make_config(2);
  config.board = &board;
  EXPECT_THROW(run_rasc_step2(banks.bank0, t0, banks.bank1, t1,
                              bio::SubstitutionMatrix::blosum62(), config),
               std::invalid_argument);
}

}  // namespace
}  // namespace psc::rasc
