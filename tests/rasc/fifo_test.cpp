#include "rasc/fifo.hpp"

#include <gtest/gtest.h>

namespace psc::rasc {
namespace {

ResultRecord record(std::uint32_t i) { return ResultRecord{i, i * 10, 42}; }

TEST(BoundedFifo, PushPopFifoOrder) {
  BoundedFifo fifo(4);
  EXPECT_TRUE(fifo.try_push(record(1)));
  EXPECT_TRUE(fifo.try_push(record(2)));
  EXPECT_EQ(fifo.size(), 2u);
  EXPECT_EQ(fifo.try_pop()->il0_index, 1u);
  EXPECT_EQ(fifo.try_pop()->il0_index, 2u);
  EXPECT_FALSE(fifo.try_pop().has_value());
}

TEST(BoundedFifo, RejectsWhenFull) {
  BoundedFifo fifo(2);
  EXPECT_TRUE(fifo.try_push(record(1)));
  EXPECT_TRUE(fifo.try_push(record(2)));
  EXPECT_TRUE(fifo.full());
  EXPECT_FALSE(fifo.try_push(record(3)));
  EXPECT_EQ(fifo.rejected_pushes(), 1u);
  EXPECT_EQ(fifo.total_pushed(), 2u);
}

TEST(BoundedFifo, HighWatermarkTracksPeak) {
  BoundedFifo fifo(8);
  fifo.try_push(record(1));
  fifo.try_push(record(2));
  fifo.try_push(record(3));
  fifo.try_pop();
  fifo.try_pop();
  EXPECT_EQ(fifo.high_watermark(), 3u);
  EXPECT_EQ(fifo.size(), 1u);
}

TEST(BoundedFifo, ReusableAfterDrain) {
  BoundedFifo fifo(1);
  EXPECT_TRUE(fifo.try_push(record(1)));
  EXPECT_FALSE(fifo.try_push(record(2)));
  fifo.try_pop();
  EXPECT_TRUE(fifo.try_push(record(3)));
  EXPECT_EQ(fifo.try_pop()->il0_index, 3u);
}

TEST(FifoCascade, DrainsFromTail) {
  FifoCascade cascade(3, 4);
  cascade.slot(2).try_push(record(7));
  const auto out = cascade.cycle();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->il0_index, 7u);
  EXPECT_EQ(cascade.backlog(), 0u);
}

TEST(FifoCascade, ForwardsTowardTail) {
  FifoCascade cascade(3, 4);
  cascade.slot(0).try_push(record(5));
  // Hop 0 -> 1, then 1 -> 2, then pop: three cycles to surface.
  EXPECT_FALSE(cascade.cycle().has_value());
  EXPECT_FALSE(cascade.cycle().has_value());
  const auto out = cascade.cycle();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->il0_index, 5u);
}

TEST(FifoCascade, OneRecordPerCycle) {
  FifoCascade cascade(2, 8);
  for (std::uint32_t i = 0; i < 5; ++i) cascade.slot(1).try_push(record(i));
  std::size_t popped = 0;
  for (int c = 0; c < 5; ++c) {
    if (cascade.cycle().has_value()) ++popped;
  }
  EXPECT_EQ(popped, 5u);
  EXPECT_EQ(cascade.backlog(), 0u);
}

TEST(FifoCascade, PreservesOrderWithinSlot) {
  FifoCascade cascade(1, 8);
  for (std::uint32_t i = 0; i < 4; ++i) cascade.slot(0).try_push(record(i));
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto out = cascade.cycle();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->il0_index, i);
  }
}

TEST(FifoCascade, BackpressureHoldsRecords) {
  FifoCascade cascade(2, 1);  // tiny FIFOs
  cascade.slot(0).try_push(record(1));
  cascade.slot(1).try_push(record(2));
  // Cycle: tail pops record 2; record 1 forwards into the freed slot.
  const auto out = cascade.cycle();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->il0_index, 2u);
  EXPECT_EQ(cascade.slot(1).size(), 1u);
  EXPECT_EQ(cascade.slot(0).size(), 0u);
}

TEST(FifoCascade, CapacityIsSummed) {
  FifoCascade cascade(3, 16);
  EXPECT_EQ(cascade.total_capacity(), 48u);
  EXPECT_EQ(cascade.slots(), 3u);
}

TEST(FifoCascade, ZeroSlotsThrows) {
  EXPECT_THROW(FifoCascade(0, 4), std::invalid_argument);
}

}  // namespace
}  // namespace psc::rasc
