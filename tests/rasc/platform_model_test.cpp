#include "rasc/platform_model.hpp"

#include <gtest/gtest.h>

namespace psc::rasc {
namespace {

TEST(PlatformModel, TransferSecondsLatencyPlusBandwidth) {
  PlatformConfig config;
  config.dma_bandwidth = 1e9;
  config.dma_latency = 1e-5;
  config.sram_bytes = 1 << 20;
  const PlatformModel model(config);
  // Single chunk: latency + bytes/bw.
  EXPECT_NEAR(model.transfer_seconds(1000), 1e-5 + 1000 / 1e9, 1e-12);
  EXPECT_DOUBLE_EQ(model.transfer_seconds(0), 0.0);
}

TEST(PlatformModel, ZeroByteStreamIsFree) {
  // Regression: an empty stream must issue no DMA descriptor and no
  // invocation-sized chunk -- a partition whose keys all miss streams
  // nothing and costs nothing.
  const PlatformModel model;
  EXPECT_DOUBLE_EQ(model.transfer_seconds(0), 0.0);
  EXPECT_EQ(model.chunk_count(0), 0u);
}

TEST(PlatformModel, ChunkCountRoundsUpExceptAtExactMultiples) {
  PlatformConfig config;
  config.sram_bytes = 1000;
  const PlatformModel model(config);
  EXPECT_EQ(model.chunk_count(1), 1u);
  EXPECT_EQ(model.chunk_count(999), 1u);
  // Regression: a stream landing exactly on an SRAM boundary takes
  // bytes/sram chunks, not one more (the old 1 + bytes/sram formula
  // charged a phantom chunk here).
  EXPECT_EQ(model.chunk_count(1000), 1u);
  EXPECT_EQ(model.chunk_count(1001), 2u);
  EXPECT_EQ(model.chunk_count(2000), 2u);
  EXPECT_EQ(model.chunk_count(2001), 3u);
}

TEST(PlatformModel, TransferSecondsAtExactSramMultiple) {
  PlatformConfig config;
  config.dma_bandwidth = 1e9;
  config.dma_latency = 1e-4;
  config.sram_bytes = 1000;
  const PlatformModel model(config);
  // Exactly two chunks -> exactly two latencies.
  EXPECT_NEAR(model.transfer_seconds(2000), 2e-4 + 2000 / 1e9, 1e-12);
}

TEST(PlatformModel, LargeStreamsChunkBySram) {
  PlatformConfig config;
  config.dma_bandwidth = 1e9;
  config.dma_latency = 1e-4;
  config.sram_bytes = 1000;
  const PlatformModel model(config);
  // 2500 bytes -> 3 chunks -> 3 latencies.
  EXPECT_NEAR(model.transfer_seconds(2500), 3e-4 + 2500 / 1e9, 1e-12);
}

TEST(PlatformModel, AccumulatesStreams) {
  PlatformModel model;
  model.add_input_stream(1000);
  model.add_input_stream(500);
  model.add_result_stream(10);
  EXPECT_EQ(model.bytes_in(), 1500u);
  EXPECT_EQ(model.bytes_out(), 10u * model.config().result_record_bytes);
  EXPECT_GT(model.input_seconds(), 0.0);
  EXPECT_GT(model.output_seconds(), 0.0);
  EXPECT_NEAR(model.total_seconds(),
              model.input_seconds() + model.output_seconds() +
                  model.overhead_seconds(),
              1e-15);
}

TEST(PlatformModel, OverheadsAccumulate) {
  PlatformModel model;
  model.add_invocation();
  model.add_invocation();
  EXPECT_NEAR(model.overhead_seconds(),
              2 * model.config().invocation_overhead, 1e-12);
  model.add_bitstream_load();
  EXPECT_NEAR(model.overhead_seconds(),
              2 * model.config().invocation_overhead +
                  model.config().bitstream_load_seconds,
              1e-12);
}

TEST(PlatformModel, ResetClearsState) {
  PlatformModel model;
  model.add_input_stream(1000);
  model.add_bitstream_load();
  model.reset();
  EXPECT_DOUBLE_EQ(model.total_seconds(), 0.0);
  EXPECT_EQ(model.bytes_in(), 0u);
}

TEST(PlatformModel, InvalidConfigThrows) {
  PlatformConfig bad_bw;
  bad_bw.dma_bandwidth = 0.0;
  EXPECT_THROW(PlatformModel{bad_bw}, std::invalid_argument);
  PlatformConfig bad_sram;
  bad_sram.sram_bytes = 0;
  EXPECT_THROW(PlatformModel{bad_sram}, std::invalid_argument);
}

TEST(PlatformModel, MoreDataTakesLonger) {
  const PlatformModel model;
  EXPECT_LT(model.transfer_seconds(1 << 10), model.transfer_seconds(1 << 24));
}

}  // namespace
}  // namespace psc::rasc
