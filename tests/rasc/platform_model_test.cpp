#include "rasc/platform_model.hpp"

#include <gtest/gtest.h>

namespace psc::rasc {
namespace {

TEST(PlatformModel, TransferSecondsLatencyPlusBandwidth) {
  PlatformConfig config;
  config.dma_bandwidth = 1e9;
  config.dma_latency = 1e-5;
  config.sram_bytes = 1 << 20;
  const PlatformModel model(config);
  // Single chunk: latency + bytes/bw.
  EXPECT_NEAR(model.transfer_seconds(1000), 1e-5 + 1000 / 1e9, 1e-12);
  EXPECT_DOUBLE_EQ(model.transfer_seconds(0), 0.0);
}

TEST(PlatformModel, LargeStreamsChunkBySram) {
  PlatformConfig config;
  config.dma_bandwidth = 1e9;
  config.dma_latency = 1e-4;
  config.sram_bytes = 1000;
  const PlatformModel model(config);
  // 2500 bytes -> 3 chunks -> 3 latencies.
  EXPECT_NEAR(model.transfer_seconds(2500), 3e-4 + 2500 / 1e9, 1e-12);
}

TEST(PlatformModel, AccumulatesStreams) {
  PlatformModel model;
  model.add_input_stream(1000);
  model.add_input_stream(500);
  model.add_result_stream(10);
  EXPECT_EQ(model.bytes_in(), 1500u);
  EXPECT_EQ(model.bytes_out(), 10u * model.config().result_record_bytes);
  EXPECT_GT(model.input_seconds(), 0.0);
  EXPECT_GT(model.output_seconds(), 0.0);
  EXPECT_NEAR(model.total_seconds(),
              model.input_seconds() + model.output_seconds() +
                  model.overhead_seconds(),
              1e-15);
}

TEST(PlatformModel, OverheadsAccumulate) {
  PlatformModel model;
  model.add_invocation();
  model.add_invocation();
  EXPECT_NEAR(model.overhead_seconds(),
              2 * model.config().invocation_overhead, 1e-12);
  model.add_bitstream_load();
  EXPECT_NEAR(model.overhead_seconds(),
              2 * model.config().invocation_overhead +
                  model.config().bitstream_load_seconds,
              1e-12);
}

TEST(PlatformModel, ResetClearsState) {
  PlatformModel model;
  model.add_input_stream(1000);
  model.add_bitstream_load();
  model.reset();
  EXPECT_DOUBLE_EQ(model.total_seconds(), 0.0);
  EXPECT_EQ(model.bytes_in(), 0u);
}

TEST(PlatformModel, InvalidConfigThrows) {
  PlatformConfig bad_bw;
  bad_bw.dma_bandwidth = 0.0;
  EXPECT_THROW(PlatformModel{bad_bw}, std::invalid_argument);
  PlatformConfig bad_sram;
  bad_sram.sram_bytes = 0;
  EXPECT_THROW(PlatformModel{bad_sram}, std::invalid_argument);
}

TEST(PlatformModel, MoreDataTakesLonger) {
  const PlatformModel model;
  EXPECT_LT(model.transfer_seconds(1 << 10), model.transfer_seconds(1 << 24));
}

}  // namespace
}  // namespace psc::rasc
