// End-to-end tests of the network front-end over a real loopback
// socket: a psc_serve-shaped Server wrapping a SearchService, driven by
// the Client library and by raw sockets sending malformed streams. The
// load-bearing property is bit-for-bit equality between a remote search
// and the in-process pipeline over the same store.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bio/fasta.hpp"
#include "bio/translate.hpp"
#include "core/result_codec.hpp"
#include "index/index_table.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "service/search_service.hpp"
#include "sim/genome_generator.hpp"
#include "sim/mutation.hpp"
#include "sim/protein_generator.hpp"
#include "store/bank_store.hpp"
#include "store/index_store.hpp"
#include "store/shard_store.hpp"
#include "util/rng.hpp"

namespace psc::net {
namespace {

/// A saved reference bank under the server's bank root (same recipe as
/// the service tests). Removes the store files on destruction.
struct SavedBank {
  bio::SequenceBank proteins{bio::SequenceKind::kProtein};
  bio::SequenceBank genome_bank{bio::SequenceKind::kProtein};
  std::string name;    ///< prefix relative to the bank root (the wire form)
  std::string prefix;  ///< absolute store prefix

  explicit SavedBank(std::uint64_t seed, const std::string& bank_name)
      : name(bank_name) {
    util::Xoshiro256 rng(seed);
    for (int i = 0; i < 5; ++i) {
      proteins.add(sim::generate_protein("p" + std::to_string(i), 100, rng));
    }
    sim::GenomeConfig config;
    config.length = 20000;
    config.seed = seed;
    bio::Sequence genome = sim::generate_genome(config);
    sim::MutationConfig divergence;
    divergence.substitution_rate = 0.15;
    divergence.indel_rate = 0.0;
    sim::plant_gene(genome, sim::mutate_protein(proteins[0], divergence, rng),
                    3000, true, rng);
    sim::plant_gene(genome, sim::mutate_protein(proteins[2], divergence, rng),
                    9001, false, rng);
    genome_bank = bio::frames_to_bank(bio::translate_six_frames(genome));

    prefix = ::testing::TempDir() + "/" + name;
    const index::SeedModel model = index::SeedModel::subset_w4();
    const index::IndexTable table(genome_bank, model);
    store::save_bank(prefix + ".pscbank", genome_bank);
    store::save_index(prefix + ".pscidx", table, model);
  }

  ~SavedBank() {
    std::remove((prefix + ".pscbank").c_str());
    std::remove((prefix + ".pscidx").c_str());
  }

  std::string fasta() const {
    std::ostringstream out;
    for (const bio::Sequence& protein : proteins) {
      out << ">" << protein.id() << "\n" << protein.to_letters() << "\n";
    }
    return out.str();
  }
};

/// A raw loopback connection for sending byte streams the Client would
/// refuse to produce.
class RawConnection {
 public:
  explicit RawConnection(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
        0);
  }

  ~RawConnection() { close(); }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void send_bytes(std::span<const std::uint8_t> bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Reads one frame; nullopt on orderly EOF (or receive timeout).
  std::optional<Frame> read_frame() {
    for (;;) {
      if (auto frame = reader_.next()) return frame;
      std::uint8_t buffer[4096];
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n <= 0) return std::nullopt;
      reader_.feed({buffer, static_cast<std::size_t>(n)});
    }
  }

  /// True when the peer closed and no more frames are buffered.
  bool at_eof() {
    std::uint8_t byte = 0;
    const ssize_t n = ::recv(fd_, &byte, 1, 0);
    return n == 0;
  }

 private:
  int fd_ = -1;
  FrameReader reader_{1 << 20};
};

WireErrorCode expect_error_frame(const std::optional<Frame>& frame) {
  EXPECT_TRUE(frame.has_value());
  if (!frame) return WireErrorCode::kInternal;
  EXPECT_EQ(frame->type, static_cast<std::uint16_t>(MessageType::kError));
  return decode_error_payload(frame->payload).code();
}

class LoopbackTest : public ::testing::Test {
 protected:
  void start(ServerConfig config = {},
             service::ServiceConfig service_config = {}) {
    config.bank_root = ::testing::TempDir();
    service_ = std::make_unique<service::SearchService>(service_config);
    server_ = std::make_unique<Server>(*service_, config);
    server_->start();
  }

  /// A non-empty `tenant` makes the client send the kHello handshake
  /// before anything else; empty keeps the legacy hello-less exchange.
  Client connect(const std::string& tenant = "") {
    ClientConfig config;
    config.port = server_->port();
    config.timeout_seconds = 20.0;
    config.tenant = tenant;
    return Client(config);
  }

  std::unique_ptr<service::SearchService> service_;
  std::unique_ptr<Server> server_;
};

TEST_F(LoopbackTest, SearchIsBitIdenticalToInProcessPipeline) {
  const SavedBank saved(21, "net_bitident");
  start();

  service::QueryOptions options;
  options.with_traceback = true;
  Client client = connect();
  const service::QueryResult remote =
      client.search(saved.name, saved.fasta(), options);
  ASSERT_FALSE(remote.matches.empty());

  // The same pass, in process: the service's own option baseline with
  // the per-query subset overlaid, over the same store files.
  core::PipelineOptions direct_options = service::default_service_options();
  direct_options.e_value_cutoff = options.e_value_cutoff;
  direct_options.with_traceback = options.with_traceback;
  direct_options.composition_based_stats = options.composition_based_stats;
  const bio::SequenceBank subject = store::load_bank(saved.prefix + ".pscbank");
  const index::SeedModel model = index::SeedModel::subset_w4();
  const store::LoadedIndex loaded =
      store::load_index(saved.prefix + ".pscidx", model, &subject);
  const core::PipelineResult direct = core::run_pipeline_with_index(
      saved.proteins, subject, loaded.table, direct_options);

  EXPECT_EQ(core::encode_matches(remote.matches),
            core::encode_matches(direct.matches));
}

TEST_F(LoopbackTest, PingAndStatsRoundTrip) {
  const SavedBank saved(22, "net_pingstats");
  start();
  Client client = connect();
  client.ping();

  const service::ServiceStats before = client.stats();
  EXPECT_EQ(before.queries_completed, 0u);

  client.search(saved.name, saved.fasta());
  const service::ServiceStats after = client.stats();
  EXPECT_EQ(after.queries_submitted, 1u);
  EXPECT_EQ(after.queries_completed, 1u);
  EXPECT_EQ(after.batches, 1u);
  EXPECT_GT(after.total_batch_latency_seconds, 0.0);
}

TEST_F(LoopbackTest, LegacyStatsClientsGetTheirOwnVintage) {
  // Codec-v4 servers must keep answering clients built before the
  // board/scheduler rows existed. The request payload carries the
  // desired version; the vintages in play:
  //  - a v3-era client sends kStats with an EMPTY payload,
  //  - a v2-era client (hypothetically forward-ported) asks for 2,
  //  - a future client asking past v4 gets clamped down, not an error.
  start();
  RawConnection raw(server_->port());

  const auto stats_version_of =
      [&](const std::vector<std::uint8_t>& payload) -> std::uint32_t {
    raw.send_bytes(encode_frame(MessageType::kStats, payload));
    const auto frame = raw.read_frame();
    EXPECT_TRUE(frame.has_value());
    if (!frame) return 0;
    EXPECT_EQ(frame->type,
              static_cast<std::uint16_t>(MessageType::kStatsResult));
    // The reply must decode with the current library no matter the
    // vintage -- the well-formedness half of the guarantee.
    (void)service::decode_service_stats(frame->payload);
    std::uint32_t version = 0;
    std::memcpy(&version, frame->payload.data(), sizeof(version));
    return version;
  };

  EXPECT_EQ(stats_version_of({}), 3u);  // legacy default
  EXPECT_EQ(stats_version_of({2, 0, 0, 0}), 2u);
  EXPECT_EQ(stats_version_of({4, 0, 0, 0}), 4u);
  EXPECT_EQ(stats_version_of({9, 0, 0, 0}), 6u);  // clamped, no error
  EXPECT_EQ(stats_version_of({1, 0, 0, 0}), 2u);  // clamped up as well

  // A v3 reply really omits the v4 rows: the decoded struct keeps its
  // defaults there while the library's own client sees them filled.
  raw.send_bytes(encode_frame(MessageType::kStats));
  const auto v3_frame = raw.read_frame();
  ASSERT_TRUE(v3_frame.has_value());
  const service::ServiceStats v3 =
      service::decode_service_stats(v3_frame->payload);
  EXPECT_TRUE(v3.scheduler_policy.empty());
  Client client = connect();
  EXPECT_EQ(client.stats().scheduler_policy, "affinity");
}

TEST_F(LoopbackTest, RefreshManifestAdoptsAppendedGenerationInPlace) {
  // Live ingest through the wire: build a sharded store, serve it,
  // append a tail shard with a planted match, kRefreshManifest, and the
  // SAME server answers over the extended generation -- no restart.
  const SavedBank saved(27, "net_refresh_seed");
  const std::string name = "net_refresh";
  const std::string prefix = ::testing::TempDir() + "/" + name;
  const index::SeedModel model = index::SeedModel::subset_w4();
  store::write_sharded_store(prefix, saved.genome_bank, model, 800);
  start();
  Client client = connect();
  const service::QueryResult before = client.search(name, saved.fasta());
  ASSERT_FALSE(before.matches.empty());

  bio::SequenceBank delta(bio::SequenceKind::kProtein);
  util::Xoshiro256 rng(28);
  sim::MutationConfig divergence;
  divergence.substitution_rate = 0.05;
  divergence.indel_rate = 0.0;
  delta.add(sim::mutate_protein(saved.proteins[3], divergence, rng));
  const store::ShardManifest extended =
      store::append_sharded_store(prefix, delta, model);
  EXPECT_EQ(client.refresh(name), 2u);

  const service::QueryResult after = client.search(name, saved.fasta());
  EXPECT_NE(core::encode_matches(after.matches),
            core::encode_matches(before.matches));
  const service::ServiceStats stats = client.stats();
  EXPECT_EQ(stats.manifest_refreshes, 1u);
  EXPECT_EQ(stats.store_revision, 2u);

  // A plain (manifest-less) pair refreshes as revision 0: the call
  // doubles as a cheap validity probe there, not an error.
  const SavedBank plain(29, "net_refresh_plain");
  EXPECT_EQ(client.refresh(plain.name), 0u);

  // The same admission gates as Search apply.
  const auto refresh_code = [&](const std::string& bank) {
    try {
      client.refresh(bank);
    } catch (const WireError& e) {
      return e.code();
    }
    ADD_FAILURE() << "expected WireError for bank=" << bank;
    return WireErrorCode::kInternal;
  };
  EXPECT_EQ(refresh_code("net_refresh_missing"), WireErrorCode::kBankNotFound);
  EXPECT_EQ(refresh_code("../escape"), WireErrorCode::kBadRequest);

  std::remove(store::manifest_path(prefix).c_str());
  for (std::size_t s = 0; s < extended.shards.size(); ++s) {
    const std::string pair = store::shard_prefix(prefix, s);
    std::remove((pair + ".pscbank").c_str());
    std::remove((pair + ".pscidx").c_str());
  }
}

TEST_F(LoopbackTest, ConcurrentClientsCoalesceIntoOneBatch) {
  const SavedBank saved(23, "net_coalesce");
  start();

  // A deliberately heavy in-process submit keeps the single worker busy;
  // the two remote searches below arrive meanwhile and must come out of
  // one shared pass (batches < queries in the stats frame).
  bio::SequenceBank heavy(bio::SequenceKind::kProtein);
  for (int repeat = 0; repeat < 8; ++repeat) {
    for (const bio::Sequence& protein : saved.proteins) heavy.add(protein);
  }

  bool coalesced = false;
  for (int attempt = 0; attempt < 5 && !coalesced; ++attempt) {
    auto priming = service_->submit(heavy, saved.prefix);
    service::QueryResult a, b;
    std::thread first([&] {
      Client client = connect();
      a = client.search(saved.name, saved.fasta());
    });
    std::thread second([&] {
      Client client = connect();
      b = client.search(saved.name, saved.fasta());
    });
    first.join();
    second.join();
    priming.get();
    EXPECT_EQ(core::encode_matches(a.matches), core::encode_matches(b.matches));
    coalesced = a.batch_size == 2 && b.batch_size == 2;
  }
  EXPECT_TRUE(coalesced) << "two concurrent clients never shared a pass";

  Client client = connect();
  const service::ServiceStats stats = client.stats();
  EXPECT_LT(stats.batches, stats.queries_completed);
}

TEST_F(LoopbackTest, TypedErrorsForBadRequests) {
  const SavedBank saved(24, "net_errors");
  start();
  Client client = connect();

  const auto code_of = [&](const std::string& bank, const std::string& fasta) {
    try {
      client.search(bank, fasta);
      ADD_FAILURE() << "expected WireError for bank=" << bank;
      return WireErrorCode::kInternal;
    } catch (const WireError& e) {
      return e.code();
    }
  };

  EXPECT_EQ(code_of("no_such_bank", saved.fasta()),
            WireErrorCode::kBankNotFound);
  EXPECT_EQ(code_of("../escape", saved.fasta()), WireErrorCode::kBadRequest);
  EXPECT_EQ(code_of("/absolute", saved.fasta()), WireErrorCode::kBadRequest);
  EXPECT_EQ(code_of(saved.name, ""), WireErrorCode::kBadRequest);

  // The connection survives every typed error.
  client.ping();
  const service::QueryResult good = client.search(saved.name, saved.fasta());
  EXPECT_FALSE(good.matches.empty());
}

TEST_F(LoopbackTest, WrongMagicGetsErrorFrameThenClose) {
  start();
  RawConnection raw(server_->port());
  std::vector<std::uint8_t> junk(sizeof(FrameHeader), 0x5a);
  raw.send_bytes(junk);
  EXPECT_EQ(expect_error_frame(raw.read_frame()), WireErrorCode::kBadFrame);
  EXPECT_TRUE(raw.at_eof());
}

TEST_F(LoopbackTest, OversizedPayloadLengthGetsErrorFrameThenClose) {
  ServerConfig config;
  config.max_payload_bytes = 1024;
  start(config);
  RawConnection raw(server_->port());
  FrameHeader header;
  header.type = static_cast<std::uint16_t>(MessageType::kSearch);
  header.payload_bytes = std::uint64_t{1} << 40;
  std::vector<std::uint8_t> bytes(sizeof(header));
  std::memcpy(bytes.data(), &header, sizeof(header));
  raw.send_bytes(bytes);
  EXPECT_EQ(expect_error_frame(raw.read_frame()),
            WireErrorCode::kPayloadTooLarge);
  EXPECT_TRUE(raw.at_eof());
}

TEST_F(LoopbackTest, UnknownMessageTypeKeepsConnectionOpen) {
  start();
  RawConnection raw(server_->port());
  raw.send_bytes(encode_frame(static_cast<MessageType>(0x7777)));
  EXPECT_EQ(expect_error_frame(raw.read_frame()), WireErrorCode::kBadFrame);
  // Stream stayed in sync: a Ping on the same connection still answers.
  raw.send_bytes(encode_frame(MessageType::kPing));
  const auto pong = raw.read_frame();
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->type, static_cast<std::uint16_t>(MessageType::kPong));
}

TEST_F(LoopbackTest, UndecodableSearchPayloadIsBadRequestNotClose) {
  start();
  RawConnection raw(server_->port());
  const std::vector<std::uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef};
  raw.send_bytes(encode_frame(MessageType::kSearch, garbage));
  EXPECT_EQ(expect_error_frame(raw.read_frame()), WireErrorCode::kBadRequest);
  raw.send_bytes(encode_frame(MessageType::kPing));
  const auto pong = raw.read_frame();
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->type, static_cast<std::uint16_t>(MessageType::kPong));
}

TEST_F(LoopbackTest, MidStreamDisconnectLeavesServerServing) {
  const SavedBank saved(25, "net_disconnect");
  start();
  {
    RawConnection raw(server_->port());
    const std::vector<std::uint8_t> frame = encode_frame(MessageType::kPing);
    raw.send_bytes({frame.data(), frame.size() / 2});
    // Drop the connection mid-frame; the server must treat it as a clean
    // close, not an error worth crashing over.
  }
  Client client = connect();
  client.ping();
  EXPECT_FALSE(client.search(saved.name, saved.fasta()).matches.empty());
}

TEST_F(LoopbackTest, StalledMidFramePeerGetsTimeoutThenClose) {
  ServerConfig config;
  config.read_timeout_seconds = 0.15;
  start(config);
  RawConnection raw(server_->port());
  const std::vector<std::uint8_t> frame = encode_frame(MessageType::kPing);
  raw.send_bytes({frame.data(), frame.size() / 2});
  EXPECT_EQ(expect_error_frame(raw.read_frame()), WireErrorCode::kTimeout);
  EXPECT_TRUE(raw.at_eof());
}

TEST_F(LoopbackTest, PipelinedRequestsAnswerInOrderAndCapInFlight) {
  const SavedBank saved(26, "net_pipeline");
  ServerConfig config;
  config.max_in_flight = 1;
  start(config);

  SearchRequestFrame request;
  request.bank_prefix = saved.name;
  request.query_fasta = saved.fasta();
  request.options.with_traceback = true;
  const std::vector<std::uint8_t> search =
      encode_frame(MessageType::kSearch, encode_search_request(request));

  RawConnection raw(server_->port());
  std::vector<std::uint8_t> burst;
  burst.insert(burst.end(), search.begin(), search.end());
  burst.insert(burst.end(), search.begin(), search.end());
  const std::vector<std::uint8_t> ping = encode_frame(MessageType::kPing);
  burst.insert(burst.end(), ping.begin(), ping.end());
  raw.send_bytes(burst);

  // Reply order must mirror request order: result for the first search,
  // the in-flight-cap error for the second, then the pong.
  const auto first = raw.read_frame();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type,
            static_cast<std::uint16_t>(MessageType::kSearchResult));
  EXPECT_FALSE(service::decode_query_result(first->payload).matches.empty());
  EXPECT_EQ(expect_error_frame(raw.read_frame()),
            WireErrorCode::kTooManyInFlight);
  const auto pong = raw.read_frame();
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->type, static_cast<std::uint16_t>(MessageType::kPong));
}

TEST_F(LoopbackTest, ServerStopsCleanlyWithIdleConnections) {
  start();
  RawConnection raw(server_->port());
  raw.send_bytes(encode_frame(MessageType::kPing));
  ASSERT_TRUE(raw.read_frame().has_value());
  server_->stop();
  EXPECT_TRUE(raw.at_eof());
}

TEST_F(LoopbackTest, IdleServerBlocksInPollInsteadOfTicking) {
  // Regression for the fixed 10 ms poll tick: an idle server (even one
  // with a quiet connection open) used to wake 100x/s doing nothing.
  // With no deferred future and no read deadline armed, the loop must
  // block in poll, so the wakeup gauge stays flat across an idle window.
  start();
  RawConnection raw(server_->port());
  raw.send_bytes(encode_frame(MessageType::kPing));
  ASSERT_TRUE(raw.read_frame().has_value());

  const std::uint64_t before = server_->poll_wakeups();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const std::uint64_t during_idle = server_->poll_wakeups() - before;
  // The old tick would clock ~40 wakeups here; allow a few strays for
  // EINTR and scheduling noise.
  EXPECT_LE(during_idle, 3u);

  // And the loop is still alive, not deadlocked in poll.
  raw.send_bytes(encode_frame(MessageType::kPing));
  ASSERT_TRUE(raw.read_frame().has_value());
}

TEST_F(LoopbackTest, StalledWriterDeadlineIsMetWithoutSpinning) {
  // A peer stalled mid-frame arms the read deadline; the poll timeout is
  // computed from that deadline, so the timeout answer arrives at the
  // deadline (not a tick late) and the wait itself costs a handful of
  // wakeups, not deadline/10ms of them.
  ServerConfig config;
  config.read_timeout_seconds = 0.25;
  start(config);
  RawConnection raw(server_->port());
  const std::uint64_t before = server_->poll_wakeups();
  const std::vector<std::uint8_t> frame = encode_frame(MessageType::kPing);
  const auto stalled_at = std::chrono::steady_clock::now();
  raw.send_bytes({frame.data(), frame.size() / 2});

  EXPECT_EQ(expect_error_frame(raw.read_frame()), WireErrorCode::kTimeout);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    stalled_at)
          .count();
  EXPECT_TRUE(raw.at_eof());
  // Not early, and missed by at most one tick (plus scheduling slack) --
  // never by a full extra poll period.
  EXPECT_GE(elapsed, 0.24);
  EXPECT_LE(elapsed, 0.40);
  // Accept + half-frame + deadline wakeup + close bookkeeping: single
  // digits. The historical tick would have burned ~25 wakeups waiting.
  EXPECT_LE(server_->poll_wakeups() - before, 10u);
}

TEST_F(LoopbackTest, ClientsWithDifferentOptionsNeverShareAPass) {
  // Two clients querying the same bank with *different* per-query
  // options must not coalesce, even when both are queued while the
  // worker is busy -- and each reply must reflect its own options.
  const SavedBank saved(27, "net_mixed_options");
  start();

  bio::SequenceBank heavy(bio::SequenceKind::kProtein);
  for (int repeat = 0; repeat < 8; ++repeat) {
    for (const bio::Sequence& protein : saved.proteins) heavy.add(protein);
  }
  auto priming = service_->submit(heavy, saved.prefix);

  service::QueryOptions traced_options;
  traced_options.with_traceback = true;
  service::QueryOptions plain_options;
  plain_options.with_traceback = false;
  service::QueryResult traced, plain;
  std::thread first([&] {
    Client client = connect();
    traced = client.search(saved.name, saved.fasta(), traced_options);
  });
  std::thread second([&] {
    Client client = connect();
    plain = client.search(saved.name, saved.fasta(), plain_options);
  });
  first.join();
  second.join();
  priming.get();

  EXPECT_EQ(traced.batch_size, 1u);
  EXPECT_EQ(plain.batch_size, 1u);
  ASSERT_FALSE(traced.matches.empty());
  ASSERT_EQ(traced.matches.size(), plain.matches.size());
  EXPECT_FALSE(traced.matches.front().alignment.ops.empty());
  for (const core::Match& match : plain.matches) {
    EXPECT_TRUE(match.alignment.ops.empty());
  }
}

TEST_F(LoopbackTest, HelloNegotiatesTenantAndStatsVintage) {
  start();
  RawConnection raw(server_->port());

  HelloFrame hello;
  hello.tenant = "alice";
  hello.desired_stats_version = 0;  // "newest you support"
  raw.send_bytes(encode_frame(MessageType::kHello, encode_hello(hello)));
  const auto ack_frame = raw.read_frame();
  ASSERT_TRUE(ack_frame.has_value());
  ASSERT_EQ(ack_frame->type,
            static_cast<std::uint16_t>(MessageType::kHelloAck));
  const HelloAckFrame ack = decode_hello_ack(ack_frame->payload);
  EXPECT_EQ(ack.tenant, "alice");
  EXPECT_EQ(ack.stats_version, service::kServiceStatsCodecVersion);

  // After the handshake an EMPTY Stats payload answers at the session
  // vintage -- no per-frame u32 needed ever again.
  raw.send_bytes(encode_frame(MessageType::kStats));
  const auto stats_frame = raw.read_frame();
  ASSERT_TRUE(stats_frame.has_value());
  ASSERT_EQ(stats_frame->type,
            static_cast<std::uint16_t>(MessageType::kStatsResult));
  std::uint32_t version = 0;
  std::memcpy(&version, stats_frame->payload.data(), sizeof(version));
  EXPECT_EQ(version, service::kServiceStatsCodecVersion);

  // A second connection asking for an out-of-window vintage is clamped
  // in the ack, not rejected.
  RawConnection futuristic(server_->port());
  hello.desired_stats_version = 99;
  futuristic.send_bytes(
      encode_frame(MessageType::kHello, encode_hello(hello)));
  const auto clamped = futuristic.read_frame();
  ASSERT_TRUE(clamped.has_value());
  ASSERT_EQ(clamped->type,
            static_cast<std::uint16_t>(MessageType::kHelloAck));
  EXPECT_EQ(decode_hello_ack(clamped->payload).stats_version,
            service::kServiceStatsCodecVersion);
}

TEST_F(LoopbackTest, ReplayedHelloIsRejectedAndConnectionSurvives) {
  start();
  RawConnection raw(server_->port());

  HelloFrame hello;
  hello.tenant = "alice";
  raw.send_bytes(encode_frame(MessageType::kHello, encode_hello(hello)));
  const auto first = raw.read_frame();
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->type, static_cast<std::uint16_t>(MessageType::kHelloAck));

  // Work may already be billed to 'alice'; a mid-session identity swap
  // cannot re-bill it, so the replay is a typed error...
  hello.tenant = "mallory";
  raw.send_bytes(encode_frame(MessageType::kHello, encode_hello(hello)));
  EXPECT_EQ(expect_error_frame(raw.read_frame()), WireErrorCode::kBadRequest);

  // ...and the connection keeps serving under the ORIGINAL identity.
  raw.send_bytes(encode_frame(MessageType::kPing));
  const auto pong = raw.read_frame();
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->type, static_cast<std::uint16_t>(MessageType::kPong));
}

TEST_F(LoopbackTest, MalformedHelloIsBadRequestAndIdentityStaysOpen) {
  start();
  RawConnection raw(server_->port());

  // An invalid tenant name is rejected without consuming the one hello
  // slot: the client may retry with a valid identity.
  HelloFrame hello;
  hello.tenant = "not a valid name!";
  raw.send_bytes(encode_frame(MessageType::kHello, encode_hello(hello)));
  EXPECT_EQ(expect_error_frame(raw.read_frame()), WireErrorCode::kBadRequest);

  const std::vector<std::uint8_t> garbage = {0x01, 0x02};
  raw.send_bytes(encode_frame(MessageType::kHello, garbage));
  EXPECT_EQ(expect_error_frame(raw.read_frame()), WireErrorCode::kBadRequest);

  hello.tenant = "retry-ok";
  raw.send_bytes(encode_frame(MessageType::kHello, encode_hello(hello)));
  const auto ack = raw.read_frame();
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->type, static_cast<std::uint16_t>(MessageType::kHelloAck));
  EXPECT_EQ(decode_hello_ack(ack->payload).tenant, "retry-ok");
}

TEST_F(LoopbackTest, UnknownTenantIsAcceptedAndAccountedSeparately) {
  // No --tenant-config at all: an unheard-of tenant name still connects
  // (identity is accounting, not auth), its traffic lands in its own
  // stats row, and its reply bytes equal the default tenant's for the
  // same search -- fairness and accounting never touch result bytes.
  const SavedBank saved(28, "net_tenant_unknown");
  start();

  Client tenant_client = connect("zed");
  const service::QueryResult tenant_reply =
      tenant_client.search(saved.name, saved.fasta());
  Client legacy_client = connect();
  const service::QueryResult legacy_reply =
      legacy_client.search(saved.name, saved.fasta());
  EXPECT_EQ(core::encode_matches(tenant_reply.matches),
            core::encode_matches(legacy_reply.matches));

  // The tenant-aware client negotiated v5, so the rows come through.
  const service::ServiceStats stats = tenant_client.stats();
  const service::TenantStats* zed = nullptr;
  const service::TenantStats* fallback = nullptr;
  for (const service::TenantStats& row : stats.tenants) {
    if (row.name == "zed") zed = &row;
    if (row.name == service::kDefaultTenantName) fallback = &row;
  }
  ASSERT_NE(zed, nullptr) << "tenant 'zed' has no stats row";
  EXPECT_EQ(zed->admitted, 1u);
  EXPECT_EQ(zed->completed, 1u);
  EXPECT_EQ(zed->rejected, 0u);
  EXPECT_GT(zed->query_residues, 0u);
  // The hello-less client was billed to the default tenant.
  ASSERT_NE(fallback, nullptr) << "default tenant has no stats row";
  EXPECT_EQ(fallback->admitted, 1u);
}

TEST_F(LoopbackTest, OverQuotaSearchIsTypedErrorAndConnectionSurvives) {
  const SavedBank saved(29, "net_tenant_quota");
  ServerConfig server_config;
  service::ServiceConfig service_config;
  // One query admitted per second, bucket holds one token: of two
  // back-to-back pipelined searches the second MUST be rejected.
  service_config.tenants.default_policy.max_qps = 1.0;
  start(server_config, service_config);

  SearchRequestFrame request;
  request.bank_prefix = saved.name;
  request.query_fasta = saved.fasta();
  const std::vector<std::uint8_t> search =
      encode_frame(MessageType::kSearch, encode_search_request(request));

  RawConnection raw(server_->port());
  std::vector<std::uint8_t> burst;
  burst.insert(burst.end(), search.begin(), search.end());
  burst.insert(burst.end(), search.begin(), search.end());
  raw.send_bytes(burst);

  const auto first = raw.read_frame();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type,
            static_cast<std::uint16_t>(MessageType::kSearchResult));
  // Typed rejection, not a hang and not a generic failure...
  EXPECT_EQ(expect_error_frame(raw.read_frame()),
            WireErrorCode::kQuotaExceeded);
  // ...and the connection is still fully usable afterwards.
  raw.send_bytes(encode_frame(MessageType::kPing));
  const auto pong = raw.read_frame();
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->type, static_cast<std::uint16_t>(MessageType::kPong));
}

/// A scripted fake server: accepts exactly one connection on an
/// ephemeral loopback port and hands the connected fd to `script`,
/// which plays whatever bytes the test needs before the fd is closed.
/// For driving the *client's* failure paths with streams a real Server
/// would never produce.
class ScriptedServer {
 public:
  explicit ScriptedServer(std::function<void(int fd)> script) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 1), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len),
              0);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this, script = std::move(script)] {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      script(fd);
      ::close(fd);
    });
  }

  ~ScriptedServer() {
    thread_.join();
    ::close(listen_fd_);
  }

  std::uint16_t port() const { return port_; }

  /// Reads and discards one request frame so the scripted reply is not
  /// racing the client's send.
  static void drain_one_frame(int fd) {
    FrameReader reader(std::uint64_t{1} << 30);
    std::uint8_t buffer[64 * 1024];
    while (!reader.next()) {
      const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n <= 0) return;
      reader.feed({buffer, static_cast<std::size_t>(n)});
    }
  }

  static void send_all(int fd, const std::vector<std::uint8_t>& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return;
      sent += static_cast<std::size_t>(n);
    }
  }

 private:
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

template <typename Call>
WireErrorCode client_error_of(std::uint16_t port, Call call) {
  ClientConfig config;
  config.port = port;
  config.timeout_seconds = 5.0;  // the never-hang backstop
  try {
    Client client(config);
    call(client);
  } catch (const WireError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected a WireError";
  return WireErrorCode::kInternal;
}

TEST(ClientFailureTest, ConnectRefusedIsTypedUnreachable) {
  // Grab an ephemeral port and release it again: connecting to it now
  // gets ECONNREFUSED (nobody re-binds it that fast).
  int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(
      ::bind(probe, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t dead_port = ntohs(addr.sin_port);
  ::close(probe);

  EXPECT_EQ(client_error_of(dead_port, [](Client& client) { client.ping(); }),
            WireErrorCode::kUnreachable);
}

TEST(ClientFailureTest, ServerClosingMidReplyIsTypedBadFrame) {
  ScriptedServer server([](int fd) {
    ScriptedServer::drain_one_frame(fd);
    // Half a Pong header, then close: the client sees EOF mid-frame.
    const std::vector<std::uint8_t> pong = encode_frame(MessageType::kPong);
    ScriptedServer::send_all(fd, {pong.begin(),
                                  pong.begin() + sizeof(FrameHeader) / 2});
  });
  EXPECT_EQ(
      client_error_of(server.port(), [](Client& client) { client.ping(); }),
      WireErrorCode::kBadFrame);
}

TEST(ClientFailureTest, TruncatedSearchResultFrameIsTypedBadFrame) {
  ScriptedServer server([](int fd) {
    ScriptedServer::drain_one_frame(fd);
    // A structurally valid frame of the right type whose payload stops
    // short of what the result codec needs: a decode failure, not EOF.
    const std::vector<std::uint8_t> truncated_payload = {0x01, 0x00};
    ScriptedServer::send_all(
        fd, encode_frame(MessageType::kSearchResult, truncated_payload));
  });
  EXPECT_EQ(client_error_of(server.port(),
                            [](Client& client) {
                              client.search("bank", ">q\nMKV\n");
                            }),
            WireErrorCode::kBadFrame);
}

TEST(ClientFailureTest, MalformedErrorPayloadIsTypedBadFrame) {
  ScriptedServer server([](int fd) {
    ScriptedServer::drain_one_frame(fd);
    // An Error frame whose own payload does not decode: still typed.
    const std::vector<std::uint8_t> garbage = {0xff};
    ScriptedServer::send_all(fd, encode_frame(MessageType::kError, garbage));
  });
  EXPECT_EQ(
      client_error_of(server.port(), [](Client& client) { client.ping(); }),
      WireErrorCode::kBadFrame);
}

TEST(ClientFailureTest, SilentServerHitsClientTimeoutNotAHang) {
  ScriptedServer server([](int fd) {
    // Read the request and say nothing until the client gives up.
    ScriptedServer::drain_one_frame(fd);
    ScriptedServer::drain_one_frame(fd);  // blocks until client closes
  });
  ClientConfig config;
  config.port = server.port();
  config.timeout_seconds = 0.2;
  Client client(config);
  try {
    client.ping();
    ADD_FAILURE() << "expected a WireError";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::kTimeout);
  }
}

}  // namespace
}  // namespace psc::net
