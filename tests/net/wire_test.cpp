#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <vector>

namespace psc::net {
namespace {

std::vector<std::uint8_t> header_bytes(std::uint32_t magic,
                                       std::uint16_t version,
                                       std::uint16_t type,
                                       std::uint64_t payload_bytes) {
  FrameHeader header;
  header.magic = magic;
  header.version = version;
  header.type = type;
  header.payload_bytes = payload_bytes;
  std::vector<std::uint8_t> bytes(sizeof(header));
  std::memcpy(bytes.data(), &header, sizeof(header));
  return bytes;
}

TEST(Wire, FrameRoundTripsThroughReader) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> bytes =
      encode_frame(MessageType::kSearch, payload);
  EXPECT_EQ(bytes.size(), sizeof(FrameHeader) + payload.size());

  FrameReader reader(1 << 20);
  reader.feed(bytes);
  const auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, static_cast<std::uint16_t>(MessageType::kSearch));
  EXPECT_EQ(frame->payload, payload);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.mid_frame());
}

TEST(Wire, ReaderAssemblesByteAtATime) {
  const std::vector<std::uint8_t> payload(37, 0xab);
  std::vector<std::uint8_t> stream =
      encode_frame(MessageType::kSearchResult, payload);
  const std::vector<std::uint8_t> pong = encode_frame(MessageType::kPong);
  stream.insert(stream.end(), pong.begin(), pong.end());

  FrameReader reader(1 << 20);
  std::vector<Frame> frames;
  const std::size_t boundary = sizeof(FrameHeader) + payload.size();
  for (std::size_t i = 0; i < stream.size(); ++i) {
    reader.feed({stream.data() + i, 1});
    while (auto frame = reader.next()) frames.push_back(std::move(*frame));
    // Mid-frame exactly when bytes are buffered but incomplete -- false
    // at the boundary between the two frames.
    const std::size_t fed = i + 1;
    EXPECT_EQ(reader.mid_frame(), fed != boundary && fed != stream.size())
        << "fed=" << fed;
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].payload, payload);
  EXPECT_EQ(frames[1].type, static_cast<std::uint16_t>(MessageType::kPong));
  EXPECT_TRUE(frames[1].payload.empty());
}

TEST(Wire, TruncatedHeaderIsJustIncomplete) {
  // 15 of the 16 header bytes: not an error, only an unfinished frame --
  // the server's read timeout is what handles a peer that stops here.
  const std::vector<std::uint8_t> bytes = encode_frame(MessageType::kPing);
  FrameReader reader(1 << 20);
  reader.feed({bytes.data(), sizeof(FrameHeader) - 1});
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.mid_frame());
}

TEST(Wire, WrongMagicThrows) {
  FrameReader reader(1 << 20);
  reader.feed(header_bytes(0x12345678u, kWireVersion, 1, 0));
  try {
    reader.next();
    FAIL() << "expected WireError";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::kBadFrame);
  }
}

TEST(Wire, WrongVersionThrows) {
  FrameReader reader(1 << 20);
  reader.feed(header_bytes(kWireMagic, kWireVersion + 1, 1, 0));
  try {
    reader.next();
    FAIL() << "expected WireError";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::kBadFrame);
  }
}

TEST(Wire, OversizedPayloadLengthThrowsBeforeBuffering) {
  FrameReader reader(/*max_payload_bytes=*/1024);
  // Declares 2^60 bytes; must throw on the header alone, well before any
  // payload arrives or is allocated.
  reader.feed(header_bytes(kWireMagic, kWireVersion, 3,
                           std::uint64_t{1} << 60));
  try {
    reader.next();
    FAIL() << "expected WireError";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), WireErrorCode::kPayloadTooLarge);
  }
}

TEST(Wire, PayloadAtTheLimitIsAccepted) {
  FrameReader reader(/*max_payload_bytes=*/8);
  const std::vector<std::uint8_t> payload(8, 0x11);
  reader.feed(encode_frame(MessageType::kSearch, payload));
  const auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->payload.size(), 8u);
}

TEST(Wire, ErrorFrameRoundTrips) {
  const std::vector<std::uint8_t> bytes =
      encode_error_frame(WireErrorCode::kBankNotFound, "no bank 'x'");
  FrameReader reader(1 << 20);
  reader.feed(bytes);
  const auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->type, static_cast<std::uint16_t>(MessageType::kError));
  const WireError error = decode_error_payload(frame->payload);
  EXPECT_EQ(error.code(), WireErrorCode::kBankNotFound);
  EXPECT_STREQ(error.what(), "no bank 'x'");
  EXPECT_EQ(wire_error_code_name(error.code()), "bank-not-found");
}

TEST(Wire, MalformedErrorPayloadThrowsCodecError) {
  std::vector<std::uint8_t> good =
      encode_error_frame(WireErrorCode::kInternal, "boom");
  const std::span<const std::uint8_t> payload(
      good.data() + sizeof(FrameHeader), good.size() - sizeof(FrameHeader));

  // Truncations.
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_THROW(decode_error_payload(payload.subspan(0, cut)),
                 core::CodecError);
  }
  // Out-of-range code.
  std::vector<std::uint8_t> bad(payload.begin(), payload.end());
  bad[0] = 0xee;
  EXPECT_THROW(decode_error_payload(bad), core::CodecError);
  // Trailing bytes.
  std::vector<std::uint8_t> padded(payload.begin(), payload.end());
  padded.push_back(0);
  EXPECT_THROW(decode_error_payload(padded), core::CodecError);
}

TEST(Wire, SearchRequestRoundTrips) {
  SearchRequestFrame request;
  request.bank_prefix = "store/nr";
  request.query_fasta = ">q1\nMKV\n>q2\nACDEFGH\n";
  request.options.e_value_cutoff = 0.75;
  request.options.with_traceback = true;
  request.options.composition_based_stats = true;

  const std::vector<std::uint8_t> bytes = encode_search_request(request);
  const SearchRequestFrame decoded = decode_search_request(bytes);
  EXPECT_EQ(decoded.bank_prefix, request.bank_prefix);
  EXPECT_EQ(decoded.query_fasta, request.query_fasta);
  EXPECT_DOUBLE_EQ(decoded.options.e_value_cutoff, 0.75);
  EXPECT_TRUE(decoded.options.with_traceback);
  EXPECT_TRUE(decoded.options.composition_based_stats);
  EXPECT_EQ(decoded.options.fingerprint(), request.options.fingerprint());
}

TEST(Wire, MalformedSearchRequestThrowsCodecError) {
  SearchRequestFrame request;
  request.bank_prefix = "bank";
  request.query_fasta = ">q\nMKV\n";
  const std::vector<std::uint8_t> bytes = encode_search_request(request);

  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_THROW(decode_search_request(prefix), core::CodecError)
        << "cut=" << cut;
  }
  std::vector<std::uint8_t> skewed = bytes;
  skewed[0] = 0x7f;  // version
  EXPECT_THROW(decode_search_request(skewed), core::CodecError);
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_THROW(decode_search_request(padded), core::CodecError);
}

TEST(Wire, QuotaErrorCodesRoundTripWithNames) {
  // The tenancy codes must survive the full encode/decode path: an
  // older decode bound would throw CodecError and the client would
  // report kBadFrame instead of the actual rejection.
  const std::pair<WireErrorCode, const char*> cases[] = {
      {WireErrorCode::kQuotaExceeded, "quota-exceeded"},
      {WireErrorCode::kAdmissionRejected, "admission-rejected"},
  };
  for (const auto& [code, name] : cases) {
    const std::vector<std::uint8_t> bytes =
        encode_error_frame(code, "over the line");
    FrameReader reader(1 << 20);
    reader.feed(bytes);
    const auto frame = reader.next();
    ASSERT_TRUE(frame.has_value());
    const WireError error = decode_error_payload(frame->payload);
    EXPECT_EQ(error.code(), code);
    EXPECT_EQ(wire_error_code_name(error.code()), name);
  }
}

TEST(Wire, HelloAndAckRoundTrip) {
  HelloFrame hello;
  hello.tenant = "team-alpha.batch_7";
  hello.desired_stats_version = 4;
  const HelloFrame decoded = decode_hello(encode_hello(hello));
  EXPECT_EQ(decoded.tenant, hello.tenant);
  EXPECT_EQ(decoded.desired_stats_version, 4u);

  // The empty tenant travels fine too -- it is the "bill me as default"
  // form, normalized server-side, never a codec error.
  HelloFrame anonymous;
  EXPECT_EQ(decode_hello(encode_hello(anonymous)).tenant, "");

  HelloAckFrame ack;
  ack.tenant = "team-alpha.batch_7";
  ack.stats_version = 5;
  const HelloAckFrame ack_decoded = decode_hello_ack(encode_hello_ack(ack));
  EXPECT_EQ(ack_decoded.tenant, ack.tenant);
  EXPECT_EQ(ack_decoded.stats_version, 5u);
}

TEST(Wire, MalformedHelloThrowsCodecError) {
  HelloFrame hello;
  hello.tenant = "alice";
  const std::vector<std::uint8_t> bytes = encode_hello(hello);

  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_THROW(decode_hello(prefix), core::CodecError) << "cut=" << cut;
    EXPECT_THROW(decode_hello_ack(prefix), core::CodecError) << "cut=" << cut;
  }
  std::vector<std::uint8_t> skewed = bytes;
  skewed[0] = 0x7f;  // hello codec version
  EXPECT_THROW(decode_hello(skewed), core::CodecError);
  EXPECT_THROW(decode_hello_ack(skewed), core::CodecError);
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_THROW(decode_hello(padded), core::CodecError);
}

TEST(Wire, RefreshFramesRoundTrip) {
  RefreshManifestFrame request;
  request.bank_prefix = "banks/nr_2026";
  const RefreshManifestFrame decoded =
      decode_refresh_manifest(encode_refresh_manifest(request));
  EXPECT_EQ(decoded.bank_prefix, request.bank_prefix);

  RefreshAckFrame ack;
  ack.revision = 0x0123456789abcdefull;
  const RefreshAckFrame ack_decoded =
      decode_refresh_ack(encode_refresh_ack(ack));
  EXPECT_EQ(ack_decoded.revision, ack.revision);
}

TEST(Wire, MalformedRefreshFramesThrowCodecError) {
  RefreshManifestFrame request;
  request.bank_prefix = "nr";
  const std::vector<std::uint8_t> bytes = encode_refresh_manifest(request);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_THROW(decode_refresh_manifest(prefix), core::CodecError)
        << "cut=" << cut;
  }
  std::vector<std::uint8_t> skewed = bytes;
  skewed[0] = 0x7f;  // refresh codec version
  EXPECT_THROW(decode_refresh_manifest(skewed), core::CodecError);
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_THROW(decode_refresh_manifest(padded), core::CodecError);

  RefreshAckFrame ack;
  ack.revision = 2;
  const std::vector<std::uint8_t> ack_bytes = encode_refresh_ack(ack);
  for (std::size_t cut = 0; cut < ack_bytes.size(); ++cut) {
    EXPECT_THROW(
        decode_refresh_ack(std::span(ack_bytes.data(), cut)),
        core::CodecError)
        << "cut=" << cut;
  }
}

TEST(Wire, RevisionMismatchCodeRoundTripsWithName) {
  // The live-ingest rejection must survive the wire like the quota
  // codes do; an older decode bound would turn it into kBadFrame.
  const std::vector<std::uint8_t> bytes =
      encode_error_frame(WireErrorCode::kRevisionMismatch, "not an extension");
  FrameReader reader(1 << 20);
  reader.feed(bytes);
  const auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  const WireError error = decode_error_payload(frame->payload);
  EXPECT_EQ(error.code(), WireErrorCode::kRevisionMismatch);
  EXPECT_EQ(wire_error_code_name(error.code()), "revision-mismatch");
}

TEST(Wire, GarbageAfterValidFrameThrowsOnTheGarbage) {
  FrameReader reader(1 << 20);
  std::vector<std::uint8_t> stream = encode_frame(MessageType::kPing);
  const std::vector<std::uint8_t> junk(sizeof(FrameHeader), 0x5a);
  stream.insert(stream.end(), junk.begin(), junk.end());
  reader.feed(stream);
  EXPECT_TRUE(reader.next().has_value());  // the Ping parses fine
  EXPECT_THROW(reader.next(), WireError);  // the junk does not
}

}  // namespace
}  // namespace psc::net
