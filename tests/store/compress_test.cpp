// Format v3 compression: the LZSS codec itself, the compressed
// bank/index archives it backs, and the crafted-file suite that proves
// every malformed compressed section is a typed kCorrupt/kChecksum --
// never an oversized allocation or an out-of-bounds read (run under
// ASan in CI).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "sim/protein_generator.hpp"
#include "store/bank_store.hpp"
#include "store/compress.hpp"
#include "store/format.hpp"
#include "store/index_store.hpp"
#include "store/mmap_file.hpp"
#include "util/rng.hpp"

namespace psc::store {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

bio::SequenceBank make_bank(std::uint64_t seed, int count, int length) {
  bio::SequenceBank bank(bio::SequenceKind::kProtein);
  util::Xoshiro256 rng(seed);
  for (int i = 0; i < count; ++i) {
    bank.add(sim::generate_protein("s" + std::to_string(i), length, rng));
  }
  return bank;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

StoreErrorCode code_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const StoreError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected a StoreError";
  return StoreErrorCode::kIo;
}

std::vector<std::uint8_t> pattern_bytes(std::size_t size) {
  // Repetitive: every LZSS implementation worth the name shrinks this.
  const std::string motif = "SEEDMODELSEEDMODELRASC100";
  std::vector<std::uint8_t> out;
  out.reserve(size);
  while (out.size() < size) {
    out.push_back(static_cast<std::uint8_t>(motif[out.size() % motif.size()]));
  }
  return out;
}

std::vector<std::uint8_t> random_bytes(std::size_t size, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> out(size);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

TEST(Lzss, RoundTripsRepetitiveRandomAndEmptyInputs) {
  for (const auto& raw :
       {pattern_bytes(10000), random_bytes(4096, 77),
        std::vector<std::uint8_t>{}, std::vector<std::uint8_t>{42},
        random_bytes(3, 5)}) {
    const std::vector<std::uint8_t> stream = lzss_compress(raw);
    const std::vector<std::uint8_t> back =
        lzss_decompress(stream, raw.size(), "test");
    ASSERT_EQ(back, raw);
  }
  // The repetitive input really compresses (the point of the mode).
  EXPECT_LT(lzss_compress(pattern_bytes(10000)).size(), 2000u);
}

TEST(Lzss, RejectsStructurallyImpossibleRawSize) {
  // A raw size no stream of this length could produce is refused before
  // any allocation of that size -- the hostile-header allocation guard.
  const std::vector<std::uint8_t> stream = lzss_compress(pattern_bytes(100));
  EXPECT_EQ(code_of([&] {
              lzss_decompress(stream, stream.size() * kMaxExpansionRatio + 1,
                              "test");
            }),
            StoreErrorCode::kCorrupt);
  // An empty stream can only produce zero bytes.
  EXPECT_EQ(code_of([&] { lzss_decompress({}, 1, "test"); }),
            StoreErrorCode::kCorrupt);
}

TEST(Lzss, RejectsTruncationTrailingBytesAndWrongRawSize) {
  const std::vector<std::uint8_t> raw = pattern_bytes(5000);
  std::vector<std::uint8_t> stream = lzss_compress(raw);

  std::vector<std::uint8_t> truncated(stream.begin(), stream.end() - 1);
  EXPECT_EQ(code_of([&] { lzss_decompress(truncated, raw.size(), "test"); }),
            StoreErrorCode::kCorrupt);

  std::vector<std::uint8_t> padded = stream;
  padded.push_back(0);
  EXPECT_EQ(code_of([&] { lzss_decompress(padded, raw.size(), "test"); }),
            StoreErrorCode::kCorrupt);

  // Under-declared raw size: the stream produces more than promised.
  EXPECT_EQ(code_of([&] { lzss_decompress(stream, raw.size() - 1, "test"); }),
            StoreErrorCode::kCorrupt);
}

TEST(CompressedBank, PairsWithUncompressedSaveByteForByte) {
  // The same bank, saved both ways: identical checksum (it digests the
  // *uncompressed* payload), identical sequences on load, and the
  // compressed file is the smaller one for compressible content.
  bio::SequenceBank bank(bio::SequenceKind::kProtein);
  const bio::SequenceBank seedbank = make_bank(40, 4, 80);
  for (int repeat = 0; repeat < 6; ++repeat) {
    for (const bio::Sequence& protein : seedbank) {
      bank.add(bio::Sequence(protein.id() + "_" + std::to_string(repeat),
                             bank.kind(), protein.residues()));
    }
  }
  const std::string plain = temp_path("cmp_plain.pscbank");
  const std::string packed = temp_path("cmp_packed.pscbank");
  const std::uint64_t plain_sum = save_bank(plain, bank);
  const std::uint64_t packed_sum = save_bank(packed, bank, true);
  EXPECT_EQ(plain_sum, packed_sum);

  const BankFileInfo plain_info = inspect_bank(plain);
  const BankFileInfo packed_info = inspect_bank(packed);
  EXPECT_EQ(plain_info.compression, kCompressionNone);
  EXPECT_EQ(packed_info.compression, kCompressionLzss);
  EXPECT_EQ(packed_info.version, kFormatVersion);
  EXPECT_EQ(packed_info.sequence_count, bank.size());
  EXPECT_EQ(packed_info.payload_checksum, plain_sum);
  EXPECT_LT(slurp(packed).size(), slurp(plain).size());

  const bio::SequenceBank loaded = load_bank(packed);
  ASSERT_EQ(loaded.size(), bank.size());
  for (std::size_t i = 0; i < bank.size(); ++i) {
    EXPECT_EQ(loaded[i].id(), bank[i].id());
    EXPECT_EQ(loaded[i].residues(), bank[i].residues());
  }
  std::remove(plain.c_str());
  std::remove(packed.c_str());
}

TEST(CompressedIndex, LoadsIdenticalTableAndKeepsPairingCheck) {
  const bio::SequenceBank bank = make_bank(41, 6, 60);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const index::IndexTable fresh(bank, model);
  const std::string bank_path = temp_path("cmp_pair.pscbank");
  const std::string index_path = temp_path("cmp_pair.pscidx");
  const std::uint64_t checksum = save_bank(bank_path, bank, true);
  save_index(index_path, fresh, model, checksum, true);

  EXPECT_EQ(inspect_index(index_path).compression, kCompressionLzss);
  const LoadedIndex loaded =
      load_index(index_path, model, &bank, true, checksum);
  EXPECT_EQ(loaded.bank_checksum, checksum);
  ASSERT_EQ(loaded.table.total_occurrences(), fresh.total_occurrences());
  const auto fresh_occ = fresh.all_occurrences();
  const auto loaded_occ = loaded.table.all_occurrences();
  for (std::size_t i = 0; i < fresh_occ.size(); ++i) {
    ASSERT_EQ(loaded_occ[i], fresh_occ[i]);
  }
  // The bank/index pairing check survives compression.
  EXPECT_EQ(code_of([&] {
              load_index(index_path, model, &bank, true, checksum ^ 0x5a);
            }),
            StoreErrorCode::kBankMismatch);
  std::remove(bank_path.c_str());
  std::remove(index_path.c_str());
}

TEST(CompressedBank, CraftedDamageIsTypedNotAnAllocation) {
  // The satellite-4 suite: every way a hostile compressed file can lie
  // comes back as a typed error, with the structurally-impossible raw
  // size rejected before any oversized allocation happens.
  const bio::SequenceBank bank = make_bank(42, 8, 70);
  const std::string path = temp_path("cmp_crafted.pscbank");
  save_bank(path, bank, true);
  const std::vector<char> good = slurp(path);
  ASSERT_GT(good.size(), sizeof(FileHeader) + 8);

  // Truncated compressed stream.
  spit(path, {good.begin(), good.end() - 4});
  EXPECT_EQ(code_of([&] { load_bank(path); }), StoreErrorCode::kCorrupt);

  // Bit-flipped payload byte: either the token stream goes structurally
  // wrong (kCorrupt) or it decodes to different bytes and the checksum
  // -- still over the uncompressed payload -- catches it (kChecksum).
  std::vector<char> flipped = good;
  flipped[sizeof(FileHeader) + (good.size() - sizeof(FileHeader)) / 2] ^= 0x20;
  spit(path, flipped);
  const StoreErrorCode flip_code = code_of([&] { load_bank(path); });
  EXPECT_TRUE(flip_code == StoreErrorCode::kCorrupt ||
              flip_code == StoreErrorCode::kChecksum);

  // A lying uncompressed size far past what the stream could expand to:
  // must be refused up front (no 2^60-byte allocation), as kCorrupt.
  std::vector<char> lying = good;
  const std::uint64_t absurd = std::uint64_t{1} << 60;
  std::memcpy(lying.data() + offsetof(FileHeader, payload_bytes), &absurd,
              sizeof(absurd));
  spit(path, lying);
  EXPECT_EQ(code_of([&] { load_bank(path); }), StoreErrorCode::kCorrupt);

  // Unknown compression tag.
  std::vector<char> bad_tag = good;
  const std::uint32_t tag2 = 2;
  std::memcpy(bad_tag.data() + offsetof(FileHeader, reserved), &tag2,
              sizeof(tag2));
  spit(path, bad_tag);
  EXPECT_EQ(code_of([&] { load_bank(path); }), StoreErrorCode::kCorrupt);

  // A compression tag on a pre-v3 header: v1/v2 writers always wrote 0
  // there, so this combination is structural damage, not a feature.
  std::vector<char> v2_tagged = good;
  v2_tagged[8] = 2;  // FileHeader::version (little-endian u32)
  spit(path, v2_tagged);
  EXPECT_EQ(code_of([&] { load_bank(path); }), StoreErrorCode::kCorrupt);

  spit(path, good);
  EXPECT_EQ(load_bank(path).size(), bank.size());
  std::remove(path.c_str());
}

TEST(MmapFileTest, ZeroLengthFileIsAnEmptyViewNotAnErrno) {
  // A zero-length file is legal on disk (an empty tail delta mid-write);
  // mmap(len=0) is EINVAL on Linux, so open() must special-case it into
  // an empty view, and the store readers then reject it as the typed
  // kCorrupt "truncated before header" -- not a raw errno surprise.
  const std::string path = temp_path("zero_len.pscbank");
  spit(path, {});
  const MmapFile file = MmapFile::open(path);
  EXPECT_EQ(file.size(), 0u);
  EXPECT_TRUE(file.bytes().empty());
  EXPECT_EQ(code_of([&] { load_bank(path); }), StoreErrorCode::kCorrupt);
  EXPECT_EQ(code_of([&] { inspect_bank(path); }), StoreErrorCode::kCorrupt);
  std::remove(path.c_str());
}

TEST(DecompressStoreImage, TagZeroIsTheUntouchedMmapFastPath) {
  const bio::SequenceBank bank = make_bank(43, 3, 40);
  const std::string path = temp_path("cmp_fastpath.pscbank");
  save_bank(path, bank);
  MmapFile file = MmapFile::open(path);
  const std::uint8_t* mapped = file.data();
  const std::size_t size = file.size();
  const MmapFile same = decompress_store_image(std::move(file), path);
  // Same mapping, same bytes: the uncompressed path stays zero-copy.
  EXPECT_EQ(same.data(), mapped);
  EXPECT_EQ(same.size(), size);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace psc::store
