#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <limits>
#include <vector>

#include "bio/translate.hpp"
#include "core/pipeline.hpp"
#include "sim/genome_generator.hpp"
#include "sim/mutation.hpp"
#include "sim/protein_generator.hpp"
#include "store/bank_store.hpp"
#include "store/format.hpp"
#include "store/index_store.hpp"
#include "util/rng.hpp"

namespace psc::store {
namespace {

struct Workload {
  bio::SequenceBank proteins{bio::SequenceKind::kProtein};
  bio::SequenceBank genome_bank{bio::SequenceKind::kProtein};

  explicit Workload(std::uint64_t seed) {
    util::Xoshiro256 rng(seed);
    for (int i = 0; i < 5; ++i) {
      proteins.add(sim::generate_protein("p" + std::to_string(i), 100, rng));
    }
    sim::GenomeConfig config;
    config.length = 20000;
    config.seed = seed;
    bio::Sequence genome = sim::generate_genome(config);
    sim::MutationConfig divergence;
    divergence.substitution_rate = 0.15;
    divergence.indel_rate = 0.0;
    sim::plant_gene(genome, sim::mutate_protein(proteins[0], divergence, rng),
                    3000, true, rng);
    sim::plant_gene(genome, sim::mutate_protein(proteins[2], divergence, rng),
                    9001, false, rng);
    genome_bank = bio::frames_to_bank(bio::translate_six_frames(genome));
  }
};

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void poke_u64(std::vector<char>& bytes, std::size_t offset,
              std::uint64_t value) {
  std::memcpy(bytes.data() + offset, &value, sizeof(value));
}

/// Recomputes the payload checksum after tampering, as an attacker
/// would: the FNV digest is an integrity check, not an authenticity one,
/// so it must never be what stands between a crafted file and UB.
void reseal(std::vector<char>& bytes) {
  const std::uint64_t digest = fnv1a64(bytes.data() + sizeof(FileHeader),
                                       bytes.size() - sizeof(FileHeader));
  poke_u64(bytes, offsetof(FileHeader, payload_checksum), digest);
}

StoreErrorCode code_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const StoreError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected a StoreError";
  return StoreErrorCode::kIo;
}

TEST(BankStore, RoundTripPreservesEverySequence) {
  const Workload workload(1);
  const std::string path = temp_path("bank_roundtrip.pscbank");
  save_bank(path, workload.genome_bank);
  const bio::SequenceBank loaded = load_bank(path);
  ASSERT_EQ(loaded.size(), workload.genome_bank.size());
  EXPECT_EQ(loaded.kind(), workload.genome_bank.kind());
  EXPECT_EQ(loaded.total_residues(), workload.genome_bank.total_residues());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].id(), workload.genome_bank[i].id());
    EXPECT_EQ(loaded[i].residues(), workload.genome_bank[i].residues());
  }
  std::remove(path.c_str());
}

TEST(BankStore, RoundTripDnaBank) {
  bio::SequenceBank bank(bio::SequenceKind::kDna);
  bank.add(bio::Sequence::dna_from_letters("chr", "ACGTNACGT"));
  const std::string path = temp_path("bank_dna.pscbank");
  save_bank(path, bank);
  const bio::SequenceBank loaded = load_bank(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.kind(), bio::SequenceKind::kDna);
  EXPECT_EQ(loaded[0].to_letters(), "ACGTNACGT");
  std::remove(path.c_str());
}

TEST(BankStore, RejectsDamage) {
  const Workload workload(2);
  const std::string path = temp_path("bank_damage.pscbank");
  save_bank(path, workload.proteins);
  const std::vector<char> good = slurp(path);

  // Truncation inside the payload.
  spit(path, {good.begin(), good.begin() + static_cast<long>(good.size() / 2)});
  EXPECT_EQ(code_of([&] { load_bank(path); }), StoreErrorCode::kCorrupt);

  // Bit flip in the payload -> checksum.
  std::vector<char> flipped = good;
  flipped[sizeof(FileHeader) + 9] ^= 0x40;
  spit(path, flipped);
  EXPECT_EQ(code_of([&] { load_bank(path); }), StoreErrorCode::kChecksum);

  // Wrong magic (an index file is not a bank).
  std::vector<char> wrong_magic = good;
  wrong_magic[0] = 'X';
  spit(path, wrong_magic);
  EXPECT_EQ(code_of([&] { load_bank(path); }), StoreErrorCode::kBadMagic);

  // Future version.
  std::vector<char> wrong_version = good;
  wrong_version[8] = 99;
  spit(path, wrong_version);
  EXPECT_EQ(code_of([&] { load_bank(path); }), StoreErrorCode::kBadVersion);

  // Missing file.
  EXPECT_EQ(code_of([&] { load_bank(temp_path("no_such.pscbank")); }),
            StoreErrorCode::kIo);
  std::remove(path.c_str());
}

TEST(IndexStore, RoundTripIsZeroCopyAndBitIdentical) {
  const Workload workload(3);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const index::IndexTable fresh(workload.genome_bank, model);
  const std::string path = temp_path("index_roundtrip.pscidx");
  save_index(path, fresh, model);

  const LoadedIndex loaded =
      load_index(path, model, &workload.genome_bank);
  EXPECT_TRUE(loaded.table.is_view());
  EXPECT_EQ(loaded.model_name, model.name());
  ASSERT_EQ(loaded.table.key_space(), fresh.key_space());
  ASSERT_EQ(loaded.table.total_occurrences(), fresh.total_occurrences());
  // Bit-identical arrays, not just equivalent contents.
  const auto fresh_starts = fresh.starts();
  const auto loaded_starts = loaded.table.starts();
  for (std::size_t k = 0; k < fresh_starts.size(); ++k) {
    ASSERT_EQ(loaded_starts[k], fresh_starts[k]);
  }
  const auto fresh_occ = fresh.all_occurrences();
  const auto loaded_occ = loaded.table.all_occurrences();
  for (std::size_t i = 0; i < fresh_occ.size(); ++i) {
    ASSERT_EQ(loaded_occ[i], fresh_occ[i]);
  }
  std::remove(path.c_str());
}

TEST(IndexStore, ParallelBuildSerializesByteIdentical) {
  // psc_index defaults to the parallel builder; the escape-hatch
  // guarantee is that serial and parallel builds produce the same file
  // down to the last byte, for any thread count.
  const Workload workload(9);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const index::IndexTable serial(workload.genome_bank, model);
  const std::string serial_path = temp_path("index_serial.pscidx");
  save_index(serial_path, serial, model);
  const std::vector<char> serial_bytes = slurp(serial_path);
  ASSERT_FALSE(serial_bytes.empty());
  for (const std::size_t threads : {1u, 2u, 7u}) {
    const index::IndexTable parallel =
        index::IndexTable::build_parallel(workload.genome_bank, model,
                                          threads);
    const std::string path = temp_path("index_parallel.pscidx");
    save_index(path, parallel, model);
    EXPECT_EQ(slurp(path), serial_bytes) << "threads=" << threads;
    std::remove(path.c_str());
  }
  std::remove(serial_path.c_str());
}

TEST(IndexStore, InspectReportsHeader) {
  const Workload workload(4);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const index::IndexTable table(workload.proteins, model);
  const std::string path = temp_path("index_inspect.pscidx");
  save_index(path, table, model);
  const IndexFileInfo info = inspect_index(path);
  EXPECT_EQ(info.version, kFormatVersion);
  EXPECT_EQ(info.model_name, "subset-w4");
  EXPECT_EQ(info.model_fingerprint, model.fingerprint());
  EXPECT_EQ(info.key_space, model.key_space());
  EXPECT_EQ(info.occurrence_count, table.total_occurrences());
  std::remove(path.c_str());
}

TEST(IndexStore, PipelineHitsIdenticalAfterReload) {
  // The acceptance bar: a reloaded index must drive the pipeline to
  // bit-identical results vs a fresh in-memory build, under both the
  // scalar and SIMD step-2 kernels.
  const Workload workload(5);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const index::IndexTable fresh(workload.genome_bank, model);
  const std::string path = temp_path("index_pipeline.pscidx");
  save_index(path, fresh, model);
  const LoadedIndex loaded =
      load_index(path, model, &workload.genome_bank);

  for (const align::UngappedKernel kernel :
       {align::UngappedKernel::kScalar, align::UngappedKernel::kAuto}) {
    core::PipelineOptions options;
    options.step2_kernel = kernel;
    options.with_traceback = true;
    const core::PipelineResult direct =
        core::run_pipeline(workload.proteins, workload.genome_bank, options);
    const core::PipelineResult reloaded = core::run_pipeline_with_index(
        workload.proteins, workload.genome_bank, loaded.table, options);

    EXPECT_EQ(direct.counters.step2_pairs, reloaded.counters.step2_pairs);
    EXPECT_EQ(direct.counters.step2_hits, reloaded.counters.step2_hits);
    EXPECT_EQ(direct.counters.step3_extensions,
              reloaded.counters.step3_extensions);
    ASSERT_EQ(direct.matches.size(), reloaded.matches.size());
    ASSERT_FALSE(direct.matches.empty());
    for (std::size_t i = 0; i < direct.matches.size(); ++i) {
      EXPECT_EQ(direct.matches[i].bank0_sequence,
                reloaded.matches[i].bank0_sequence);
      EXPECT_EQ(direct.matches[i].bank1_sequence,
                reloaded.matches[i].bank1_sequence);
      EXPECT_EQ(direct.matches[i].alignment.score,
                reloaded.matches[i].alignment.score);
      EXPECT_EQ(direct.matches[i].e_value, reloaded.matches[i].e_value);
    }
  }
  std::remove(path.c_str());
}

TEST(IndexStore, RejectsDamageAndMismatch) {
  const Workload workload(6);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const index::IndexTable table(workload.proteins, model);
  const std::string path = temp_path("index_damage.pscidx");
  save_index(path, table, model);
  const std::vector<char> good = slurp(path);

  // Wrong seed model.
  const index::SeedModel other = index::SeedModel::subset_w4_coarse();
  EXPECT_EQ(code_of([&] { load_index(path, other); }),
            StoreErrorCode::kModelMismatch);

  // Truncation.
  spit(path, {good.begin(), good.begin() + static_cast<long>(good.size() - 8)});
  EXPECT_EQ(code_of([&] { load_index(path, model); }),
            StoreErrorCode::kCorrupt);
  spit(path, {good.begin(), good.begin() + 10});
  EXPECT_EQ(code_of([&] { load_index(path, model); }),
            StoreErrorCode::kCorrupt);

  // Payload bit flip.
  std::vector<char> flipped = good;
  flipped[good.size() - 3] ^= 0x08;
  spit(path, flipped);
  EXPECT_EQ(code_of([&] { load_index(path, model); }),
            StoreErrorCode::kChecksum);

  // Wrong magic / version.
  std::vector<char> wrong_magic = good;
  wrong_magic[3] = '?';
  spit(path, wrong_magic);
  EXPECT_EQ(code_of([&] { load_index(path, model); }),
            StoreErrorCode::kBadMagic);
  std::vector<char> wrong_version = good;
  wrong_version[8] = 77;
  spit(path, wrong_version);
  EXPECT_EQ(code_of([&] { load_index(path, model); }),
            StoreErrorCode::kBadVersion);

  // Index over a bigger bank paired with a smaller one: occurrences out
  // of range must be caught before step 2 can walk them.
  spit(path, good);
  bio::SequenceBank tiny(bio::SequenceKind::kProtein);
  tiny.add(workload.proteins[0]);
  EXPECT_EQ(code_of([&] { load_index(path, model, &tiny); }),
            StoreErrorCode::kCorrupt);

  EXPECT_EQ(code_of([&] { load_index(temp_path("no_such.pscidx"), model); }),
            StoreErrorCode::kIo);
  std::remove(path.c_str());
}

TEST(IndexStore, RejectsWrappingSectionCounts) {
  // Crafted headers whose section counts make the byte-size arithmetic
  // wrap must fail the geometry checks, not slip past them: with
  // meta[2] = 2^61, occ_bytes = meta[2] * sizeof(Occurrence) wraps to 0,
  // and a starts array ending at 2^61 would then hand step 2 a span
  // claiming 2^61 occurrences backed by no bytes at all.
  const index::SeedModel model = index::SeedModel::subset_w4();
  bio::SequenceBank empty(bio::SequenceKind::kProtein);
  const index::IndexTable table(empty, model);
  const std::string path = temp_path("index_overflow.pscidx");
  save_index(path, table, model);
  const std::vector<char> good = slurp(path);
  constexpr std::size_t kMetaOffset = offsetof(FileHeader, meta);

  constexpr std::uint64_t kHuge = std::uint64_t{1} << 61;
  std::vector<char> crafted = good;
  poke_u64(crafted, kMetaOffset + 2 * sizeof(std::uint64_t), kHuge);
  // Make starts.back() (the file's final u64: the bank is empty, so the
  // occurrence section is absent) agree with the lying header, keeping
  // starts monotone and from_raw_spans otherwise satisfied.
  poke_u64(crafted, crafted.size() - sizeof(std::uint64_t), kHuge);
  reseal(crafted);
  spit(path, crafted);
  EXPECT_EQ(code_of([&] { load_index(path, model, &empty); }),
            StoreErrorCode::kCorrupt);

  // A name length within 64 of 2^64 wraps `header + name_bytes`-style
  // truncation checks; both readers must reject it with a typed error
  // instead of feeding it to string::assign.
  std::vector<char> huge_name = good;
  poke_u64(huge_name, kMetaOffset + 3 * sizeof(std::uint64_t),
           std::numeric_limits<std::uint64_t>::max() - 32);
  spit(path, huge_name);
  EXPECT_EQ(code_of([&] { inspect_index(path); }), StoreErrorCode::kCorrupt);
  EXPECT_EQ(code_of([&] { load_index(path, model, &empty); }),
            StoreErrorCode::kCorrupt);
  std::remove(path.c_str());
}

TEST(IndexTableSpans, FromRawSpansValidatesLayout) {
  const std::vector<std::size_t> good_starts = {0, 1, 3};
  const std::vector<index::Occurrence> occ = {{0, 0}, {0, 4}, {1, 2}};
  const index::IndexTable view =
      index::IndexTable::from_raw_spans(good_starts, occ);
  EXPECT_TRUE(view.is_view());
  EXPECT_EQ(view.key_space(), 2u);
  EXPECT_EQ(view.list_length(0), 1u);
  EXPECT_EQ(view.list_length(1), 2u);
  EXPECT_EQ(view.occurrences(1)[1], (index::Occurrence{1, 2}));

  const std::vector<std::size_t> not_zero = {1, 3};
  EXPECT_THROW(index::IndexTable::from_raw_spans(not_zero, occ),
               std::invalid_argument);
  const std::vector<std::size_t> not_monotone = {0, 2, 1};
  EXPECT_THROW(index::IndexTable::from_raw_spans(not_monotone, occ),
               std::invalid_argument);
  const std::vector<std::size_t> bad_total = {0, 1, 2};
  EXPECT_THROW(index::IndexTable::from_raw_spans(bad_total, occ),
               std::invalid_argument);
  EXPECT_THROW(index::IndexTable::from_raw_spans({}, occ),
               std::invalid_argument);
}

TEST(IndexTableSpans, CopiedAndMovedTablesKeepValidSpans) {
  const Workload workload(7);
  const index::SeedModel model = index::SeedModel::subset_w4();
  index::IndexTable original(workload.proteins, model);
  const std::size_t occurrences = original.total_occurrences();

  index::IndexTable copy = original;  // NOLINT(performance-unnecessary-copy)
  EXPECT_FALSE(copy.is_view());
  EXPECT_EQ(copy.total_occurrences(), occurrences);

  index::IndexTable moved = std::move(original);
  EXPECT_EQ(moved.total_occurrences(), occurrences);
  EXPECT_EQ(moved.starts().size(), model.key_space() + 1);
  // The copy stays intact regardless of what happened to the source.
  EXPECT_EQ(copy.starts().back(), occurrences);
}

}  // namespace
}  // namespace psc::store
