#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "sim/protein_generator.hpp"
#include "store/bank_store.hpp"
#include "store/format.hpp"
#include "store/index_store.hpp"
#include "store/shard_store.hpp"
#include "util/rng.hpp"

namespace psc::store {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

bio::SequenceBank make_bank(std::uint64_t seed, int count, int length) {
  bio::SequenceBank bank(bio::SequenceKind::kProtein);
  util::Xoshiro256 rng(seed);
  for (int i = 0; i < count; ++i) {
    bank.add(sim::generate_protein("s" + std::to_string(i), length, rng));
  }
  return bank;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void poke_u64(std::vector<char>& bytes, std::size_t offset,
              std::uint64_t value) {
  std::memcpy(bytes.data() + offset, &value, sizeof(value));
}

/// Recomputes the payload checksum after tampering: the digest is an
/// integrity check, not an authenticity one, so every structural
/// rejection must hold even against a resealed file.
void reseal(std::vector<char>& bytes) {
  const std::uint64_t digest = fnv1a64(bytes.data() + sizeof(FileHeader),
                                       bytes.size() - sizeof(FileHeader));
  poke_u64(bytes, offsetof(FileHeader, payload_checksum), digest);
}

StoreErrorCode code_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const StoreError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected a StoreError";
  return StoreErrorCode::kIo;
}

void remove_store(const std::string& prefix, std::size_t shards) {
  std::remove(manifest_path(prefix).c_str());
  for (std::size_t i = 0; i < shards; ++i) {
    std::remove((shard_prefix(prefix, i) + ".pscbank").c_str());
    std::remove((shard_prefix(prefix, i) + ".pscidx").c_str());
  }
}

TEST(ShardPlan, EmptyBankGetsOneEmptyShard) {
  const bio::SequenceBank empty(bio::SequenceKind::kProtein);
  const auto plan = plan_shards(empty, 64);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0], (std::pair<std::size_t, std::size_t>{0, 0}));
}

TEST(ShardPlan, ZeroCapMeansOneWholeShard) {
  const bio::SequenceBank bank = make_bank(11, 7, 40);
  const auto plan = plan_shards(bank, 0);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0], (std::pair<std::size_t, std::size_t>{0, bank.size()}));
}

TEST(ShardPlan, GreedySplitCoversBankContiguously) {
  const bio::SequenceBank bank = make_bank(12, 20, 50);
  // Roughly 60 encoded bytes per record; a 150-byte cap packs 2 each.
  const auto plan = plan_shards(bank, 150);
  ASSERT_GT(plan.size(), 1u);
  std::size_t expected_begin = 0;
  for (const auto& [begin, end] : plan) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_GT(end, begin);  // a shard always holds at least one sequence
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, bank.size());
}

TEST(ShardPlan, OversizedSequenceGetsItsOwnShard) {
  const bio::SequenceBank bank = make_bank(13, 5, 100);
  // Every record exceeds a 10-byte cap; the plan must still make
  // progress, one sequence per shard.
  const auto plan = plan_shards(bank, 10);
  ASSERT_EQ(plan.size(), bank.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i], (std::pair<std::size_t, std::size_t>{i, i + 1}));
  }
}

TEST(ShardStore, WriteReadRoundTrip) {
  const bio::SequenceBank bank = make_bank(20, 12, 60);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const std::string prefix = temp_path("shard_roundtrip");
  const ShardManifest written =
      write_sharded_store(prefix, bank, model, 300);
  ASSERT_GT(written.shards.size(), 1u);
  ASSERT_TRUE(manifest_exists(prefix));

  const ShardManifest manifest = load_manifest(manifest_path(prefix));
  EXPECT_EQ(manifest.kind, bank.kind());
  EXPECT_EQ(manifest.total_sequences, bank.size());
  EXPECT_EQ(manifest.total_residues, bank.total_residues());
  EXPECT_EQ(manifest.set_checksum, written.set_checksum);
  ASSERT_EQ(manifest.shards.size(), written.shards.size());

  // Each shard file holds exactly its slice of the bank, and its index
  // both records and matches that shard's bank checksum.
  for (std::size_t i = 0; i < manifest.shards.size(); ++i) {
    const ShardInfo& shard = manifest.shards[i];
    const std::string pair_prefix = shard_prefix(prefix, i);
    const bio::SequenceBank piece = load_bank(pair_prefix + ".pscbank");
    ASSERT_EQ(piece.size(), shard.sequence_count);
    EXPECT_EQ(piece.total_residues(), shard.residues);
    for (std::size_t s = 0; s < piece.size(); ++s) {
      const bio::Sequence& original = bank[shard.sequence_base + s];
      EXPECT_EQ(piece[s].id(), original.id());
      EXPECT_EQ(piece[s].residues(), original.residues());
    }
    const BankFileInfo info = inspect_bank(pair_prefix + ".pscbank");
    EXPECT_EQ(info.payload_checksum, shard.bank_checksum);
    const LoadedIndex loaded =
        load_index(pair_prefix + ".pscidx", model, &piece,
                   /*verify_checksum=*/true, shard.bank_checksum);
    EXPECT_EQ(loaded.bank_checksum, shard.bank_checksum);
  }
  remove_store(prefix, manifest.shards.size());
}

TEST(ShardStore, EmptyBankWritesOneEmptyShard) {
  const bio::SequenceBank empty(bio::SequenceKind::kProtein);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const std::string prefix = temp_path("shard_empty");
  const ShardManifest manifest = write_sharded_store(prefix, empty, model, 64);
  ASSERT_EQ(manifest.shards.size(), 1u);
  const ShardManifest reloaded = load_manifest(manifest_path(prefix));
  EXPECT_EQ(reloaded.total_sequences, 0u);
  EXPECT_EQ(reloaded.shards[0].sequence_count, 0u);
  EXPECT_EQ(load_bank(shard_prefix(prefix, 0) + ".pscbank").size(), 0u);
  remove_store(prefix, 1);
}

TEST(ShardStore, ManifestRejectsDamage) {
  const bio::SequenceBank bank = make_bank(21, 8, 50);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const std::string prefix = temp_path("shard_damage");
  const ShardManifest written =
      write_sharded_store(prefix, bank, model, 200);
  ASSERT_GE(written.shards.size(), 2u);
  const std::string path = manifest_path(prefix);
  const std::vector<char> good = slurp(path);
  constexpr std::size_t kMetaOffset = offsetof(FileHeader, meta);

  // Wrong magic (a bank file is not a manifest).
  std::vector<char> wrong_magic = good;
  wrong_magic[0] = 'X';
  spit(path, wrong_magic);
  EXPECT_EQ(code_of([&] { load_manifest(path); }), StoreErrorCode::kBadMagic);

  // v1 predates the manifest type entirely; the future is also rejected.
  for (const char version : {char{1}, char{99}}) {
    std::vector<char> wrong_version = good;
    wrong_version[8] = version;
    spit(path, wrong_version);
    EXPECT_EQ(code_of([&] { load_manifest(path); }),
              StoreErrorCode::kBadVersion);
  }

  // Truncation.
  spit(path, {good.begin(), good.begin() + 10});
  EXPECT_EQ(code_of([&] { load_manifest(path); }), StoreErrorCode::kCorrupt);
  spit(path, {good.begin(), good.begin() + static_cast<long>(good.size() - 8)});
  EXPECT_EQ(code_of([&] { load_manifest(path); }), StoreErrorCode::kCorrupt);

  // Payload bit flip -> checksum.
  std::vector<char> flipped = good;
  flipped[good.size() - 1] ^= 0x10;
  spit(path, flipped);
  EXPECT_EQ(code_of([&] { load_manifest(path); }), StoreErrorCode::kChecksum);

  // Zero shards, and a shard count sized to wrap the byte arithmetic:
  // both are header pokes a reseal cannot legitimize.
  std::vector<char> zero_shards = good;
  poke_u64(zero_shards, kMetaOffset + sizeof(std::uint64_t), 0);
  spit(path, zero_shards);
  EXPECT_EQ(code_of([&] { load_manifest(path); }), StoreErrorCode::kCorrupt);
  std::vector<char> huge_shards = good;
  poke_u64(huge_shards, kMetaOffset + sizeof(std::uint64_t),
           std::uint64_t{1} << 61);
  spit(path, huge_shards);
  EXPECT_EQ(code_of([&] { load_manifest(path); }), StoreErrorCode::kCorrupt);

  // Non-contiguous bases (shard 1's base bumped by one), resealed.
  // The v3 payload head is set_checksum + revision, 16 bytes.
  std::vector<char> gap = good;
  constexpr std::size_t kTableOffset =
      sizeof(FileHeader) + 2 * sizeof(std::uint64_t);
  std::uint64_t base1 = 0;
  std::memcpy(&base1, gap.data() + kTableOffset + 32, sizeof(base1));
  poke_u64(gap, kTableOffset + 32, base1 + 1);
  reseal(gap);
  spit(path, gap);
  EXPECT_EQ(code_of([&] { load_manifest(path); }), StoreErrorCode::kCorrupt);

  // Totals no longer matching the shard table (header poke).
  std::vector<char> bad_total = good;
  poke_u64(bad_total, kMetaOffset + 2 * sizeof(std::uint64_t),
           bank.size() + 1);
  spit(path, bad_total);
  EXPECT_EQ(code_of([&] { load_manifest(path); }), StoreErrorCode::kCorrupt);

  spit(path, good);
  remove_store(prefix, written.shards.size());
}

TEST(ShardStore, ManifestRejectsSwappedShardChecksum) {
  // A slot checksum that no longer folds into the recorded set checksum
  // is exactly what a shard swapped for another bank's file looks like
  // at the manifest level; resealing the payload digest must not save
  // it.
  const bio::SequenceBank bank = make_bank(22, 8, 50);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const std::string prefix = temp_path("shard_swap");
  const ShardManifest written =
      write_sharded_store(prefix, bank, model, 200);
  ASSERT_GE(written.shards.size(), 2u);
  const std::string path = manifest_path(prefix);
  std::vector<char> crafted = slurp(path);

  constexpr std::size_t kSlot0Checksum =
      sizeof(FileHeader) + 2 * sizeof(std::uint64_t) + 24;
  poke_u64(crafted, kSlot0Checksum, written.shards[0].bank_checksum ^ 1);
  reseal(crafted);
  spit(path, crafted);
  EXPECT_EQ(code_of([&] { load_manifest(path); }),
            StoreErrorCode::kBankMismatch);
  EXPECT_EQ(code_of([&] { load_manifest(path, false); }),
            StoreErrorCode::kBankMismatch);  // not gated on verify_checksum
  remove_store(prefix, written.shards.size());
}

TEST(ShardStore, ManifestRejectsIdSpaceOverflow) {
  // Totals past the u32 id space would let a remapped subject id wrap
  // Match::bank1_sequence; save an honest oversized manifest and make
  // sure the loader refuses it.
  ShardManifest manifest;
  manifest.kind = bio::SequenceKind::kProtein;
  ShardInfo a;
  a.sequence_base = 0;
  a.sequence_count = std::uint64_t{1} << 33;
  a.residues = 10;
  a.bank_checksum = 7;
  manifest.shards.push_back(a);
  manifest.total_sequences = a.sequence_count;
  manifest.total_residues = a.residues;
  const std::string path = temp_path("shard_idspace.pscman");
  save_manifest(path, manifest);
  EXPECT_EQ(code_of([&] { load_manifest(path); }), StoreErrorCode::kCorrupt);
  std::remove(path.c_str());
}

TEST(ShardStore, AppendExtendsStoreAndBumpsRevision) {
  const bio::SequenceBank bank = make_bank(23, 10, 50);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const std::string prefix = temp_path("shard_append");
  const ShardManifest base = write_sharded_store(prefix, bank, model, 250);
  ASSERT_GE(base.shards.size(), 2u);
  EXPECT_EQ(base.revision, 1u);  // a fresh v3 build starts the lineage
  EXPECT_EQ(read_manifest_revision(manifest_path(prefix)), 1u);

  const bio::SequenceBank delta = make_bank(24, 4, 60);
  const ShardManifest extended =
      append_sharded_store(prefix, delta, model);
  EXPECT_EQ(extended.revision, 2u);
  ASSERT_EQ(extended.shards.size(), base.shards.size() + 1);
  EXPECT_EQ(extended.total_sequences, bank.size() + delta.size());
  EXPECT_EQ(extended.total_residues,
            bank.total_residues() + delta.total_residues());
  // Leading slots are untouched (append never rewrites a shard)...
  for (std::size_t i = 0; i < base.shards.size(); ++i) {
    EXPECT_EQ(extended.shards[i].sequence_base, base.shards[i].sequence_base);
    EXPECT_EQ(extended.shards[i].bank_checksum, base.shards[i].bank_checksum);
  }
  // ...and the tail continues the unsharded numbering exactly.
  const ShardInfo& tail = extended.shards.back();
  EXPECT_EQ(tail.sequence_base, bank.size());
  EXPECT_EQ(tail.sequence_count, delta.size());
  const std::string tail_prefix =
      shard_prefix(prefix, extended.shards.size() - 1);
  const bio::SequenceBank tail_bank = load_bank(tail_prefix + ".pscbank");
  ASSERT_EQ(tail_bank.size(), delta.size());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    EXPECT_EQ(tail_bank[i].id(), delta[i].id());
    EXPECT_EQ(tail_bank[i].residues(), delta[i].residues());
  }
  // The published manifest passes full validation (set checksum refold,
  // contiguity, totals) and records the new revision.
  const ShardManifest reloaded = load_manifest(manifest_path(prefix));
  EXPECT_EQ(reloaded.revision, 2u);
  EXPECT_EQ(reloaded.set_checksum, extended.set_checksum);
  EXPECT_EQ(read_manifest_revision(manifest_path(prefix)), 2u);

  // An EMPTY delta is a legal ingest tick: one empty tail shard, another
  // revision bump, totals unchanged.
  const bio::SequenceBank empty(bio::SequenceKind::kProtein);
  const ShardManifest third = append_sharded_store(prefix, empty, model);
  EXPECT_EQ(third.revision, 3u);
  EXPECT_EQ(third.total_sequences, extended.total_sequences);
  EXPECT_EQ(third.shards.back().sequence_count, 0u);
  remove_store(prefix, third.shards.size());
}

TEST(ShardStore, AppendCompressedTailOntoPlainStore) {
  // Generations may mix storage modes: a plain store can grow a
  // compressed tail (cold ingest) and still validate as one set.
  const bio::SequenceBank bank = make_bank(25, 6, 50);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const std::string prefix = temp_path("shard_append_cmp");
  write_sharded_store(prefix, bank, model, 250);
  const bio::SequenceBank delta = make_bank(26, 3, 60);
  const ShardManifest extended = append_sharded_store(
      prefix, delta, model, /*threads=*/0, /*serial_index=*/false,
      /*compress=*/true);
  const std::string tail_prefix =
      shard_prefix(prefix, extended.shards.size() - 1);
  EXPECT_EQ(inspect_bank(tail_prefix + ".pscbank").compression,
            kCompressionLzss);
  EXPECT_EQ(inspect_index(tail_prefix + ".pscidx").compression,
            kCompressionLzss);
  EXPECT_EQ(load_bank(tail_prefix + ".pscbank").size(), delta.size());
  EXPECT_NO_THROW(load_manifest(manifest_path(prefix)));
  remove_store(prefix, extended.shards.size());
}

TEST(ShardStore, AppendRejectsKindAndModelMismatch) {
  const bio::SequenceBank bank = make_bank(27, 6, 50);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const std::string prefix = temp_path("shard_append_guard");
  const ShardManifest base = write_sharded_store(prefix, bank, model, 250);

  bio::SequenceBank dna(bio::SequenceKind::kDna);
  EXPECT_EQ(code_of([&] { append_sharded_store(prefix, dna, model); }),
            StoreErrorCode::kKindMismatch);

  const bio::SequenceBank delta = make_bank(28, 2, 40);
  EXPECT_EQ(code_of([&] {
              append_sharded_store(prefix, delta,
                                   index::SeedModel::blast_w3());
            }),
            StoreErrorCode::kModelMismatch);

  // Neither failed attempt may have published a new generation.
  EXPECT_EQ(read_manifest_revision(manifest_path(prefix)), base.revision);
  remove_store(prefix, base.shards.size());
}

/// Rewrites a v3 manifest as its v2 predecessor: drop the 8-byte
/// revision word, stamp version 2, fix the payload length and reseal.
/// What save_manifest wrote under v2 is byte-for-byte this.
std::vector<char> manifest_as_v2(const std::vector<char>& v3) {
  std::vector<char> v2(v3.begin(), v3.begin() + sizeof(FileHeader) + 8);
  v2.insert(v2.end(), v3.begin() + sizeof(FileHeader) + 16, v3.end());
  v2[8] = 2;  // FileHeader::version (little-endian u32)
  std::uint64_t payload_bytes = 0;
  std::memcpy(&payload_bytes, v3.data() + offsetof(FileHeader, payload_bytes),
              sizeof(payload_bytes));
  poke_u64(v2, offsetof(FileHeader, payload_bytes), payload_bytes - 8);
  reseal(v2);
  return v2;
}

TEST(ShardStore, V2ManifestReadsBackAsRevisionZero) {
  const bio::SequenceBank bank = make_bank(29, 8, 50);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const std::string prefix = temp_path("shard_v2compat");
  const ShardManifest written = write_sharded_store(prefix, bank, model, 250);
  const std::string path = manifest_path(prefix);
  spit(path, manifest_as_v2(slurp(path)));

  const ShardManifest v2 = load_manifest(path);
  EXPECT_EQ(v2.version, 2u);
  EXPECT_EQ(v2.revision, 0u);  // predates the lineage: "unrecorded"
  EXPECT_EQ(v2.total_sequences, written.total_sequences);
  EXPECT_EQ(v2.set_checksum, written.set_checksum);
  ASSERT_EQ(v2.shards.size(), written.shards.size());
  EXPECT_EQ(v2.shards.back().bank_checksum,
            written.shards.back().bank_checksum);
  EXPECT_EQ(read_manifest_revision(path), 0u);

  // Appending to a v2 store adopts it into the lineage at revision 1.
  const bio::SequenceBank delta = make_bank(30, 2, 40);
  const ShardManifest adopted = append_sharded_store(prefix, delta, model);
  EXPECT_EQ(adopted.revision, 1u);
  remove_store(prefix, adopted.shards.size());
}

TEST(ShardStore, ManifestRejectsWrappedTotals) {
  // Satellite: crafted per-shard slots whose u64 sums wrap around to
  // match the header totals must be kCorrupt, not a silent pass -- the
  // loader checks each addition for overflow before comparing.
  const bio::SequenceBank bank = make_bank(31, 8, 50);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const std::string prefix = temp_path("shard_wrap");
  const ShardManifest written = write_sharded_store(prefix, bank, model, 200);
  ASSERT_GE(written.shards.size(), 2u);
  const std::string path = manifest_path(prefix);
  const std::vector<char> good = slurp(path);
  constexpr std::size_t kTable = sizeof(FileHeader) + 2 * sizeof(std::uint64_t);
  constexpr std::uint64_t kHalf = std::uint64_t{1} << 63;

  // Residues: slot0 jumps to 2^63, slot1 to total - 2^63 (mod 2^64);
  // the wrapped sum equals the header total exactly.
  std::vector<char> wrap_residues = good;
  poke_u64(wrap_residues, kTable + 16, kHalf);
  poke_u64(wrap_residues, kTable + 32 + 16,
           written.total_residues - written.shards[0].residues -
               written.shards[1].residues + kHalf);
  reseal(wrap_residues);
  spit(path, wrap_residues);
  EXPECT_EQ(code_of([&] { load_manifest(path); }), StoreErrorCode::kCorrupt);

  // Sequence counts: same trick, keeping the bases contiguous so the
  // overflow guard (not the contiguity check) is what must fire.
  std::vector<char> wrap_counts = good;
  poke_u64(wrap_counts, kTable + 8, kHalf);       // slot0.sequence_count
  poke_u64(wrap_counts, kTable + 32, kHalf);      // slot1.sequence_base
  poke_u64(wrap_counts, kTable + 32 + 8,
           written.total_sequences - written.shards[0].sequence_count -
               written.shards[1].sequence_count + kHalf);
  reseal(wrap_counts);
  spit(path, wrap_counts);
  EXPECT_EQ(code_of([&] { load_manifest(path); }), StoreErrorCode::kCorrupt);

  spit(path, good);
  remove_store(prefix, written.shards.size());
}

TEST(IndexStoreV2, RecordsBankChecksumAndRejectsWrongPairing) {
  const bio::SequenceBank bank = make_bank(30, 6, 60);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const index::IndexTable table(bank, model);
  const std::string bank_path = temp_path("pairing.pscbank");
  const std::string index_path = temp_path("pairing.pscidx");
  const std::uint64_t checksum = save_bank(bank_path, bank);
  ASSERT_NE(checksum, 0u);
  EXPECT_EQ(inspect_bank(bank_path).payload_checksum, checksum);
  save_index(index_path, table, model, checksum);
  EXPECT_EQ(inspect_index(index_path).bank_checksum, checksum);

  // The matching bank loads; a different bank's checksum is rejected
  // before any payload section is validated.
  EXPECT_EQ(load_index(index_path, model, &bank, true, checksum)
                .bank_checksum,
            checksum);
  EXPECT_EQ(code_of([&] {
              load_index(index_path, model, &bank, true, checksum ^ 0x5a);
            }),
            StoreErrorCode::kBankMismatch);

  // 0 on either side means "unrecorded" and skips the check: old files
  // and callers stay loadable.
  EXPECT_NO_THROW(load_index(index_path, model, &bank, true, 0));
  const std::string legacy_path = temp_path("pairing_legacy.pscidx");
  save_index(legacy_path, table, model);  // no checksum recorded
  EXPECT_NO_THROW(load_index(legacy_path, model, &bank, true, checksum));

  std::remove(bank_path.c_str());
  std::remove(index_path.c_str());
  std::remove(legacy_path.c_str());
}

/// Rewrites a v2 index file as the v1 layout it extends: drop the 8-byte
/// bank-checksum section, stamp version 1, fix the payload length and
/// reseal. What save_index wrote under v1 is byte-for-byte this.
std::vector<char> as_v1(const std::vector<char>& v2) {
  std::vector<char> v1(v2.begin(), v2.begin() + sizeof(FileHeader));
  v1.insert(v1.end(), v2.begin() + sizeof(FileHeader) + 8, v2.end());
  v1[8] = 1;  // FileHeader::version (little-endian u32)
  std::uint64_t payload_bytes = 0;
  std::memcpy(&payload_bytes, v2.data() + offsetof(FileHeader, payload_bytes),
              sizeof(payload_bytes));
  poke_u64(v1, offsetof(FileHeader, payload_bytes), payload_bytes - 8);
  reseal(v1);
  return v1;
}

TEST(IndexStoreV2, ReadsV1FilesAsUnrecorded) {
  const bio::SequenceBank bank = make_bank(31, 6, 60);
  const index::SeedModel model = index::SeedModel::subset_w4();
  const index::IndexTable fresh(bank, model);
  const std::string path = temp_path("backcompat.pscidx");
  save_index(path, fresh, model, save_bank(temp_path("backcompat.pscbank"),
                                           bank));
  const std::vector<char> v1 = as_v1(slurp(path));
  spit(path, v1);

  EXPECT_EQ(inspect_index(path).version, 1u);
  EXPECT_EQ(inspect_index(path).bank_checksum, 0u);
  // A v1 file records no pairing, so an expected checksum is waved
  // through -- and the table reads back identical to the fresh build.
  const LoadedIndex loaded = load_index(path, model, &bank, true, 0xdeadu);
  EXPECT_EQ(loaded.bank_checksum, 0u);
  ASSERT_EQ(loaded.table.total_occurrences(), fresh.total_occurrences());
  const auto fresh_occ = fresh.all_occurrences();
  const auto loaded_occ = loaded.table.all_occurrences();
  for (std::size_t i = 0; i < fresh_occ.size(); ++i) {
    ASSERT_EQ(loaded_occ[i], fresh_occ[i]);
  }

  // A v2 header over a payload too short to hold the checksum section
  // must be caught by the bounds check, not read past the mapping.
  std::vector<char> short_v2 = v1;
  short_v2[8] = 2;
  poke_u64(short_v2, offsetof(FileHeader, payload_bytes), 4);
  short_v2.resize(sizeof(FileHeader) + 4);
  reseal(short_v2);
  spit(path, short_v2);
  EXPECT_EQ(code_of([&] { load_index(path, model); }),
            StoreErrorCode::kCorrupt);

  std::remove(path.c_str());
  std::remove(temp_path("backcompat.pscbank").c_str());
}

}  // namespace
}  // namespace psc::store
