#include "bio/complexity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "index/index_table.hpp"

#include "sim/protein_generator.hpp"
#include "util/rng.hpp"

namespace psc::bio {
namespace {

TEST(ShannonEntropy, HomopolymerIsZero) {
  const auto seq = encode_protein_string("AAAAAAAA");
  EXPECT_DOUBLE_EQ(shannon_entropy_bits({seq.data(), seq.size()}), 0.0);
}

TEST(ShannonEntropy, TwoSymbolsEqualMixIsOneBit) {
  const auto seq = encode_protein_string("ARARARAR");
  EXPECT_NEAR(shannon_entropy_bits({seq.data(), seq.size()}), 1.0, 1e-12);
}

TEST(ShannonEntropy, UniformTwentyIsLogTwenty) {
  const auto seq = encode_protein_string("ARNDCQEGHILKMFPSTWYV");
  EXPECT_NEAR(shannon_entropy_bits({seq.data(), seq.size()}),
              std::log2(20.0), 1e-9);
}

TEST(ShannonEntropy, IgnoresNonStandard) {
  const auto with_x = encode_protein_string("AXAXAXAX");
  EXPECT_DOUBLE_EQ(shannon_entropy_bits({with_x.data(), with_x.size()}), 0.0);
  EXPECT_DOUBLE_EQ(shannon_entropy_bits({}), 0.0);
}

TEST(MaskLowComplexity, MasksHomopolymerRun) {
  Sequence seq = Sequence::protein_from_letters(
      "p", "MKVLARNDCQEG" "AAAAAAAAAAAAAAAA" "HIKWFPSTYVMKVL");
  const std::size_t masked = mask_low_complexity(seq);
  EXPECT_GE(masked, 16u);
  const std::string letters = seq.to_letters();
  EXPECT_NE(letters.find("XXXXXXXXXXXXXXXX"), std::string::npos);
  // The complex head survives apart from boundary bleed: windows mixing
  // head residues with the run mask once the run dominates them, so up
  // to window-1 flanking residues may go; the start must stay intact.
  EXPECT_EQ(letters.rfind("MKVLARN", 0), 0u);
}

TEST(MaskLowComplexity, LeavesRandomProteinAlone) {
  util::Xoshiro256 rng(5);
  Sequence seq = sim::generate_protein("p", 400, rng);
  const std::string before = seq.to_letters();
  const std::size_t masked = mask_low_complexity(seq);
  // Random Robinson-composition sequence has entropy ~4 bits per window;
  // essentially nothing should trigger at the 2.2-bit threshold.
  EXPECT_LT(masked, 20u);
  if (masked == 0) EXPECT_EQ(seq.to_letters(), before);
}

TEST(MaskLowComplexity, ShortSequenceUntouched) {
  Sequence seq = Sequence::protein_from_letters("p", "AAAA");  // < window
  EXPECT_EQ(mask_low_complexity(seq), 0u);
  EXPECT_EQ(seq.to_letters(), "AAAA");
}

TEST(MaskLowComplexity, DnaSequenceIgnored) {
  Sequence dna = Sequence::dna_from_letters("g", "AAAAAAAAAAAAAAAA");
  EXPECT_EQ(mask_low_complexity(dna), 0u);
}

TEST(MaskLowComplexity, ThresholdControlsAggression) {
  const char* letters = "MKVLAR" "ARARARARARAR" "NDCQEG";  // 1-bit middle
  Sequence strict = Sequence::protein_from_letters("p", letters);
  Sequence loose = Sequence::protein_from_letters("p", letters);
  MaskConfig aggressive;
  aggressive.min_entropy_bits = 1.5;  // masks the AR repeat
  MaskConfig permissive;
  permissive.min_entropy_bits = 0.5;  // keeps it
  EXPECT_GT(mask_low_complexity(strict, aggressive), 0u);
  EXPECT_EQ(mask_low_complexity(loose, permissive), 0u);
}

TEST(MaskLowComplexity, BankMasksAllMembers) {
  SequenceBank bank(SequenceKind::kProtein);
  bank.add(Sequence::protein_from_letters("a", "AAAAAAAAAAAAAAAA"));
  bank.add(Sequence::protein_from_letters("b", "SSSSSSSSSSSSSSSS"));
  const std::size_t masked = mask_low_complexity(bank);
  EXPECT_EQ(masked, 32u);
  EXPECT_EQ(bank[0].to_letters(), std::string(16, 'X'));
}

TEST(MaskLowComplexity, MaskedRegionsProduceNoSeeds) {
  // The point of masking: a masked bank contributes no index entries in
  // the repeat region.
  SequenceBank bank(SequenceKind::kProtein);
  bank.add(Sequence::protein_from_letters(
      "p", "MKVLARNDCQEG" "AAAAAAAAAAAAAAAA" "HIKWFPSTYV"));
  const index::IndexTable before(bank, index::SeedModel::subset_w4());
  mask_low_complexity(bank);
  const index::IndexTable after(bank, index::SeedModel::subset_w4());
  EXPECT_LT(after.total_occurrences(), before.total_occurrences());
}

}  // namespace
}  // namespace psc::bio
