#include "bio/genetic_code.hpp"

#include <gtest/gtest.h>

#include <map>

namespace psc::bio {
namespace {

std::uint8_t codon(const char* letters) {
  return pack_codon(encode_nucleotide(letters[0]), encode_nucleotide(letters[1]),
                    encode_nucleotide(letters[2]));
}

TEST(GeneticCode, StartCodonIsMethionine) {
  EXPECT_EQ(translate_codon(codon("ATG")), encode_protein('M'));
}

TEST(GeneticCode, StopCodons) {
  EXPECT_EQ(translate_codon(codon("TAA")), kStop);
  EXPECT_EQ(translate_codon(codon("TAG")), kStop);
  EXPECT_EQ(translate_codon(codon("TGA")), kStop);
}

TEST(GeneticCode, TryptophanSingleCodon) {
  EXPECT_EQ(translate_codon(codon("TGG")), encode_protein('W'));
}

TEST(GeneticCode, WellKnownCodons) {
  EXPECT_EQ(translate_codon(codon("AAA")), encode_protein('K'));
  EXPECT_EQ(translate_codon(codon("GCT")), encode_protein('A'));
  EXPECT_EQ(translate_codon(codon("TTT")), encode_protein('F'));
  EXPECT_EQ(translate_codon(codon("CGA")), encode_protein('R'));
  EXPECT_EQ(translate_codon(codon("GGG")), encode_protein('G'));
  EXPECT_EQ(translate_codon(codon("CAT")), encode_protein('H'));
}

TEST(GeneticCode, FourfoldDegenerateFamilies) {
  // Proline: CCN all translate to P.
  for (const char* third : {"A", "C", "G", "T"}) {
    const std::string c = std::string("CC") + third;
    EXPECT_EQ(translate_codon(codon(c.c_str())), encode_protein('P')) << c;
  }
}

TEST(GeneticCode, InvalidCodonGivesX) {
  EXPECT_EQ(pack_codon(0, 1, kNucleotideN), kInvalidCodon);
  EXPECT_EQ(translate_codon(kInvalidCodon), kUnknownX);
  EXPECT_EQ(translate_codon(encode_nucleotide('A'), encode_nucleotide('N'),
                            encode_nucleotide('G')),
            kUnknownX);
}

TEST(GeneticCode, TableCoversAllCodons) {
  const auto& table = standard_genetic_code();
  std::map<Residue, int> counts;
  for (std::uint8_t c = 0; c < 64; ++c) {
    const Residue aa = table[c];
    ASSERT_TRUE(aa < kNumAminoAcids || aa == kStop) << int(c);
    ++counts[aa];
  }
  // Exactly three stop codons and all twenty amino acids represented.
  EXPECT_EQ(counts[kStop], 3);
  int distinct_aas = 0;
  for (const auto& [aa, n] : counts) {
    if (aa < kNumAminoAcids) ++distinct_aas;
  }
  EXPECT_EQ(distinct_aas, 20);
}

TEST(GeneticCode, DegeneracyCountsMatchBiology) {
  const auto& table = standard_genetic_code();
  std::map<Residue, int> counts;
  for (std::uint8_t c = 0; c < 64; ++c) ++counts[table[c]];
  EXPECT_EQ(counts[encode_protein('M')], 1);
  EXPECT_EQ(counts[encode_protein('W')], 1);
  EXPECT_EQ(counts[encode_protein('L')], 6);
  EXPECT_EQ(counts[encode_protein('R')], 6);
  EXPECT_EQ(counts[encode_protein('S')], 6);
}

}  // namespace
}  // namespace psc::bio
