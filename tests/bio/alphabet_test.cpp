#include "bio/alphabet.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace psc::bio {
namespace {

TEST(ProteinAlphabet, RoundTripsAllLetters) {
  for (std::size_t i = 0; i < kProteinLetters.size(); ++i) {
    const char letter = kProteinLetters[i];
    EXPECT_EQ(encode_protein(letter), static_cast<Residue>(i));
    EXPECT_EQ(decode_protein(static_cast<Residue>(i)), letter);
  }
}

TEST(ProteinAlphabet, LowercaseAccepted) {
  EXPECT_EQ(encode_protein('a'), encode_protein('A'));
  EXPECT_EQ(encode_protein('w'), encode_protein('W'));
}

TEST(ProteinAlphabet, UnknownMapsToX) {
  EXPECT_EQ(encode_protein('?'), kUnknownX);
  EXPECT_EQ(encode_protein('1'), kUnknownX);
  EXPECT_EQ(encode_protein(' '), kUnknownX);
}

TEST(ProteinAlphabet, RareCodesCollapse) {
  EXPECT_EQ(encode_protein('U'), encode_protein('C'));  // selenocysteine
  EXPECT_EQ(encode_protein('O'), encode_protein('K'));  // pyrrolysine
  EXPECT_EQ(encode_protein('J'), encode_protein('L'));  // Leu/Ile ambiguity
}

TEST(ProteinAlphabet, SpecialCodes) {
  EXPECT_EQ(encode_protein('B'), kAmbiguousB);
  EXPECT_EQ(encode_protein('Z'), kAmbiguousZ);
  EXPECT_EQ(encode_protein('X'), kUnknownX);
  EXPECT_EQ(encode_protein('*'), kStop);
  EXPECT_FALSE(is_standard_aa(kStop));
  EXPECT_TRUE(is_standard_aa(0));
  EXPECT_TRUE(is_standard_aa(19));
  EXPECT_FALSE(is_standard_aa(20));
}

TEST(ProteinAlphabet, DecodeOutOfRangeIsX) {
  EXPECT_EQ(decode_protein(200), 'X');
}

TEST(NucleotideAlphabet, RoundTrips) {
  EXPECT_EQ(encode_nucleotide('A'), 0);
  EXPECT_EQ(encode_nucleotide('C'), 1);
  EXPECT_EQ(encode_nucleotide('G'), 2);
  EXPECT_EQ(encode_nucleotide('T'), 3);
  EXPECT_EQ(encode_nucleotide('t'), 3);
  EXPECT_EQ(encode_nucleotide('N'), kNucleotideN);
  EXPECT_EQ(encode_nucleotide('R'), kNucleotideN);  // IUPAC ambiguity
  for (std::uint8_t c = 0; c < 4; ++c) {
    EXPECT_EQ(encode_nucleotide(decode_nucleotide(c)), c);
  }
}

TEST(NucleotideAlphabet, UracilReadsAsT) {
  EXPECT_EQ(encode_nucleotide('U'), 3);
}

TEST(NucleotideAlphabet, ComplementIsInvolution) {
  for (std::uint8_t c = 0; c < 4; ++c) {
    EXPECT_EQ(complement(complement(c)), c);
  }
  EXPECT_EQ(complement(kNucleotideN), kNucleotideN);
}

TEST(NucleotideAlphabet, ComplementPairs) {
  EXPECT_EQ(complement(encode_nucleotide('A')), encode_nucleotide('T'));
  EXPECT_EQ(complement(encode_nucleotide('C')), encode_nucleotide('G'));
}

TEST(EncodeStrings, ProteinString) {
  const auto encoded = encode_protein_string("ARN*");
  ASSERT_EQ(encoded.size(), 4u);
  EXPECT_EQ(encoded[0], 0);
  EXPECT_EQ(encoded[1], 1);
  EXPECT_EQ(encoded[2], 2);
  EXPECT_EQ(encoded[3], kStop);
}

TEST(EncodeStrings, DnaString) {
  const auto encoded = encode_dna_string("ACGTN");
  ASSERT_EQ(encoded.size(), 5u);
  EXPECT_EQ(encoded[4], kNucleotideN);
}

TEST(RobinsonFrequencies, SumToOne) {
  const auto& freq = robinson_frequencies();
  const double sum = std::accumulate(freq.begin(), freq.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-3);
  for (const double f : freq) EXPECT_GT(f, 0.0);
}

TEST(RobinsonFrequencies, LeucineMostCommon) {
  const auto& freq = robinson_frequencies();
  const Residue leu = encode_protein('L');
  for (std::size_t i = 0; i < freq.size(); ++i) {
    if (i != leu) EXPECT_GT(freq[leu], freq[i]);
  }
}

}  // namespace
}  // namespace psc::bio
