#include "bio/fasta.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace psc::bio {
namespace {

TEST(Fasta, ReadsSingleRecord) {
  std::istringstream in(">prot1 description here\nMKVLA\n");
  const SequenceBank bank = read_fasta(in, SequenceKind::kProtein);
  ASSERT_EQ(bank.size(), 1u);
  EXPECT_EQ(bank[0].id(), "prot1");
  EXPECT_EQ(bank[0].to_letters(), "MKVLA");
}

TEST(Fasta, ReadsMultilineResidues) {
  std::istringstream in(">p\nMKV\nLAR\nND\n");
  const SequenceBank bank = read_fasta(in, SequenceKind::kProtein);
  ASSERT_EQ(bank.size(), 1u);
  EXPECT_EQ(bank[0].to_letters(), "MKVLARND");
}

TEST(Fasta, ReadsMultipleRecords) {
  std::istringstream in(">a\nMK\n>b\nVL\n>c\nAR\n");
  const SequenceBank bank = read_fasta(in, SequenceKind::kProtein);
  ASSERT_EQ(bank.size(), 3u);
  EXPECT_EQ(bank[1].id(), "b");
  EXPECT_EQ(bank[2].to_letters(), "AR");
}

TEST(Fasta, SkipsBlankAndCommentLines) {
  std::istringstream in(">a\n\nMK\n;legacy comment\nVL\n");
  const SequenceBank bank = read_fasta(in, SequenceKind::kProtein);
  ASSERT_EQ(bank.size(), 1u);
  EXPECT_EQ(bank[0].to_letters(), "MKVL");
}

TEST(Fasta, HandlesWindowsLineEndings) {
  std::istringstream in(">a\r\nMK\r\n");
  const SequenceBank bank = read_fasta(in, SequenceKind::kProtein);
  ASSERT_EQ(bank.size(), 1u);
  EXPECT_EQ(bank[0].to_letters(), "MK");
}

TEST(Fasta, HandlesCrlfMultiRecordFiles) {
  std::istringstream in(">a desc\r\nMK\r\nVL\r\n\r\n>b\r\nAR\r\n");
  const SequenceBank bank = read_fasta(in, SequenceKind::kProtein);
  ASSERT_EQ(bank.size(), 2u);
  EXPECT_EQ(bank[0].id(), "a");
  EXPECT_EQ(bank[0].to_letters(), "MKVL");
  EXPECT_EQ(bank[1].to_letters(), "AR");
}

TEST(Fasta, HandlesClassicMacLineEndings) {
  std::istringstream in(">a\rMK\rVL\r>b\rAR\r");
  const SequenceBank bank = read_fasta(in, SequenceKind::kProtein);
  ASSERT_EQ(bank.size(), 2u);
  EXPECT_EQ(bank[0].to_letters(), "MKVL");
  EXPECT_EQ(bank[1].to_letters(), "AR");
}

TEST(Fasta, FinalRecordWithoutTrailingNewline) {
  std::istringstream in(">a\nMK\n>b\nVLAR");
  const SequenceBank bank = read_fasta(in, SequenceKind::kProtein);
  ASSERT_EQ(bank.size(), 2u);
  EXPECT_EQ(bank[1].id(), "b");
  EXPECT_EQ(bank[1].to_letters(), "VLAR");
}

TEST(Fasta, FinalCrlfRecordWithoutTrailingNewline) {
  std::istringstream in(">a\r\nMK\r\n>b\r\nVLAR");
  const SequenceBank bank = read_fasta(in, SequenceKind::kProtein);
  ASSERT_EQ(bank.size(), 2u);
  EXPECT_EQ(bank[1].to_letters(), "VLAR");
}

TEST(Fasta, HeaderOnlyFinalRecordWithoutNewline) {
  // A trailing header with no residues still creates an (empty) record.
  std::istringstream in(">a\nMK\n>empty");
  const SequenceBank bank = read_fasta(in, SequenceKind::kProtein);
  ASSERT_EQ(bank.size(), 2u);
  EXPECT_EQ(bank[1].id(), "empty");
  EXPECT_TRUE(bank[1].empty());
}

TEST(Fasta, MixedLineEndingsWithinOneFile) {
  std::istringstream in(">a\nMK\r\nVL\r>b\r\nAR");
  const SequenceBank bank = read_fasta(in, SequenceKind::kProtein);
  ASSERT_EQ(bank.size(), 2u);
  EXPECT_EQ(bank[0].to_letters(), "MKVL");
  EXPECT_EQ(bank[1].to_letters(), "AR");
}

TEST(Fasta, ResidueBeforeHeaderThrows) {
  std::istringstream in("MKVLA\n>late\nAR\n");
  EXPECT_THROW(read_fasta(in, SequenceKind::kProtein), std::runtime_error);
}

TEST(Fasta, EmptyStreamGivesEmptyBank) {
  std::istringstream in("");
  EXPECT_TRUE(read_fasta(in, SequenceKind::kProtein).empty());
}

TEST(Fasta, DnaKindEncodesNucleotides) {
  std::istringstream in(">g\nACGTN\n");
  const SequenceBank bank = read_fasta(in, SequenceKind::kDna);
  ASSERT_EQ(bank.size(), 1u);
  EXPECT_EQ(bank[0].kind(), SequenceKind::kDna);
  EXPECT_EQ(bank[0].to_letters(), "ACGTN");
}

TEST(Fasta, WriteReadRoundTrip) {
  SequenceBank bank(SequenceKind::kProtein);
  bank.add(Sequence::protein_from_letters("alpha", "MKVLARNDCQEGHILKMFPSTWYV"));
  bank.add(Sequence::protein_from_letters("beta", "AAAA"));

  std::ostringstream out;
  write_fasta(out, bank, 10);
  std::istringstream in(out.str());
  const SequenceBank round = read_fasta(in, SequenceKind::kProtein);
  ASSERT_EQ(round.size(), 2u);
  EXPECT_EQ(round[0].id(), "alpha");
  EXPECT_EQ(round[0].to_letters(), bank[0].to_letters());
  EXPECT_EQ(round[1].to_letters(), "AAAA");
}

TEST(Fasta, WrapsLinesAtWidth) {
  SequenceBank bank(SequenceKind::kProtein);
  bank.add(Sequence::protein_from_letters("p", "AAAAAAAAAAAA"));  // 12 aa
  std::ostringstream out;
  write_fasta(out, bank, 5);
  // Expect 3 residue lines: 5 + 5 + 2.
  EXPECT_EQ(out.str(), ">p\nAAAAA\nAAAAA\nAA\n");
}

TEST(Fasta, MissingFileThrows) {
  EXPECT_THROW(read_fasta_file("/nonexistent/path.fa", SequenceKind::kProtein),
               std::runtime_error);
}

TEST(Fasta, FileRoundTrip) {
  SequenceBank bank(SequenceKind::kProtein);
  bank.add(Sequence::protein_from_letters("p1", "MKVLARNDCQ"));
  bank.add(Sequence::protein_from_letters("p2", "WYVHGAST"));
  const std::string path =
      ::testing::TempDir() + "/psc_fasta_roundtrip_test.fa";
  write_fasta_file(path, bank);
  const SequenceBank loaded = read_fasta_file(path, SequenceKind::kProtein);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].id(), "p1");
  EXPECT_EQ(loaded[0].to_letters(), "MKVLARNDCQ");
  EXPECT_EQ(loaded[1].to_letters(), "WYVHGAST");
  std::remove(path.c_str());
}

TEST(Fasta, UnwritablePathThrows) {
  SequenceBank bank(SequenceKind::kProtein);
  EXPECT_THROW(write_fasta_file("/nonexistent-dir/x.fa", bank),
               std::runtime_error);
}

}  // namespace
}  // namespace psc::bio
