#include "bio/sequence.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace psc::bio {
namespace {

TEST(Sequence, ProteinFromLettersRoundTrips) {
  const Sequence seq = Sequence::protein_from_letters("p1", "MKVLA");
  EXPECT_EQ(seq.id(), "p1");
  EXPECT_EQ(seq.kind(), SequenceKind::kProtein);
  EXPECT_EQ(seq.size(), 5u);
  EXPECT_EQ(seq.to_letters(), "MKVLA");
}

TEST(Sequence, DnaFromLettersRoundTrips) {
  const Sequence seq = Sequence::dna_from_letters("d1", "ACGTACGT");
  EXPECT_EQ(seq.kind(), SequenceKind::kDna);
  EXPECT_EQ(seq.to_letters(), "ACGTACGT");
}

TEST(Sequence, EmptySequence) {
  const Sequence seq = Sequence::protein_from_letters("empty", "");
  EXPECT_TRUE(seq.empty());
  EXPECT_EQ(seq.to_letters(), "");
}

TEST(Sequence, SubsequenceExtractsRange) {
  const Sequence seq = Sequence::protein_from_letters("p", "ARNDCQ");
  const Sequence sub = seq.subsequence(2, 3);
  EXPECT_EQ(sub.to_letters(), "NDC");
  EXPECT_EQ(sub.kind(), SequenceKind::kProtein);
}

TEST(Sequence, SubsequenceClampsAtEnd) {
  const Sequence seq = Sequence::protein_from_letters("p", "ARND");
  EXPECT_EQ(seq.subsequence(2, 100).to_letters(), "ND");
}

TEST(Sequence, SubsequenceOutOfRangeThrows) {
  const Sequence seq = Sequence::protein_from_letters("p", "AR");
  EXPECT_THROW(seq.subsequence(3, 1), std::out_of_range);
}

TEST(SequenceBank, TracksTotals) {
  SequenceBank bank(SequenceKind::kProtein);
  EXPECT_TRUE(bank.empty());
  bank.add(Sequence::protein_from_letters("a", "ARN"));
  bank.add(Sequence::protein_from_letters("b", "ARNDCQE"));
  EXPECT_EQ(bank.size(), 2u);
  EXPECT_EQ(bank.total_residues(), 10u);
  EXPECT_EQ(bank.max_length(), 7u);
}

TEST(SequenceBank, AddReturnsIndex) {
  SequenceBank bank(SequenceKind::kProtein);
  EXPECT_EQ(bank.add(Sequence::protein_from_letters("a", "M")), 0u);
  EXPECT_EQ(bank.add(Sequence::protein_from_letters("b", "M")), 1u);
  EXPECT_EQ(bank[1].id(), "b");
}

TEST(SequenceBank, KindMismatchThrows) {
  SequenceBank bank(SequenceKind::kProtein);
  EXPECT_THROW(bank.add(Sequence::dna_from_letters("d", "ACGT")),
               std::invalid_argument);
}

TEST(SequenceBank, IterationVisitsAll) {
  SequenceBank bank(SequenceKind::kDna);
  bank.add(Sequence::dna_from_letters("a", "AC"));
  bank.add(Sequence::dna_from_letters("b", "GT"));
  std::size_t count = 0;
  for (const Sequence& seq : bank) {
    EXPECT_FALSE(seq.empty());
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

}  // namespace
}  // namespace psc::bio
