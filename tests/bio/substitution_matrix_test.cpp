#include "bio/substitution_matrix.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace psc::bio {
namespace {

TEST(Blosum62, KnownDiagonalValues) {
  const auto& m = SubstitutionMatrix::blosum62();
  EXPECT_EQ(m.score(encode_protein('W'), encode_protein('W')), 11);
  EXPECT_EQ(m.score(encode_protein('C'), encode_protein('C')), 9);
  EXPECT_EQ(m.score(encode_protein('A'), encode_protein('A')), 4);
  EXPECT_EQ(m.score(encode_protein('L'), encode_protein('L')), 4);
}

TEST(Blosum62, KnownOffDiagonalValues) {
  const auto& m = SubstitutionMatrix::blosum62();
  EXPECT_EQ(m.score(encode_protein('A'), encode_protein('R')), -1);
  EXPECT_EQ(m.score(encode_protein('I'), encode_protein('L')), 2);
  EXPECT_EQ(m.score(encode_protein('W'), encode_protein('G')), -2);
  EXPECT_EQ(m.score(encode_protein('D'), encode_protein('E')), 2);
  EXPECT_EQ(m.score(encode_protein('K'), encode_protein('R')), 2);
}

TEST(Blosum62, IsSymmetric) {
  const auto& m = SubstitutionMatrix::blosum62();
  for (Residue a = 0; a < kProteinAlphabetSize; ++a) {
    for (Residue b = 0; b < kProteinAlphabetSize; ++b) {
      EXPECT_EQ(m.score(a, b), m.score(b, a)) << int(a) << "," << int(b);
    }
  }
}

TEST(Blosum62, DiagonalDominatesRow) {
  // Every residue scores at least as high against itself as against any
  // other standard residue.
  const auto& m = SubstitutionMatrix::blosum62();
  for (Residue a = 0; a < kNumAminoAcids; ++a) {
    for (Residue b = 0; b < kNumAminoAcids; ++b) {
      EXPECT_GE(m.score(a, a), m.score(a, b));
    }
  }
}

TEST(Blosum62, ScoreRange) {
  const auto& m = SubstitutionMatrix::blosum62();
  EXPECT_EQ(m.min_score(), -4);
  EXPECT_EQ(m.max_score(), 11);
}

TEST(Blosum62, StopPenalized) {
  const auto& m = SubstitutionMatrix::blosum62();
  EXPECT_EQ(m.score(kStop, encode_protein('A')), -4);
  EXPECT_EQ(m.score(kStop, kStop), 1);
}

TEST(Blosum62, OutOfRangeCodesScoreAsX) {
  const auto& m = SubstitutionMatrix::blosum62();
  EXPECT_EQ(m.score(200, encode_protein('A')),
            m.score(kUnknownX, encode_protein('A')));
}

TEST(IdentityMatrix, MatchMismatch) {
  const SubstitutionMatrix m = SubstitutionMatrix::identity(2, -3);
  EXPECT_EQ(m.score(0, 0), 2);
  EXPECT_EQ(m.score(0, 1), -3);
  EXPECT_EQ(m.name(), "identity");
}

TEST(SetScore, UpdatesCell) {
  SubstitutionMatrix m = SubstitutionMatrix::identity();
  m.set_score(1, 2, 7);
  EXPECT_EQ(m.score(1, 2), 7);
  EXPECT_EQ(m.score(2, 1), -1);  // set_score is directional
}

TEST(SetScore, OutOfRangeThrows) {
  SubstitutionMatrix m = SubstitutionMatrix::identity();
  EXPECT_THROW(m.set_score(kProteinAlphabetSize, 0, 1), std::out_of_range);
}

TEST(FromStream, ParsesNcbiFormat) {
  std::istringstream in(
      "# comment line\n"
      "   A  R  N\n"
      "A  4 -1 -2\n"
      "R -1  5  0\n"
      "N -2  0  6\n");
  const SubstitutionMatrix m = SubstitutionMatrix::from_stream(in, "mini");
  EXPECT_EQ(m.name(), "mini");
  EXPECT_EQ(m.score(encode_protein('A'), encode_protein('A')), 4);
  EXPECT_EQ(m.score(encode_protein('R'), encode_protein('N')), 0);
  EXPECT_EQ(m.score(encode_protein('N'), encode_protein('N')), 6);
}

TEST(FromStream, RowWidthMismatchThrows) {
  std::istringstream in(
      "   A  R\n"
      "A  4\n");
  EXPECT_THROW(SubstitutionMatrix::from_stream(in, "bad"), std::runtime_error);
}

TEST(FromStream, EmptyStreamThrows) {
  std::istringstream in("# only comments\n");
  EXPECT_THROW(SubstitutionMatrix::from_stream(in, "bad"), std::runtime_error);
}

TEST(FromStream, RoundTripsBlosum62Subset) {
  // Serialize a few BLOSUM62 rows and re-parse them.
  const auto& original = SubstitutionMatrix::blosum62();
  std::ostringstream out;
  const std::string letters = "ARNDC";
  out << "  ";
  for (char c : letters) out << ' ' << c;
  out << '\n';
  for (char row : letters) {
    out << row;
    for (char col : letters) {
      out << ' '
          << original.score(encode_protein(row), encode_protein(col));
    }
    out << '\n';
  }
  std::istringstream in(out.str());
  const SubstitutionMatrix parsed =
      SubstitutionMatrix::from_stream(in, "b62-subset");
  for (char row : letters) {
    for (char col : letters) {
      EXPECT_EQ(parsed.score(encode_protein(row), encode_protein(col)),
                original.score(encode_protein(row), encode_protein(col)));
    }
  }
}

}  // namespace
}  // namespace psc::bio
