#include "bio/translate.hpp"

#include <gtest/gtest.h>

#include "bio/genetic_code.hpp"

namespace psc::bio {
namespace {

TEST(Translate, ForwardFrame1) {
  // ATG AAA TGG -> M K W
  const Sequence dna = Sequence::dna_from_letters("g", "ATGAAATGG");
  const TranslatedFrame frame = translate_frame(dna, 1);
  EXPECT_EQ(frame.protein.to_letters(), "MKW");
}

TEST(Translate, ForwardFrame2And3Shift) {
  const Sequence dna = Sequence::dna_from_letters("g", "AATGAAATGG");
  EXPECT_EQ(translate_frame(dna, 2).protein.to_letters(), "MKW");
  const Sequence dna3 = Sequence::dna_from_letters("g", "AAATGAAATGG");
  EXPECT_EQ(translate_frame(dna3, 3).protein.to_letters(), "MKW");
}

TEST(Translate, ReverseFrame1IsReverseComplement) {
  // Reverse complement of "ATGAAATGG" is "CCATTTCAT" -> P F H ... check:
  // CCA=P TTT=F CAT=H
  const Sequence dna = Sequence::dna_from_letters("g", "ATGAAATGG");
  EXPECT_EQ(translate_frame(dna, -1).protein.to_letters(), "PFH");
}

TEST(Translate, StopCodonsEncodedAsStop) {
  const Sequence dna = Sequence::dna_from_letters("g", "ATGTAAATG");
  EXPECT_EQ(translate_frame(dna, 1).protein.to_letters(), "M*M");
}

TEST(Translate, AmbiguousNucleotideGivesX) {
  const Sequence dna = Sequence::dna_from_letters("g", "ATGANATGG");
  EXPECT_EQ(translate_frame(dna, 1).protein.to_letters(), "MXW");
}

TEST(Translate, ShortSequenceGivesEmptyFrame) {
  const Sequence dna = Sequence::dna_from_letters("g", "AT");
  EXPECT_TRUE(translate_frame(dna, 1).protein.empty());
  EXPECT_TRUE(translate_frame(dna, -3).protein.empty());
}

TEST(Translate, SixFramesProduced) {
  const Sequence dna = Sequence::dna_from_letters("g", "ATGAAATGGCCC");
  const auto frames = translate_six_frames(dna);
  ASSERT_EQ(frames.size(), 6u);
  EXPECT_EQ(frames[0].frame, 1);
  EXPECT_EQ(frames[3].frame, -1);
  // Frame lengths: floor((12-shift)/3).
  EXPECT_EQ(frames[0].protein.size(), 4u);
  EXPECT_EQ(frames[1].protein.size(), 3u);
  EXPECT_EQ(frames[2].protein.size(), 3u);
}

TEST(Translate, InvalidFrameThrows) {
  const Sequence dna = Sequence::dna_from_letters("g", "ATGAAA");
  EXPECT_THROW(translate_frame(dna, 0), std::invalid_argument);
  EXPECT_THROW(translate_frame(dna, 4), std::invalid_argument);
  EXPECT_THROW(translate_frame(dna, -4), std::invalid_argument);
}

TEST(Translate, ProteinInputThrows) {
  const Sequence protein = Sequence::protein_from_letters("p", "MKV");
  EXPECT_THROW(translate_frame(protein, 1), std::invalid_argument);
}

TEST(Translate, GenomePositionForwardFrames) {
  const Sequence dna = Sequence::dna_from_letters("g", "ATGAAATGGCCC");
  const auto f1 = translate_frame(dna, 1);
  EXPECT_EQ(f1.genome_position(0, dna.size()), 0);
  EXPECT_EQ(f1.genome_position(2, dna.size()), 6);
  const auto f2 = translate_frame(dna, 2);
  EXPECT_EQ(f2.genome_position(0, dna.size()), 1);
}

TEST(Translate, GenomePositionReverseFrames) {
  const Sequence dna = Sequence::dna_from_letters("g", "ATGAAATGGCCC");
  const auto r1 = translate_frame(dna, -1);
  // Residue 0 of frame -1 comes from the last codon's leftmost base.
  EXPECT_EQ(r1.genome_position(0, dna.size()), 9);
  EXPECT_EQ(r1.genome_position(1, dna.size()), 6);
  const auto r2 = translate_frame(dna, -2);
  EXPECT_EQ(r2.genome_position(0, dna.size()), 8);
}

TEST(Translate, ReverseTranslationConsistency) {
  // Translating the reverse frame must equal translating the explicit
  // reverse complement in the matching forward frame.
  const Sequence dna = Sequence::dna_from_letters("g", "ACGTTGCAATGCGGCTA");
  std::string rc;
  const std::string letters = dna.to_letters();
  for (auto it = letters.rbegin(); it != letters.rend(); ++it) {
    rc.push_back(decode_nucleotide(complement(encode_nucleotide(*it))));
  }
  const Sequence rc_dna = Sequence::dna_from_letters("rc", rc);
  EXPECT_EQ(translate_frame(dna, -1).protein.to_letters(),
            translate_frame(rc_dna, 1).protein.to_letters());
  EXPECT_EQ(translate_frame(dna, -2).protein.to_letters(),
            translate_frame(rc_dna, 2).protein.to_letters());
  EXPECT_EQ(translate_frame(dna, -3).protein.to_letters(),
            translate_frame(rc_dna, 3).protein.to_letters());
}

TEST(FramesToBank, SplitsAtStops) {
  // Frame 1: MKW * MKW -> two fragments of 3 with min_length 3.
  const Sequence dna =
      Sequence::dna_from_letters("g", "ATGAAATGGTAAATGAAATGG");
  const auto frames = translate_six_frames(dna);
  const SequenceBank bank = frames_to_bank({frames[0]}, 3);
  ASSERT_EQ(bank.size(), 2u);
  EXPECT_EQ(bank[0].to_letters(), "MKW");
  EXPECT_EQ(bank[1].to_letters(), "MKW");
}

TEST(FramesToBank, DropsShortFragments) {
  const Sequence dna =
      Sequence::dna_from_letters("g", "ATGAAATGGTAAATGAAATGG");
  const auto frames = translate_six_frames(dna);
  const SequenceBank bank = frames_to_bank({frames[0]}, 4);
  EXPECT_EQ(bank.size(), 0u);
}

TEST(FramesToBankMapped, ForwardCoordinates) {
  const Sequence dna =
      Sequence::dna_from_letters("g", "ATGAAATGGTAAATGAAATGG");
  const auto frames = translate_six_frames(dna);
  std::vector<FrameFragment> fragments;
  const SequenceBank bank =
      frames_to_bank_mapped({frames[0]}, dna.size(), 3, fragments);
  ASSERT_EQ(bank.size(), 2u);
  ASSERT_EQ(fragments.size(), 2u);
  EXPECT_EQ(fragments[0].genome_begin, 0u);
  EXPECT_EQ(fragments[0].genome_end, 9u);
  EXPECT_EQ(fragments[1].genome_begin, 12u);
  EXPECT_EQ(fragments[1].genome_end, 21u);
  EXPECT_EQ(fragments[0].frame, 1);
  EXPECT_EQ(fragments[0].length, 3u);
}

TEST(FramesToBankMapped, ReverseCoordinatesCoverCodons) {
  const Sequence dna = Sequence::dna_from_letters("g", "ATGAAATGGCCC");
  const auto frames = translate_six_frames(dna);
  std::vector<FrameFragment> fragments;
  const SequenceBank bank =
      frames_to_bank_mapped({frames[3]}, dna.size(), 2, fragments);
  ASSERT_GE(bank.size(), 1u);
  // The whole -1 frame (no stops expected in "GGGCCATTTCAT"): covers all
  // 12 nucleotides.
  EXPECT_EQ(fragments[0].genome_begin, 0u);
  EXPECT_EQ(fragments[0].genome_end, 12u);
}

}  // namespace
}  // namespace psc::bio
