// Property tests for the vectorized step-3 kernel layer: bit-for-bit
// equivalence of the scalar, portable, and AVX2 gapped kernels over
// random and homologous pairs, band widths, X-drop thresholds and gap
// cost grids, plus crafted overflow cases that must trip the 16-bit
// saturation fallback.
#include "align/gapped_simd.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "align/banded.hpp"
#include "sim/mutation.hpp"
#include "sim/protein_generator.hpp"
#include "util/rng.hpp"

namespace psc::align {
namespace {

std::vector<std::uint8_t> random_protein(std::size_t length,
                                         util::Xoshiro256& rng) {
  std::vector<std::uint8_t> out(length);
  for (auto& r : out) {
    r = static_cast<std::uint8_t>(rng.bounded(20));  // real amino acids
  }
  return out;
}

std::vector<std::uint8_t> residues(const bio::Sequence& seq) {
  return {seq.residues().begin(), seq.residues().end()};
}

/// Scalar vs portable vs AVX2 (when the CPU has it) for both kernels.
void expect_kernels_agree(const std::vector<std::uint8_t>& a,
                          const std::vector<std::uint8_t>& b,
                          const bio::SubstitutionMatrix& matrix,
                          const GapParams& params, const std::string& label) {
  ASSERT_TRUE(gapped_simd_applicable(matrix, params)) << label;
  const GappedSimdMatrix rows(matrix);

  const HalfExtension scalar = xdrop_gapped_half(a, b, matrix, params);
  const auto portable = xdrop_gapped_half_portable(a, b, rows, params);
  ASSERT_TRUE(portable.has_value()) << label;
  EXPECT_EQ(scalar.score, portable->score) << label;
  EXPECT_EQ(scalar.end0, portable->end0) << label;
  EXPECT_EQ(scalar.end1, portable->end1) << label;
  if (gapped_avx2_available()) {
    const auto avx2 = xdrop_gapped_half_avx2(a, b, rows, params);
    ASSERT_TRUE(avx2.has_value()) << label;
    EXPECT_EQ(scalar.score, avx2->score) << label;
    EXPECT_EQ(scalar.end0, avx2->end0) << label;
    EXPECT_EQ(scalar.end1, avx2->end1) << label;
  }

  for (const std::size_t band : {std::size_t{0}, std::size_t{1}, std::size_t{4},
                                 std::size_t{16}, std::size_t{100}}) {
    const int scalar_banded = banded_window_score(a, b, band, params, matrix);
    const auto portable_banded =
        banded_window_score_portable(a, b, band, params, rows);
    ASSERT_TRUE(portable_banded.has_value()) << label << " band=" << band;
    EXPECT_EQ(scalar_banded, *portable_banded) << label << " band=" << band;
    if (gapped_avx2_available()) {
      const auto avx2_banded =
          banded_window_score_avx2(a, b, band, params, rows);
      ASSERT_TRUE(avx2_banded.has_value()) << label << " band=" << band;
      EXPECT_EQ(scalar_banded, *avx2_banded) << label << " band=" << band;
    }
  }
}

TEST(GappedSimd, RandomPairsAgreeAcrossParameterGrid) {
  const auto& matrix = bio::SubstitutionMatrix::blosum62();
  util::Xoshiro256 rng(7);
  for (const std::size_t len0 : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                 std::size_t{64}, std::size_t{300}}) {
    for (const std::size_t len1 :
         {std::size_t{0}, std::size_t{5}, std::size_t{64}, std::size_t{300}}) {
      const auto a = random_protein(len0, rng);
      const auto b = random_protein(len1, rng);
      for (const int x_drop : {5, 38, 200}) {
        for (const auto& [open, extend] :
             std::vector<std::pair<int, int>>{{11, 1}, {5, 2}, {0, 1}}) {
          GapParams params;
          params.open = open;
          params.extend = extend;
          params.x_drop = x_drop;
          expect_kernels_agree(a, b, matrix, params,
                               "len0=" + std::to_string(len0) +
                                   " len1=" + std::to_string(len1) +
                                   " x=" + std::to_string(x_drop) +
                                   " open=" + std::to_string(open));
        }
      }
    }
  }
}

TEST(GappedSimd, HomologousPairsAgree) {
  // Mutated copies give long high-scoring extensions with real gaps --
  // the path shape the X-drop band actually follows in the pipeline.
  util::Xoshiro256 rng(13);
  const auto& matrix = bio::SubstitutionMatrix::blosum62();
  for (int trial = 0; trial < 6; ++trial) {
    const bio::Sequence base =
        sim::generate_protein("p", 150 + rng.bounded(200), rng);
    sim::MutationConfig divergence;
    divergence.substitution_rate = 0.05 + 0.05 * static_cast<double>(trial);
    divergence.indel_rate = 0.01;
    const bio::Sequence mutated = sim::mutate_protein(base, divergence, rng);
    GapParams params;  // BLOSUM62 defaults
    expect_kernels_agree(residues(base), residues(mutated), matrix, params,
                         "homologous trial=" + std::to_string(trial));
    GapParams wide = params;
    wide.x_drop = 500;
    expect_kernels_agree(residues(base), residues(mutated), matrix, wide,
                         "homologous wide trial=" + std::to_string(trial));
  }
}

TEST(GappedSimd, OverflowTripsFallbackAndStaysExact) {
  // ~3100 tryptophans self-aligned score 11 per column under BLOSUM62:
  // past +32k, so the 16-bit tiers must refuse (nullopt) rather than
  // saturate, and the extender must transparently re-run scalar.
  const auto& matrix = bio::SubstitutionMatrix::blosum62();
  const std::vector<std::uint8_t> w(
      3100, bio::Sequence::protein_from_letters("w", "W").residues()[0]);
  GapParams params;
  params.x_drop = 28000;  // keep the whole band alive to the end
  ASSERT_TRUE(gapped_simd_applicable(matrix, params));
  const GappedSimdMatrix rows(matrix);

  EXPECT_FALSE(xdrop_gapped_half_portable(w, w, rows, params).has_value());
  EXPECT_FALSE(banded_window_score_portable(w, w, 4, params, rows).has_value());
  if (gapped_avx2_available()) {
    EXPECT_FALSE(xdrop_gapped_half_avx2(w, w, rows, params).has_value());
    EXPECT_FALSE(banded_window_score_avx2(w, w, 4, params, rows).has_value());
  }

  const HalfExtension scalar = xdrop_gapped_half(w, w, matrix, params);
  EXPECT_GT(scalar.score, 32767);
  for (const GappedKernel kernel :
       {GappedKernel::kPortable, GappedKernel::kAvx2, GappedKernel::kAuto}) {
    const GappedExtender extender(matrix, params, kernel);
    const HalfExtension half = extender.half(w, w);
    EXPECT_EQ(scalar.score, half.score) << gapped_kernel_name(kernel);
    EXPECT_EQ(scalar.end0, half.end0) << gapped_kernel_name(kernel);
    EXPECT_EQ(scalar.end1, half.end1) << gapped_kernel_name(kernel);
    EXPECT_EQ(banded_window_score(w, w, 4, params, matrix),
              extender.banded_window(w, w, 4))
        << gapped_kernel_name(kernel);
  }
}

TEST(GappedSimd, NearOverflowScoresStayExact) {
  // Scores just under the guard must be produced by the SIMD tiers
  // themselves (no fallback): ~2900 * 11 = 31900 < 32767 - 256 is past
  // the guard... use 2800 -> 30800, inside the guarded range.
  const auto& matrix = bio::SubstitutionMatrix::blosum62();
  const std::vector<std::uint8_t> w(
      2800, bio::Sequence::protein_from_letters("w", "W").residues()[0]);
  GapParams params;
  params.x_drop = 28000;
  const GappedSimdMatrix rows(matrix);
  const HalfExtension scalar = xdrop_gapped_half(w, w, matrix, params);
  ASSERT_LT(scalar.score, 32767 - 256);
  const auto portable = xdrop_gapped_half_portable(w, w, rows, params);
  ASSERT_TRUE(portable.has_value());
  EXPECT_EQ(scalar.score, portable->score);
  if (gapped_avx2_available()) {
    const auto avx2 = xdrop_gapped_half_avx2(w, w, rows, params);
    ASSERT_TRUE(avx2.has_value());
    EXPECT_EQ(scalar.score, avx2->score);
  }
}

TEST(GappedSimd, ExtendMatchesScalarIncludingTraceback) {
  util::Xoshiro256 rng(29);
  const auto& matrix = bio::SubstitutionMatrix::blosum62();
  const GapParams params;
  for (int trial = 0; trial < 5; ++trial) {
    const bio::Sequence base = sim::generate_protein("p", 220, rng);
    sim::MutationConfig divergence;
    divergence.substitution_rate = 0.1;
    divergence.indel_rate = 0.02;
    const bio::Sequence mutated = sim::mutate_protein(base, divergence, rng);
    const auto s0 = residues(base);
    const auto s1 = residues(mutated);
    const std::size_t anchor = 80 + rng.bounded(40);
    if (anchor + 4 > std::min(s0.size(), s1.size())) continue;
    for (const bool with_traceback : {false, true}) {
      const Alignment scalar = xdrop_gapped_extend(s0, s1, anchor, anchor, 4,
                                                   matrix, params,
                                                   with_traceback);
      for (const GappedKernel kernel :
           {GappedKernel::kScalar, GappedKernel::kPortable,
            GappedKernel::kAvx2, GappedKernel::kAuto}) {
        const GappedExtender extender(matrix, params, kernel);
        const Alignment got =
            extender.extend(s0, s1, anchor, anchor, 4, with_traceback);
        const std::string label = std::string(gapped_kernel_name(kernel)) +
                                  " trial=" + std::to_string(trial) +
                                  " tb=" + std::to_string(with_traceback);
        EXPECT_EQ(scalar.score, got.score) << label;
        EXPECT_EQ(scalar.begin0, got.begin0) << label;
        EXPECT_EQ(scalar.begin1, got.begin1) << label;
        EXPECT_EQ(scalar.end0, got.end0) << label;
        EXPECT_EQ(scalar.end1, got.end1) << label;
        EXPECT_EQ(scalar.ops, got.ops) << label;
      }
    }
  }
}

TEST(GappedSimd, ResolutionNamesAndApplicability) {
  const auto& blosum = bio::SubstitutionMatrix::blosum62();
  const GapParams defaults;
  EXPECT_TRUE(gapped_simd_applicable(blosum, defaults));
  EXPECT_EQ(resolve_gapped_kernel(GappedKernel::kScalar, blosum, defaults),
            GappedKernel::kScalar);
  const GappedKernel resolved =
      resolve_gapped_kernel(GappedKernel::kAuto, blosum, defaults);
  EXPECT_NE(resolved, GappedKernel::kAuto);
  EXPECT_NE(resolved, GappedKernel::kScalar);
  if (gapped_avx2_available()) {
    EXPECT_EQ(resolved, GappedKernel::kAvx2);
  } else {
    EXPECT_EQ(resolved, GappedKernel::kPortable);
  }

  GapParams negative_open = defaults;
  negative_open.open = -1;
  EXPECT_FALSE(gapped_simd_applicable(blosum, negative_open));
  EXPECT_EQ(resolve_gapped_kernel(GappedKernel::kAvx2, blosum, negative_open),
            GappedKernel::kScalar);
  GapParams huge_xdrop = defaults;
  huge_xdrop.x_drop = 30000;
  EXPECT_FALSE(gapped_simd_applicable(blosum, huge_xdrop));
  bio::SubstitutionMatrix wide = bio::SubstitutionMatrix::identity(1, -1);
  wide.set_score(0, 0, 200);
  EXPECT_FALSE(gapped_simd_applicable(wide, defaults));

  for (const GappedKernel kernel :
       {GappedKernel::kAuto, GappedKernel::kScalar, GappedKernel::kPortable,
        GappedKernel::kAvx2}) {
    const auto parsed = parse_gapped_kernel(gapped_kernel_name(kernel));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kernel);
  }
  EXPECT_FALSE(parse_gapped_kernel("fpga").has_value());
}

}  // namespace
}  // namespace psc::align
