#include "align/karlin.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace psc::align {
namespace {

TEST(SolveKarlin, Blosum62LambdaMatchesPublishedValue) {
  const KarlinParams params = solve_karlin(bio::SubstitutionMatrix::blosum62());
  // NCBI reports ungapped lambda = 0.3176 for BLOSUM62 with Robinson
  // frequencies.
  EXPECT_NEAR(params.lambda, 0.3176, 0.01);
}

TEST(SolveKarlin, Blosum62EntropyMatchesPublishedValue) {
  const KarlinParams params = solve_karlin(bio::SubstitutionMatrix::blosum62());
  EXPECT_NEAR(params.h, 0.40, 0.05);
}

TEST(SolveKarlin, LambdaSatisfiesDefiningEquation) {
  const KarlinParams params = solve_karlin(bio::SubstitutionMatrix::blosum62());
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const auto& freq = bio::robinson_frequencies();
  double phi = 0.0;
  for (std::size_t i = 0; i < bio::kNumAminoAcids; ++i) {
    for (std::size_t j = 0; j < bio::kNumAminoAcids; ++j) {
      phi += freq[i] * freq[j] *
             std::exp(params.lambda *
                      m.score(static_cast<bio::Residue>(i),
                              static_cast<bio::Residue>(j)));
    }
  }
  EXPECT_NEAR(phi, 1.0, 1e-6);
}

TEST(SolveKarlin, PositiveExpectedScoreThrows) {
  const bio::SubstitutionMatrix all_match = bio::SubstitutionMatrix::identity(1, 1);
  EXPECT_THROW(solve_karlin(all_match), std::invalid_argument);
}

TEST(SolveKarlin, NoPositiveScoreThrows) {
  const bio::SubstitutionMatrix all_bad = bio::SubstitutionMatrix::identity(-1, -2);
  EXPECT_THROW(solve_karlin(all_bad), std::invalid_argument);
}

TEST(SolveKarlin, IdentityMatrixHasClosedFormLambda) {
  // For match +1 / mismatch -1 with uniform-ish frequencies the root is
  // ln((1-p)/p ... ) -- just check monotone sanity: a stronger match score
  // gives a smaller lambda.
  const KarlinParams weak = solve_karlin(bio::SubstitutionMatrix::identity(1, -2));
  const KarlinParams strong = solve_karlin(bio::SubstitutionMatrix::identity(3, -2));
  EXPECT_GT(weak.lambda, strong.lambda);
}

TEST(Presets, PublishedConstants) {
  const KarlinParams u = blosum62_ungapped();
  EXPECT_DOUBLE_EQ(u.lambda, 0.3176);
  EXPECT_DOUBLE_EQ(u.k, 0.134);
  const KarlinParams g = blosum62_gapped_11_1();
  EXPECT_DOUBLE_EQ(g.lambda, 0.267);
  EXPECT_DOUBLE_EQ(g.k, 0.041);
}

TEST(BitScore, KnownConversion) {
  const KarlinParams g = blosum62_gapped_11_1();
  // bits = (0.267 * 100 - ln 0.041) / ln 2 = (26.7 + 3.194) / 0.693.
  EXPECT_NEAR(bit_score(100, g), 43.1, 0.2);
}

TEST(EValue, DecreasesWithScore) {
  const KarlinParams g = blosum62_gapped_11_1();
  const double e1 = e_value(50, 300, 1e6, g);
  const double e2 = e_value(60, 300, 1e6, g);
  EXPECT_GT(e1, e2);
  EXPECT_GT(e2, 0.0);
}

TEST(EValue, ScalesLinearlyWithSearchSpace) {
  const KarlinParams g = blosum62_gapped_11_1();
  const double e1 = e_value(50, 300, 1e6, g);
  const double e2 = e_value(50, 300, 2e6, g);
  EXPECT_NEAR(e2 / e1, 2.0, 1e-9);
}

TEST(ScoreForEValue, InvertsEValue) {
  const KarlinParams g = blosum62_gapped_11_1();
  const int score = score_for_e_value(1e-3, 300, 1e6, g);
  EXPECT_LE(e_value(score, 300, 1e6, g), 1e-3);
  EXPECT_GT(e_value(score - 1, 300, 1e6, g), 1e-3);
}

TEST(ScoreForEValue, NonPositiveTargetThrows) {
  EXPECT_THROW(score_for_e_value(0.0, 1, 1, blosum62_gapped_11_1()),
               std::invalid_argument);
}

TEST(ResidueFrequencies, CountsStandardResidues) {
  const std::vector<std::uint8_t> seq = {0, 0, 1, 2};  // A A R N
  const auto freq = residue_frequencies(seq);
  EXPECT_DOUBLE_EQ(freq[0], 0.5);
  EXPECT_DOUBLE_EQ(freq[1], 0.25);
  EXPECT_DOUBLE_EQ(freq[2], 0.25);
  EXPECT_DOUBLE_EQ(freq[3], 0.0);
}

TEST(ResidueFrequencies, IgnoresNonStandard) {
  const std::vector<std::uint8_t> seq = {0, bio::kUnknownX, bio::kStop, 0};
  const auto freq = residue_frequencies(seq);
  EXPECT_DOUBLE_EQ(freq[0], 1.0);
}

TEST(ResidueFrequencies, EmptyFallsBackToBackground) {
  const auto freq = residue_frequencies({});
  EXPECT_EQ(freq, bio::robinson_frequencies());
}

TEST(CompositionAdjusted, BackgroundCompositionKeepsLambda) {
  // A long query with near-background composition must get (almost) the
  // base lambda back.
  std::vector<std::uint8_t> query;
  const auto& background = bio::robinson_frequencies();
  for (std::uint8_t r = 0; r < bio::kNumAminoAcids; ++r) {
    const auto copies = static_cast<std::size_t>(background[r] * 10000);
    query.insert(query.end(), copies, r);
  }
  const KarlinParams base = blosum62_gapped_11_1();
  const KarlinParams adjusted = composition_adjusted(
      query, bio::SubstitutionMatrix::blosum62(), base);
  EXPECT_NEAR(adjusted.lambda, base.lambda, 0.01);
  EXPECT_DOUBLE_EQ(adjusted.k, base.k);
}

TEST(CompositionAdjusted, BiasedCompositionLowersLambda) {
  // An alanine-enriched (low-complexity) query self-aligns with inflated
  // raw scores; composition statistics compensate with a smaller lambda
  // (scores are worth less). Background + 30% extra alanine.
  std::vector<std::uint8_t> query;
  const auto& background = bio::robinson_frequencies();
  for (std::uint8_t r = 0; r < bio::kNumAminoAcids; ++r) {
    const auto copies = static_cast<std::size_t>(background[r] * 10000);
    query.insert(query.end(), copies, r);
  }
  query.insert(query.end(), 3000, bio::encode_protein('A'));
  const KarlinParams base = blosum62_gapped_11_1();
  const KarlinParams adjusted = composition_adjusted(
      query, bio::SubstitutionMatrix::blosum62(), base);
  EXPECT_LT(adjusted.lambda, base.lambda - 0.02);
}

TEST(CompositionAdjusted, ExtremeBiasFallsBackToBase) {
  // All-alanine: the expected pair score turns positive, no lambda root
  // exists, and the adjustment must fall back to the base parameters.
  std::vector<std::uint8_t> query(500, bio::encode_protein('A'));
  const KarlinParams base = blosum62_gapped_11_1();
  const KarlinParams adjusted = composition_adjusted(
      query, bio::SubstitutionMatrix::blosum62(), base);
  EXPECT_DOUBLE_EQ(adjusted.lambda, base.lambda);
}

TEST(CompositionAdjusted, DegenerateInputFallsBack) {
  // All-X query: frequencies fall back to background; lambda ~ base.
  std::vector<std::uint8_t> query(100, bio::kUnknownX);
  const KarlinParams base = blosum62_gapped_11_1();
  const KarlinParams adjusted = composition_adjusted(
      query, bio::SubstitutionMatrix::blosum62(), base);
  EXPECT_NEAR(adjusted.lambda, base.lambda, 0.01);
}

}  // namespace
}  // namespace psc::align
