#include "align/gapped.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace psc::align {
namespace {

std::vector<std::uint8_t> encode(const std::string& letters) {
  std::vector<std::uint8_t> out;
  for (const char c : letters) out.push_back(bio::encode_protein(c));
  return out;
}

int self_score(const std::vector<std::uint8_t>& s,
               const bio::SubstitutionMatrix& m) {
  int total = 0;
  for (const auto r : s) total += m.score(r, r);
  return total;
}

TEST(SmithWaterman, IdenticalSequences) {
  const auto s = encode("MKVLARNDCQ");
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const Alignment a = smith_waterman(s, s, m, GapParams{});
  EXPECT_EQ(a.score, self_score(s, m));
  EXPECT_EQ(a.begin0, 0u);
  EXPECT_EQ(a.end0, s.size());
  EXPECT_EQ(a.ops.size(), s.size());
  for (const Op op : a.ops) EXPECT_EQ(op, Op::kMatch);
  EXPECT_DOUBLE_EQ(a.identity(s, s), 1.0);
}

TEST(SmithWaterman, FindsLocalCore) {
  // Unrelated flanks around a strong shared core.
  const auto a = encode("GGGG" "MKVLARNDCQ" "GGGG");
  const auto b = encode("PPPP" "MKVLARNDCQ" "PPPP");
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const Alignment alignment = smith_waterman(a, b, m, GapParams{});
  const auto core = encode("MKVLARNDCQ");
  EXPECT_EQ(alignment.score, self_score(core, m));
  EXPECT_EQ(alignment.begin0, 4u);
  EXPECT_EQ(alignment.end0, 14u);
  EXPECT_EQ(alignment.begin1, 4u);
  EXPECT_EQ(alignment.end1, 14u);
}

TEST(SmithWaterman, IntroducesGapWhenWorthIt) {
  // b equals a with three residues deleted from the middle; affine cost
  // open+3*ext = 14 is far less than losing the second half.
  const auto a = encode("MKVLARNDCQEGHILKMFPSTWYV");
  auto b_letters = std::string("MKVLARNDCQ") + "LKMFPSTWYV";  // drop "EGHI"?
  const auto b = encode(b_letters);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const Alignment alignment = smith_waterman(a, b, m, GapParams{});
  std::size_t inserts = 0;
  for (const Op op : alignment.ops) inserts += op == Op::kInsert0 ? 1 : 0;
  EXPECT_EQ(inserts, 4u);  // the EGHI deletion
  EXPECT_GT(alignment.score,
            self_score(encode("MKVLARNDCQ"), m));
}

TEST(SmithWaterman, NoPositivePairGivesEmptyAlignment) {
  const auto a = encode("GGGG");
  const auto b = encode("WWWW");
  const Alignment alignment =
      smith_waterman(a, b, bio::SubstitutionMatrix::blosum62(), GapParams{});
  EXPECT_EQ(alignment.score, 0);
  EXPECT_TRUE(alignment.ops.empty());
}

TEST(SmithWaterman, RenderShowsGapsAndMidline) {
  const auto a = encode("MKVLAR");
  const auto b = encode("MKAR");
  const auto& m = bio::SubstitutionMatrix::blosum62();
  GapParams cheap;
  cheap.open = 2;
  cheap.extend = 1;
  const Alignment alignment = smith_waterman(a, b, m, cheap);
  const auto rows = alignment.render(a, b);
  EXPECT_EQ(rows[0].size(), rows[1].size());
  EXPECT_EQ(rows[1].size(), rows[2].size());
  // Row 2 must contain the gap dashes for the VL deletion.
  EXPECT_NE(rows[2].find('-'), std::string::npos);
}

TEST(XdropGappedHalf, EmptyInputsScoreZero) {
  const auto s = encode("MKVL");
  const std::vector<std::uint8_t> empty;
  const auto& m = bio::SubstitutionMatrix::blosum62();
  EXPECT_EQ(xdrop_gapped_half(empty, s, m, GapParams{}).score, 0);
  EXPECT_EQ(xdrop_gapped_half(s, empty, m, GapParams{}).score, 0);
}

TEST(XdropGappedHalf, PerfectPrefixConsumesAll) {
  const auto s = encode("MKVLARNDCQ");
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const HalfExtension half = xdrop_gapped_half(s, s, m, GapParams{});
  EXPECT_EQ(half.score, self_score(s, m));
  EXPECT_EQ(half.end0, s.size());
  EXPECT_EQ(half.end1, s.size());
}

TEST(XdropGappedHalf, StopsAtHostileTail) {
  const auto a = encode("MKVLAR" "GGGGGGGGGG");
  const auto b = encode("MKVLAR" "WWWWWWWWWW");
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const HalfExtension half = xdrop_gapped_half(a, b, m, GapParams{});
  EXPECT_EQ(half.end0, 6u);
  EXPECT_EQ(half.score, self_score(encode("MKVLAR"), m));
}

TEST(XdropGappedHalf, BridgesGapInPrefix) {
  // b has 2 extra residues inserted after a matching prefix; the half
  // extension should gap over them and keep extending.
  const auto a = encode("MKVLARNDCQEG");
  const auto b = encode("MKVLAR" "PP" "NDCQEG");
  const auto& m = bio::SubstitutionMatrix::blosum62();
  GapParams params;
  params.x_drop = 30;
  const HalfExtension half = xdrop_gapped_half(a, b, m, params);
  EXPECT_EQ(half.end0, a.size());
  EXPECT_EQ(half.end1, b.size());
  const int expected =
      self_score(a, m) - (params.open + 2 * params.extend);
  EXPECT_EQ(half.score, expected);
}

TEST(XdropGappedExtend, AnchoredOnSharedCore) {
  const auto a = encode("GGGGGG" "MKVLARNDCQ" "GGGGGG");
  const auto b = encode("PPP" "MKVLARNDCQ" "PP");
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const Alignment alignment =
      xdrop_gapped_extend(a, b, 6, 3, 4, m, GapParams{});
  const auto core = encode("MKVLARNDCQ");
  EXPECT_EQ(alignment.score, self_score(core, m));
  EXPECT_EQ(alignment.begin0, 6u);
  EXPECT_EQ(alignment.end0, 16u);
}

TEST(XdropGappedExtend, TracebackMatchesScore) {
  const auto a = encode("GGGMKVLARNDCQEGHIKWWW");
  const auto b = encode("TTMKVLARPPNDCQEGHIKSS");
  const auto& m = bio::SubstitutionMatrix::blosum62();
  GapParams params;
  params.x_drop = 40;
  const Alignment plain = xdrop_gapped_extend(a, b, 3, 2, 4, m, params, false);
  const Alignment traced = xdrop_gapped_extend(a, b, 3, 2, 4, m, params, true);
  EXPECT_GE(traced.score, plain.score);
  EXPECT_FALSE(traced.ops.empty());

  // Re-score the traced ops by hand; must equal the reported score.
  int rescore = 0;
  std::size_t i = traced.begin0;
  std::size_t j = traced.begin1;
  bool in_gap0 = false;
  bool in_gap1 = false;
  for (const Op op : traced.ops) {
    switch (op) {
      case Op::kMatch:
        rescore += m.score(a[i++], b[j++]);
        in_gap0 = in_gap1 = false;
        break;
      case Op::kInsert0:
        rescore -= in_gap0 ? params.extend : params.open + params.extend;
        in_gap0 = true;
        in_gap1 = false;
        ++i;
        break;
      case Op::kInsert1:
        rescore -= in_gap1 ? params.extend : params.open + params.extend;
        in_gap1 = true;
        in_gap0 = false;
        ++j;
        break;
    }
  }
  EXPECT_EQ(i, traced.end0);
  EXPECT_EQ(j, traced.end1);
  EXPECT_EQ(rescore, traced.score);
}

TEST(XdropGappedExtend, AnchorOutsideThrows) {
  const auto s = encode("MKVL");
  EXPECT_THROW(xdrop_gapped_extend(s, s, 2, 2, 4,
                                   bio::SubstitutionMatrix::blosum62(),
                                   GapParams{}),
               std::out_of_range);
}

TEST(XdropGappedExtend, AtLeastUngappedDiagonalScore) {
  // Property: gapped extension score >= the pure-diagonal score from the
  // same anchor, on random homologous-ish sequences.
  util::Xoshiro256 rng(99);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint8_t> a(60);
    for (auto& r : a) r = static_cast<std::uint8_t>(rng.bounded(20));
    std::vector<std::uint8_t> b = a;
    for (int k = 0; k < 10; ++k) {
      b[rng.bounded(b.size())] = static_cast<std::uint8_t>(rng.bounded(20));
    }
    const Alignment gapped =
        xdrop_gapped_extend(a, b, 30, 30, 4, m, GapParams{});
    int diag = 0, run = 0;
    for (std::size_t k = 0; k < a.size(); ++k) {
      run += m.score(a[k], b[k]);
      if (run < 0) run = 0;
      diag = std::max(diag, run);
    }
    // The gapped search explores a superset of diagonal-only paths from
    // the anchor; allow equality with the anchored-diagonal score.
    int anchored_diag = 0;
    {
      int best_l = 0, s = 0;
      for (std::size_t k = 30; k-- > 0;) {
        s += m.score(a[k], b[k]);
        best_l = std::max(best_l, s);
      }
      int best_r = 0;
      s = 0;
      for (std::size_t k = 34; k < a.size(); ++k) {
        s += m.score(a[k], b[k]);
        best_r = std::max(best_r, s);
      }
      int seed = 0;
      for (std::size_t k = 30; k < 34; ++k) seed += m.score(a[k], b[k]);
      anchored_diag = best_l + seed + best_r;
    }
    EXPECT_GE(gapped.score, anchored_diag);
  }
}

class GapParamSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GapParamSweep, HigherPenaltiesNeverRaiseScore) {
  const auto [open, extend] = GetParam();
  const auto a = encode("MKVLARNDCQEGHIKMFPST");
  const auto b = encode("MKVLAPPRNDCQEGHIKMFPST");
  const auto& m = bio::SubstitutionMatrix::blosum62();
  GapParams loose;
  loose.open = open;
  loose.extend = extend;
  loose.x_drop = 50;
  GapParams tight = loose;
  tight.open += 5;
  const Alignment cheap = xdrop_gapped_extend(a, b, 0, 0, 4, m, loose);
  const Alignment costly = xdrop_gapped_extend(a, b, 0, 0, 4, m, tight);
  EXPECT_GE(cheap.score, costly.score);
}

INSTANTIATE_TEST_SUITE_P(Penalties, GapParamSweep,
                         ::testing::Values(std::make_pair(5, 1),
                                           std::make_pair(8, 2),
                                           std::make_pair(11, 1),
                                           std::make_pair(15, 3)));

}  // namespace
}  // namespace psc::align
