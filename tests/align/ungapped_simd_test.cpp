// Property tests for the vectorized step-2 kernel layer: the score
// profile, the striped window transpose, and bit-for-bit equivalence of
// the scalar, blocked, and SIMD kernels across X-padding, boundary
// flanks, all-negative and saturation-adjacent configurations.
#include "align/ungapped_simd.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "align/ungapped.hpp"
#include "sim/protein_generator.hpp"
#include "util/rng.hpp"

namespace psc::align {
namespace {

/// Runs every kernel implementation over (one, batch) and asserts the
/// scores agree bit-for-bit with the scalar reference.
void expect_all_kernels_agree(const index::WindowBatch& one,
                              const index::WindowBatch& batch,
                              const bio::SubstitutionMatrix& m,
                              const char* label) {
  std::vector<int> scalar, blocked, portable, dispatched;
  ungapped_score_one_vs_many(one.window(0), batch, m, scalar);
  ungapped_score_one_vs_many_blocked(one.window(0), batch, m, blocked);

  ScoreProfile profile;
  profile.build(one.window(0), m);
  index::StripedWindows striped;
  striped.assign(batch);
  ungapped_score_profile_vs_striped_portable(profile, striped, portable);
  ungapped_score_profile_vs_striped(profile, striped, dispatched);

  EXPECT_EQ(scalar, blocked) << label;
  EXPECT_EQ(scalar, portable) << label;
  EXPECT_EQ(scalar, dispatched) << label;
  if (ungapped_avx2_available()) {
    std::vector<int> avx2;
    ungapped_score_profile_vs_striped_avx2(profile, striped, avx2);
    EXPECT_EQ(scalar, avx2) << label;
  }
}

TEST(ScoreProfile, RowsMatchMatrixWithXPaddedColumns) {
  const auto& m = bio::SubstitutionMatrix::blosum62();
  util::Xoshiro256 rng(3);
  std::vector<std::uint8_t> window(17);
  for (auto& r : window) {
    r = static_cast<std::uint8_t>(rng.bounded(bio::kProteinAlphabetSize));
  }
  ScoreProfile profile;
  profile.build(window, m);
  ASSERT_EQ(profile.length(), window.size());
  for (std::size_t k = 0; k < window.size(); ++k) {
    const std::int8_t* row = profile.row(k);
    for (std::size_t c = 0; c < bio::kProteinAlphabetSize; ++c) {
      EXPECT_EQ(row[c], m.score(window[k], static_cast<bio::Residue>(c)));
    }
    for (std::size_t c = bio::kProteinAlphabetSize; c < ScoreProfile::kStride;
         ++c) {
      EXPECT_EQ(row[c], m.score(window[k], bio::kUnknownX));
    }
  }
}

TEST(ScoreProfile, RepresentabilityBounds) {
  EXPECT_TRUE(ScoreProfile::representable(bio::SubstitutionMatrix::blosum62()));
  EXPECT_TRUE(
      ScoreProfile::representable(bio::SubstitutionMatrix::identity(127, -128)));
  bio::SubstitutionMatrix wide = bio::SubstitutionMatrix::identity(1, -1);
  wide.set_score(0, 0, 200);
  EXPECT_FALSE(ScoreProfile::representable(wide));
  ScoreProfile profile;
  const std::vector<std::uint8_t> window(4, 0);
  EXPECT_THROW(profile.build(window, wide), std::invalid_argument);
}

TEST(StripedWindows, TransposesAndPadsWithX) {
  util::Xoshiro256 rng(11);
  const index::WindowShape shape{4, 3};
  bio::SequenceBank bank(bio::SequenceKind::kProtein);
  bank.add(sim::generate_protein("p", 80, rng));
  index::WindowBatch batch(shape.length());
  for (std::uint32_t i = 0; i < 5; ++i) {
    batch.append(bank, index::Occurrence{0, 3 + 7 * i}, shape);
  }
  index::StripedWindows striped;
  striped.assign(batch);
  EXPECT_EQ(striped.size(), batch.size());
  EXPECT_EQ(striped.window_length(), batch.window_length());
  EXPECT_EQ(striped.padded_size() % index::StripedWindows::kLaneWidth, 0u);
  EXPECT_GE(striped.padded_size(), striped.size());
  for (std::size_t k = 0; k < striped.window_length(); ++k) {
    const std::uint8_t* position = striped.position(k);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(position[i], batch.window(i)[k]) << "k=" << k << " i=" << i;
    }
    for (std::size_t i = batch.size(); i < striped.padded_size(); ++i) {
      EXPECT_EQ(position[i], bio::kUnknownX);
    }
  }
}

TEST(UngappedSimd, EmptyBatchYieldsNoScores) {
  const auto& m = bio::SubstitutionMatrix::blosum62();
  index::WindowBatch batch(8);
  index::StripedWindows striped;
  striped.assign(batch);
  ScoreProfile profile;
  profile.build(std::vector<std::uint8_t>(8, 0), m);
  std::vector<int> scores{1, 2, 3};
  ungapped_score_profile_vs_striped(profile, striped, scores);
  EXPECT_TRUE(scores.empty());
}

TEST(UngappedSimd, LengthMismatchThrows) {
  const auto& m = bio::SubstitutionMatrix::blosum62();
  index::WindowBatch batch(8);
  index::StripedWindows striped;
  striped.assign(batch);
  ScoreProfile profile;
  profile.build(std::vector<std::uint8_t>(10, 0), m);
  std::vector<int> scores;
  EXPECT_THROW(ungapped_score_profile_vs_striped(profile, striped, scores),
               std::invalid_argument);
}

TEST(UngappedSimd, RandomWindowsWithBoundaryFlanksAgree) {
  // Occurrences near both sequence ends produce X-padded flanks; batch
  // sizes straddle the 16-lane groups so padded lanes are exercised.
  util::Xoshiro256 rng(21);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t flank = 2 + rng.bounded(30);
    const index::WindowShape shape{4, flank};
    bio::SequenceBank bank(bio::SequenceKind::kProtein);
    const std::size_t seq_len = shape.length() + 40;
    bank.add(sim::generate_protein("p", seq_len, rng));
    const std::size_t count = 1 + rng.bounded(40);
    index::WindowBatch batch(shape.length());
    for (std::size_t i = 0; i < count; ++i) {
      // Offsets 0 and end-of-sequence force maximal X padding.
      const std::uint32_t offset =
          i % 3 == 0 ? 0
                     : static_cast<std::uint32_t>(rng.bounded(seq_len - 1));
      batch.append(bank, index::Occurrence{0, offset}, shape);
    }
    index::WindowBatch one(shape.length());
    one.append(bank, index::Occurrence{0, static_cast<std::uint32_t>(
                                              rng.bounded(seq_len - 1))},
               shape);
    expect_all_kernels_agree(one, batch, m, "boundary flanks");
  }
}

TEST(UngappedSimd, AllNegativeWindowsScoreZero) {
  // Tryptophan vs glycine scores -2 under BLOSUM62 at every position: the
  // running maximum never leaves zero in any lane.
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const index::WindowShape shape{4, 6};
  bio::SequenceBank bank(bio::SequenceKind::kProtein);
  bank.add(bio::Sequence::protein_from_letters("w", std::string(64, 'W')));
  bank.add(bio::Sequence::protein_from_letters("g", std::string(64, 'G')));
  index::WindowBatch one(shape.length());
  one.append(bank, index::Occurrence{0, 20}, shape);
  index::WindowBatch batch(shape.length());
  for (std::uint32_t i = 0; i < 19; ++i) {
    batch.append(bank, index::Occurrence{1, 10 + i}, shape);
  }
  expect_all_kernels_agree(one, batch, m, "all negative");

  ScoreProfile profile;
  profile.build(one.window(0), m);
  index::StripedWindows striped;
  striped.assign(batch);
  std::vector<int> scores;
  ungapped_score_profile_vs_striped(profile, striped, scores);
  for (const int s : scores) EXPECT_EQ(s, 0);
}

TEST(UngappedSimd, SaturationAdjacentScoresStayExact) {
  // match=+100 over a 300-residue identical window peaks at 30000 --
  // within 10% of int16 saturation; all kernels must still agree exactly.
  const bio::SubstitutionMatrix m = bio::SubstitutionMatrix::identity(100, -100);
  const std::size_t len = 300;
  ASSERT_TRUE(simd_kernel_applicable(m, len));
  const index::WindowShape shape{4, (len - 4) / 2};
  bio::SequenceBank bank(bio::SequenceKind::kProtein);
  util::Xoshiro256 rng(5);
  bank.add(sim::generate_protein("p", 2 * len, rng));
  index::WindowBatch one(shape.length());
  one.append(bank, index::Occurrence{0, len}, shape);
  index::WindowBatch batch(shape.length());
  batch.append(bank, index::Occurrence{0, len}, shape);  // identical: peak
  for (std::uint32_t i = 0; i < 17; ++i) {
    batch.append(bank, index::Occurrence{0, 30 + 11 * i}, shape);
  }
  expect_all_kernels_agree(one, batch, m, "saturation adjacent");

  ScoreProfile profile;
  profile.build(one.window(0), m);
  index::StripedWindows striped;
  striped.assign(batch);
  std::vector<int> scores;
  ungapped_score_profile_vs_striped(profile, striped, scores);
  EXPECT_EQ(scores[0], 100 * static_cast<int>(len));
}

TEST(UngappedSimd, ApplicabilityGuardsSaturationAndProfileRange) {
  const auto& blosum = bio::SubstitutionMatrix::blosum62();
  EXPECT_TRUE(simd_kernel_applicable(blosum, 64));
  // 64-residue windows under BLOSUM62 peak at 704 << 32767.
  EXPECT_FALSE(simd_kernel_applicable(
      bio::SubstitutionMatrix::identity(120, -120), 300));  // 36000 > 32767
  bio::SubstitutionMatrix wide = bio::SubstitutionMatrix::identity(1, -1);
  wide.set_score(0, 0, 200);
  EXPECT_FALSE(simd_kernel_applicable(wide, 4));
}

TEST(UngappedSimd, KernelResolutionAndNames) {
  const auto& blosum = bio::SubstitutionMatrix::blosum62();
  EXPECT_EQ(resolve_ungapped_kernel(UngappedKernel::kAuto, blosum, 64),
            UngappedKernel::kSimd);
  EXPECT_EQ(resolve_ungapped_kernel(UngappedKernel::kScalar, blosum, 64),
            UngappedKernel::kScalar);
  EXPECT_EQ(resolve_ungapped_kernel(UngappedKernel::kBlocked, blosum, 64),
            UngappedKernel::kBlocked);
  const bio::SubstitutionMatrix hot = bio::SubstitutionMatrix::identity(120, -120);
  EXPECT_EQ(resolve_ungapped_kernel(UngappedKernel::kSimd, hot, 300),
            UngappedKernel::kBlocked);

  for (const UngappedKernel kernel :
       {UngappedKernel::kAuto, UngappedKernel::kScalar, UngappedKernel::kBlocked,
        UngappedKernel::kSimd}) {
    const auto parsed = parse_ungapped_kernel(ungapped_kernel_name(kernel));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kernel);
  }
  EXPECT_FALSE(parse_ungapped_kernel("fpga").has_value());
}

TEST(CpuFeatures, TierIsConsistentWithFeatures) {
  const SimdTier tier = best_simd_tier();
  EXPECT_STRNE(simd_tier_name(tier), "unknown");
  if (ungapped_avx2_available()) {
    EXPECT_EQ(tier, SimdTier::kAvx2);
  } else {
    EXPECT_NE(tier, SimdTier::kAvx2);
  }
}

}  // namespace
}  // namespace psc::align
