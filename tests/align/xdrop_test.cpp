#include "align/xdrop.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace psc::align {
namespace {

std::vector<std::uint8_t> encode(const std::string& letters) {
  std::vector<std::uint8_t> out;
  for (const char c : letters) out.push_back(bio::encode_protein(c));
  return out;
}

TEST(XdropUngapped, PerfectMatchExtendsFully) {
  const auto s = encode("MKVLARNDCQ");
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const UngappedExtension ext =
      xdrop_ungapped_extend(s, s, 3, 3, 3, m, 20);
  EXPECT_EQ(ext.begin0, 0u);
  EXPECT_EQ(ext.end0, s.size());
  EXPECT_EQ(ext.begin1, 0u);
  EXPECT_EQ(ext.end1, s.size());
  int full = 0;
  for (const auto r : s) full += m.score(r, r);
  EXPECT_EQ(ext.score, full);
}

TEST(XdropUngapped, SeedOnlyWhenFlanksHostile) {
  const auto a = encode("GGGGMKVLGGGG");
  const auto b = encode("WWWWMKVLWWWW");
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const UngappedExtension ext = xdrop_ungapped_extend(a, b, 4, 4, 4, m, 100);
  // G/W scores -2; extensions only lose. Best is the seed alone.
  EXPECT_EQ(ext.begin0, 4u);
  EXPECT_EQ(ext.end0, 8u);
  int seed = 0;
  for (int i = 0; i < 4; ++i) seed += m.score(a[4 + i], b[4 + i]);
  EXPECT_EQ(ext.score, seed);
}

TEST(XdropUngapped, StopsAfterXDropExceeded) {
  // Good seed, then a long bad stretch, then a great region. With a small
  // X-drop the extension must stop before the far region.
  const auto a = encode("MKVL" "GGGGGGGG" "WWWWWWWW");
  const auto b = encode("MKVL" "WWWWWWWW" "WWWWWWWW");
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const UngappedExtension small_x = xdrop_ungapped_extend(a, b, 0, 0, 4, m, 5);
  EXPECT_EQ(small_x.end0, 4u);  // never crosses the G/W desert
  const UngappedExtension big_x = xdrop_ungapped_extend(a, b, 0, 0, 4, m, 100);
  EXPECT_GT(big_x.end0, 12u);  // large X-drop tunnels through
  EXPECT_GT(big_x.score, small_x.score);
}

TEST(XdropUngapped, AsymmetricPositions) {
  const auto a = encode("AAAMKVLAR");
  const auto b = encode("MKVLAR");
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const UngappedExtension ext = xdrop_ungapped_extend(a, b, 3, 0, 4, m, 20);
  EXPECT_EQ(ext.begin0, 3u);
  EXPECT_EQ(ext.begin1, 0u);
  EXPECT_EQ(ext.end0, 9u);
  EXPECT_EQ(ext.end1, 6u);
}

TEST(XdropUngapped, SeedOutsideThrows) {
  const auto s = encode("MKVL");
  EXPECT_THROW(xdrop_ungapped_extend(s, s, 2, 2, 4,
                                     bio::SubstitutionMatrix::blosum62(), 10),
               std::out_of_range);
}

TEST(XdropUngapped, ScoreNeverBelowSeedScore) {
  util::Xoshiro256 rng(4242);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> a(40), b(40);
    for (auto& r : a) r = static_cast<std::uint8_t>(rng.bounded(20));
    for (auto& r : b) r = static_cast<std::uint8_t>(rng.bounded(20));
    const std::size_t pos = 10 + rng.bounded(15);
    const UngappedExtension ext =
        xdrop_ungapped_extend(a, b, pos, pos, 4, m, 12);
    int seed = 0;
    for (int i = 0; i < 4; ++i) {
      seed += m.score(a[pos + static_cast<std::size_t>(i)],
                      b[pos + static_cast<std::size_t>(i)]);
    }
    EXPECT_GE(ext.score, seed);
    EXPECT_LE(ext.begin0, pos);
    EXPECT_GE(ext.end0, pos + 4);
    EXPECT_EQ(ext.end0 - ext.begin0, ext.end1 - ext.begin1);
  }
}

}  // namespace
}  // namespace psc::align
