#include "align/ungapped.hpp"

#include <gtest/gtest.h>

#include "sim/protein_generator.hpp"
#include "util/rng.hpp"

namespace psc::align {
namespace {

std::vector<std::uint8_t> encode(const char* letters) {
  std::vector<std::uint8_t> out;
  for (const char* p = letters; *p; ++p) out.push_back(bio::encode_protein(*p));
  return out;
}

TEST(UngappedWindowScore, IdenticalWindowsSumDiagonal) {
  const auto s = encode("MKVLAR");
  const auto& m = bio::SubstitutionMatrix::blosum62();
  int expected = 0;
  for (const auto r : s) expected += m.score(r, r);
  EXPECT_EQ(ungapped_window_score(s, s, m), expected);
}

TEST(UngappedWindowScore, EmptyWindowsScoreZero) {
  const std::vector<std::uint8_t> empty;
  EXPECT_EQ(ungapped_window_score(empty, empty,
                                  bio::SubstitutionMatrix::blosum62()),
            0);
}

TEST(UngappedWindowScore, AllMismatchScoresZero) {
  // 1D Smith-Waterman never goes below zero.
  const auto a = encode("WWWWWW");
  const auto b = encode("GGGGGG");
  EXPECT_EQ(ungapped_window_score(a, b, bio::SubstitutionMatrix::blosum62()),
            0);
}

TEST(UngappedWindowScore, FindsBestInternalSegment) {
  const bio::SubstitutionMatrix m = bio::SubstitutionMatrix::identity(2, -5);
  // match, mismatch, match match match, mismatch -> best run = 3 matches.
  const auto a = encode("ARNDCQ");
  const auto b = encode("AWNDCW");
  EXPECT_EQ(ungapped_window_score(a, b, m), 6);
}

TEST(UngappedWindowScore, SegmentCanSpanSmallDips) {
  const bio::SubstitutionMatrix m = bio::SubstitutionMatrix::identity(3, -1);
  // match mismatch match: 3 - 1 + 3 = 5 beats either single match.
  const auto a = encode("AWA");
  const auto b = encode("AGA");
  EXPECT_EQ(ungapped_window_score(a, b, m), 5);
}

TEST(UngappedWindowScore, UsesShorterLength) {
  const auto a = encode("MKVLAR");
  const auto b = encode("MKV");
  const auto& m = bio::SubstitutionMatrix::blosum62();
  int expected = 0;
  for (std::size_t i = 0; i < 3; ++i) expected += m.score(a[i], a[i]);
  EXPECT_EQ(ungapped_window_score(a, b, m), expected);
}

TEST(UngappedWindowScore, PaddingXCannotHelp) {
  // Appending X padding to both windows never raises the score.
  const auto a = encode("MKVLAR");
  const auto b = encode("MKVWAR");
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const int base = ungapped_window_score(a, b, m);
  auto ax = a;
  auto bx = b;
  for (int i = 0; i < 10; ++i) {
    ax.push_back(bio::kUnknownX);
    bx.push_back(bio::kUnknownX);
  }
  EXPECT_EQ(ungapped_window_score(ax, bx, m), base);
}

TEST(UngappedOneVsMany, MatchesScalarKernel) {
  util::Xoshiro256 rng(5);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const index::WindowShape shape{4, 6};

  bio::SequenceBank bank(bio::SequenceKind::kProtein);
  bank.add(sim::generate_protein("a", 60, rng));
  bank.add(sim::generate_protein("b", 60, rng));

  index::WindowBatch batch(shape.length());
  for (std::uint32_t pos = 0; pos + shape.seed_width < 50; pos += 7) {
    batch.append(bank, index::Occurrence{1, pos}, shape);
  }
  index::WindowBatch one(shape.length());
  one.append(bank, index::Occurrence{0, 20}, shape);

  std::vector<int> scores;
  ungapped_score_one_vs_many(one.window(0), batch, m, scores);
  ASSERT_EQ(scores.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(scores[i], ungapped_window_score(one.window(0), batch.window(i), m));
  }
}

TEST(UngappedOneVsMany, LengthMismatchThrows) {
  index::WindowBatch batch(8);
  std::vector<std::uint8_t> window(10, 0);
  std::vector<int> scores;
  EXPECT_THROW(ungapped_score_one_vs_many(
                   window, batch, bio::SubstitutionMatrix::blosum62(), scores),
               std::invalid_argument);
}

TEST(UngappedAllPairs, EmitsOnlyAboveThreshold) {
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const index::WindowShape shape{4, 2};
  bio::SequenceBank bank(bio::SequenceKind::kProtein);
  bank.add(bio::Sequence::protein_from_letters("a", "MKVLARND"));
  bank.add(bio::Sequence::protein_from_letters("b", "MKVLARND"));
  bank.add(bio::Sequence::protein_from_letters("c", "GGGGGGGG"));

  index::WindowBatch batch0(shape.length());
  batch0.append(bank, index::Occurrence{0, 2}, shape);
  index::WindowBatch batch1(shape.length());
  batch1.append(bank, index::Occurrence{1, 2}, shape);
  batch1.append(bank, index::Occurrence{2, 2}, shape);

  std::vector<std::tuple<std::size_t, std::size_t, int>> emitted;
  ungapped_score_all_pairs(batch0, batch1, m, 20,
                           [&](std::size_t i0, std::size_t i1, int score) {
                             emitted.emplace_back(i0, i1, score);
                           });
  ASSERT_EQ(emitted.size(), 1u);  // only the identical window passes
  EXPECT_EQ(std::get<1>(emitted[0]), 0u);
  EXPECT_GE(std::get<2>(emitted[0]), 20);
}

TEST(UngappedAllPairs, AgreesWithScalarOnRandomData) {
  util::Xoshiro256 rng(77);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const index::WindowShape shape{4, 8};

  bio::SequenceBank bank(bio::SequenceKind::kProtein);
  bank.add(sim::generate_protein("x", 100, rng));

  index::WindowBatch batch0(shape.length());
  index::WindowBatch batch1(shape.length());
  for (std::uint32_t pos = 0; pos < 60; pos += 11) {
    batch0.append(bank, index::Occurrence{0, pos}, shape);
    batch1.append(bank, index::Occurrence{0, pos + 13}, shape);
  }

  std::size_t pairs = 0;
  ungapped_score_all_pairs(
      batch0, batch1, m, -1000,
      [&](std::size_t i0, std::size_t i1, int score) {
        EXPECT_EQ(score,
                  ungapped_window_score(batch0.window(i0), batch1.window(i1), m));
        ++pairs;
      });
  EXPECT_EQ(pairs, batch0.size() * batch1.size());
}

TEST(UngappedBlocked, MatchesScalarOnAllBatchSizes) {
  // Batch sizes straddling the 4-wide block: remainder handling matters.
  util::Xoshiro256 rng(8);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const index::WindowShape shape{4, 6};
  bio::SequenceBank bank(bio::SequenceKind::kProtein);
  bank.add(sim::generate_protein("pool", 600, rng));
  index::WindowBatch one(shape.length());
  one.append(bank, index::Occurrence{0, 100}, shape);

  for (const std::size_t count : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 17u}) {
    index::WindowBatch batch(shape.length());
    for (std::uint32_t i = 0; i < count; ++i) {
      batch.append(bank, index::Occurrence{0, 10 + 9 * i}, shape);
    }
    std::vector<int> scalar, blocked;
    ungapped_score_one_vs_many(one.window(0), batch, m, scalar);
    ungapped_score_one_vs_many_blocked(one.window(0), batch, m, blocked);
    EXPECT_EQ(scalar, blocked) << "batch size " << count;
  }
}

TEST(UngappedBlocked, LengthMismatchThrows) {
  index::WindowBatch batch(8);
  std::vector<std::uint8_t> window(10, 0);
  std::vector<int> scores;
  EXPECT_THROW(
      ungapped_score_one_vs_many_blocked(
          window, batch, bio::SubstitutionMatrix::blosum62(), scores),
      std::invalid_argument);
}

TEST(UngappedBlocked, RandomizedEquivalenceSweep) {
  util::Xoshiro256 rng(9);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t len = 8 + 2 * rng.bounded(48);  // even: flanks split
    index::WindowBatch batch(len);
    bio::SequenceBank bank(bio::SequenceKind::kProtein);
    bank.add(sim::generate_protein("p", len + 400, rng));
    const std::size_t count = 1 + rng.bounded(12);
    const index::WindowShape shape{4, (len - 4) / 2};
    for (std::uint32_t i = 0; i < count; ++i) {
      batch.append(
          bank,
          index::Occurrence{0, static_cast<std::uint32_t>(rng.bounded(300))},
          shape);
    }
    index::WindowBatch one(len);
    one.append(bank, index::Occurrence{0, 200}, shape);
    std::vector<int> scalar, blocked;
    ungapped_score_one_vs_many(one.window(0), batch, m, scalar);
    ungapped_score_one_vs_many_blocked(one.window(0), batch, m, blocked);
    EXPECT_EQ(scalar, blocked);
  }
}

/// Property sweep: the kernel equals a brute-force best-contiguous-segment
/// search over random windows for several window lengths.
class UngappedProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(UngappedProperty, EqualsBruteForceSegmentMax) {
  const std::size_t length = GetParam();
  util::Xoshiro256 rng(1000 + length);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<std::uint8_t> a(length);
    std::vector<std::uint8_t> b(length);
    for (auto& r : a) r = static_cast<std::uint8_t>(rng.bounded(20));
    for (auto& r : b) r = static_cast<std::uint8_t>(rng.bounded(20));

    int brute = 0;
    for (std::size_t lo = 0; lo < length; ++lo) {
      int sum = 0;
      for (std::size_t hi = lo; hi < length; ++hi) {
        sum += m.score(a[hi], b[hi]);
        brute = std::max(brute, sum);
      }
    }
    EXPECT_EQ(ungapped_window_score(a, b, m), brute);
  }
}

INSTANTIATE_TEST_SUITE_P(WindowLengths, UngappedProperty,
                         ::testing::Values(1, 2, 7, 16, 33, 64, 101));

}  // namespace
}  // namespace psc::align
