#include "align/banded.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace psc::align {
namespace {

std::vector<std::uint8_t> encode(const std::string& letters) {
  std::vector<std::uint8_t> out;
  for (const char c : letters) out.push_back(bio::encode_protein(c));
  return out;
}

int self_score(const std::vector<std::uint8_t>& s,
               const bio::SubstitutionMatrix& m) {
  int total = 0;
  for (const auto r : s) total += m.score(r, r);
  return total;
}

TEST(BandedWindowScore, IdenticalWindows) {
  const auto s = encode("MKVLARNDCQ");
  const auto& m = bio::SubstitutionMatrix::blosum62();
  EXPECT_EQ(banded_window_score(s, s, 4, GapParams{}, m), self_score(s, m));
}

TEST(BandedWindowScore, EmptyWindowsScoreZero) {
  const std::vector<std::uint8_t> empty;
  const auto s = encode("MKVL");
  const auto& m = bio::SubstitutionMatrix::blosum62();
  EXPECT_EQ(banded_window_score(empty, s, 4, GapParams{}, m), 0);
  EXPECT_EQ(banded_window_score(s, empty, 4, GapParams{}, m), 0);
}

TEST(BandedWindowScore, UnrelatedWindowsScoreZero) {
  const auto a = encode("GGGGGGGG");
  const auto b = encode("WWWWWWWW");
  const auto& m = bio::SubstitutionMatrix::blosum62();
  EXPECT_EQ(banded_window_score(a, b, 3, GapParams{}, m), 0);
}

TEST(BandedWindowScore, EqualsFullSmithWatermanWhenBandCoversMatrix) {
  util::Xoshiro256 rng(21);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const GapParams params;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint8_t> a(30), b(30);
    for (auto& r : a) r = static_cast<std::uint8_t>(rng.bounded(20));
    std::vector<std::uint8_t> base = a;
    for (int k = 0; k < 8; ++k) {
      base[rng.bounded(base.size())] =
          static_cast<std::uint8_t>(rng.bounded(20));
    }
    b = base;
    const Alignment full = smith_waterman(a, b, m, params);
    EXPECT_EQ(banded_window_score(a, b, 30, params, m), full.score);
  }
}

TEST(BandedWindowScore, GapInsideBandIsBridged) {
  // b = a with 2 residues inserted; band 4 accommodates the shift. The
  // kernel compares over the shorter length (16), so b's tail "KW" and
  // the last two residues of the alignment fall away: the best in-band
  // path matches MKVLARND, gaps over PP, then matches CQEGHI.
  const auto a = encode("MKVLARNDCQEGHIKW");
  const auto b = encode("MKVLARND" "PP" "CQEGHIKW");
  const auto& m = bio::SubstitutionMatrix::blosum62();
  GapParams params;
  const int expected = self_score(encode("MKVLARNDCQEGHI"), m) -
                       (params.open + 2 * params.extend);
  EXPECT_EQ(banded_window_score(a, b, 4, params, m), expected);
}

TEST(BandedWindowScore, ShiftBeyondBandIsLost) {
  // An alignment requiring a 6-residue shift cannot be expressed within a
  // band of 2: the banded score collapses to what fits diagonally.
  const auto a = encode("MKVLARNDCQEGHIKW");
  const auto b = encode("PPPPPP" "MKVLARNDCQ");
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const int wide = banded_window_score(a, b, 8, GapParams{}, m);
  const int narrow = banded_window_score(a, b, 2, GapParams{}, m);
  EXPECT_GT(wide, narrow);
}

TEST(BandedWindowScore, WiderBandNeverLowersScore) {
  util::Xoshiro256 rng(22);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::uint8_t> a(40), b(40);
    for (auto& r : a) r = static_cast<std::uint8_t>(rng.bounded(20));
    for (auto& r : b) r = static_cast<std::uint8_t>(rng.bounded(20));
    int previous = 0;
    for (const std::size_t band : {1u, 2u, 4u, 8u, 16u, 40u}) {
      const int score = banded_window_score(a, b, band, GapParams{}, m);
      EXPECT_GE(score, previous) << "band " << band;
      previous = score;
    }
  }
}

TEST(BandedWindowScore, NeverExceedsFullSmithWaterman) {
  util::Xoshiro256 rng(23);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const GapParams params;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::uint8_t> a(35), b(35);
    for (auto& r : a) r = static_cast<std::uint8_t>(rng.bounded(20));
    for (auto& r : b) r = static_cast<std::uint8_t>(rng.bounded(20));
    const Alignment full = smith_waterman(a, b, m, params);
    for (const std::size_t band : {1u, 3u, 7u}) {
      EXPECT_LE(banded_window_score(a, b, band, params, m), full.score);
    }
  }
}

TEST(BandedWindowCycles, Formula) {
  EXPECT_EQ(banded_window_cycles(0), 0u);
  EXPECT_EQ(banded_window_cycles(1), 1u);
  EXPECT_EQ(banded_window_cycles(128), 255u);
}

}  // namespace
}  // namespace psc::align
