// Cross-method integration: the bank-versus-bank pipeline and the tblastn
// baseline must find essentially the same biology -- the paper's section
// 4.4 argument ("Theoretically, both approaches have the same
// sensitivity").
#include <gtest/gtest.h>

#include "blast/tblastn.hpp"
#include "core/pipeline.hpp"
#include "eval/compare_hits.hpp"
#include "sim/genome_generator.hpp"
#include "sim/mutation.hpp"
#include "sim/protein_generator.hpp"

namespace psc {
namespace {

struct Fixture {
  bio::SequenceBank proteins{bio::SequenceKind::kProtein};
  bio::Sequence genome;
  std::vector<std::size_t> planted;  // protein indices with genome copies

  Fixture() {
    util::Xoshiro256 rng(77);
    for (int i = 0; i < 8; ++i) {
      proteins.add(sim::generate_protein("p" + std::to_string(i), 120, rng));
    }
    sim::GenomeConfig config;
    config.length = 60000;
    config.seed = 78;
    genome = sim::generate_genome(config);
    sim::MutationConfig divergence;
    divergence.substitution_rate = 0.2;
    divergence.indel_rate = 0.005;
    std::size_t position = 5000;
    for (const std::size_t i : {0u, 3u, 5u}) {
      const bio::Sequence copy =
          sim::mutate_protein(proteins[i], divergence, rng);
      sim::plant_gene(genome, copy, position, (i % 2) == 0, rng);
      planted.push_back(i);
      position += 8000;
    }
  }
};

TEST(PipelineVsBlast, BothFindEveryPlantedGene) {
  const Fixture fixture;

  core::PipelineOptions pipeline_options;
  const core::PipelineResult pipeline_result = core::run_pipeline_genome(
      fixture.proteins, fixture.genome, pipeline_options);

  blast::TblastnOptions blast_options;
  const blast::TblastnResult blast_result = blast::tblastn_search_genome(
      fixture.proteins, fixture.genome, bio::SubstitutionMatrix::blosum62(),
      blast_options);

  for (const std::size_t planted_index : fixture.planted) {
    bool pipeline_found = false;
    for (const auto& match : pipeline_result.matches) {
      if (match.bank0_sequence == planted_index) pipeline_found = true;
    }
    bool blast_found = false;
    for (const auto& hit : blast_result.hits) {
      if (hit.query == planted_index) blast_found = true;
    }
    EXPECT_TRUE(pipeline_found) << "pipeline missed protein " << planted_index;
    EXPECT_TRUE(blast_found) << "baseline missed protein " << planted_index;
  }
}

TEST(PipelineVsBlast, ResultSetsLargelyOverlap) {
  const Fixture fixture;
  core::PipelineOptions pipeline_options;
  const core::PipelineResult pipeline_result = core::run_pipeline_genome(
      fixture.proteins, fixture.genome, pipeline_options);
  const blast::TblastnResult blast_result = blast::tblastn_search_genome(
      fixture.proteins, fixture.genome, bio::SubstitutionMatrix::blosum62(),
      blast::TblastnOptions{});

  const auto a = eval::to_generic(pipeline_result.matches);
  const auto b = eval::to_generic(blast_result.hits);
  const eval::OverlapStats stats = eval::compare_hits(a, b);
  // The strong planted homologies must be found by both methods.
  EXPECT_GE(stats.shared, fixture.planted.size());
}

TEST(PipelineVsBlast, NeitherHallucinatesOnPureNoise) {
  util::Xoshiro256 rng(99);
  bio::SequenceBank proteins(bio::SequenceKind::kProtein);
  for (int i = 0; i < 4; ++i) {
    proteins.add(sim::generate_protein("p" + std::to_string(i), 100, rng));
  }
  sim::GenomeConfig config;
  config.length = 30000;
  config.seed = 100;
  const bio::Sequence genome = sim::generate_genome(config);

  const core::PipelineResult pipeline_result =
      core::run_pipeline_genome(proteins, genome, core::PipelineOptions{});
  const blast::TblastnResult blast_result = blast::tblastn_search_genome(
      proteins, genome, bio::SubstitutionMatrix::blosum62(),
      blast::TblastnOptions{});
  // At E <= 1e-3 over this small search space, random hits should be
  // essentially absent.
  EXPECT_LE(pipeline_result.matches.size(), 2u);
  EXPECT_LE(blast_result.hits.size(), 2u);
}

}  // namespace
}  // namespace psc
