// Cross-module invariant: all three step-2 backends (host sequential,
// host parallel, simulated RASC with 1 or 2 FPGAs, batch or cycle-exact
// engine) produce exactly the same set of seed-pair hits on the same
// indexed banks -- the property that makes the accelerator a drop-in
// replacement for the critical section.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/step2_host.hpp"
#include "rasc/rasc_backend.hpp"
#include "sim/workload.hpp"

namespace psc {
namespace {

struct Fixture {
  bio::SequenceBank bank0;
  bio::SequenceBank bank1;
  index::SeedModel model = index::SeedModel::subset_w4();
  index::WindowShape shape{4, 14};  // window 32

  Fixture() {
    sim::ScaledWorkloadConfig config;
    config.scale = 0.0003;
    config.seed = 2024;
    sim::PaperWorkload workload = sim::build_paper_workload(config);
    bank0 = std::move(workload.banks[1].proteins);
    bank1 = std::move(workload.genome_bank);
  }
};

using HitKey = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t,
                          std::uint32_t, int>;

std::vector<HitKey> keys_of(const std::vector<align::SeedPairHit>& hits) {
  std::vector<HitKey> keys;
  keys.reserve(hits.size());
  for (const auto& hit : hits) {
    keys.emplace_back(hit.bank0.sequence, hit.bank0.offset,
                      hit.bank1.sequence, hit.bank1.offset, hit.score);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(BackendEquivalence, AllBackendsProduceIdenticalHitSets) {
  const Fixture fixture;
  const index::IndexTable t0(fixture.bank0, fixture.model);
  const index::IndexTable t1(fixture.bank1, fixture.model);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const int threshold = 30;

  const core::HostStep2Result host_seq = core::run_step2_host(
      fixture.bank0, t0, fixture.bank1, t1, m, fixture.shape, threshold);
  ASSERT_FALSE(host_seq.hits.empty())
      << "fixture produced no hits; equivalence test would be vacuous";
  const auto expected = keys_of(host_seq.hits);

  const core::HostStep2Result host_par = core::run_step2_host_parallel(
      fixture.bank0, t0, fixture.bank1, t1, m, fixture.shape, threshold, 3);
  EXPECT_EQ(keys_of(host_par.hits), expected);

  rasc::RascStep2Config rasc_config;
  rasc_config.psc.num_pes = 48;
  rasc_config.psc.slot_size = 8;
  rasc_config.psc.window_length = fixture.shape.length();
  rasc_config.psc.threshold = threshold;
  rasc_config.shape = fixture.shape;

  for (const std::size_t fpgas : {1u, 2u}) {
    rasc_config.num_fpgas = fpgas;
    const rasc::RascStep2Result accel = rasc::run_rasc_step2(
        fixture.bank0, t0, fixture.bank1, t1, m, rasc_config);
    EXPECT_EQ(keys_of(accel.hits), expected) << fpgas << " FPGA(s)";
    EXPECT_EQ(accel.stats.comparisons, host_seq.pairs);
  }
}

TEST(BackendEquivalence, CycleExactEngineAgreesOnSmallerSlice) {
  Fixture fixture;
  // Restrict to a few proteins to keep the per-cycle engine quick.
  bio::SequenceBank small0(bio::SequenceKind::kProtein);
  for (std::size_t i = 0; i < std::min<std::size_t>(3, fixture.bank0.size());
       ++i) {
    small0.add(bio::Sequence(
        fixture.bank0[i].id(), bio::SequenceKind::kProtein,
        std::vector<std::uint8_t>(fixture.bank0[i].residues())));
  }
  bio::SequenceBank small1(bio::SequenceKind::kProtein);
  for (std::size_t i = 0; i < std::min<std::size_t>(60, fixture.bank1.size());
       ++i) {
    small1.add(bio::Sequence(
        fixture.bank1[i].id(), bio::SequenceKind::kProtein,
        std::vector<std::uint8_t>(fixture.bank1[i].residues())));
  }
  const index::IndexTable t0(small0, fixture.model);
  const index::IndexTable t1(small1, fixture.model);
  const auto& m = bio::SubstitutionMatrix::blosum62();

  const core::HostStep2Result host = core::run_step2_host(
      small0, t0, small1, t1, m, fixture.shape, 28);

  rasc::RascStep2Config config;
  config.psc.num_pes = 16;
  config.psc.window_length = fixture.shape.length();
  config.psc.threshold = 28;
  config.shape = fixture.shape;
  config.cycle_exact = true;
  const rasc::RascStep2Result accel =
      rasc::run_rasc_step2(small0, t0, small1, t1, m, config);
  EXPECT_EQ(keys_of(accel.hits), keys_of(host.hits));
}

}  // namespace
}  // namespace psc
