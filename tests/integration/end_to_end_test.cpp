// Full-system integration: paper-shaped workload through the complete
// RASC pipeline, checking the qualitative claims the evaluation tables
// rest on (step-2 dominance in software, utilization growth with bank
// size, quality-benchmark plumbing).
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "eval/average_precision.hpp"
#include "eval/benchmark_set.hpp"
#include "eval/compare_hits.hpp"
#include "eval/roc.hpp"
#include "sim/mutation.hpp"
#include "sim/workload.hpp"

namespace psc {
namespace {

sim::PaperWorkload tiny_workload() {
  sim::ScaledWorkloadConfig config;
  config.scale = 0.0004;  // ~88 knt genome; banks up to ~12 proteins
  config.seed = 31;
  return sim::build_paper_workload(config);
}

TEST(EndToEnd, SoftwareProfileIsStep2Dominated) {
  // Table 1's premise: ungapped extension dominates the software run.
  // Like the table benches, the coarse seed keeps index-list depth (and
  // hence the step-2 share) in the paper's regime at this tiny scale.
  const sim::PaperWorkload workload = tiny_workload();
  core::PipelineOptions options;
  options.seed_model = core::SeedModelKind::kSubsetW4Coarse;
  options.backend = core::Step2Backend::kHostSequential;
  const core::PipelineResult result = core::run_pipeline(
      workload.banks.back().proteins, workload.genome_bank, options);
  EXPECT_GT(result.times.step2_ungapped,
            result.times.step1_index + result.times.step3_gapped);
}

TEST(EndToEnd, UtilizationGrowsWithBankSize) {
  // Table 2's explanation: small banks cannot fill the PE array.
  const sim::PaperWorkload workload = tiny_workload();
  core::PipelineOptions options;
  options.backend = core::Step2Backend::kRasc;
  options.rasc.psc.num_pes = 192;

  const core::PipelineResult small = core::run_pipeline(
      workload.banks.front().proteins, workload.genome_bank, options);
  const core::PipelineResult large = core::run_pipeline(
      workload.banks.back().proteins, workload.genome_bank, options);
  EXPECT_GT(large.operator_stats.utilization(),
            small.operator_stats.utilization());
}

TEST(EndToEnd, RascStep2BeatsHostWhenArrayIsFilled) {
  // The core speedup claim, at model level. A fully utilized 192-PE array
  // at 100 MHz evaluates 192 window cells per cycle (19.2e9 cells/s) --
  // well beyond a scalar host core. Underutilized arrays (tiny banks) do
  // NOT beat a modern host; that is exactly the paper's small-bank trend,
  // so this test builds a bank with deep IL0 lists (100 copies of one
  // protein) to fill the array.
  // Deep index lists on BOTH sides: 100 copies of one protein in bank 0
  // (fills the PE array) and 100 diverged copies in bank 1 (long IL1
  // streams, so loading amortizes -- with short IL1 lists the per-round
  // shift-register loads dominate and even a full array loses to a 2026
  // host core, the same under-fill story as Table 2's small banks).
  const sim::PaperWorkload workload = tiny_workload();
  const auto& source = workload.banks.back().proteins[0];
  bio::SequenceBank dense(bio::SequenceKind::kProtein);
  bio::SequenceBank targets(bio::SequenceKind::kProtein);
  util::Xoshiro256 rng(4242);
  sim::MutationConfig divergence;
  divergence.substitution_rate = 0.2;
  for (int copy = 0; copy < 100; ++copy) {
    dense.add(bio::Sequence("c" + std::to_string(copy),
                            bio::SequenceKind::kProtein,
                            std::vector<std::uint8_t>(source.residues())));
    targets.add(sim::mutate_protein(source, divergence, rng));
  }

  core::PipelineOptions host;
  host.backend = core::Step2Backend::kHostSequential;
  core::PipelineOptions rasc;
  rasc.backend = core::Step2Backend::kRasc;
  rasc.rasc.psc.num_pes = 192;

  const core::PipelineResult host_result =
      core::run_pipeline(dense, targets, host);
  const core::PipelineResult rasc_result =
      core::run_pipeline(dense, targets, rasc);
  // Identical work and findings...
  EXPECT_EQ(host_result.counters.step2_pairs,
            rasc_result.counters.step2_pairs);
  EXPECT_EQ(host_result.counters.step2_hits,
            rasc_result.counters.step2_hits);
  ASSERT_EQ(host_result.matches.size(), rasc_result.matches.size());
  // ...high array utilization by construction...
  EXPECT_GT(rasc_result.operator_stats.utilization(), 0.5);
  // ...and modeled compute time beating the measured host kernel.
  EXPECT_LT(rasc_result.fpga_reports[0].compute_seconds,
            host_result.times.step2_ungapped);
}

TEST(EndToEnd, QualityBenchmarkProducesRankableResults) {
  // Table 6 plumbing: run the pipeline on a small family benchmark and
  // compute ROC50 / AP-Mean end to end.
  eval::QualityBenchmarkConfig config;
  config.family.families = 5;
  config.family.members_per_family = 4;
  config.family.ancestor_length = 150;
  config.family.divergence.substitution_rate = 0.15;
  config.queries_per_family = 2;
  config.genome_length = 80000;
  const eval::QualityBenchmark benchmark =
      eval::build_quality_benchmark(config);

  core::PipelineOptions options;
  const core::PipelineResult result =
      core::run_pipeline(benchmark.queries, benchmark.genome_bank, options);
  ASSERT_FALSE(result.matches.empty());

  const auto labels =
      benchmark.per_query_labels(eval::to_generic(result.matches), 100);
  std::vector<double> roc_scores;
  std::vector<double> ap_scores;
  for (std::size_t q = 0; q < benchmark.queries.size(); ++q) {
    roc_scores.push_back(eval::roc50(
        labels[q], benchmark.positives_per_family[benchmark.query_family[q]]));
    ap_scores.push_back(eval::average_precision(labels[q], 50));
  }
  // With 85%-identity families and planted targets, the pipeline must rank
  // true family members well above noise.
  EXPECT_GT(eval::mean(roc_scores), 0.5);
  EXPECT_GT(eval::mean(ap_scores), 0.5);
}

TEST(EndToEnd, RaisedThresholdCutsResultTraffic) {
  // The Table 3 story: raising the ungapped threshold thins the result
  // stream (bytes back to the host) without changing the comparisons.
  const sim::PaperWorkload workload = tiny_workload();
  core::PipelineOptions low;
  low.backend = core::Step2Backend::kRasc;
  low.ungapped_threshold = 30;
  core::PipelineOptions high = low;
  high.ungapped_threshold = 50;

  const core::PipelineResult a = core::run_pipeline(
      workload.banks.back().proteins, workload.genome_bank, low);
  const core::PipelineResult b = core::run_pipeline(
      workload.banks.back().proteins, workload.genome_bank, high);
  EXPECT_EQ(a.counters.step2_pairs, b.counters.step2_pairs);
  EXPECT_GT(a.counters.step2_hits, b.counters.step2_hits);
}

}  // namespace
}  // namespace psc
