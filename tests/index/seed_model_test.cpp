#include "index/seed_model.hpp"

#include <gtest/gtest.h>

#include <set>

#include "bio/alphabet.hpp"
#include "util/rng.hpp"

namespace psc::index {
namespace {

std::vector<std::uint8_t> word(const char* letters) {
  std::vector<std::uint8_t> out;
  for (const char* p = letters; *p != '\0'; ++p) {
    out.push_back(bio::encode_protein(*p));
  }
  return out;
}

TEST(SeedModel, ContiguousKeySpace) {
  EXPECT_EQ(SeedModel::contiguous(3).key_space(), 8000u);
  EXPECT_EQ(SeedModel::contiguous(4).key_space(), 160000u);
  EXPECT_EQ(SeedModel::contiguous(1).key_space(), 20u);
}

TEST(SeedModel, ContiguousDistinctWordsDistinctKeys) {
  const SeedModel model = SeedModel::contiguous(3);
  std::set<SeedKey> keys;
  const char* words[] = {"ARN", "ARD", "RNA", "AAA", "VVV", "NRA"};
  for (const char* w : words) keys.insert(model.key(word(w).data()));
  EXPECT_EQ(keys.size(), 6u);
}

TEST(SeedModel, ContiguousSameWordSameKey) {
  const SeedModel model = SeedModel::contiguous(4);
  EXPECT_EQ(model.key(word("MKVL").data()), model.key(word("MKVL").data()));
  EXPECT_TRUE(model.matches(word("MKVL").data(), word("MKVL").data()));
}

TEST(SeedModel, NonStandardResidueInvalidatesKey) {
  const SeedModel model = SeedModel::contiguous(3);
  EXPECT_EQ(model.key(word("AXA").data()), kInvalidSeedKey);
  EXPECT_EQ(model.key(word("AA*").data()), kInvalidSeedKey);
  EXPECT_EQ(model.key(word("BAA").data()), kInvalidSeedKey);
  EXPECT_FALSE(model.matches(word("AXA").data(), word("AXA").data()));
}

TEST(SeedModel, SubsetW4Properties) {
  const SeedModel model = SeedModel::subset_w4();
  EXPECT_EQ(model.width(), 4u);
  EXPECT_EQ(model.groups_at(0), 20u);
  EXPECT_EQ(model.groups_at(1), 12u);
  EXPECT_EQ(model.groups_at(2), 12u);
  EXPECT_EQ(model.groups_at(3), 20u);
  EXPECT_EQ(model.key_space(), 20u * 12 * 12 * 20);
}

TEST(SeedModel, SubsetSeedMatchesSimilarInnerResidues) {
  const SeedModel model = SeedModel::subset_w4();
  // I and L are in the same similarity group; outer positions exact.
  EXPECT_TRUE(model.matches(word("AIKA").data(), word("ALKA").data()));
  EXPECT_TRUE(model.matches(word("ASTA").data(), word("ATSA").data()));
}

TEST(SeedModel, SubsetSeedRejectsOuterMismatch) {
  const SeedModel model = SeedModel::subset_w4();
  EXPECT_FALSE(model.matches(word("AIKA").data(), word("LIKA").data()));
  EXPECT_FALSE(model.matches(word("AIKA").data(), word("AIKL").data()));
}

TEST(SeedModel, SubsetSeedRejectsDissimilarInnerResidues) {
  const SeedModel model = SeedModel::subset_w4();
  // W and G are in different groups.
  EXPECT_FALSE(model.matches(word("AWKA").data(), word("AGKA").data()));
}

TEST(SeedModel, SubsetSeedMoreSensitiveThanExact) {
  const SeedModel subset = SeedModel::subset_w4();
  const SeedModel exact = SeedModel::contiguous(4);
  // Exact model separates AIKA/ALKA; subset unifies them.
  EXPECT_FALSE(exact.matches(word("AIKA").data(), word("ALKA").data()));
  EXPECT_TRUE(subset.matches(word("AIKA").data(), word("ALKA").data()));
}

TEST(SeedModel, SimilarityGroupsAreDense) {
  const auto& groups = SeedModel::similarity_groups12();
  std::set<std::uint8_t> distinct(groups.begin(), groups.end());
  EXPECT_EQ(distinct.size(), 12u);
  EXPECT_EQ(*distinct.begin(), 0u);
  EXPECT_EQ(*distinct.rbegin(), 11u);
}

TEST(SeedModel, KeysAreDenseWithinKeySpace) {
  const SeedModel model = SeedModel::subset_w4();
  const char* words[] = {"MKVL", "WWWW", "AAAA", "VYHR"};
  for (const char* w : words) {
    const SeedKey key = model.key(word(w).data());
    ASSERT_NE(key, kInvalidSeedKey);
    EXPECT_LT(key, model.key_space());
  }
}

TEST(SeedModel, InvalidConstructionThrows) {
  EXPECT_THROW(SeedModel::contiguous(0), std::invalid_argument);
  EXPECT_THROW(SeedModel::contiguous(7), std::invalid_argument);
  EXPECT_THROW(SeedModel("empty", {}), std::invalid_argument);
}

TEST(SeedModel, BlastW3IsExactWidth3) {
  const SeedModel model = SeedModel::blast_w3();
  EXPECT_EQ(model.width(), 3u);
  EXPECT_EQ(model.key_space(), 8000u);
}

TEST(SeedModel, CoarseSubsetKeySpace) {
  const SeedModel model = SeedModel::subset_w4_coarse();
  EXPECT_EQ(model.width(), 4u);
  EXPECT_EQ(model.groups_at(0), 12u);
  EXPECT_EQ(model.groups_at(1), 8u);
  EXPECT_EQ(model.key_space(), 12u * 8 * 8 * 12);
}

TEST(SeedModel, CoarseSubsetIsStrictlyCoarser) {
  // Every pair the paper-fidelity seed unifies, the coarse seed unifies
  // too (its groups are unions of the finer groups).
  const SeedModel fine = SeedModel::subset_w4();
  const SeedModel coarse = SeedModel::subset_w4_coarse();
  util::Xoshiro256 rng(99);
  int fine_matches = 0;
  int coarse_matches = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    std::uint8_t a[4], b[4];
    for (int i = 0; i < 4; ++i) {
      a[i] = static_cast<std::uint8_t>(rng.bounded(20));
      b[i] = static_cast<std::uint8_t>(rng.bounded(20));
    }
    const bool fm = fine.matches(a, b);
    const bool cm = coarse.matches(a, b);
    if (fm) {
      EXPECT_TRUE(cm) << "coarse seed must contain the fine seed's matches";
      ++fine_matches;
    }
    if (cm) ++coarse_matches;
  }
  EXPECT_GE(coarse_matches, fine_matches);
}

TEST(SeedModel, MurphyGroupsAreDense) {
  const auto& groups = SeedModel::murphy_groups8();
  std::set<std::uint8_t> distinct(groups.begin(), groups.end());
  EXPECT_EQ(distinct.size(), 8u);
  EXPECT_EQ(*distinct.rbegin(), 7u);
  // Spot checks: the LVIMC hydrophobic class.
  EXPECT_EQ(groups[bio::encode_protein('L')], groups[bio::encode_protein('V')]);
  EXPECT_EQ(groups[bio::encode_protein('I')], groups[bio::encode_protein('M')]);
  EXPECT_EQ(groups[bio::encode_protein('C')], groups[bio::encode_protein('L')]);
  EXPECT_NE(groups[bio::encode_protein('L')], groups[bio::encode_protein('P')]);
}

}  // namespace
}  // namespace psc::index
