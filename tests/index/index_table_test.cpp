#include "index/index_table.hpp"

#include <gtest/gtest.h>

#include "sim/protein_generator.hpp"

namespace psc::index {
namespace {

bio::SequenceBank bank_of(std::initializer_list<const char*> proteins) {
  bio::SequenceBank bank(bio::SequenceKind::kProtein);
  int i = 0;
  for (const char* p : proteins) {
    bank.add(bio::Sequence::protein_from_letters("p" + std::to_string(i++), p));
  }
  return bank;
}

TEST(IndexTable, IndexesEveryWindow) {
  const auto bank = bank_of({"MKVLA"});  // 3 windows of width 3
  const SeedModel model = SeedModel::contiguous(3);
  const IndexTable table(bank, model);
  EXPECT_EQ(table.total_occurrences(), 3u);
  EXPECT_EQ(table.key_space(), model.key_space());
}

TEST(IndexTable, FindsOccurrenceAtRightPlace) {
  const auto bank = bank_of({"MKVLA", "AAMKV"});
  const SeedModel model = SeedModel::contiguous(3);
  const IndexTable table(bank, model);
  const std::vector<std::uint8_t> mkv = {
      bio::encode_protein('M'), bio::encode_protein('K'),
      bio::encode_protein('V')};
  const auto list = table.occurrences(model.key(mkv.data()));
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].sequence, 0u);
  EXPECT_EQ(list[0].offset, 0u);
  EXPECT_EQ(list[1].sequence, 1u);
  EXPECT_EQ(list[1].offset, 2u);
}

TEST(IndexTable, SkipsWordsWithNonStandardResidues) {
  const auto bank = bank_of({"MKXLA"});  // windows MKX, KXL, XLA all masked
  const IndexTable table(bank, SeedModel::contiguous(3));
  EXPECT_EQ(table.total_occurrences(), 0u);
}

TEST(IndexTable, ShortSequencesContributeNothing) {
  const auto bank = bank_of({"MK", "A", ""});
  const IndexTable table(bank, SeedModel::contiguous(3));
  EXPECT_EQ(table.total_occurrences(), 0u);
  EXPECT_EQ(table.populated_keys(), 0u);
}

TEST(IndexTable, OccurrenceCountMatchesFormula) {
  // Every position with only standard residues is indexed.
  const auto bank = bank_of({"MKVLARNDCQ", "WYVH"});
  const IndexTable table(bank, SeedModel::contiguous(4));
  EXPECT_EQ(table.total_occurrences(), (10u - 3) + (4u - 3));
}

TEST(IndexTable, StrideSkipsPositions) {
  const auto bank = bank_of({"MKVLARND"});  // 5 windows of width 4
  const IndexTable dense(bank, SeedModel::contiguous(4), 1);
  const IndexTable sparse(bank, SeedModel::contiguous(4), 2);
  EXPECT_EQ(dense.total_occurrences(), 5u);
  EXPECT_EQ(sparse.total_occurrences(), 3u);  // positions 0, 2, 4
}

TEST(IndexTable, ZeroStrideThrows) {
  const auto bank = bank_of({"MKVLA"});
  EXPECT_THROW(IndexTable(bank, SeedModel::contiguous(3), 0),
               std::invalid_argument);
}

TEST(IndexTable, RepeatedWordsGroupUnderOneKey) {
  const auto bank = bank_of({"AAAAAA"});  // four AAA windows... width 3: 4
  const SeedModel model = SeedModel::contiguous(3);
  const IndexTable table(bank, model);
  EXPECT_EQ(table.populated_keys(), 1u);
  EXPECT_EQ(table.max_list_length(), 4u);
}

TEST(IndexTable, SubsetSeedGroupsSimilarWords) {
  const auto bank = bank_of({"AIKA", "ALKA"});
  const IndexTable table(bank, SeedModel::subset_w4());
  // Both words share the subset key -> one populated key of length 2.
  EXPECT_EQ(table.populated_keys(), 1u);
  EXPECT_EQ(table.max_list_length(), 2u);
}

TEST(IndexTable, PairCountIsProductPerKey) {
  const auto bank0 = bank_of({"AAAA"});  // two AAA windows
  const auto bank1 = bank_of({"AAAAA"});  // three AAA windows
  const SeedModel model = SeedModel::contiguous(3);
  const IndexTable t0(bank0, model);
  const IndexTable t1(bank1, model);
  EXPECT_EQ(IndexTable::pair_count(t0, t1), 6u);
}

TEST(IndexTable, PairCountMismatchedModelsThrows) {
  const auto bank = bank_of({"MKVLA"});
  const IndexTable t3(bank, SeedModel::contiguous(3));
  const IndexTable t4(bank, SeedModel::contiguous(4));
  EXPECT_THROW(IndexTable::pair_count(t3, t4), std::invalid_argument);
}

TEST(IndexTableParallel, IdenticalToSerialBuild) {
  sim::ProteinBankConfig config;
  config.count = 40;
  config.mean_length = 120;
  config.seed = 4242;
  const bio::SequenceBank bank = sim::generate_protein_bank(config);
  const SeedModel model = SeedModel::subset_w4();
  const IndexTable serial(bank, model);
  for (const std::size_t threads : {1u, 2u, 3u, 8u}) {
    const IndexTable parallel =
        IndexTable::build_parallel(bank, model, threads);
    ASSERT_EQ(parallel.total_occurrences(), serial.total_occurrences())
        << threads;
    for (std::size_t k = 0; k < model.key_space(); ++k) {
      const auto key = static_cast<SeedKey>(k);
      const auto a = serial.occurrences(key);
      const auto b = parallel.occurrences(key);
      ASSERT_EQ(a.size(), b.size()) << "key " << k;
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i], b[i]) << "key " << k << " entry " << i;
      }
    }
  }
}

TEST(IndexTableParallel, EmptyBank) {
  const bio::SequenceBank empty(bio::SequenceKind::kProtein);
  const IndexTable table =
      IndexTable::build_parallel(empty, SeedModel::contiguous(3), 4);
  EXPECT_EQ(table.total_occurrences(), 0u);
}

TEST(IndexTableParallel, StrideRespected) {
  const auto bank = bank_of({"MKVLARND"});
  const IndexTable parallel = IndexTable::build_parallel(
      bank, SeedModel::contiguous(4), 2, /*stride=*/2);
  EXPECT_EQ(parallel.total_occurrences(), 3u);
  EXPECT_THROW(
      IndexTable::build_parallel(bank, SeedModel::contiguous(4), 2, 0),
      std::invalid_argument);
}

TEST(IndexTable, CompletenessOnRandomBank) {
  // Property: sum of list lengths == total occurrences, and every
  // occurrence's word re-hashes to its key.
  sim::ProteinBankConfig config;
  config.count = 20;
  config.mean_length = 80;
  config.seed = 99;
  const bio::SequenceBank bank = sim::generate_protein_bank(config);
  const SeedModel model = SeedModel::subset_w4();
  const IndexTable table(bank, model);

  std::size_t total = 0;
  for (std::size_t k = 0; k < table.key_space(); ++k) {
    const auto key = static_cast<SeedKey>(k);
    for (const Occurrence& occ : table.occurrences(key)) {
      EXPECT_EQ(model.key(bank[occ.sequence].data() + occ.offset), key);
      ++total;
    }
  }
  EXPECT_EQ(total, table.total_occurrences());

  std::size_t expected = 0;
  for (const auto& seq : bank) {
    if (seq.size() >= model.width()) expected += seq.size() - model.width() + 1;
  }
  EXPECT_EQ(table.total_occurrences(), expected);  // no X in generated banks
}

}  // namespace
}  // namespace psc::index
