#include "index/neighborhood.hpp"

#include <gtest/gtest.h>

namespace psc::index {
namespace {

bio::SequenceBank one_protein(const char* letters) {
  bio::SequenceBank bank(bio::SequenceKind::kProtein);
  bank.add(bio::Sequence::protein_from_letters("p", letters));
  return bank;
}

TEST(WindowShape, LengthFormula) {
  EXPECT_EQ((WindowShape{4, 30}).length(), 64u);
  EXPECT_EQ((WindowShape{3, 0}).length(), 3u);
  EXPECT_EQ((WindowShape{1, 5}).length(), 11u);
}

TEST(WindowBatch, CentersSeedInWindow) {
  const auto bank = one_protein("ARNDCQEGHILKMFPSTWYV");
  const WindowShape shape{4, 2};  // length 8
  WindowBatch batch(shape.length());
  batch.append(bank, Occurrence{0, 5}, shape);
  ASSERT_EQ(batch.size(), 1u);
  const auto window = batch.window(0);
  // Window = positions 3..10 of the sequence.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(window[i], bank[0][3 + i]);
  }
}

TEST(WindowBatch, PadsLeftBoundaryWithX) {
  const auto bank = one_protein("MKVLARND");
  const WindowShape shape{4, 3};  // length 10, seed at 0 -> 3 pads left
  WindowBatch batch(shape.length());
  batch.append(bank, Occurrence{0, 0}, shape);
  const auto window = batch.window(0);
  EXPECT_EQ(window[0], bio::kUnknownX);
  EXPECT_EQ(window[1], bio::kUnknownX);
  EXPECT_EQ(window[2], bio::kUnknownX);
  EXPECT_EQ(window[3], bank[0][0]);
}

TEST(WindowBatch, PadsRightBoundaryWithX) {
  const auto bank = one_protein("MKVLARND");  // length 8
  const WindowShape shape{4, 3};
  WindowBatch batch(shape.length());
  batch.append(bank, Occurrence{0, 4}, shape);  // seed 4..8, right flank past end
  const auto window = batch.window(0);
  // Window covers sequence positions [1, 11); positions 8..10 are pads.
  EXPECT_EQ(window[9], bio::kUnknownX);
  EXPECT_EQ(window[8], bio::kUnknownX);
  EXPECT_EQ(window[7], bio::kUnknownX);
  EXPECT_EQ(window[6], bank[0][7]);
}

TEST(WindowBatch, SourceTagsPreserved) {
  const auto bank = one_protein("MKVLARND");
  const WindowShape shape{4, 1};
  WindowBatch batch(shape.length());
  batch.append(bank, Occurrence{0, 2}, shape);
  batch.append(bank, Occurrence{0, 3}, shape);
  EXPECT_EQ(batch.source(0).offset, 2u);
  EXPECT_EQ(batch.source(1).offset, 3u);
}

TEST(WindowBatch, ShapeMismatchThrows) {
  const auto bank = one_protein("MKVLARND");
  WindowBatch batch(10);
  EXPECT_THROW(batch.append(bank, Occurrence{0, 0}, WindowShape{4, 1}),
               std::invalid_argument);
}

TEST(WindowBatch, ClearResets) {
  const auto bank = one_protein("MKVLARND");
  const WindowShape shape{4, 0};
  WindowBatch batch(shape.length());
  batch.append(bank, Occurrence{0, 0}, shape);
  batch.clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.flat().size(), 0u);
}

TEST(ExtractWindows, ExtractsAllOccurrences) {
  const auto bank = one_protein("MKVLARNDMKVLARND");
  const WindowShape shape{4, 2};
  const std::vector<Occurrence> list = {{0, 0}, {0, 8}, {0, 12}};
  WindowBatch batch(shape.length());
  extract_windows(bank, list, shape, batch);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.flat().size(), 3u * shape.length());
}

TEST(ExtractWindows, IdenticalContextsGiveIdenticalWindows) {
  const auto bank = one_protein("AAMKVLAANDAAMKVLAAND");
  const WindowShape shape{4, 2};
  const std::vector<Occurrence> list = {{0, 2}, {0, 12}};
  WindowBatch batch(shape.length());
  extract_windows(bank, list, shape, batch);
  const auto w0 = batch.window(0);
  const auto w1 = batch.window(1);
  EXPECT_TRUE(std::equal(w0.begin(), w0.end(), w1.begin()));
}

TEST(ExtractWindows, TinySequenceIsAllPadsAroundSeed) {
  bio::SequenceBank bank(bio::SequenceKind::kProtein);
  bank.add(bio::Sequence::protein_from_letters("tiny", "MKVL"));
  const WindowShape shape{4, 5};  // length 14, sequence only 4 residues
  WindowBatch batch(shape.length());
  batch.append(bank, Occurrence{0, 0}, shape);
  const auto window = batch.window(0);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(window[i], bio::kUnknownX);
  for (std::size_t i = 9; i < 14; ++i) EXPECT_EQ(window[i], bio::kUnknownX);
  EXPECT_EQ(window[5], bank[0][0]);
  EXPECT_EQ(window[8], bank[0][3]);
}

}  // namespace
}  // namespace psc::index
