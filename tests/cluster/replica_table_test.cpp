// Unit tests for the cluster's replica bookkeeping: the --replicas spec
// parser and the ReplicaTable's candidate selection, counters and stats
// snapshot.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/replica_table.hpp"

namespace psc::cluster {
namespace {

TEST(ParseReplicaList, ParsesEndpointsAndShardSets) {
  const std::vector<ReplicaEndpoint> endpoints =
      parse_replica_list("10.0.0.1:7001=0,1;10.0.0.2:7002=1,2;");
  ASSERT_EQ(endpoints.size(), 2u);
  EXPECT_EQ(endpoints[0].host, "10.0.0.1");
  EXPECT_EQ(endpoints[0].port, 7001);
  EXPECT_EQ(endpoints[0].shards, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(endpoints[0].name(), "10.0.0.1:7001");
  EXPECT_EQ(endpoints[1].host, "10.0.0.2");
  EXPECT_EQ(endpoints[1].shards, (std::vector<std::size_t>{1, 2}));
}

TEST(ParseReplicaList, AllClaimCoversEveryShardIncludingFutureOnes) {
  // "=all" is the live-ingest form: the endpoint serves every manifest
  // shard, including tail shards appended after the router started.
  const std::vector<ReplicaEndpoint> endpoints =
      parse_replica_list("10.0.0.1:7001=all;10.0.0.2:7002=0,1");
  ASSERT_EQ(endpoints.size(), 2u);
  EXPECT_TRUE(endpoints[0].all_shards);
  EXPECT_TRUE(endpoints[0].shards.empty());
  EXPECT_TRUE(endpoints[0].serves(0));
  EXPECT_TRUE(endpoints[0].serves(999));
  EXPECT_FALSE(endpoints[1].all_shards);
  EXPECT_TRUE(endpoints[1].serves(1));
  EXPECT_FALSE(endpoints[1].serves(2));
  // "all" is a keyword, not a shard number prefix.
  EXPECT_THROW(parse_replica_list("h:7001=all,1"), std::invalid_argument);
}

TEST(ParseReplicaList, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_replica_list(""), std::invalid_argument);
  EXPECT_THROW(parse_replica_list("host:7001"), std::invalid_argument);
  EXPECT_THROW(parse_replica_list("host=0,1"), std::invalid_argument);
  EXPECT_THROW(parse_replica_list(":7001=0"), std::invalid_argument);
  EXPECT_THROW(parse_replica_list("host:0=0"), std::invalid_argument);
  EXPECT_THROW(parse_replica_list("host:99999=0"), std::invalid_argument);
  EXPECT_THROW(parse_replica_list("host:7001="), std::invalid_argument);
  EXPECT_THROW(parse_replica_list("host:7001=a"), std::invalid_argument);
  EXPECT_THROW(parse_replica_list("host:abc=0"), std::invalid_argument);
}

std::vector<ReplicaEndpoint> three_replicas() {
  return parse_replica_list(
      "r0:7001=0,1;r1:7002=1,2;r2:7003=0,2");
}

TEST(ReplicaTableTest, ShardSpanAndCandidateSelection) {
  ReplicaTable table(three_replicas());
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.shard_span(), 3u);

  EXPECT_EQ(table.live_candidates(0), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(table.live_candidates(1), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(table.live_candidates(2), (std::vector<std::size_t>{1, 2}));
  EXPECT_TRUE(table.live_candidates(3).empty());
}

TEST(ReplicaTableTest, DownReplicasLeaveRotationAndComeBack) {
  ReplicaTable table(three_replicas());
  table.set_up(0, false);
  EXPECT_FALSE(table.is_up(0));
  EXPECT_EQ(table.live_candidates(0), (std::vector<std::size_t>{2}));
  EXPECT_EQ(table.live_candidates(1), (std::vector<std::size_t>{1}));

  table.set_up(2, false);
  EXPECT_TRUE(table.live_candidates(0).empty());

  table.set_up(0, true);
  EXPECT_EQ(table.live_candidates(0), (std::vector<std::size_t>{0}));
}

TEST(ReplicaTableTest, LeastInflightReplicaIsPreferred) {
  ReplicaTable table(three_replicas());
  // Load replica 0 with two in-flight attempts; shard 0's other holder
  // (replica 2) must now come first.
  table.attempt_started(0, AttemptKind::kPrimary);
  table.attempt_started(0, AttemptKind::kPrimary);
  table.attempt_started(2, AttemptKind::kPrimary);
  EXPECT_EQ(table.live_candidates(0), (std::vector<std::size_t>{2, 0}));
  // Draining replica 0 restores the index tiebreak.
  table.attempt_finished(0, true, 0.01);
  table.attempt_finished(0, true, 0.02);
  table.attempt_finished(2, true, 0.03);
  EXPECT_EQ(table.live_candidates(0), (std::vector<std::size_t>{0, 2}));
}

TEST(ReplicaTableTest, SnapshotReportsCountersAndLatencies) {
  ReplicaTable table(three_replicas());
  table.attempt_started(1, AttemptKind::kPrimary);
  table.attempt_finished(1, true, 0.10);
  table.attempt_started(1, AttemptKind::kRetry);
  table.attempt_finished(1, true, 0.30);
  table.attempt_started(1, AttemptKind::kHedge);
  table.attempt_finished(1, true, 0.20);
  table.attempt_started(1, AttemptKind::kPrimary);
  table.attempt_finished(1, false, 0.0);
  table.attempt_started(1, AttemptKind::kPrimary);
  table.attempt_cancelled(1);
  table.set_up(1, false);

  const std::vector<service::ReplicaStats> rows = table.snapshot();
  ASSERT_EQ(rows.size(), 3u);
  const service::ReplicaStats& row = rows[1];
  EXPECT_EQ(row.endpoint, "r1:7002");
  EXPECT_FALSE(row.up);
  EXPECT_EQ(row.inflight, 0u);
  EXPECT_EQ(row.requests, 5u);
  EXPECT_EQ(row.retries, 1u);
  EXPECT_EQ(row.hedges, 1u);
  EXPECT_EQ(row.failures, 1u);
  // Successful latencies were {0.10, 0.30, 0.20}: the median is 0.20
  // and the max 0.30; the failure and the cancellation contribute none.
  EXPECT_DOUBLE_EQ(row.p50_latency_seconds, 0.20);
  EXPECT_DOUBLE_EQ(row.max_latency_seconds, 0.30);

  // Untouched replicas report zeroed counters and stay up.
  EXPECT_TRUE(rows[0].up);
  EXPECT_EQ(rows[0].requests, 0u);
  EXPECT_DOUBLE_EQ(rows[0].p50_latency_seconds, 0.0);
}

TEST(ReplicaTableTest, BenchAndReviveCountTransitionsNotReprobes) {
  // The health checker re-asserts a replica's state every probe round;
  // only actual up<->down TRANSITIONS may count, or a replica that is
  // down for a minute looks like it was benched dozens of times.
  ReplicaTable table(three_replicas());

  table.set_up(1, false);
  table.set_up(1, false);  // probe round re-confirms: no new transition
  table.set_up(1, false);
  std::vector<service::ReplicaStats> rows = table.snapshot();
  EXPECT_EQ(rows[1].benched, 1u);
  EXPECT_EQ(rows[1].revived, 0u);
  EXPECT_FALSE(rows[1].up);

  table.set_up(1, true);
  table.set_up(1, true);
  rows = table.snapshot();
  EXPECT_EQ(rows[1].benched, 1u);
  EXPECT_EQ(rows[1].revived, 1u);
  EXPECT_TRUE(rows[1].up);

  // A full flap cycle counts one of each more.
  table.set_up(1, false);
  table.set_up(1, true);
  rows = table.snapshot();
  EXPECT_EQ(rows[1].benched, 2u);
  EXPECT_EQ(rows[1].revived, 2u);

  // Re-asserting the initial up state at startup is not a revival.
  EXPECT_EQ(rows[0].benched, 0u);
  EXPECT_EQ(rows[0].revived, 0u);
  table.set_up(0, true);
  EXPECT_EQ(table.snapshot()[0].revived, 0u);
}

TEST(ReplicaTableTest, BenchedRevivedRideTheV5StatsCodec) {
  // The new columns must survive the wire: encoded at v5, decoded back
  // intact; a v4 frame omits them and decodes to zeros.
  ReplicaTable table(three_replicas());
  table.set_up(2, false);
  table.set_up(2, true);
  table.set_up(2, false);

  service::ServiceStats stats;
  stats.replicas = table.snapshot();
  const service::ServiceStats v5 = service::decode_service_stats(
      service::encode_service_stats(stats, 5));
  ASSERT_EQ(v5.replicas.size(), 3u);
  EXPECT_EQ(v5.replicas[2].benched, 2u);
  EXPECT_EQ(v5.replicas[2].revived, 1u);

  const service::ServiceStats v4 = service::decode_service_stats(
      service::encode_service_stats(stats, 4));
  ASSERT_EQ(v4.replicas.size(), 3u);
  EXPECT_EQ(v4.replicas[2].benched, 0u);
  EXPECT_EQ(v4.replicas[2].revived, 0u);
}

}  // namespace
}  // namespace psc::cluster
