// End-to-end tests of the cluster coordinator over real loopback
// sockets: psc_serve-shaped replicas (net::Server over SearchService,
// scoped to shard subsets with allowed_prefixes), a Router fanning
// across them, and -- the load-bearing property -- byte-for-byte
// equality between the merged reply and a single unsharded node. Plus
// the failure policy: dead replicas of redundantly-held shards are
// transparent, an uncovered shard is a typed error (never a hang), and
// a stalling replica is overtaken by a hedged duplicate.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bio/translate.hpp"
#include "core/result_codec.hpp"
#include "index/index_table.hpp"
#include "cluster/router.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "service/search_service.hpp"
#include "sim/genome_generator.hpp"
#include "sim/mutation.hpp"
#include "sim/protein_generator.hpp"
#include "store/bank_store.hpp"
#include "store/index_store.hpp"
#include "store/shard_store.hpp"
#include "util/rng.hpp"

namespace psc::cluster {
namespace {

/// A sharded reference workload under the test temp dir (the replicas'
/// bank root): the usual planted-gene recipe, saved unsharded and
/// sharded. Removes every file on destruction.
struct ClusterWorkload {
  bio::SequenceBank proteins{bio::SequenceKind::kProtein};
  bio::SequenceBank genome_bank{bio::SequenceKind::kProtein};
  std::string name;          ///< wire-relative sharded prefix
  std::string prefix;        ///< absolute sharded prefix
  std::string plain_prefix;  ///< absolute unsharded prefix
  std::size_t shard_count = 0;

  ClusterWorkload(std::uint64_t seed, const std::string& bank_name,
                  std::uint64_t shard_cap)
      : name(bank_name) {
    util::Xoshiro256 rng(seed);
    for (int i = 0; i < 5; ++i) {
      proteins.add(sim::generate_protein("p" + std::to_string(i), 100, rng));
    }
    sim::GenomeConfig config;
    config.length = 20000;
    config.seed = seed;
    bio::Sequence genome = sim::generate_genome(config);
    sim::MutationConfig divergence;
    divergence.substitution_rate = 0.15;
    divergence.indel_rate = 0.0;
    sim::plant_gene(genome, sim::mutate_protein(proteins[0], divergence, rng),
                    3000, true, rng);
    sim::plant_gene(genome, sim::mutate_protein(proteins[2], divergence, rng),
                    9001, false, rng);
    genome_bank = bio::frames_to_bank(bio::translate_six_frames(genome));

    const index::SeedModel model = index::SeedModel::subset_w4();
    prefix = ::testing::TempDir() + "/" + name;
    plain_prefix = prefix + "_plain";
    const index::IndexTable table(genome_bank, model);
    const std::uint64_t checksum =
        store::save_bank(plain_prefix + ".pscbank", genome_bank);
    store::save_index(plain_prefix + ".pscidx", table, model, checksum);
    shard_count =
        store::write_sharded_store(prefix, genome_bank, model, shard_cap)
            .shards.size();
  }

  ~ClusterWorkload() {
    std::remove((plain_prefix + ".pscbank").c_str());
    std::remove((plain_prefix + ".pscidx").c_str());
    std::remove(store::manifest_path(prefix).c_str());
    for (std::size_t s = 0; s < shard_count; ++s) {
      const std::string pair = store::shard_prefix(prefix, s);
      std::remove((pair + ".pscbank").c_str());
      std::remove((pair + ".pscidx").c_str());
    }
  }

  std::string fasta() const {
    std::ostringstream out;
    for (const bio::Sequence& protein : proteins) {
      out << ">" << protein.id() << "\n" << protein.to_letters() << "\n";
    }
    return out.str();
  }

  /// Every shard index, for replicas that hold the whole store.
  std::vector<std::size_t> all_shards() const {
    std::vector<std::size_t> shards(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) shards[s] = s;
    return shards;
  }

  /// The unsharded single-node reference bytes for `options`.
  std::vector<std::uint8_t> reference_bytes(
      const service::QueryOptions& options) const {
    service::SearchService service;
    service::ServiceRequest request;
    request.query = proteins;
    request.bank_prefix = plain_prefix;
    request.options = options;
    const service::QueryResult result =
        service.submit(std::move(request)).get();
    return core::encode_matches(result.matches);
  }
};

/// One in-process psc_serve replica: its own SearchService behind a
/// net::Server whose allowlist scopes it to a shard subset, exactly as
/// `psc_serve --shards` does.
struct Replica {
  std::unique_ptr<service::SearchService> service;
  std::unique_ptr<net::Server> server;

  Replica(const std::string& bank_name,
          const std::vector<std::size_t>& shards) {
    net::ServerConfig config;
    config.bank_root = ::testing::TempDir();
    for (const std::size_t shard : shards) {
      config.allowed_prefixes.push_back(store::shard_prefix(bank_name, shard));
    }
    service = std::make_unique<service::SearchService>();
    server = std::make_unique<net::Server>(*service, config);
    server->start();
  }

  std::uint16_t port() const { return server->port(); }
};

/// An endpoint that is guaranteed dead: binds an ephemeral port to learn
/// its number, then releases it, so connecting gets ECONNREFUSED.
std::uint16_t dead_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

/// A replica that looks healthy (answers Ping) but never answers a
/// Search: the straggler the hedging policy exists for.
class StallingReplica {
 public:
  StallingReplica() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 8), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len),
              0);
    port_ = ntohs(addr.sin_port);
    accept_thread_ = std::thread([this] { accept_loop(); });
  }

  ~StallingReplica() {
    stopping_ = true;
    ::shutdown(listen_fd_, SHUT_RDWR);  // wakes the blocked accept
    accept_thread_.join();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    for (std::thread& thread : connection_threads_) thread.join();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const int fd : connection_fds_) ::close(fd);
    }
    ::close(listen_fd_);
  }

  std::uint16_t port() const { return port_; }

 private:
  void accept_loop() {
    while (!stopping_) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;  // listener shut down
      std::lock_guard<std::mutex> lock(mutex_);
      connection_fds_.push_back(fd);
      connection_threads_.emplace_back([this, fd] { serve_connection(fd); });
    }
  }

  void serve_connection(int fd) {
    net::FrameReader reader(std::uint64_t{1} << 30);
    std::uint8_t buffer[64 * 1024];
    for (;;) {
      while (auto frame = reader.next()) {
        if (frame->type == static_cast<std::uint16_t>(net::MessageType::kPing)) {
          const std::vector<std::uint8_t> pong =
              net::encode_frame(net::MessageType::kPong);
          const ssize_t sent =
              ::send(fd, pong.data(), pong.size(), MSG_NOSIGNAL);
          if (sent < 0) return;
        }
        // kSearch: swallow it and say nothing, forever.
      }
      const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n <= 0) return;
      reader.feed({buffer, static_cast<std::size_t>(n)});
    }
  }

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex mutex_;
  std::vector<int> connection_fds_;
  std::vector<std::thread> connection_threads_;
};

ReplicaEndpoint endpoint_for(std::uint16_t port,
                             std::vector<std::size_t> shards) {
  ReplicaEndpoint endpoint;
  endpoint.host = "127.0.0.1";
  endpoint.port = port;
  endpoint.shards = std::move(shards);
  return endpoint;
}

RouterConfig base_config(const ClusterWorkload& workload) {
  RouterConfig config;
  config.manifest_prefix = workload.prefix;
  config.bank_prefix = workload.name;
  config.retry_backoff_seconds = 0.01;
  config.request_timeout_seconds = 10.0;
  config.health.interval_seconds = 60.0;  // startup probe only
  config.health.timeout_seconds = 2.0;
  return config;
}

service::ServiceRequest request_for(const ClusterWorkload& workload,
                                    const service::QueryOptions& options) {
  service::ServiceRequest request;
  request.query = workload.proteins;
  request.bank_prefix = workload.name;
  request.options = options;
  return request;
}

TEST(RouterTest, MergedReplyIsByteIdenticalThroughTheFullStack) {
  const ClusterWorkload workload(60, "cluster_ident", 700);
  ASSERT_GE(workload.shard_count, 2u);
  service::QueryOptions options;
  options.with_traceback = true;
  const std::vector<std::uint8_t> reference =
      workload.reference_bytes(options);

  // Disjoint halves: every merged match crosses a replica boundary or
  // a shard-base remap, so identity here exercises the whole chain.
  std::vector<std::size_t> first_half, second_half;
  for (std::size_t s = 0; s < workload.shard_count; ++s) {
    (s < workload.shard_count / 2 ? first_half : second_half).push_back(s);
  }
  Replica replica_a(workload.name, first_half);
  Replica replica_b(workload.name, second_half);

  RouterConfig config = base_config(workload);
  config.replicas = {endpoint_for(replica_a.port(), first_half),
                     endpoint_for(replica_b.port(), second_half)};
  Router router(config);

  // Straight through the backend interface...
  const service::QueryResult direct =
      router.submit_search(request_for(workload, options)).get();
  EXPECT_EQ(core::encode_matches(direct.matches), reference);

  // ...and through the full wire stack, psc_client-style.
  net::ServerConfig front_config;
  front_config.bank_root = ".";
  front_config.allowed_prefixes = {workload.name};
  net::Server front(router, front_config);
  front.start();
  net::ClientConfig client_config;
  client_config.port = front.port();
  client_config.timeout_seconds = 20.0;
  net::Client client(client_config);
  const service::QueryResult remote =
      client.search(workload.name, workload.fasta(), options);
  EXPECT_EQ(core::encode_matches(remote.matches), reference);

  // The stats frame carries the per-replica table (codec v3) end to end.
  const service::ServiceStats stats = client.stats();
  EXPECT_EQ(stats.queries_completed, 2u);
  ASSERT_EQ(stats.replicas.size(), 2u);
  EXPECT_EQ(stats.replicas[0].endpoint,
            "127.0.0.1:" + std::to_string(replica_a.port()));
  EXPECT_TRUE(stats.replicas[0].up);
  EXPECT_TRUE(stats.replicas[1].up);
  EXPECT_GT(stats.replicas[0].requests, 0u);
  EXPECT_GT(stats.replicas[1].requests, 0u);
  front.stop();
}

TEST(RouterTest, DeadReplicaOfRedundantlyHeldShardsIsTransparent) {
  const ClusterWorkload workload(61, "cluster_redundant", 700);
  ASSERT_GE(workload.shard_count, 2u);
  service::QueryOptions options;
  options.with_traceback = true;
  const std::vector<std::uint8_t> reference =
      workload.reference_bytes(options);

  // The dead endpoint claims every shard, but so does the live one: the
  // startup probe benches the corpse and the query must not notice.
  Replica replica(workload.name, workload.all_shards());
  RouterConfig config = base_config(workload);
  config.replicas = {endpoint_for(dead_port(), workload.all_shards()),
                     endpoint_for(replica.port(), workload.all_shards())};
  Router router(config);

  const service::QueryResult merged =
      router.submit_search(request_for(workload, options)).get();
  EXPECT_EQ(core::encode_matches(merged.matches), reference);

  const service::ServiceStats stats = router.stats_snapshot();
  ASSERT_EQ(stats.replicas.size(), 2u);
  EXPECT_FALSE(stats.replicas[0].up);
  EXPECT_TRUE(stats.replicas[1].up);
  EXPECT_EQ(stats.replicas[0].requests, 0u);  // never even attempted
}

TEST(RouterTest, ShardWithNoLiveReplicaIsATypedErrorNotAHang) {
  const ClusterWorkload workload(62, "cluster_uncovered", 700);
  ASSERT_GE(workload.shard_count, 2u);

  // Shard 0's only holder is dead; the rest of the store is healthy.
  std::vector<std::size_t> rest;
  for (std::size_t s = 1; s < workload.shard_count; ++s) rest.push_back(s);
  Replica replica(workload.name, rest);
  RouterConfig config = base_config(workload);
  config.max_attempts = 2;
  config.replicas = {endpoint_for(dead_port(), {0}),
                     endpoint_for(replica.port(), rest)};
  Router router(config);

  auto future = router.submit_search(request_for(workload, {}));
  try {
    future.get();
    FAIL() << "expected WireError";
  } catch (const net::WireError& e) {
    EXPECT_EQ(e.code(), net::WireErrorCode::kShardUnavailable);
  }

  // The same failure through the wire stack arrives as a typed error
  // frame on an intact connection.
  net::ServerConfig front_config;
  front_config.bank_root = ".";
  net::Server front(router, front_config);
  front.start();
  net::ClientConfig client_config;
  client_config.port = front.port();
  client_config.timeout_seconds = 20.0;
  net::Client client(client_config);
  try {
    client.search(workload.name, workload.fasta());
    FAIL() << "expected WireError";
  } catch (const net::WireError& e) {
    EXPECT_EQ(e.code(), net::WireErrorCode::kShardUnavailable);
  }
  client.ping();  // connection survived the typed error
  front.stop();
}

TEST(RouterTest, ForeignBankPrefixIsBankNotFound) {
  const ClusterWorkload workload(63, "cluster_foreign", 0);
  ASSERT_EQ(workload.shard_count, 1u);
  Replica replica(workload.name, {0});
  RouterConfig config = base_config(workload);
  config.replicas = {endpoint_for(replica.port(), {0})};
  Router router(config);

  service::ServiceRequest request = request_for(workload, {});
  request.bank_prefix = "some_other_bank";
  try {
    router.submit_search(std::move(request)).get();
    FAIL() << "expected WireError";
  } catch (const net::WireError& e) {
    EXPECT_EQ(e.code(), net::WireErrorCode::kBankNotFound);
  }
}

TEST(RouterTest, ReplicaConfigIsValidatedAgainstTheManifestAtStartup) {
  const ClusterWorkload workload(64, "cluster_invalid", 700);
  ASSERT_GE(workload.shard_count, 2u);

  // A replica claiming a shard the manifest does not have...
  RouterConfig config = base_config(workload);
  config.replicas = {
      endpoint_for(1, workload.all_shards()),
      endpoint_for(2, {workload.shard_count})};
  EXPECT_THROW(Router{config}, std::invalid_argument);

  // ...and a manifest shard no replica claims: both die in the
  // constructor, not at the first query.
  std::vector<std::size_t> missing_last;
  for (std::size_t s = 0; s + 1 < workload.shard_count; ++s) {
    missing_last.push_back(s);
  }
  config.replicas = {endpoint_for(1, missing_last)};
  EXPECT_THROW(Router{config}, std::invalid_argument);
}

TEST(RouterTest, HedgeOvertakesAStallingReplica) {
  const ClusterWorkload workload(65, "cluster_hedge", 0);
  ASSERT_EQ(workload.shard_count, 1u);
  service::QueryOptions options;
  options.with_traceback = true;
  const std::vector<std::uint8_t> reference =
      workload.reference_bytes(options);

  // The staller answers health probes, so it stays in rotation and (as
  // the lower index at equal load) takes the primary attempt; only the
  // hedge can finish the query.
  StallingReplica staller;
  Replica replica(workload.name, {0});
  RouterConfig config = base_config(workload);
  config.hedge_delay_seconds = 0.05;
  config.replicas = {endpoint_for(staller.port(), {0}),
                     endpoint_for(replica.port(), {0})};
  Router router(config);

  const service::QueryResult merged =
      router.submit_search(request_for(workload, options)).get();
  EXPECT_EQ(core::encode_matches(merged.matches), reference);

  const service::ServiceStats stats = router.stats_snapshot();
  ASSERT_EQ(stats.replicas.size(), 2u);
  EXPECT_EQ(stats.replicas[0].hedges, 0u);  // the primary went here
  EXPECT_EQ(stats.replicas[1].hedges, 1u);  // the winner was the hedge
  EXPECT_EQ(stats.replicas[1].failures, 0u);
  // The stalled primary was cancelled, not blamed: no failure recorded,
  // and its inflight slot drained when the winner tore the race down.
  EXPECT_EQ(stats.replicas[0].failures, 0u);
  EXPECT_EQ(stats.replicas[0].inflight, 0u);
  EXPECT_TRUE(stats.replicas[0].up);
}

TEST(RouterTest, TenantQpsQuotaRejectsAtTheRouterWithTypedError) {
  const ClusterWorkload workload(66, "cluster_quota", 0);
  Replica replica(workload.name, {0});
  RouterConfig config = base_config(workload);
  config.replicas = {endpoint_for(replica.port(), {0})};
  // One query/sec, bucket of one token: of two back-to-back submits the
  // second MUST fail fast with the per-tenant code, before any replica
  // sees a byte of it.
  config.tenants.default_policy.max_qps = 1.0;
  Router router(config);

  auto first = router.submit_search(request_for(workload, {}));
  auto second = router.submit_search(request_for(workload, {}));
  EXPECT_FALSE(first.get().matches.empty());
  try {
    second.get();
    FAIL() << "expected kQuotaExceeded";
  } catch (const net::WireError& e) {
    EXPECT_EQ(e.code(), net::WireErrorCode::kQuotaExceeded);
  }

  const service::ServiceStats stats = router.stats_snapshot();
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].name, "default");
  EXPECT_EQ(stats.tenants[0].admitted, 1u);
  EXPECT_EQ(stats.tenants[0].rejected, 1u);
  EXPECT_EQ(stats.tenants[0].completed, 1u);
  EXPECT_EQ(stats.tenants[0].queued, 0u);
}

TEST(RouterTest, ClusterAdmissionCapRejectsFastNotQueues) {
  const ClusterWorkload workload(67, "cluster_admission", 0);
  // The only replica swallows searches, so the first fan-out stays
  // active until its (short) timeout -- long enough to prove the second
  // submit is refused IMMEDIATELY rather than queued behind it.
  StallingReplica staller;
  RouterConfig config = base_config(workload);
  config.replicas = {endpoint_for(staller.port(), {0})};
  config.max_active_fanouts = 1;
  config.max_attempts = 1;
  config.request_timeout_seconds = 0.4;
  config.hedge_delay_seconds = 0.0;
  Router router(config);

  auto occupant = router.submit_search(request_for(workload, {}));
  auto rejected = router.submit_search(request_for(workload, {}));
  try {
    rejected.get();
    FAIL() << "expected kAdmissionRejected";
  } catch (const net::WireError& e) {
    EXPECT_EQ(e.code(), net::WireErrorCode::kAdmissionRejected);
  }
  // The occupant fails on its own terms (the staller never answers);
  // the admission gate must not have eaten its slot permanently.
  EXPECT_THROW(occupant.get(), net::WireError);

  const service::ServiceStats stats = router.stats_snapshot();
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].rejected, 1u);
  EXPECT_EQ(stats.tenants[0].queued, 0u);

  // With the gate idle again, a submit is admitted (and then fails on
  // the dead cluster, which is fine -- admission is what we test).
  auto after = router.submit_search(request_for(workload, {}));
  try {
    after.get();
  } catch (const net::WireError& e) {
    EXPECT_NE(e.code(), net::WireErrorCode::kAdmissionRejected);
  }
}

TEST(RouterTest, HedgeBudgetZeroKeepsThePrimaryAndCountsTheDenial) {
  const ClusterWorkload workload(68, "cluster_hedge_budget", 0);
  service::QueryOptions options;
  options.with_traceback = true;
  const std::vector<std::uint8_t> reference =
      workload.reference_bytes(options);

  // Same topology as the hedge test -- a stalling primary and a healthy
  // second replica -- but the tenant's hedge budget is zero: the rescue
  // must come from the RETRY path (after the primary times out), never
  // from a hedge, and the denial is visible in the tenant row.
  StallingReplica staller;
  Replica replica(workload.name, {0});
  RouterConfig config = base_config(workload);
  config.hedge_delay_seconds = 0.05;
  config.request_timeout_seconds = 0.5;
  config.replicas = {endpoint_for(staller.port(), {0}),
                     endpoint_for(replica.port(), {0})};
  config.tenants.default_policy.hedges_per_second = 0.0;
  Router router(config);

  const service::QueryResult merged =
      router.submit_search(request_for(workload, options)).get();
  EXPECT_EQ(core::encode_matches(merged.matches), reference);

  const service::ServiceStats stats = router.stats_snapshot();
  ASSERT_EQ(stats.replicas.size(), 2u);
  EXPECT_EQ(stats.replicas[0].hedges, 0u);
  EXPECT_EQ(stats.replicas[1].hedges, 0u);
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].hedges, 0u);
  EXPECT_GE(stats.tenants[0].hedges_denied, 1u);
  EXPECT_EQ(stats.tenants[0].completed, 1u);
}

TEST(RouterTest, RefreshAdoptsAppendedTailThroughAllClaims) {
  const ClusterWorkload workload(69, "cluster_refresh", 700);
  ASSERT_GE(workload.shard_count, 2u);
  const index::SeedModel model = index::SeedModel::subset_w4();
  service::QueryOptions options;
  options.with_traceback = true;

  // An unrestricted replica (no allowlist), claimed with "=all" so it
  // also covers shards that do not exist yet.
  Replica replica(workload.name, {});
  RouterConfig config = base_config(workload);
  config.replicas = parse_replica_list(
      "127.0.0.1:" + std::to_string(replica.port()) + "=all");
  Router router(config);
  EXPECT_EQ(router.manifest().revision, 1u);

  const service::QueryResult before =
      router.submit_search(request_for(workload, options)).get();
  ASSERT_FALSE(before.matches.empty());

  // Append a delta with a planted match and adopt it at the router.
  util::Xoshiro256 rng(70);
  sim::MutationConfig divergence;
  divergence.substitution_rate = 0.05;
  divergence.indel_rate = 0.0;
  bio::SequenceBank delta(bio::SequenceKind::kProtein);
  delta.add(sim::mutate_protein(workload.proteins[3], divergence, rng));
  const store::ShardManifest extended =
      store::append_sharded_store(workload.prefix, delta, model);
  EXPECT_EQ(router.refresh_manifest(workload.name), 2u);
  EXPECT_EQ(router.manifest().revision, 2u);
  EXPECT_EQ(router.manifest().shards.size(), workload.shard_count + 1);

  // The adopted generation answers byte-identically to an unsharded
  // single node over the combined bank -- the live-ingest acceptance
  // bar, through the whole cluster stack.
  bio::SequenceBank combined(bio::SequenceKind::kProtein);
  for (const bio::Sequence& s : workload.genome_bank) combined.add(s);
  for (const bio::Sequence& s : delta) combined.add(s);
  const std::string combined_prefix =
      ::testing::TempDir() + "/cluster_refresh_combined";
  const index::IndexTable combined_table(combined, model);
  const std::uint64_t combined_checksum =
      store::save_bank(combined_prefix + ".pscbank", combined);
  store::save_index(combined_prefix + ".pscidx", combined_table, model,
                    combined_checksum);
  service::SearchService single;
  service::ServiceRequest reference_request;
  reference_request.query = workload.proteins;
  reference_request.bank_prefix = combined_prefix;
  reference_request.options = options;
  const service::QueryResult reference =
      single.submit(std::move(reference_request)).get();

  const service::QueryResult after =
      router.submit_search(request_for(workload, options)).get();
  EXPECT_EQ(core::encode_matches(after.matches),
            core::encode_matches(reference.matches));
  EXPECT_NE(core::encode_matches(after.matches),
            core::encode_matches(before.matches));

  // Idempotent re-refresh: same revision, no second adoption counted.
  EXPECT_EQ(router.refresh_manifest(workload.name), 2u);
  const service::ServiceStats stats = router.stats_snapshot();
  EXPECT_EQ(stats.manifest_refreshes, 1u);
  EXPECT_EQ(stats.store_revision, 2u);

  // A foreign prefix is the same typed error Search gives.
  try {
    router.refresh_manifest("some_other_bank");
    FAIL() << "expected WireError";
  } catch (const net::WireError& e) {
    EXPECT_EQ(e.code(), net::WireErrorCode::kBankNotFound);
  }

  const std::string tail =
      store::shard_prefix(workload.prefix, extended.shards.size() - 1);
  std::remove((tail + ".pscbank").c_str());
  std::remove((tail + ".pscidx").c_str());
  std::remove((combined_prefix + ".pscbank").c_str());
  std::remove((combined_prefix + ".pscidx").c_str());
}

TEST(RouterTest, RefreshRejectsUncoveredTailAndNonExtension) {
  const ClusterWorkload workload(71, "cluster_refresh_guard", 700);
  ASSERT_GE(workload.shard_count, 2u);
  const index::SeedModel model = index::SeedModel::subset_w4();

  // Explicit claims only: the replica covers today's shards but makes
  // no promise about tomorrow's tail.
  Replica replica(workload.name, workload.all_shards());
  RouterConfig config = base_config(workload);
  config.replicas = {endpoint_for(replica.port(), workload.all_shards())};
  Router router(config);

  const bio::SequenceBank empty(bio::SequenceKind::kProtein);
  const store::ShardManifest extended =
      store::append_sharded_store(workload.prefix, empty, model);
  try {
    router.refresh_manifest(workload.name);
    FAIL() << "expected WireError";
  } catch (const net::WireError& e) {
    EXPECT_EQ(e.code(), net::WireErrorCode::kShardUnavailable);
  }
  // The refusal left the serving generation untouched -- queries keep
  // working over revision 1.
  EXPECT_EQ(router.manifest().revision, 1u);
  EXPECT_FALSE(
      router.submit_search(request_for(workload, {})).get().matches.empty());

  // A rebuilt-from-scratch store under the same prefix is NOT an
  // extension of the serving generation even at a higher revision: the
  // leading slots changed, so adopting it would remap in-flight
  // semantics silently. Typed refusal instead.
  util::Xoshiro256 rng(72);
  bio::SequenceBank other(bio::SequenceKind::kProtein);
  for (int i = 0; i < 12; ++i) {
    other.add(sim::generate_protein("o" + std::to_string(i), 80, rng));
  }
  const store::ShardManifest rebuilt =
      store::write_sharded_store(workload.prefix, other, model, 400);
  const store::ShardManifest bumped =
      store::append_sharded_store(workload.prefix, empty, model);
  ASSERT_EQ(bumped.revision, 2u);
  try {
    router.refresh_manifest(workload.name);
    FAIL() << "expected WireError";
  } catch (const net::WireError& e) {
    EXPECT_EQ(e.code(), net::WireErrorCode::kRevisionMismatch);
  }
  EXPECT_EQ(router.manifest().revision, 1u);

  const std::size_t cleanup_count =
      std::max(extended.shards.size(), bumped.shards.size());
  for (std::size_t s = workload.shard_count; s < cleanup_count; ++s) {
    const std::string pair = store::shard_prefix(workload.prefix, s);
    std::remove((pair + ".pscbank").c_str());
    std::remove((pair + ".pscidx").c_str());
  }
  (void)rebuilt;
}

}  // namespace
}  // namespace psc::cluster
