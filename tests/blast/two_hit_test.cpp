#include "blast/two_hit.hpp"

#include <gtest/gtest.h>

namespace psc::blast {
namespace {

TEST(DiagonalTracker, FirstHitNeverTriggers) {
  DiagonalTracker tracker(100, 100, 40);
  tracker.new_subject();
  EXPECT_FALSE(tracker.register_hit(10, 20, 3));
}

TEST(DiagonalTracker, SecondHitOnDiagonalWithinWindowTriggers) {
  DiagonalTracker tracker(100, 100, 40);
  tracker.new_subject();
  EXPECT_FALSE(tracker.register_hit(10, 20, 3));
  // Same diagonal: query 10 + d, subject 20 + d.
  EXPECT_TRUE(tracker.register_hit(20, 30, 3));
}

TEST(DiagonalTracker, DifferentDiagonalDoesNotTrigger) {
  DiagonalTracker tracker(100, 100, 40);
  tracker.new_subject();
  EXPECT_FALSE(tracker.register_hit(10, 20, 3));
  EXPECT_FALSE(tracker.register_hit(10, 25, 3));  // diagonal moved by 5
}

TEST(DiagonalTracker, OverlappingHitsDoNotTrigger) {
  DiagonalTracker tracker(100, 100, 40);
  tracker.new_subject();
  EXPECT_FALSE(tracker.register_hit(10, 20, 3));
  // Distance 2 < word size 3: overlapping words.
  EXPECT_FALSE(tracker.register_hit(12, 22, 3));
}

TEST(DiagonalTracker, BeyondWindowDoesNotTrigger) {
  DiagonalTracker tracker(200, 200, 40);
  tracker.new_subject();
  EXPECT_FALSE(tracker.register_hit(10, 20, 3));
  EXPECT_FALSE(tracker.register_hit(61, 71, 3));  // distance 51 > 40
  // But the tracker remembered the newer hit: a third within range works.
  EXPECT_TRUE(tracker.register_hit(71, 81, 3));
}

TEST(DiagonalTracker, NewSubjectForgetsHits) {
  DiagonalTracker tracker(100, 100, 40);
  tracker.new_subject();
  EXPECT_FALSE(tracker.register_hit(10, 20, 3));
  tracker.new_subject();
  EXPECT_FALSE(tracker.register_hit(20, 30, 3));  // would trigger otherwise
}

TEST(DiagonalTracker, ExtendedRegionSuppressesRetrigger) {
  DiagonalTracker tracker(100, 200, 40);
  tracker.new_subject();
  tracker.register_hit(10, 20, 3);
  tracker.mark_extended(10, 20, 60);
  EXPECT_TRUE(tracker.covered(30, 40));   // same diagonal, inside region
  EXPECT_FALSE(tracker.covered(30, 90));  // same diagonal, past region
  // Hits inside the covered region do not trigger.
  EXPECT_FALSE(tracker.register_hit(30, 40, 3));
}

TEST(DiagonalTracker, CoverageIsPerDiagonal) {
  DiagonalTracker tracker(100, 200, 40);
  tracker.new_subject();
  tracker.mark_extended(10, 20, 60);
  EXPECT_FALSE(tracker.covered(12, 40));  // different diagonal
}

TEST(DiagonalTracker, NegativeDiagonalsWork) {
  // Query position greater than subject position.
  DiagonalTracker tracker(100, 100, 40);
  tracker.new_subject();
  EXPECT_FALSE(tracker.register_hit(80, 5, 3));
  EXPECT_TRUE(tracker.register_hit(85, 10, 3));
}

TEST(DiagonalTracker, SubjectTooLongThrows) {
  DiagonalTracker tracker(10, 10, 40);
  tracker.new_subject();
  EXPECT_THROW(tracker.register_hit(0, 50, 3), std::out_of_range);
}

TEST(DiagonalTracker, ManySubjectsEpochSafety) {
  DiagonalTracker tracker(50, 50, 40);
  for (int s = 0; s < 1000; ++s) {
    tracker.new_subject();
    EXPECT_FALSE(tracker.register_hit(10, 20, 3));
    EXPECT_TRUE(tracker.register_hit(15, 25, 3));
  }
}

}  // namespace
}  // namespace psc::blast
