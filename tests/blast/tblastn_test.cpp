#include "blast/tblastn.hpp"

#include <gtest/gtest.h>

#include "sim/genome_generator.hpp"
#include "sim/mutation.hpp"
#include "sim/protein_generator.hpp"

namespace psc::blast {
namespace {

TEST(Tblastn, FindsIdenticalProteinInSubjects) {
  bio::SequenceBank queries(bio::SequenceKind::kProtein);
  util::Xoshiro256 rng(1);
  queries.add(sim::generate_protein("q", 80, rng));

  bio::SequenceBank subjects(bio::SequenceKind::kProtein);
  subjects.add(sim::generate_protein("noise", 200, rng));
  // Subject 1 embeds the query.
  bio::Sequence host = sim::generate_protein("host", 200, rng);
  for (std::size_t k = 0; k < queries[0].size(); ++k) {
    host.mutable_residues()[50 + k] = queries[0][k];
  }
  subjects.add(std::move(host));

  TblastnOptions options;
  const TblastnResult result = tblastn_search(
      queries, subjects, bio::SubstitutionMatrix::blosum62(), options);
  ASSERT_FALSE(result.hits.empty());
  EXPECT_EQ(result.hits[0].query, 0u);
  EXPECT_EQ(result.hits[0].subject, 1u);
  EXPECT_LE(result.hits[0].e_value, options.e_value_cutoff);
  EXPECT_GT(result.hits[0].bit_score, 50.0);
}

TEST(Tblastn, NoHitsBetweenUnrelatedSequences) {
  util::Xoshiro256 rng(2);
  bio::SequenceBank queries(bio::SequenceKind::kProtein);
  queries.add(sim::generate_protein("q", 60, rng));
  bio::SequenceBank subjects(bio::SequenceKind::kProtein);
  for (int i = 0; i < 5; ++i) {
    subjects.add(sim::generate_protein("s" + std::to_string(i), 100, rng));
  }
  const TblastnResult result =
      tblastn_search(queries, subjects, bio::SubstitutionMatrix::blosum62(),
                     TblastnOptions{});
  EXPECT_TRUE(result.hits.empty());
  EXPECT_GT(result.counters.subject_words, 0u);
}

TEST(Tblastn, FindsDivergedHomolog) {
  util::Xoshiro256 rng(3);
  bio::SequenceBank queries(bio::SequenceKind::kProtein);
  const bio::Sequence ancestor = sim::generate_protein("anc", 150, rng);
  queries.add(bio::Sequence("q", bio::SequenceKind::kProtein,
                            std::vector<std::uint8_t>(ancestor.residues())));

  sim::MutationConfig divergence;
  divergence.substitution_rate = 0.25;
  bio::SequenceBank subjects(bio::SequenceKind::kProtein);
  subjects.add(sim::mutate_protein(ancestor, divergence, rng));
  subjects.add(sim::generate_protein("noise", 300, rng));

  const TblastnResult result =
      tblastn_search(queries, subjects, bio::SubstitutionMatrix::blosum62(),
                     TblastnOptions{});
  ASSERT_FALSE(result.hits.empty());
  EXPECT_EQ(result.hits[0].subject, 0u);
}

TEST(Tblastn, EmptyInputsGiveEmptyResults) {
  bio::SequenceBank empty(bio::SequenceKind::kProtein);
  bio::SequenceBank one(bio::SequenceKind::kProtein);
  one.add(bio::Sequence::protein_from_letters("p", "MKVLARND"));
  EXPECT_TRUE(tblastn_search(empty, one, bio::SubstitutionMatrix::blosum62(),
                             TblastnOptions{})
                  .hits.empty());
  EXPECT_TRUE(tblastn_search(one, empty, bio::SubstitutionMatrix::blosum62(),
                             TblastnOptions{})
                  .hits.empty());
}

TEST(Tblastn, TwoHitStricterThanOneHit) {
  util::Xoshiro256 rng(4);
  bio::SequenceBank queries(bio::SequenceKind::kProtein);
  queries.add(sim::generate_protein("q", 100, rng));
  bio::SequenceBank subjects(bio::SequenceKind::kProtein);
  bio::Sequence host = sim::generate_protein("host", 300, rng);
  for (std::size_t k = 0; k < 40; ++k) {
    host.mutable_residues()[100 + k] = queries[0][20 + k];
  }
  subjects.add(std::move(host));

  TblastnOptions one_hit;
  one_hit.two_hit = false;
  TblastnOptions two_hit;
  two_hit.two_hit = true;
  const auto r1 = tblastn_search(queries, subjects,
                                 bio::SubstitutionMatrix::blosum62(), one_hit);
  const auto r2 = tblastn_search(queries, subjects,
                                 bio::SubstitutionMatrix::blosum62(), two_hit);
  EXPECT_GE(r1.counters.triggers, r2.counters.triggers);
  // Both still find the strong 40-residue identity.
  EXPECT_FALSE(r1.hits.empty());
  EXPECT_FALSE(r2.hits.empty());
}

TEST(Tblastn, EValueCutoffFilters) {
  util::Xoshiro256 rng(5);
  bio::SequenceBank queries(bio::SequenceKind::kProtein);
  queries.add(sim::generate_protein("q", 80, rng));
  bio::SequenceBank subjects(bio::SequenceKind::kProtein);
  bio::Sequence host = sim::generate_protein("host", 200, rng);
  for (std::size_t k = 0; k < queries[0].size(); ++k) {
    host.mutable_residues()[50 + k] = queries[0][k];
  }
  subjects.add(std::move(host));

  TblastnOptions strict;
  strict.e_value_cutoff = 1e-300;
  const auto result = tblastn_search(
      queries, subjects, bio::SubstitutionMatrix::blosum62(), strict);
  EXPECT_TRUE(result.hits.empty());
}

TEST(Tblastn, TracebackProducesOps) {
  util::Xoshiro256 rng(6);
  bio::SequenceBank queries(bio::SequenceKind::kProtein);
  queries.add(sim::generate_protein("q", 60, rng));
  bio::SequenceBank subjects(bio::SequenceKind::kProtein);
  bio::Sequence host = sim::generate_protein("host", 150, rng);
  for (std::size_t k = 0; k < queries[0].size(); ++k) {
    host.mutable_residues()[40 + k] = queries[0][k];
  }
  subjects.add(std::move(host));

  TblastnOptions options;
  options.with_traceback = true;
  const auto result = tblastn_search(
      queries, subjects, bio::SubstitutionMatrix::blosum62(), options);
  ASSERT_FALSE(result.hits.empty());
  EXPECT_FALSE(result.hits[0].alignment.ops.empty());
}

TEST(Tblastn, GenomeSearchFindsPlantedGene) {
  util::Xoshiro256 rng(7);
  sim::GenomeConfig genome_config;
  genome_config.length = 30000;
  genome_config.seed = 7;
  bio::Sequence genome = sim::generate_genome(genome_config);

  bio::SequenceBank queries(bio::SequenceKind::kProtein);
  queries.add(sim::generate_protein("q", 90, rng));
  sim::plant_gene(genome, queries[0], 9000, /*forward=*/true, rng);

  const TblastnResult result = tblastn_search_genome(
      queries, genome, bio::SubstitutionMatrix::blosum62(), TblastnOptions{});
  ASSERT_FALSE(result.hits.empty());
  EXPECT_EQ(result.hits[0].query, 0u);
}

TEST(Tblastn, GenomeSearchFindsReverseStrandGene) {
  util::Xoshiro256 rng(8);
  sim::GenomeConfig genome_config;
  genome_config.length = 30000;
  genome_config.seed = 8;
  bio::Sequence genome = sim::generate_genome(genome_config);

  bio::SequenceBank queries(bio::SequenceKind::kProtein);
  queries.add(sim::generate_protein("q", 90, rng));
  sim::plant_gene(genome, queries[0], 9001, /*forward=*/false, rng);

  const TblastnResult result = tblastn_search_genome(
      queries, genome, bio::SubstitutionMatrix::blosum62(), TblastnOptions{});
  ASSERT_FALSE(result.hits.empty());
}

TEST(Tblastn, HitsSortedByEValue) {
  util::Xoshiro256 rng(9);
  bio::SequenceBank queries(bio::SequenceKind::kProtein);
  queries.add(sim::generate_protein("q", 120, rng));
  bio::SequenceBank subjects(bio::SequenceKind::kProtein);
  // Strong full-length copy and a weaker partial copy.
  bio::Sequence strong = sim::generate_protein("strong", 200, rng);
  for (std::size_t k = 0; k < 120; ++k) {
    strong.mutable_residues()[30 + k] = queries[0][k];
  }
  bio::Sequence weak = sim::generate_protein("weak", 200, rng);
  for (std::size_t k = 0; k < 50; ++k) {
    weak.mutable_residues()[30 + k] = queries[0][k];
  }
  subjects.add(std::move(strong));
  subjects.add(std::move(weak));

  const TblastnResult result = tblastn_search(
      queries, subjects, bio::SubstitutionMatrix::blosum62(), TblastnOptions{});
  ASSERT_GE(result.hits.size(), 2u);
  for (std::size_t i = 1; i < result.hits.size(); ++i) {
    EXPECT_LE(result.hits[i - 1].e_value, result.hits[i].e_value);
  }
}

TEST(Tblastn, CompositionStatsChangeEValuesNotHits) {
  util::Xoshiro256 rng(11);
  bio::SequenceBank queries(bio::SequenceKind::kProtein);
  // A biased query: background plus a long alanine-rich insert.
  bio::Sequence biased = sim::generate_protein("biased", 120, rng);
  for (std::size_t k = 40; k < 80; ++k) {
    biased.mutable_residues()[k] = bio::encode_protein('A');
  }
  queries.add(std::move(biased));
  bio::SequenceBank subjects(bio::SequenceKind::kProtein);
  bio::Sequence host = sim::generate_protein("host", 250, rng);
  for (std::size_t k = 0; k < 120; ++k) {
    host.mutable_residues()[60 + k] = queries[0][k];
  }
  subjects.add(std::move(host));

  TblastnOptions plain;
  TblastnOptions adjusted;
  adjusted.composition_based_stats = true;
  const auto a = tblastn_search(queries, subjects,
                                bio::SubstitutionMatrix::blosum62(), plain);
  const auto b = tblastn_search(queries, subjects,
                                bio::SubstitutionMatrix::blosum62(), adjusted);
  ASSERT_FALSE(a.hits.empty());
  ASSERT_FALSE(b.hits.empty());
  // Same alignment, different statistics: the biased query's E-value is
  // more conservative (larger) under composition-based statistics.
  EXPECT_EQ(a.hits[0].alignment.score, b.hits[0].alignment.score);
  EXPECT_GT(b.hits[0].e_value, a.hits[0].e_value);
}

TEST(Tblastn, CountersAreConsistent) {
  util::Xoshiro256 rng(10);
  bio::SequenceBank queries(bio::SequenceKind::kProtein);
  queries.add(sim::generate_protein("q", 80, rng));
  bio::SequenceBank subjects(bio::SequenceKind::kProtein);
  subjects.add(sim::generate_protein("s", 200, rng));
  const TblastnResult result = tblastn_search(
      queries, subjects, bio::SubstitutionMatrix::blosum62(), TblastnOptions{});
  EXPECT_EQ(result.counters.subject_words, 200u - 3 + 1);
  EXPECT_GE(result.counters.word_hits, result.counters.triggers);
  EXPECT_GE(result.counters.triggers, result.counters.ungapped_passed);
  EXPECT_GE(result.counters.ungapped_passed, result.counters.gapped_runs * 0);
}

}  // namespace
}  // namespace psc::blast
