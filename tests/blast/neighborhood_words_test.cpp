#include "blast/neighborhood_words.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace psc::blast {
namespace {

std::vector<std::uint8_t> encode(const std::string& letters) {
  std::vector<std::uint8_t> out;
  for (const char c : letters) out.push_back(bio::encode_protein(c));
  return out;
}

std::uint32_t pack(const std::string& letters) {
  std::uint32_t key = 0;
  for (const char c : letters) {
    key = key * 20 + bio::encode_protein(c);
  }
  return key;
}

TEST(EnumerateNeighborhood, SelfIncludedWhenAboveThreshold) {
  const auto word = encode("WWW");  // self-score 33
  std::vector<std::uint32_t> keys;
  enumerate_neighborhood(word, bio::SubstitutionMatrix::blosum62(), 20, keys);
  EXPECT_NE(std::find(keys.begin(), keys.end(), pack("WWW")), keys.end());
}

TEST(EnumerateNeighborhood, SelfExcludedWhenBelowThreshold) {
  // AAA self-score is 12; with T=13 even the word itself fails. This is
  // real BLAST behaviour for low-scoring words.
  const auto word = encode("AAA");
  std::vector<std::uint32_t> keys;
  enumerate_neighborhood(word, bio::SubstitutionMatrix::blosum62(), 13, keys);
  EXPECT_EQ(std::find(keys.begin(), keys.end(), pack("AAA")), keys.end());
}

TEST(EnumerateNeighborhood, MatchesBruteForceCount) {
  const auto& m = bio::SubstitutionMatrix::blosum62();
  for (const std::string w : {"MKV", "WCH", "AAA", "LLL"}) {
    const auto word = encode(w);
    std::vector<std::uint32_t> keys;
    enumerate_neighborhood(word, m, 12, keys);

    std::size_t brute = 0;
    for (std::uint8_t a = 0; a < 20; ++a) {
      for (std::uint8_t b = 0; b < 20; ++b) {
        for (std::uint8_t c = 0; c < 20; ++c) {
          const int score = m.score(word[0], a) + m.score(word[1], b) +
                            m.score(word[2], c);
          if (score >= 12) ++brute;
        }
      }
    }
    EXPECT_EQ(keys.size(), brute) << w;
  }
}

TEST(EnumerateNeighborhood, HigherThresholdShrinksNeighborhood) {
  const auto word = encode("MKV");
  const auto& m = bio::SubstitutionMatrix::blosum62();
  std::vector<std::uint32_t> loose, tight;
  enumerate_neighborhood(word, m, 10, loose);
  enumerate_neighborhood(word, m, 14, tight);
  EXPECT_GT(loose.size(), tight.size());
  EXPECT_FALSE(tight.empty());  // self-score M+K+V = 5+5+4 = 14
}

TEST(EnumerateNeighborhood, MaskedWordHasNoNeighborhood) {
  const auto word = encode("MXV");
  std::vector<std::uint32_t> keys;
  enumerate_neighborhood(word, bio::SubstitutionMatrix::blosum62(), 1, keys);
  EXPECT_TRUE(keys.empty());
}

TEST(WordLookup, FindsExactQueryWord) {
  bio::SequenceBank queries(bio::SequenceKind::kProtein);
  queries.add(bio::Sequence::protein_from_letters("q", "MKVLW"));
  const WordLookup lookup(queries, 3, 11, bio::SubstitutionMatrix::blosum62());
  const auto word = encode("MKV");
  const auto hits = lookup.hits(lookup.key(word.data()));
  bool found = false;
  for (const auto& hit : hits) {
    if (hit.query == 0 && hit.position == 0) found = true;
  }
  EXPECT_TRUE(found);  // MKV self-score 14 >= 11
}

TEST(WordLookup, FindsNeighborWords) {
  bio::SequenceBank queries(bio::SequenceKind::kProtein);
  queries.add(bio::Sequence::protein_from_letters("q", "MKVLW"));
  const WordLookup lookup(queries, 3, 11, bio::SubstitutionMatrix::blosum62());
  // MKI scores 5+5+3=13 vs MKV -> in the neighbourhood at T=11.
  const auto word = encode("MKI");
  const auto hits = lookup.hits(lookup.key(word.data()));
  bool found = false;
  for (const auto& hit : hits) {
    if (hit.query == 0 && hit.position == 0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(WordLookup, MaskedSubjectKeyGivesNoHits) {
  bio::SequenceBank queries(bio::SequenceKind::kProtein);
  queries.add(bio::Sequence::protein_from_letters("q", "MKVLW"));
  const WordLookup lookup(queries, 3, 11, bio::SubstitutionMatrix::blosum62());
  const auto masked = encode("MXV");
  EXPECT_EQ(lookup.key(masked.data()), WordLookup::npos_key);
  EXPECT_TRUE(lookup.hits(WordLookup::npos_key).empty());
}

TEST(WordLookup, MultipleQueriesTagged) {
  bio::SequenceBank queries(bio::SequenceKind::kProtein);
  queries.add(bio::Sequence::protein_from_letters("a", "MKV"));
  queries.add(bio::Sequence::protein_from_letters("b", "WMKV"));
  const WordLookup lookup(queries, 3, 11, bio::SubstitutionMatrix::blosum62());
  const auto word = encode("MKV");
  const auto hits = lookup.hits(lookup.key(word.data()));
  bool saw_a = false, saw_b = false;
  for (const auto& hit : hits) {
    if (hit.query == 0 && hit.position == 0) saw_a = true;
    if (hit.query == 1 && hit.position == 1) saw_b = true;
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST(WordLookup, MeanNeighborhoodReasonable) {
  bio::SequenceBank queries(bio::SequenceKind::kProtein);
  queries.add(bio::Sequence::protein_from_letters(
      "q", "MKVLARNDCQEGHIKWFPSTYV"));
  const WordLookup lookup(queries, 3, 11, bio::SubstitutionMatrix::blosum62());
  // BLAST neighbourhoods at T=11 average some tens of words per position.
  EXPECT_GT(lookup.mean_neighborhood(), 1.0);
  EXPECT_LT(lookup.mean_neighborhood(), 500.0);
}

TEST(WordLookup, InvalidWordSizeThrows) {
  bio::SequenceBank queries(bio::SequenceKind::kProtein);
  queries.add(bio::Sequence::protein_from_letters("q", "MKV"));
  EXPECT_THROW(WordLookup(queries, 0, 11, bio::SubstitutionMatrix::blosum62()),
               std::invalid_argument);
  EXPECT_THROW(WordLookup(queries, 6, 11, bio::SubstitutionMatrix::blosum62()),
               std::invalid_argument);
}

}  // namespace
}  // namespace psc::blast
