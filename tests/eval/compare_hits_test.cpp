#include "eval/compare_hits.hpp"

#include <gtest/gtest.h>

namespace psc::eval {
namespace {

GenericHit hit(std::uint32_t q, std::uint32_t s, std::size_t b,
               std::size_t e) {
  GenericHit h;
  h.query = q;
  h.subject = s;
  h.begin1 = b;
  h.end1 = e;
  return h;
}

TEST(CompareHits, IdenticalSetsFullyShared) {
  const std::vector<GenericHit> a = {hit(0, 1, 10, 50), hit(1, 2, 5, 30)};
  const OverlapStats stats = compare_hits(a, a);
  EXPECT_EQ(stats.shared, 2u);
  EXPECT_EQ(stats.only_a, 0u);
  EXPECT_EQ(stats.only_b, 0u);
  EXPECT_DOUBLE_EQ(stats.jaccard(), 1.0);
}

TEST(CompareHits, DisjointSets) {
  const std::vector<GenericHit> a = {hit(0, 1, 10, 50)};
  const std::vector<GenericHit> b = {hit(0, 2, 10, 50), hit(3, 1, 10, 50)};
  const OverlapStats stats = compare_hits(a, b);
  EXPECT_EQ(stats.shared, 0u);
  EXPECT_EQ(stats.only_a, 1u);
  EXPECT_EQ(stats.only_b, 2u);
  EXPECT_DOUBLE_EQ(stats.jaccard(), 0.0);
}

TEST(CompareHits, OverlappingRangesMatch) {
  const std::vector<GenericHit> a = {hit(0, 1, 10, 50)};
  const std::vector<GenericHit> b = {hit(0, 1, 40, 90)};
  const OverlapStats stats = compare_hits(a, b);
  EXPECT_EQ(stats.shared, 1u);
}

TEST(CompareHits, AdjacentRangesDoNotMatch) {
  const std::vector<GenericHit> a = {hit(0, 1, 10, 50)};
  const std::vector<GenericHit> b = {hit(0, 1, 50, 90)};
  const OverlapStats stats = compare_hits(a, b);
  EXPECT_EQ(stats.shared, 0u);
}

TEST(CompareHits, OneToOnePairing) {
  // Two hits in A overlapping one hit in B: only one pairs.
  const std::vector<GenericHit> a = {hit(0, 1, 10, 50), hit(0, 1, 20, 60)};
  const std::vector<GenericHit> b = {hit(0, 1, 15, 55)};
  const OverlapStats stats = compare_hits(a, b);
  EXPECT_EQ(stats.shared, 1u);
  EXPECT_EQ(stats.only_a, 1u);
  EXPECT_EQ(stats.only_b, 0u);
}

TEST(CompareHits, EmptySets) {
  const OverlapStats stats = compare_hits({}, {});
  EXPECT_EQ(stats.shared, 0u);
  EXPECT_DOUBLE_EQ(stats.jaccard(), 1.0);  // vacuous agreement
}

TEST(ToGeneric, ConvertsMatches) {
  std::vector<core::Match> matches(1);
  matches[0].bank0_sequence = 3;
  matches[0].bank1_sequence = 7;
  matches[0].alignment.begin1 = 11;
  matches[0].alignment.end1 = 42;
  matches[0].e_value = 1e-8;
  const auto generic = to_generic(matches);
  ASSERT_EQ(generic.size(), 1u);
  EXPECT_EQ(generic[0].query, 3u);
  EXPECT_EQ(generic[0].subject, 7u);
  EXPECT_EQ(generic[0].begin1, 11u);
  EXPECT_EQ(generic[0].end1, 42u);
  EXPECT_DOUBLE_EQ(generic[0].e_value, 1e-8);
}

TEST(ToGeneric, ConvertsBlastHits) {
  std::vector<blast::BlastHit> hits(1);
  hits[0].query = 1;
  hits[0].subject = 2;
  hits[0].alignment.begin1 = 5;
  hits[0].alignment.end1 = 25;
  hits[0].e_value = 1e-4;
  const auto generic = to_generic(hits);
  ASSERT_EQ(generic.size(), 1u);
  EXPECT_EQ(generic[0].subject, 2u);
}

}  // namespace
}  // namespace psc::eval
