#include "eval/roc.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace psc::eval {
namespace {

TEST(RocN, PerfectRankingScoresOne) {
  // All P positives first, then false positives.
  std::vector<bool> labels = {true, true, true, false, false};
  // Every FP has all 3 TPs above it; with 2 observed FPs and n=2:
  EXPECT_DOUBLE_EQ(roc_n(labels, 2, 3), 1.0);
}

TEST(RocN, WorstRankingScoresZero) {
  std::vector<bool> labels = {false, false, true, true};
  EXPECT_DOUBLE_EQ(roc_n(labels, 2, 2), 0.0);
}

TEST(RocN, InterleavedRanking) {
  // T F T F: first FP has 1 TP above, second has 2. n=2, P=2.
  std::vector<bool> labels = {true, false, true, false};
  EXPECT_DOUBLE_EQ(roc_n(labels, 2, 2), (1.0 + 2.0) / (2.0 * 2.0));
}

TEST(RocN, StopsAfterNFalsePositives) {
  // Positives after the n-th FP must not count.
  std::vector<bool> labels = {false, false, true, true};
  EXPECT_DOUBLE_EQ(roc_n(labels, 1, 2), 0.0);
}

TEST(RocN, VirtualFalsePositivesAfterExhaustion) {
  // Only one FP in the list but n=3: the two virtual FPs rank below the
  // retrieved TP, each contributing 1.
  std::vector<bool> labels = {true, false};
  EXPECT_DOUBLE_EQ(roc_n(labels, 3, 1), (1.0 + 1.0 + 1.0) / (3.0 * 1.0));
}

TEST(RocN, MissingPositivesLowerScore) {
  // Same ranking, larger family -> lower ROC.
  std::vector<bool> labels = {true, false, false};
  EXPECT_GT(roc_n(labels, 2, 1), roc_n(labels, 2, 4));
}

TEST(RocN, EmptyListIsZero) {
  EXPECT_DOUBLE_EQ(roc_n({}, 50, 3), 0.0);
}

TEST(RocN, ZeroPositivesIsZero) {
  std::vector<bool> labels = {false, false};
  EXPECT_DOUBLE_EQ(roc_n(labels, 50, 0), 0.0);
}

TEST(Roc50, UsesFiftyFalsePositives) {
  // 50 TPs then 100 FPs, P = 50: perfect prefix -> 1.0.
  std::vector<bool> labels(50, true);
  labels.insert(labels.end(), 100, false);
  EXPECT_DOUBLE_EQ(roc50(labels, 50), 1.0);
}

TEST(RocN, MonotoneInRankingQuality) {
  // Moving a true positive earlier in the list never lowers ROC.
  std::vector<bool> worse = {false, true, false, true};
  std::vector<bool> better = {true, false, false, true};
  EXPECT_GE(roc_n(better, 2, 2), roc_n(worse, 2, 2));
}

TEST(RocN, BoundedByOne) {
  // Random label patterns never exceed 1.
  std::vector<bool> labels;
  for (int i = 0; i < 64; ++i) labels.push_back((i * 7 % 3) == 0);
  const std::size_t positives = static_cast<std::size_t>(
      std::count(labels.begin(), labels.end(), true));
  const double score = roc_n(labels, 50, positives);
  EXPECT_GE(score, 0.0);
  EXPECT_LE(score, 1.0);
}

TEST(Mean, Basics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({2.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

}  // namespace
}  // namespace psc::eval
