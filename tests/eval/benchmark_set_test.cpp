#include "eval/benchmark_set.hpp"

#include <gtest/gtest.h>

namespace psc::eval {
namespace {

QualityBenchmarkConfig tiny_config() {
  QualityBenchmarkConfig config;
  config.family.families = 4;
  config.family.members_per_family = 4;
  config.family.ancestor_length = 120;
  config.queries_per_family = 2;
  config.genome_length = 60000;
  return config;
}

TEST(BuildQualityBenchmark, CountsAndLabels) {
  const QualityBenchmark benchmark = build_quality_benchmark(tiny_config());
  EXPECT_EQ(benchmark.queries.size(), 8u);
  EXPECT_EQ(benchmark.query_family.size(), 8u);
  EXPECT_EQ(benchmark.plants.size(), 8u);  // 2 non-query members x 4 families
  EXPECT_EQ(benchmark.plant_family.size(), benchmark.plants.size());
  for (const std::size_t p : benchmark.positives_per_family) {
    EXPECT_EQ(p, 2u);
  }
}

TEST(BuildQualityBenchmark, GenomeBankNonEmptyAndMapped) {
  const QualityBenchmark benchmark = build_quality_benchmark(tiny_config());
  EXPECT_GT(benchmark.genome_bank.size(), 0u);
  EXPECT_EQ(benchmark.genome_bank.size(), benchmark.fragments.size());
  for (const auto& fragment : benchmark.fragments) {
    EXPECT_LE(fragment.genome_begin, fragment.genome_end);
    EXPECT_LE(fragment.genome_end, benchmark.genome.size());
  }
}

TEST(BuildQualityBenchmark, TooManyQueriesThrows) {
  QualityBenchmarkConfig config = tiny_config();
  config.queries_per_family = 4;  // == members_per_family
  EXPECT_THROW(build_quality_benchmark(config), std::invalid_argument);
}

TEST(HitFamily, PlantedRegionMapsToFamily) {
  const QualityBenchmark benchmark = build_quality_benchmark(tiny_config());
  // Build a hit covering the first planted gene exactly: find the fragment
  // overlapping it with the right strand.
  const sim::PlantedGene& plant = benchmark.plants[0];
  const std::size_t gene_lo = plant.genome_begin;
  const std::size_t gene_hi = gene_lo + 3 * plant.protein_length;

  bool tested = false;
  for (std::uint32_t f = 0; f < benchmark.fragments.size(); ++f) {
    const auto& fragment = benchmark.fragments[f];
    const bool forward_ok = plant.forward_strand == (fragment.frame > 0);
    if (!forward_ok) continue;
    const std::size_t lo = std::max(fragment.genome_begin, gene_lo);
    const std::size_t hi = std::min(fragment.genome_end, gene_hi);
    if (hi <= lo || (hi - lo) * 2 <= (gene_hi - gene_lo)) continue;
    // Protein-space range of the overlap within the fragment.
    GenericHit hit;
    hit.query = 0;
    hit.subject = f;
    if (fragment.frame > 0) {
      hit.begin1 = (lo - fragment.genome_begin) / 3;
      hit.end1 = (hi - fragment.genome_begin) / 3;
    } else {
      hit.begin1 = (fragment.genome_end - hi) / 3;
      hit.end1 = (fragment.genome_end - lo) / 3;
    }
    if (hit.end1 <= hit.begin1) continue;
    EXPECT_EQ(benchmark.hit_family(hit), benchmark.plant_family[0]);
    tested = true;
    break;
  }
  EXPECT_TRUE(tested);
}

TEST(HitFamily, RandomRegionIsNoFamily) {
  const QualityBenchmark benchmark = build_quality_benchmark(tiny_config());
  // A 10-residue hit at the very start of fragment 0 is overwhelmingly
  // unlikely to overlap a planted gene by half.
  GenericHit hit;
  hit.query = 0;
  hit.subject = 0;
  hit.begin1 = 0;
  hit.end1 = 3;
  const auto [lo, hi] = benchmark.hit_genome_range(hit);
  bool overlaps_plant = false;
  for (const auto& plant : benchmark.plants) {
    const std::size_t gene_lo = plant.genome_begin;
    const std::size_t gene_hi = gene_lo + 3 * plant.protein_length;
    if (lo < gene_hi && gene_lo < hi) overlaps_plant = true;
  }
  if (!overlaps_plant) {
    EXPECT_EQ(benchmark.hit_family(hit), QualityBenchmark::kNoFamily);
  }
}

TEST(PerQueryLabels, RanksByEValueAndTruncates) {
  const QualityBenchmark benchmark = build_quality_benchmark(tiny_config());
  std::vector<GenericHit> hits;
  // Two hits for query 0 with different E-values on the same nonsense
  // region (both false).
  GenericHit a;
  a.query = 0;
  a.subject = 0;
  a.begin1 = 0;
  a.end1 = 3;
  a.e_value = 1e-5;
  GenericHit b = a;
  b.e_value = 1e-9;
  hits.push_back(a);
  hits.push_back(b);
  const auto labels = benchmark.per_query_labels(hits, 1);
  ASSERT_EQ(labels.size(), benchmark.queries.size());
  EXPECT_EQ(labels[0].size(), 1u);  // truncated to max_rank
  EXPECT_TRUE(labels[1].empty());
}

TEST(HitGenomeRange, ForwardAndReverseConsistent) {
  const QualityBenchmark benchmark = build_quality_benchmark(tiny_config());
  for (std::uint32_t f = 0; f < std::min<std::size_t>(benchmark.fragments.size(), 50); ++f) {
    const auto& fragment = benchmark.fragments[f];
    GenericHit hit;
    hit.subject = f;
    hit.begin1 = 0;
    hit.end1 = fragment.length;
    const auto [lo, hi] = benchmark.hit_genome_range(hit);
    EXPECT_EQ(lo, fragment.genome_begin);
    EXPECT_EQ(hi, fragment.genome_end);
  }
}

}  // namespace
}  // namespace psc::eval
