#include "eval/average_precision.hpp"

#include <gtest/gtest.h>

namespace psc::eval {
namespace {

TEST(AveragePrecision, AllPositivesIsOne) {
  EXPECT_DOUBLE_EQ(average_precision({true, true, true}), 1.0);
}

TEST(AveragePrecision, NoPositivesIsZero) {
  EXPECT_DOUBLE_EQ(average_precision({false, false}), 0.0);
  EXPECT_DOUBLE_EQ(average_precision({}), 0.0);
}

TEST(AveragePrecision, SinglePositiveAtRankK) {
  EXPECT_DOUBLE_EQ(average_precision({true}), 1.0);
  EXPECT_DOUBLE_EQ(average_precision({false, true}), 0.5);
  EXPECT_DOUBLE_EQ(average_precision({false, false, false, true}), 0.25);
}

TEST(AveragePrecision, PaperFormulaOnMixedList) {
  // T F T: TP1 at pos 1 -> 1/1; TP2 at pos 3 -> 2/3; AP = (1 + 2/3)/2.
  EXPECT_DOUBLE_EQ(average_precision({true, false, true}),
                   (1.0 + 2.0 / 3.0) / 2.0);
}

TEST(AveragePrecision, EarlierPositivesScoreHigher) {
  EXPECT_GT(average_precision({true, false, false, true}),
            average_precision({false, true, false, true}));
}

TEST(AveragePrecision, TruncatesAtMaxRank) {
  // Positive beyond the cutoff is invisible.
  std::vector<bool> labels(60, false);
  labels[55] = true;
  EXPECT_DOUBLE_EQ(average_precision(labels, 50), 0.0);
  EXPECT_GT(average_precision(labels, 60), 0.0);
}

TEST(AveragePrecision, NeverExceedsOne) {
  std::vector<bool> labels;
  for (int i = 0; i < 50; ++i) labels.push_back((i % 4) == 1);
  const double ap = average_precision(labels);
  EXPECT_GE(ap, 0.0);
  EXPECT_LE(ap, 1.0);
}

TEST(AveragePrecision, SwappingAdjacentTpFpPairHelps) {
  // ... F T ... -> ... T F ... strictly improves AP.
  std::vector<bool> before = {true, false, true, false};
  std::vector<bool> after = {true, true, false, false};
  EXPECT_GT(average_precision(after), average_precision(before));
}

TEST(AveragePrecision, DefaultCutoffIsFifty) {
  std::vector<bool> labels(49, false);
  labels.push_back(true);  // rank 50, inside the default cutoff
  EXPECT_DOUBLE_EQ(average_precision(labels), 1.0 / 50.0);
}

}  // namespace
}  // namespace psc::eval
