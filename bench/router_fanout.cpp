// Router fan-out bench: what the cluster coordinator costs over a
// single psc_serve node, measured through the real wire stack on
// loopback. The scaled paper workload (PSC_SCALE) is stored twice --
// unsharded behind one server, and sharded across three replica servers
// with a redundant shard map behind a Router -- and every query runs
// through a net::Client against both. Reports queries/sec and mean
// latency for each path, checks the routed replies byte-for-byte
// against the single node's, and surfaces the router's retry/hedge
// counters.
//
// Writes BENCH_router_fanout.json, mirroring BENCH_shard_fanout.json.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/router.hpp"
#include "common.hpp"
#include "core/result_codec.hpp"
#include "index/index_table.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "service/search_service.hpp"
#include "store/bank_store.hpp"
#include "store/index_store.hpp"
#include "store/shard_store.hpp"
#include "util/timer.hpp"

namespace {

using namespace psc;

/// Per-query FASTA strings drawn from a workload bank.
std::vector<std::string> split_query_fastas(const bio::SequenceBank& bank) {
  std::vector<std::string> fastas;
  fastas.reserve(bank.size());
  for (const bio::Sequence& sequence : bank) {
    std::ostringstream out;
    out << ">" << sequence.id() << "\n" << sequence.to_letters() << "\n";
    fastas.push_back(out.str());
  }
  return fastas;
}

/// A cap that makes plan_shards cut the bank into ~`target` pieces.
std::uint64_t cap_for_shards(const bio::SequenceBank& bank,
                             std::size_t target) {
  std::uint64_t total = 0;
  for (const bio::Sequence& sequence : bank) {
    total += 2 * sizeof(std::uint32_t) + sequence.id().size() + sequence.size();
  }
  return std::max<std::uint64_t>(1, total / target);
}

/// One in-process replica server scoped to a shard subset of the store.
struct Replica {
  std::unique_ptr<service::SearchService> service;
  std::unique_ptr<net::Server> server;

  Replica(const std::string& bank_name,
          const std::vector<std::size_t>& shards) {
    net::ServerConfig config;
    config.bank_root = ".";
    for (const std::size_t shard : shards) {
      config.allowed_prefixes.push_back(store::shard_prefix(bank_name, shard));
    }
    service = std::make_unique<service::SearchService>();
    server = std::make_unique<net::Server>(*service, config);
    server->start();
  }

  std::uint16_t port() const { return server->port(); }
};

struct DrainResult {
  double queries_per_sec = 0.0;
  double mean_latency_seconds = 0.0;
  std::vector<std::vector<std::uint8_t>> match_bytes;
};

/// Blocking drain of every query through one client connection.
DrainResult drain(std::uint16_t port, const std::string& bank,
                  const std::vector<std::string>& fastas) {
  net::ClientConfig config;
  config.port = port;
  config.timeout_seconds = 120.0;
  net::Client client(config);
  DrainResult result;
  result.match_bytes.reserve(fastas.size());
  util::Timer total;
  for (const std::string& fasta : fastas) {
    util::Timer per_query;
    const service::QueryResult reply = client.search(bank, fasta);
    result.mean_latency_seconds += per_query.seconds();
    result.match_bytes.push_back(core::encode_matches(reply.matches));
  }
  const double seconds = total.seconds();
  result.queries_per_sec = static_cast<double>(fastas.size()) / seconds;
  result.mean_latency_seconds /= static_cast<double>(fastas.size());
  return result;
}

}  // namespace

int main() {
  const sim::PaperWorkload workload = bench::make_bench_workload();
  const bio::SequenceBank& genome_bank = workload.genome_bank;
  const std::vector<std::string> fastas =
      split_query_fastas(workload.banks.front().proteins);

  const core::PipelineOptions options = service::default_service_options();
  const index::SeedModel model = core::make_seed_model(options.seed_model);
  const std::string plain = "bench_router_plain";
  const std::string sharded = "bench_router_store";

  // --- the two stores ---------------------------------------------------
  const index::IndexTable table(genome_bank, model);
  const std::uint64_t checksum = store::save_bank(plain + ".pscbank",
                                                  genome_bank);
  store::save_index(plain + ".pscidx", table, model, checksum);
  const store::ShardManifest manifest = store::write_sharded_store(
      sharded, genome_bank, model, cap_for_shards(genome_bank, 6));
  const std::size_t shard_count = manifest.shards.size();
  std::fprintf(stderr, "# %zu queries, %zu shard(s)\n", fastas.size(),
               shard_count);

  // --- single node ------------------------------------------------------
  double single_qps = 0.0;
  double single_latency = 0.0;
  std::vector<std::vector<std::uint8_t>> reference;
  {
    service::SearchService service;
    net::ServerConfig config;
    config.bank_root = ".";
    net::Server server(service, config);
    server.start();
    std::fprintf(stderr, "# single node draining...\n");
    DrainResult result = drain(server.port(), plain, fastas);
    single_qps = result.queries_per_sec;
    single_latency = result.mean_latency_seconds;
    reference = std::move(result.match_bytes);
    server.stop();
  }

  // --- three replicas behind the router, every shard held twice ---------
  std::vector<std::vector<std::size_t>> shard_map(3);
  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    shard_map[shard % 3].push_back(shard);
    shard_map[(shard + 1) % 3].push_back(shard);
  }
  std::vector<std::unique_ptr<Replica>> replicas;
  cluster::RouterConfig router_config;
  router_config.manifest_prefix = sharded;
  router_config.bank_prefix = sharded;
  router_config.health.interval_seconds = 60.0;
  for (const std::vector<std::size_t>& shards : shard_map) {
    replicas.push_back(std::make_unique<Replica>(sharded, shards));
    cluster::ReplicaEndpoint endpoint;
    endpoint.host = "127.0.0.1";
    endpoint.port = replicas.back()->port();
    endpoint.shards = shards;
    router_config.replicas.push_back(std::move(endpoint));
  }

  double router_qps = 0.0;
  double router_latency = 0.0;
  bool bit_identical = true;
  std::uint64_t hedges = 0, retries = 0, failures = 0;
  {
    cluster::Router router(router_config);
    net::ServerConfig front_config;
    front_config.bank_root = ".";
    front_config.allowed_prefixes = {sharded};
    net::Server front(router, front_config);
    front.start();
    std::fprintf(stderr, "# router draining...\n");
    const DrainResult result = drain(front.port(), sharded, fastas);
    router_qps = result.queries_per_sec;
    router_latency = result.mean_latency_seconds;
    for (std::size_t q = 0; q < fastas.size(); ++q) {
      if (result.match_bytes[q] != reference[q]) bit_identical = false;
    }
    const service::ServiceStats stats = router.stats_snapshot();
    for (const service::ReplicaStats& row : stats.replicas) {
      hedges += row.hedges;
      retries += row.retries;
      failures += row.failures;
    }
    front.stop();
  }
  std::fprintf(stderr, "# routed replies %s\n",
               bit_identical ? "bit-identical" : "MISMATCH");

  std::printf("\n=== router fan-out ===\n");
  std::printf("%16s %14s %16s\n", "path", "queries/sec", "mean latency (ms)");
  std::printf("%16s %14.1f %16.2f\n", "single node", single_qps,
              single_latency * 1e3);
  std::printf("%16s %14.1f %16.2f\n", "router x3", router_qps,
              router_latency * 1e3);
  std::printf("router counters: %llu hedge(s), %llu retrie(s), "
              "%llu failure(s)\n",
              static_cast<unsigned long long>(hedges),
              static_cast<unsigned long long>(retries),
              static_cast<unsigned long long>(failures));

  std::ofstream json("BENCH_router_fanout.json");
  json << "{\n"
       << "  \"queries\": " << fastas.size() << ",\n"
       << "  \"shards\": " << shard_count << ",\n"
       << "  \"replicas\": 3,\n"
       << "  \"single_node_queries_per_sec\": " << single_qps << ",\n"
       << "  \"single_node_mean_latency_seconds\": " << single_latency << ",\n"
       << "  \"router_queries_per_sec\": " << router_qps << ",\n"
       << "  \"router_mean_latency_seconds\": " << router_latency << ",\n"
       << "  \"router_hedges\": " << hedges << ",\n"
       << "  \"router_retries\": " << retries << ",\n"
       << "  \"router_failures\": " << failures << ",\n"
       << "  \"bit_identical\": " << (bit_identical ? "true" : "false") << "\n"
       << "}\n";
  std::fprintf(stderr, "wrote BENCH_router_fanout.json\n");

  std::remove((plain + ".pscbank").c_str());
  std::remove((plain + ".pscidx").c_str());
  std::remove(store::manifest_path(sharded).c_str());
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::string pair = store::shard_prefix(sharded, s);
    std::remove((pair + ".pscbank").c_str());
    std::remove((pair + ".pscidx").c_str());
  }
  return bit_identical ? 0 : 1;
}
