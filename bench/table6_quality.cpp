// Table 6 -- "ROC50 and AP-Mean scores of RASC and NCBI BLAST":
// sensitivity/selectivity parity between the subset-seed pipeline and the
// two-hit tblastn baseline, on the synthetic stand-in for the 102-query
// yeast benchmark of Gertz et al. (see DESIGN.md for the substitution).
//
// Paper: RASC ROC50 0.468 / AP 0.447; NCBI ROC50 0.479 / AP 0.441.
// Shape target: the two methods score close to each other; neither
// dominates.
#include "common.hpp"

#include "eval/average_precision.hpp"
#include "eval/benchmark_set.hpp"
#include "eval/compare_hits.hpp"
#include "eval/roc.hpp"

namespace {

struct Scores {
  double roc50 = 0.0;
  double ap_mean = 0.0;
  std::size_t hits = 0;
};

Scores score(const psc::eval::QualityBenchmark& benchmark,
             std::vector<psc::eval::GenericHit> hits) {
  using namespace psc;
  Scores out;
  out.hits = hits.size();
  const auto labels = benchmark.per_query_labels(std::move(hits), 100);
  std::vector<double> roc_scores, ap_scores;
  for (std::size_t q = 0; q < benchmark.queries.size(); ++q) {
    roc_scores.push_back(eval::roc50(
        labels[q], benchmark.positives_per_family[benchmark.query_family[q]]));
    ap_scores.push_back(eval::average_precision(labels[q], 50));
  }
  out.roc50 = eval::mean(roc_scores);
  out.ap_mean = eval::mean(ap_scores);
  return out;
}

}  // namespace

int main() {
  using namespace psc;

  // 34 families x 6 members, 3 queries each = 102 queries, like the paper's
  // 102-query benchmark. Members diverge independently from the ancestor
  // at 45% substitutions with weakly conservative replacements, putting
  // pairwise member identity in the remote-homology regime (~25%) where
  // ranking is non-trivial -- the regime the paper's curated yeast
  // benchmark probes (its mid-range 0.47 scores).
  eval::QualityBenchmarkConfig config;
  config.family.families = 34;
  config.family.members_per_family = 6;
  config.family.ancestor_length = 250;
  config.family.divergence.substitution_rate = 0.45;
  config.family.divergence.conservation = 0.4;
  config.family.divergence.indel_rate = 0.015;
  config.queries_per_family = 3;
  config.genome_length = 500'000;
  config.seed = 102;

  std::fprintf(stderr, "# building 102-query family benchmark...\n");
  const eval::QualityBenchmark benchmark = eval::build_quality_benchmark(config);

  std::fprintf(stderr, "# RASC pipeline...\n");
  core::PipelineOptions pipeline_options = bench::rasc_options(192);
  // Quality comparison uses the paper-fidelity subset seed, not the
  // coarse timing seed.
  pipeline_options.seed_model = core::SeedModelKind::kSubsetW4;
  // Remote-homology regime: the window filter threshold is the main
  // sensitivity knob (section 2.2); 33 matches the baseline's effective
  // gap_trigger sensitivity on this data scale.
  pipeline_options.ungapped_threshold = 33;
  const core::PipelineResult pipeline_result = core::run_pipeline(
      benchmark.queries, benchmark.genome_bank, pipeline_options);
  const Scores rasc =
      score(benchmark, eval::to_generic(pipeline_result.matches));

  std::fprintf(stderr, "# tblastn baseline...\n");
  const blast::TblastnResult blast_result = blast::tblastn_search(
      benchmark.queries, benchmark.genome_bank,
      bio::SubstitutionMatrix::blosum62(), blast::TblastnOptions{});
  const Scores ncbi = score(benchmark, eval::to_generic(blast_result.hits));

  util::TextTable table;
  table.set_header({"", "FPGA-RASC", "tblastn baseline"});
  table.add_row({"ROC50 (measured)", util::TextTable::num(rasc.roc50, 3),
                 util::TextTable::num(ncbi.roc50, 3)});
  table.add_row({"AP-Mean (measured)", util::TextTable::num(rasc.ap_mean, 3),
                 util::TextTable::num(ncbi.ap_mean, 3)});
  table.add_row({"hits", std::to_string(rasc.hits), std::to_string(ncbi.hits)});
  table.add_rule();
  table.add_row({"ROC50 (paper)", "0.468", "0.479"});
  table.add_row({"AP-Mean (paper)", "0.447", "0.441"});

  const eval::OverlapStats overlap =
      eval::compare_hits(eval::to_generic(pipeline_result.matches),
                         eval::to_generic(blast_result.hits));

  bench::print_table("Table 6: ROC50 and AP-Mean, RASC vs baseline", table,
                     "  shape check: 'Similar values indicate similar\n"
                     "  sensitivity and selectivity' -- the two methods must\n"
                     "  score within a few points of each other.");
  std::printf("hit-set overlap: %zu shared, %zu pipeline-only, %zu "
              "baseline-only (Jaccard %.2f)\n",
              overlap.shared, overlap.only_a, overlap.only_b,
              overlap.jaccard());
  return 0;
}
