// Service-layer throughput bench: how much the persistent store and the
// resident cache buy over rebuilding the reference index per query.
//
// Three measurements on the scaled paper workload (PSC_SCALE):
//   1. index load vs rebuild -- mmap-backed load_index() against a fresh
//      IndexTable construction over the same bank (target: >=10x).
//   2. queries/sec through SearchService with the bank resident
//      (max_resident > 0) vs cold-loading it for every batch
//      (max_resident = 0).
//   3. queries/sec of the pre-store baseline: run_pipeline(), which
//      re-indexes the reference bank on every call.
//
// Writes BENCH_service.json next to the working directory for machine
// consumption, mirroring BENCH_step2_kernels.json.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "index/index_table.hpp"
#include "service/search_service.hpp"
#include "store/bank_store.hpp"
#include "store/index_store.hpp"
#include "util/timer.hpp"

namespace {

using namespace psc;

/// Best-of-N wall-clock of `fn` (seconds).
template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 1e30;
  for (int i = 0; i < reps; ++i) {
    util::Timer timer;
    fn();
    best = std::min(best, timer.seconds());
  }
  return best;
}

/// Single-protein query banks drawn from a workload bank.
std::vector<bio::SequenceBank> split_queries(const bio::SequenceBank& bank) {
  std::vector<bio::SequenceBank> queries;
  queries.reserve(bank.size());
  for (const bio::Sequence& sequence : bank) {
    bio::SequenceBank one(bio::SequenceKind::kProtein);
    one.add(sequence);
    queries.push_back(std::move(one));
  }
  return queries;
}

/// Queries/sec of one full drain of `queries` through a service.
/// Pipelined mode submits everything up front (queued queries coalesce
/// into shared passes); blocking mode waits for each reply before
/// submitting the next, so every query is its own batch -- with
/// max_resident=0 that makes each query pay the store load.
double service_qps(service::SearchService& service,
                   const std::vector<bio::SequenceBank>& queries,
                   const std::string& prefix, bool pipelined) {
  util::Timer timer;
  std::size_t matches = 0;
  if (pipelined) {
    std::vector<std::future<service::QueryResult>> futures;
    futures.reserve(queries.size());
    for (const bio::SequenceBank& query : queries) {
      futures.push_back(service.submit(query, prefix));
    }
    for (auto& future : futures) matches += future.get().matches.size();
  } else {
    for (const bio::SequenceBank& query : queries) {
      matches += service.submit(query, prefix).get().matches.size();
    }
  }
  const double seconds = timer.seconds();
  std::fprintf(stderr, "#   %zu queries, %zu matches, %.3fs\n", queries.size(),
               matches, seconds);
  return static_cast<double>(queries.size()) / seconds;
}

}  // namespace

int main() {
  const sim::PaperWorkload workload = bench::make_bench_workload();
  const bio::SequenceBank& genome_bank = workload.genome_bank;
  const std::vector<bio::SequenceBank> queries =
      split_queries(workload.banks.front().proteins);

  const core::PipelineOptions options = service::default_service_options();
  const index::SeedModel model = core::make_seed_model(options.seed_model);
  const std::string prefix = "bench_service_store";

  // --- 1. save once, then load vs rebuild -------------------------------
  const index::IndexTable table(genome_bank, model);
  store::save_bank(prefix + ".pscbank", genome_bank);
  store::save_index(prefix + ".pscidx", table, model);

  const double rebuild_s = best_of(3, [&] {
    const index::IndexTable fresh(genome_bank, model);
    if (fresh.total_occurrences() != table.total_occurrences()) std::abort();
  });
  const double load_s = best_of(3, [&] {
    const store::LoadedIndex loaded =
        store::load_index(prefix + ".pscidx", model, &genome_bank);
    if (loaded.table.total_occurrences() != table.total_occurrences())
      std::abort();
  });
  const double load_nocheck_s = best_of(3, [&] {
    const store::LoadedIndex loaded = store::load_index(
        prefix + ".pscidx", model, nullptr, /*verify_checksum=*/false);
    if (loaded.table.total_occurrences() != table.total_occurrences())
      std::abort();
  });
  const double load_speedup = rebuild_s / load_s;

  // --- 2/3. queries/sec: resident vs cold-load vs rebuild-per-query -----
  service::ServiceConfig resident_config;
  double resident_qps = 0.0;
  double resident_blocking_qps = 0.0;
  {
    service::SearchService service(resident_config);
    service.submit(queries.front(), prefix).get();  // warm the cache
    std::fprintf(stderr, "# resident service, pipelined submits:\n");
    resident_qps = service_qps(service, queries, prefix, /*pipelined=*/true);
    std::fprintf(stderr, "# resident service, blocking submits:\n");
    resident_blocking_qps =
        service_qps(service, queries, prefix, /*pipelined=*/false);
  }

  service::ServiceConfig cold_config;
  cold_config.max_resident = 0;
  double cold_qps = 0.0;
  std::size_t cold_batches = 0;
  {
    // Blocking submits: every query is its own batch and reloads the
    // bank from the store -- what residency saves per query.
    service::SearchService service(cold_config);
    std::fprintf(stderr, "# cold-load service (max_resident=0, blocking):\n");
    cold_qps = service_qps(service, queries, prefix, /*pipelined=*/false);
    cold_batches = service.snapshot().batches;
  }

  double rebuild_qps = 0.0;
  {
    std::fprintf(stderr, "# rebuild-per-query baseline (run_pipeline):\n");
    const bio::SubstitutionMatrix matrix = bio::SubstitutionMatrix::blosum62();
    util::Timer timer;
    std::size_t matches = 0;
    for (const bio::SequenceBank& query : queries) {
      matches +=
          core::run_pipeline(query, genome_bank, options, matrix).matches.size();
    }
    const double seconds = timer.seconds();
    std::fprintf(stderr, "#   %zu queries, %zu matches, %.3fs\n",
                 queries.size(), matches, seconds);
    rebuild_qps = static_cast<double>(queries.size()) / seconds;
  }

  std::printf("\n=== service throughput ===\n");
  std::printf("index rebuild            %10.3f ms\n", rebuild_s * 1e3);
  std::printf("index load (checksum)    %10.3f ms   (%.1fx faster)\n",
              load_s * 1e3, load_speedup);
  std::printf("index load (no checksum) %10.3f ms   (%.1fx faster)\n",
              load_nocheck_s * 1e3, rebuild_s / load_nocheck_s);
  std::printf("resident, pipelined      %10.1f queries/sec\n", resident_qps);
  std::printf("resident, blocking       %10.1f queries/sec\n",
              resident_blocking_qps);
  std::printf("cold-load, blocking      %10.1f queries/sec  (%zu loads)\n",
              cold_qps, cold_batches);
  std::printf("rebuild per query        %10.1f queries/sec\n", rebuild_qps);

  std::ofstream json("BENCH_service.json");
  json << "{\n"
       << "  \"index_rebuild_seconds\": " << rebuild_s << ",\n"
       << "  \"index_load_seconds\": " << load_s << ",\n"
       << "  \"index_load_nochecksum_seconds\": " << load_nocheck_s << ",\n"
       << "  \"load_speedup_vs_rebuild\": " << load_speedup << ",\n"
       << "  \"queries\": " << queries.size() << ",\n"
       << "  \"resident_pipelined_queries_per_sec\": " << resident_qps << ",\n"
       << "  \"resident_blocking_queries_per_sec\": " << resident_blocking_qps
       << ",\n"
       << "  \"cold_load_blocking_queries_per_sec\": " << cold_qps << ",\n"
       << "  \"rebuild_per_query_queries_per_sec\": " << rebuild_qps << "\n"
       << "}\n";
  std::fprintf(stderr, "wrote BENCH_service.json\n");

  std::remove((prefix + ".pscbank").c_str());
  std::remove((prefix + ".pscidx").c_str());
  return load_speedup >= 10.0 ? 0 : 1;
}
