// Table 7 -- "Percentage of time spent in the different steps of RASC
// with 192 PEs for 4 protein banks": once step 2 is accelerated, step 3
// becomes the bottleneck for large banks.
//
// Paper:
//   bank    step1   step2   step3
//   1K      43%     38%     19%
//   3K      31%     35%     34%
//   10K     14%     35%     51%
//   30K     6%      37%     57%
#include "common.hpp"

int main() {
  using namespace psc;
  const sim::PaperWorkload workload = bench::make_bench_workload();
  const double paper[][3] = {{43, 38, 19}, {31, 35, 34}, {14, 35, 51},
                             {6, 37, 57}};

  util::TextTable table;
  table.set_header({"bank", "step1 %", "step2 %", "step3 %", "total s"});

  for (std::size_t b = 0; b < workload.banks.size(); ++b) {
    const auto& bank = workload.banks[b];
    std::fprintf(stderr, "# bank %s on 192 PEs...\n", bank.label.c_str());
    const core::PipelineResult result = core::run_pipeline(
        bank.proteins, workload.genome_bank, bench::rasc_options(192));
    table.add_row(
        {bank.label,
         util::TextTable::num(result.times.percent(result.times.step1_index), 1),
         util::TextTable::num(result.times.percent(result.times.step2_ungapped), 1),
         util::TextTable::num(result.times.percent(result.times.step3_gapped), 1),
         util::TextTable::num(result.times.total(), 2)});
  }
  table.add_rule();
  const char* labels[] = {"1K", "3K", "10K", "30K"};
  for (int b = 0; b < 4; ++b) {
    table.add_row({std::string("paper ") + labels[b],
                   util::TextTable::num(paper[b][0], 0),
                   util::TextTable::num(paper[b][1], 0),
                   util::TextTable::num(paper[b][2], 0), "-"});
  }

  bench::print_table(
      "Table 7: RASC-pipeline step profile, 192 PEs", table,
      "  shape checks: (a) step 1's share falls as the bank grows (index\n"
      "  cost amortizes); (b) step 3's share rises and eventually\n"
      "  dominates -- the paper's motivation for a second gapped-extension\n"
      "  operator on the other FPGA (section 5).");
  return 0;
}
