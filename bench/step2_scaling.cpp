// Step-2 scheduling / overlap scaling bench: static blocks vs the
// cost-aware chunker vs the fully overlapped step2+step3 driver, across
// worker counts. This is the host-side analogue of the paper's FPGA
// pipelining argument -- the RASC design hides step-2 latency behind
// the output FIFO drain, and the overlapped host driver hides step-3
// extension behind step-2 scoring the same way.
//
// Writes BENCH_step2_scaling.json next to the working directory,
// mirroring BENCH_service.json. Exit code gates the acceptance
// criterion (cost-aware + overlapped beats static at >= 4 workers) only
// when the machine actually has >= 4 hardware threads; on smaller boxes
// the bench records numbers but always exits 0, since scheduling wins
// cannot materialize without real parallelism.
#include "common.hpp"

#include <algorithm>
#include <fstream>
#include <thread>

#include "core/step1_index.hpp"
#include "core/step23_overlap.hpp"
#include "core/step2_host.hpp"
#include "core/step3_gapped.hpp"

namespace {

using namespace psc;

struct Measurement {
  double step2_seconds = 0.0;
  double total_seconds = 0.0;
  std::size_t matches = 0;
  std::uint64_t hits = 0;
};

constexpr int kReps = 3;  // best-of to tame scheduler noise

}  // namespace

int main() {
  const sim::PaperWorkload workload = bench::make_bench_workload();
  const bio::SequenceBank& proteins = workload.banks.front().proteins;

  core::PipelineOptions options;
  options.seed_model = core::SeedModelKind::kSubsetW4Coarse;
  const bio::SubstitutionMatrix& matrix = bio::SubstitutionMatrix::blosum62();

  std::fprintf(stderr, "# indexing...\n");
  const core::Step1Result step1 =
      core::run_step1(proteins, workload.genome_bank, options);

  const std::size_t hardware = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());
  std::vector<std::size_t> thread_counts{1, 2, 4, 8};
  thread_counts.erase(
      std::remove_if(thread_counts.begin(), thread_counts.end(),
                     [&](std::size_t t) { return t > hardware; }),
      thread_counts.end());
  if (thread_counts.empty() ||
      thread_counts.back() != hardware) {
    thread_counts.push_back(hardware);
  }

  // Reference: sequential barrier pipeline (also the correctness oracle).
  auto run_barrier = [&](std::size_t threads,
                         core::Step2Schedule schedule) {
    Measurement best;
    for (int rep = 0; rep < kReps; ++rep) {
      util::Timer timer;
      core::HostStep2Result step2 =
          threads <= 1
              ? core::run_step2_host(proteins, step1.table0,
                                     workload.genome_bank, step1.table1,
                                     matrix, options.shape,
                                     options.ungapped_threshold)
              : core::run_step2_host_parallel(
                    proteins, step1.table0, workload.genome_bank,
                    step1.table1, matrix, options.shape,
                    options.ungapped_threshold, threads,
                    align::UngappedKernel::kAuto, schedule);
      const double step2_seconds = timer.seconds();
      core::PipelineOptions step3_options = options;
      step3_options.step3_threads = threads;
      const std::uint64_t hits = step2.hits.size();
      const core::Step3Result step3 =
          core::run_step3(proteins, workload.genome_bank,
                          std::move(step2.hits), matrix, step3_options);
      const double total = timer.seconds();
      if (rep == 0 || total < best.total_seconds) {
        best = {step2_seconds, total, step3.matches.size(), hits};
      }
    }
    return best;
  };

  auto run_overlapped = [&](std::size_t threads) {
    Measurement best;
    for (int rep = 0; rep < kReps; ++rep) {
      core::PipelineOptions overlap_options = options;
      overlap_options.step3_threads = threads;
      const core::OverlapOutcome outcome = core::run_steps23_overlapped(
          proteins, step1.table0, workload.genome_bank, step1.table1,
          matrix, overlap_options, threads);
      if (rep == 0 || outcome.total_seconds < best.total_seconds) {
        best = {outcome.step2_seconds, outcome.total_seconds,
                outcome.matches.size(), outcome.hits};
      }
    }
    return best;
  };

  const Measurement sequential =
      run_barrier(1, core::Step2Schedule::kStatic);
  std::fprintf(stderr, "# sequential: %.3fs (%zu matches, %llu hits)\n",
               sequential.total_seconds, sequential.matches,
               static_cast<unsigned long long>(sequential.hits));

  util::TextTable table;
  table.set_header({"threads", "static s", "x", "cost-aware s", "x",
                    "overlapped s", "x"});

  struct Row {
    std::size_t threads;
    Measurement fixed, balanced, overlapped;
  };
  std::vector<Row> rows;
  bool consistent = true;
  for (const std::size_t threads : thread_counts) {
    std::fprintf(stderr, "# threads=%zu...\n", threads);
    Row row;
    row.threads = threads;
    row.fixed = run_barrier(threads, core::Step2Schedule::kStatic);
    row.balanced = run_barrier(threads, core::Step2Schedule::kCostAware);
    row.overlapped = run_overlapped(threads);
    for (const Measurement* m :
         {&row.fixed, &row.balanced, &row.overlapped}) {
      if (m->matches != sequential.matches || m->hits != sequential.hits) {
        std::fprintf(stderr,
                     "!! divergence at threads=%zu: %zu matches / %llu hits "
                     "vs sequential %zu / %llu\n",
                     threads, m->matches,
                     static_cast<unsigned long long>(m->hits),
                     sequential.matches,
                     static_cast<unsigned long long>(sequential.hits));
        consistent = false;
      }
    }
    table.add_row(
        {std::to_string(threads),
         util::TextTable::num(row.fixed.total_seconds, 3),
         util::TextTable::num(
             sequential.total_seconds / row.fixed.total_seconds, 2),
         util::TextTable::num(row.balanced.total_seconds, 3),
         util::TextTable::num(
             sequential.total_seconds / row.balanced.total_seconds, 2),
         util::TextTable::num(row.overlapped.total_seconds, 3),
         util::TextTable::num(
             sequential.total_seconds / row.overlapped.total_seconds, 2)});
    rows.push_back(row);
  }

  std::printf("\n=== step 2/3 scaling (sequential %.3fs, %zu matches) ===\n",
              sequential.total_seconds, sequential.matches);
  std::printf("%s", table.render().c_str());

  std::ofstream json("BENCH_step2_scaling.json");
  json << "{\n"
       << "  \"hardware_concurrency\": " << hardware << ",\n"
       << "  \"sequential_seconds\": " << sequential.total_seconds << ",\n"
       << "  \"matches\": " << sequential.matches << ",\n"
       << "  \"hits\": " << sequential.hits << ",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json << "    {\"threads\": " << row.threads
         << ", \"static_seconds\": " << row.fixed.total_seconds
         << ", \"cost_aware_seconds\": " << row.balanced.total_seconds
         << ", \"overlapped_seconds\": " << row.overlapped.total_seconds
         << ", \"overlapped_step2_seconds\": "
         << row.overlapped.step2_seconds << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::fprintf(stderr, "wrote BENCH_step2_scaling.json\n");

  if (!consistent) return 1;
  if (hardware < 4) {
    std::fprintf(stderr,
                 "# only %zu hardware thread(s): scheduling comparison "
                 "recorded, speedup gate skipped\n",
                 hardware);
    return 0;
  }
  // Acceptance gate: at >= 4 workers the cost-aware overlapped driver
  // must beat the static barrier configuration.
  for (const Row& row : rows) {
    if (row.threads < 4) continue;
    if (row.overlapped.total_seconds <= row.fixed.total_seconds) return 0;
  }
  std::fprintf(stderr, "!! overlapped never beat static at >= 4 threads\n");
  return 1;
}
