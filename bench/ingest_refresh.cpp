// Live-ingest bench: what append + refresh buys over a full reindex on
// the scaled paper workload (PSC_SCALE).
//
// The bank is split into a base store plus a tail delta. Two ways to
// serve the combined set are timed:
//   1. live ingest -- append_sharded_store writes one tail shard and a
//      bumped-revision manifest; the new generation loads with the old
//      one as a reuse donor (load_bank_set's `previous`), so only the
//      tail is read from disk;
//   2. full reindex -- write_sharded_store over the combined bank and a
//      cold load of every shard.
// Both paths answer the same queries and the match bytes are compared:
// the bench doubles as a large-workload proof that live ingest is
// byte-identical to the rebuild. A third section measures the v3 LZSS
// cold-storage mode: bytes on disk and load cost, same identity check.
//
// Writes BENCH_ingest.json, mirroring BENCH_shard_fanout.json.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/result_codec.hpp"
#include "service/search_service.hpp"
#include "service/shard_query.hpp"
#include "store/shard_store.hpp"
#include "util/timer.hpp"

namespace {

using namespace psc;

std::uint64_t cap_for_shards(const bio::SequenceBank& bank,
                             std::size_t target) {
  std::uint64_t total = 0;
  for (const bio::Sequence& sequence : bank) {
    total += 2 * sizeof(std::uint32_t) + sequence.id().size() + sequence.size();
  }
  return std::max<std::uint64_t>(1, total / target);
}

void remove_store(const std::string& prefix, std::size_t shards) {
  std::remove(store::manifest_path(prefix).c_str());
  for (std::size_t i = 0; i < shards; ++i) {
    const std::string shard = store::shard_prefix(prefix, i);
    std::remove((shard + ".pscbank").c_str());
    std::remove((shard + ".pscidx").c_str());
  }
}

std::uint64_t file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<std::uint64_t>(in.tellg()) : 0;
}

std::uint64_t store_bytes(const std::string& prefix, std::size_t shards) {
  std::uint64_t total = file_bytes(store::manifest_path(prefix));
  for (std::size_t i = 0; i < shards; ++i) {
    const std::string shard = store::shard_prefix(prefix, i);
    total += file_bytes(shard + ".pscbank") + file_bytes(shard + ".pscidx");
  }
  return total;
}

std::vector<std::uint8_t> run_queries(const bio::SequenceBank& queries,
                                      const service::LoadedBankSet& set,
                                      const core::PipelineOptions& options,
                                      const bio::SubstitutionMatrix& matrix) {
  const core::PipelineResult result =
      service::run_query_over_set(queries, set, options, matrix);
  return core::encode_matches(result.matches);
}

}  // namespace

int main() {
  const sim::PaperWorkload workload = bench::make_bench_workload();
  const bio::SequenceBank& genome_bank = workload.genome_bank;
  const bio::SequenceBank& queries = workload.banks.front().proteins;

  const core::PipelineOptions options = service::default_service_options();
  const index::SeedModel model = core::make_seed_model(options.seed_model);
  const bio::SubstitutionMatrix matrix = bio::SubstitutionMatrix::blosum62();

  // Base = first 7/8 of the fragments, delta = the rest (one ingest tick).
  const std::size_t split = genome_bank.size() - genome_bank.size() / 8;
  bio::SequenceBank base(bio::SequenceKind::kProtein);
  bio::SequenceBank delta(bio::SequenceKind::kProtein);
  for (std::size_t i = 0; i < genome_bank.size(); ++i) {
    (i < split ? base : delta).add(genome_bank[i]);
  }
  const std::uint64_t cap = cap_for_shards(base, 8);
  std::fprintf(stderr, "# base %zu fragment(s), delta %zu fragment(s)\n",
               base.size(), delta.size());

  const std::string live = "bench_ingest_live";
  const std::string rebuilt = "bench_ingest_rebuilt";
  const std::string packed = "bench_ingest_packed";

  // --- live ingest: base store, append, refresh-style reuse load -------
  const store::ShardManifest base_manifest =
      store::write_sharded_store(live, base, model, cap);
  const service::LoadedBankSet previous =
      service::load_bank_set(live, model, /*verify_checksums=*/true);

  util::Timer append_timer;
  const store::ShardManifest extended =
      store::append_sharded_store(live, delta, model);
  const double append_seconds = append_timer.seconds();

  util::Timer refresh_timer;
  const service::LoadedBankSet refreshed = service::load_bank_set(
      live, model, /*verify_checksums=*/true, &previous);
  const double refresh_seconds = refresh_timer.seconds();
  const std::size_t reloaded = refreshed.shard_count() - refreshed.reused_shards;
  const std::vector<std::uint8_t> live_bytes =
      run_queries(queries, refreshed, options, matrix);

  // --- full reindex of the combined bank -------------------------------
  util::Timer rebuild_timer;
  const store::ShardManifest rebuilt_manifest =
      store::write_sharded_store(rebuilt, genome_bank, model, cap);
  const double rebuild_seconds = rebuild_timer.seconds();

  util::Timer cold_timer;
  const service::LoadedBankSet cold =
      service::load_bank_set(rebuilt, model, /*verify_checksums=*/true);
  const double cold_seconds = cold_timer.seconds();
  const std::vector<std::uint8_t> rebuilt_bytes =
      run_queries(queries, cold, options, matrix);

  const bool identical = live_bytes == rebuilt_bytes;
  const std::uint64_t plain_bytes =
      store_bytes(rebuilt, rebuilt_manifest.shards.size());

  // --- v3 LZSS cold-storage mode ---------------------------------------
  const store::ShardManifest packed_manifest = store::write_sharded_store(
      packed, genome_bank, model, cap, /*threads=*/0, /*serial_index=*/false,
      /*compress=*/true);
  const std::uint64_t packed_bytes =
      store_bytes(packed, packed_manifest.shards.size());
  util::Timer packed_timer;
  const service::LoadedBankSet packed_set =
      service::load_bank_set(packed, model, /*verify_checksums=*/true);
  const double packed_seconds = packed_timer.seconds();
  const bool packed_identical =
      run_queries(queries, packed_set, options, matrix) == rebuilt_bytes;

  std::printf("\n=== live ingest vs full reindex ===\n");
  std::printf("%-28s %12s %12s %14s\n", "path", "write (ms)", "load (ms)",
              "shards read");
  std::printf("%-28s %12.2f %12.2f %14zu\n", "append + refresh",
              append_seconds * 1e3, refresh_seconds * 1e3, reloaded);
  std::printf("%-28s %12.2f %12.2f %14zu\n", "full reindex",
              rebuild_seconds * 1e3, cold_seconds * 1e3,
              rebuilt_manifest.shards.size());
  std::printf("identical: %s; revision %llu; reused %zu/%zu shard(s)\n",
              identical ? "yes" : "NO",
              static_cast<unsigned long long>(extended.revision),
              refreshed.reused_shards, refreshed.shard_count());
  std::printf("compressed store: %.1f%% of plain (%llu vs %llu bytes), "
              "load %.2f ms, identical: %s\n",
              100.0 * static_cast<double>(packed_bytes) /
                  static_cast<double>(plain_bytes),
              static_cast<unsigned long long>(packed_bytes),
              static_cast<unsigned long long>(plain_bytes),
              packed_seconds * 1e3, packed_identical ? "yes" : "NO");

  std::ofstream json("BENCH_ingest.json");
  json << "{\n"
       << "  \"base_fragments\": " << base.size() << ",\n"
       << "  \"delta_fragments\": " << delta.size() << ",\n"
       << "  \"append_seconds\": " << append_seconds << ",\n"
       << "  \"refresh_load_seconds\": " << refresh_seconds << ",\n"
       << "  \"refresh_shards_reloaded\": " << reloaded << ",\n"
       << "  \"refresh_shards_reused\": " << refreshed.reused_shards << ",\n"
       << "  \"rebuild_seconds\": " << rebuild_seconds << ",\n"
       << "  \"cold_load_seconds\": " << cold_seconds << ",\n"
       << "  \"cold_shards_read\": " << rebuilt_manifest.shards.size() << ",\n"
       << "  \"bit_identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"plain_store_bytes\": " << plain_bytes << ",\n"
       << "  \"compressed_store_bytes\": " << packed_bytes << ",\n"
       << "  \"compressed_load_seconds\": " << packed_seconds << ",\n"
       << "  \"compressed_bit_identical\": "
       << (packed_identical ? "true" : "false") << "\n"
       << "}\n";
  std::fprintf(stderr, "wrote BENCH_ingest.json\n");

  remove_store(live, extended.shards.size());
  remove_store(rebuilt, rebuilt_manifest.shards.size());
  remove_store(packed, packed_manifest.shards.size());
  (void)base_manifest;
  return identical && packed_identical ? 0 : 1;
}
