// Table 5 -- "Number of Kilo amino acids x Mega nucleotides processed per
// second (KaaMnt/sec)": the cross-system throughput comparison. The
// published numbers for the other accelerators are constants quoted from
// the paper; our measured number is (bank Kaa x genome Mnt) / time for
// the half-RASC configuration (one FPGA, 192 PEs), matching the paper's
// "1/2 RASC-100" entry.
//
// Paper: DeCypher 182, CLC 2, FLASH/FPGA 451, Systolic 863, 1/2 RASC 620.
#include "common.hpp"

int main() {
  using namespace psc;
  const sim::PaperWorkload workload = bench::make_bench_workload();
  const auto& bank = workload.banks.back();

  const double kaa = static_cast<double>(bank.proteins.total_residues()) / 1e3;
  const double mnt = static_cast<double>(workload.genome.size()) / 1e6;

  std::fprintf(stderr, "# running 1/2 RASC (1 FPGA, 192 PEs) on bank %s...\n",
               bank.label.c_str());
  const core::PipelineResult result = core::run_pipeline(
      bank.proteins, workload.genome_bank, bench::rasc_options(192, 1));
  const double measured = kaa * mnt / result.times.total();

  // For context, the same measure for the software baseline.
  std::fprintf(stderr, "# running tblastn baseline...\n");
  const bench::BaselineRun baseline =
      bench::run_baseline(bank.proteins, workload.genome_bank);
  const double baseline_throughput = kaa * mnt / baseline.seconds;

  util::TextTable table;
  table.set_header({"system", "KaaMnt/sec", "source"});
  table.add_row({"DeCypher (TimeLogic)", "182", "paper Table 5"});
  table.add_row({"CLC Cube (Smith-Waterman)", "2", "paper Table 5"});
  table.add_row({"FLASH/FPGA (IRISA)", "451", "paper Table 5"});
  table.add_row({"Systolic (NUDT, peak)", "863", "paper Table 5"});
  table.add_row({"1/2 RASC-100 (paper)", "620", "paper Table 5"});
  table.add_rule();
  table.add_row({"1/2 RASC-100 (this model)",
                 util::TextTable::num(measured, 1),
                 "measured, modeled accel time"});
  table.add_row({"tblastn baseline (this host)",
                 util::TextTable::num(baseline_throughput, 1),
                 "measured wall clock"});

  bench::print_table(
      "Table 5: throughput in Kaa x Mnt per second", table,
      "  shape check: the modeled half-RASC beats the sequential baseline\n"
      "  normalized to the same unit once the array is reasonably filled;\n"
      "  absolute KaaMnt/s scales with workload size (fixed bitstream and\n"
      "  indexing costs amortize), so small PSC_SCALE understates it.");
  return 0;
}
