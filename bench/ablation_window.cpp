// Ablation -- ungapped window half-width N (paper section 2.2): the PE
// compares windows of W + 2N residues, so N sets both the compute time
// per comparison (cycles scale linearly with window length) and the
// sensitivity of the ungapped filter. This bench sweeps N at a threshold
// scaled to the window.
#include "common.hpp"

int main() {
  using namespace psc;
  const sim::PaperWorkload workload = bench::make_bench_workload(80);
  const auto& bank = workload.banks[2];

  util::TextTable table;
  table.set_header({"N (flank)", "window", "step2 cycles", "step2 hits",
                    "matches", "modeled s"});

  for (const std::size_t flank : {10u, 20u, 30u, 45u, 60u}) {
    std::fprintf(stderr, "# N = %zu...\n", flank);
    core::PipelineOptions options = bench::rasc_options(192);
    options.shape.flank = flank;
    const core::PipelineResult result =
        core::run_pipeline(bank.proteins, workload.genome_bank, options);
    table.add_row(
        {std::to_string(flank), std::to_string(options.shape.length()),
         util::TextTable::count(
             static_cast<long long>(result.operator_stats.cycles_total())),
         util::TextTable::count(
             static_cast<long long>(result.counters.step2_hits)),
         std::to_string(result.matches.size()),
         util::TextTable::num(result.times.step2_ungapped, 3)});
  }

  bench::print_table(
      "Ablation: window half-width N (bank " + bank.label + ", 192 PEs)",
      table,
      "  expected: cycles grow linearly with the window; small N misses\n"
      "  homologies whose similarity lies outside the window (fewer final\n"
      "  matches); the paper's N=30 (window 64) sits where recall has\n"
      "  saturated but each comparison still costs only 64 cycles.");
  return 0;
}
