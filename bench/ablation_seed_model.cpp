// Ablation -- seed model (paper section 4.4): the pipeline uses "only one
// seed of 4 amino acids, but based on the subset seed approach" instead of
// BLAST's two-hit 3-mers, because subset seeds index efficiently while
// keeping sensitivity. This bench quantifies that choice: index size,
// step-2 workload, hits found and planted-homology recall for
// subset-w4 vs exact-w4 vs exact-w3 seeds.
#include "common.hpp"

#include "core/step1_index.hpp"

int main() {
  using namespace psc;
  const sim::PaperWorkload workload = bench::make_bench_workload(77);
  const auto& bank = workload.banks[2];  // mid-size bank

  struct Config {
    const char* name;
    core::SeedModelKind kind;
    std::size_t seed_width;
  };
  const Config configs[] = {
      {"subset-w4 (paper)", core::SeedModelKind::kSubsetW4, 4},
      {"exact-w4", core::SeedModelKind::kExactW4, 4},
      {"exact-w3", core::SeedModelKind::kExactW3, 3},
  };

  util::TextTable table;
  table.set_header({"seed model", "key space", "step2 pairs", "step2 hits",
                    "matches", "step2 modeled s"});

  for (const Config& config : configs) {
    std::fprintf(stderr, "# %s...\n", config.name);
    core::PipelineOptions options = bench::rasc_options(192);
    options.seed_model = config.kind;
    options.shape.seed_width = config.seed_width;
    // Keep window length constant (64) across widths for comparability.
    options.shape.flank = (64 - config.seed_width) / 2;

    const index::SeedModel model = core::make_seed_model(config.kind);
    const core::PipelineResult result =
        core::run_pipeline(bank.proteins, workload.genome_bank, options);

    table.add_row({config.name,
                   util::TextTable::count(static_cast<long long>(model.key_space())),
                   util::TextTable::count(static_cast<long long>(result.counters.step2_pairs)),
                   util::TextTable::count(static_cast<long long>(result.counters.step2_hits)),
                   std::to_string(result.matches.size()),
                   util::TextTable::num(result.times.step2_ungapped, 3)});
  }

  bench::print_table(
      "Ablation: seed model (bank " + bank.label + ")", table,
      "  expected: exact-w3's small key space explodes the pair count\n"
      "  (longer index lists per key) -- the cost BLAST's two-hit filter\n"
      "  exists to contain; subset-w4 recovers sensitivity lost by\n"
      "  exact-w4 at modest extra pairs. Match counts stay comparable,\n"
      "  supporting the paper's 'same sensitivity' claim.");
  return 0;
}
