// Extension bench -- the paper's concluding proposal (section 5): "Now,
// step 3 has the largest execution time. Hence, optimizing global
// performances implies now to consider ... the design of another
// reconfigurable operator dedicated to the computation of similarities
// including gap penalty. The RASC-100 architecture would perfectly
// support this double activity since it allows two different designs to
// run concurrently on its two FPGAs."
//
// This bench runs that proposed system: FPGA 0 carries the PSC operator
// (step 2), FPGA 1 the banded gapped-extension operator screening its
// hits, and the host only extends survivors. Compared against the
// paper's evaluated configuration (PSC on one FPGA, all of step 3 on the
// host).
#include "common.hpp"

#include "core/hybrid.hpp"

int main() {
  using namespace psc;
  const sim::PaperWorkload workload = bench::make_bench_workload(81);

  util::TextTable table;
  table.set_header({"bank", "paper cfg s", "hybrid s", "speedup",
                    "host step3: was s", "now s", "screened-out"});

  for (const auto& bank : workload.banks) {
    std::fprintf(stderr, "# bank %s: paper configuration...\n",
                 bank.label.c_str());
    const core::PipelineResult paper_config = core::run_pipeline(
        bank.proteins, workload.genome_bank, bench::rasc_options(192));

    std::fprintf(stderr, "# bank %s: hybrid dual-operator...\n",
                 bank.label.c_str());
    core::HybridOptions hybrid_options;
    hybrid_options.base = bench::rasc_options(192);
    hybrid_options.gap.num_lanes = 24;
    hybrid_options.gap.band = 16;
    hybrid_options.gap.window_length = 128;
    hybrid_options.gap.threshold = 42;
    const core::HybridResult hybrid = core::run_hybrid_pipeline(
        bank.proteins, workload.genome_bank, hybrid_options);

    const double before = paper_config.times.total();
    const double after = hybrid.overall_seconds();
    const double screened_fraction =
        hybrid.counters.step2_hits == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(hybrid.screen_survivors) /
                                 static_cast<double>(hybrid.counters.step2_hits));
    table.add_row({bank.label, util::TextTable::num(before, 2),
                   util::TextTable::num(after, 2),
                   util::TextTable::num(before / after, 2),
                   util::TextTable::num(paper_config.times.step3_gapped, 3),
                   util::TextTable::num(hybrid.host_step3_seconds, 3),
                   util::TextTable::num(screened_fraction, 1) + "%"});

    if (hybrid.matches.size() != paper_config.matches.size()) {
      std::fprintf(stderr,
                   "!! match divergence on bank %s: hybrid %zu vs %zu\n",
                   bank.label.c_str(), hybrid.matches.size(),
                   paper_config.matches.size());
    }
  }

  bench::print_table(
      "Extension: dual-operator pipeline (PSC + gapped screen on FPGA 1)",
      table,
      "  expected: the banded screen discards most step-2 survivors\n"
      "  before they reach the host, shrinking the host's gapped-extension\n"
      "  time -- the gain the paper predicted from its Table 7 profile.\n"
      "  Match sets are verified identical to the single-operator run.");
  return 0;
}
