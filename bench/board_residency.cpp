// Board-residency bench: what the stateful board model (rasc/board_cache)
// plus the swap-minimizing batch scheduler (service/scheduler) buy on a
// mixed-bank query stream, against the same service running the legacy
// FIFO order.
//
// Setup: three reference banks stored on disk, a request stream that
// interleaves them (A,B,C,A,B,C,...) -- the adversarial arrival order
// for board residency, since strict FIFO service re-uploads a bank image
// on every batch. The service runs the RASC step-2 backend with a
// deliberately bandwidth-constrained DMA link (same platform model for
// both schedulers, so the comparison is apples-to-apples); the measured
// quantity is *modeled accelerator seconds* (what the paper's tables
// report), taken as a snapshot delta around the stream so the one-time
// bitstream load -- paid identically by both runs during warm-up --
// stays out of the steady-state ratio.
//
// Also verifies the scheduling invariant the whole design rests on: the
// per-request match bytes (core::append_matches of each reply) are
// byte-identical between the FIFO and affinity runs.
//
// Writes BENCH_board_residency.json; exits nonzero when the affinity
// throughput advantage drops below 2x or any reply byte differs.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/result_codec.hpp"
#include "index/index_table.hpp"
#include "service/search_service.hpp"
#include "store/bank_store.hpp"
#include "store/index_store.hpp"

namespace {

using namespace psc;

constexpr std::size_t kBanks = 3;
constexpr std::size_t kRounds = 16;  ///< interleaved A,B,C repetitions

struct ScheduleRun {
  double accel_seconds = 0.0;    ///< modeled, steady-state window
  std::uint64_t swaps = 0;       ///< board swaps in the window
  std::uint64_t uploads = 0;     ///< bank uploads in the window
  std::uint64_t skipped = 0;     ///< uploads avoided by residency
  std::uint64_t reorders = 0;
  std::uint64_t promotions = 0;
  double queries_per_accel_second = 0.0;
  std::vector<std::vector<std::uint8_t>> reply_bytes;  ///< per request
};

service::ServiceConfig make_config(service::SchedulerPolicy policy) {
  service::ServiceConfig config;
  // RASC backend with the paper's full PE array, so the compute phase
  // stays modest against the upload cost the schedulers compete over.
  config.options = bench::rasc_options(/*pes=*/192);
  // The contended resource: a slow host link makes the bank-image DMA
  // the dominant per-batch cost, which is the regime the paper's
  // amortization argument (Tables 2/3) speaks to. Identical for both
  // schedulers.
  config.options.rasc.platform.dma_bandwidth = 2e6;
  config.options.rasc.platform.dma_latency = 1e-4;
  config.scheduler = policy;
  // Small drain cap: the worker sees the stream a few requests at a
  // time, so scheduling decisions happen at stream granularity instead
  // of one drain swallowing the whole queue.
  config.max_drain_per_round = kBanks;
  config.starvation_rounds = 8;
  config.verify_checksums = false;
  return config;
}

ScheduleRun run_schedule(service::SchedulerPolicy policy,
                         const std::vector<std::string>& prefixes,
                         const std::vector<bio::SequenceBank>& queries) {
  service::SearchService service(make_config(policy));

  // Warm-up: one query per bank pays the bitstream load and the first
  // uploads outside the measured window, and leaves the *last* bank's
  // image on the board -- the same starting state for both schedulers.
  for (const std::string& prefix : prefixes) {
    service.submit(queries.front(), prefix).get();
  }

  const service::ServiceStats before = service.snapshot();

  // The mixed stream: one submit_batch so the worker observes arrivals
  // in exactly this order under both policies.
  std::vector<service::ServiceRequest> stream;
  for (std::size_t round = 0; round < kRounds; ++round) {
    for (std::size_t b = 0; b < kBanks; ++b) {
      service::ServiceRequest request;
      request.query = queries[(round * kBanks + b) % queries.size()];
      request.bank_prefix = prefixes[b];
      request.options = service.default_query_options();
      stream.push_back(std::move(request));
    }
  }
  std::vector<std::future<service::ServiceResponse>> futures =
      service.submit_batch(std::move(stream));

  ScheduleRun run;
  run.reply_bytes.reserve(futures.size());
  for (auto& future : futures) {
    const service::QueryResult reply = future.get();
    std::vector<std::uint8_t> bytes;
    core::append_matches(bytes, reply.matches);
    run.reply_bytes.push_back(std::move(bytes));
  }

  const service::ServiceStats after = service.snapshot();
  run.accel_seconds =
      after.accel_modeled_seconds - before.accel_modeled_seconds;
  run.swaps = after.board_swaps - before.board_swaps;
  run.uploads = after.board_bank_uploads - before.board_bank_uploads;
  run.skipped = after.bank_uploads_skipped - before.bank_uploads_skipped;
  run.reorders = after.scheduler_reorders - before.scheduler_reorders;
  run.promotions =
      after.starvation_promotions - before.starvation_promotions;
  run.queries_per_accel_second =
      run.accel_seconds > 0.0
          ? static_cast<double>(futures.size()) / run.accel_seconds
          : 0.0;
  std::fprintf(stderr,
               "# %-8s accel=%.4fs swaps=%llu uploads=%llu skipped=%llu "
               "reorders=%llu promotions=%llu (%.1f q/accel-s)\n",
               service::scheduler_policy_name(policy), run.accel_seconds,
               static_cast<unsigned long long>(run.swaps),
               static_cast<unsigned long long>(run.uploads),
               static_cast<unsigned long long>(run.skipped),
               static_cast<unsigned long long>(run.reorders),
               static_cast<unsigned long long>(run.promotions),
               run.queries_per_accel_second);
  return run;
}

}  // namespace

int main() {
  const sim::PaperWorkload workload = bench::make_bench_workload();

  // Three reference banks: disjoint slices of the translated genome, so
  // each has a distinct image the board must swap between.
  const bio::SequenceBank& genome = workload.genome_bank;
  const index::SeedModel model = core::make_seed_model(
      bench::rasc_options(192).seed_model);
  std::vector<std::string> prefixes;
  for (std::size_t b = 0; b < kBanks; ++b) {
    bio::SequenceBank slice(genome.kind());
    for (std::size_t i = b; i < genome.size(); i += kBanks) {
      slice.add(genome[i]);
    }
    const std::string prefix = "bench_board_bank" + std::to_string(b);
    store::save_bank(prefix + ".pscbank", slice);
    store::save_index(prefix + ".pscidx", index::IndexTable(slice, model),
                      model);
    prefixes.push_back(prefix);
  }

  // Single-protein query banks from the paper workload's smallest bank.
  std::vector<bio::SequenceBank> queries;
  for (const bio::Sequence& sequence : workload.banks.front().proteins) {
    bio::SequenceBank one(bio::SequenceKind::kProtein);
    one.add(sequence);
    queries.push_back(std::move(one));
    if (queries.size() >= 8) break;
  }

  const ScheduleRun fifo =
      run_schedule(service::SchedulerPolicy::kFifo, prefixes, queries);
  const ScheduleRun affinity =
      run_schedule(service::SchedulerPolicy::kAffinity, prefixes, queries);

  // The invariant: scheduling order must not move a single output byte.
  bool identical = fifo.reply_bytes.size() == affinity.reply_bytes.size();
  for (std::size_t i = 0; identical && i < fifo.reply_bytes.size(); ++i) {
    identical = fifo.reply_bytes[i] == affinity.reply_bytes[i];
  }

  const double ratio =
      fifo.accel_seconds > 0.0 && affinity.accel_seconds > 0.0
          ? fifo.accel_seconds / affinity.accel_seconds
          : 0.0;

  std::printf("\n=== board residency (mixed %zu-bank stream, %zu queries) "
              "===\n",
              kBanks, kBanks * kRounds);
  std::printf("fifo      %10.4f accel-s  %4llu swaps  %8.1f q/accel-s\n",
              fifo.accel_seconds,
              static_cast<unsigned long long>(fifo.swaps),
              fifo.queries_per_accel_second);
  std::printf("affinity  %10.4f accel-s  %4llu swaps  %8.1f q/accel-s\n",
              affinity.accel_seconds,
              static_cast<unsigned long long>(affinity.swaps),
              affinity.queries_per_accel_second);
  std::printf("throughput ratio (affinity/fifo)  %.2fx   replies %s\n",
              ratio, identical ? "byte-identical" : "DIFFER");

  std::ofstream json("BENCH_board_residency.json");
  json << "{\n"
       << "  \"banks\": " << kBanks << ",\n"
       << "  \"queries\": " << kBanks * kRounds << ",\n"
       << "  \"fifo_accel_seconds\": " << fifo.accel_seconds << ",\n"
       << "  \"fifo_board_swaps\": " << fifo.swaps << ",\n"
       << "  \"fifo_bank_uploads\": " << fifo.uploads << ",\n"
       << "  \"fifo_queries_per_accel_second\": "
       << fifo.queries_per_accel_second << ",\n"
       << "  \"affinity_accel_seconds\": " << affinity.accel_seconds << ",\n"
       << "  \"affinity_board_swaps\": " << affinity.swaps << ",\n"
       << "  \"affinity_bank_uploads\": " << affinity.uploads << ",\n"
       << "  \"affinity_uploads_skipped\": " << affinity.skipped << ",\n"
       << "  \"affinity_starvation_promotions\": " << affinity.promotions
       << ",\n"
       << "  \"affinity_queries_per_accel_second\": "
       << affinity.queries_per_accel_second << ",\n"
       << "  \"throughput_ratio\": " << ratio << ",\n"
       << "  \"replies_byte_identical\": " << (identical ? "true" : "false")
       << "\n"
       << "}\n";
  std::fprintf(stderr, "wrote BENCH_board_residency.json\n");

  for (const std::string& prefix : prefixes) {
    std::remove((prefix + ".pscbank").c_str());
    std::remove((prefix + ".pscidx").c_str());
  }
  return (ratio >= 2.0 && identical) ? 0 : 1;
}
