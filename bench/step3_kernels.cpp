// Step-3 gapped-extension kernel shoot-out: the scalar reference vs the
// portable and AVX2 16-bit tiers, on the two shapes the pipeline runs --
// the banded window screen (fixed geometry, deterministic cell count;
// this is the throughput gate) and the X-drop half extension (content-
// dependent pruning, reported as halves/sec). A final end-to-end section
// runs the whole pipeline per --step3-kernel selection and byte-compares
// the encoded match sections against the scalar run, so the JSON records
// the bit-identity claim next to the speedups.
//
// Writes BENCH_step3_kernels.json. Exit code gates the acceptance
// criterion (AVX2 banded cell throughput >= 4x scalar) only when the CPU
// actually has AVX2; elsewhere the numbers are recorded and the gate is
// skipped, since the tier under test cannot run.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "align/banded.hpp"
#include "align/gapped.hpp"
#include "align/gapped_simd.hpp"
#include "core/pipeline.hpp"
#include "core/result_codec.hpp"
#include "sim/genome_generator.hpp"
#include "sim/mutation.hpp"
#include "sim/protein_generator.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace psc;

constexpr std::size_t kWindowLength = 256;
constexpr std::size_t kBand = 31;
constexpr std::size_t kPairs = 64;
constexpr double kRequiredSpeedup = 4.0;

struct KernelRow {
  const char* name;
  double banded_cells_per_sec = 0.0;
  double banded_speedup = 1.0;
  double xdrop_halves_per_sec = 0.0;
  double xdrop_speedup = 1.0;
  double pipeline_seconds = 0.0;
  bool pipeline_identical = true;
};

/// Cells the scalar banded kernel touches for one window pair: the band
/// |i - j| <= B clipped to the n x n square (n = min length).
std::size_t banded_cells(std::size_t n, std::size_t band) {
  std::size_t cells = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t lo = i > band ? i - band : 1;
    const std::size_t hi = std::min(i + band, n);
    cells += hi - lo + 1;
  }
  return cells;
}

std::vector<std::uint8_t> residues(const bio::Sequence& seq) {
  return {seq.residues().begin(), seq.residues().end()};
}

/// Warm up, then grow the repetition count until the run is long enough
/// for the steady-state rate to dominate timer overhead (same
/// calibration as bench/micro_kernels.cpp).
template <typename Fn>
double calibrated_rate(std::size_t units_per_call, Fn&& call) {
  call();
  std::size_t reps = 16;
  for (;;) {
    util::Timer timer;
    for (std::size_t r = 0; r < reps; ++r) call();
    const double seconds = timer.seconds();
    if (seconds >= 0.2) {
      return static_cast<double>(reps * units_per_call) / seconds;
    }
    reps *= 4;
  }
}

/// Homologous window pairs: mutated copies so the DP sees realistic
/// score gradients (all-random pairs die immediately under X-drop).
struct PairSet {
  std::vector<std::vector<std::uint8_t>> s0, s1;
};

PairSet make_pairs(std::size_t count, std::size_t length, std::uint64_t seed) {
  PairSet pairs;
  util::Xoshiro256 rng(seed);
  sim::MutationConfig divergence;
  divergence.substitution_rate = 0.25;
  divergence.indel_rate = 0.02;
  for (std::size_t i = 0; i < count; ++i) {
    std::string id = "w";
    id += std::to_string(i);
    const bio::Sequence base = sim::generate_protein(std::move(id), length, rng);
    bio::Sequence twin = sim::mutate_protein(base, divergence, rng);
    auto r0 = residues(base);
    auto r1 = residues(twin);
    r1.resize(length, r1.empty() ? std::uint8_t{0} : r1.back());
    pairs.s0.push_back(std::move(r0));
    pairs.s1.push_back(std::move(r1));
  }
  return pairs;
}

/// End-to-end workload: the step3_kernels_test banks scaled up so the
/// pipeline spends measurable time in step 3.
struct PipelineWorkload {
  bio::SequenceBank proteins{bio::SequenceKind::kProtein};
  bio::Sequence genome;

  PipelineWorkload() {
    util::Xoshiro256 rng(97);
    for (std::size_t i = 0; i < 12; ++i) {
      std::string id = "p";
      id += std::to_string(i);
      proteins.add(sim::generate_protein(std::move(id), 160, rng));
    }
    sim::GenomeConfig config;
    config.length = 60000;
    config.seed = 97;
    genome = sim::generate_genome(config);
    sim::MutationConfig divergence;
    divergence.substitution_rate = 0.15;
    divergence.indel_rate = 0.0;
    for (std::size_t i = 0; i < 6; ++i) {
      sim::plant_gene(genome,
                      sim::mutate_protein(proteins[i % proteins.size()],
                                          divergence, rng),
                      4000 + 9000 * i, (i % 2) == 0, rng);
    }
  }
};

}  // namespace

int main() {
  const auto& matrix = bio::SubstitutionMatrix::blosum62();
  const align::GapParams params;  // the pipeline defaults: 11/1/38
  const align::GappedSimdMatrix rows(matrix);
  const bool has_avx2 = align::gapped_avx2_available();
  if (!align::gapped_simd_applicable(matrix, params)) {
    std::fprintf(stderr,
                 "step3_kernels: BLOSUM62 + default gap params outside the "
                 "16-bit tiers' exact range?!\n");
    return 1;
  }

  const PairSet pairs = make_pairs(kPairs, kWindowLength, 11);
  const std::size_t cells_per_pass =
      kPairs * banded_cells(kWindowLength, kBand);

  KernelRow kernels[] = {{"scalar"}, {"portable"}, {"avx2"}};
  std::uint64_t check_scalar = 0, check_tier = 0;

  // ---- banded window screen (the gate) ----------------------------------
  std::fprintf(stderr,
               "=== step-3 banded screen: %zu pairs, window %zu, band %zu "
               "(%zu cells/pass) ===\n",
               kPairs, kWindowLength, kBand, cells_per_pass);
  kernels[0].banded_cells_per_sec = calibrated_rate(cells_per_pass, [&] {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kPairs; ++i) {
      sum += static_cast<std::uint64_t>(align::banded_window_score(
          pairs.s0[i], pairs.s1[i], kBand, params, matrix));
    }
    check_scalar = sum;
  });
  kernels[1].banded_cells_per_sec = calibrated_rate(cells_per_pass, [&] {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kPairs; ++i) {
      const auto score = align::banded_window_score_portable(
          pairs.s0[i], pairs.s1[i], kBand, params, rows);
      sum += static_cast<std::uint64_t>(
          score ? *score
                : align::banded_window_score(pairs.s0[i], pairs.s1[i], kBand,
                                             params, matrix));
    }
    check_tier = sum;
  });
  if (check_tier != check_scalar) {
    std::fprintf(stderr, "step3_kernels: portable banded checksum mismatch\n");
    return 1;
  }
  if (has_avx2) {
    kernels[2].banded_cells_per_sec = calibrated_rate(cells_per_pass, [&] {
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < kPairs; ++i) {
        const auto score = align::banded_window_score_avx2(
            pairs.s0[i], pairs.s1[i], kBand, params, rows);
        sum += static_cast<std::uint64_t>(
            score ? *score
                  : align::banded_window_score(pairs.s0[i], pairs.s1[i], kBand,
                                               params, matrix));
      }
      check_tier = sum;
    });
    if (check_tier != check_scalar) {
      std::fprintf(stderr, "step3_kernels: avx2 banded checksum mismatch\n");
      return 1;
    }
  }

  // ---- X-drop half extension --------------------------------------------
  kernels[0].xdrop_halves_per_sec = calibrated_rate(kPairs, [&] {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kPairs; ++i) {
      sum += static_cast<std::uint64_t>(
          align::xdrop_gapped_half(pairs.s0[i], pairs.s1[i], matrix, params)
              .score);
    }
    check_scalar = sum;
  });
  kernels[1].xdrop_halves_per_sec = calibrated_rate(kPairs, [&] {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kPairs; ++i) {
      const auto half = align::xdrop_gapped_half_portable(
          pairs.s0[i], pairs.s1[i], rows, params);
      sum += static_cast<std::uint64_t>(
          half ? half->score
               : align::xdrop_gapped_half(pairs.s0[i], pairs.s1[i], matrix,
                                          params)
                     .score);
    }
    check_tier = sum;
  });
  if (check_tier != check_scalar) {
    std::fprintf(stderr, "step3_kernels: portable xdrop checksum mismatch\n");
    return 1;
  }
  if (has_avx2) {
    kernels[2].xdrop_halves_per_sec = calibrated_rate(kPairs, [&] {
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < kPairs; ++i) {
        const auto half = align::xdrop_gapped_half_avx2(pairs.s0[i],
                                                        pairs.s1[i], rows,
                                                        params);
        sum += static_cast<std::uint64_t>(
            half ? half->score
                 : align::xdrop_gapped_half(pairs.s0[i], pairs.s1[i], matrix,
                                            params)
                       .score);
      }
      check_tier = sum;
    });
    if (check_tier != check_scalar) {
      std::fprintf(stderr, "step3_kernels: avx2 xdrop checksum mismatch\n");
      return 1;
    }
  }

  // ---- end-to-end pipeline deltas ---------------------------------------
  const PipelineWorkload workload;
  std::vector<std::uint8_t> reference_bytes;
  const align::GappedKernel selections[] = {align::GappedKernel::kScalar,
                                            align::GappedKernel::kPortable,
                                            align::GappedKernel::kAvx2};
  for (std::size_t k = 0; k < 3; ++k) {
    if (k == 2 && !has_avx2) break;
    core::PipelineOptions options;
    options.backend = core::Step2Backend::kHostParallel;
    options.overlap_steps23 = true;
    options.with_traceback = true;
    options.step3_kernel = selections[k];
    util::Timer timer;
    const core::PipelineResult result =
        core::run_pipeline_genome(workload.proteins, workload.genome, options);
    kernels[k].pipeline_seconds = timer.seconds();
    const std::vector<std::uint8_t> bytes =
        core::encode_matches(result.matches);
    if (k == 0) {
      reference_bytes = bytes;
      if (result.matches.empty()) {
        std::fprintf(stderr, "step3_kernels: pipeline found no matches\n");
        return 1;
      }
    } else {
      kernels[k].pipeline_identical = bytes == reference_bytes;
    }
    std::fprintf(stderr, "pipeline kernel=%-8s engine=%-8s %.3fs %s\n",
                 kernels[k].name, result.step3_engine.c_str(),
                 kernels[k].pipeline_seconds,
                 kernels[k].pipeline_identical ? "identical" : "DIFFERS");
  }

  // ---- report -------------------------------------------------------------
  bool identical = true;
  for (KernelRow& row : kernels) {
    row.banded_speedup =
        row.banded_cells_per_sec / kernels[0].banded_cells_per_sec;
    row.xdrop_speedup =
        row.xdrop_halves_per_sec / kernels[0].xdrop_halves_per_sec;
    identical = identical && row.pipeline_identical;
  }
  const std::size_t shown = has_avx2 ? 3 : 2;
  for (std::size_t k = 0; k < shown; ++k) {
    const KernelRow& row = kernels[k];
    std::fprintf(stderr,
                 "%-9s banded %8.1f Mcells/s (%.2fx)   xdrop %8.1f halves/s "
                 "(%.2fx)\n",
                 row.name, row.banded_cells_per_sec / 1e6, row.banded_speedup,
                 row.xdrop_halves_per_sec, row.xdrop_speedup);
  }

  const double avx2_speedup = kernels[2].banded_speedup;
  const bool gate_pass = !has_avx2 || avx2_speedup >= kRequiredSpeedup;

  std::ofstream json("BENCH_step3_kernels.json");
  json << "{\n"
       << "  \"window_length\": " << kWindowLength << ",\n"
       << "  \"band\": " << kBand << ",\n"
       << "  \"pairs\": " << kPairs << ",\n"
       << "  \"avx2_available\": " << (has_avx2 ? "true" : "false") << ",\n"
       << "  \"kernels\": [\n";
  for (std::size_t k = 0; k < shown; ++k) {
    const KernelRow& row = kernels[k];
    json << "    {\"name\": \"" << row.name << "\", "
         << "\"banded_cells_per_sec\": " << row.banded_cells_per_sec << ", "
         << "\"banded_speedup_vs_scalar\": " << row.banded_speedup << ", "
         << "\"xdrop_halves_per_sec\": " << row.xdrop_halves_per_sec << ", "
         << "\"xdrop_speedup_vs_scalar\": " << row.xdrop_speedup << ", "
         << "\"pipeline_seconds\": " << row.pipeline_seconds << ", "
         << "\"pipeline_identical\": "
         << (row.pipeline_identical ? "true" : "false") << "}"
         << (k + 1 < shown ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"all_pipelines_identical\": " << (identical ? "true" : "false")
       << ",\n"
       << "  \"gate\": {\"required_banded_speedup\": " << kRequiredSpeedup
       << ", \"enforced\": " << (has_avx2 ? "true" : "false")
       << ", \"pass\": " << (gate_pass ? "true" : "false") << "}\n"
       << "}\n";
  json.close();
  std::fprintf(stderr, "wrote BENCH_step3_kernels.json\n");

  if (!identical) {
    std::fprintf(stderr, "step3_kernels: pipeline outputs differ by kernel\n");
    return 1;
  }
  if (!has_avx2) {
    std::fprintf(stderr,
                 "gate skipped: no AVX2 on this CPU (tier under test cannot "
                 "run)\n");
    return 0;
  }
  std::fprintf(stderr, "gate: avx2 banded speedup %.2fx (need >= %.1fx): %s\n",
               avx2_speedup, kRequiredSpeedup, gate_pass ? "PASS" : "FAIL");
  return gate_pass ? 0 : 1;
}
