// Ablation -- PE slot geometry (paper section 3.1): "slots (or clusters)
// of several PEs are separated by registers barriers". More slots mean
// more pipeline skew but shorter data paths (which is what lets the real
// design close timing at 100 MHz). The simulator exposes the skew side:
// this bench sweeps the slot size at fixed PE count and reports the cycle
// overhead and the FIFO pressure per geometry.
#include "common.hpp"

#include "core/step1_index.hpp"
#include "rasc/rasc_backend.hpp"

int main() {
  using namespace psc;
  const sim::PaperWorkload workload = bench::make_bench_workload(78);
  const auto& bank = workload.banks[2];

  core::PipelineOptions base = bench::rasc_options(192);
  const core::Step1Result step1 =
      core::run_step1(bank.proteins, workload.genome_bank, base);

  util::TextTable table;
  table.set_header({"slot size", "slots", "skew cyc", "total cycles",
                    "overhead vs 1-slot", "stall cyc"});

  std::uint64_t monolithic_cycles = 0;
  for (const std::size_t slot_size : {192u, 48u, 16u, 8u, 4u, 2u}) {
    std::fprintf(stderr, "# slot size %zu...\n", slot_size);
    rasc::RascStep2Config config;
    config.psc = base.rasc.psc;
    config.psc.slot_size = slot_size;
    config.psc.window_length = base.shape.length();
    config.psc.threshold = base.ungapped_threshold;
    config.shape = base.shape;
    const rasc::RascStep2Result result = rasc::run_rasc_step2(
        bank.proteins, step1.table0, workload.genome_bank, step1.table1,
        bio::SubstitutionMatrix::blosum62(), config);

    const std::uint64_t cycles = result.stats.cycles_total();
    if (slot_size == 192u) monolithic_cycles = cycles;
    table.add_row(
        {std::to_string(slot_size), std::to_string(config.psc.num_slots()),
         std::to_string(config.psc.skew_cycles()),
         util::TextTable::count(static_cast<long long>(cycles)),
         util::TextTable::num(
             100.0 * (static_cast<double>(cycles) /
                          static_cast<double>(monolithic_cycles) -
                      1.0),
             2) + "%",
         util::TextTable::count(
             static_cast<long long>(result.stats.cycles_stall))});
  }

  bench::print_table(
      "Ablation: PE slot size at 192 PEs (bank " + bank.label + ")", table,
      "  expected: register barriers cost only a fraction of a percent in\n"
      "  cycles even at slot size 2 -- the paper's pipeline structure buys\n"
      "  its Place-and-Route benefits essentially for free, which is why\n"
      "  'the control is independent of the number of PEs' scales.");
  return 0;
}
