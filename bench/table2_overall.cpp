// Table 2 -- "Performance comparison of NCBI BLAST and our FPGA
// implementation": end-to-end time of the tblastn baseline vs. the RASC
// pipeline with 64 / 128 / 192 PEs, for the four protein banks.
//
// Paper (seconds; speedups in parentheses):
//   bank   tblastn  64PE        128PE       192PE
//   1K     2,379    506 (4.70)  451 (5.27)  443 (5.37)
//   3K     7,089    873 (8.10)  689 (10.2)  631 (11.2)
//   10K    24,017   2,220(10.8) 1,661(14.5) 1,450(16.6)
//   30K    70,891   6,031(11.8) 4,312(16.4) 3,667(19.3)
//
// Shape targets: speedup grows down the bank column and (for the larger
// banks) across the PE row; small banks underfill the array.
#include "common.hpp"

int main() {
  using namespace psc;
  const sim::PaperWorkload workload = bench::make_bench_workload();
  const std::size_t pe_configs[] = {64, 128, 192};
  const double paper_baseline[] = {2379, 7089, 24017, 70891};
  const double paper_speedup[][3] = {{4.70, 5.27, 5.37},
                                     {8.10, 10.20, 11.23},
                                     {10.81, 14.45, 16.56},
                                     {11.75, 16.44, 19.33}};

  util::TextTable table;
  table.set_header({"bank", "baseline s", "64PE s", "x", "128PE s", "x",
                    "192PE s", "x", "util@192"});

  for (std::size_t b = 0; b < workload.banks.size(); ++b) {
    const auto& bank = workload.banks[b];
    std::fprintf(stderr, "# bank %s: baseline...\n", bank.label.c_str());
    const bench::BaselineRun baseline =
        bench::run_baseline(bank.proteins, workload.genome_bank);

    std::vector<std::string> row = {bank.label,
                                    util::TextTable::num(baseline.seconds, 2)};
    double last_util = 0.0;
    for (const std::size_t pes : pe_configs) {
      std::fprintf(stderr, "# bank %s: RASC %zu PEs...\n", bank.label.c_str(),
                   pes);
      const core::PipelineResult result = core::run_pipeline(
          bank.proteins, workload.genome_bank, bench::rasc_options(pes));
      const double rasc_seconds = result.times.total();
      row.push_back(util::TextTable::num(rasc_seconds, 2));
      row.push_back(util::TextTable::num(baseline.seconds / rasc_seconds, 2));
      last_util = result.operator_stats.utilization();
    }
    row.push_back(util::TextTable::num(100.0 * last_util, 1) + "%");
    table.add_row(row);
  }

  // Paper reference rows.
  table.add_rule();
  const char* labels[] = {"1K", "3K", "10K", "30K"};
  for (int b = 0; b < 4; ++b) {
    table.add_row({std::string("paper ") + labels[b],
                   util::TextTable::num(paper_baseline[b], 0),
                   "-", util::TextTable::num(paper_speedup[b][0], 2),
                   "-", util::TextTable::num(paper_speedup[b][1], 2),
                   "-", util::TextTable::num(paper_speedup[b][2], 2), "-"});
  }

  bench::print_table(
      "Table 2: overall time, baseline vs RASC (64/128/192 PEs)", table,
      "  shape checks: (a) speedup grows with bank size; (b) extra PEs\n"
      "  help more on large banks; (c) utilization grows with bank size.\n"
      "  Absolute speedups are below the paper's because the baseline\n"
      "  runs on a 2026 core while the modeled array keeps the 100 MHz\n"
      "  clock of the Virtex-4 design (see EXPERIMENTS.md).");
  return 0;
}
