// Ablation -- ungapped threshold (paper sections 2.2 and 4.1): the
// threshold trades result traffic (FIFO pressure, host transfers, step-3
// work) against sensitivity. The paper raised it to make the dual-FPGA
// runs complete; this bench sweeps it and reports hits, transfer bytes,
// stall cycles, step-3 time and final matches.
#include "common.hpp"

int main() {
  using namespace psc;
  const sim::PaperWorkload workload = bench::make_bench_workload(79);
  const auto& bank = workload.banks[2];

  util::TextTable table;
  table.set_header({"threshold", "step2 hits", "result KB", "stall cyc",
                    "step3 s", "matches"});

  for (const int threshold : {25, 30, 38, 45, 55}) {
    std::fprintf(stderr, "# threshold %d...\n", threshold);
    const core::PipelineResult result =
        core::run_pipeline(bank.proteins, workload.genome_bank,
                           bench::rasc_options(192, 1, threshold));
    const double result_kb =
        static_cast<double>(result.counters.step2_hits) * 12.0 / 1024.0;
    table.add_row(
        {std::to_string(threshold),
         util::TextTable::count(static_cast<long long>(result.counters.step2_hits)),
         util::TextTable::num(result_kb, 1),
         util::TextTable::count(static_cast<long long>(result.operator_stats.cycles_stall)),
         util::TextTable::num(result.times.step3_gapped, 3),
         std::to_string(result.matches.size())});
  }

  bench::print_table(
      "Ablation: ungapped score threshold (bank " + bank.label +
          ", 192 PEs)",
      table,
      "  expected: hits and result traffic fall steeply with the\n"
      "  threshold while final matches degrade slowly -- the headroom the\n"
      "  paper exploited in section 4.1 ('this modification does not\n"
      "  reduce the amount of calculation... It just aims to lighten the\n"
      "  traffic between the FPGA board and the host').");
  return 0;
}
