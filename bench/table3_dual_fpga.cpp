// Table 3 -- "Performance comparison of 1 FPGA and 2 FPGAs for 192 PEs
// and the 4 protein banks". The paper raised the ungapped threshold for
// this experiment to thin result traffic to the host (section 4.1); we do
// the same (threshold 50 instead of 38).
//
// Paper (seconds):
//   bank   1 FPGA  2 FPGAs  speedup
//   1K     168     148      1.14
//   3K     223     175      1.27
//   10K    510     330      1.54
//   30K    1,373   759      1.80
//
// Shape target: dual-FPGA speedup grows toward 2 with bank size (fixed
// host stages and per-board overheads cap it for small banks).
#include "common.hpp"

int main() {
  using namespace psc;
  const sim::PaperWorkload workload = bench::make_bench_workload();
  const int raised_threshold = 50;
  const double paper_speedup[] = {1.14, 1.27, 1.54, 1.80};

  util::TextTable table;
  table.set_header(
      {"bank", "1 FPGA s", "2 FPGAs s", "speedup", "paper speedup"});

  for (std::size_t b = 0; b < workload.banks.size(); ++b) {
    const auto& bank = workload.banks[b];
    std::fprintf(stderr, "# bank %s: 1 FPGA...\n", bank.label.c_str());
    const core::PipelineResult one = core::run_pipeline(
        bank.proteins, workload.genome_bank,
        bench::rasc_options(192, 1, raised_threshold));
    std::fprintf(stderr, "# bank %s: 2 FPGAs...\n", bank.label.c_str());
    const core::PipelineResult two = core::run_pipeline(
        bank.proteins, workload.genome_bank,
        bench::rasc_options(192, 2, raised_threshold));

    const double t1 = one.times.total();
    const double t2 = two.times.total();
    table.add_row({bank.label, util::TextTable::num(t1, 2),
                   util::TextTable::num(t2, 2),
                   util::TextTable::num(t1 / t2, 2),
                   util::TextTable::num(paper_speedup[b], 2)});
  }

  bench::print_table(
      "Table 3: one vs two FPGAs, 192 PEs, raised ungapped threshold",
      table,
      "  shape check: speedup rises with bank size and stays below 2\n"
      "  (steps 1 and 3 remain on one host core -- Amdahl; plus per-board\n"
      "  bitstream/driver overheads and key-partition imbalance).");
  return 0;
}
