// Table 4 -- "Performance comparison of step 2 only": the ungapped
// extension stage alone, host-sequential vs the PE array at 64/128/192.
//
// Paper (seconds; speedups in parentheses):
//   bank   sequential  64PE         128PE        192PE
//   1K     2,368       220 (10.8)   176 (13.5)   169 (14.0)
//   3K     7,577       462 (16.4)   280 (27.1)   223 (34.0)
//   10K    24,687      1,366 (18.1) 720 (34.3)   510 (48.4)
//   30K    73,492      3,932 (18.7) 2,015 (36.5) 1,373 (53.5)
//
// Shape targets: step-2 speedup far exceeds the end-to-end speedup of
// Table 2 (Amdahl), and grows with both bank size and PE count.
#include "common.hpp"

#include "core/step1_index.hpp"
#include "core/step2_host.hpp"
#include "rasc/rasc_backend.hpp"

int main() {
  using namespace psc;
  const sim::PaperWorkload workload = bench::make_bench_workload();
  const std::size_t pe_configs[] = {64, 128, 192};
  const double paper_speedup[][3] = {{10.76, 13.45, 14.01},
                                     {16.40, 27.06, 33.97},
                                     {18.07, 34.28, 48.38},
                                     {18.68, 36.47, 53.52}};

  util::TextTable table;
  table.set_header({"bank", "sequential s", "64PE s", "x", "128PE s", "x",
                    "192PE s", "x"});

  core::PipelineOptions options;  // threshold 38
  options.seed_model = core::SeedModelKind::kSubsetW4Coarse;

  for (std::size_t b = 0; b < workload.banks.size(); ++b) {
    const auto& bank = workload.banks[b];
    std::fprintf(stderr, "# bank %s: indexing...\n", bank.label.c_str());
    const core::Step1Result step1 =
        core::run_step1(bank.proteins, workload.genome_bank, options);

    std::fprintf(stderr, "# bank %s: host-sequential step 2...\n",
                 bank.label.c_str());
    util::Timer timer;
    const core::HostStep2Result host = core::run_step2_host(
        bank.proteins, step1.table0, workload.genome_bank, step1.table1,
        bio::SubstitutionMatrix::blosum62(), options.shape,
        options.ungapped_threshold);
    const double host_seconds = timer.seconds();

    std::vector<std::string> row = {bank.label,
                                    util::TextTable::num(host_seconds, 3)};
    for (const std::size_t pes : pe_configs) {
      std::fprintf(stderr, "# bank %s: RASC step 2, %zu PEs...\n",
                   bank.label.c_str(), pes);
      rasc::RascStep2Config config;
      config.psc = bench::rasc_options(pes).rasc.psc;
      config.psc.window_length = options.shape.length();
      config.psc.threshold = options.ungapped_threshold;
      config.shape = options.shape;
      const rasc::RascStep2Result accel = rasc::run_rasc_step2(
          bank.proteins, step1.table0, workload.genome_bank, step1.table1,
          bio::SubstitutionMatrix::blosum62(), config);
      if (accel.hits.size() != host.hits.size()) {
        std::fprintf(stderr, "!! backend divergence: %zu vs %zu hits\n",
                     accel.hits.size(), host.hits.size());
      }
      row.push_back(util::TextTable::num(accel.modeled_seconds, 3));
      row.push_back(
          util::TextTable::num(host_seconds / accel.modeled_seconds, 2));
    }
    table.add_row(row);
  }

  table.add_rule();
  const char* labels[] = {"1K", "3K", "10K", "30K"};
  for (int b = 0; b < 4; ++b) {
    table.add_row({std::string("paper ") + labels[b], "-",
                   "-", util::TextTable::num(paper_speedup[b][0], 1),
                   "-", util::TextTable::num(paper_speedup[b][1], 1),
                   "-", util::TextTable::num(paper_speedup[b][2], 1)});
  }

  bench::print_table(
      "Table 4: step 2 (ungapped extension) only", table,
      "  shape check: speedup grows with bank size and PE count. Note an\n"
      "  inversion against the paper's section 4.2: their sequential\n"
      "  step 2 was slower than all of NCBI tblastn, while ours (blocked\n"
      "  kernel, ~1G cells/s) is faster per cell than the baseline scan --\n"
      "  so our Table 4 ratios sit below Table 2's rather than above.\n"
      "  The one-time bitstream load is included, as in the paper.");
  return 0;
}
