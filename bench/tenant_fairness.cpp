// Tenant-fairness bench: what the weighted-fair (DRR) scheduler buys a
// light tenant sharing the service with a 10x-heavier one, against the
// FIFO drain order.
//
// The experiment is a deterministic scheduling simulation (no threads,
// no wall-clock noise): a heavy tenant keeps ten groups of work pending
// at all times while a light tenant keeps one, and each simulation step
// serves whichever group the policy under test picks. Because fairness
// only reorders -- group membership, and therefore every reply byte, is
// fixed before the scheduler runs (see service/scheduler.hpp) -- queue
// position IS the entire effect, so the simulation measures exactly
// what a wall-clock run would, minus the noise.
//
// Two figures of merit, FIFO vs DRR:
//   - Jain's fairness index over per-tenant service rates,
//     J = (sum x_i)^2 / (n * sum x_i^2): 1.0 is a perfect equal split,
//     1/n is one tenant taking everything.
//   - Heavy-tenant isolation: the light tenant's mean and p99 queue
//     wait (serves between a group's arrival and its own serve). Under
//     FIFO the light tenant waits behind the heavy backlog; under DRR
//     the wait is bounded by the deficit round, independent of how
//     deep the heavy tenant's backlog is.
//
// Writes BENCH_tenant_fairness.json for machine consumption, mirroring
// BENCH_service.json.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "service/scheduler.hpp"

namespace {

using namespace psc;

constexpr std::uint64_t kGroupCost = 512;  // query residues per group
constexpr std::size_t kHeavyBacklog = 10;  // the 10:1 offered-load skew
constexpr int kServes = 5000;

struct Pending {
  service::GroupView view;
  int arrival_serve = 0;  ///< simulation step the group arrived at
};

struct RunResult {
  std::uint64_t heavy_served = 0;
  std::uint64_t light_served = 0;
  double light_mean_wait = 0.0;
  double light_p99_wait = 0.0;
  double jain = 0.0;
};

service::GroupView make_group(const std::string& tenant, std::uint64_t bank,
                              std::uint64_t seq) {
  service::GroupView view;
  view.bank = bank;
  view.earliest_seq = seq;
  view.work = kGroupCost;
  view.shares = {{tenant, kGroupCost}};
  return view;
}

/// Runs `kServes` simulation steps under one policy. `fair` switches
/// between the plain FIFO drain order and the DRR FairScheduler (both
/// tenants at weight 1: the skew is in offered load, and equal weights
/// mean "isolate me from my neighbor's backlog").
RunResult run(bool fair) {
  service::FairScheduler::Config config;
  config.within = service::SchedulerPolicy::kFifo;
  service::FairScheduler scheduler(config);
  const service::FairScheduler::WeightFn weight =
      [](const std::string&) { return 1.0; };

  std::vector<Pending> pending;
  std::uint64_t seq = 0;
  std::vector<int> light_waits;
  RunResult result;

  for (int serve = 0; serve < kServes; ++serve) {
    // Top up the offered load: heavy keeps kHeavyBacklog groups queued
    // (across four banks, so affinity cannot mask the skew), light one.
    std::size_t heavy = 0;
    bool light = false;
    for (const Pending& p : pending) {
      if (p.view.shares[0].tenant == "heavy") ++heavy;
      else light = true;
    }
    while (heavy < kHeavyBacklog) {
      pending.push_back({make_group("heavy", 1 + seq % 4, seq), serve});
      ++seq;
      ++heavy;
    }
    if (!light) {
      pending.push_back({make_group("light", 1 + seq % 4, seq), serve});
      ++seq;
    }

    std::vector<service::GroupView> groups;
    groups.reserve(pending.size());
    for (const Pending& p : pending) groups.push_back(p.view);
    const std::size_t pick =
        fair ? scheduler.pick(groups, 0, weight).index
             : service::pick_next_group(groups, 0,
                                        service::SchedulerPolicy::kFifo, 0)
                   .index;

    const Pending served = pending[pick];
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));
    for (Pending& p : pending) ++p.view.rounds_waited;
    if (served.view.shares[0].tenant == "heavy") {
      result.heavy_served += served.view.work;
    } else {
      result.light_served += served.view.work;
      light_waits.push_back(serve - served.arrival_serve);
    }
  }

  if (!light_waits.empty()) {
    std::uint64_t total = 0;
    for (const int wait : light_waits) total += static_cast<std::uint64_t>(wait);
    result.light_mean_wait =
        static_cast<double>(total) / static_cast<double>(light_waits.size());
    std::sort(light_waits.begin(), light_waits.end());
    result.light_p99_wait = static_cast<double>(
        light_waits[light_waits.size() * 99 / 100]);
  }
  const double h = static_cast<double>(result.heavy_served);
  const double l = static_cast<double>(result.light_served);
  result.jain = (h + l) * (h + l) / (2.0 * (h * h + l * l));
  return result;
}

}  // namespace

int main() {
  std::fprintf(stderr,
               "# tenant fairness: %d serves, heavy backlog %zu, light 1 "
               "(10:1 offered load), group cost %llu residues\n",
               kServes, kHeavyBacklog,
               static_cast<unsigned long long>(kGroupCost));

  const RunResult fifo = run(/*fair=*/false);
  const RunResult fair = run(/*fair=*/true);

  std::printf("\n=== tenant fairness (10:1 offered-load skew) ===\n");
  std::printf("%-26s %12s %12s\n", "", "fifo", "fair (DRR)");
  std::printf("%-26s %12.3f %12.3f\n", "Jain fairness index", fifo.jain,
              fair.jain);
  std::printf("%-26s %12.1f %12.1f\n", "light mean wait (serves)",
              fifo.light_mean_wait, fair.light_mean_wait);
  std::printf("%-26s %12.0f %12.0f\n", "light p99 wait (serves)",
              fifo.light_p99_wait, fair.light_p99_wait);
  std::printf("%-26s %12llu %12llu\n", "light served (residues)",
              static_cast<unsigned long long>(fifo.light_served),
              static_cast<unsigned long long>(fair.light_served));
  std::printf("%-26s %12llu %12llu\n", "heavy served (residues)",
              static_cast<unsigned long long>(fifo.heavy_served),
              static_cast<unsigned long long>(fair.heavy_served));

  std::ofstream json("BENCH_tenant_fairness.json");
  json << "{\n"
       << "  \"serves\": " << kServes << ",\n"
       << "  \"heavy_backlog\": " << kHeavyBacklog << ",\n"
       << "  \"group_cost_residues\": " << kGroupCost << ",\n"
       << "  \"jain_fifo\": " << fifo.jain << ",\n"
       << "  \"jain_fair\": " << fair.jain << ",\n"
       << "  \"light_mean_wait_fifo\": " << fifo.light_mean_wait << ",\n"
       << "  \"light_mean_wait_fair\": " << fair.light_mean_wait << ",\n"
       << "  \"light_p99_wait_fifo\": " << fifo.light_p99_wait << ",\n"
       << "  \"light_p99_wait_fair\": " << fair.light_p99_wait << ",\n"
       << "  \"light_served_fifo\": " << fifo.light_served << ",\n"
       << "  \"light_served_fair\": " << fair.light_served << ",\n"
       << "  \"heavy_served_fifo\": " << fifo.heavy_served << ",\n"
       << "  \"heavy_served_fair\": " << fair.heavy_served << "\n"
       << "}\n";
  std::fprintf(stderr, "wrote BENCH_tenant_fairness.json\n");

  // The bench is also a regression gate: DRR must be measurably fairer
  // than FIFO and must actually isolate the light tenant's tail.
  const bool ok = fair.jain > fifo.jain && fair.jain > 0.95 &&
                  fair.light_p99_wait < fifo.light_p99_wait;
  if (!ok) std::fprintf(stderr, "tenant_fairness: FAIR DID NOT BEAT FIFO\n");
  return ok ? 0 : 1;
}
