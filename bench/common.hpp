// Shared infrastructure for the table-reproduction benches.
//
// Every bench binary reproduces one table of the paper's evaluation
// (section 4) on a scaled synthetic replica of its workload and prints
// the measured table next to the paper's published numbers. Scaling is
// controlled by PSC_SCALE (small | medium | large | <fraction>, default
// small); the genome scales by 0.4x the factor and the banks by 2x so
// that the index-list depths driving the PE-array utilization trends
// stay in a regime where the paper's effects are visible.
//
// Interpretation note (also in EXPERIMENTS.md): baseline columns are
// measured wall-clock on THIS machine, while RASC columns are modeled
// accelerator time (simulated cycles at 100 MHz + DMA model). A 2026
// x86 core is ~50-100x faster per clock than the paper's 1.6 GHz
// Itanium2, while the modeled FPGA stays at the paper's 100 MHz, so
// absolute speedups are smaller than published; the trends -- who wins,
// how speedup grows with bank size and PE count, where step 3 becomes
// the bottleneck -- are the reproduction target.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "blast/tblastn.hpp"
#include "core/pipeline.hpp"
#include "sim/workload.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace psc::bench {

/// Workload sized for the table benches from PSC_SCALE.
inline sim::PaperWorkload make_bench_workload(std::uint64_t seed = 42) {
  const double scale = sim::scale_from_env();
  sim::ScaledWorkloadConfig config;
  config.scale = 0.4 * scale;
  config.bank_scale = std::min(1.0, 4.0 * scale);
  config.seed = seed;
  const sim::PaperWorkload workload = sim::build_paper_workload(config);
  std::fprintf(stderr,
               "# PSC_SCALE=%g: genome %zu nt (%zu ORF fragments, %zu aa); "
               "banks", scale, workload.genome.size(),
               workload.genome_bank.size(),
               workload.genome_bank.total_residues());
  for (const auto& bank : workload.banks) {
    std::fprintf(stderr, " %s=%zu(%zu aa)", bank.label.c_str(),
                 bank.proteins.size(), bank.proteins.total_residues());
  }
  std::fprintf(stderr, "\n");
  return workload;
}

/// Pipeline options preconfigured for the RASC backend. The timing
/// benches use the coarse subset seed so index-list depths (hence PE
/// utilization) stay in the paper's regime on scaled data; quality
/// comparisons (Table 6) keep the paper-fidelity seed instead.
inline core::PipelineOptions rasc_options(std::size_t pes,
                                          std::size_t fpgas = 1,
                                          int threshold = 38) {
  core::PipelineOptions options;
  options.seed_model = core::SeedModelKind::kSubsetW4Coarse;
  options.backend = core::Step2Backend::kRasc;
  options.rasc.psc.num_pes = pes;
  options.rasc.psc.slot_size = 8;
  options.rasc.num_fpgas = fpgas;
  options.ungapped_threshold = threshold;
  return options;
}

/// Measured wall-clock run of the tblastn baseline against the
/// already-translated genome bank.
struct BaselineRun {
  double seconds = 0.0;
  std::size_t hits = 0;
};

inline BaselineRun run_baseline(const bio::SequenceBank& bank,
                                const bio::SequenceBank& genome_bank) {
  util::Timer timer;
  const blast::TblastnResult result = blast::tblastn_search(
      bank, genome_bank, bio::SubstitutionMatrix::blosum62(),
      blast::TblastnOptions{});
  return BaselineRun{timer.seconds(), result.hits.size()};
}

/// Prints a rendered table plus the paper's reference rows.
inline void print_table(const std::string& title, const util::TextTable& table,
                        const std::string& paper_reference) {
  std::printf("\n=== %s ===\n%s", title.c_str(), table.render().c_str());
  if (!paper_reference.empty()) {
    std::printf("paper reference:\n%s\n", paper_reference.c_str());
  }
}

}  // namespace psc::bench
