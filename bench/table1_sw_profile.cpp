// Table 1 -- "Percentage of time spent in the different steps of the
// algorithm" (software version, largest bank vs the genome).
// Paper: step 1 = 0.3%, step 2 = 97%, step 3 = 2.7%.
#include "common.hpp"

int main() {
  using namespace psc;
  const sim::PaperWorkload workload = bench::make_bench_workload();

  core::PipelineOptions options;
  options.seed_model = core::SeedModelKind::kSubsetW4Coarse;
  options.backend = core::Step2Backend::kHostSequential;

  const auto& bank = workload.banks.back();
  std::fprintf(stderr, "# running software pipeline on bank %s...\n",
               bank.label.c_str());
  const core::PipelineResult result =
      core::run_pipeline(bank.proteins, workload.genome_bank, options);

  util::TextTable table;
  table.set_header({"", "step 1 (index)", "step 2 (ungapped)",
                    "step 3 (gapped)"});
  table.add_row({"measured %",
                 util::TextTable::num(result.times.percent(result.times.step1_index), 1),
                 util::TextTable::num(result.times.percent(result.times.step2_ungapped), 1),
                 util::TextTable::num(result.times.percent(result.times.step3_gapped), 1)});
  table.add_row({"measured s",
                 util::TextTable::num(result.times.step1_index, 3),
                 util::TextTable::num(result.times.step2_ungapped, 3),
                 util::TextTable::num(result.times.step3_gapped, 3)});
  table.add_row({"paper %", "0.3", "97", "2.7"});

  bench::print_table(
      "Table 1: software step profile (bank " + bank.label + " vs genome)",
      table,
      "  shape check: step 2 must dominate the software pipeline.\n"
      "  (step-2 dominance is weaker at small scale because indexing has\n"
      "  fixed per-key costs over the full key space.)");

  std::printf("step-2 work: %s window pairs, %s survivors\n",
              util::TextTable::count(
                  static_cast<long long>(result.counters.step2_pairs)).c_str(),
              util::TextTable::count(
                  static_cast<long long>(result.counters.step2_hits)).c_str());
  return 0;
}
