// Extension bench -- the paper's closing question (section 5): "how to
// dispatch the overall computation between cores and FPGA to get optimal
// performances". Step 2's key space is split between the host thread
// pool (measured) and the simulated accelerator (modeled); both halves
// run concurrently, so combined time is the maximum of the two. The
// sweep locates the crossover.
#include "common.hpp"

#include "core/dispatch.hpp"
#include "core/step1_index.hpp"

int main() {
  using namespace psc;
  const sim::PaperWorkload workload = bench::make_bench_workload(83);
  const auto& bank = workload.banks.back();

  core::PipelineOptions base = bench::rasc_options(192);
  std::fprintf(stderr, "# indexing bank %s...\n", bank.label.c_str());
  const core::Step1Result step1 =
      core::run_step1(bank.proteins, workload.genome_bank, base);

  util::TextTable table;
  table.set_header({"host share", "host s (measured)", "accel s (modeled)",
                    "combined s", "hits"});

  double best_combined = 0.0;
  double best_fraction = 0.0;
  for (const double fraction : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    std::fprintf(stderr, "# host fraction %.2f...\n", fraction);
    core::DispatchConfig config;
    config.host_fraction = fraction;
    config.host_threads = 0;
    config.rasc = base.rasc;
    config.shape = base.shape;
    config.threshold = base.ungapped_threshold;
    const core::DispatchResult result = core::run_step2_dispatch(
        bank.proteins, step1.table0, workload.genome_bank, step1.table1,
        bio::SubstitutionMatrix::blosum62(), config);
    const double combined = result.combined_seconds();
    if (best_combined == 0.0 || combined < best_combined) {
      best_combined = combined;
      best_fraction = fraction;
    }
    table.add_row({util::TextTable::num(100.0 * fraction, 0) + "%",
                   util::TextTable::num(result.host_seconds, 3),
                   util::TextTable::num(result.accel_seconds, 3),
                   util::TextTable::num(combined, 3),
                   util::TextTable::count(static_cast<long long>(result.hits.size()))});
  }

  bench::print_table(
      "Extension: step-2 dispatch between host cores and FPGA (bank " +
          bank.label + ")",
      table,
      "  the best split depends on the host:accelerator throughput ratio\n"
      "  -- precisely the compromise the paper says future reconfigurable\n"
      "  platforms must find. Hit sets are identical at every split.");
  std::printf("best compromise here: %.0f%% of pair work on the host "
              "(%.3f s combined)\n",
              100.0 * best_fraction, best_combined);
  return 0;
}
