// Shard fan-out bench: what splitting a bank into shards costs (and
// buys) at the library level, on the scaled paper workload (PSC_SCALE).
//
// For each shard count the bank is written as a sharded store, loaded
// back as a LoadedBankSet, and every query is run through
// run_query_over_set. Three things are measured per shard count:
//   1. write time (index construction is per shard, so it shrinks);
//   2. load time for the whole set;
//   3. queries/sec through the fan-out/merge path.
// The fan-out's merged matches are also checked byte-for-byte against
// the unsharded pass (encode_matches), so the bench doubles as a
// large-workload bit-identity check on top of the small inline one in
// scripts/shard_check.sh.
//
// Writes BENCH_shard_fanout.json, mirroring BENCH_service.json.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/result_codec.hpp"
#include "service/search_service.hpp"
#include "service/shard_query.hpp"
#include "store/shard_store.hpp"
#include "util/timer.hpp"

namespace {

using namespace psc;

/// Single-protein query banks drawn from a workload bank.
std::vector<bio::SequenceBank> split_queries(const bio::SequenceBank& bank) {
  std::vector<bio::SequenceBank> queries;
  queries.reserve(bank.size());
  for (const bio::Sequence& sequence : bank) {
    bio::SequenceBank one(bio::SequenceKind::kProtein);
    one.add(sequence);
    queries.push_back(std::move(one));
  }
  return queries;
}

/// A cap that makes plan_shards cut the bank into ~`target` pieces.
std::uint64_t cap_for_shards(const bio::SequenceBank& bank,
                             std::size_t target) {
  std::uint64_t total = 0;
  for (const bio::Sequence& sequence : bank) {
    total += 2 * sizeof(std::uint32_t) + sequence.id().size() + sequence.size();
  }
  return std::max<std::uint64_t>(1, total / target);
}

void remove_store(const std::string& prefix, std::size_t shards) {
  std::remove(store::manifest_path(prefix).c_str());
  for (std::size_t i = 0; i < shards; ++i) {
    const std::string shard = store::shard_prefix(prefix, i);
    std::remove((shard + ".pscbank").c_str());
    std::remove((shard + ".pscidx").c_str());
  }
}

struct Measurement {
  std::size_t shards = 0;
  double write_seconds = 0.0;
  double load_seconds = 0.0;
  double queries_per_sec = 0.0;
  bool bit_identical = false;
};

}  // namespace

int main() {
  const sim::PaperWorkload workload = bench::make_bench_workload();
  const bio::SequenceBank& genome_bank = workload.genome_bank;
  const std::vector<bio::SequenceBank> queries =
      split_queries(workload.banks.front().proteins);

  const core::PipelineOptions options = service::default_service_options();
  const index::SeedModel model = core::make_seed_model(options.seed_model);
  const bio::SubstitutionMatrix matrix = bio::SubstitutionMatrix::blosum62();
  const std::string prefix = "bench_shard_store";

  // --- unsharded reference: store, set, and per-query match bytes ------
  store::write_sharded_store(prefix, genome_bank, model,
                             /*shard_max_bytes=*/0);
  const service::LoadedBankSet reference_set =
      service::load_bank_set(prefix, model, /*verify_checksums=*/true);
  std::vector<std::vector<std::uint8_t>> reference_bytes;
  reference_bytes.reserve(queries.size());
  util::Timer reference_timer;
  for (const bio::SequenceBank& query : queries) {
    const core::PipelineResult result =
        service::run_query_over_set(query, reference_set, options, matrix);
    reference_bytes.push_back(core::encode_matches(result.matches));
  }
  const double reference_seconds = reference_timer.seconds();
  const double reference_qps =
      static_cast<double>(queries.size()) / reference_seconds;
  std::fprintf(stderr, "# unsharded: %zu queries, %.3fs\n", queries.size(),
               reference_seconds);
  remove_store(prefix, 1);

  // --- sharded passes ---------------------------------------------------
  const std::size_t targets[] = {2, 4, 8, 16};
  std::vector<Measurement> rows;
  bool all_identical = true;
  for (const std::size_t target : targets) {
    const std::uint64_t cap = cap_for_shards(genome_bank, target);
    Measurement row;

    util::Timer write_timer;
    const store::ShardManifest manifest =
        store::write_sharded_store(prefix, genome_bank, model, cap);
    row.write_seconds = write_timer.seconds();
    row.shards = manifest.shards.size();

    util::Timer load_timer;
    const service::LoadedBankSet set =
        service::load_bank_set(prefix, model, /*verify_checksums=*/true);
    row.load_seconds = load_timer.seconds();

    row.bit_identical = true;
    util::Timer query_timer;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const core::PipelineResult result =
          service::run_query_over_set(queries[q], set, options, matrix);
      if (core::encode_matches(result.matches) != reference_bytes[q]) {
        row.bit_identical = false;
      }
    }
    row.queries_per_sec =
        static_cast<double>(queries.size()) / query_timer.seconds();
    all_identical = all_identical && row.bit_identical;

    std::fprintf(stderr, "# cap %llu -> %zu shard(s): %s\n",
                 static_cast<unsigned long long>(cap), row.shards,
                 row.bit_identical ? "bit-identical" : "MISMATCH");
    remove_store(prefix, row.shards);
    rows.push_back(row);
  }

  std::printf("\n=== shard fan-out ===\n");
  std::printf("%8s %12s %12s %14s %10s\n", "shards", "write (ms)", "load (ms)",
              "queries/sec", "identical");
  std::printf("%8d %12s %12s %14.1f %10s\n", 1, "-", "-", reference_qps, "ref");
  for (const Measurement& row : rows) {
    std::printf("%8zu %12.2f %12.2f %14.1f %10s\n", row.shards,
                row.write_seconds * 1e3, row.load_seconds * 1e3,
                row.queries_per_sec, row.bit_identical ? "yes" : "NO");
  }

  std::ofstream json("BENCH_shard_fanout.json");
  json << "{\n"
       << "  \"queries\": " << queries.size() << ",\n"
       << "  \"unsharded_queries_per_sec\": " << reference_qps << ",\n"
       << "  \"all_bit_identical\": " << (all_identical ? "true" : "false")
       << ",\n"
       << "  \"sharded\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Measurement& row = rows[i];
    json << "    {\"shards\": " << row.shards
         << ", \"write_seconds\": " << row.write_seconds
         << ", \"load_seconds\": " << row.load_seconds
         << ", \"queries_per_sec\": " << row.queries_per_sec
         << ", \"bit_identical\": " << (row.bit_identical ? "true" : "false")
         << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::fprintf(stderr, "wrote BENCH_shard_fanout.json\n");

  return all_identical ? 0 : 1;
}
