// Google-benchmark microkernels for the library's hot paths: the
// ungapped window kernel (the PE datapath), index construction, the
// X-drop extensions, six-frame translation and the two simulator engines.
#include <benchmark/benchmark.h>

#include "align/gapped.hpp"
#include "align/ungapped.hpp"
#include "align/xdrop.hpp"
#include "bio/translate.hpp"
#include "index/index_table.hpp"
#include "rasc/psc_operator.hpp"
#include "sim/genome_generator.hpp"
#include "sim/protein_generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace psc;

std::vector<std::uint8_t> random_residues(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& r : out) r = static_cast<std::uint8_t>(rng.bounded(20));
  return out;
}

void BM_UngappedWindowScore(benchmark::State& state) {
  const auto length = static_cast<std::size_t>(state.range(0));
  const auto a = random_residues(length, 1);
  const auto b = random_residues(length, 2);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::ungapped_window_score(a, b, m));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(length));
}
BENCHMARK(BM_UngappedWindowScore)->Arg(16)->Arg(64)->Arg(128);

void BM_UngappedBlockedOneVsMany(benchmark::State& state) {
  const std::size_t length = 64;
  util::Xoshiro256 rng(21);
  bio::SequenceBank bank(bio::SequenceKind::kProtein);
  bank.add(sim::generate_protein("pool", 2000, rng));
  const index::WindowShape shape{4, 30};
  index::WindowBatch batch(length);
  for (std::uint32_t i = 0; i < 64; ++i) {
    batch.append(bank, index::Occurrence{0, 40 + 13 * i}, shape);
  }
  index::WindowBatch one(length);
  one.append(bank, index::Occurrence{0, 500}, shape);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  std::vector<int> scores;
  const bool blocked = state.range(0) != 0;
  for (auto _ : state) {
    if (blocked) {
      align::ungapped_score_one_vs_many_blocked(one.window(0), batch, m,
                                                scores);
    } else {
      align::ungapped_score_one_vs_many(one.window(0), batch, m, scores);
    }
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64 *
                          static_cast<std::int64_t>(length));
}
BENCHMARK(BM_UngappedBlockedOneVsMany)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("blocked");

void BM_PeComputeWindow(benchmark::State& state) {
  const std::size_t length = 64;
  const auto a = random_residues(length, 3);
  const auto b = random_residues(length, 4);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  rasc::ProcessingElement pe(length, m);
  for (std::size_t i = 0; i < length; ++i) pe.load_residue(a[i], 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pe.compute_window(b.data()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(length));
}
BENCHMARK(BM_PeComputeWindow);

void BM_XdropUngapped(benchmark::State& state) {
  const auto a = random_residues(400, 5);
  auto b = a;  // homologous: extension actually runs
  util::Xoshiro256 rng(6);
  for (int k = 0; k < 80; ++k) {
    b[rng.bounded(b.size())] = static_cast<std::uint8_t>(rng.bounded(20));
  }
  const auto& m = bio::SubstitutionMatrix::blosum62();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        align::xdrop_ungapped_extend(a, b, 200, 200, 4, m, 16));
  }
}
BENCHMARK(BM_XdropUngapped);

void BM_XdropGapped(benchmark::State& state) {
  const auto a = random_residues(400, 7);
  auto b = a;
  util::Xoshiro256 rng(8);
  for (int k = 0; k < 80; ++k) {
    b[rng.bounded(b.size())] = static_cast<std::uint8_t>(rng.bounded(20));
  }
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const align::GapParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        align::xdrop_gapped_extend(a, b, 200, 200, 4, m, params));
  }
}
BENCHMARK(BM_XdropGapped);

void BM_SmithWaterman(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_residues(n, 9);
  const auto b = random_residues(n, 10);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const align::GapParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::smith_waterman(a, b, m, params));
  }
}
BENCHMARK(BM_SmithWaterman)->Arg(100)->Arg(300);

void BM_IndexBuild(benchmark::State& state) {
  sim::ProteinBankConfig config;
  config.count = static_cast<std::size_t>(state.range(0));
  config.seed = 11;
  const bio::SequenceBank bank = sim::generate_protein_bank(config);
  const index::SeedModel model = index::SeedModel::subset_w4();
  for (auto _ : state) {
    index::IndexTable table(bank, model);
    benchmark::DoNotOptimize(table.total_occurrences());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bank.total_residues()));
}
BENCHMARK(BM_IndexBuild)->Arg(50)->Arg(200);

void BM_SixFrameTranslation(benchmark::State& state) {
  sim::GenomeConfig config;
  config.length = 100'000;
  config.seed = 12;
  const bio::Sequence genome = sim::generate_genome(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bio::translate_six_frames(genome).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(genome.size()));
}
BENCHMARK(BM_SixFrameTranslation);

/// The two simulator engines on one seed key: cost of cycle exactness.
template <bool kCycleExact>
void BM_OperatorEngine(benchmark::State& state) {
  util::Xoshiro256 rng(13);
  bio::SequenceBank bank(bio::SequenceKind::kProtein);
  bank.add(sim::generate_protein("pool", 4000, rng));
  const index::WindowShape shape{4, 30};
  index::WindowBatch il0(shape.length());
  index::WindowBatch il1(shape.length());
  for (std::uint32_t i = 0; i < 32; ++i) {
    il0.append(bank, index::Occurrence{0, 40 + 17 * i}, shape);
    il1.append(bank, index::Occurrence{0, 41 + 13 * i}, shape);
  }
  rasc::PscConfig config;
  config.num_pes = 32;
  config.window_length = shape.length();
  config.threshold = 40;
  rasc::PscOperator op(config, bio::SubstitutionMatrix::blosum62());
  std::vector<rasc::ResultRecord> sink;
  for (auto _ : state) {
    sink.clear();
    if constexpr (kCycleExact) {
      op.run_key_cycle_exact(il0, il1, sink);
    } else {
      op.run_key(il0, il1, sink);
    }
    benchmark::DoNotOptimize(sink.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32 *
                          32 * static_cast<std::int64_t>(shape.length()));
}
BENCHMARK(BM_OperatorEngine<false>)->Name("BM_OperatorBatch");
BENCHMARK(BM_OperatorEngine<true>)->Name("BM_OperatorCycleExact");

}  // namespace

BENCHMARK_MAIN();
