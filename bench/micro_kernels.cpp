// Google-benchmark microkernels for the library's hot paths: the
// ungapped window kernel (the PE datapath), index construction, the
// X-drop extensions, six-frame translation and the two simulator engines.
//
// The custom main() additionally runs a calibrated scalar/blocked/SIMD
// step-2 kernel shoot-out and writes BENCH_step2_kernels.json
// (cells/sec and speedup vs scalar) for machine consumption.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>

#include "align/gapped.hpp"
#include "align/ungapped.hpp"
#include "align/ungapped_simd.hpp"
#include "align/xdrop.hpp"
#include "bio/translate.hpp"
#include "index/index_table.hpp"
#include "index/neighborhood.hpp"
#include "rasc/psc_operator.hpp"
#include "sim/genome_generator.hpp"
#include "sim/protein_generator.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace psc;

std::vector<std::uint8_t> random_residues(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& r : out) r = static_cast<std::uint8_t>(rng.bounded(20));
  return out;
}

void BM_UngappedWindowScore(benchmark::State& state) {
  const auto length = static_cast<std::size_t>(state.range(0));
  const auto a = random_residues(length, 1);
  const auto b = random_residues(length, 2);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::ungapped_window_score(a, b, m));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(length));
}
BENCHMARK(BM_UngappedWindowScore)->Arg(16)->Arg(64)->Arg(128);

void BM_UngappedBlockedOneVsMany(benchmark::State& state) {
  const std::size_t length = 64;
  util::Xoshiro256 rng(21);
  bio::SequenceBank bank(bio::SequenceKind::kProtein);
  bank.add(sim::generate_protein("pool", 2000, rng));
  const index::WindowShape shape{4, 30};
  index::WindowBatch batch(length);
  for (std::uint32_t i = 0; i < 64; ++i) {
    batch.append(bank, index::Occurrence{0, 40 + 13 * i}, shape);
  }
  index::WindowBatch one(length);
  one.append(bank, index::Occurrence{0, 500}, shape);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  std::vector<int> scores;
  const bool blocked = state.range(0) != 0;
  for (auto _ : state) {
    if (blocked) {
      align::ungapped_score_one_vs_many_blocked(one.window(0), batch, m,
                                                scores);
    } else {
      align::ungapped_score_one_vs_many(one.window(0), batch, m, scores);
    }
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64 *
                          static_cast<std::int64_t>(length));
}
BENCHMARK(BM_UngappedBlockedOneVsMany)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("blocked");

void BM_PeComputeWindow(benchmark::State& state) {
  const std::size_t length = 64;
  const auto a = random_residues(length, 3);
  const auto b = random_residues(length, 4);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  rasc::ProcessingElement pe(length, m);
  for (std::size_t i = 0; i < length; ++i) pe.load_residue(a[i], 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pe.compute_window(b.data()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(length));
}
BENCHMARK(BM_PeComputeWindow);

void BM_XdropUngapped(benchmark::State& state) {
  const auto a = random_residues(400, 5);
  auto b = a;  // homologous: extension actually runs
  util::Xoshiro256 rng(6);
  for (int k = 0; k < 80; ++k) {
    b[rng.bounded(b.size())] = static_cast<std::uint8_t>(rng.bounded(20));
  }
  const auto& m = bio::SubstitutionMatrix::blosum62();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        align::xdrop_ungapped_extend(a, b, 200, 200, 4, m, 16));
  }
}
BENCHMARK(BM_XdropUngapped);

void BM_XdropGapped(benchmark::State& state) {
  const auto a = random_residues(400, 7);
  auto b = a;
  util::Xoshiro256 rng(8);
  for (int k = 0; k < 80; ++k) {
    b[rng.bounded(b.size())] = static_cast<std::uint8_t>(rng.bounded(20));
  }
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const align::GapParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        align::xdrop_gapped_extend(a, b, 200, 200, 4, m, params));
  }
}
BENCHMARK(BM_XdropGapped);

void BM_SmithWaterman(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_residues(n, 9);
  const auto b = random_residues(n, 10);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const align::GapParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::smith_waterman(a, b, m, params));
  }
}
BENCHMARK(BM_SmithWaterman)->Arg(100)->Arg(300);

void BM_IndexBuild(benchmark::State& state) {
  sim::ProteinBankConfig config;
  config.count = static_cast<std::size_t>(state.range(0));
  config.seed = 11;
  const bio::SequenceBank bank = sim::generate_protein_bank(config);
  const index::SeedModel model = index::SeedModel::subset_w4();
  for (auto _ : state) {
    index::IndexTable table(bank, model);
    benchmark::DoNotOptimize(table.total_occurrences());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bank.total_residues()));
}
BENCHMARK(BM_IndexBuild)->Arg(50)->Arg(200);

void BM_SixFrameTranslation(benchmark::State& state) {
  sim::GenomeConfig config;
  config.length = 100'000;
  config.seed = 12;
  const bio::Sequence genome = sim::generate_genome(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bio::translate_six_frames(genome).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(genome.size()));
}
BENCHMARK(BM_SixFrameTranslation);

/// The two simulator engines on one seed key: cost of cycle exactness.
template <bool kCycleExact>
void BM_OperatorEngine(benchmark::State& state) {
  util::Xoshiro256 rng(13);
  bio::SequenceBank bank(bio::SequenceKind::kProtein);
  bank.add(sim::generate_protein("pool", 4000, rng));
  const index::WindowShape shape{4, 30};
  index::WindowBatch il0(shape.length());
  index::WindowBatch il1(shape.length());
  for (std::uint32_t i = 0; i < 32; ++i) {
    il0.append(bank, index::Occurrence{0, 40 + 17 * i}, shape);
    il1.append(bank, index::Occurrence{0, 41 + 13 * i}, shape);
  }
  rasc::PscConfig config;
  config.num_pes = 32;
  config.window_length = shape.length();
  config.threshold = 40;
  rasc::PscOperator op(config, bio::SubstitutionMatrix::blosum62());
  std::vector<rasc::ResultRecord> sink;
  for (auto _ : state) {
    sink.clear();
    if constexpr (kCycleExact) {
      op.run_key_cycle_exact(il0, il1, sink);
    } else {
      op.run_key(il0, il1, sink);
    }
    benchmark::DoNotOptimize(sink.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32 *
                          32 * static_cast<std::int64_t>(shape.length()));
}
BENCHMARK(BM_OperatorEngine<false>)->Name("BM_OperatorBatch");
BENCHMARK(BM_OperatorEngine<true>)->Name("BM_OperatorCycleExact");

// ---- step-2 kernel shoot-out --------------------------------------------
// Direct calibrated timing of the three host kernels on the same
// many-vs-one workload the step-2 engines run per seed key: one IL0
// window scored against a batch of IL1 windows. The SIMD rows include
// the per-IL0 score-profile build, matching the integrated cost; the
// striped transpose is per-key and amortized, so it stays outside.

struct KernelTiming {
  const char* name;
  double cells_per_sec = 0.0;
};

template <typename Fn>
double calibrated_cells_per_sec(std::size_t cells_per_call, Fn&& call) {
  // Warm up, then grow the repetition count until the run is long enough
  // for the steady-state rate to dominate timer overhead.
  call();
  std::size_t reps = 16;
  for (;;) {
    util::Timer timer;
    for (std::size_t r = 0; r < reps; ++r) call();
    const double seconds = timer.seconds();
    if (seconds >= 0.2) {
      return static_cast<double>(reps * cells_per_call) / seconds;
    }
    reps *= 4;
  }
}

void run_step2_kernel_shootout() {
  const index::WindowShape shape{4, 30};
  const std::size_t length = shape.length();
  const std::size_t count = 512;
  util::Xoshiro256 rng(31);
  bio::SequenceBank bank(bio::SequenceKind::kProtein);
  bank.add(sim::generate_protein("pool", 8000, rng));
  index::WindowBatch batch(length);
  for (std::uint32_t i = 0; i < count; ++i) {
    batch.append(bank, index::Occurrence{0, 40 + 13 * i}, shape);
  }
  index::WindowBatch one(length);
  one.append(bank, index::Occurrence{0, 500}, shape);
  const auto& m = bio::SubstitutionMatrix::blosum62();
  const std::size_t cells = count * length;

  index::StripedWindows striped;
  striped.assign(batch);
  std::vector<int> scores;
  align::ScoreProfile profile;

  KernelTiming timings[] = {
      {"scalar"}, {"blocked"}, {"simd-portable"}, {"simd"}};
  timings[0].cells_per_sec = calibrated_cells_per_sec(cells, [&] {
    align::ungapped_score_one_vs_many(one.window(0), batch, m, scores);
    benchmark::DoNotOptimize(scores.data());
  });
  timings[1].cells_per_sec = calibrated_cells_per_sec(cells, [&] {
    align::ungapped_score_one_vs_many_blocked(one.window(0), batch, m, scores);
    benchmark::DoNotOptimize(scores.data());
  });
  timings[2].cells_per_sec = calibrated_cells_per_sec(cells, [&] {
    profile.build(one.window(0), m);
    align::ungapped_score_profile_vs_striped_portable(profile, striped,
                                                      scores);
    benchmark::DoNotOptimize(scores.data());
  });
  timings[3].cells_per_sec = calibrated_cells_per_sec(cells, [&] {
    profile.build(one.window(0), m);
    align::ungapped_score_profile_vs_striped(profile, striped, scores);
    benchmark::DoNotOptimize(scores.data());
  });

  const double scalar_rate = timings[0].cells_per_sec;
  const char* tier = align::simd_tier_name(align::best_simd_tier());
  std::fprintf(stderr, "\n=== step-2 kernel shoot-out (tier %s) ===\n", tier);
  std::ofstream json("BENCH_step2_kernels.json");
  json << "{\n  \"window_length\": " << length
       << ",\n  \"windows\": " << count << ",\n  \"simd_tier\": \"" << tier
       << "\",\n  \"kernels\": [\n";
  for (std::size_t i = 0; i < 4; ++i) {
    const double speedup = timings[i].cells_per_sec / scalar_rate;
    std::fprintf(stderr, "  %-14s %8.1f Mcells/s  %5.2fx vs scalar\n",
                 timings[i].name, timings[i].cells_per_sec / 1e6, speedup);
    json << "    {\"kernel\": \"" << timings[i].name
         << "\", \"cells_per_sec\": " << timings[i].cells_per_sec
         << ", \"speedup_vs_scalar\": " << speedup << "}"
         << (i + 1 < 4 ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::fprintf(stderr, "wrote BENCH_step2_kernels.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_step2_kernel_shootout();
  return 0;
}
