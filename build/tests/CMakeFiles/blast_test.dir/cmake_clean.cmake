file(REMOVE_RECURSE
  "CMakeFiles/blast_test.dir/blast/neighborhood_words_test.cpp.o"
  "CMakeFiles/blast_test.dir/blast/neighborhood_words_test.cpp.o.d"
  "CMakeFiles/blast_test.dir/blast/tblastn_test.cpp.o"
  "CMakeFiles/blast_test.dir/blast/tblastn_test.cpp.o.d"
  "CMakeFiles/blast_test.dir/blast/two_hit_test.cpp.o"
  "CMakeFiles/blast_test.dir/blast/two_hit_test.cpp.o.d"
  "blast_test"
  "blast_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
