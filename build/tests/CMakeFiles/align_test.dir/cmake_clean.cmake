file(REMOVE_RECURSE
  "CMakeFiles/align_test.dir/align/banded_test.cpp.o"
  "CMakeFiles/align_test.dir/align/banded_test.cpp.o.d"
  "CMakeFiles/align_test.dir/align/gapped_test.cpp.o"
  "CMakeFiles/align_test.dir/align/gapped_test.cpp.o.d"
  "CMakeFiles/align_test.dir/align/karlin_test.cpp.o"
  "CMakeFiles/align_test.dir/align/karlin_test.cpp.o.d"
  "CMakeFiles/align_test.dir/align/ungapped_test.cpp.o"
  "CMakeFiles/align_test.dir/align/ungapped_test.cpp.o.d"
  "CMakeFiles/align_test.dir/align/xdrop_test.cpp.o"
  "CMakeFiles/align_test.dir/align/xdrop_test.cpp.o.d"
  "align_test"
  "align_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/align_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
