
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rasc/controllers_test.cpp" "tests/CMakeFiles/rasc_test.dir/rasc/controllers_test.cpp.o" "gcc" "tests/CMakeFiles/rasc_test.dir/rasc/controllers_test.cpp.o.d"
  "/root/repo/tests/rasc/fifo_test.cpp" "tests/CMakeFiles/rasc_test.dir/rasc/fifo_test.cpp.o" "gcc" "tests/CMakeFiles/rasc_test.dir/rasc/fifo_test.cpp.o.d"
  "/root/repo/tests/rasc/gap_operator_test.cpp" "tests/CMakeFiles/rasc_test.dir/rasc/gap_operator_test.cpp.o" "gcc" "tests/CMakeFiles/rasc_test.dir/rasc/gap_operator_test.cpp.o.d"
  "/root/repo/tests/rasc/pe_slot_test.cpp" "tests/CMakeFiles/rasc_test.dir/rasc/pe_slot_test.cpp.o" "gcc" "tests/CMakeFiles/rasc_test.dir/rasc/pe_slot_test.cpp.o.d"
  "/root/repo/tests/rasc/platform_model_test.cpp" "tests/CMakeFiles/rasc_test.dir/rasc/platform_model_test.cpp.o" "gcc" "tests/CMakeFiles/rasc_test.dir/rasc/platform_model_test.cpp.o.d"
  "/root/repo/tests/rasc/processing_element_test.cpp" "tests/CMakeFiles/rasc_test.dir/rasc/processing_element_test.cpp.o" "gcc" "tests/CMakeFiles/rasc_test.dir/rasc/processing_element_test.cpp.o.d"
  "/root/repo/tests/rasc/psc_operator_test.cpp" "tests/CMakeFiles/rasc_test.dir/rasc/psc_operator_test.cpp.o" "gcc" "tests/CMakeFiles/rasc_test.dir/rasc/psc_operator_test.cpp.o.d"
  "/root/repo/tests/rasc/rasc_backend_test.cpp" "tests/CMakeFiles/rasc_test.dir/rasc/rasc_backend_test.cpp.o" "gcc" "tests/CMakeFiles/rasc_test.dir/rasc/rasc_backend_test.cpp.o.d"
  "/root/repo/tests/rasc/sgi_core_test.cpp" "tests/CMakeFiles/rasc_test.dir/rasc/sgi_core_test.cpp.o" "gcc" "tests/CMakeFiles/rasc_test.dir/rasc/sgi_core_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/psc_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_blast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_rasc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_align.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
