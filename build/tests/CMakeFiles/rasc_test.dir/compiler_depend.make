# Empty compiler generated dependencies file for rasc_test.
# This may be replaced when dependencies are built.
