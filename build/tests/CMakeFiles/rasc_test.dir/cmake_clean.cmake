file(REMOVE_RECURSE
  "CMakeFiles/rasc_test.dir/rasc/controllers_test.cpp.o"
  "CMakeFiles/rasc_test.dir/rasc/controllers_test.cpp.o.d"
  "CMakeFiles/rasc_test.dir/rasc/fifo_test.cpp.o"
  "CMakeFiles/rasc_test.dir/rasc/fifo_test.cpp.o.d"
  "CMakeFiles/rasc_test.dir/rasc/gap_operator_test.cpp.o"
  "CMakeFiles/rasc_test.dir/rasc/gap_operator_test.cpp.o.d"
  "CMakeFiles/rasc_test.dir/rasc/pe_slot_test.cpp.o"
  "CMakeFiles/rasc_test.dir/rasc/pe_slot_test.cpp.o.d"
  "CMakeFiles/rasc_test.dir/rasc/platform_model_test.cpp.o"
  "CMakeFiles/rasc_test.dir/rasc/platform_model_test.cpp.o.d"
  "CMakeFiles/rasc_test.dir/rasc/processing_element_test.cpp.o"
  "CMakeFiles/rasc_test.dir/rasc/processing_element_test.cpp.o.d"
  "CMakeFiles/rasc_test.dir/rasc/psc_operator_test.cpp.o"
  "CMakeFiles/rasc_test.dir/rasc/psc_operator_test.cpp.o.d"
  "CMakeFiles/rasc_test.dir/rasc/rasc_backend_test.cpp.o"
  "CMakeFiles/rasc_test.dir/rasc/rasc_backend_test.cpp.o.d"
  "CMakeFiles/rasc_test.dir/rasc/sgi_core_test.cpp.o"
  "CMakeFiles/rasc_test.dir/rasc/sgi_core_test.cpp.o.d"
  "rasc_test"
  "rasc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
