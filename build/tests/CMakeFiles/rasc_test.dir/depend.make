# Empty dependencies file for rasc_test.
# This may be replaced when dependencies are built.
