file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/dispatch_test.cpp.o"
  "CMakeFiles/core_test.dir/core/dispatch_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/hybrid_test.cpp.o"
  "CMakeFiles/core_test.dir/core/hybrid_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/modes_test.cpp.o"
  "CMakeFiles/core_test.dir/core/modes_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/options_test.cpp.o"
  "CMakeFiles/core_test.dir/core/options_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/pipeline_test.cpp.o"
  "CMakeFiles/core_test.dir/core/pipeline_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/report_test.cpp.o"
  "CMakeFiles/core_test.dir/core/report_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/step2_host_test.cpp.o"
  "CMakeFiles/core_test.dir/core/step2_host_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/step3_test.cpp.o"
  "CMakeFiles/core_test.dir/core/step3_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
