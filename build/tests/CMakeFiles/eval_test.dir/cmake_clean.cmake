file(REMOVE_RECURSE
  "CMakeFiles/eval_test.dir/eval/average_precision_test.cpp.o"
  "CMakeFiles/eval_test.dir/eval/average_precision_test.cpp.o.d"
  "CMakeFiles/eval_test.dir/eval/benchmark_set_test.cpp.o"
  "CMakeFiles/eval_test.dir/eval/benchmark_set_test.cpp.o.d"
  "CMakeFiles/eval_test.dir/eval/compare_hits_test.cpp.o"
  "CMakeFiles/eval_test.dir/eval/compare_hits_test.cpp.o.d"
  "CMakeFiles/eval_test.dir/eval/roc_test.cpp.o"
  "CMakeFiles/eval_test.dir/eval/roc_test.cpp.o.d"
  "eval_test"
  "eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
