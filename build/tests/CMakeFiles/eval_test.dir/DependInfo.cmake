
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/eval/average_precision_test.cpp" "tests/CMakeFiles/eval_test.dir/eval/average_precision_test.cpp.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/average_precision_test.cpp.o.d"
  "/root/repo/tests/eval/benchmark_set_test.cpp" "tests/CMakeFiles/eval_test.dir/eval/benchmark_set_test.cpp.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/benchmark_set_test.cpp.o.d"
  "/root/repo/tests/eval/compare_hits_test.cpp" "tests/CMakeFiles/eval_test.dir/eval/compare_hits_test.cpp.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/compare_hits_test.cpp.o.d"
  "/root/repo/tests/eval/roc_test.cpp" "tests/CMakeFiles/eval_test.dir/eval/roc_test.cpp.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval/roc_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/psc_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_blast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_rasc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_align.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
