file(REMOVE_RECURSE
  "CMakeFiles/bio_test.dir/bio/alphabet_test.cpp.o"
  "CMakeFiles/bio_test.dir/bio/alphabet_test.cpp.o.d"
  "CMakeFiles/bio_test.dir/bio/complexity_test.cpp.o"
  "CMakeFiles/bio_test.dir/bio/complexity_test.cpp.o.d"
  "CMakeFiles/bio_test.dir/bio/fasta_test.cpp.o"
  "CMakeFiles/bio_test.dir/bio/fasta_test.cpp.o.d"
  "CMakeFiles/bio_test.dir/bio/genetic_code_test.cpp.o"
  "CMakeFiles/bio_test.dir/bio/genetic_code_test.cpp.o.d"
  "CMakeFiles/bio_test.dir/bio/sequence_test.cpp.o"
  "CMakeFiles/bio_test.dir/bio/sequence_test.cpp.o.d"
  "CMakeFiles/bio_test.dir/bio/substitution_matrix_test.cpp.o"
  "CMakeFiles/bio_test.dir/bio/substitution_matrix_test.cpp.o.d"
  "CMakeFiles/bio_test.dir/bio/translate_test.cpp.o"
  "CMakeFiles/bio_test.dir/bio/translate_test.cpp.o.d"
  "bio_test"
  "bio_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
