
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bio/alphabet_test.cpp" "tests/CMakeFiles/bio_test.dir/bio/alphabet_test.cpp.o" "gcc" "tests/CMakeFiles/bio_test.dir/bio/alphabet_test.cpp.o.d"
  "/root/repo/tests/bio/complexity_test.cpp" "tests/CMakeFiles/bio_test.dir/bio/complexity_test.cpp.o" "gcc" "tests/CMakeFiles/bio_test.dir/bio/complexity_test.cpp.o.d"
  "/root/repo/tests/bio/fasta_test.cpp" "tests/CMakeFiles/bio_test.dir/bio/fasta_test.cpp.o" "gcc" "tests/CMakeFiles/bio_test.dir/bio/fasta_test.cpp.o.d"
  "/root/repo/tests/bio/genetic_code_test.cpp" "tests/CMakeFiles/bio_test.dir/bio/genetic_code_test.cpp.o" "gcc" "tests/CMakeFiles/bio_test.dir/bio/genetic_code_test.cpp.o.d"
  "/root/repo/tests/bio/sequence_test.cpp" "tests/CMakeFiles/bio_test.dir/bio/sequence_test.cpp.o" "gcc" "tests/CMakeFiles/bio_test.dir/bio/sequence_test.cpp.o.d"
  "/root/repo/tests/bio/substitution_matrix_test.cpp" "tests/CMakeFiles/bio_test.dir/bio/substitution_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/bio_test.dir/bio/substitution_matrix_test.cpp.o.d"
  "/root/repo/tests/bio/translate_test.cpp" "tests/CMakeFiles/bio_test.dir/bio/translate_test.cpp.o" "gcc" "tests/CMakeFiles/bio_test.dir/bio/translate_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/psc_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_blast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_rasc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_align.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
