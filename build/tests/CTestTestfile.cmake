# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;psc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bio_test "/root/repo/build/tests/bio_test")
set_tests_properties(bio_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;19;psc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(index_test "/root/repo/build/tests/index_test")
set_tests_properties(index_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;28;psc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(align_test "/root/repo/build/tests/align_test")
set_tests_properties(align_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;33;psc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;40;psc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(blast_test "/root/repo/build/tests/blast_test")
set_tests_properties(blast_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;47;psc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(rasc_test "/root/repo/build/tests/rasc_test")
set_tests_properties(rasc_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;52;psc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;63;psc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(eval_test "/root/repo/build/tests/eval_test")
set_tests_properties(eval_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;73;psc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;79;psc_add_test;/root/repo/tests/CMakeLists.txt;0;")
