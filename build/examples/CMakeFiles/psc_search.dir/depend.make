# Empty dependencies file for psc_search.
# This may be replaced when dependencies are built.
