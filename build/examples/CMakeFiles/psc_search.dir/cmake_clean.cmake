file(REMOVE_RECURSE
  "CMakeFiles/psc_search.dir/psc_search.cpp.o"
  "CMakeFiles/psc_search.dir/psc_search.cpp.o.d"
  "psc_search"
  "psc_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
