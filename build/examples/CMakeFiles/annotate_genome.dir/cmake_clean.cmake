file(REMOVE_RECURSE
  "CMakeFiles/annotate_genome.dir/annotate_genome.cpp.o"
  "CMakeFiles/annotate_genome.dir/annotate_genome.cpp.o.d"
  "annotate_genome"
  "annotate_genome.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotate_genome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
