# Empty compiler generated dependencies file for annotate_genome.
# This may be replaced when dependencies are built.
