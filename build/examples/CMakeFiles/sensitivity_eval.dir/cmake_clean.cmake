file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_eval.dir/sensitivity_eval.cpp.o"
  "CMakeFiles/sensitivity_eval.dir/sensitivity_eval.cpp.o.d"
  "sensitivity_eval"
  "sensitivity_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
