# Empty dependencies file for sensitivity_eval.
# This may be replaced when dependencies are built.
