file(REMOVE_RECURSE
  "CMakeFiles/psc_trace.dir/psc_trace.cpp.o"
  "CMakeFiles/psc_trace.dir/psc_trace.cpp.o.d"
  "psc_trace"
  "psc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
