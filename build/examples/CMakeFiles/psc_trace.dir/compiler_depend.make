# Empty compiler generated dependencies file for psc_trace.
# This may be replaced when dependencies are built.
