file(REMOVE_RECURSE
  "../bench/ablation_slot_geometry"
  "../bench/ablation_slot_geometry.pdb"
  "CMakeFiles/ablation_slot_geometry.dir/ablation_slot_geometry.cpp.o"
  "CMakeFiles/ablation_slot_geometry.dir/ablation_slot_geometry.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_slot_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
