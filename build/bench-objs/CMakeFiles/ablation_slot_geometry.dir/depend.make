# Empty dependencies file for ablation_slot_geometry.
# This may be replaced when dependencies are built.
