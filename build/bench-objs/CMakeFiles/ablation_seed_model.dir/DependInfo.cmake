
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_seed_model.cpp" "bench-objs/CMakeFiles/ablation_seed_model.dir/ablation_seed_model.cpp.o" "gcc" "bench-objs/CMakeFiles/ablation_seed_model.dir/ablation_seed_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/psc_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_blast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_rasc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_align.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
