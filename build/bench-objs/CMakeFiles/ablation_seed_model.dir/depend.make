# Empty dependencies file for ablation_seed_model.
# This may be replaced when dependencies are built.
