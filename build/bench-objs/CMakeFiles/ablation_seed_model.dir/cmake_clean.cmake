file(REMOVE_RECURSE
  "../bench/ablation_seed_model"
  "../bench/ablation_seed_model.pdb"
  "CMakeFiles/ablation_seed_model.dir/ablation_seed_model.cpp.o"
  "CMakeFiles/ablation_seed_model.dir/ablation_seed_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_seed_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
