# Empty compiler generated dependencies file for extension_dispatch.
# This may be replaced when dependencies are built.
