file(REMOVE_RECURSE
  "../bench/extension_dispatch"
  "../bench/extension_dispatch.pdb"
  "CMakeFiles/extension_dispatch.dir/extension_dispatch.cpp.o"
  "CMakeFiles/extension_dispatch.dir/extension_dispatch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
