file(REMOVE_RECURSE
  "../bench/table7_rasc_profile"
  "../bench/table7_rasc_profile.pdb"
  "CMakeFiles/table7_rasc_profile.dir/table7_rasc_profile.cpp.o"
  "CMakeFiles/table7_rasc_profile.dir/table7_rasc_profile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_rasc_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
