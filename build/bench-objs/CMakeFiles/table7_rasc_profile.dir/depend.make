# Empty dependencies file for table7_rasc_profile.
# This may be replaced when dependencies are built.
