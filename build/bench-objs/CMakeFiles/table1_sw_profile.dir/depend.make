# Empty dependencies file for table1_sw_profile.
# This may be replaced when dependencies are built.
