file(REMOVE_RECURSE
  "../bench/table1_sw_profile"
  "../bench/table1_sw_profile.pdb"
  "CMakeFiles/table1_sw_profile.dir/table1_sw_profile.cpp.o"
  "CMakeFiles/table1_sw_profile.dir/table1_sw_profile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sw_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
