file(REMOVE_RECURSE
  "../bench/table6_quality"
  "../bench/table6_quality.pdb"
  "CMakeFiles/table6_quality.dir/table6_quality.cpp.o"
  "CMakeFiles/table6_quality.dir/table6_quality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
