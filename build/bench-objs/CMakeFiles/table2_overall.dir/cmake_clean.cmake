file(REMOVE_RECURSE
  "../bench/table2_overall"
  "../bench/table2_overall.pdb"
  "CMakeFiles/table2_overall.dir/table2_overall.cpp.o"
  "CMakeFiles/table2_overall.dir/table2_overall.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
