file(REMOVE_RECURSE
  "../bench/table5_throughput"
  "../bench/table5_throughput.pdb"
  "CMakeFiles/table5_throughput.dir/table5_throughput.cpp.o"
  "CMakeFiles/table5_throughput.dir/table5_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
