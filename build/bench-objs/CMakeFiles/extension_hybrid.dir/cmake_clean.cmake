file(REMOVE_RECURSE
  "../bench/extension_hybrid"
  "../bench/extension_hybrid.pdb"
  "CMakeFiles/extension_hybrid.dir/extension_hybrid.cpp.o"
  "CMakeFiles/extension_hybrid.dir/extension_hybrid.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
