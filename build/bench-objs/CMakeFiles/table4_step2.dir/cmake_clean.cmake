file(REMOVE_RECURSE
  "../bench/table4_step2"
  "../bench/table4_step2.pdb"
  "CMakeFiles/table4_step2.dir/table4_step2.cpp.o"
  "CMakeFiles/table4_step2.dir/table4_step2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_step2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
