file(REMOVE_RECURSE
  "../bench/table3_dual_fpga"
  "../bench/table3_dual_fpga.pdb"
  "CMakeFiles/table3_dual_fpga.dir/table3_dual_fpga.cpp.o"
  "CMakeFiles/table3_dual_fpga.dir/table3_dual_fpga.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_dual_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
