
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bio/alphabet.cpp" "src/CMakeFiles/psc_bio.dir/bio/alphabet.cpp.o" "gcc" "src/CMakeFiles/psc_bio.dir/bio/alphabet.cpp.o.d"
  "/root/repo/src/bio/complexity.cpp" "src/CMakeFiles/psc_bio.dir/bio/complexity.cpp.o" "gcc" "src/CMakeFiles/psc_bio.dir/bio/complexity.cpp.o.d"
  "/root/repo/src/bio/fasta.cpp" "src/CMakeFiles/psc_bio.dir/bio/fasta.cpp.o" "gcc" "src/CMakeFiles/psc_bio.dir/bio/fasta.cpp.o.d"
  "/root/repo/src/bio/genetic_code.cpp" "src/CMakeFiles/psc_bio.dir/bio/genetic_code.cpp.o" "gcc" "src/CMakeFiles/psc_bio.dir/bio/genetic_code.cpp.o.d"
  "/root/repo/src/bio/sequence.cpp" "src/CMakeFiles/psc_bio.dir/bio/sequence.cpp.o" "gcc" "src/CMakeFiles/psc_bio.dir/bio/sequence.cpp.o.d"
  "/root/repo/src/bio/substitution_matrix.cpp" "src/CMakeFiles/psc_bio.dir/bio/substitution_matrix.cpp.o" "gcc" "src/CMakeFiles/psc_bio.dir/bio/substitution_matrix.cpp.o.d"
  "/root/repo/src/bio/translate.cpp" "src/CMakeFiles/psc_bio.dir/bio/translate.cpp.o" "gcc" "src/CMakeFiles/psc_bio.dir/bio/translate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/psc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
