file(REMOVE_RECURSE
  "libpsc_bio.a"
)
