file(REMOVE_RECURSE
  "CMakeFiles/psc_bio.dir/bio/alphabet.cpp.o"
  "CMakeFiles/psc_bio.dir/bio/alphabet.cpp.o.d"
  "CMakeFiles/psc_bio.dir/bio/complexity.cpp.o"
  "CMakeFiles/psc_bio.dir/bio/complexity.cpp.o.d"
  "CMakeFiles/psc_bio.dir/bio/fasta.cpp.o"
  "CMakeFiles/psc_bio.dir/bio/fasta.cpp.o.d"
  "CMakeFiles/psc_bio.dir/bio/genetic_code.cpp.o"
  "CMakeFiles/psc_bio.dir/bio/genetic_code.cpp.o.d"
  "CMakeFiles/psc_bio.dir/bio/sequence.cpp.o"
  "CMakeFiles/psc_bio.dir/bio/sequence.cpp.o.d"
  "CMakeFiles/psc_bio.dir/bio/substitution_matrix.cpp.o"
  "CMakeFiles/psc_bio.dir/bio/substitution_matrix.cpp.o.d"
  "CMakeFiles/psc_bio.dir/bio/translate.cpp.o"
  "CMakeFiles/psc_bio.dir/bio/translate.cpp.o.d"
  "libpsc_bio.a"
  "libpsc_bio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_bio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
