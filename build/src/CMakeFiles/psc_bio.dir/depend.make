# Empty dependencies file for psc_bio.
# This may be replaced when dependencies are built.
