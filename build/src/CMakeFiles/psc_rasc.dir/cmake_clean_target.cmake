file(REMOVE_RECURSE
  "libpsc_rasc.a"
)
