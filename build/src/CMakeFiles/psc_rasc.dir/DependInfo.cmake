
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rasc/controllers.cpp" "src/CMakeFiles/psc_rasc.dir/rasc/controllers.cpp.o" "gcc" "src/CMakeFiles/psc_rasc.dir/rasc/controllers.cpp.o.d"
  "/root/repo/src/rasc/fifo.cpp" "src/CMakeFiles/psc_rasc.dir/rasc/fifo.cpp.o" "gcc" "src/CMakeFiles/psc_rasc.dir/rasc/fifo.cpp.o.d"
  "/root/repo/src/rasc/gap_operator.cpp" "src/CMakeFiles/psc_rasc.dir/rasc/gap_operator.cpp.o" "gcc" "src/CMakeFiles/psc_rasc.dir/rasc/gap_operator.cpp.o.d"
  "/root/repo/src/rasc/pe_slot.cpp" "src/CMakeFiles/psc_rasc.dir/rasc/pe_slot.cpp.o" "gcc" "src/CMakeFiles/psc_rasc.dir/rasc/pe_slot.cpp.o.d"
  "/root/repo/src/rasc/platform_model.cpp" "src/CMakeFiles/psc_rasc.dir/rasc/platform_model.cpp.o" "gcc" "src/CMakeFiles/psc_rasc.dir/rasc/platform_model.cpp.o.d"
  "/root/repo/src/rasc/processing_element.cpp" "src/CMakeFiles/psc_rasc.dir/rasc/processing_element.cpp.o" "gcc" "src/CMakeFiles/psc_rasc.dir/rasc/processing_element.cpp.o.d"
  "/root/repo/src/rasc/psc_operator.cpp" "src/CMakeFiles/psc_rasc.dir/rasc/psc_operator.cpp.o" "gcc" "src/CMakeFiles/psc_rasc.dir/rasc/psc_operator.cpp.o.d"
  "/root/repo/src/rasc/rasc_backend.cpp" "src/CMakeFiles/psc_rasc.dir/rasc/rasc_backend.cpp.o" "gcc" "src/CMakeFiles/psc_rasc.dir/rasc/rasc_backend.cpp.o.d"
  "/root/repo/src/rasc/sgi_core.cpp" "src/CMakeFiles/psc_rasc.dir/rasc/sgi_core.cpp.o" "gcc" "src/CMakeFiles/psc_rasc.dir/rasc/sgi_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/psc_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_align.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
