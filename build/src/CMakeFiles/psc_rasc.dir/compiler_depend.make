# Empty compiler generated dependencies file for psc_rasc.
# This may be replaced when dependencies are built.
