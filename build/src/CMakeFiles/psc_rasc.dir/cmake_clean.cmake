file(REMOVE_RECURSE
  "CMakeFiles/psc_rasc.dir/rasc/controllers.cpp.o"
  "CMakeFiles/psc_rasc.dir/rasc/controllers.cpp.o.d"
  "CMakeFiles/psc_rasc.dir/rasc/fifo.cpp.o"
  "CMakeFiles/psc_rasc.dir/rasc/fifo.cpp.o.d"
  "CMakeFiles/psc_rasc.dir/rasc/gap_operator.cpp.o"
  "CMakeFiles/psc_rasc.dir/rasc/gap_operator.cpp.o.d"
  "CMakeFiles/psc_rasc.dir/rasc/pe_slot.cpp.o"
  "CMakeFiles/psc_rasc.dir/rasc/pe_slot.cpp.o.d"
  "CMakeFiles/psc_rasc.dir/rasc/platform_model.cpp.o"
  "CMakeFiles/psc_rasc.dir/rasc/platform_model.cpp.o.d"
  "CMakeFiles/psc_rasc.dir/rasc/processing_element.cpp.o"
  "CMakeFiles/psc_rasc.dir/rasc/processing_element.cpp.o.d"
  "CMakeFiles/psc_rasc.dir/rasc/psc_operator.cpp.o"
  "CMakeFiles/psc_rasc.dir/rasc/psc_operator.cpp.o.d"
  "CMakeFiles/psc_rasc.dir/rasc/rasc_backend.cpp.o"
  "CMakeFiles/psc_rasc.dir/rasc/rasc_backend.cpp.o.d"
  "CMakeFiles/psc_rasc.dir/rasc/sgi_core.cpp.o"
  "CMakeFiles/psc_rasc.dir/rasc/sgi_core.cpp.o.d"
  "libpsc_rasc.a"
  "libpsc_rasc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_rasc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
