file(REMOVE_RECURSE
  "CMakeFiles/psc_align.dir/align/banded.cpp.o"
  "CMakeFiles/psc_align.dir/align/banded.cpp.o.d"
  "CMakeFiles/psc_align.dir/align/gapped.cpp.o"
  "CMakeFiles/psc_align.dir/align/gapped.cpp.o.d"
  "CMakeFiles/psc_align.dir/align/karlin.cpp.o"
  "CMakeFiles/psc_align.dir/align/karlin.cpp.o.d"
  "CMakeFiles/psc_align.dir/align/ungapped.cpp.o"
  "CMakeFiles/psc_align.dir/align/ungapped.cpp.o.d"
  "CMakeFiles/psc_align.dir/align/xdrop.cpp.o"
  "CMakeFiles/psc_align.dir/align/xdrop.cpp.o.d"
  "libpsc_align.a"
  "libpsc_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
