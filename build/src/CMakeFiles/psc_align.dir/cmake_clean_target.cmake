file(REMOVE_RECURSE
  "libpsc_align.a"
)
