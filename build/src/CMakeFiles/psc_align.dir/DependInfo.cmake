
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/align/banded.cpp" "src/CMakeFiles/psc_align.dir/align/banded.cpp.o" "gcc" "src/CMakeFiles/psc_align.dir/align/banded.cpp.o.d"
  "/root/repo/src/align/gapped.cpp" "src/CMakeFiles/psc_align.dir/align/gapped.cpp.o" "gcc" "src/CMakeFiles/psc_align.dir/align/gapped.cpp.o.d"
  "/root/repo/src/align/karlin.cpp" "src/CMakeFiles/psc_align.dir/align/karlin.cpp.o" "gcc" "src/CMakeFiles/psc_align.dir/align/karlin.cpp.o.d"
  "/root/repo/src/align/ungapped.cpp" "src/CMakeFiles/psc_align.dir/align/ungapped.cpp.o" "gcc" "src/CMakeFiles/psc_align.dir/align/ungapped.cpp.o.d"
  "/root/repo/src/align/xdrop.cpp" "src/CMakeFiles/psc_align.dir/align/xdrop.cpp.o" "gcc" "src/CMakeFiles/psc_align.dir/align/xdrop.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/psc_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
