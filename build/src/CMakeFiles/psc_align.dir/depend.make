# Empty dependencies file for psc_align.
# This may be replaced when dependencies are built.
