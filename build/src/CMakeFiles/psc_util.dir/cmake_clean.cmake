file(REMOVE_RECURSE
  "CMakeFiles/psc_util.dir/util/args.cpp.o"
  "CMakeFiles/psc_util.dir/util/args.cpp.o.d"
  "CMakeFiles/psc_util.dir/util/logging.cpp.o"
  "CMakeFiles/psc_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/psc_util.dir/util/stats.cpp.o"
  "CMakeFiles/psc_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/psc_util.dir/util/table.cpp.o"
  "CMakeFiles/psc_util.dir/util/table.cpp.o.d"
  "CMakeFiles/psc_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/psc_util.dir/util/thread_pool.cpp.o.d"
  "CMakeFiles/psc_util.dir/util/timer.cpp.o"
  "CMakeFiles/psc_util.dir/util/timer.cpp.o.d"
  "libpsc_util.a"
  "libpsc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
