
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dispatch.cpp" "src/CMakeFiles/psc_core.dir/core/dispatch.cpp.o" "gcc" "src/CMakeFiles/psc_core.dir/core/dispatch.cpp.o.d"
  "/root/repo/src/core/hybrid.cpp" "src/CMakeFiles/psc_core.dir/core/hybrid.cpp.o" "gcc" "src/CMakeFiles/psc_core.dir/core/hybrid.cpp.o.d"
  "/root/repo/src/core/modes.cpp" "src/CMakeFiles/psc_core.dir/core/modes.cpp.o" "gcc" "src/CMakeFiles/psc_core.dir/core/modes.cpp.o.d"
  "/root/repo/src/core/options.cpp" "src/CMakeFiles/psc_core.dir/core/options.cpp.o" "gcc" "src/CMakeFiles/psc_core.dir/core/options.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/psc_core.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/psc_core.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/psc_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/psc_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/result.cpp" "src/CMakeFiles/psc_core.dir/core/result.cpp.o" "gcc" "src/CMakeFiles/psc_core.dir/core/result.cpp.o.d"
  "/root/repo/src/core/step1_index.cpp" "src/CMakeFiles/psc_core.dir/core/step1_index.cpp.o" "gcc" "src/CMakeFiles/psc_core.dir/core/step1_index.cpp.o.d"
  "/root/repo/src/core/step2_host.cpp" "src/CMakeFiles/psc_core.dir/core/step2_host.cpp.o" "gcc" "src/CMakeFiles/psc_core.dir/core/step2_host.cpp.o.d"
  "/root/repo/src/core/step3_gapped.cpp" "src/CMakeFiles/psc_core.dir/core/step3_gapped.cpp.o" "gcc" "src/CMakeFiles/psc_core.dir/core/step3_gapped.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/psc_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_align.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_rasc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
