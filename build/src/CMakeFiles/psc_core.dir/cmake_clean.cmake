file(REMOVE_RECURSE
  "CMakeFiles/psc_core.dir/core/dispatch.cpp.o"
  "CMakeFiles/psc_core.dir/core/dispatch.cpp.o.d"
  "CMakeFiles/psc_core.dir/core/hybrid.cpp.o"
  "CMakeFiles/psc_core.dir/core/hybrid.cpp.o.d"
  "CMakeFiles/psc_core.dir/core/modes.cpp.o"
  "CMakeFiles/psc_core.dir/core/modes.cpp.o.d"
  "CMakeFiles/psc_core.dir/core/options.cpp.o"
  "CMakeFiles/psc_core.dir/core/options.cpp.o.d"
  "CMakeFiles/psc_core.dir/core/pipeline.cpp.o"
  "CMakeFiles/psc_core.dir/core/pipeline.cpp.o.d"
  "CMakeFiles/psc_core.dir/core/report.cpp.o"
  "CMakeFiles/psc_core.dir/core/report.cpp.o.d"
  "CMakeFiles/psc_core.dir/core/result.cpp.o"
  "CMakeFiles/psc_core.dir/core/result.cpp.o.d"
  "CMakeFiles/psc_core.dir/core/step1_index.cpp.o"
  "CMakeFiles/psc_core.dir/core/step1_index.cpp.o.d"
  "CMakeFiles/psc_core.dir/core/step2_host.cpp.o"
  "CMakeFiles/psc_core.dir/core/step2_host.cpp.o.d"
  "CMakeFiles/psc_core.dir/core/step3_gapped.cpp.o"
  "CMakeFiles/psc_core.dir/core/step3_gapped.cpp.o.d"
  "libpsc_core.a"
  "libpsc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
