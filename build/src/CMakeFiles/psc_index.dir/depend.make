# Empty dependencies file for psc_index.
# This may be replaced when dependencies are built.
