file(REMOVE_RECURSE
  "libpsc_index.a"
)
