
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/index_table.cpp" "src/CMakeFiles/psc_index.dir/index/index_table.cpp.o" "gcc" "src/CMakeFiles/psc_index.dir/index/index_table.cpp.o.d"
  "/root/repo/src/index/neighborhood.cpp" "src/CMakeFiles/psc_index.dir/index/neighborhood.cpp.o" "gcc" "src/CMakeFiles/psc_index.dir/index/neighborhood.cpp.o.d"
  "/root/repo/src/index/seed_model.cpp" "src/CMakeFiles/psc_index.dir/index/seed_model.cpp.o" "gcc" "src/CMakeFiles/psc_index.dir/index/seed_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/psc_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
