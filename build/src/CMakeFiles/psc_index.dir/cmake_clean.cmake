file(REMOVE_RECURSE
  "CMakeFiles/psc_index.dir/index/index_table.cpp.o"
  "CMakeFiles/psc_index.dir/index/index_table.cpp.o.d"
  "CMakeFiles/psc_index.dir/index/neighborhood.cpp.o"
  "CMakeFiles/psc_index.dir/index/neighborhood.cpp.o.d"
  "CMakeFiles/psc_index.dir/index/seed_model.cpp.o"
  "CMakeFiles/psc_index.dir/index/seed_model.cpp.o.d"
  "libpsc_index.a"
  "libpsc_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
