file(REMOVE_RECURSE
  "libpsc_blast.a"
)
