file(REMOVE_RECURSE
  "CMakeFiles/psc_blast.dir/blast/neighborhood_words.cpp.o"
  "CMakeFiles/psc_blast.dir/blast/neighborhood_words.cpp.o.d"
  "CMakeFiles/psc_blast.dir/blast/tblastn.cpp.o"
  "CMakeFiles/psc_blast.dir/blast/tblastn.cpp.o.d"
  "CMakeFiles/psc_blast.dir/blast/two_hit.cpp.o"
  "CMakeFiles/psc_blast.dir/blast/two_hit.cpp.o.d"
  "libpsc_blast.a"
  "libpsc_blast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_blast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
