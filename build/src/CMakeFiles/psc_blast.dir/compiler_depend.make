# Empty compiler generated dependencies file for psc_blast.
# This may be replaced when dependencies are built.
