file(REMOVE_RECURSE
  "libpsc_eval.a"
)
