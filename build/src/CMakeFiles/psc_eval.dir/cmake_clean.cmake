file(REMOVE_RECURSE
  "CMakeFiles/psc_eval.dir/eval/average_precision.cpp.o"
  "CMakeFiles/psc_eval.dir/eval/average_precision.cpp.o.d"
  "CMakeFiles/psc_eval.dir/eval/benchmark_set.cpp.o"
  "CMakeFiles/psc_eval.dir/eval/benchmark_set.cpp.o.d"
  "CMakeFiles/psc_eval.dir/eval/compare_hits.cpp.o"
  "CMakeFiles/psc_eval.dir/eval/compare_hits.cpp.o.d"
  "CMakeFiles/psc_eval.dir/eval/roc.cpp.o"
  "CMakeFiles/psc_eval.dir/eval/roc.cpp.o.d"
  "libpsc_eval.a"
  "libpsc_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
