# Empty compiler generated dependencies file for psc_eval.
# This may be replaced when dependencies are built.
