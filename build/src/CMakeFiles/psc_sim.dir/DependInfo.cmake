
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/family_generator.cpp" "src/CMakeFiles/psc_sim.dir/sim/family_generator.cpp.o" "gcc" "src/CMakeFiles/psc_sim.dir/sim/family_generator.cpp.o.d"
  "/root/repo/src/sim/genome_generator.cpp" "src/CMakeFiles/psc_sim.dir/sim/genome_generator.cpp.o" "gcc" "src/CMakeFiles/psc_sim.dir/sim/genome_generator.cpp.o.d"
  "/root/repo/src/sim/mutation.cpp" "src/CMakeFiles/psc_sim.dir/sim/mutation.cpp.o" "gcc" "src/CMakeFiles/psc_sim.dir/sim/mutation.cpp.o.d"
  "/root/repo/src/sim/protein_generator.cpp" "src/CMakeFiles/psc_sim.dir/sim/protein_generator.cpp.o" "gcc" "src/CMakeFiles/psc_sim.dir/sim/protein_generator.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/CMakeFiles/psc_sim.dir/sim/workload.cpp.o" "gcc" "src/CMakeFiles/psc_sim.dir/sim/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/psc_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/psc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
