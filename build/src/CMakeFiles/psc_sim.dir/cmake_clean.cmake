file(REMOVE_RECURSE
  "CMakeFiles/psc_sim.dir/sim/family_generator.cpp.o"
  "CMakeFiles/psc_sim.dir/sim/family_generator.cpp.o.d"
  "CMakeFiles/psc_sim.dir/sim/genome_generator.cpp.o"
  "CMakeFiles/psc_sim.dir/sim/genome_generator.cpp.o.d"
  "CMakeFiles/psc_sim.dir/sim/mutation.cpp.o"
  "CMakeFiles/psc_sim.dir/sim/mutation.cpp.o.d"
  "CMakeFiles/psc_sim.dir/sim/protein_generator.cpp.o"
  "CMakeFiles/psc_sim.dir/sim/protein_generator.cpp.o.d"
  "CMakeFiles/psc_sim.dir/sim/workload.cpp.o"
  "CMakeFiles/psc_sim.dir/sim/workload.cpp.o.d"
  "libpsc_sim.a"
  "libpsc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
