file(REMOVE_RECURSE
  "libpsc_sim.a"
)
