// Sensitivity / selectivity evaluation (the paper's section 4.4): build a
// synthetic protein-family benchmark, search it with both the seed-based
// pipeline and the tblastn baseline, and report ROC50 and AP-Mean per
// method -- the reproduction of Table 6 in example form.
//
//   $ ./sensitivity_eval --families=10 --members=5
#include <cstdio>

#include "blast/tblastn.hpp"
#include "core/pipeline.hpp"
#include "eval/average_precision.hpp"
#include "eval/benchmark_set.hpp"
#include "eval/compare_hits.hpp"
#include "eval/roc.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

struct QualityScores {
  double roc50 = 0.0;
  double ap_mean = 0.0;
};

QualityScores score_method(const psc::eval::QualityBenchmark& benchmark,
                           const std::vector<psc::eval::GenericHit>& hits) {
  using namespace psc;
  const auto labels = benchmark.per_query_labels(hits, 100);
  std::vector<double> roc_scores, ap_scores;
  for (std::size_t q = 0; q < benchmark.queries.size(); ++q) {
    const std::size_t positives =
        benchmark.positives_per_family[benchmark.query_family[q]];
    roc_scores.push_back(eval::roc50(labels[q], positives));
    ap_scores.push_back(eval::average_precision(labels[q], 50));
  }
  return {eval::mean(roc_scores), eval::mean(ap_scores)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psc;

  util::ArgParser args("sensitivity_eval",
                       "ROC50 / AP-Mean comparison of the RASC pipeline and "
                       "the tblastn baseline on a synthetic family benchmark");
  args.add_option("families", "20", "number of protein families");
  args.add_option("members", "6", "members per family");
  args.add_option("queries", "3", "queries per family");
  args.add_option("identity", "0.8", "within-family sequence identity");
  args.add_option("genome", "300000", "genome length (nt)");
  args.add_option("seed", "11", "benchmark seed");
  if (!args.parse(argc, argv)) return 1;

  eval::QualityBenchmarkConfig config;
  config.family.families = static_cast<std::size_t>(args.get_int("families"));
  config.family.members_per_family =
      static_cast<std::size_t>(args.get_int("members"));
  config.family.divergence.substitution_rate =
      1.0 - args.get_double("identity");
  config.queries_per_family = static_cast<std::size_t>(args.get_int("queries"));
  config.genome_length = static_cast<std::size_t>(args.get_int("genome"));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  std::fprintf(stderr, "# building benchmark: %zu families x %zu members, "
                       "%zu queries total\n",
               config.family.families, config.family.members_per_family,
               config.family.families * config.queries_per_family);
  const eval::QualityBenchmark benchmark = eval::build_quality_benchmark(config);

  // Method 1: the seed-based pipeline on the simulated accelerator.
  core::PipelineOptions pipeline_options;
  pipeline_options.backend = core::Step2Backend::kRasc;
  const core::PipelineResult pipeline_result =
      core::run_pipeline(benchmark.queries, benchmark.genome_bank,
                         pipeline_options);
  const QualityScores rasc_scores =
      score_method(benchmark, eval::to_generic(pipeline_result.matches));

  // Method 2: the tblastn baseline.
  const blast::TblastnResult blast_result = blast::tblastn_search(
      benchmark.queries, benchmark.genome_bank,
      bio::SubstitutionMatrix::blosum62(), blast::TblastnOptions{});
  const QualityScores blast_scores =
      score_method(benchmark, eval::to_generic(blast_result.hits));

  const eval::OverlapStats overlap =
      eval::compare_hits(eval::to_generic(pipeline_result.matches),
                         eval::to_generic(blast_result.hits));

  util::TextTable table;
  table.set_header({"", "FPGA-RASC (this library)", "tblastn baseline"});
  table.add_row({"ROC50", util::TextTable::num(rasc_scores.roc50, 3),
                 util::TextTable::num(blast_scores.roc50, 3)});
  table.add_row({"AP-Mean", util::TextTable::num(rasc_scores.ap_mean, 3),
                 util::TextTable::num(blast_scores.ap_mean, 3)});
  table.add_row({"hits", std::to_string(pipeline_result.matches.size()),
                 std::to_string(blast_result.hits.size())});
  std::printf("%s", table.render().c_str());
  std::printf("hit-set overlap: %zu shared / %zu pipeline-only / %zu "
              "baseline-only (Jaccard %.2f)\n",
              overlap.shared, overlap.only_a, overlap.only_b,
              overlap.jaccard());
  std::printf("\npaper (Table 6, yeast benchmark): RASC 0.468/0.447, "
              "NCBI 0.479/0.441 -- parity is the expected outcome.\n");
  return 0;
}
