// Quickstart: the smallest end-to-end use of the library.
//
// Builds a toy protein bank and a toy "genome bank" (here: another protein
// bank sharing one diverged sequence), runs the three-step seed-based
// comparison pipeline on the simulated RASC-100 backend, and prints the
// matches with their alignments.
//
//   $ ./quickstart
#include <cstdio>
#include <span>

#include "core/pipeline.hpp"
#include "sim/mutation.hpp"
#include "sim/protein_generator.hpp"

int main() {
  using namespace psc;

  // --- 1. Make two banks with a planted homology --------------------------
  util::Xoshiro256 rng(2009);
  bio::SequenceBank bank0(bio::SequenceKind::kProtein);
  bio::SequenceBank bank1(bio::SequenceKind::kProtein);

  const bio::Sequence ancestor = sim::generate_protein("ancestor", 150, rng);
  bank0.add(bio::Sequence("query-protein", bio::SequenceKind::kProtein,
                          std::vector<std::uint8_t>(ancestor.residues())));
  bank0.add(sim::generate_protein("query-noise", 120, rng));

  sim::MutationConfig divergence;
  divergence.substitution_rate = 0.2;  // ~80% identity homolog
  bank1.add(sim::mutate_protein(ancestor, divergence, rng));
  bank1.add(sim::generate_protein("subject-noise-1", 200, rng));
  bank1.add(sim::generate_protein("subject-noise-2", 180, rng));

  // --- 2. Configure the pipeline ------------------------------------------
  core::PipelineOptions options;
  options.backend = core::Step2Backend::kRasc;  // simulated accelerator
  options.rasc.psc.num_pes = 64;
  options.with_traceback = true;  // we want printable alignments

  // --- 3. Run --------------------------------------------------------------
  const core::PipelineResult result = core::run_pipeline(bank0, bank1, options);

  // --- 4. Report ------------------------------------------------------------
  std::printf("pipeline: %llu seed pairs scored, %llu passed threshold, "
              "%zu match(es)\n\n",
              static_cast<unsigned long long>(result.counters.step2_pairs),
              static_cast<unsigned long long>(result.counters.step2_hits),
              result.matches.size());

  for (const core::Match& match : result.matches) {
    const bio::Sequence& s0 = bank0[match.bank0_sequence];
    const bio::Sequence& s1 = bank1[match.bank1_sequence];
    std::printf("%s x %s  score=%d  bits=%.1f  E=%.2g\n", s0.id().c_str(),
                s1.id().c_str(), match.alignment.score, match.bit_score,
                match.e_value);
    const auto rows = match.alignment.render(
        {s0.data(), s0.size()}, {s1.data(), s1.size()});
    std::printf("  %s\n  %s\n  %s\n\n", rows[0].c_str(), rows[1].c_str(),
                rows[2].c_str());
  }

  std::printf("modeled accelerator time: %.3f ms (%llu cycles @ 100 MHz, "
              "utilization %.1f%%)\n",
              1e3 * result.times.step2_ungapped,
              static_cast<unsigned long long>(
                  result.operator_stats.cycles_total()),
              100.0 * result.operator_stats.utilization());
  std::printf("(dominated by the one-time %.1f s bitstream load -- real "
              "workloads amortize it; see bench/table2_overall)\n",
              rasc::PlatformConfig{}.bitstream_load_seconds);
  return 0;
}
