// Genome annotation -- the paper's motivating workflow (section 1):
// compare a set of known proteins against a full genome to locate coding
// regions. The genome is six-frame translated; the bank-versus-bank
// pipeline (step 2 on the simulated RASC-100) finds the similarities; hits
// are reported as GFF3-style lines with genome nucleotide coordinates.
//
//   $ ./annotate_genome                         # synthetic demo data
//   $ ./annotate_genome --proteins=p.fa --genome=g.fa   # your FASTA files
#include <cstdio>
#include <sstream>
#include <string>

#include "bio/fasta.hpp"
#include "bio/translate.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "sim/genome_generator.hpp"
#include "sim/mutation.hpp"
#include "sim/protein_generator.hpp"
#include "util/args.hpp"

namespace {

/// Demo inputs: a synthetic genome with planted, diverged gene copies.
void make_demo_data(psc::bio::SequenceBank& proteins,
                    psc::bio::Sequence& genome) {
  using namespace psc;
  util::Xoshiro256 rng(7);
  for (int i = 0; i < 12; ++i) {
    proteins.add(sim::generate_protein("prot" + std::to_string(i), 180, rng));
  }
  sim::GenomeConfig config;
  config.length = 120000;
  config.seed = 8;
  genome = sim::generate_genome(config);

  sim::MutationConfig divergence;
  divergence.substitution_rate = 0.2;
  divergence.indel_rate = 0.005;
  std::size_t position = 10000;
  for (const std::size_t i : {0u, 2u, 5u, 9u}) {
    const bio::Sequence copy = sim::mutate_protein(proteins[i], divergence, rng);
    sim::plant_gene(genome, copy, position, (i % 2) == 0, rng);
    position += 25000;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psc;

  util::ArgParser args("annotate_genome",
                       "locate protein homologies in a genome (tblastn-style "
                       "workflow on the simulated RASC-100)");
  args.add_option("proteins", "", "protein bank FASTA (empty: synthetic demo)");
  args.add_option("genome", "", "genome FASTA (empty: synthetic demo)");
  args.add_option("pes", "192", "number of PSC processing elements");
  args.add_option("fpgas", "1", "simulated FPGAs (1 or 2)");
  args.add_option("evalue", "1e-3", "E-value cutoff");
  if (!args.parse(argc, argv)) return 1;

  bio::SequenceBank proteins(bio::SequenceKind::kProtein);
  bio::Sequence genome;
  if (args.get("proteins").empty() || args.get("genome").empty()) {
    std::fprintf(stderr, "# using synthetic demo data "
                         "(--proteins/--genome to supply FASTA)\n");
    make_demo_data(proteins, genome);
  } else {
    proteins = bio::read_fasta_file(args.get("proteins"),
                                    bio::SequenceKind::kProtein);
    const bio::SequenceBank genomes =
        bio::read_fasta_file(args.get("genome"), bio::SequenceKind::kDna);
    if (genomes.empty()) {
      std::fprintf(stderr, "genome FASTA is empty\n");
      return 1;
    }
    genome = genomes[0];
  }

  // Translate with coordinate mapping so hits can be located on the genome.
  std::vector<bio::FrameFragment> fragments;
  const bio::SequenceBank genome_bank = bio::frames_to_bank_mapped(
      bio::translate_six_frames(genome), genome.size(), 20, fragments);

  core::PipelineOptions options;
  options.backend = core::Step2Backend::kRasc;
  options.rasc.psc.num_pes = static_cast<std::size_t>(args.get_int("pes"));
  options.rasc.num_fpgas = static_cast<std::size_t>(args.get_int("fpgas"));
  options.e_value_cutoff = args.get_double("evalue");

  const core::PipelineResult result =
      core::run_pipeline(proteins, genome_bank, options);

  // GFF3 output through the library's reporter.
  std::ostringstream gff;
  core::write_gff3(gff, result.matches, proteins, fragments, genome.id());
  std::fputs(gff.str().c_str(), stdout);

  std::fprintf(stderr,
               "# step1 %.3fs | step2 %.3fs (modeled, %zu PE x %zu FPGA, "
               "util %.1f%%) | step3 %.3fs | %zu matches\n",
               result.times.step1_index, result.times.step2_ungapped,
               options.rasc.psc.num_pes, options.rasc.num_fpgas,
               100.0 * result.operator_stats.utilization(),
               result.times.step3_gapped, result.matches.size());
  return 0;
}
