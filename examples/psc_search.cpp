// psc_search: a command-line search tool over the whole BLAST-family
// surface of the library -- the conclusion's claim that the PSC design
// "can be directly reused for implementing blastp, blastx, and tblastx",
// as a runnable program.
//
//   $ ./psc_search --mode=tblastn --query=proteins.fa --subject=genome.fa
//   $ ./psc_search --mode=blastp  --query=a.fa --subject=b.fa --format=tabular
//   $ ./psc_search                                      # synthetic demo
//
// Formats: tabular (BLAST outfmt-6 style), gff3 (translated subjects
// only), pairwise (rendered alignments).
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "bio/complexity.hpp"
#include "bio/fasta.hpp"
#include "core/cli_options.hpp"
#include "core/modes.hpp"
#include "core/report.hpp"
#include "core/result_codec.hpp"
#include "service/shard_query.hpp"
#include "sim/genome_generator.hpp"
#include "sim/mutation.hpp"
#include "sim/protein_generator.hpp"
#include "store/index_store.hpp"
#include "store/bank_store.hpp"
#include "store/shard_store.hpp"
#include "util/args.hpp"

namespace {

using namespace psc;

void print_pairwise(const std::vector<core::Match>& matches,
                    const bio::SequenceBank& bank0,
                    const bio::SequenceBank& bank1) {
  for (const core::Match& match : matches) {
    const bio::Sequence& s0 = bank0[match.bank0_sequence];
    const bio::Sequence& s1 = bank1[match.bank1_sequence];
    std::printf("> %s x %s  score=%d bits=%.1f E=%.2g\n", s0.id().c_str(),
                s1.id().c_str(), match.alignment.score, match.bit_score,
                match.e_value);
    if (!match.alignment.ops.empty()) {
      const auto rows =
          match.alignment.render({s0.data(), s0.size()}, {s1.data(), s1.size()});
      std::printf("  %s\n  %s\n  %s\n", rows[0].c_str(), rows[1].c_str(),
                  rows[2].c_str());
    }
  }
}

struct DemoData {
  bio::SequenceBank proteins{bio::SequenceKind::kProtein};
  bio::Sequence genome;
};

DemoData make_demo() {
  DemoData demo;
  util::Xoshiro256 rng(2009);
  for (int i = 0; i < 6; ++i) {
    demo.proteins.add(
        sim::generate_protein("prot" + std::to_string(i), 150, rng));
  }
  sim::GenomeConfig config;
  config.length = 60000;
  config.seed = 2010;
  demo.genome = sim::generate_genome(config);
  sim::MutationConfig divergence;
  divergence.substitution_rate = 0.15;
  sim::plant_gene(demo.genome,
                  sim::mutate_protein(demo.proteins[1], divergence, rng),
                  12000, true, rng);
  sim::plant_gene(demo.genome,
                  sim::mutate_protein(demo.proteins[4], divergence, rng),
                  40001, false, rng);
  return demo;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("psc_search",
                       "BLAST-family search on the seed-based pipeline with "
                       "the simulated RASC-100 accelerator");
  args.add_option("mode", "tblastn", "tblastn | blastp | blastx | tblastx");
  args.add_option("query", "", "query FASTA (protein or DNA per mode)");
  args.add_option("subject", "", "subject FASTA (protein or DNA per mode)");
  args.add_option("subject-index", "",
                  "prebuilt subject store prefix from psc_index "
                  "(<prefix>.pscbank + <prefix>.pscidx); skips step-1 "
                  "indexing of the subject and implies a protein query");
  args.add_option("format", "tabular", "tabular | gff3 | pairwise");
  args.add_flag("output-binary",
                "write the versioned match encoding to stdout instead of "
                "text (diffable against psc_client --output-binary)");
  args.add_flag("mask", "mask low-complexity query regions (SEG-style)");
  // The shared flag surface (core/cli_options.hpp): psc_serve and the
  // benches register these same spellings.
  core::PipelineOptions defaults;
  defaults.backend = core::Step2Backend::kRasc;
  core::add_pipeline_options(args, defaults);
  core::add_matrix_option(args);
  if (!args.parse(argc, argv)) return 1;

  const std::string mode = args.get("mode");
  const std::string format = args.get("format");
  const bool output_binary = args.get_flag("output-binary");

  core::PipelineOptions options;
  if (!core::parse_pipeline_options(args, options)) return 1;
  bio::SubstitutionMatrix matrix;
  if (!core::parse_matrix_option(args, matrix)) return 1;
  options.with_traceback = output_binary || format != "gff3";

  // Prebuilt-subject flow: the index-once / query-many path. The store
  // remembers which seed model built the index, so the search configures
  // itself to match and step 1 only touches the query.
  if (!args.get("subject-index").empty()) {
    const std::string prefix = args.get("subject-index");
    if (args.get("query").empty()) {
      std::fprintf(stderr, "--subject-index requires --query\n");
      return 1;
    }
    if (!output_binary && format == "gff3") {
      std::fprintf(stderr,
                   "gff3 output needs genome coordinates; a prebuilt index "
                   "stores translated fragments (use tabular/pairwise)\n");
      return 1;
    }
    try {
      // A sharded store records its seed model identically in every
      // shard's index; sniff it from the first file either way.
      const bool sharded = store::manifest_exists(prefix);
      const store::IndexFileInfo info = store::inspect_index(
          (sharded ? store::shard_prefix(prefix, 0) : prefix) + ".pscidx");
      options.seed_model = core::parse_seed_model_kind(info.model_name);
      const index::SeedModel model = core::make_seed_model(options.seed_model);
      options.shape.seed_width = model.width();

      bio::SequenceBank query = bio::read_fasta_file(
          args.get("query"), bio::SequenceKind::kProtein);
      if (args.get_flag("mask")) {
        const std::size_t masked = bio::mask_low_complexity(query);
        std::fprintf(stderr, "# masked %zu low-complexity query residues\n",
                     masked);
      }
      const service::LoadedBankSet set =
          service::load_bank_set(prefix, model, /*verify_checksums=*/true);
      std::fprintf(stderr,
                   "# loaded %s: %llu subject sequence(s) across %zu "
                   "shard(s) under %s\n",
                   prefix.c_str(),
                   static_cast<unsigned long long>(set.total_sequences),
                   set.shard_count(), model.name().c_str());

      const core::PipelineResult pipeline =
          service::run_query_over_set(query, set, options, matrix);

      // Text formats index the subject bank by the matches' (global)
      // subject ids; stitch the shards back into one bank in base order.
      bio::SequenceBank subject(set.shards.front()->bank.kind());
      for (const auto& shard : set.shards) {
        for (const bio::Sequence& sequence : shard->bank) {
          subject.add(sequence);
        }
      }
      if (output_binary) {
        const std::vector<std::uint8_t> bytes =
            core::encode_matches(pipeline.matches);
        std::fwrite(bytes.data(), 1, bytes.size(), stdout);
      } else if (format == "tabular") {
        std::ostringstream out;
        core::write_tabular(out, pipeline.matches, query, subject);
        std::fputs(out.str().c_str(), stdout);
      } else {
        print_pairwise(pipeline.matches, query, subject);
      }
      std::fprintf(stderr, "# prebuilt-index search: %zu match(es); "
                   "step1 %.3f s, step2 %s: %.3f s\n",
                   pipeline.matches.size(), pipeline.times.step1_index,
                   core::backend_name(options.backend).c_str(),
                   pipeline.times.step2_ungapped);
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "psc_search: %s\n", e.what());
      return 1;
    }
  }

  // Load inputs (or fall back to the demo for an arg-less run).
  const bool demo_mode = args.get("query").empty() || args.get("subject").empty();
  DemoData demo;
  bio::SequenceBank query_proteins(bio::SequenceKind::kProtein);
  bio::SequenceBank subject_proteins(bio::SequenceKind::kProtein);
  bio::Sequence query_dna, subject_dna;
  const bool query_is_dna = mode == "blastx" || mode == "tblastx";
  const bool subject_is_dna = mode == "tblastn" || mode == "tblastx";
  if (demo_mode) {
    std::fprintf(stderr, "# no --query/--subject: synthetic demo data\n");
    demo = make_demo();
    query_proteins = std::move(demo.proteins);
    subject_dna = demo.genome;
    if (query_is_dna) {
      std::fprintf(stderr, "# demo data is protein-vs-genome; use tblastn\n");
      return 1;
    }
    if (!subject_is_dna) {
      std::fprintf(stderr, "# demo data is protein-vs-genome; use tblastn\n");
      return 1;
    }
  } else {
    if (query_is_dna) {
      const auto bank =
          bio::read_fasta_file(args.get("query"), bio::SequenceKind::kDna);
      if (bank.empty()) {
        std::fprintf(stderr, "empty query FASTA\n");
        return 1;
      }
      query_dna = bank[0];
    } else {
      query_proteins =
          bio::read_fasta_file(args.get("query"), bio::SequenceKind::kProtein);
    }
    if (subject_is_dna) {
      const auto bank =
          bio::read_fasta_file(args.get("subject"), bio::SequenceKind::kDna);
      if (bank.empty()) {
        std::fprintf(stderr, "empty subject FASTA\n");
        return 1;
      }
      subject_dna = bank[0];
    } else {
      subject_proteins = bio::read_fasta_file(args.get("subject"),
                                              bio::SequenceKind::kProtein);
    }
  }

  if (args.get_flag("mask") && !query_is_dna) {
    const std::size_t masked = bio::mask_low_complexity(query_proteins);
    std::fprintf(stderr, "# masked %zu low-complexity query residues\n",
                 masked);
  }

  // Run the requested mode.
  core::ModeResult result;
  if (mode == "tblastn") {
    result = core::tblastn(query_proteins, subject_dna, options, matrix);
  } else if (mode == "blastp") {
    result = core::blastp(query_proteins, subject_proteins, options, matrix);
  } else if (mode == "blastx") {
    result = core::blastx(query_dna, subject_proteins, options, matrix);
  } else if (mode == "tblastx") {
    result = core::tblastx(query_dna, subject_dna, options, matrix);
  } else {
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 1;
  }

  // The reporting banks: reconstruct what the pipeline actually compared.
  // (Translated sides were built inside the mode wrappers; rebuild them
  // for sequence ids/residues in the output.)
  const bio::SequenceBank bank0 =
      query_is_dna ? bio::frames_to_bank(bio::translate_six_frames(query_dna))
                   : std::move(query_proteins);
  const bio::SequenceBank bank1 =
      subject_is_dna
          ? bio::frames_to_bank(bio::translate_six_frames(subject_dna))
          : std::move(subject_proteins);

  if (output_binary) {
    const std::vector<std::uint8_t> bytes =
        core::encode_matches(result.pipeline.matches);
    std::fwrite(bytes.data(), 1, bytes.size(), stdout);
  } else if (format == "tabular") {
    std::ostringstream out;
    core::write_tabular(out, result.pipeline.matches, bank0, bank1);
    std::fputs(out.str().c_str(), stdout);
  } else if (format == "gff3") {
    if (result.bank1_fragments.empty()) {
      std::fprintf(stderr, "gff3 output needs a translated subject\n");
      return 1;
    }
    std::ostringstream out;
    core::write_gff3(out, result.pipeline.matches, bank0,
                     result.bank1_fragments, subject_dna.id());
    std::fputs(out.str().c_str(), stdout);
  } else if (format == "pairwise") {
    print_pairwise(result.pipeline.matches, bank0, bank1);
  } else {
    std::fprintf(stderr, "unknown format '%s'\n", format.c_str());
    return 1;
  }

  std::fprintf(stderr, "# %s: %zu match(es); step2 %s: %.3f s\n",
               mode.c_str(), result.pipeline.matches.size(),
               core::backend_name(options.backend).c_str(),
               result.pipeline.times.step2_ungapped);
  {
    std::ostringstream step2_report;
    core::write_step2_report(step2_report, result.pipeline);
    std::fprintf(stderr, "# %s", step2_report.str().c_str());
  }
  return 0;
}
