// Cycle-level walkthrough of the PSC operator -- figures 1 and 2 of the
// paper, animated. A tiny array (2 slots x 2 PEs, 8-residue windows) is
// stepped through the load and compute phases; every phase transition,
// PE completion, FIFO push and output pop is narrated, then the batch
// engine re-runs the same key to show the two engines agree.
//
//   $ ./psc_trace
#include <cstdio>
#include <string>

#include "rasc/psc_operator.hpp"
#include "util/args.hpp"

namespace {

std::string window_letters(std::span<const std::uint8_t> window) {
  std::string out;
  for (const std::uint8_t r : window) out.push_back(psc::bio::decode_protein(r));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psc;

  util::ArgParser args("psc_trace",
                       "narrated cycle-level trace of a tiny PSC operator");
  args.add_option("threshold", "10", "result-manager score threshold");
  if (!args.parse(argc, argv)) return 1;

  // A tiny operator: 4 PEs in 2 slots, window length 8.
  rasc::PscConfig config;
  config.num_pes = 4;
  config.slot_size = 2;
  config.window_length = 8;
  config.threshold = static_cast<int>(args.get_int("threshold"));
  config.fifo_depth = 4;

  const auto& matrix = bio::SubstitutionMatrix::blosum62();

  // Three IL0 windows (one more than fits per... no: 4 PEs, 3 windows) and
  // four IL1 windows around a shared seed "MKVL".
  bio::SequenceBank bank(bio::SequenceKind::kProtein);
  bank.add(bio::Sequence::protein_from_letters("il0-a", "ARMKVLND"));
  bank.add(bio::Sequence::protein_from_letters("il0-b", "GSMKVLTE"));
  bank.add(bio::Sequence::protein_from_letters("il0-c", "WWMKVLWW"));
  bank.add(bio::Sequence::protein_from_letters("il1-a", "ARMKVLND"));
  bank.add(bio::Sequence::protein_from_letters("il1-b", "TSMKVLNE"));
  bank.add(bio::Sequence::protein_from_letters("il1-c", "PPMKVLGG"));
  bank.add(bio::Sequence::protein_from_letters("il1-d", "HHHHHHHH"));

  const index::WindowShape shape{4, 2};  // W=4, N=2 -> length 8
  index::WindowBatch il0(shape.length());
  index::WindowBatch il1(shape.length());
  for (std::uint32_t s = 0; s < 3; ++s) {
    il0.append(bank, index::Occurrence{s, 0}, shape);
  }
  for (std::uint32_t s = 3; s < 7; ++s) {
    il1.append(bank, index::Occurrence{s, 0}, shape);
  }

  std::printf("PSC operator: %zu PEs in %zu slots of %zu, window length %zu, "
              "threshold %d\n\n",
              config.num_pes, config.num_slots(), config.slot_size,
              config.window_length, config.threshold);
  std::printf("IL0 windows (loaded into PE shift registers):\n");
  for (std::size_t i = 0; i < il0.size(); ++i) {
    std::printf("  PE%zu <- %s\n", i, window_letters(il0.window(i)).c_str());
  }
  std::printf("IL1 windows (streamed through the array):\n");
  for (std::size_t j = 0; j < il1.size(); ++j) {
    std::printf("  #%zu: %s\n", j, window_letters(il1.window(j)).c_str());
  }

  // --- Cycle-exact run ------------------------------------------------------
  std::printf("\n=== cycle-exact engine ===\n");
  rasc::PscOperator exact(config, matrix);
  std::vector<rasc::ResultRecord> exact_results;
  exact.run_key_cycle_exact(il0, il1, exact_results);
  const rasc::OperatorStats& stats = exact.stats();
  std::printf("load phase    : %llu cycles (3 windows x 8 residues + %zu "
              "skew)\n",
              static_cast<unsigned long long>(stats.cycles_load),
              config.skew_cycles());
  std::printf("compute phase : %llu cycles (4 windows x 8 residues + skew)\n",
              static_cast<unsigned long long>(stats.cycles_compute));
  std::printf("stall cycles  : %llu, drain cycles: %llu\n",
              static_cast<unsigned long long>(stats.cycles_stall),
              static_cast<unsigned long long>(stats.cycles_drain));
  std::printf("comparisons   : %llu (3 loaded PEs x 4 IL1 windows)\n",
              static_cast<unsigned long long>(stats.comparisons));
  std::printf("utilization   : %.0f%% (3 of 4 PEs held a window)\n",
              100.0 * stats.utilization());
  std::printf("results through the FIFO cascade:\n");
  for (const rasc::ResultRecord& record : exact_results) {
    std::printf("  PE%u x IL1#%u  score %d  (%s | %s)\n", record.il0_index,
                record.il1_index, record.score,
                window_letters(il0.window(record.il0_index)).c_str(),
                window_letters(il1.window(record.il1_index)).c_str());
  }

  // --- Batch engine on the same key ----------------------------------------
  std::printf("\n=== batch engine (timing model) ===\n");
  rasc::PscOperator batch(config, matrix);
  std::vector<rasc::ResultRecord> batch_results;
  batch.run_key(il0, il1, batch_results);
  std::printf("modeled cycles: %llu (cycle-exact measured %llu)\n",
              static_cast<unsigned long long>(batch.stats().cycles_total()),
              static_cast<unsigned long long>(stats.cycles_total()));
  std::printf("hits          : %zu (cycle-exact %zu) -- engines agree on "
              "every pair\n",
              batch_results.size(), exact_results.size());
  std::printf("\nat %g MHz this key costs %.2f us of accelerator time\n",
              config.clock_hz / 1e6, 1e6 * batch.modeled_seconds());
  return 0;
}
