// psc_router: the cluster coordinator as a process. Owns the .pscman
// manifest, fans each Search across shard-holding psc_serve replicas,
// and serves the byte-identical merged result over the same wire
// protocol -- psc_client cannot tell it from a single psc_serve.
//
//   $ ./psc_index --input=bank.fa --kind=protein --out=store/bank
//         --shard-max-bytes=...            (one command line)
//   $ ./psc_serve --bank-root=store --shards=bank:0,1 --port=7001 &
//   $ ./psc_serve --bank-root=store --shards=bank:1,2 --port=7002 &
//   $ ./psc_router --manifest=store/bank --bank=bank --port=7878
//         --replicas="127.0.0.1:7001=0,1;127.0.0.1:7002=1,2"
//   $ ./psc_client --port=7878 --bank=bank --query=queries.fa
//
// Runs until SIGINT/SIGTERM.
#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "cluster/router.hpp"
#include "net/server.hpp"
#include "util/args.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace psc;

  util::ArgParser args("psc_router",
                       "fan searches across a psc_serve cluster with a "
                       "byte-identical merge");
  args.add_option("manifest", "",
                  "local path prefix of the sharded store; "
                  "<manifest>.pscman must exist (required)");
  args.add_option("bank", "",
                  "bank name on the wire: what clients query and what "
                  "shard prefixes derive from on replica requests "
                  "(required)");
  args.add_option("replicas", "",
                  "replica list 'host:port=0,1;host:port=1,2' mapping "
                  "each endpoint to the manifest shard indices it serves; "
                  "'host:port=all' claims every shard including ones "
                  "appended later by live ingest (required)");
  args.add_option("bind", "127.0.0.1", "listen address");
  args.add_option("port", "0", "listen port (0 = ephemeral; see --port-file)");
  args.add_option("port-file", "",
                  "write the bound port to this file once listening");
  args.add_option("max-attempts", "3", "attempt rounds per shard");
  args.add_option("retry-backoff", "0.05",
                  "seconds before the first retry (doubles per round)");
  args.add_option("hedge-delay", "0.25",
                  "seconds before a straggling attempt is hedged to "
                  "another replica (0 disables)");
  args.add_option("request-timeout", "30",
                  "per-attempt socket timeout in seconds");
  args.add_option("health-interval", "2",
                  "seconds between replica health probe rounds");
  args.add_option("health-timeout", "2", "per-probe timeout in seconds");
  args.add_option("tenant-config", "",
                  "per-tenant policy file ('tenant <name> weight=2 qps=10 "
                  "in-flight=8 hedges-per-sec=1' per line; name 'default' "
                  "sets the policy for unlisted tenants)");
  args.add_option("default-qps", "0",
                  "queries/sec quota for tenants without an explicit "
                  "policy row (0 = unlimited); overrides the file's "
                  "default qps when both are given");
  args.add_option("max-active", "0",
                  "cluster-wide fan-outs in flight at once; beyond it a "
                  "submit fails fast with admission-rejected (0 = "
                  "unlimited)");
  args.add_option("max-payload-mb", "64", "per-frame receive limit (MiB)");
  args.add_option("max-in-flight", "32",
                  "searches one connection may have unanswered");
  args.add_option("read-timeout", "30",
                  "seconds a peer may stall mid-frame before kTimeout");
  args.add_option("max-connections", "64", "concurrent connections accepted");
  if (!args.parse(argc, argv)) return 1;

  if (args.get("manifest").empty() || args.get("bank").empty() ||
      args.get("replicas").empty()) {
    std::fprintf(stderr,
                 "psc_router: --manifest, --bank and --replicas are "
                 "required\n%s",
                 args.usage().c_str());
    return 1;
  }

  cluster::RouterConfig router_config;
  router_config.manifest_prefix = args.get("manifest");
  router_config.bank_prefix = args.get("bank");
  const std::int64_t max_attempts = args.get_int("max-attempts");
  if (max_attempts <= 0) {
    std::fprintf(stderr, "psc_router: --max-attempts must be positive\n");
    return 1;
  }
  router_config.max_attempts = static_cast<std::size_t>(max_attempts);
  router_config.retry_backoff_seconds = args.get_double("retry-backoff");
  router_config.hedge_delay_seconds = args.get_double("hedge-delay");
  router_config.request_timeout_seconds = args.get_double("request-timeout");
  router_config.health.interval_seconds = args.get_double("health-interval");
  router_config.health.timeout_seconds = args.get_double("health-timeout");
  if (!args.get("tenant-config").empty()) {
    try {
      router_config.tenants =
          service::load_tenant_config(args.get("tenant-config"));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "psc_router: %s\n", e.what());
      return 1;
    }
  }
  {
    const double default_qps = args.get_double("default-qps");
    const std::int64_t max_active = args.get_int("max-active");
    if (default_qps < 0.0 || max_active < 0) {
      std::fprintf(stderr,
                   "psc_router: --default-qps and --max-active must be "
                   ">= 0\n");
      return 1;
    }
    if (default_qps > 0.0) {
      router_config.tenants.default_policy.max_qps = default_qps;
    }
    router_config.max_active_fanouts = static_cast<std::size_t>(max_active);
  }

  net::ServerConfig server_config;
  server_config.bind_address = args.get("bind");
  // The router serves exactly one bank name; the poll loop rejects
  // everything else with kBankNotFound before the fan-out starts.
  server_config.bank_root = ".";
  server_config.allowed_prefixes = {router_config.bank_prefix};
  const std::int64_t port = args.get_int("port");
  const std::int64_t payload_mb = args.get_int("max-payload-mb");
  const std::int64_t in_flight = args.get_int("max-in-flight");
  const std::int64_t connections = args.get_int("max-connections");
  const double read_timeout = args.get_double("read-timeout");
  if (port < 0 || port > 65535 || payload_mb <= 0 || in_flight <= 0 ||
      connections <= 0 || read_timeout <= 0.0) {
    std::fprintf(stderr,
                 "psc_router: --port must be 0..65535 and the limit options "
                 "positive\n");
    return 1;
  }
  server_config.port = static_cast<std::uint16_t>(port);
  server_config.max_payload_bytes =
      static_cast<std::uint64_t>(payload_mb) << 20;
  server_config.max_in_flight = static_cast<std::size_t>(in_flight);
  server_config.max_connections = static_cast<std::size_t>(connections);
  server_config.read_timeout_seconds = read_timeout;

  try {
    router_config.replicas = cluster::parse_replica_list(args.get("replicas"));
    cluster::Router router(router_config);
    net::Server server(router, server_config);
    server.start();
    std::fprintf(
        stderr,
        "# psc_router listening on %s:%u (bank %s, %zu shard(s), %zu "
        "replica(s))\n",
        server_config.bind_address.c_str(), server.port(),
        router_config.bank_prefix.c_str(), router.manifest().shards.size(),
        router_config.replicas.size());
    if (!args.get("port-file").empty()) {
      std::ofstream out(args.get("port-file"));
      out << server.port() << "\n";
      if (!out) {
        std::fprintf(stderr, "psc_router: cannot write %s\n",
                     args.get("port-file").c_str());
        return 1;
      }
    }

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::fprintf(stderr, "# psc_router: shutting down\n");
    server.stop();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psc_router: %s\n", e.what());
    return 1;
  }
}
