// psc_index: build a bank + step-1 index once and save both to the
// persistent store, so every later search (psc_search --subject-index,
// the resident SearchService) starts from an O(mmap) load instead of a
// full rebuild.
//
//   $ ./psc_index --input=genome.fa --kind=dna --translate --out=genome
//       -> genome.pscbank (six-frame ORF fragments) + genome.pscidx
//   $ ./psc_index --input=bank.fa --kind=protein --out=bank
//   $ ./psc_index --input=nr.fa --out=nr --shard-max-bytes=1000000
//       -> nr.pscman + nr.shardNN.pscbank/.pscidx (queries fan out and
//          merge bit-identically to the unsharded store)
//   $ ./psc_index --inspect=genome      # print header info of saved files
#include <cstdio>
#include <string>

#include "bio/fasta.hpp"
#include "bio/translate.hpp"
#include "core/cli_options.hpp"
#include "index/index_table.hpp"
#include "store/bank_store.hpp"
#include "store/format.hpp"
#include "store/index_store.hpp"
#include "store/shard_store.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

namespace {

using namespace psc;

void inspect_pair(const std::string& prefix) {
  const store::IndexFileInfo info =
      store::inspect_index(prefix + ".pscidx");
  const store::BankFileInfo bank_info =
      store::inspect_bank(prefix + ".pscbank");
  const bio::SequenceBank bank = store::load_bank(prefix + ".pscbank");
  std::printf("%s.pscbank: %zu sequence(s), %zu residues, kind=%s%s\n",
              prefix.c_str(), bank.size(), bank.total_residues(),
              bank.kind() == bio::SequenceKind::kProtein ? "protein" : "dna",
              bank_info.compression != store::kCompressionNone
                  ? ", compressed"
                  : "");
  std::printf(
      "%s.pscidx: version %u, seed model %s (fingerprint %016llx), "
      "%llu keys, %llu occurrence(s), bank checksum %016llx\n",
      prefix.c_str(), info.version, info.model_name.c_str(),
      static_cast<unsigned long long>(info.model_fingerprint),
      static_cast<unsigned long long>(info.key_space),
      static_cast<unsigned long long>(info.occurrence_count),
      static_cast<unsigned long long>(info.bank_checksum));
}

int inspect(const std::string& prefix) {
  if (!store::manifest_exists(prefix)) {
    inspect_pair(prefix);
    return 0;
  }
  const store::ShardManifest manifest =
      store::load_manifest(store::manifest_path(prefix));
  std::printf(
      "%s.pscman: version %u, revision %llu, %zu shard(s), "
      "%llu sequence(s), %llu residues, kind=%s, set checksum %016llx\n",
      prefix.c_str(), manifest.version,
      static_cast<unsigned long long>(manifest.revision),
      manifest.shards.size(),
      static_cast<unsigned long long>(manifest.total_sequences),
      static_cast<unsigned long long>(manifest.total_residues),
      manifest.kind == bio::SequenceKind::kProtein ? "protein" : "dna",
      static_cast<unsigned long long>(manifest.set_checksum));
  for (std::size_t i = 0; i < manifest.shards.size(); ++i) {
    const store::ShardInfo& shard = manifest.shards[i];
    std::printf("  shard %02zu: base %llu, %llu sequence(s), %llu residues\n",
                i, static_cast<unsigned long long>(shard.sequence_base),
                static_cast<unsigned long long>(shard.sequence_count),
                static_cast<unsigned long long>(shard.residues));
    inspect_pair(store::shard_prefix(prefix, i));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("psc_index",
                       "build a sequence bank + seed index and save them to "
                       "the persistent store (.pscbank / .pscidx)");
  args.add_option("input", "", "input FASTA file");
  args.add_option("kind", "protein", "input kind: protein | dna");
  args.add_flag("translate",
                "six-frame-translate a DNA input into the protein fragment "
                "bank the pipeline compares against");
  core::add_seed_model_option(args, core::SeedModelKind::kSubsetW4);
  core::add_threads_option(args, "index build threads (0 = all cores)");
  args.add_flag("serial-index",
                "build the index with the serial constructor instead of the "
                "parallel builder (escape hatch; the layouts are identical)");
  args.add_option("out", "", "output path prefix (writes <out>.pscbank and "
                             "<out>.pscidx)");
  args.add_option("shard-max-bytes", "0",
                  "split the bank into shards whose encoded payload stays at "
                  "or under this many bytes (writes <out>.pscman plus "
                  "<out>.shardNN.pscbank/.pscidx); 0 = unsharded");
  args.add_flag("append",
                "live ingest: append --input as a new tail shard of the "
                "existing sharded store at --out and publish a "
                "bumped-revision manifest (existing shard files are never "
                "rewritten; a serving psc_serve/psc_router adopts the new "
                "revision via a refresh, not a restart)");
  args.add_flag("compress",
                "write shard archives LZSS-compressed (cold-storage mode: "
                "smaller files, decompressed once at load instead of "
                "mmap'd; results are byte-identical either way)");
  args.add_option("inspect", "",
                  "print header info for a saved <prefix> instead of building");
  if (!args.parse(argc, argv)) return 1;

  try {
    if (!args.get("inspect").empty()) return inspect(args.get("inspect"));

    const std::string input = args.get("input");
    const std::string out = args.get("out");
    if (input.empty() || out.empty()) {
      std::fprintf(stderr, "psc_index: --input and --out are required\n%s",
                   args.usage().c_str());
      return 1;
    }
    const std::string kind_name = args.get("kind");
    if (kind_name != "protein" && kind_name != "dna") {
      std::fprintf(stderr, "unknown --kind '%s'\n", kind_name.c_str());
      return 1;
    }
    const bio::SequenceKind kind = kind_name == "protein"
                                       ? bio::SequenceKind::kProtein
                                       : bio::SequenceKind::kDna;
    if (args.get_flag("translate") && kind != bio::SequenceKind::kDna) {
      std::fprintf(stderr, "--translate requires --kind=dna\n");
      return 1;
    }

    util::Timer load_timer;
    bio::SequenceBank bank = bio::read_fasta_file(input, kind);
    if (args.get_flag("translate")) {
      // The pipeline indexes protein space; fold every DNA record's six
      // reading frames into one fragment bank.
      bio::SequenceBank fragments(bio::SequenceKind::kProtein);
      for (const bio::Sequence& record : bank) {
        const bio::SequenceBank frames =
            bio::frames_to_bank(bio::translate_six_frames(record));
        for (const bio::Sequence& fragment : frames) fragments.add(fragment);
      }
      bank = std::move(fragments);
    }
    std::fprintf(stderr, "# read %zu sequence(s), %zu residues (%.3f s)\n",
                 bank.size(), bank.total_residues(), load_timer.seconds());
    if (bank.kind() == bio::SequenceKind::kDna) {
      std::fprintf(stderr,
                   "# note: DNA banks are stored as-is; the pipeline "
                   "searches protein space (use --translate)\n");
    }

    core::SeedModelKind kind_enum = core::SeedModelKind::kSubsetW4;
    if (!core::parse_seed_model_option(args, kind_enum)) return 1;
    std::size_t threads = 0;
    if (!core::parse_threads_option(args, threads)) return 1;
    const index::SeedModel model = core::make_seed_model(kind_enum);

    const bool compress = args.get_flag("compress");

    if (args.get_flag("append")) {
      if (args.get_int("shard-max-bytes") != 0) {
        std::fprintf(stderr,
                     "--append writes exactly one tail shard; "
                     "--shard-max-bytes does not apply\n");
        return 1;
      }
      util::Timer append_timer;
      const store::ShardManifest manifest = store::append_sharded_store(
          out, bank, model, threads, args.get_flag("serial-index"), compress);
      std::fprintf(stderr,
                   "# appended shard %02zu to %s.pscman: revision %llu, "
                   "%zu shard(s), %llu sequence(s) total (%.3f s)\n",
                   manifest.shards.size() - 1, out.c_str(),
                   static_cast<unsigned long long>(manifest.revision),
                   manifest.shards.size(),
                   static_cast<unsigned long long>(manifest.total_sequences),
                   append_timer.seconds());
      return 0;
    }

    const std::int64_t shard_max = args.get_int("shard-max-bytes");
    if (shard_max < 0) {
      std::fprintf(stderr, "--shard-max-bytes must be >= 0\n");
      return 1;
    }
    if (shard_max > 0) {
      util::Timer shard_timer;
      const store::ShardManifest manifest = store::write_sharded_store(
          out, bank, model, static_cast<std::uint64_t>(shard_max), threads,
          args.get_flag("serial-index"), compress);
      std::fprintf(stderr,
                   "# wrote %s.pscman + %zu shard pair(s) under %s "
                   "(revision %llu, set checksum %016llx, %.3f s)\n",
                   out.c_str(), manifest.shards.size(), model.name().c_str(),
                   static_cast<unsigned long long>(manifest.revision),
                   static_cast<unsigned long long>(manifest.set_checksum),
                   shard_timer.seconds());
      return 0;
    }

    util::Timer build_timer;
    const index::IndexTable table =
        args.get_flag("serial-index")
            ? index::IndexTable(bank, model)
            : index::IndexTable::build_parallel(bank, model, threads);
    std::fprintf(stderr,
                 "# indexed under %s: %zu occurrence(s) over %zu keys "
                 "(%.3f s)\n",
                 model.name().c_str(), table.total_occurrences(),
                 table.key_space(), build_timer.seconds());

    util::Timer save_timer;
    const std::uint64_t bank_checksum =
        store::save_bank(out + ".pscbank", bank, compress);
    store::save_index(out + ".pscidx", table, model, bank_checksum, compress);
    std::fprintf(stderr, "# wrote %s.pscbank + %s.pscidx (%.3f s)\n",
                 out.c_str(), out.c_str(), save_timer.seconds());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psc_index: %s\n", e.what());
    return 1;
  }
}
