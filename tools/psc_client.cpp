// psc_client: command-line client for psc_serve.
//
//   $ ./psc_client --port=7878 --ping
//   $ ./psc_client --port=7878 --stats
//   $ ./psc_client --port=7878 --bank=bank --query=queries.fa
//   $ ./psc_client --port=7878 --bank=bank --query=queries.fa
//         --output-binary > matches.bin      (one line)
//
// --output-binary writes the versioned match encoding
// (core/result_codec.hpp) to stdout -- the same bytes psc_search
// --output-binary emits for the identical search, so the two can be
// diffed bit-for-bit.
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "bio/fasta.hpp"
#include "core/result_codec.hpp"
#include "net/client.hpp"
#include "util/args.hpp"

namespace {

using namespace psc;

void print_stats(const service::ServiceStats& stats) {
  std::printf("queries_submitted=%llu\n",
              static_cast<unsigned long long>(stats.queries_submitted));
  std::printf("queries_completed=%llu\n",
              static_cast<unsigned long long>(stats.queries_completed));
  std::printf("queries_failed=%llu\n",
              static_cast<unsigned long long>(stats.queries_failed));
  std::printf("batches=%llu\n", static_cast<unsigned long long>(stats.batches));
  std::printf("cache_hits=%llu\n",
              static_cast<unsigned long long>(stats.cache_hits));
  std::printf("cache_misses=%llu\n",
              static_cast<unsigned long long>(stats.cache_misses));
  std::printf("evictions=%llu\n",
              static_cast<unsigned long long>(stats.evictions));
  std::printf("max_batch=%zu\n", stats.max_batch);
  std::printf("total_latency_seconds=%.6f\n", stats.total_latency_seconds);
  std::printf("total_batch_latency_seconds=%.6f\n",
              stats.total_batch_latency_seconds);
  std::printf("max_batch_latency_seconds=%.6f\n",
              stats.max_batch_latency_seconds);
  std::printf("mean_batch_latency_seconds=%.6f\n",
              stats.mean_batch_latency_seconds);
  std::printf("queue_depth=%zu\n", stats.queue_depth);
  std::printf("resident_banks=%zu\n", stats.resident_banks);
  std::printf("resident_shards=%zu\n", stats.resident_shards);
  // Board-residency and scheduler rows (codec v4). A v3-or-older server
  // never sends them; the decoder leaves the defaults, and printing the
  // zero rows keeps the output schema stable for scripts.
  std::printf("board_bitstream_loads=%llu\n",
              static_cast<unsigned long long>(stats.board_bitstream_loads));
  std::printf("board_bank_uploads=%llu\n",
              static_cast<unsigned long long>(stats.board_bank_uploads));
  std::printf("board_swaps=%llu\n",
              static_cast<unsigned long long>(stats.board_swaps));
  std::printf("bank_uploads_skipped=%llu\n",
              static_cast<unsigned long long>(stats.bank_uploads_skipped));
  std::printf("board_upload_seconds=%.6f\n", stats.board_upload_seconds);
  std::printf("board_upload_seconds_saved=%.6f\n",
              stats.board_upload_seconds_saved);
  std::printf("accel_modeled_seconds=%.6f\n", stats.accel_modeled_seconds);
  std::printf("scheduler_rounds=%llu\n",
              static_cast<unsigned long long>(stats.scheduler_rounds));
  std::printf("scheduler_reorders=%llu\n",
              static_cast<unsigned long long>(stats.scheduler_reorders));
  std::printf("starvation_promotions=%llu\n",
              static_cast<unsigned long long>(stats.starvation_promotions));
  std::printf("bank_switches=%llu\n",
              static_cast<unsigned long long>(stats.bank_switches));
  std::printf("scheduler_policy=%s\n", stats.scheduler_policy.empty()
                                           ? "unknown"
                                           : stats.scheduler_policy.c_str());
  // A router backend (codec v3) reports its replica table; a plain
  // psc_serve has no rows and prints nothing extra. The benched/revived
  // columns ride codec v5; older servers leave them zero.
  for (const service::ReplicaStats& replica : stats.replicas) {
    std::printf(
        "replica=%s up=%d inflight=%llu requests=%llu retries=%llu "
        "hedges=%llu failures=%llu benched=%llu revived=%llu "
        "p50_latency_seconds=%.6f max_latency_seconds=%.6f\n",
        replica.endpoint.c_str(), replica.up ? 1 : 0,
        static_cast<unsigned long long>(replica.inflight),
        static_cast<unsigned long long>(replica.requests),
        static_cast<unsigned long long>(replica.retries),
        static_cast<unsigned long long>(replica.hedges),
        static_cast<unsigned long long>(replica.failures),
        static_cast<unsigned long long>(replica.benched),
        static_cast<unsigned long long>(replica.revived),
        replica.p50_latency_seconds, replica.max_latency_seconds);
  }
  // Live-ingest rows (codec v6); older servers leave the defaults.
  std::printf("manifest_refreshes=%llu\n",
              static_cast<unsigned long long>(stats.manifest_refreshes));
  std::printf("refresh_shards_reused=%llu\n",
              static_cast<unsigned long long>(stats.refresh_shards_reused));
  std::printf("resident_compressed_shards=%zu\n",
              stats.resident_compressed_shards);
  std::printf("store_revision=%llu\n",
              static_cast<unsigned long long>(stats.store_revision));
  // Multi-tenant rows (codec v5); a pre-tenancy server sends none.
  std::printf("fair_scheduler=%d\n", stats.fair_scheduler ? 1 : 0);
  for (const service::TenantStats& tenant : stats.tenants) {
    std::printf(
        "tenant=%s weight=%.3f admitted=%llu rejected=%llu completed=%llu "
        "failed=%llu queued=%llu total_latency_seconds=%.6f "
        "max_latency_seconds=%.6f query_residues=%llu resident_bytes=%llu "
        "hedges=%llu hedges_denied=%llu\n",
        tenant.name.c_str(), tenant.weight,
        static_cast<unsigned long long>(tenant.admitted),
        static_cast<unsigned long long>(tenant.rejected),
        static_cast<unsigned long long>(tenant.completed),
        static_cast<unsigned long long>(tenant.failed),
        static_cast<unsigned long long>(tenant.queued),
        tenant.total_latency_seconds, tenant.max_latency_seconds,
        static_cast<unsigned long long>(tenant.query_residues),
        static_cast<unsigned long long>(tenant.resident_bytes),
        static_cast<unsigned long long>(tenant.hedges),
        static_cast<unsigned long long>(tenant.hedges_denied));
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("psc_client",
                       "query a psc_serve instance over the wire protocol");
  args.add_option("host", "127.0.0.1", "server address");
  args.add_option("port", "0", "server port (required)");
  args.add_option("timeout", "30", "socket timeout in seconds (0 = none)");
  args.add_option("tenant", "",
                  "tenant identity: sends a kHello handshake so every "
                  "request on this connection is billed to the named "
                  "tenant (empty = legacy hello-less connection, billed "
                  "to 'default')");
  args.add_option("repeat", "1",
                  "submit the search this many times on one connection; "
                  "over-quota rejections are counted, not fatal, and a "
                  "final ping proves the connection survived them");
  args.add_flag("ping", "round-trip a Ping frame and exit");
  args.add_flag("stats", "print the service stats snapshot and exit");
  args.add_option("refresh", "",
                  "live ingest: ask the server to adopt the named bank "
                  "prefix's current manifest revision (run after psc_index "
                  "--append) and exit; prints the revision now served");
  args.add_option("bank", "",
                  "bank prefix, relative to the server's --bank-root");
  args.add_option("query", "", "query FASTA file (protein)");
  args.add_option("evalue", "1e-3", "per-query E-value cutoff");
  args.add_flag("composition", "composition-based E-value statistics");
  args.add_flag("no-traceback",
                "skip alignment traceback (scores and coordinates only)");
  args.add_flag("output-binary",
                "write the versioned match encoding to stdout instead of "
                "text (diffable against psc_search --output-binary)");
  if (!args.parse(argc, argv)) return 1;

  const std::int64_t port = args.get_int("port");
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "psc_client: --port is required (1..65535)\n");
    return 1;
  }

  net::ClientConfig config;
  config.host = args.get("host");
  config.port = static_cast<std::uint16_t>(port);
  config.timeout_seconds = args.get_double("timeout");
  config.tenant = args.get("tenant");
  const std::int64_t repeat = args.get_int("repeat");
  if (repeat < 1) {
    std::fprintf(stderr, "psc_client: --repeat must be >= 1\n");
    return 1;
  }

  try {
    net::Client client(config);

    if (args.get_flag("ping")) {
      client.ping();
      std::printf("pong\n");
      return 0;
    }
    if (args.get_flag("stats")) {
      print_stats(client.stats());
      return 0;
    }
    if (!args.get("refresh").empty()) {
      const std::uint64_t revision = client.refresh(args.get("refresh"));
      std::printf("refreshed %s: revision %llu\n",
                  args.get("refresh").c_str(),
                  static_cast<unsigned long long>(revision));
      return 0;
    }

    const std::string bank = args.get("bank");
    const std::string query_path = args.get("query");
    if (bank.empty() || query_path.empty()) {
      std::fprintf(stderr, "psc_client: --bank and --query are required\n%s",
                   args.usage().c_str());
      return 1;
    }

    std::ifstream in(query_path);
    if (!in) {
      std::fprintf(stderr, "psc_client: cannot open %s\n", query_path.c_str());
      return 1;
    }
    std::ostringstream fasta;
    fasta << in.rdbuf();
    const std::string query_fasta = fasta.str();
    // Parse locally too: ids for the text output, and the client fails
    // fast on FASTA the server would reject anyway.
    std::istringstream parse_stream(query_fasta);
    const bio::SequenceBank query =
        bio::read_fasta(parse_stream, bio::SequenceKind::kProtein);
    if (query.empty()) {
      std::fprintf(stderr, "psc_client: %s holds no sequences\n",
                   query_path.c_str());
      return 1;
    }

    service::QueryOptions options;
    options.e_value_cutoff = args.get_double("evalue");
    options.with_traceback = !args.get_flag("no-traceback");
    options.composition_based_stats = args.get_flag("composition");

    // With --repeat, over-quota rejections are data, not failures: they
    // are counted, the loop continues, and a final ping proves the
    // typed error left the connection usable.
    std::optional<service::QueryResult> first_admitted;
    std::optional<net::WireError> last_rejection;
    unsigned long long admitted = 0;
    unsigned long long rejected = 0;
    for (std::int64_t attempt = 0; attempt < repeat; ++attempt) {
      try {
        service::QueryResult reply = client.search(bank, query_fasta, options);
        ++admitted;
        if (!first_admitted) first_admitted = std::move(reply);
      } catch (const net::WireError& e) {
        if (e.code() == net::WireErrorCode::kQuotaExceeded ||
            e.code() == net::WireErrorCode::kAdmissionRejected) {
          ++rejected;
          last_rejection = e;
          continue;
        }
        throw;
      }
    }
    if (repeat > 1) {
      client.ping();
      std::fprintf(stderr, "# repeat summary: admitted=%llu rejected=%llu\n",
                   admitted, rejected);
    }
    if (!first_admitted) {
      std::fprintf(stderr,
                   "psc_client: every submission was rejected [%s]: %s\n",
                   net::wire_error_code_name(last_rejection->code()).c_str(),
                   last_rejection->what());
      return 2;
    }
    const service::QueryResult& result = *first_admitted;

    if (args.get_flag("output-binary")) {
      const std::vector<std::uint8_t> bytes =
          core::encode_matches(result.matches);
      std::fwrite(bytes.data(), 1, bytes.size(), stdout);
    } else {
      for (const core::Match& match : result.matches) {
        const std::string& id = query[match.bank0_sequence].id();
        std::printf("%s\tsubject:%u\t%d\t%.1f\t%.2g\t%zu\t%zu\t%zu\t%zu\n",
                    id.c_str(), match.bank1_sequence, match.alignment.score,
                    match.bit_score, match.e_value, match.alignment.begin0,
                    match.alignment.end0, match.alignment.begin1,
                    match.alignment.end1);
      }
    }
    std::fprintf(stderr,
                 "# %zu match(es); batch of %zu, bank %s, latency %.3f s\n",
                 result.matches.size(), result.batch_size,
                 result.bank_was_resident ? "resident" : "loaded",
                 result.latency_seconds);
    return 0;
  } catch (const net::WireError& e) {
    std::fprintf(stderr, "psc_client: server error [%s]: %s\n",
                 net::wire_error_code_name(e.code()).c_str(), e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psc_client: %s\n", e.what());
    return 1;
  }
}
