// psc_serve: the network front-end as a process. Hosts one
// SearchService (resident banks, coalescing worker) behind the psc wire
// protocol (src/net/), so any number of psc_client processes share the
// residents and the batching.
//
//   $ ./psc_index --input=bank.fa --kind=protein --out=store/bank
//   $ ./psc_serve --bank-root=store --port=7878
//   $ ./psc_serve --bank-root=store --port=0 --port-file=port.txt &
//       -> binds an ephemeral port and writes it to port.txt
//   $ ./psc_serve --bank-root=store --shards=bank:0,1 --port=7001
//       -> cluster replica: only the listed shard prefixes of a
//          sharded store are served; anything else -> kBankNotFound
//
// Runs until SIGINT/SIGTERM.
#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/cli_options.hpp"
#include "net/server.hpp"
#include "service/search_service.hpp"
#include "store/shard_store.hpp"
#include "util/args.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

/// Expands a --shards spec into the exact wire prefixes this replica
/// serves. Entries are ';'-separated; "bank:0,2" expands the indices
/// through store::shard_prefix ("bank.shard00", "bank.shard02"), a
/// plain entry is taken as a literal prefix. Throws on malformed input.
std::vector<std::string> parse_shards_spec(const std::string& spec) {
  std::vector<std::string> prefixes;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t end = spec.find(';', start);
    const std::string entry =
        spec.substr(start, end == std::string::npos ? end : end - start);
    start = end == std::string::npos ? spec.size() + 1 : end + 1;
    if (entry.empty()) continue;  // tolerate a trailing ';'
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      prefixes.push_back(entry);
      continue;
    }
    const std::string bank = entry.substr(0, colon);
    if (bank.empty()) {
      throw std::invalid_argument("--shards: empty bank prefix in '" + entry +
                                  "'");
    }
    std::size_t pos = colon + 1;
    while (pos <= entry.size()) {
      const std::size_t comma = entry.find(',', pos);
      const std::string index = entry.substr(
          pos, comma == std::string::npos ? comma : comma - pos);
      pos = comma == std::string::npos ? entry.size() + 1 : comma + 1;
      if (index.empty() ||
          index.find_first_not_of("0123456789") != std::string::npos) {
        throw std::invalid_argument("--shards: bad shard index '" + index +
                                    "' in '" + entry + "'");
      }
      prefixes.push_back(psc::store::shard_prefix(
          bank, static_cast<std::size_t>(std::stoull(index))));
    }
  }
  if (prefixes.empty()) {
    throw std::invalid_argument("--shards: no prefixes in '" + spec + "'");
  }
  return prefixes;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace psc;

  util::ArgParser args("psc_serve",
                       "serve SearchService over the psc wire protocol");
  args.add_option("bind", "127.0.0.1", "listen address");
  args.add_option("port", "0", "listen port (0 = ephemeral; see --port-file)");
  args.add_option("port-file", "",
                  "write the bound port to this file once listening (for "
                  "scripts using --port=0)");
  args.add_option("bank-root", ".",
                  "directory bank prefixes resolve under; requests cannot "
                  "escape it");
  args.add_option("shards", "",
                  "serve only these prefixes: 'bank:0,1' expands shard "
                  "indices, ';' separates entries, a plain entry is a "
                  "literal prefix (empty = serve everything under "
                  "--bank-root)");
  args.add_option("max-resident", "4",
                  "resident (bank, index) pairs kept in the LRU cache");
  args.add_option("board-scheduler", "affinity",
                  "batch order for mixed-bank streams: 'affinity' serves "
                  "the bank already on the accelerator board first "
                  "(fewest board swaps), 'fifo' is strict arrival order; "
                  "results are byte-identical either way");
  args.add_option("drain-cap", "256",
                  "requests the worker takes per scheduling round (0 = "
                  "drain everything, the legacy behaviour)");
  args.add_option("starvation-rounds", "4",
                  "rounds a pending group may be passed over before the "
                  "aging guard forces it to run (0 = no guard)");
  args.add_option("tenant-config", "",
                  "per-tenant policy file ('tenant <name> weight=2 qps=10 "
                  "in-flight=8 resident-mb=64 hedges-per-sec=1' per line; "
                  "name 'default' sets the policy for unlisted tenants)");
  args.add_option("default-qps", "0",
                  "queries/sec quota for tenants without an explicit "
                  "policy row (0 = unlimited); overrides the file's "
                  "default qps when both are given");
  args.add_flag("fair-scheduler",
                "weighted-fair (deficit round-robin) batch order across "
                "tenants instead of pure bank-affinity/FIFO; admitted "
                "replies stay byte-identical");
  args.add_option("fair-quantum", "4096",
                  "DRR quantum in query residues credited per tenant per "
                  "scheduler visit (only with --fair-scheduler)");
  args.add_option("max-payload-mb", "64", "per-frame receive limit (MiB)");
  args.add_option("max-in-flight", "32",
                  "searches one connection may have unanswered");
  args.add_option("read-timeout", "30",
                  "seconds a peer may stall mid-frame before kTimeout");
  args.add_option("max-connections", "64", "concurrent connections accepted");
  core::add_pipeline_options(args, service::default_service_options());
  core::add_matrix_option(args);
  if (!args.parse(argc, argv)) return 1;

  service::ServiceConfig service_config;
  service_config.options = service::default_service_options();
  if (!core::parse_pipeline_options(args, service_config.options)) return 1;
  if (!core::parse_matrix_option(args, service_config.matrix)) return 1;
  {
    const std::int64_t max_resident = args.get_int("max-resident");
    if (max_resident < 0) {
      std::fprintf(stderr, "--max-resident must be >= 0\n");
      return 1;
    }
    service_config.max_resident = static_cast<std::size_t>(max_resident);
  }
  if (!service::parse_scheduler_policy(args.get("board-scheduler"),
                                       service_config.scheduler)) {
    std::fprintf(stderr,
                 "--board-scheduler must be 'affinity' or 'fifo' (got '%s')\n",
                 args.get("board-scheduler").c_str());
    return 1;
  }
  {
    const std::int64_t drain_cap = args.get_int("drain-cap");
    const std::int64_t starvation = args.get_int("starvation-rounds");
    if (drain_cap < 0 || starvation < 0) {
      std::fprintf(stderr,
                   "--drain-cap and --starvation-rounds must be >= 0\n");
      return 1;
    }
    service_config.max_drain_per_round = static_cast<std::size_t>(drain_cap);
    service_config.starvation_rounds =
        static_cast<std::uint64_t>(starvation);
  }
  if (!args.get("tenant-config").empty()) {
    try {
      service_config.tenants =
          service::load_tenant_config(args.get("tenant-config"));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "psc_serve: %s\n", e.what());
      return 1;
    }
  }
  {
    const double default_qps = args.get_double("default-qps");
    if (default_qps < 0.0) {
      std::fprintf(stderr, "--default-qps must be >= 0\n");
      return 1;
    }
    if (default_qps > 0.0) {
      service_config.tenants.default_policy.max_qps = default_qps;
    }
  }
  service_config.fair_scheduler = args.get_flag("fair-scheduler");
  {
    const std::int64_t quantum = args.get_int("fair-quantum");
    if (quantum <= 0) {
      std::fprintf(stderr, "--fair-quantum must be > 0\n");
      return 1;
    }
    service_config.fair_quantum = static_cast<std::uint64_t>(quantum);
  }
  // The service-global traceback setting is the serving default; remote
  // queries carry their own per-query value in the Search frame.
  service_config.options.with_traceback = true;

  net::ServerConfig server_config;
  server_config.bind_address = args.get("bind");
  server_config.bank_root = args.get("bank-root");
  const std::int64_t port = args.get_int("port");
  const std::int64_t payload_mb = args.get_int("max-payload-mb");
  const std::int64_t in_flight = args.get_int("max-in-flight");
  const std::int64_t connections = args.get_int("max-connections");
  const double read_timeout = args.get_double("read-timeout");
  if (port < 0 || port > 65535 || payload_mb <= 0 || in_flight <= 0 ||
      connections <= 0 || read_timeout <= 0.0) {
    std::fprintf(stderr,
                 "psc_serve: --port must be 0..65535 and the limit options "
                 "positive\n");
    return 1;
  }
  server_config.port = static_cast<std::uint16_t>(port);
  server_config.max_payload_bytes =
      static_cast<std::uint64_t>(payload_mb) << 20;
  server_config.max_in_flight = static_cast<std::size_t>(in_flight);
  server_config.max_connections = static_cast<std::size_t>(connections);
  server_config.read_timeout_seconds = read_timeout;
  if (!args.get("shards").empty()) {
    try {
      server_config.allowed_prefixes = parse_shards_spec(args.get("shards"));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "psc_serve: %s\n", e.what());
      return 1;
    }
  }

  try {
    service::SearchService service(service_config);
    net::Server server(service, server_config);
    server.start();
    std::fprintf(stderr,
                 "# psc_serve listening on %s:%u (bank root %s, backend %s)\n",
                 server_config.bind_address.c_str(), server.port(),
                 server_config.bank_root.c_str(),
                 core::backend_name(service_config.options.backend).c_str());
    if (!args.get("port-file").empty()) {
      std::ofstream out(args.get("port-file"));
      out << server.port() << "\n";
      if (!out) {
        std::fprintf(stderr, "psc_serve: cannot write %s\n",
                     args.get("port-file").c_str());
        return 1;
      }
    }

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::fprintf(stderr, "# psc_serve: shutting down\n");
    server.stop();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psc_serve: %s\n", e.what());
    return 1;
  }
}
