// Synthetic genome generation. Stands in for the paper's Human
// chromosome 1 (220 Mnt, NCBI Mar. 2008): an order-k Markov DNA sequence
// with controllable GC content, plus support for planting (reverse-)
// translated gene copies so the comparison stages have real homologies to
// find.
#pragma once

#include <cstdint>
#include <vector>

#include "bio/sequence.hpp"
#include "util/rng.hpp"

namespace psc::sim {

struct GenomeConfig {
  std::size_t length = 2'200'000;  ///< nucleotides (paper: 220e6; default 1%)
  double gc_content = 0.41;        ///< human-like GC fraction
  /// Weight of first-order Markov structure: 0 = i.i.d., 1 = strongly
  /// correlated dinucleotides (CpG suppression etc. are approximated).
  double markov_strength = 0.3;
  std::uint64_t seed = 1;
};

/// Record of a gene planted into a genome.
struct PlantedGene {
  std::size_t genome_begin = 0;  ///< first nucleotide of the coding region
  bool forward_strand = true;
  std::size_t protein_index = 0;  ///< which source protein it encodes
  std::size_t protein_length = 0;
};

/// Generates a random genome under the config.
bio::Sequence generate_genome(const GenomeConfig& config);

/// Reverse-translates `protein` into DNA using uniformly chosen synonymous
/// codons and writes it into `genome` at `position` (forward strand) or as
/// its reverse complement (reverse strand). The written region replaces
/// existing nucleotides; the caller guarantees it fits.
void plant_gene(bio::Sequence& genome, const bio::Sequence& protein,
                std::size_t position, bool forward_strand,
                util::Xoshiro256& rng);

/// Plants every protein of `bank` at random non-overlapping positions and
/// strands. Returns the plant records (sorted by position). Throws if the
/// genome is too small to fit them all with `spacing` nucleotides between
/// consecutive genes.
std::vector<PlantedGene> plant_bank(bio::Sequence& genome,
                                    const bio::SequenceBank& bank,
                                    util::Xoshiro256& rng,
                                    std::size_t spacing = 200);

}  // namespace psc::sim
