#include "sim/family_generator.hpp"

#include <stdexcept>
#include <string>

#include "sim/protein_generator.hpp"

namespace psc::sim {

FamilyBenchmark generate_families(const FamilyConfig& config) {
  if (config.members_per_family == 0) {
    throw std::invalid_argument("generate_families: empty families");
  }
  util::Xoshiro256 rng(config.seed);
  FamilyBenchmark out;
  out.members = bio::SequenceBank(bio::SequenceKind::kProtein);
  out.family_count = config.families;

  for (std::size_t f = 0; f < config.families; ++f) {
    const bio::Sequence ancestor = generate_protein(
        "fam" + std::to_string(f) + "-anc", config.ancestor_length, rng);
    for (std::size_t m = 0; m < config.members_per_family; ++m) {
      bio::Sequence member = mutate_protein(ancestor, config.divergence, rng);
      member = bio::Sequence(
          "fam" + std::to_string(f) + "-m" + std::to_string(m),
          bio::SequenceKind::kProtein,
          std::vector<std::uint8_t>(member.residues()));
      out.members.add(std::move(member));
      out.family_of.push_back(f);
    }
  }
  return out;
}

QueryTargetSplit split_queries(const FamilyBenchmark& benchmark,
                               std::size_t queries_per_family) {
  QueryTargetSplit out;
  out.queries = bio::SequenceBank(bio::SequenceKind::kProtein);
  out.targets = bio::SequenceBank(bio::SequenceKind::kProtein);

  std::vector<std::size_t> seen_in_family(benchmark.family_count, 0);
  for (std::size_t i = 0; i < benchmark.members.size(); ++i) {
    const std::size_t family = benchmark.family_of[i];
    bio::Sequence copy(benchmark.members[i].id(), bio::SequenceKind::kProtein,
                       std::vector<std::uint8_t>(benchmark.members[i].residues()));
    if (seen_in_family[family] < queries_per_family) {
      out.queries.add(std::move(copy));
      out.query_family.push_back(family);
    } else {
      out.targets.add(std::move(copy));
      out.target_family.push_back(family);
    }
    ++seen_in_family[family];
  }
  return out;
}

}  // namespace psc::sim
