// Synthetic protein banks standing in for the paper's selections from the
// NCBI non-redundant database (1K..30K proteins, average length ~335 aa).
// Residues follow the Robinson-Robinson background composition so seed
// statistics (index-list lengths, hence step-2 workload) match real
// protein data.
#pragma once

#include <cstdint>

#include "bio/sequence.hpp"
#include "util/rng.hpp"

namespace psc::sim {

struct ProteinBankConfig {
  std::size_t count = 1000;       ///< number of proteins
  std::size_t mean_length = 335;  ///< mean residues (nr average ~336 aa/protein)
  std::size_t min_length = 60;
  std::size_t max_length = 2000;
  std::uint64_t seed = 2;
  /// Identifier prefix; proteins are named "<prefix><index>".
  std::string id_prefix = "prot";
};

/// One random protein of exactly `length` residues.
bio::Sequence generate_protein(std::string id, std::size_t length,
                               util::Xoshiro256& rng);

/// A bank of random proteins; lengths are drawn from a clamped geometric-
/// like distribution around mean_length (real protein-length distributions
/// are right-skewed).
bio::SequenceBank generate_protein_bank(const ProteinBankConfig& config);

}  // namespace psc::sim
