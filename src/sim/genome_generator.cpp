#include "sim/genome_generator.hpp"

#include <array>
#include <stdexcept>

#include "bio/genetic_code.hpp"

namespace psc::sim {

namespace {

/// codons_for[aa] lists the packed codons translating to amino acid `aa`.
const std::array<std::vector<std::uint8_t>, bio::kNumAminoAcids>&
codons_by_residue() {
  static const auto kTable = [] {
    std::array<std::vector<std::uint8_t>, bio::kNumAminoAcids> table;
    const auto& code = bio::standard_genetic_code();
    for (std::uint8_t codon = 0; codon < 64; ++codon) {
      const bio::Residue aa = code[codon];
      if (aa < bio::kNumAminoAcids) table[aa].push_back(codon);
    }
    return table;
  }();
  return kTable;
}

void unpack_codon(std::uint8_t codon, std::uint8_t out[3]) {
  out[0] = static_cast<std::uint8_t>((codon >> 4) & 0x3);
  out[1] = static_cast<std::uint8_t>((codon >> 2) & 0x3);
  out[2] = static_cast<std::uint8_t>(codon & 0x3);
}

}  // namespace

bio::Sequence generate_genome(const GenomeConfig& config) {
  util::Xoshiro256 rng(config.seed);
  const double gc = config.gc_content;
  // Base composition: A=T=(1-gc)/2, C=G=gc/2, in ACGT code order.
  const std::array<double, 4> base = {(1.0 - gc) / 2.0, gc / 2.0, gc / 2.0,
                                      (1.0 - gc) / 2.0};

  // First-order transition rows: a blend of the base composition with a
  // simple dinucleotide bias (self-transition boost, CpG suppression),
  // weighted by markov_strength.
  std::array<std::array<double, 4>, 4> rows{};
  const double w = config.markov_strength;
  for (std::size_t prev = 0; prev < 4; ++prev) {
    double total = 0.0;
    for (std::size_t next = 0; next < 4; ++next) {
      double bias = (prev == next) ? 1.6 : 1.0;  // homopolymer runs
      if (prev == 1 && next == 2) bias = 0.25;   // CpG depletion
      rows[prev][next] = base[next] * ((1.0 - w) + w * bias);
      total += rows[prev][next];
    }
    // Turn into cumulative distribution for sampling.
    double acc = 0.0;
    for (std::size_t next = 0; next < 4; ++next) {
      acc += rows[prev][next] / total;
      rows[prev][next] = acc;
    }
  }
  std::array<double, 4> base_cum{};
  {
    double acc = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
      acc += base[i];
      base_cum[i] = acc;
    }
  }

  std::vector<std::uint8_t> data;
  data.reserve(config.length);
  std::uint8_t prev = 0;
  for (std::size_t i = 0; i < config.length; ++i) {
    const auto& cum = (i == 0) ? base_cum : rows[prev];
    const double u = rng.uniform();
    std::uint8_t next = 3;
    for (std::uint8_t c = 0; c < 4; ++c) {
      if (u < cum[c]) {
        next = c;
        break;
      }
    }
    data.push_back(next);
    prev = next;
  }
  return bio::Sequence("synthetic-genome", bio::SequenceKind::kDna,
                       std::move(data));
}

void plant_gene(bio::Sequence& genome, const bio::Sequence& protein,
                std::size_t position, bool forward_strand,
                util::Xoshiro256& rng) {
  const std::size_t nt_length = 3 * protein.size();
  if (position + nt_length > genome.size()) {
    throw std::out_of_range("plant_gene: gene does not fit in genome");
  }
  auto& data = genome.mutable_residues();
  const auto& codon_table = codons_by_residue();

  std::vector<std::uint8_t> gene;
  gene.reserve(nt_length);
  std::uint8_t nt[3];
  for (std::size_t i = 0; i < protein.size(); ++i) {
    bio::Residue aa = protein[i];
    if (aa >= bio::kNumAminoAcids) aa = 0;  // degrade ambiguity codes to A
    const auto& codons = codon_table[aa];
    unpack_codon(codons[rng.bounded(codons.size())], nt);
    gene.push_back(nt[0]);
    gene.push_back(nt[1]);
    gene.push_back(nt[2]);
  }

  if (forward_strand) {
    for (std::size_t i = 0; i < nt_length; ++i) data[position + i] = gene[i];
  } else {
    // Write the reverse complement so the reverse strand reads the gene.
    for (std::size_t i = 0; i < nt_length; ++i) {
      data[position + i] = bio::complement(gene[nt_length - 1 - i]);
    }
  }
}

std::vector<PlantedGene> plant_bank(bio::Sequence& genome,
                                    const bio::SequenceBank& bank,
                                    util::Xoshiro256& rng,
                                    std::size_t spacing) {
  std::size_t needed = 0;
  for (const auto& protein : bank) needed += 3 * protein.size() + spacing;
  if (needed > genome.size()) {
    throw std::invalid_argument("plant_bank: genome too small for bank");
  }

  // Distribute the slack as random inter-gene gaps, keeping order fixed.
  const std::size_t slack = genome.size() - needed;
  std::vector<PlantedGene> plants;
  plants.reserve(bank.size());
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < bank.size(); ++i) {
    cursor += spacing / 2 + rng.bounded(slack / bank.size() + 1);
    const bool forward = rng.chance(0.5);
    const std::size_t nt_length = 3 * bank[i].size();
    if (cursor + nt_length > genome.size()) {
      cursor = genome.size() - nt_length;  // clamp the final stragglers
    }
    plant_gene(genome, bank[i], cursor, forward, rng);
    plants.push_back(PlantedGene{cursor, forward, i, bank[i].size()});
    cursor += nt_length + spacing / 2;
  }
  return plants;
}

}  // namespace psc::sim
