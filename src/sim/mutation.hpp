// Protein mutation model for building homolog families: substitutions are
// drawn proportionally to exp(BLOSUM62 score) against the original residue
// (so conservative replacements dominate, as in real divergence), and
// short indels occur at a configurable rate. Used to derive family members
// from ancestor proteins and mutated gene copies for planting.
#pragma once

#include <cstdint>

#include "bio/sequence.hpp"
#include "util/rng.hpp"

namespace psc::sim {

struct MutationConfig {
  /// Per-residue probability of substitution (0.3 ~= distant homolog).
  double substitution_rate = 0.2;
  /// Per-residue probability of starting an indel.
  double indel_rate = 0.01;
  /// Indel lengths are 1 + geometric(indel_extend).
  double indel_extend = 0.5;
  /// Temperature for the BLOSUM-conditioned substitution distribution;
  /// higher = more conservative replacements.
  double conservation = 1.0;
};

/// Returns a mutated copy of `protein` (id gets a "|mut" suffix).
bio::Sequence mutate_protein(const bio::Sequence& protein,
                             const MutationConfig& config,
                             util::Xoshiro256& rng);

/// Expected fraction of identical residues after mutation (ignoring
/// indels): 1 - substitution_rate * (1 - P[self-replacement]).
double expected_identity(const MutationConfig& config);

}  // namespace psc::sim
