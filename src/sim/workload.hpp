// Factory for scaled replicas of the paper's evaluation workload
// (section 4): the Human chromosome 1 (220 Mnt) versus four protein banks
// of 1,000 / 3,000 / 10,000 / 30,000 nr proteins. Sizes scale by a single
// factor (default 1/100) so every table bench runs in seconds on a laptop
// while preserving the relative bank sizes that drive the paper's trends.
//
// A fraction of each bank's proteins get mutated gene copies planted in
// the genome, so the extension stages find true homologies rather than
// only random seed noise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bio/sequence.hpp"
#include "sim/genome_generator.hpp"
#include "sim/mutation.hpp"

namespace psc::sim {

struct ScaledWorkloadConfig {
  double scale = 0.01;  ///< fraction of the paper's data sizes
  /// Optional separate scale for the protein banks (0 = use `scale`).
  /// The PE-array utilization trends of Tables 2-4 are driven by the
  /// index-list depths of the *bank* side, so benches keep banks larger
  /// than the genome when both cannot be full-size.
  double bank_scale = 0.0;
  std::uint64_t seed = 42;
  /// Fraction of bank proteins that receive a planted homolog in the
  /// genome.
  double planted_fraction = 0.15;
  /// Divergence applied to planted copies (default ~75% identity).
  MutationConfig plant_divergence{.substitution_rate = 0.25,
                                  .indel_rate = 0.01,
                                  .indel_extend = 0.5,
                                  .conservation = 1.0};
  /// Minimum ORF fragment length when splitting translated frames.
  std::size_t orf_min_length = 20;
};

struct PaperBank {
  std::string label;            ///< the paper's name for it: "1K" .. "30K"
  std::size_t paper_count = 0;  ///< the paper's bank size
  bio::SequenceBank proteins;   ///< our scaled bank
};

struct PaperWorkload {
  bio::Sequence genome;           ///< synthetic chromosome with planted genes
  bio::SequenceBank genome_bank;  ///< six-frame translation, split at stops
  std::vector<PaperBank> banks;   ///< nested scaled banks (1K is a prefix of 3K, ...)
  std::size_t planted_genes = 0;
};

/// Builds the full workload. Banks are nested (the "1K" bank is a prefix
/// of the "3K" bank and so on), matching the monotone-growth structure of
/// the paper's experiments.
PaperWorkload build_paper_workload(const ScaledWorkloadConfig& config);

/// Reads the PSC_SCALE environment variable: "small" (0.01, default),
/// "medium" (0.05), "large" (0.2), or a literal fraction such as "0.5".
double scale_from_env();

/// The paper's bank sizes, in order: 1,000 / 3,000 / 10,000 / 30,000.
const std::vector<std::pair<std::string, std::size_t>>& paper_bank_sizes();

/// The paper's genome size in nucleotides (220e6).
std::size_t paper_genome_size();

}  // namespace psc::sim
