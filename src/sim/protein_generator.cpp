#include "sim/protein_generator.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace psc::sim {

namespace {
const std::array<double, bio::kNumAminoAcids>& residue_cumulative() {
  static const auto kCum = [] {
    std::array<double, bio::kNumAminoAcids> cum{};
    double acc = 0.0;
    const auto& freq = bio::robinson_frequencies();
    for (std::size_t i = 0; i < freq.size(); ++i) {
      acc += freq[i];
      cum[i] = acc;
    }
    cum.back() = 1.0 + 1e-12;  // guard against rounding at the tail
    return cum;
  }();
  return kCum;
}
}  // namespace

bio::Sequence generate_protein(std::string id, std::size_t length,
                               util::Xoshiro256& rng) {
  const auto& cum = residue_cumulative();
  std::vector<std::uint8_t> data;
  data.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    const double u = rng.uniform();
    std::size_t r = 0;
    while (r + 1 < cum.size() && u >= cum[r]) ++r;
    data.push_back(static_cast<std::uint8_t>(r));
  }
  return bio::Sequence(std::move(id), bio::SequenceKind::kProtein,
                       std::move(data));
}

bio::SequenceBank generate_protein_bank(const ProteinBankConfig& config) {
  util::Xoshiro256 rng(config.seed);
  bio::SequenceBank bank(bio::SequenceKind::kProtein);
  for (std::size_t i = 0; i < config.count; ++i) {
    // Right-skewed length model: exponential around the mean, clamped.
    const double u = std::max(rng.uniform(), 1e-12);
    const double raw =
        static_cast<double>(config.mean_length) * (-std::log(u));
    const std::size_t length = std::clamp<std::size_t>(
        static_cast<std::size_t>(raw), config.min_length, config.max_length);
    bank.add(generate_protein(config.id_prefix + std::to_string(i), length,
                              rng));
  }
  return bank;
}

}  // namespace psc::sim
