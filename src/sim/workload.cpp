#include "sim/workload.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "bio/translate.hpp"
#include "sim/protein_generator.hpp"
#include "util/logging.hpp"

namespace psc::sim {

const std::vector<std::pair<std::string, std::size_t>>& paper_bank_sizes() {
  static const std::vector<std::pair<std::string, std::size_t>> kSizes = {
      {"1K", 1000}, {"3K", 3000}, {"10K", 10000}, {"30K", 30000}};
  return kSizes;
}

std::size_t paper_genome_size() { return 220'000'000; }

double scale_from_env() {
  const char* env = std::getenv("PSC_SCALE");
  if (env == nullptr || *env == '\0') return 0.01;
  const std::string value(env);
  if (value == "small") return 0.01;
  if (value == "medium") return 0.05;
  if (value == "large") return 0.2;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end != value.c_str() && parsed > 0.0 && parsed <= 1.0) return parsed;
  util::log_warn() << "PSC_SCALE='" << value << "' not understood; using small (0.01)";
  return 0.01;
}

PaperWorkload build_paper_workload(const ScaledWorkloadConfig& config) {
  if (config.scale <= 0.0 || config.scale > 1.0) {
    throw std::invalid_argument("build_paper_workload: scale must be in (0,1]");
  }
  const double bank_scale =
      config.bank_scale > 0.0 ? config.bank_scale : config.scale;
  if (bank_scale > 1.0) {
    throw std::invalid_argument("build_paper_workload: bank_scale > 1");
  }
  util::Xoshiro256 rng(config.seed);

  // Largest bank first; smaller banks are prefixes of it.
  const auto& sizes = paper_bank_sizes();
  const std::size_t largest = std::max<std::size_t>(
      4, static_cast<std::size_t>(static_cast<double>(sizes.back().second) *
                                  bank_scale));
  ProteinBankConfig bank_config;
  bank_config.count = largest;
  bank_config.seed = rng();
  bio::SequenceBank all_proteins = generate_protein_bank(bank_config);

  PaperWorkload out;

  // Genome with planted homologs of a sample of the bank.
  GenomeConfig genome_config;
  genome_config.length = std::max<std::size_t>(
      50'000, static_cast<std::size_t>(
                  static_cast<double>(paper_genome_size()) * config.scale));
  genome_config.seed = rng();
  out.genome = generate_genome(genome_config);

  bio::SequenceBank planted(bio::SequenceKind::kProtein);
  util::Xoshiro256 plant_rng(rng());
  for (std::size_t i = 0; i < all_proteins.size(); ++i) {
    if (!plant_rng.chance(config.planted_fraction)) continue;
    bio::Sequence copy =
        mutate_protein(all_proteins[i], config.plant_divergence, plant_rng);
    // Cap planted gene length so small genomes can hold the sample.
    if (copy.size() > 600) copy = copy.subsequence(0, 600);
    planted.add(std::move(copy));
  }
  if (!planted.empty()) {
    out.planted_genes = plant_bank(out.genome, planted, plant_rng).size();
  }

  // Six-frame translation, split at stop codons (tblastn-style).
  out.genome_bank =
      bio::frames_to_bank(bio::translate_six_frames(out.genome),
                          config.orf_min_length);

  // Nested scaled banks.
  for (const auto& [label, paper_count] : sizes) {
    PaperBank bank;
    bank.label = label;
    bank.paper_count = paper_count;
    const std::size_t scaled = std::max<std::size_t>(
        2, static_cast<std::size_t>(static_cast<double>(paper_count) *
                                    bank_scale));
    const std::size_t take = std::min(scaled, all_proteins.size());
    bank.proteins = bio::SequenceBank(bio::SequenceKind::kProtein);
    for (std::size_t i = 0; i < take; ++i) {
      bank.proteins.add(bio::Sequence(
          all_proteins[i].id(), bio::SequenceKind::kProtein,
          std::vector<std::uint8_t>(all_proteins[i].residues())));
    }
    out.banks.push_back(std::move(bank));
  }
  return out;
}

}  // namespace psc::sim
