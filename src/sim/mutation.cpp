#include "sim/mutation.hpp"

#include <array>
#include <cmath>

#include "bio/substitution_matrix.hpp"

namespace psc::sim {

namespace {

/// Cumulative substitution distributions: row r gives the distribution of
/// replacement residues for original residue r, proportional to
/// p_j * exp(conservation * blosum62(r, j)) over j != r.
struct SubstitutionModel {
  std::array<std::array<double, bio::kNumAminoAcids>, bio::kNumAminoAcids> cum{};
  std::array<double, bio::kNumAminoAcids> self_weight{};

  explicit SubstitutionModel(double conservation) {
    const auto& matrix = bio::SubstitutionMatrix::blosum62();
    const auto& freq = bio::robinson_frequencies();
    for (std::size_t r = 0; r < bio::kNumAminoAcids; ++r) {
      double acc = 0.0;
      for (std::size_t j = 0; j < bio::kNumAminoAcids; ++j) {
        if (j != r) {
          acc += freq[j] * std::exp(conservation *
                                    matrix.score(static_cast<bio::Residue>(r),
                                                 static_cast<bio::Residue>(j)));
        }
        cum[r][j] = acc;
      }
      for (std::size_t j = 0; j < bio::kNumAminoAcids; ++j) cum[r][j] /= acc;
    }
  }
};

}  // namespace

bio::Sequence mutate_protein(const bio::Sequence& protein,
                             const MutationConfig& config,
                             util::Xoshiro256& rng) {
  // The model object is cheap relative to mutating whole banks; rebuild
  // when the conservation parameter changes.
  static thread_local double cached_conservation = -1.0;
  static thread_local SubstitutionModel* model = nullptr;
  if (model == nullptr || cached_conservation != config.conservation) {
    delete model;
    model = new SubstitutionModel(config.conservation);
    cached_conservation = config.conservation;
  }

  std::vector<std::uint8_t> out;
  out.reserve(protein.size() + 8);
  const auto& freq_cum = [] {
    std::array<double, bio::kNumAminoAcids> cum{};
    double acc = 0.0;
    for (std::size_t i = 0; i < bio::kNumAminoAcids; ++i) {
      acc += bio::robinson_frequencies()[i];
      cum[i] = acc;
    }
    return cum;
  }();

  auto sample_background = [&]() -> std::uint8_t {
    const double u = rng.uniform() * freq_cum.back();
    std::size_t r = 0;
    while (r + 1 < freq_cum.size() && u >= freq_cum[r]) ++r;
    return static_cast<std::uint8_t>(r);
  };

  for (std::size_t i = 0; i < protein.size(); ++i) {
    if (rng.chance(config.indel_rate)) {
      std::size_t len = 1;
      while (rng.chance(config.indel_extend)) ++len;
      if (rng.chance(0.5)) {
        // Deletion: skip `len` residues (including this one).
        i += len - 1;
        continue;
      }
      // Insertion of `len` background residues before this one.
      for (std::size_t k = 0; k < len; ++k) out.push_back(sample_background());
    }

    std::uint8_t residue = protein[i];
    if (residue < bio::kNumAminoAcids && rng.chance(config.substitution_rate)) {
      const auto& cum = model->cum[residue];
      const double u = rng.uniform();
      std::size_t j = 0;
      while (j + 1 < cum.size() && u >= cum[j]) ++j;
      residue = static_cast<std::uint8_t>(j);
    }
    out.push_back(residue);
  }

  return bio::Sequence(protein.id() + "|mut", bio::SequenceKind::kProtein,
                       std::move(out));
}

double expected_identity(const MutationConfig& config) {
  // Substituted residues are always changed (self excluded from the
  // replacement distribution), so identity is simply 1 - rate.
  return 1.0 - config.substitution_rate;
}

}  // namespace psc::sim
