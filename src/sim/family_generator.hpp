// Protein family benchmark generation, standing in for the curated
// 102-query yeast benchmark of Gertz et al. used in the paper's section
// 4.4: families of homologous proteins are derived from random ancestors
// by mutation; some members become queries, others are planted in a
// genome; ground truth is the family label.
#pragma once

#include <cstdint>
#include <vector>

#include "bio/sequence.hpp"
#include "sim/genome_generator.hpp"
#include "sim/mutation.hpp"
#include "util/rng.hpp"

namespace psc::sim {

struct FamilyConfig {
  std::size_t families = 20;          ///< number of families
  std::size_t members_per_family = 6; ///< homologs per family
  std::size_t ancestor_length = 300;  ///< residues per ancestor
  MutationConfig divergence;          ///< applied ancestor -> member
  std::uint64_t seed = 7;
};

struct FamilyBenchmark {
  /// All family members; member i belongs to family family_of[i].
  bio::SequenceBank members;
  std::vector<std::size_t> family_of;
  std::size_t family_count = 0;
};

/// Generates the family members (no genome involvement).
FamilyBenchmark generate_families(const FamilyConfig& config);

/// Splits a benchmark into queries (the first `queries_per_family`
/// members of each family) and targets (the rest). Family labels follow.
struct QueryTargetSplit {
  bio::SequenceBank queries;
  std::vector<std::size_t> query_family;
  bio::SequenceBank targets;
  std::vector<std::size_t> target_family;
};
QueryTargetSplit split_queries(const FamilyBenchmark& benchmark,
                               std::size_t queries_per_family);

}  // namespace psc::sim
