// Runtime CPU capability detection for the host step-2 kernel dispatch.
//
// The SIMD ungapped kernel (align/ungapped_simd.hpp) ships three tiers:
// an AVX2 path scoring 16 windows per vector, a portable autovectorizable
// path, and the scalar/blocked reference. Which tier actually runs is a
// property of the machine the binary lands on, not of the build, so the
// choice is made once at startup from CPUID-style feature queries rather
// than from compile-time macros -- the same binary degrades gracefully
// from AVX2 down to scalar.
#pragma once

namespace psc::align {

/// Instruction-set tiers the SIMD kernel can target, best last.
enum class SimdTier {
  kScalarOnly,  ///< no usable vector unit detected
  kPortable,    ///< compiler-autovectorized lanes (SSE2/NEON-class)
  kAvx2,        ///< 256-bit AVX2 path (x86 only)
};

/// CPU features relevant to the kernel tiers. Queried once and cached.
struct CpuFeatures {
  bool sse2 = false;
  bool ssse3 = false;
  bool sse41 = false;
  bool avx2 = false;
};

/// The host CPU's features (first call probes, later calls are free).
const CpuFeatures& cpu_features() noexcept;

/// Best kernel tier this process can execute.
SimdTier best_simd_tier() noexcept;

/// Human-readable tier name ("avx2", "portable", "scalar").
const char* simd_tier_name(SimdTier tier) noexcept;

}  // namespace psc::align
