// AVX2 tier of the step-3 gapped kernels. Same TU discipline as
// ungapped_avx2.cpp: per-function target("avx2") attributes so the rest
// of the library builds for the baseline ISA; align/cpu_features.hpp
// gates entry at runtime.
//
// Both kernels run rows of the Gotoh recurrence in 16 x 16-bit biased
// unsigned lanes (see gapped_simd.hpp for the exactness argument). The
// intra-row E dependency is resolved with the lazy-E decayed prefix-max:
// within a 16-lane block by log-step shift-maxes, across blocks by a
// scalar carry from lane 15. Buffers are +1-offset (index 0 is a
// permanent sentinel) and over-allocated so unaligned block loads and
// stores never leave the allocation; lanes past the live range carry
// junk that is either masked (banded best) or simply never read (the
// xdrop scan stops at row_hi), and one position past each row's live
// range is cleared so the next row's loads see sentinels instead of
// stale cells from two rows ago.
#include "align/gapped_simd.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)

#include <immintrin.h>

#include <algorithm>
#include <vector>

namespace psc::align {

bool gapped_avx2_available() noexcept {
  const CpuFeatures& features = cpu_features();
  return features.avx2 && features.ssse3 && features.sse41;
}

namespace {

constexpr std::uint32_t kBias = 32768;
constexpr int kGuardBest = 32767 - 256;

inline std::uint32_t sub_sat32(std::uint32_t v, std::uint32_t c) {
  return v > c ? v - c : 0;
}

/// Shift every 16-bit lane up by kBytes/2 positions, zero-filling from
/// the bottom (the zero fill is the domain's -inf sentinel).
template <int kBytes>
__attribute__((target("avx2"))) inline __m256i shift_up(__m256i x) {
  const __m256i permuted = _mm256_permute2x128_si256(x, x, 0x08);
  if constexpr (kBytes == 16) {
    return permuted;
  } else {
    return _mm256_alignr_epi8(x, permuted, 16 - kBytes);
  }
}

/// 32-entry bias-128 row lookup for 16 residues: shuffle both 16-byte
/// halves, select by residue >= 16, widen unsigned to 16-bit.
__attribute__((target("avx2"))) inline __m256i lookup_row16(
    const std::uint8_t* row, const std::uint8_t* residues) {
  const __m128i resid =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(residues));
  const __m128i row_lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(row));
  const __m128i row_hi =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + 16));
  const __m128i hi_sel = _mm_cmpgt_epi8(resid, _mm_set1_epi8(15));
  const __m128i vals8 = _mm_blendv_epi8(_mm_shuffle_epi8(row_lo, resid),
                                        _mm_shuffle_epi8(row_hi, resid), hi_sel);
  return _mm256_cvtepu8_epi16(vals8);
}

struct GapVectors {
  __m256i go, ge1, ge2, ge4, ge8, bias128;
  std::uint32_t go_s, ge_s;

  __attribute__((target("avx2"))) explicit GapVectors(const GapParams& params) {
    go_s = static_cast<std::uint32_t>(params.open + params.extend);
    ge_s = static_cast<std::uint32_t>(params.extend);
    go = _mm256_set1_epi16(static_cast<short>(go_s));
    ge1 = _mm256_set1_epi16(static_cast<short>(ge_s));
    ge2 = _mm256_set1_epi16(static_cast<short>(2 * ge_s));
    ge4 = _mm256_set1_epi16(static_cast<short>(4 * ge_s));
    ge8 = _mm256_set1_epi16(static_cast<short>(8 * ge_s));
    bias128 = _mm256_set1_epi16(128);
  }
};

/// E lanes for one block from the candidate-only sources `c` (lane l =
/// C(j0+l)) and the previous block's lane-15 carries: the decayed
/// prefix-max E(j0+l) = max_{k<=l}(t0(k) - (l-k)*extend) with t0(0) =
/// E(j0) and t0(l>=1) = C(j0+l-1) - (open+extend).
__attribute__((target("avx2"))) inline __m256i lazy_e_block(
    __m256i c, std::uint32_t carry_c, std::uint32_t carry_e,
    const GapVectors& gv) {
  __m256i t = shift_up<2>(_mm256_subs_epu16(c, gv.go));
  const std::uint32_t e0 =
      std::max(sub_sat32(carry_c, gv.go_s), sub_sat32(carry_e, gv.ge_s));
  t = _mm256_insert_epi16(t, static_cast<short>(e0), 0);
  t = _mm256_max_epu16(t, _mm256_subs_epu16(shift_up<2>(t), gv.ge1));
  t = _mm256_max_epu16(t, _mm256_subs_epu16(shift_up<4>(t), gv.ge2));
  t = _mm256_max_epu16(t, _mm256_subs_epu16(shift_up<8>(t), gv.ge4));
  t = _mm256_max_epu16(t, _mm256_subs_epu16(shift_up<16>(t), gv.ge8));
  return t;
}

__attribute__((target("avx2"))) inline std::uint32_t horizontal_max_epu16(
    __m256i v) {
  __m128i m = _mm_max_epu16(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  m = _mm_max_epu16(m, _mm_srli_si128(m, 8));
  m = _mm_max_epu16(m, _mm_srli_si128(m, 4));
  m = _mm_max_epu16(m, _mm_srli_si128(m, 2));
  return static_cast<std::uint32_t>(_mm_extract_epi16(m, 0));
}

}  // namespace

__attribute__((target("avx2"))) std::optional<HalfExtension>
xdrop_gapped_half_avx2(std::span<const std::uint8_t> a,
                       std::span<const std::uint8_t> b,
                       const GappedSimdMatrix& rows, const GapParams& params) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  HalfExtension out;
  if (n == 0 || m == 0) return out;

  const GapVectors gv(params);
  const auto x = static_cast<std::uint32_t>(params.x_drop);

  // +1-offset buffers: index j + 1 holds logical column j, index 0 is a
  // permanent sentinel; padded so 16-lane loads/stores at the last live
  // block stay inside the allocation.
  const std::size_t cap = m + 2 + 32;
  std::vector<std::uint16_t> h_prev(cap, 0), f_prev(cap, 0);
  std::vector<std::uint16_t> h_cur(cap, 0), f_cur(cap, 0);
  std::vector<std::uint16_t> cand(cap, 0);
  std::vector<std::uint8_t> bbuf(m + 1 + 32, 0);
  std::copy(b.begin(), b.end(), bbuf.begin() + 1);

  int best = 0;
  std::size_t best_i = 0, best_j = 0;

  // Row 0 (scalar, one row): store-then-break like the reference.
  std::size_t lo = 0, hi = 0;
  h_prev[1] = kBias;
  {
    std::uint32_t e = 0;
    for (std::size_t j = 1; j <= m; ++j) {
      e = std::max(sub_sat32(h_prev[j], gv.go_s), sub_sat32(e, gv.ge_s));
      h_prev[j + 1] = static_cast<std::uint16_t>(e);
      if (e < kBias - x) break;
      hi = j;
    }
  }

  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t row_lo = lo;
    const std::size_t row_hi = std::min(hi + 1, m);
    const std::uint8_t* row = rows.row(a[i - 1]);

    // Phase 1: prune-free candidates + F for every block of the range.
    std::uint32_t carry_c = 0, carry_e = 0;
    for (std::size_t j0 = row_lo; j0 <= row_hi; j0 += 16) {
      const __m256i hdiag = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(h_prev.data() + j0));
      const __m256i habove = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(h_prev.data() + j0 + 1));
      const __m256i fabove = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(f_prev.data() + j0 + 1));
      const __m256i fv = _mm256_max_epu16(_mm256_subs_epu16(habove, gv.go),
                                          _mm256_subs_epu16(fabove, gv.ge1));
      const __m256i vals = lookup_row16(row, bbuf.data() + j0);
      const __m256i diag = _mm256_subs_epu16(_mm256_adds_epu16(hdiag, vals),
                                             gv.bias128);
      const __m256i c = _mm256_max_epu16(fv, diag);
      const __m256i ev = lazy_e_block(c, carry_c, carry_e, gv);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(f_cur.data() + j0 + 1),
                          fv);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(cand.data() + j0 + 1),
                          _mm256_max_epu16(c, ev));
      carry_c = static_cast<std::uint32_t>(
          static_cast<std::uint16_t>(_mm256_extract_epi16(c, 15)));
      carry_e = static_cast<std::uint32_t>(
          static_cast<std::uint16_t>(_mm256_extract_epi16(ev, 15)));
    }

    // Phase 2: scan-order prune / best updates, exactly the scalar
    // interleaving (prune-free candidates only differ where they are
    // pruned anyway -- see the header's two-pass argument).
    std::size_t new_lo = row_hi + 1;
    std::size_t new_hi = 0;
    bool any_live = false;
    std::uint32_t threshold = kBias + static_cast<std::uint32_t>(best) - x;
    for (std::size_t j = row_lo; j <= row_hi; ++j) {
      const std::uint32_t value = cand[j + 1];
      if (value < threshold) {
        h_cur[j + 1] = 0;
        continue;
      }
      h_cur[j + 1] = static_cast<std::uint16_t>(value);
      any_live = true;
      new_lo = std::min(new_lo, j);
      new_hi = j;
      if (value > kBias + static_cast<std::uint32_t>(best)) {
        best = static_cast<int>(value - kBias);
        best_i = i;
        best_j = j;
        threshold = value - x;
      }
    }
    // One position past the live range (the next row reads at most that
    // far) and one before it (diagonal source of the next row's first
    // column) must read as sentinels, not stale cells.
    h_cur[row_hi + 2] = 0;
    f_cur[row_hi + 2] = 0;
    h_cur[row_lo] = 0;
    f_cur[row_lo] = 0;
    if (!any_live) break;
    if (best >= kGuardBest) return std::nullopt;
    lo = new_lo;
    hi = new_hi;
    std::swap(h_prev, h_cur);
    std::swap(f_prev, f_cur);
  }

  out.score = best;
  out.end0 = best_i;
  out.end1 = best_j;
  return out;
}

__attribute__((target("avx2"))) std::optional<int> banded_window_score_avx2(
    std::span<const std::uint8_t> s0, std::span<const std::uint8_t> s1,
    std::size_t band, const GapParams& params, const GappedSimdMatrix& rows) {
  const std::size_t n = std::min(s0.size(), s1.size());
  if (n == 0) return 0;

  const GapVectors gv(params);
  const __m256i bias_v = _mm256_set1_epi16(static_cast<short>(kBias));
  const __m256i lane_idx =
      _mm256_setr_epi16(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);

  const std::size_t cap = n + 2 + 32;
  std::vector<std::uint16_t> h_prev(cap, 0), f_prev(cap, 0);
  std::vector<std::uint16_t> h_cur(cap, 0), f_cur(cap, 0);
  std::vector<std::uint8_t> bbuf(n + 1 + 32, 0);
  std::copy(s1.begin(), s1.begin() + static_cast<std::ptrdiff_t>(n),
            bbuf.begin() + 1);

  for (std::size_t j = 0; j <= std::min(band, n); ++j) {
    h_prev[j + 1] = kBias;
  }

  __m256i vbest = bias_v;
  std::uint32_t best = kBias;
  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t lo = i > band ? i - band : 0;
    const std::size_t hi = std::min(n, i + band);
    const std::uint8_t* row = rows.row(s0[i - 1]);

    std::uint32_t carry_c = 0, carry_e = 0;
    for (std::size_t j0 = lo; j0 <= hi; j0 += 16) {
      const __m256i hdiag = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(h_prev.data() + j0));
      const __m256i habove = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(h_prev.data() + j0 + 1));
      const __m256i fabove = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(f_prev.data() + j0 + 1));
      const __m256i fv = _mm256_max_epu16(_mm256_subs_epu16(habove, gv.go),
                                          _mm256_subs_epu16(fabove, gv.ge1));
      const __m256i vals = lookup_row16(row, bbuf.data() + j0);
      const __m256i diag = _mm256_subs_epu16(_mm256_adds_epu16(hdiag, vals),
                                             gv.bias128);
      // Local-alignment clamp folded into the candidate: C = max(F,
      // diag, 0); the lazy-E source is then exactly the stored cell.
      const __m256i c =
          _mm256_max_epu16(_mm256_max_epu16(fv, diag), bias_v);
      const __m256i ev = lazy_e_block(c, carry_c, carry_e, gv);
      const __m256i stored = _mm256_max_epu16(c, ev);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(f_cur.data() + j0 + 1),
                          fv);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(h_cur.data() + j0 + 1),
                          stored);
      const std::size_t valid = hi - j0 + 1;
      if (valid >= 16) {
        vbest = _mm256_max_epu16(vbest, stored);
      } else {
        // Junk lanes past the band can look real (their diagonal source
        // may be a live cell); mask them out of the running best.
        const __m256i mask = _mm256_cmpgt_epi16(
            _mm256_set1_epi16(static_cast<short>(valid)), lane_idx);
        vbest = _mm256_max_epu16(vbest, _mm256_and_si256(stored, mask));
      }
      carry_c = static_cast<std::uint32_t>(
          static_cast<std::uint16_t>(_mm256_extract_epi16(c, 15)));
      carry_e = static_cast<std::uint32_t>(
          static_cast<std::uint16_t>(_mm256_extract_epi16(ev, 15)));
    }
    // Clear one block past the band edge so the next row's loads (which
    // reach one block past its own edge) see sentinels, not junk stores.
    for (std::size_t t = hi + 1; t <= hi + 16; ++t) {
      h_cur[t + 1] = 0;
      f_cur[t + 1] = 0;
    }
    best = horizontal_max_epu16(vbest);
    if (static_cast<int>(best - kBias) >= kGuardBest) return std::nullopt;
    std::swap(h_prev, h_cur);
    std::swap(f_prev, f_cur);
  }
  return static_cast<int>(best - kBias);
}

}  // namespace psc::align

#endif  // x86 && GNUC
