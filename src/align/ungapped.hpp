// The paper's ungapped-extension kernel (section 2.2): given two
// fixed-length windows around a shared seed, compute the maximal score of
// a contiguous segment under a substitution matrix -- a one-dimensional
// Smith-Waterman pass (running sum clamped at zero, track the maximum).
// This is exactly the add/max datapath each PSC processing element
// implements in W + 2N clock cycles, so the scalar routine here is the
// golden reference the cycle simulator is tested against.
//
// Note on the paper's pseudocode: the listing reads
//     score = max(score, score + Sub[S0[k]][S1[k]])
// which, taken literally, would sum only the positive substitution costs.
// The intended (and hardware-meaningful) recurrence is the classic
//     score = max(0, score + Sub[S0[k]][S1[k]])
// i.e. the best-scoring contiguous run; we implement that.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bio/substitution_matrix.hpp"
#include "index/neighborhood.hpp"

namespace psc::align {

/// Maximal contiguous-segment score of the two equal-length windows.
int ungapped_window_score(std::span<const std::uint8_t> s0,
                          std::span<const std::uint8_t> s1,
                          const bio::SubstitutionMatrix& matrix) noexcept;

/// One-versus-many form mirroring a processing element's duty: one IL0
/// window against every window of an IL1 batch. Scores are appended to
/// `scores` (resized to batch.size()).
void ungapped_score_one_vs_many(std::span<const std::uint8_t> s0,
                                const index::WindowBatch& batch,
                                const bio::SubstitutionMatrix& matrix,
                                std::vector<int>& scores);

/// Blocked one-versus-many: identical results to the scalar form, but
/// scores four IL1 windows per pass with independent accumulators so the
/// substitution-row load for s0[k] is shared and the adds/max pipeline
/// across windows -- the software analogue of the PE array's SIMD
/// parallelism, and the kernel the host step-2 backends run.
void ungapped_score_one_vs_many_blocked(std::span<const std::uint8_t> s0,
                                        const index::WindowBatch& batch,
                                        const bio::SubstitutionMatrix& matrix,
                                        std::vector<int>& scores);

/// All-pairs form used by the host step-2 backends: every IL0 window
/// against every IL1 window; `emit(i0, i1, score)` is called for each pair
/// whose score is >= threshold. Kept in one translation unit so the
/// compiler can keep the substitution row in cache across the inner loop.
template <typename Emit>
void ungapped_score_all_pairs(const index::WindowBatch& batch0,
                              const index::WindowBatch& batch1,
                              const bio::SubstitutionMatrix& matrix,
                              int threshold, Emit&& emit) {
  const std::size_t len = batch0.window_length();
  // Window residues come from the encoder (always < 24), so raw matrix
  // indexing is safe and keeps this inner loop -- 97% of the software
  // pipeline's time -- branch-light.
  const auto* cells = matrix.cells().data();
  for (std::size_t i0 = 0; i0 < batch0.size(); ++i0) {
    const std::uint8_t* a = batch0.window(i0).data();
    for (std::size_t i1 = 0; i1 < batch1.size(); ++i1) {
      const std::uint8_t* b = batch1.window(i1).data();
      int score = 0;
      int best = 0;
      for (std::size_t k = 0; k < len; ++k) {
        score += cells[a[k] * bio::kProteinAlphabetSize + b[k]];
        if (score < 0) score = 0;
        if (score > best) best = score;
      }
      if (best >= threshold) emit(i0, i1, best);
    }
  }
}

}  // namespace psc::align
