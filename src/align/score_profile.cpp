#include "align/score_profile.hpp"

#include <stdexcept>

namespace psc::align {

bool ScoreProfile::representable(
    const bio::SubstitutionMatrix& matrix) noexcept {
  return matrix.min_score() >= -128 && matrix.max_score() <= 127;
}

void ScoreProfile::build(std::span<const std::uint8_t> window,
                         const bio::SubstitutionMatrix& matrix) {
  if (!representable(matrix)) {
    throw std::invalid_argument(
        "ScoreProfile::build: matrix scores exceed int8 range");
  }
  length_ = window.size();
  cells_.resize(length_ * kStride);
  for (std::size_t k = 0; k < length_; ++k) {
    std::int8_t* row = cells_.data() + k * kStride;
    const std::uint8_t a = window[k];
    for (std::size_t c = 0; c < bio::kProteinAlphabetSize; ++c) {
      row[c] = static_cast<std::int8_t>(
          matrix.score(a, static_cast<bio::Residue>(c)));
    }
    // Padding columns clamp to X, mirroring SubstitutionMatrix::score for
    // out-of-alphabet codes.
    const std::int8_t x_score =
        static_cast<std::int8_t>(matrix.score(a, bio::kUnknownX));
    for (std::size_t c = bio::kProteinAlphabetSize; c < kStride; ++c) {
      row[c] = x_score;
    }
  }
}

}  // namespace psc::align
