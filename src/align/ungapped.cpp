#include "align/ungapped.hpp"

#include <stdexcept>

namespace psc::align {

int ungapped_window_score(std::span<const std::uint8_t> s0,
                          std::span<const std::uint8_t> s1,
                          const bio::SubstitutionMatrix& matrix) noexcept {
  const std::size_t len = s0.size() < s1.size() ? s0.size() : s1.size();
  int score = 0;
  int best = 0;
  for (std::size_t k = 0; k < len; ++k) {
    score += matrix.score(s0[k], s1[k]);
    if (score < 0) score = 0;
    if (score > best) best = score;
  }
  return best;
}

void ungapped_score_one_vs_many(std::span<const std::uint8_t> s0,
                                const index::WindowBatch& batch,
                                const bio::SubstitutionMatrix& matrix,
                                std::vector<int>& scores) {
  if (s0.size() != batch.window_length()) {
    throw std::invalid_argument("ungapped_score_one_vs_many: length mismatch");
  }
  scores.resize(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    scores[i] = ungapped_window_score(s0, batch.window(i), matrix);
  }
}

void ungapped_score_one_vs_many_blocked(std::span<const std::uint8_t> s0,
                                        const index::WindowBatch& batch,
                                        const bio::SubstitutionMatrix& matrix,
                                        std::vector<int>& scores) {
  if (s0.size() != batch.window_length()) {
    throw std::invalid_argument(
        "ungapped_score_one_vs_many_blocked: length mismatch");
  }
  const std::size_t len = s0.size();
  const std::size_t count = batch.size();
  scores.resize(count);
  const auto* cells = matrix.cells().data();
  const std::uint8_t* a = s0.data();

  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const std::uint8_t* b0 = batch.window(i).data();
    const std::uint8_t* b1 = batch.window(i + 1).data();
    const std::uint8_t* b2 = batch.window(i + 2).data();
    const std::uint8_t* b3 = batch.window(i + 3).data();
    int r0 = 0, r1 = 0, r2 = 0, r3 = 0;
    int m0 = 0, m1 = 0, m2 = 0, m3 = 0;
    for (std::size_t k = 0; k < len; ++k) {
      const auto* row = cells + a[k] * bio::kProteinAlphabetSize;
      r0 += row[b0[k]];
      r1 += row[b1[k]];
      r2 += row[b2[k]];
      r3 += row[b3[k]];
      if (r0 < 0) r0 = 0;
      if (r1 < 0) r1 = 0;
      if (r2 < 0) r2 = 0;
      if (r3 < 0) r3 = 0;
      if (r0 > m0) m0 = r0;
      if (r1 > m1) m1 = r1;
      if (r2 > m2) m2 = r2;
      if (r3 > m3) m3 = r3;
    }
    scores[i] = m0;
    scores[i + 1] = m1;
    scores[i + 2] = m2;
    scores[i + 3] = m3;
  }
  for (; i < count; ++i) {
    scores[i] = ungapped_window_score(s0, batch.window(i), matrix);
  }
}

}  // namespace psc::align
