// Banded affine-gap alignment over fixed-length windows: the functional
// kernel of the gapped-extension operator the paper's conclusion proposes
// for the second FPGA ("another reconfigurable operator dedicated to the
// computation of similarities including gap penalty", section 5).
//
// Hardware-shaped formulation: both sequences contribute a fixed window
// of M residues around the seed (like the PSC operator's W + 2N windows,
// just longer), and the DP is restricted to a band of half-width B around
// the main diagonal. A systolic implementation holds 2B+1 cells and
// advances one anti-diagonal per clock cycle, so a window pair costs
// exactly 2M - 1 compute cycles regardless of content -- the regularity
// that makes the stage implementable at a fixed clock, mirroring how the
// ungapped stage was made regular in section 2.2.
#pragma once

#include <cstdint>
#include <span>

#include "align/gapped.hpp"
#include "bio/substitution_matrix.hpp"

namespace psc::align {

/// Best local affine alignment score of the two equal-length windows,
/// restricted to |i - j| <= band. Scores clamp at zero (local), exactly
/// the Gotoh recurrence the systolic lane evaluates. Windows shorter
/// than each other are compared over the shorter length.
int banded_window_score(std::span<const std::uint8_t> s0,
                        std::span<const std::uint8_t> s1, std::size_t band,
                        const GapParams& params,
                        const bio::SubstitutionMatrix& matrix);

/// Number of systolic cycles a (2B+1)-cell lane needs for one window
/// pair of length M: one anti-diagonal per cycle.
constexpr std::uint64_t banded_window_cycles(std::size_t window_length) {
  return window_length == 0 ? 0 : 2 * window_length - 1;
}

}  // namespace psc::align
