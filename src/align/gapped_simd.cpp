#include "align/gapped_simd.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "align/banded.hpp"

namespace psc::align {

// Bias and guard constants of the 16-bit domain (see the header): value
// v is stored as v + 32768, 0 is the -inf sentinel, and a call falls
// back to scalar once the running best is within 256 of the top --
// every per-cell gain is at most the max matrix score (<= 127) plus the
// bias-128 trick's slack, so guarded inputs can never saturate inside a
// row.
namespace {

constexpr std::uint32_t kBias = 32768;
constexpr int kGuardBest = 32767 - 256;

// Saturating unsigned-16 arithmetic on uint32 carriers: exactly
// _mm256_subs_epu16 / _mm256_adds_epu16.
inline std::uint32_t sub_sat(std::uint32_t v, std::uint32_t c) {
  return v > c ? v - c : 0;
}
inline std::uint32_t add_sat(std::uint32_t v, std::uint32_t c) {
  const std::uint32_t s = v + c;
  return s > 65535 ? 65535 : s;
}

}  // namespace

const char* gapped_kernel_name(GappedKernel kernel) noexcept {
  switch (kernel) {
    case GappedKernel::kAuto: return "auto";
    case GappedKernel::kScalar: return "scalar";
    case GappedKernel::kPortable: return "portable";
    case GappedKernel::kAvx2: return "avx2";
  }
  return "unknown";
}

std::optional<GappedKernel> parse_gapped_kernel(
    std::string_view name) noexcept {
  if (name == "auto") return GappedKernel::kAuto;
  if (name == "scalar") return GappedKernel::kScalar;
  if (name == "portable") return GappedKernel::kPortable;
  if (name == "avx2") return GappedKernel::kAvx2;
  return std::nullopt;
}

void GappedSimdMatrix::build(const bio::SubstitutionMatrix& matrix) {
  for (std::size_t a = 0; a < kStride; ++a) {
    for (std::size_t b = 0; b < kStride; ++b) {
      const int s = matrix.score(static_cast<bio::Residue>(a),
                                 static_cast<bio::Residue>(b));
      data_[a * kStride + b] = static_cast<std::uint8_t>(s + 128);
    }
  }
}

bool gapped_simd_applicable(const bio::SubstitutionMatrix& matrix,
                            const GapParams& params) noexcept {
  if (!GappedSimdMatrix::representable(matrix)) return false;
  // Lazy E needs open >= 0 (open + extend >= extend); the lane decays
  // need extend * 8 to fit comfortably; the prune threshold best -
  // x_drop must stay clear of the sentinel at the bottom of the biased
  // domain (best >= 0 throughout, so threshold >= 32768 - x_drop).
  if (params.open < 0 || params.extend < 0 || params.extend > 255) {
    return false;
  }
  if (params.open + params.extend > 2048) return false;
  return params.x_drop >= 0 && params.x_drop <= 28000;
}

GappedKernel resolve_gapped_kernel(GappedKernel requested,
                                   const bio::SubstitutionMatrix& matrix,
                                   const GapParams& params) noexcept {
  switch (requested) {
    case GappedKernel::kScalar:
      return GappedKernel::kScalar;
    case GappedKernel::kPortable:
      return gapped_simd_applicable(matrix, params) ? GappedKernel::kPortable
                                                    : GappedKernel::kScalar;
    case GappedKernel::kAuto:
    case GappedKernel::kAvx2:
      if (!gapped_simd_applicable(matrix, params)) return GappedKernel::kScalar;
      return gapped_avx2_available() ? GappedKernel::kAvx2
                                     : GappedKernel::kPortable;
  }
  return GappedKernel::kScalar;
}

std::optional<HalfExtension> xdrop_gapped_half_portable(
    std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
    const GappedSimdMatrix& rows, const GapParams& params) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  HalfExtension out;
  if (n == 0 || m == 0) return out;

  const auto go = static_cast<std::uint32_t>(params.open + params.extend);
  const auto ge = static_cast<std::uint32_t>(params.extend);
  const int x = params.x_drop;

  // Column j lives at index j + 1; index 0 is a permanent sentinel so
  // the j-1 reads of the diagonal and E terms never branch.
  std::vector<std::uint16_t> h_prev(m + 2, 0), f_prev(m + 2, 0);
  std::vector<std::uint16_t> h_cur(m + 2, 0), f_cur(m + 2, 0);

  int best = 0;
  std::size_t best_i = 0, best_j = 0;

  // Row 0: gaps in sequence a only. The first below-threshold value is
  // stored before the break, exactly like the scalar kernel (row 1 may
  // read it as a diagonal/F source).
  std::size_t lo = 0, hi = 0;
  h_prev[1] = kBias;
  {
    std::uint32_t e = 0;
    for (std::size_t j = 1; j <= m; ++j) {
      e = std::max(sub_sat(h_prev[j], go), sub_sat(e, ge));
      h_prev[j + 1] = static_cast<std::uint16_t>(e);
      if (e < kBias - static_cast<std::uint32_t>(x)) break;
      hi = j;
    }
  }

  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(h_cur.begin(), h_cur.end(), std::uint16_t{0});
    std::fill(f_cur.begin(), f_cur.end(), std::uint16_t{0});
    const std::size_t row_lo = lo;
    const std::size_t row_hi = std::min(hi + 1, m);
    const std::uint8_t* row = rows.row(a[i - 1]);

    // E and the previous column's *candidate* (pre-prune) H: the lazy-E
    // argument in the header makes this exactly the scalar chain.
    std::uint32_t e = 0;
    std::uint32_t prev_cand = 0;
    std::size_t new_lo = row_hi + 1;
    std::size_t new_hi = 0;
    bool any_live = false;
    std::uint32_t threshold =
        kBias + static_cast<std::uint32_t>(best) - static_cast<std::uint32_t>(x);
    for (std::size_t j = row_lo; j <= row_hi; ++j) {
      const std::uint32_t fv =
          std::max(sub_sat(h_prev[j + 1], go), sub_sat(f_prev[j + 1], ge));
      f_cur[j + 1] = static_cast<std::uint16_t>(fv);
      std::uint32_t value = fv;
      if (j > 0) {
        e = std::max(sub_sat(prev_cand, go), sub_sat(e, ge));
        value = std::max(value, e);
        const std::uint32_t diag =
            sub_sat(add_sat(h_prev[j], row[b[j - 1]]), 128);
        value = std::max(value, diag);
      }
      prev_cand = value;
      if (value < threshold) continue;  // h_cur already sentinel
      h_cur[j + 1] = static_cast<std::uint16_t>(value);
      any_live = true;
      new_lo = std::min(new_lo, j);
      new_hi = j;
      if (value > kBias + static_cast<std::uint32_t>(best)) {
        best = static_cast<int>(value - kBias);
        best_i = i;
        best_j = j;
        threshold = value - static_cast<std::uint32_t>(x);
      }
    }
    if (!any_live) break;
    if (best >= kGuardBest) return std::nullopt;
    lo = new_lo;
    hi = new_hi;
    std::swap(h_prev, h_cur);
    std::swap(f_prev, f_cur);
  }

  out.score = best;
  out.end0 = best_i;
  out.end1 = best_j;
  return out;
}

std::optional<int> banded_window_score_portable(
    std::span<const std::uint8_t> s0, std::span<const std::uint8_t> s1,
    std::size_t band, const GapParams& params, const GappedSimdMatrix& rows) {
  const std::size_t n = std::min(s0.size(), s1.size());
  if (n == 0) return 0;
  const auto go = static_cast<std::uint32_t>(params.open + params.extend);
  const auto ge = static_cast<std::uint32_t>(params.extend);

  std::vector<std::uint16_t> h_prev(n + 2, 0), f_prev(n + 2, 0);
  std::vector<std::uint16_t> h_cur(n + 2, 0), f_cur(n + 2, 0);

  std::uint32_t best = kBias;  // local alignment: best >= 0
  for (std::size_t j = 0; j <= std::min(band, n); ++j) {
    h_prev[j + 1] = kBias;
  }

  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(h_cur.begin(), h_cur.end(), std::uint16_t{0});
    std::fill(f_cur.begin(), f_cur.end(), std::uint16_t{0});
    const std::size_t lo = i > band ? i - band : 0;
    const std::size_t hi = std::min(n, i + band);
    const std::uint8_t* row = rows.row(s0[i - 1]);

    std::uint32_t e = 0;
    std::uint32_t prev_stored = 0;  // H(i, j-1), clamped: the E source
    for (std::size_t j = lo; j <= hi; ++j) {
      const std::uint32_t fv =
          std::max(sub_sat(h_prev[j + 1], go), sub_sat(f_prev[j + 1], ge));
      f_cur[j + 1] = static_cast<std::uint16_t>(fv);
      std::uint32_t value = fv;
      if (j > 0) {
        e = std::max(sub_sat(prev_stored, go), sub_sat(e, ge));
        value = std::max(value, e);
        const std::uint32_t diag =
            sub_sat(add_sat(h_prev[j], row[s1[j - 1]]), 128);
        value = std::max(value, diag);
      }
      const std::uint32_t stored = std::max(value, kBias);  // local clamp
      h_cur[j + 1] = static_cast<std::uint16_t>(stored);
      prev_stored = stored;
      if (stored > best) best = stored;
    }
    if (static_cast<int>(best - kBias) >= kGuardBest) return std::nullopt;
    std::swap(h_prev, h_cur);
    std::swap(f_prev, f_cur);
  }
  return static_cast<int>(best - kBias);
}

GappedExtender::GappedExtender(const bio::SubstitutionMatrix& matrix,
                               const GapParams& params, GappedKernel requested)
    : matrix_(&matrix),
      params_(params),
      kernel_(resolve_gapped_kernel(requested, matrix, params)) {
  if (kernel_ != GappedKernel::kScalar) rows_.build(matrix);
}

HalfExtension GappedExtender::half(std::span<const std::uint8_t> a,
                                   std::span<const std::uint8_t> b) const {
  switch (kernel_) {
    case GappedKernel::kAvx2:
      if (const auto r = xdrop_gapped_half_avx2(a, b, rows_, params_)) {
        return *r;
      }
      break;
    case GappedKernel::kPortable:
      if (const auto r = xdrop_gapped_half_portable(a, b, rows_, params_)) {
        return *r;
      }
      break;
    default:
      break;
  }
  return xdrop_gapped_half(a, b, *matrix_, params_);
}

int GappedExtender::banded_window(std::span<const std::uint8_t> s0,
                                  std::span<const std::uint8_t> s1,
                                  std::size_t band) const {
  switch (kernel_) {
    case GappedKernel::kAvx2:
      if (const auto r = banded_window_score_avx2(s0, s1, band, params_,
                                                  rows_)) {
        return *r;
      }
      break;
    case GappedKernel::kPortable:
      if (const auto r = banded_window_score_portable(s0, s1, band, params_,
                                                      rows_)) {
        return *r;
      }
      break;
    default:
      break;
  }
  return banded_window_score(s0, s1, band, params_, *matrix_);
}

Alignment GappedExtender::extend(std::span<const std::uint8_t> s0,
                                 std::span<const std::uint8_t> s1,
                                 std::size_t anchor0, std::size_t anchor1,
                                 std::size_t seed_width,
                                 bool with_traceback) const {
  if (kernel_ == GappedKernel::kScalar) {
    return xdrop_gapped_extend(s0, s1, anchor0, anchor1, seed_width, *matrix_,
                               params_, with_traceback);
  }
  if (anchor0 + seed_width > s0.size() || anchor1 + seed_width > s1.size()) {
    throw std::out_of_range("GappedExtender::extend: anchor outside sequences");
  }

  int seed_score = 0;
  for (std::size_t k = 0; k < seed_width; ++k) {
    seed_score += matrix_->score(s0[anchor0 + k], s1[anchor1 + k]);
  }

  std::vector<std::uint8_t> rev0(
      s0.begin(), s0.begin() + static_cast<std::ptrdiff_t>(anchor0));
  std::vector<std::uint8_t> rev1(
      s1.begin(), s1.begin() + static_cast<std::ptrdiff_t>(anchor1));
  std::reverse(rev0.begin(), rev0.end());
  std::reverse(rev1.begin(), rev1.end());
  const HalfExtension back = half(rev0, rev1);

  const HalfExtension fwd = half(s0.subspan(anchor0 + seed_width),
                                 s1.subspan(anchor1 + seed_width));

  Alignment out;
  out.score = back.score + seed_score + fwd.score;
  out.begin0 = anchor0 - back.end0;
  out.begin1 = anchor1 - back.end1;
  out.end0 = anchor0 + seed_width + fwd.end0;
  out.end1 = anchor1 + seed_width + fwd.end1;

  if (with_traceback) {
    // Same re-alignment as the scalar entry point: the halves only pick
    // the region, so identical (score, end0, end1) triples make the
    // traceback identical for free.
    const auto a = s0.subspan(out.begin0, out.end0 - out.begin0);
    const auto b = s1.subspan(out.begin1, out.end1 - out.begin1);
    Alignment inner = smith_waterman(a, b, *matrix_, params_);
    out.score = std::max(out.score, inner.score);
    out.ops = std::move(inner.ops);
    const std::size_t b0 = out.begin0;
    const std::size_t b1 = out.begin1;
    out.begin0 = b0 + inner.begin0;
    out.begin1 = b1 + inner.begin1;
    out.end0 = b0 + inner.end0;
    out.end1 = b1 + inner.end1;
  }
  return out;
}

#if !(defined(__x86_64__) || defined(__i386__)) || !defined(__GNUC__)

bool gapped_avx2_available() noexcept { return false; }

std::optional<HalfExtension> xdrop_gapped_half_avx2(
    std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
    const GappedSimdMatrix& rows, const GapParams& params) {
  return xdrop_gapped_half_portable(a, b, rows, params);
}

std::optional<int> banded_window_score_avx2(std::span<const std::uint8_t> s0,
                                            std::span<const std::uint8_t> s1,
                                            std::size_t band,
                                            const GapParams& params,
                                            const GappedSimdMatrix& rows) {
  return banded_window_score_portable(s0, s1, band, params, rows);
}

#endif  // !x86 || !GNUC

}  // namespace psc::align
