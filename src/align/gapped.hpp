// Step 3 of the paper's algorithm: gapped extension. "The search space is
// augmented by the possibility to consider gaps. This operation is
// triggered only if the neighbouring of a seed presents enough
// similarity." (section 2.1)
//
// Two engines are provided:
//  * xdrop_gapped_extend -- NCBI-style anchored extension with affine gaps
//    and X-drop pruning, run forward and backward from the seed. This is
//    the production path (step 3 of the pipeline and of the baseline).
//  * smith_waterman -- full O(nm) affine local alignment with traceback,
//    the reference implementation used by tests and by callers that want
//    printable alignments.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bio/substitution_matrix.hpp"

namespace psc::align {

/// Affine gap model: a gap of length L costs open + L * extend.
struct GapParams {
  int open = 11;
  int extend = 1;
  int x_drop = 38;
};

/// Edit operation of an alignment path.
enum class Op : std::uint8_t { kMatch, kInsert0, kInsert1 };
// kMatch    : consume one residue of each sequence (match or mismatch)
// kInsert0  : consume one residue of sequence 0 only (gap in sequence 1)
// kInsert1  : consume one residue of sequence 1 only (gap in sequence 0)

struct Alignment {
  int score = 0;
  std::size_t begin0 = 0, end0 = 0;
  std::size_t begin1 = 0, end1 = 0;
  std::vector<Op> ops;

  /// Fraction of kMatch columns whose residues are identical.
  double identity(std::span<const std::uint8_t> s0,
                  std::span<const std::uint8_t> s1) const;

  /// Three printable rows (sequence 0, midline, sequence 1).
  std::array<std::string, 3> render(std::span<const std::uint8_t> s0,
                                    std::span<const std::uint8_t> s1) const;
};

/// Best local affine alignment of s0 x s1 (Gotoh with traceback).
Alignment smith_waterman(std::span<const std::uint8_t> s0,
                         std::span<const std::uint8_t> s1,
                         const bio::SubstitutionMatrix& matrix,
                         const GapParams& params);

/// Result of one anchored half-extension (no traceback).
struct HalfExtension {
  int score = 0;        ///< best alignment score of the two prefixes
  std::size_t end0 = 0; ///< residues of s0 consumed by the best alignment
  std::size_t end1 = 0; ///< residues of s1 consumed
};

/// Aligns prefixes of a and b, anchored at (0,0) with free end, affine
/// gaps, X-drop pruning. The empty alignment (score 0) is always allowed.
HalfExtension xdrop_gapped_half(std::span<const std::uint8_t> a,
                                std::span<const std::uint8_t> b,
                                const bio::SubstitutionMatrix& matrix,
                                const GapParams& params);

/// Anchored gapped extension: extends backward from (anchor0, anchor1)
/// and forward from (anchor0 + seed_width, anchor1 + seed_width), scoring
/// the seed region diagonally. Returns score and the consumed ranges; ops
/// are filled by re-aligning the found region with smith_waterman-style
/// traceback when `with_traceback` is set.
Alignment xdrop_gapped_extend(std::span<const std::uint8_t> s0,
                              std::span<const std::uint8_t> s1,
                              std::size_t anchor0, std::size_t anchor1,
                              std::size_t seed_width,
                              const bio::SubstitutionMatrix& matrix,
                              const GapParams& params,
                              bool with_traceback = false);

}  // namespace psc::align
