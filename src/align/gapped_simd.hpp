// SIMD step-3 gapped-extension kernels: the Gotoh affine-gap recurrence
// of align/gapped.hpp (X-drop half extension) and align/banded.hpp
// (banded window score) carried in 16 x 16-bit saturating lanes,
// mirroring the ungapped_simd architecture -- an AVX2 tier in its own
// translation unit, a portable tier whose arithmetic loops
// autovectorize, and the scalar reference as the always-correct
// fallback.
//
// Exactness. The scalar kernels prune with a *running* best updated in
// row-major scan order, and E(i,j) reads H(i,j-1) inside the same row --
// both look inherently sequential. Two transformations remove the
// dependencies without changing a single output bit:
//
//  * Lazy E. Because a gap's first residue costs open + extend >=
//    extend, an E opened from an E-derived H can never beat simply
//    extending that E. Hence, writing H'(j) = max(F(j), diag(j)) for
//    the candidate without its E term, E obeys the *candidate-only*
//    recurrence E(j) = max(H'(j-1) - (open+extend), E(j-1) - extend):
//    a decayed prefix-max over the row, computable with log-step
//    vector shift-maxes (decay k*extend for lane distance k).
//  * Prune-free rows. The row's candidates are computed ignoring the
//    X-drop prune, then a second pass applies the prune tests and best
//    updates in scan order. Any candidate whose value flows through a
//    pruned cell is itself strictly below best - x_drop (gap costs are
//    nonnegative and the running best never decreases), so it is
//    pruned either way: surviving values, prune flags and the best
//    update sequence are identical to the scalar interleaving.
//
// Values live in a bias-32768 unsigned domain where 0 doubles as the
// -inf sentinel: saturating unsigned subtraction makes "sentinel minus
// gap cost" stay sentinel for free, and the zero fill of a lane shift
// is exactly the sentinel. Whenever the running best nears the top of
// the representable range (the 16-bit overflow guard), the kernel
// returns nullopt and the dispatcher re-runs the whole call through the
// scalar reference -- so saturation can only ever cost speed, never a
// bit of output.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "align/cpu_features.hpp"
#include "align/gapped.hpp"
#include "bio/substitution_matrix.hpp"

namespace psc::align {

/// Step-3 kernel selection (--step3-kernel). All kernels are
/// bit-identical (SIMD tiers fall back to scalar on the rare overflow
/// guard), so this is purely a speed/diagnostic knob.
enum class GappedKernel {
  kAuto,      ///< fastest applicable tier for this CPU/matrix/params
  kScalar,    ///< align::xdrop_gapped_half / align::banded_window_score
  kPortable,  ///< 16-bit biased lanes, plain C++ (autovectorizes)
  kAvx2,      ///< 256-bit AVX2 tier (x86 only)
};

const char* gapped_kernel_name(GappedKernel kernel) noexcept;

/// Parses "auto" | "scalar" | "portable" | "avx2"; nullopt otherwise.
std::optional<GappedKernel> parse_gapped_kernel(std::string_view name) noexcept;

/// Substitution matrix repacked for the 16-bit kernels: 32 rows of 32
/// bias-128 bytes (score + 128), one padded row per residue, so the
/// AVX2 tier's row lookup is two pshufb shuffles + blend and the
/// portable tier's a single byte load. Rows beyond the alphabet clamp
/// to the matrix's own out-of-alphabet behaviour (score() clamps to X).
class GappedSimdMatrix {
 public:
  static constexpr std::size_t kStride = 32;

  GappedSimdMatrix() = default;
  explicit GappedSimdMatrix(const bio::SubstitutionMatrix& matrix) {
    build(matrix);
  }

  /// True when every matrix cell fits int8 (the bias-128 byte rows are
  /// exact).
  static bool representable(const bio::SubstitutionMatrix& matrix) noexcept {
    return matrix.min_score() >= -128 && matrix.max_score() <= 127;
  }

  /// Fills the padded rows; requires representable(matrix).
  void build(const bio::SubstitutionMatrix& matrix);

  /// Bias-128 row for residue `a` (32 bytes). Encoded residues are < 32
  /// everywhere in this codebase; larger values clamp to the X row.
  const std::uint8_t* row(std::uint8_t a) const noexcept {
    const std::size_t r = a < kStride ? a : bio::kProteinAlphabetSize;
    return data_.data() + r * kStride;
  }

 private:
  std::array<std::uint8_t, kStride * kStride> data_{};
};

/// True when the 16-bit tiers are exact for this configuration: matrix
/// cells fit int8, gap costs are nonnegative and small enough for the
/// lane decays, and the X-drop threshold leaves the biased domain's
/// low range free for the sentinel (see the header comment).
bool gapped_simd_applicable(const bio::SubstitutionMatrix& matrix,
                            const GapParams& params) noexcept;

/// True when the AVX2 tier can run on this CPU.
bool gapped_avx2_available() noexcept;

/// Resolves `requested` against the configuration and CPU: kAuto picks
/// the best applicable tier; explicit SIMD requests degrade gracefully
/// (kAvx2 -> kPortable without the ISA, any SIMD -> kScalar when the
/// configuration is out of the exact range).
GappedKernel resolve_gapped_kernel(GappedKernel requested,
                                   const bio::SubstitutionMatrix& matrix,
                                   const GapParams& params) noexcept;

// ---- raw tier entry points (tests and benches drive these directly) ----
// All four return nullopt when the 16-bit overflow guard trips (running
// best within 256 of +32767); callers re-run the scalar reference.

std::optional<HalfExtension> xdrop_gapped_half_portable(
    std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
    const GappedSimdMatrix& rows, const GapParams& params);

/// AVX2 tier; falls back to the portable tier on non-x86 builds. Must
/// not be called when gapped_avx2_available() is false on an x86 build.
std::optional<HalfExtension> xdrop_gapped_half_avx2(
    std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
    const GappedSimdMatrix& rows, const GapParams& params);

std::optional<int> banded_window_score_portable(
    std::span<const std::uint8_t> s0, std::span<const std::uint8_t> s1,
    std::size_t band, const GapParams& params, const GappedSimdMatrix& rows);

std::optional<int> banded_window_score_avx2(std::span<const std::uint8_t> s0,
                                            std::span<const std::uint8_t> s1,
                                            std::size_t band,
                                            const GapParams& params,
                                            const GappedSimdMatrix& rows);

/// One resolved step-3 engine: matrix + gap params + kernel, built once
/// per run and shared read-only across worker threads (the methods are
/// const and keep their DP state on the stack/heap of the call).
class GappedExtender {
 public:
  GappedExtender(const bio::SubstitutionMatrix& matrix,
                 const GapParams& params,
                 GappedKernel requested = GappedKernel::kAuto);

  /// The kernel calls actually dispatch to (never kAuto).
  GappedKernel kernel() const noexcept { return kernel_; }
  const GapParams& params() const noexcept { return params_; }
  const bio::SubstitutionMatrix& matrix() const noexcept { return *matrix_; }

  /// Dispatched xdrop_gapped_half; bit-identical to the scalar kernel.
  HalfExtension half(std::span<const std::uint8_t> a,
                     std::span<const std::uint8_t> b) const;

  /// Dispatched banded_window_score; bit-identical to the scalar kernel.
  int banded_window(std::span<const std::uint8_t> s0,
                    std::span<const std::uint8_t> s1, std::size_t band) const;

  /// Dispatched xdrop_gapped_extend: same seed scoring, half-extension
  /// combination and traceback re-alignment as the scalar entry point,
  /// with the halves running on the selected kernel.
  Alignment extend(std::span<const std::uint8_t> s0,
                   std::span<const std::uint8_t> s1, std::size_t anchor0,
                   std::size_t anchor1, std::size_t seed_width,
                   bool with_traceback) const;

 private:
  const bio::SubstitutionMatrix* matrix_;
  GapParams params_;
  GappedKernel kernel_;
  GappedSimdMatrix rows_;
};

}  // namespace psc::align
