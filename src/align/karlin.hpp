// Karlin-Altschul statistics: lambda, K and H for a scoring system, plus
// bit-score and E-value conversion. The baseline filters hits at E <= 1e-3
// exactly as the paper configures NCBI tblastn (section 4).
//
// lambda and H are solved numerically from the matrix and background
// frequencies. K for gapped scoring is not analytically tractable; as in
// NCBI BLAST itself, gapped parameters come from a preset table (BLOSUM62
// with gap open 11 / extend 1), and the ungapped K uses the published
// BLOSUM62 value with a documented fallback approximation for custom
// matrices. E-value *ranking* -- all the evaluation in Table 6 -- is
// independent of K, which only rescales E monotonically.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "bio/alphabet.hpp"
#include "bio/substitution_matrix.hpp"

namespace psc::align {

struct KarlinParams {
  double lambda = 0.0;  ///< scale of the score distribution (nats/unit)
  double k = 0.0;       ///< search-space scale constant
  double h = 0.0;       ///< relative entropy per aligned pair (nats)
};

/// Solves lambda from sum_ij p_i p_j exp(lambda s_ij) = 1 over the twenty
/// standard residues, then H; K falls back to the approximation
/// K ~= 0.1 (flagged by the preset functions which return exact values).
/// Throws std::invalid_argument if the expected score is non-negative or
/// no positive score exists (no positive-root lambda).
KarlinParams solve_karlin(const bio::SubstitutionMatrix& matrix,
                          const std::array<double, bio::kNumAminoAcids>&
                              frequencies = bio::robinson_frequencies());

/// NCBI published values for ungapped BLOSUM62 (lambda 0.3176, K 0.134,
/// H 0.40).
KarlinParams blosum62_ungapped();

/// NCBI published values for BLOSUM62 with gap open 11 / extend 1
/// (lambda 0.267, K 0.041, H 0.14).
KarlinParams blosum62_gapped_11_1();

/// Bit score: (lambda * raw - ln K) / ln 2.
double bit_score(int raw_score, const KarlinParams& params);

/// E-value for a raw score against a search space of m x n residues.
double e_value(int raw_score, double m, double n, const KarlinParams& params);

/// Raw score needed to reach a given E-value in an m x n search space
/// (inverse of e_value, rounded up).
int score_for_e_value(double target_e, double m, double n,
                      const KarlinParams& params);

/// Observed residue frequencies of a sequence over the twenty standard
/// amino acids (non-standard residues ignored); falls back to the
/// Robinson background for empty input.
std::array<double, bio::kNumAminoAcids> residue_frequencies(
    std::span<const std::uint8_t> sequence);

/// Composition-based statistics in the spirit of Gertz et al. 2006 (the
/// tblastn improvement the paper's quality benchmark builds on): lambda
/// is re-solved against the *query's* residue composition instead of the
/// standard background, so biased queries (low-complexity, membrane
/// proteins) stop inflating their scores. K keeps the preset value --
/// ranking, which is what ROC50/AP measure, depends only on lambda.
/// Falls back to `base` when the re-solve fails (e.g. the composition
/// makes the expected score non-negative).
KarlinParams composition_adjusted(std::span<const std::uint8_t> query,
                                  const bio::SubstitutionMatrix& matrix,
                                  const KarlinParams& base);

}  // namespace psc::align
