#include "align/cpu_features.hpp"

namespace psc::align {

namespace {

CpuFeatures probe() noexcept {
  CpuFeatures features;
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  __builtin_cpu_init();
  features.sse2 = __builtin_cpu_supports("sse2") != 0;
  features.ssse3 = __builtin_cpu_supports("ssse3") != 0;
  features.sse41 = __builtin_cpu_supports("sse4.1") != 0;
  features.avx2 = __builtin_cpu_supports("avx2") != 0;
#elif defined(__aarch64__)
  // NEON is architecturally mandatory on AArch64; the portable tier's
  // autovectorized lanes map onto it.
  features.sse2 = true;
#endif
  return features;
}

}  // namespace

const CpuFeatures& cpu_features() noexcept {
  static const CpuFeatures features = probe();
  return features;
}

SimdTier best_simd_tier() noexcept {
  const CpuFeatures& features = cpu_features();
  // The AVX2 path also uses SSSE3 pshufb and SSE4.1 blendv in its 128-bit
  // lookup stage; AVX2 machines always have both, but check anyway.
  if (features.avx2 && features.ssse3 && features.sse41) return SimdTier::kAvx2;
  // The portable tier is plain C++ over fixed-width lanes; it is always
  // correct, and worth selecting whenever any vector unit can carry it.
  return SimdTier::kPortable;
}

const char* simd_tier_name(SimdTier tier) noexcept {
  switch (tier) {
    case SimdTier::kScalarOnly: return "scalar";
    case SimdTier::kPortable: return "portable";
    case SimdTier::kAvx2: return "avx2";
  }
  return "unknown";
}

}  // namespace psc::align
