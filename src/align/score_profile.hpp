// Query score profiles: the per-window pre-expansion of the substitution
// matrix that turns the ungapped kernel's two-level gather
//
//     matrix[ s0[k] ][ s1[k] ]      (row select, then column select)
//
// into a single indexed byte load
//
//     profile[ k ][ s1[k] ]
//
// For each position k of an IL0 window the profile stores the full
// substitution row score(s0[k], .) as 32 contiguous int8 cells (24
// alphabet codes padded to a power-of-two stride). This is the software
// analogue of a PE's substitution ROM after the query residue has been
// latched: the hardware burns s0 into the ROM address high bits once per
// window, and every IL1 residue needs only the low-bits lookup. The SIMD
// kernel additionally exploits that a 32-entry int8 row fits in two
// 128-bit registers, so the lookup becomes a pair of in-register shuffles
// instead of a memory gather.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bio/substitution_matrix.hpp"

namespace psc::align {

class ScoreProfile {
 public:
  /// Row stride in bytes: the 24-letter alphabet padded to 32 so rows stay
  /// register-aligned and the lookup index needs no bounds check for any
  /// encoded residue.
  static constexpr std::size_t kStride = 32;

  /// True when every score of `matrix` fits the profile's int8 cells
  /// (BLOSUM-family matrices span [-4, 11]; only exotic custom matrices
  /// fail, and those fall back to the scalar kernels).
  static bool representable(const bio::SubstitutionMatrix& matrix) noexcept;

  /// Rebuilds the profile for `window` (reuses storage across calls).
  /// Requires representable(matrix); residues beyond the alphabet clamp to
  /// X, matching SubstitutionMatrix::score.
  void build(std::span<const std::uint8_t> window,
             const bio::SubstitutionMatrix& matrix);

  std::size_t length() const noexcept { return length_; }

  /// 32-byte substitution row for window position k.
  const std::int8_t* row(std::size_t k) const noexcept {
    return cells_.data() + k * kStride;
  }

  const std::vector<std::int8_t>& cells() const noexcept { return cells_; }

 private:
  std::size_t length_ = 0;
  std::vector<std::int8_t> cells_;
};

}  // namespace psc::align
