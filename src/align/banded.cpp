#include "align/banded.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace psc::align {

namespace {
constexpr int kNegInf = std::numeric_limits<int>::min() / 4;
}

int banded_window_score(std::span<const std::uint8_t> s0,
                        std::span<const std::uint8_t> s1, std::size_t band,
                        const GapParams& params,
                        const bio::SubstitutionMatrix& matrix) {
  const std::size_t n = std::min(s0.size(), s1.size());
  if (n == 0) return 0;
  const auto b = static_cast<std::ptrdiff_t>(band);
  const int open_cost = params.open + params.extend;

  // Row-wise Gotoh restricted to j in [i - b, i + b]. Cells outside the
  // band read as -inf, exactly what a fixed-width systolic lane sees at
  // its edge cells.
  std::vector<int> h_prev(n + 1, kNegInf), f_prev(n + 1, kNegInf);
  std::vector<int> h_cur(n + 1, kNegInf), f_cur(n + 1, kNegInf);
  const auto* cells = matrix.cells().data();

  int best = 0;
  // Row 0: local alignment, every in-band cell can start at zero.
  for (std::ptrdiff_t j = 0; j <= std::min<std::ptrdiff_t>(b, static_cast<std::ptrdiff_t>(n)); ++j) {
    h_prev[static_cast<std::size_t>(j)] = 0;
  }

  for (std::size_t i = 1; i <= n; ++i) {
    const auto lo = std::max<std::ptrdiff_t>(0, static_cast<std::ptrdiff_t>(i) - b);
    const auto hi = std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(n),
                                             static_cast<std::ptrdiff_t>(i) + b);
    std::fill(h_cur.begin(), h_cur.end(), kNegInf);
    std::fill(f_cur.begin(), f_cur.end(), kNegInf);
    // Hoist the substitution row for s0[i-1]; the inner loop only varies
    // in s1[j-1].
    const auto* row = cells + s0[i - 1] * bio::kProteinAlphabetSize;
    int e = kNegInf;
    for (std::ptrdiff_t js = lo; js <= hi; ++js) {
      const auto j = static_cast<std::size_t>(js);
      // F: gap in s1 (consume s0[i-1]); needs the cell above, which is
      // in-band only when j <= (i-1) + b.
      int f = kNegInf;
      if (js <= static_cast<std::ptrdiff_t>(i) - 1 + b) {
        f = std::max(h_prev[j] > kNegInf / 2 ? h_prev[j] - open_cost : kNegInf,
                     f_prev[j] > kNegInf / 2 ? f_prev[j] - params.extend
                                             : kNegInf);
      }
      f_cur[j] = f;

      int value = f;
      if (j > 0) {
        // E: gap in s0 (consume s1[j-1]); needs the cell to the left.
        if (js - 1 >= static_cast<std::ptrdiff_t>(i) - b) {
          const int e_open = h_cur[j - 1] > kNegInf / 2
                                 ? h_cur[j - 1] - open_cost
                                 : kNegInf;
          const int e_ext = e > kNegInf / 2 ? e - params.extend : kNegInf;
          e = std::max(e_open, e_ext);
        } else {
          e = kNegInf;
        }
        value = std::max(value, e);
        // Diagonal.
        if (h_prev[j - 1] > kNegInf / 2) {
          value = std::max(value, h_prev[j - 1] + row[s1[j - 1]]);
        }
      }
      if (value < 0) value = 0;  // local alignment clamp
      h_cur[j] = value;
      if (value > best) best = value;
    }
    std::swap(h_prev, h_cur);
    std::swap(f_prev, f_cur);
  }
  return best;
}

}  // namespace psc::align
