// Hit types shared by the step-2 engines (host and simulated RASC) and
// the downstream gapped-extension stage.
#pragma once

#include <cstdint>

#include "index/index_table.hpp"

namespace psc::align {

/// An above-threshold ungapped window pair: "pairs of integers
/// corresponding to the numbers of the 2 sub-sequences presenting strong
/// similarity" (paper, section 3.1) -- plus the score, which the result
/// management module compared against the threshold.
struct SeedPairHit {
  index::Occurrence bank0;  ///< occurrence in bank 0 (protein bank)
  index::Occurrence bank1;  ///< occurrence in bank 1 (translated genome)
  int score = 0;

  friend bool operator==(const SeedPairHit&, const SeedPairHit&) = default;
};

}  // namespace psc::align
