// BLAST-style X-drop ungapped extension: extend a seed match left and
// right along the diagonal, keeping the best running score, and stop a
// direction once the running score falls more than `x_drop` below the
// best. Used by the tblastn baseline (NCBI semantics) and as a
// cross-check against the paper's fixed-window kernel.
#pragma once

#include <cstdint>
#include <span>

#include "bio/substitution_matrix.hpp"

namespace psc::align {

/// Result of an ungapped diagonal extension.
struct UngappedExtension {
  int score = 0;
  /// Half-open residue range on each sequence; equal lengths (diagonal).
  std::size_t begin0 = 0;
  std::size_t end0 = 0;
  std::size_t begin1 = 0;
  std::size_t end1 = 0;

  std::size_t length() const { return end0 - begin0; }
};

/// Extends from the seed [pos0, pos0+seed_width) x [pos1, pos1+seed_width)
/// in both directions. The seed region itself is always included.
UngappedExtension xdrop_ungapped_extend(std::span<const std::uint8_t> s0,
                                        std::span<const std::uint8_t> s1,
                                        std::size_t pos0, std::size_t pos1,
                                        std::size_t seed_width,
                                        const bio::SubstitutionMatrix& matrix,
                                        int x_drop);

}  // namespace psc::align
