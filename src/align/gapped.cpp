#include "align/gapped.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "bio/alphabet.hpp"

namespace psc::align {

namespace {

constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

/// Gap of length L costs open + L * extend; first gapped residue therefore
/// costs open + extend.
int gap_first(const GapParams& p) { return p.open + p.extend; }

/// Traceback state codes for the affine DP.
enum : std::uint8_t {
  kFromDiag = 0,   // H came from H(i-1,j-1) + s
  kFromE = 1,      // H came from E(i,j)
  kFromF = 2,      // H came from F(i,j)
  kFromStart = 3,  // H is a fresh local start (score 0 cell)
  kEOpen = 0x10,   // E opened from H(i,j-1)
  kFOpen = 0x20,   // F opened from H(i-1,j)
};

struct TracebackDP {
  // Full-matrix affine DP. `local` selects Smith-Waterman (clamp at 0,
  // free ends) versus global-start anchored alignment with free end.
  TracebackDP(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
              const bio::SubstitutionMatrix& matrix, const GapParams& params,
              bool local) {
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    h.assign((n + 1) * (m + 1), kNegInf);
    e.assign((n + 1) * (m + 1), kNegInf);
    f.assign((n + 1) * (m + 1), kNegInf);
    from.assign((n + 1) * (m + 1), kFromStart);
    cols = m + 1;

    at(h, 0, 0) = 0;
    for (std::size_t j = 1; j <= m; ++j) {
      const int open_score = at(h, 0, j - 1) - gap_first(params);
      const int ext_score = at(e, 0, j - 1) - params.extend;
      at(e, 0, j) = std::max(open_score, ext_score);
      at(h, 0, j) = local ? 0 : at(e, 0, j);
      std::uint8_t flags = local ? kFromStart : kFromE;
      if (open_score >= ext_score) flags |= kEOpen;
      at(from, 0, j) = flags;
    }
    for (std::size_t i = 1; i <= n; ++i) {
      const int open_score = at(h, i - 1, 0) - gap_first(params);
      const int ext_score = at(f, i - 1, 0) - params.extend;
      at(f, i, 0) = std::max(open_score, ext_score);
      at(h, i, 0) = local ? 0 : at(f, i, 0);
      std::uint8_t flags = local ? kFromStart : kFromF;
      if (open_score >= ext_score) flags |= kFOpen;
      at(from, i, 0) = flags;
    }

    best = 0;
    best_i = 0;
    best_j = 0;
    for (std::size_t i = 1; i <= n; ++i) {
      for (std::size_t j = 1; j <= m; ++j) {
        const int e_open = at(h, i, j - 1) - gap_first(params);
        const int e_ext = at(e, i, j - 1) - params.extend;
        at(e, i, j) = std::max(e_open, e_ext);
        const int f_open = at(h, i - 1, j) - gap_first(params);
        const int f_ext = at(f, i - 1, j) - params.extend;
        at(f, i, j) = std::max(f_open, f_ext);

        const int diag =
            at(h, i - 1, j - 1) + matrix.score(a[i - 1], b[j - 1]);
        int value = diag;
        std::uint8_t source = kFromDiag;
        if (at(e, i, j) > value) {
          value = at(e, i, j);
          source = kFromE;
        }
        if (at(f, i, j) > value) {
          value = at(f, i, j);
          source = kFromF;
        }
        if (local && value < 0) {
          value = 0;
          source = kFromStart;
        }
        at(h, i, j) = value;
        std::uint8_t flags = source;
        if (e_open >= e_ext) flags |= kEOpen;
        if (f_open >= f_ext) flags |= kFOpen;
        at(from, i, j) = flags;

        if (local && value > best) {
          best = value;
          best_i = i;
          best_j = j;
        }
      }
    }
    if (!local) {
      // Free-end anchored mode: best over the whole matrix.
      best = 0;
      best_i = 0;
      best_j = 0;
      for (std::size_t i = 0; i <= n; ++i) {
        for (std::size_t j = 0; j <= m; ++j) {
          if (at(h, i, j) > best) {
            best = at(h, i, j);
            best_i = i;
            best_j = j;
          }
        }
      }
    }
  }

  template <typename T>
  T& at(std::vector<T>& v, std::size_t i, std::size_t j) {
    return v[i * cols + j];
  }
  template <typename T>
  const T& at(const std::vector<T>& v, std::size_t i, std::size_t j) const {
    return v[i * cols + j];
  }

  /// Walks back from (best_i, best_j) producing ops (reversed into order).
  Alignment traceback(bool local) const {
    Alignment out;
    out.score = best;
    std::size_t i = best_i;
    std::size_t j = best_j;
    std::vector<Op> ops;
    // State machine: 'H' main, 'E' gap run in sequence 0, 'F' gap run in
    // sequence 1.
    char state = 'H';
    while (i > 0 || j > 0) {
      if (state == 'H') {
        const std::uint8_t source = at(from, i, j) & 0x3;
        if (local && (source == kFromStart || at(h, i, j) == 0)) break;
        if (source == kFromDiag) {
          ops.push_back(Op::kMatch);
          --i;
          --j;
        } else if (source == kFromE) {
          state = 'E';
        } else if (source == kFromF) {
          state = 'F';
        } else {
          break;  // anchored start reached
        }
      } else if (state == 'E') {
        ops.push_back(Op::kInsert1);
        const bool opened = (at(from, i, j) & kEOpen) != 0;
        --j;
        if (opened) state = 'H';
      } else {  // 'F'
        ops.push_back(Op::kInsert0);
        const bool opened = (at(from, i, j) & kFOpen) != 0;
        --i;
        if (opened) state = 'H';
      }
    }
    out.begin0 = i;
    out.begin1 = j;
    out.end0 = best_i;
    out.end1 = best_j;
    std::reverse(ops.begin(), ops.end());
    out.ops = std::move(ops);
    return out;
  }

  std::vector<int> h, e, f;
  std::vector<std::uint8_t> from;
  std::size_t cols = 0;
  int best = 0;
  std::size_t best_i = 0, best_j = 0;
};

}  // namespace

double Alignment::identity(std::span<const std::uint8_t> s0,
                           std::span<const std::uint8_t> s1) const {
  std::size_t i = begin0;
  std::size_t j = begin1;
  std::size_t matches = 0;
  std::size_t columns = 0;
  for (Op op : ops) {
    switch (op) {
      case Op::kMatch:
        matches += (s0[i] == s1[j]) ? 1 : 0;
        ++columns;
        ++i;
        ++j;
        break;
      case Op::kInsert0: ++i; break;
      case Op::kInsert1: ++j; break;
    }
  }
  return columns == 0 ? 0.0 : static_cast<double>(matches) / static_cast<double>(columns);
}

std::array<std::string, 3> Alignment::render(
    std::span<const std::uint8_t> s0, std::span<const std::uint8_t> s1) const {
  std::array<std::string, 3> rows;
  std::size_t i = begin0;
  std::size_t j = begin1;
  for (Op op : ops) {
    switch (op) {
      case Op::kMatch: {
        const char c0 = bio::decode_protein(s0[i]);
        const char c1 = bio::decode_protein(s1[j]);
        rows[0].push_back(c0);
        rows[1].push_back(c0 == c1 ? '|' : (bio::SubstitutionMatrix::blosum62()
                                                        .score(s0[i], s1[j]) > 0
                                                ? '+'
                                                : ' '));
        rows[2].push_back(c1);
        ++i;
        ++j;
        break;
      }
      case Op::kInsert0:
        rows[0].push_back(bio::decode_protein(s0[i]));
        rows[1].push_back(' ');
        rows[2].push_back('-');
        ++i;
        break;
      case Op::kInsert1:
        rows[0].push_back('-');
        rows[1].push_back(' ');
        rows[2].push_back(bio::decode_protein(s1[j]));
        ++j;
        break;
    }
  }
  return rows;
}

Alignment smith_waterman(std::span<const std::uint8_t> s0,
                         std::span<const std::uint8_t> s1,
                         const bio::SubstitutionMatrix& matrix,
                         const GapParams& params) {
  TracebackDP dp(s0, s1, matrix, params, /*local=*/true);
  return dp.traceback(/*local=*/true);
}

HalfExtension xdrop_gapped_half(std::span<const std::uint8_t> a,
                                std::span<const std::uint8_t> b,
                                const bio::SubstitutionMatrix& matrix,
                                const GapParams& params) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  HalfExtension out;
  if (n == 0 || m == 0) return out;  // empty alignment, score 0

  std::vector<int> h_prev(m + 1, kNegInf), f_prev(m + 1, kNegInf);
  std::vector<int> h_cur(m + 1, kNegInf), f_cur(m + 1, kNegInf);

  int best = 0;
  std::size_t best_i = 0, best_j = 0;

  // Row 0: gaps in sequence a only.
  std::size_t lo = 0, hi = 0;
  h_prev[0] = 0;
  {
    int e = kNegInf;
    for (std::size_t j = 1; j <= m; ++j) {
      const int open_score = h_prev[j - 1] - gap_first(params);
      e = std::max(open_score, e - params.extend);
      h_prev[j] = e;
      if (h_prev[j] < best - params.x_drop) break;
      hi = j;
    }
  }

  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(h_cur.begin(), h_cur.end(), kNegInf);
    std::fill(f_cur.begin(), f_cur.end(), kNegInf);
    const std::size_t row_lo = lo;
    const std::size_t row_hi = std::min(hi + 1, m);  // band may grow by one
    // One matrix row per a-residue: the inner loop indexes it directly
    // instead of re-deriving the row base from a[i-1] per cell.
    const bio::Residue ra = a[i - 1] < bio::kProteinAlphabetSize
                                ? a[i - 1]
                                : bio::kUnknownX;
    const auto* row = matrix.cells().data() + ra * bio::kProteinAlphabetSize;
    int e = kNegInf;
    std::size_t new_lo = row_hi + 1;
    std::size_t new_hi = 0;
    bool any_live = false;
    for (std::size_t j = row_lo; j <= row_hi; ++j) {
      // F: gap in sequence b (consume a_i).
      const int f_open = h_prev[j] - gap_first(params);
      const int f_ext = f_prev[j] - params.extend;
      f_cur[j] = std::max(f_open, f_ext);

      int value = f_cur[j];
      if (j > 0) {
        const int e_open = h_cur[j - 1] - gap_first(params);
        e = std::max(e_open, e - params.extend);
        value = std::max(value, e);
        if (h_prev[j - 1] > kNegInf / 2) {
          const bio::Residue rb = b[j - 1] < bio::kProteinAlphabetSize
                                      ? b[j - 1]
                                      : bio::kUnknownX;
          value = std::max(value, h_prev[j - 1] + row[rb]);
        }
      }
      if (value < best - params.x_drop) {
        h_cur[j] = kNegInf;
        continue;
      }
      h_cur[j] = value;
      any_live = true;
      new_lo = std::min(new_lo, j);
      new_hi = std::max(new_hi, j);
      if (value > best) {
        best = value;
        best_i = i;
        best_j = j;
      }
    }
    if (!any_live) break;
    lo = new_lo;
    hi = new_hi;
    std::swap(h_prev, h_cur);
    std::swap(f_prev, f_cur);
  }

  out.score = best;
  out.end0 = best_i;
  out.end1 = best_j;
  return out;
}

Alignment xdrop_gapped_extend(std::span<const std::uint8_t> s0,
                              std::span<const std::uint8_t> s1,
                              std::size_t anchor0, std::size_t anchor1,
                              std::size_t seed_width,
                              const bio::SubstitutionMatrix& matrix,
                              const GapParams& params, bool with_traceback) {
  if (anchor0 + seed_width > s0.size() || anchor1 + seed_width > s1.size()) {
    throw std::out_of_range("xdrop_gapped_extend: anchor outside sequences");
  }

  int seed_score = 0;
  for (std::size_t k = 0; k < seed_width; ++k) {
    seed_score += matrix.score(s0[anchor0 + k], s1[anchor1 + k]);
  }

  // Backward half on reversed prefixes.
  std::vector<std::uint8_t> rev0(s0.begin(), s0.begin() + static_cast<std::ptrdiff_t>(anchor0));
  std::vector<std::uint8_t> rev1(s1.begin(), s1.begin() + static_cast<std::ptrdiff_t>(anchor1));
  std::reverse(rev0.begin(), rev0.end());
  std::reverse(rev1.begin(), rev1.end());
  const HalfExtension back = xdrop_gapped_half(rev0, rev1, matrix, params);

  // Forward half on suffixes past the seed.
  const HalfExtension fwd = xdrop_gapped_half(
      s0.subspan(anchor0 + seed_width), s1.subspan(anchor1 + seed_width),
      matrix, params);

  Alignment out;
  out.score = back.score + seed_score + fwd.score;
  out.begin0 = anchor0 - back.end0;
  out.begin1 = anchor1 - back.end1;
  out.end0 = anchor0 + seed_width + fwd.end0;
  out.end1 = anchor1 + seed_width + fwd.end1;

  if (with_traceback) {
    // Re-align the discovered region with a full anchored DP to recover
    // the operation list (and possibly a slightly better score, since the
    // X-drop halves prune conservatively).
    const auto a = s0.subspan(out.begin0, out.end0 - out.begin0);
    const auto b = s1.subspan(out.begin1, out.end1 - out.begin1);
    TracebackDP dp(a, b, matrix, params, /*local=*/true);
    Alignment inner = dp.traceback(/*local=*/true);
    out.score = std::max(out.score, inner.score);
    out.ops = std::move(inner.ops);
    const std::size_t b0 = out.begin0;
    const std::size_t b1 = out.begin1;
    out.begin0 = b0 + inner.begin0;
    out.begin1 = b1 + inner.begin1;
    out.end0 = b0 + inner.end0;
    out.end1 = b1 + inner.end1;
  }
  return out;
}

}  // namespace psc::align
