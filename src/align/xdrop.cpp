#include "align/xdrop.hpp"

#include <algorithm>
#include <stdexcept>

namespace psc::align {

UngappedExtension xdrop_ungapped_extend(std::span<const std::uint8_t> s0,
                                        std::span<const std::uint8_t> s1,
                                        std::size_t pos0, std::size_t pos1,
                                        std::size_t seed_width,
                                        const bio::SubstitutionMatrix& matrix,
                                        int x_drop) {
  if (pos0 + seed_width > s0.size() || pos1 + seed_width > s1.size()) {
    throw std::out_of_range("xdrop_ungapped_extend: seed outside sequences");
  }

  int seed_score = 0;
  for (std::size_t k = 0; k < seed_width; ++k) {
    seed_score += matrix.score(s0[pos0 + k], s1[pos1 + k]);
  }

  // Right extension: best gain beyond the seed's right edge.
  int right_gain = 0;
  std::size_t right_len = 0;
  {
    int running = 0;
    const std::size_t room =
        std::min(s0.size() - (pos0 + seed_width), s1.size() - (pos1 + seed_width));
    for (std::size_t k = 0; k < room; ++k) {
      running += matrix.score(s0[pos0 + seed_width + k], s1[pos1 + seed_width + k]);
      if (running > right_gain) {
        right_gain = running;
        right_len = k + 1;
      }
      if (right_gain - running > x_drop) break;
    }
  }

  // Left extension: mirror image.
  int left_gain = 0;
  std::size_t left_len = 0;
  {
    int running = 0;
    const std::size_t room = std::min(pos0, pos1);
    for (std::size_t k = 1; k <= room; ++k) {
      running += matrix.score(s0[pos0 - k], s1[pos1 - k]);
      if (running > left_gain) {
        left_gain = running;
        left_len = k;
      }
      if (left_gain - running > x_drop) break;
    }
  }

  UngappedExtension out;
  out.score = seed_score + left_gain + right_gain;
  out.begin0 = pos0 - left_len;
  out.begin1 = pos1 - left_len;
  out.end0 = pos0 + seed_width + right_len;
  out.end1 = pos1 + seed_width + right_len;
  return out;
}

}  // namespace psc::align
