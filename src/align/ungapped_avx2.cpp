// AVX2 tier of the striped ungapped kernel. Kept in its own translation
// unit with per-function target("avx2") attributes so the rest of the
// library builds for the baseline ISA and the binary still runs (via the
// portable tier) on CPUs without AVX2; align/cpu_features.hpp gates entry
// at runtime.
#include "align/ungapped_simd.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)

#include <immintrin.h>

#include <stdexcept>

namespace psc::align {

bool ungapped_avx2_available() noexcept {
  const CpuFeatures& features = cpu_features();
  return features.avx2 && features.ssse3 && features.sse41;
}

__attribute__((target("avx2"))) void ungapped_score_profile_vs_striped_avx2(
    const ScoreProfile& profile, const index::StripedWindows& windows,
    std::vector<int>& scores) {
  if (profile.length() != windows.window_length()) {
    throw std::invalid_argument(
        "ungapped_score_profile_vs_striped_avx2: length mismatch");
  }
  const std::size_t count = windows.size();
  scores.resize(count);
  if (count == 0) return;

  constexpr std::size_t kLanes = index::StripedWindows::kLaneWidth;
  static_assert(kLanes == 16, "AVX2 tier carries 16 x 16-bit lanes");
  const std::size_t len = profile.length();
  const std::size_t stride = windows.padded_size();
  const __m128i fifteen = _mm_set1_epi8(15);
  const __m256i zero = _mm256_setzero_si256();

  for (std::size_t g = 0; g < stride; g += kLanes) {
    __m256i acc = zero;
    __m256i best = zero;
    for (std::size_t k = 0; k < len; ++k) {
      // 16 residues, one per lane/window, contiguous by construction.
      const __m128i resid = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(windows.position(k) + g));
      // 32-entry int8 profile row lookup without a memory gather: shuffle
      // both 16-byte halves by the low index bits, select by residue >= 16
      // (pshufb reads only bits 0-3 and 7 of each index, and encoded
      // residues are < 32, so r & 15 addresses the right cell of the
      // selected half).
      const std::int8_t* row = profile.row(k);
      const __m128i row_lo =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(row));
      const __m128i row_hi =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + 16));
      const __m128i hi_sel = _mm_cmpgt_epi8(resid, fifteen);
      const __m128i from_lo = _mm_shuffle_epi8(row_lo, resid);
      const __m128i from_hi = _mm_shuffle_epi8(row_hi, resid);
      const __m128i vals8 = _mm_blendv_epi8(from_lo, from_hi, hi_sel);
      // Widen to 16-bit and run the PE recurrence across all lanes.
      const __m256i vals = _mm256_cvtepi8_epi16(vals8);
      acc = _mm256_adds_epi16(acc, vals);
      acc = _mm256_max_epi16(acc, zero);
      best = _mm256_max_epi16(best, acc);
    }
    alignas(32) std::int16_t lanes[kLanes];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), best);
    const std::size_t limit = count - g < kLanes ? count - g : kLanes;
    for (std::size_t l = 0; l < limit; ++l) scores[g + l] = lanes[l];
  }
}

}  // namespace psc::align

#endif  // x86 && GNUC
