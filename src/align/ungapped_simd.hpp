// SIMD many-vs-one ungapped kernel: one IL0 window, pre-expanded into a
// query score profile, against 16 IL1 windows per vector iteration.
//
// The recurrence is the PE datapath's max-prefix-sum
//
//     acc  = max(0, acc + Sub(s0[k], s1[k]))
//     best = max(best, acc)
//
// carried in 16-bit saturating lanes. One vector lane plays the role of
// one processing element: where the RASC operator feeds the same IL1
// window to many PEs holding different IL0 windows, the software kernel
// transposes the duty -- one IL0 profile scored against many IL1 windows
// striped across lanes (see index::StripedWindows). Saturation at +32767
// is unreachable for any realistic window (W + 2N = 64 residues at
// BLOSUM62's +11 max tops out at 704), so the SIMD tiers reproduce the
// scalar kernel bit-for-bit; simd_kernel_applicable() guards the exotic
// configurations where they could not.
//
// Three tiers, selected at runtime (align/cpu_features.hpp):
//   avx2     -- 256-bit lanes; the profile-row lookup is two in-register
//               pshufb shuffles + blend (the 32-entry int8 row spans two
//               128-bit halves), then widen/adds/max.
//   portable -- plain C++ over fixed 16-lane arrays; the add/clamp/max
//               loops autovectorize to SSE2/NEON, the per-lane profile
//               lookup stays scalar.
//   scalar   -- the reference kernels in align/ungapped.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "align/cpu_features.hpp"
#include "align/score_profile.hpp"
#include "index/neighborhood.hpp"

namespace psc::align {

/// Host step-2 kernel selection (--step2-kernel). kAuto resolves to the
/// fastest kernel that is exact for the matrix/window configuration.
enum class UngappedKernel {
  kAuto,
  kScalar,   ///< ungapped_score_one_vs_many
  kBlocked,  ///< ungapped_score_one_vs_many_blocked (4-way unrolled)
  kSimd,     ///< profile + striped lanes (this header)
};

const char* ungapped_kernel_name(UngappedKernel kernel) noexcept;

/// Parses "auto" | "scalar" | "blocked" | "simd"; nullopt on anything else.
std::optional<UngappedKernel> parse_ungapped_kernel(
    std::string_view name) noexcept;

/// True when the SIMD tiers reproduce the scalar kernel bit-for-bit:
/// profile cells fit int8 and the best window score cannot reach the
/// int16 saturation point.
bool simd_kernel_applicable(const bio::SubstitutionMatrix& matrix,
                            std::size_t window_length) noexcept;

/// Resolves `requested` against the matrix/window configuration: kAuto
/// picks kSimd when applicable (else kBlocked); an explicit kSimd request
/// likewise falls back to kBlocked when the SIMD path would be inexact.
UngappedKernel resolve_ungapped_kernel(UngappedKernel requested,
                                       const bio::SubstitutionMatrix& matrix,
                                       std::size_t window_length) noexcept;

/// Scores `profile` against every window of `windows`; scores[i] receives
/// the max-prefix-sum score of window i. Dispatches to the best ISA tier
/// detected at startup. profile.length() must equal
/// windows.window_length().
void ungapped_score_profile_vs_striped(const ScoreProfile& profile,
                                       const index::StripedWindows& windows,
                                       std::vector<int>& scores);

/// Portable tier, callable directly (tests, benches).
void ungapped_score_profile_vs_striped_portable(
    const ScoreProfile& profile, const index::StripedWindows& windows,
    std::vector<int>& scores);

/// True when the AVX2 tier can run on this CPU.
bool ungapped_avx2_available() noexcept;

/// AVX2 tier; falls back to the portable tier on non-x86 builds. Must not
/// be called when ungapped_avx2_available() is false on an x86 build.
void ungapped_score_profile_vs_striped_avx2(
    const ScoreProfile& profile, const index::StripedWindows& windows,
    std::vector<int>& scores);

}  // namespace psc::align
