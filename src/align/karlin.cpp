#include "align/karlin.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace psc::align {

namespace {
/// phi(lambda) = sum_ij p_i p_j exp(lambda s_ij). phi(0) = 1; with a
/// negative expected score and at least one positive score, phi dips below
/// 1 then grows without bound, so a unique positive root of phi = 1 exists.
double phi(double lambda, const bio::SubstitutionMatrix& matrix,
           const std::array<double, bio::kNumAminoAcids>& freq) {
  double sum = 0.0;
  for (std::size_t i = 0; i < bio::kNumAminoAcids; ++i) {
    for (std::size_t j = 0; j < bio::kNumAminoAcids; ++j) {
      sum += freq[i] * freq[j] *
             std::exp(lambda * matrix.score(static_cast<bio::Residue>(i),
                                            static_cast<bio::Residue>(j)));
    }
  }
  return sum;
}
}  // namespace

KarlinParams solve_karlin(
    const bio::SubstitutionMatrix& matrix,
    const std::array<double, bio::kNumAminoAcids>& freq) {
  double expected = 0.0;
  int max_score = 0;
  for (std::size_t i = 0; i < bio::kNumAminoAcids; ++i) {
    for (std::size_t j = 0; j < bio::kNumAminoAcids; ++j) {
      const int s = matrix.score(static_cast<bio::Residue>(i),
                                 static_cast<bio::Residue>(j));
      expected += freq[i] * freq[j] * s;
      max_score = std::max(max_score, s);
    }
  }
  if (expected >= 0.0) {
    throw std::invalid_argument(
        "solve_karlin: expected score must be negative");
  }
  if (max_score <= 0) {
    throw std::invalid_argument("solve_karlin: no positive score in matrix");
  }

  // Bracket the positive root of phi(lambda) = 1: phi'(0) = expected < 0,
  // so phi < 1 just right of zero; grow hi until phi(hi) > 1.
  double hi = 0.5;
  while (phi(hi, matrix, freq) < 1.0) hi *= 2.0;
  double lo = 0.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (phi(mid, matrix, freq) < 1.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double lambda = 0.5 * (lo + hi);

  // H = lambda * sum_ij q_ij s_ij where q_ij = p_i p_j exp(lambda s_ij)
  // are the target (alignment) frequencies.
  double h = 0.0;
  for (std::size_t i = 0; i < bio::kNumAminoAcids; ++i) {
    for (std::size_t j = 0; j < bio::kNumAminoAcids; ++j) {
      const int s = matrix.score(static_cast<bio::Residue>(i),
                                 static_cast<bio::Residue>(j));
      h += freq[i] * freq[j] * std::exp(lambda * s) * lambda * s;
    }
  }

  KarlinParams out;
  out.lambda = lambda;
  out.h = h;
  out.k = 0.1;  // documented fallback; presets carry exact published values
  return out;
}

KarlinParams blosum62_ungapped() {
  return KarlinParams{0.3176, 0.134, 0.4012};
}

KarlinParams blosum62_gapped_11_1() {
  return KarlinParams{0.267, 0.041, 0.14};
}

double bit_score(int raw_score, const KarlinParams& params) {
  return (params.lambda * raw_score - std::log(params.k)) / std::log(2.0);
}

double e_value(int raw_score, double m, double n, const KarlinParams& params) {
  return params.k * m * n * std::exp(-params.lambda * raw_score);
}

std::array<double, bio::kNumAminoAcids> residue_frequencies(
    std::span<const std::uint8_t> sequence) {
  std::array<double, bio::kNumAminoAcids> freq{};
  std::size_t standard = 0;
  for (const std::uint8_t r : sequence) {
    if (r < bio::kNumAminoAcids) {
      freq[r] += 1.0;
      ++standard;
    }
  }
  if (standard == 0) return bio::robinson_frequencies();
  for (double& f : freq) f /= static_cast<double>(standard);
  return freq;
}

KarlinParams composition_adjusted(std::span<const std::uint8_t> query,
                                  const bio::SubstitutionMatrix& matrix,
                                  const KarlinParams& base) {
  // Blend toward the background slightly so short queries with extreme
  // compositions (some residues absent) still admit a root.
  auto freq = residue_frequencies(query);
  const auto& background = bio::robinson_frequencies();
  for (std::size_t i = 0; i < freq.size(); ++i) {
    freq[i] = 0.9 * freq[i] + 0.1 * background[i];
  }
  try {
    KarlinParams adjusted = solve_karlin(matrix, freq);
    adjusted.k = base.k;  // preset K; lambda carries the adjustment
    // Gapped lambda sits below the ungapped solution by a roughly
    // constant factor (NCBI: 0.267 / 0.3176 for BLOSUM62 11/1); apply
    // the same ratio so adjusted gapped E-values stay calibrated.
    const KarlinParams standard = solve_karlin(matrix);
    if (standard.lambda > 0.0) {
      adjusted.lambda *= base.lambda / standard.lambda;
      adjusted.h *= base.lambda / standard.lambda;
    }
    return adjusted;
  } catch (const std::invalid_argument&) {
    return base;
  }
}

int score_for_e_value(double target_e, double m, double n,
                      const KarlinParams& params) {
  if (target_e <= 0.0) {
    throw std::invalid_argument("score_for_e_value: E must be positive");
  }
  const double raw =
      std::log(params.k * m * n / target_e) / params.lambda;
  return static_cast<int>(std::ceil(raw));
}

}  // namespace psc::align
