#include "align/ungapped_simd.hpp"

#include <algorithm>
#include <stdexcept>

namespace psc::align {

const char* ungapped_kernel_name(UngappedKernel kernel) noexcept {
  switch (kernel) {
    case UngappedKernel::kAuto: return "auto";
    case UngappedKernel::kScalar: return "scalar";
    case UngappedKernel::kBlocked: return "blocked";
    case UngappedKernel::kSimd: return "simd";
  }
  return "unknown";
}

std::optional<UngappedKernel> parse_ungapped_kernel(
    std::string_view name) noexcept {
  if (name == "auto") return UngappedKernel::kAuto;
  if (name == "scalar") return UngappedKernel::kScalar;
  if (name == "blocked") return UngappedKernel::kBlocked;
  if (name == "simd") return UngappedKernel::kSimd;
  return std::nullopt;
}

bool simd_kernel_applicable(const bio::SubstitutionMatrix& matrix,
                            std::size_t window_length) noexcept {
  if (!ScoreProfile::representable(matrix)) return false;
  // The running score is clamped at zero, so the only overflow risk is the
  // all-positive upper bound length * max_score hitting int16 saturation.
  const std::int64_t max_gain = std::max<std::int64_t>(0, matrix.max_score());
  return static_cast<std::int64_t>(window_length) * max_gain <= 32767;
}

UngappedKernel resolve_ungapped_kernel(UngappedKernel requested,
                                       const bio::SubstitutionMatrix& matrix,
                                       std::size_t window_length) noexcept {
  switch (requested) {
    case UngappedKernel::kScalar:
    case UngappedKernel::kBlocked:
      return requested;
    case UngappedKernel::kAuto:
    case UngappedKernel::kSimd:
      return simd_kernel_applicable(matrix, window_length)
                 ? UngappedKernel::kSimd
                 : UngappedKernel::kBlocked;
  }
  return UngappedKernel::kBlocked;
}

namespace {

void check_lengths(const ScoreProfile& profile,
                   const index::StripedWindows& windows) {
  if (profile.length() != windows.window_length()) {
    throw std::invalid_argument(
        "ungapped_score_profile_vs_striped: length mismatch");
  }
}

}  // namespace

void ungapped_score_profile_vs_striped_portable(
    const ScoreProfile& profile, const index::StripedWindows& windows,
    std::vector<int>& scores) {
  check_lengths(profile, windows);
  const std::size_t count = windows.size();
  scores.resize(count);
  if (count == 0) return;

  constexpr std::size_t kLanes = index::StripedWindows::kLaneWidth;
  const std::size_t len = profile.length();
  const std::size_t stride = windows.padded_size();

  for (std::size_t g = 0; g < stride; g += kLanes) {
    std::int16_t acc[kLanes] = {};
    std::int16_t best[kLanes] = {};
    std::int16_t vals[kLanes];
    for (std::size_t k = 0; k < len; ++k) {
      const std::uint8_t* resid = windows.position(k) + g;
      const std::int8_t* row = profile.row(k);
      for (std::size_t l = 0; l < kLanes; ++l) vals[l] = row[resid[l]];
      // Split arithmetic loop: no loads with data-dependent addresses, so
      // it autovectorizes to SSE2/NEON saturating-free int16 ops (the
      // explicit clamp reproduces adds_epi16's upper saturation).
      for (std::size_t l = 0; l < kLanes; ++l) {
        int t = acc[l] + vals[l];
        t = std::min(t, 32767);
        t = std::max(t, 0);
        acc[l] = static_cast<std::int16_t>(t);
        best[l] = std::max(best[l], acc[l]);
      }
    }
    const std::size_t limit = std::min(kLanes, count - g);
    for (std::size_t l = 0; l < limit; ++l) scores[g + l] = best[l];
  }
}

void ungapped_score_profile_vs_striped(const ScoreProfile& profile,
                                       const index::StripedWindows& windows,
                                       std::vector<int>& scores) {
  static const SimdTier tier = best_simd_tier();
  if (tier == SimdTier::kAvx2) {
    ungapped_score_profile_vs_striped_avx2(profile, windows, scores);
    return;
  }
  ungapped_score_profile_vs_striped_portable(profile, windows, scores);
}

#if !(defined(__x86_64__) || defined(__i386__)) || !defined(__GNUC__)

bool ungapped_avx2_available() noexcept { return false; }

void ungapped_score_profile_vs_striped_avx2(
    const ScoreProfile& profile, const index::StripedWindows& windows,
    std::vector<int>& scores) {
  ungapped_score_profile_vs_striped_portable(profile, windows, scores);
}

#endif

}  // namespace psc::align
