// Seed models: how a W-residue word maps to an index key.
//
// The paper indexes both banks by words of W amino acids (section 2.1) and
// uses a *subset seed* of W=4 (section 4.4, citing Peterlongo et al.,
// PBC-07) rather than BLAST's two-hit 3-mer heuristic: at each seed
// position the amino-acid alphabet is partitioned into groups, and two
// words match when their residues fall in the same group column-wise.
// A contiguous exact-match model is the degenerate case where every
// position keeps all twenty groups.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "bio/alphabet.hpp"

namespace psc::index {

/// Index key of a seed word; mixed-radix over per-position group counts.
using SeedKey = std::uint32_t;

/// Returned for words containing non-standard residues (X, B, Z, stops):
/// such words are never indexed, matching BLAST's masking behaviour.
inline constexpr SeedKey kInvalidSeedKey = 0xffffffffu;

class SeedModel {
 public:
  /// Builds a model from per-position groupings. `position_groups[p]` maps
  /// each standard residue code (0..19) to its group id at position p;
  /// group ids must be dense in [0, group_count_p).
  explicit SeedModel(std::string name,
                     std::vector<std::array<std::uint8_t, bio::kNumAminoAcids>>
                         position_groups);

  /// Exact-match contiguous seed of width `w` (20 groups per position).
  static SeedModel contiguous(std::size_t w);

  /// The library's default subset seed of width 4: exact match on the two
  /// outer positions, similarity groups (12 classes) on the two inner
  /// positions. This follows the transitive subset-seed construction of
  /// Peterlongo et al. used by the paper.
  static SeedModel subset_w4();

  /// Width-3 exact seed, the word size of the tblastn baseline.
  static SeedModel blast_w3();

  /// Coarser width-4 subset seed (12-class outer positions, Murphy-8
  /// inner positions; key space 9,216). Used by the timing benches to
  /// keep the *index-list depth per key* in the paper's regime when the
  /// data is scaled down ~50x: the paper's nr-scale banks produce deep
  /// ILs under the 57,600-key seed; scaled banks reproduce that depth
  /// under a proportionally smaller key space ("weak scaling" of the
  /// index -- see DESIGN.md).
  static SeedModel subset_w4_coarse();

  const std::string& name() const { return name_; }
  std::size_t width() const { return radices_.size(); }

  /// Total number of index keys (product of per-position group counts) --
  /// the paper's "W^alpha entry tables" (their notation for alpha^W).
  std::size_t key_space() const { return key_space_; }

  /// Number of groups at position p.
  std::size_t groups_at(std::size_t p) const { return radices_[p]; }

  /// Group id of residue r (0..19) at position p.
  std::uint8_t group_of(std::size_t p, std::uint8_t r) const {
    return groups_[p][r];
  }

  /// Stable 64-bit digest of the model *structure* (width, radices and
  /// every position's residue->group table; the name is excluded so a
  /// renamed-but-identical model still matches). Persisted by the index
  /// store so a saved table is only ever paired with the model that
  /// built it.
  std::uint64_t fingerprint() const noexcept;

  /// Key of the word starting at `word` (width() residues). Returns
  /// kInvalidSeedKey if any residue is non-standard.
  SeedKey key(const std::uint8_t* word) const noexcept {
    SeedKey k = 0;
    for (std::size_t p = 0; p < radices_.size(); ++p) {
      const std::uint8_t r = word[p];
      if (r >= bio::kNumAminoAcids) return kInvalidSeedKey;
      k = static_cast<SeedKey>(k * radices_[p] + groups_[p][r]);
    }
    return k;
  }

  /// True when two words produce the same key (convenience for tests and
  /// for the baseline's neighbourhood logic).
  bool matches(const std::uint8_t* a, const std::uint8_t* b) const noexcept {
    const SeedKey ka = key(a);
    return ka != kInvalidSeedKey && ka == key(b);
  }

  /// The 12-class similarity partition used by subset_w4's inner
  /// positions: {A} {C} {G} {H} {P} {W} {S,T} {R,K} {Q,E} {N,D} {I,L,M,V}
  /// {F,Y}. Exposed for tests and for documentation.
  static const std::array<std::uint8_t, bio::kNumAminoAcids>&
  similarity_groups12() noexcept;

  /// Murphy 8-class reduced alphabet: {LVIMC} {AG} {ST} {P} {FYW} {EDNQ}
  /// {KR} {H}; the inner positions of subset_w4_coarse.
  static const std::array<std::uint8_t, bio::kNumAminoAcids>&
  murphy_groups8() noexcept;

 private:
  std::string name_;
  std::vector<std::array<std::uint8_t, bio::kNumAminoAcids>> groups_;
  std::vector<std::uint32_t> radices_;
  std::size_t key_space_ = 0;
};

}  // namespace psc::index
