// Step 1 of the paper's algorithm: the per-bank index tables T0 and T1.
//
// "we construct two W^alpha entry tables T0 and T1 (one for each bank)...
// Each entry k of the table points to an index list (ILk) of sequence
// offsets where such a word occurs." (section 2.1)
//
// Layout is a classic two-pass counting sort: one flat occurrence array
// sorted by key, plus a key -> [begin,end) offset table. That keeps every
// index list (IL) contiguous, which is exactly the streaming order the
// accelerator's input controllers consume.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bio/sequence.hpp"
#include "index/seed_model.hpp"

namespace psc::index {

/// One seed occurrence: sequence number within the bank and residue
/// offset of the word's first position.
struct Occurrence {
  std::uint32_t sequence = 0;
  std::uint32_t offset = 0;

  friend bool operator==(const Occurrence&, const Occurrence&) = default;
};

class IndexTable {
 public:
  /// Indexes every width-W word of every sequence in `bank` under `model`.
  /// Words containing non-standard residues are skipped. A stride > 1
  /// samples every stride-th position (not used by the pipeline; exposed
  /// for experiments on index density).
  IndexTable(const bio::SequenceBank& bank, const SeedModel& model,
             std::size_t stride = 1);

  /// Multi-threaded construction: sequences are partitioned across
  /// workers, each counts into a private histogram, and per-key
  /// per-worker base offsets make the final layout *identical* to the
  /// serial build (occurrences within a key stay in bank order).
  /// `threads == 0` uses hardware concurrency.
  static IndexTable build_parallel(const bio::SequenceBank& bank,
                                   const SeedModel& model,
                                   std::size_t threads = 0,
                                   std::size_t stride = 1);

  /// Zero-copy construction over externally owned memory (the mmap-backed
  /// store reader, store/index_store.hpp): the table becomes a *view* and
  /// the caller must keep the backing memory alive and unchanged for the
  /// table's lifetime. Validates the layout invariants -- starts[0] == 0,
  /// monotone starts, starts.back() == occurrences.size() -- and throws
  /// std::invalid_argument on violation so a corrupt file cannot produce
  /// out-of-bounds list spans.
  static IndexTable from_raw_spans(std::span<const std::size_t> starts,
                                   std::span<const Occurrence> occurrences);

  /// True when the table views external memory (from_raw_spans) rather
  /// than owning its arrays.
  bool is_view() const { return starts_storage_.empty() && !starts_.empty(); }

  // Copies/moves must re-point the spans at the destination's storage
  // when the source owns its arrays (views keep aliasing the external
  // memory, whose lifetime the caller manages).
  IndexTable(const IndexTable& other);
  IndexTable& operator=(const IndexTable& other);
  IndexTable(IndexTable&& other) noexcept;
  IndexTable& operator=(IndexTable&& other) noexcept;
  ~IndexTable() = default;

  std::size_t key_space() const { return starts_.size() - 1; }
  std::size_t total_occurrences() const { return occurrences_.size(); }

  /// The raw arrays (store writer + tests). `starts()` has key_space()+1
  /// entries; `all_occurrences()` is every list concatenated in key order.
  std::span<const std::size_t> starts() const { return starts_; }
  std::span<const Occurrence> all_occurrences() const { return occurrences_; }

  /// Checks every occurrence addresses a real word start in `bank`
  /// (sequence in range, offset + width within the sequence). Used by the
  /// store loader so a stale or corrupted index can never index out of
  /// bounds during step 2.
  bool consistent_with(const bio::SequenceBank& bank,
                       std::size_t seed_width) const;

  /// The index list IL_k for a key: all occurrences of words mapping to k.
  std::span<const Occurrence> occurrences(SeedKey key) const {
    return {occurrences_.data() + starts_[key],
            occurrences_.data() + starts_[key + 1]};
  }

  std::size_t list_length(SeedKey key) const {
    return starts_[key + 1] - starts_[key];
  }

  /// Number of keys with a non-empty index list.
  std::size_t populated_keys() const;

  /// Length of the longest index list (drives accelerator batch sizing).
  std::size_t max_list_length() const;

  /// Sum over keys of |IL0_k| * |IL1_k| -- the number of ungapped
  /// extensions step 2 will perform between this table and `other`
  /// (the K0 x K1 product of section 2.1).
  static std::uint64_t pair_count(const IndexTable& t0, const IndexTable& t1);

 private:
  IndexTable() = default;  // for build_parallel / from_raw_spans

  /// Re-points the spans at the owned vectors after they are (re)filled.
  void adopt_storage();

  // The accessors above all go through these spans. An owning table
  // points them at the storage vectors below; a view (from_raw_spans)
  // points them at caller-owned memory and leaves the vectors empty.
  std::span<const std::size_t> starts_;      // key -> begin; size key_space+1
  std::span<const Occurrence> occurrences_;  // grouped by key

  std::vector<std::size_t> starts_storage_;
  std::vector<Occurrence> occurrences_storage_;
};

}  // namespace psc::index
