#include "index/neighborhood.hpp"

#include <stdexcept>

namespace psc::index {

void WindowBatch::append(const bio::SequenceBank& bank, const Occurrence& occ,
                         const WindowShape& shape) {
  if (shape.length() != window_length_) {
    throw std::invalid_argument("WindowBatch::append: shape/window length mismatch");
  }
  const bio::Sequence& seq = bank[occ.sequence];
  const auto seq_len = static_cast<std::int64_t>(seq.size());
  const std::int64_t begin =
      static_cast<std::int64_t>(occ.offset) - static_cast<std::int64_t>(shape.flank);

  const std::size_t base = residues_.size();
  residues_.resize(base + window_length_, bio::kUnknownX);
  for (std::size_t i = 0; i < window_length_; ++i) {
    const std::int64_t p = begin + static_cast<std::int64_t>(i);
    if (p >= 0 && p < seq_len) {
      residues_[base + i] = seq[static_cast<std::size_t>(p)];
    }
  }
  sources_.push_back(occ);
}

void extract_windows(const bio::SequenceBank& bank,
                     std::span<const Occurrence> list,
                     const WindowShape& shape, WindowBatch& out) {
  out.clear();
  for (const Occurrence& occ : list) out.append(bank, occ, shape);
}

void StripedWindows::assign(const WindowBatch& batch) {
  window_length_ = batch.window_length();
  count_ = batch.size();
  stride_ = (count_ + kLaneWidth - 1) / kLaneWidth * kLaneWidth;
  residues_.assign(window_length_ * stride_, bio::kUnknownX);
  const std::uint8_t* flat = batch.flat().data();
  for (std::size_t i = 0; i < count_; ++i) {
    const std::uint8_t* window = flat + i * window_length_;
    for (std::size_t k = 0; k < window_length_; ++k) {
      residues_[k * stride_ + i] = window[k];
    }
  }
}

}  // namespace psc::index
