#include "index/neighborhood.hpp"

#include <stdexcept>

namespace psc::index {

void WindowBatch::append(const bio::SequenceBank& bank, const Occurrence& occ,
                         const WindowShape& shape) {
  if (shape.length() != window_length_) {
    throw std::invalid_argument("WindowBatch::append: shape/window length mismatch");
  }
  const bio::Sequence& seq = bank[occ.sequence];
  const auto seq_len = static_cast<std::int64_t>(seq.size());
  const std::int64_t begin =
      static_cast<std::int64_t>(occ.offset) - static_cast<std::int64_t>(shape.flank);

  const std::size_t base = residues_.size();
  residues_.resize(base + window_length_, bio::kUnknownX);
  for (std::size_t i = 0; i < window_length_; ++i) {
    const std::int64_t p = begin + static_cast<std::int64_t>(i);
    if (p >= 0 && p < seq_len) {
      residues_[base + i] = seq[static_cast<std::size_t>(p)];
    }
  }
  sources_.push_back(occ);
}

void extract_windows(const bio::SequenceBank& bank,
                     std::span<const Occurrence> list,
                     const WindowShape& shape, WindowBatch& out) {
  out.clear();
  for (const Occurrence& occ : list) out.append(bank, occ, shape);
}

}  // namespace psc::index
