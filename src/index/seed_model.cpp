#include "index/seed_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace psc::index {

namespace {
std::array<std::uint8_t, bio::kNumAminoAcids> identity_groups() {
  std::array<std::uint8_t, bio::kNumAminoAcids> g{};
  for (std::size_t i = 0; i < g.size(); ++i) g[i] = static_cast<std::uint8_t>(i);
  return g;
}
}  // namespace

SeedModel::SeedModel(
    std::string name,
    std::vector<std::array<std::uint8_t, bio::kNumAminoAcids>> position_groups)
    : name_(std::move(name)), groups_(std::move(position_groups)) {
  if (groups_.empty()) {
    throw std::invalid_argument("SeedModel: zero-width seed");
  }
  radices_.reserve(groups_.size());
  key_space_ = 1;
  for (const auto& g : groups_) {
    const std::uint8_t max_group = *std::max_element(g.begin(), g.end());
    const std::uint32_t radix = static_cast<std::uint32_t>(max_group) + 1;
    radices_.push_back(radix);
    key_space_ *= radix;
    if (key_space_ > (1u << 28)) {
      throw std::invalid_argument("SeedModel: key space too large");
    }
  }
}

SeedModel SeedModel::contiguous(std::size_t w) {
  if (w == 0 || w > 6) {
    throw std::invalid_argument("SeedModel::contiguous: width must be 1..6");
  }
  std::vector<std::array<std::uint8_t, bio::kNumAminoAcids>> positions(
      w, identity_groups());
  return SeedModel("exact-w" + std::to_string(w), std::move(positions));
}

const std::array<std::uint8_t, bio::kNumAminoAcids>&
SeedModel::similarity_groups12() noexcept {
  // Partition in encoding order ARNDCQEGHILKMFPSTWYV:
  //  0:{A} 1:{R,K} 2:{N,D} 3:{C} 4:{Q,E} 5:{G} 6:{H} 7:{I,L,M,V}
  //  8:{F,Y} 9:{P} 10:{S,T} 11:{W}
  static const std::array<std::uint8_t, bio::kNumAminoAcids> kGroups = {
      /*A*/ 0, /*R*/ 1, /*N*/ 2, /*D*/ 2, /*C*/ 3, /*Q*/ 4, /*E*/ 4,
      /*G*/ 5, /*H*/ 6, /*I*/ 7, /*L*/ 7, /*K*/ 1, /*M*/ 7, /*F*/ 8,
      /*P*/ 9, /*S*/ 10, /*T*/ 10, /*W*/ 11, /*Y*/ 8, /*V*/ 7};
  return kGroups;
}

SeedModel SeedModel::subset_w4() {
  std::vector<std::array<std::uint8_t, bio::kNumAminoAcids>> positions;
  positions.push_back(identity_groups());
  positions.push_back(similarity_groups12());
  positions.push_back(similarity_groups12());
  positions.push_back(identity_groups());
  return SeedModel("subset-w4", std::move(positions));
}

SeedModel SeedModel::blast_w3() { return contiguous(3); }

const std::array<std::uint8_t, bio::kNumAminoAcids>&
SeedModel::murphy_groups8() noexcept {
  // Murphy et al. (2000) 8-letter alphabet in encoding order
  // ARNDCQEGHILKMFPSTWYV:
  //  0:{L,V,I,M,C} 1:{A,G} 2:{S,T} 3:{P} 4:{F,Y,W} 5:{E,D,N,Q} 6:{K,R} 7:{H}
  static const std::array<std::uint8_t, bio::kNumAminoAcids> kGroups = {
      /*A*/ 1, /*R*/ 6, /*N*/ 5, /*D*/ 5, /*C*/ 0, /*Q*/ 5, /*E*/ 5,
      /*G*/ 1, /*H*/ 7, /*I*/ 0, /*L*/ 0, /*K*/ 6, /*M*/ 0, /*F*/ 4,
      /*P*/ 3, /*S*/ 2, /*T*/ 2, /*W*/ 4, /*Y*/ 4, /*V*/ 0};
  return kGroups;
}

std::uint64_t SeedModel::fingerprint() const noexcept {
  // FNV-1a over the structural bytes; any change to width, a radix or a
  // single group assignment changes the digest.
  std::uint64_t h = 14695981039346656037ull;
  auto mix = [&h](std::uint64_t byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  mix(groups_.size());
  for (std::size_t p = 0; p < groups_.size(); ++p) {
    mix(radices_[p]);
    for (const std::uint8_t g : groups_[p]) mix(g);
  }
  return h;
}

SeedModel SeedModel::subset_w4_coarse() {
  std::vector<std::array<std::uint8_t, bio::kNumAminoAcids>> positions;
  positions.push_back(similarity_groups12());
  positions.push_back(murphy_groups8());
  positions.push_back(murphy_groups8());
  positions.push_back(similarity_groups12());
  return SeedModel("subset-w4-coarse", std::move(positions));
}

}  // namespace psc::index
