#include "index/index_table.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace psc::index {

IndexTable::IndexTable(const bio::SequenceBank& bank, const SeedModel& model,
                       std::size_t stride) {
  if (stride == 0) throw std::invalid_argument("IndexTable: stride must be >= 1");
  const std::size_t w = model.width();
  const std::size_t keys = model.key_space();
  starts_.assign(keys + 1, 0);

  // Pass 1: count occurrences per key (counts land in starts_[key + 1] so
  // the prefix sum below turns them into begin offsets directly).
  for (std::size_t s = 0; s < bank.size(); ++s) {
    const bio::Sequence& seq = bank[s];
    if (seq.size() < w) continue;
    const std::uint8_t* data = seq.data();
    const std::size_t last = seq.size() - w;
    for (std::size_t pos = 0; pos <= last; pos += stride) {
      const SeedKey key = model.key(data + pos);
      if (key != kInvalidSeedKey) ++starts_[key + 1];
    }
  }
  for (std::size_t k = 0; k < keys; ++k) starts_[k + 1] += starts_[k];

  // Pass 2: place occurrences. cursor[k] tracks the next free slot.
  occurrences_.resize(starts_[keys]);
  std::vector<std::size_t> cursor(starts_.begin(), starts_.end() - 1);
  for (std::size_t s = 0; s < bank.size(); ++s) {
    const bio::Sequence& seq = bank[s];
    if (seq.size() < w) continue;
    const std::uint8_t* data = seq.data();
    const std::size_t last = seq.size() - w;
    for (std::size_t pos = 0; pos <= last; pos += stride) {
      const SeedKey key = model.key(data + pos);
      if (key == kInvalidSeedKey) continue;
      occurrences_[cursor[key]++] = Occurrence{
          static_cast<std::uint32_t>(s), static_cast<std::uint32_t>(pos)};
    }
  }
}

IndexTable IndexTable::build_parallel(const bio::SequenceBank& bank,
                                      const SeedModel& model,
                                      std::size_t threads,
                                      std::size_t stride) {
  if (stride == 0) throw std::invalid_argument("IndexTable: stride must be >= 1");
  const std::size_t workers =
      threads == 0 ? util::default_thread_count() : threads;
  const std::size_t w = model.width();
  const std::size_t keys = model.key_space();

  IndexTable table;
  table.starts_.assign(keys + 1, 0);

  const auto chunks = util::ThreadPool::blocks(0, bank.size(), workers);
  if (chunks.empty()) return table;
  util::ThreadPool pool(chunks.size());

  // Pass 1: per-chunk histograms.
  std::vector<std::vector<std::size_t>> counts(
      chunks.size(), std::vector<std::size_t>(keys, 0));
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    pool.submit([&, c] {
      auto& local = counts[c];
      for (std::size_t s = chunks[c].first; s < chunks[c].second; ++s) {
        const bio::Sequence& seq = bank[s];
        if (seq.size() < w) continue;
        const std::uint8_t* data = seq.data();
        const std::size_t last = seq.size() - w;
        for (std::size_t pos = 0; pos <= last; pos += stride) {
          const SeedKey key = model.key(data + pos);
          if (key != kInvalidSeedKey) ++local[key];
        }
      }
    });
  }
  pool.wait_idle();

  // Merge: global starts plus each chunk's base cursor per key, laid out
  // so chunk order within a key matches bank order (serial equivalence).
  std::vector<std::vector<std::size_t>> cursors(
      chunks.size(), std::vector<std::size_t>(keys, 0));
  std::size_t running = 0;
  for (std::size_t k = 0; k < keys; ++k) {
    table.starts_[k] = running;
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      cursors[c][k] = running;
      running += counts[c][k];
    }
  }
  table.starts_[keys] = running;
  table.occurrences_.resize(running);

  // Pass 2: parallel placement through the per-chunk cursors.
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    pool.submit([&, c] {
      auto& cursor = cursors[c];
      for (std::size_t s = chunks[c].first; s < chunks[c].second; ++s) {
        const bio::Sequence& seq = bank[s];
        if (seq.size() < w) continue;
        const std::uint8_t* data = seq.data();
        const std::size_t last = seq.size() - w;
        for (std::size_t pos = 0; pos <= last; pos += stride) {
          const SeedKey key = model.key(data + pos);
          if (key == kInvalidSeedKey) continue;
          table.occurrences_[cursor[key]++] = Occurrence{
              static_cast<std::uint32_t>(s), static_cast<std::uint32_t>(pos)};
        }
      }
    });
  }
  pool.wait_idle();
  return table;
}

std::size_t IndexTable::populated_keys() const {
  std::size_t n = 0;
  for (std::size_t k = 0; k + 1 < starts_.size(); ++k) {
    if (starts_[k + 1] > starts_[k]) ++n;
  }
  return n;
}

std::size_t IndexTable::max_list_length() const {
  std::size_t best = 0;
  for (std::size_t k = 0; k + 1 < starts_.size(); ++k) {
    best = std::max(best, starts_[k + 1] - starts_[k]);
  }
  return best;
}

std::uint64_t IndexTable::pair_count(const IndexTable& t0,
                                     const IndexTable& t1) {
  if (t0.key_space() != t1.key_space()) {
    throw std::invalid_argument("pair_count: tables use different seed models");
  }
  std::uint64_t total = 0;
  for (std::size_t k = 0; k < t0.key_space(); ++k) {
    total += static_cast<std::uint64_t>(t0.list_length(static_cast<SeedKey>(k))) *
             t1.list_length(static_cast<SeedKey>(k));
  }
  return total;
}

}  // namespace psc::index
