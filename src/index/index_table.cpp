#include "index/index_table.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "util/executor.hpp"
#include "util/executor.hpp"

namespace psc::index {

void IndexTable::adopt_storage() {
  starts_ = starts_storage_;
  occurrences_ = occurrences_storage_;
}

IndexTable::IndexTable(const IndexTable& other)
    : starts_storage_(other.starts_storage_),
      occurrences_storage_(other.occurrences_storage_) {
  if (other.is_view()) {
    starts_ = other.starts_;
    occurrences_ = other.occurrences_;
  } else {
    adopt_storage();
  }
}

IndexTable& IndexTable::operator=(const IndexTable& other) {
  if (this == &other) return *this;
  starts_storage_ = other.starts_storage_;
  occurrences_storage_ = other.occurrences_storage_;
  if (other.is_view()) {
    starts_ = other.starts_;
    occurrences_ = other.occurrences_;
  } else {
    adopt_storage();
  }
  return *this;
}

IndexTable::IndexTable(IndexTable&& other) noexcept {
  const bool view = other.is_view();
  starts_storage_ = std::move(other.starts_storage_);
  occurrences_storage_ = std::move(other.occurrences_storage_);
  if (view) {
    starts_ = other.starts_;
    occurrences_ = other.occurrences_;
  } else {
    // Vector move transfers the heap buffer, so re-pointing at our own
    // storage lands on the same (still-live) data.
    adopt_storage();
  }
  other.starts_ = {};
  other.occurrences_ = {};
}

IndexTable& IndexTable::operator=(IndexTable&& other) noexcept {
  if (this == &other) return *this;
  const bool view = other.is_view();
  starts_storage_ = std::move(other.starts_storage_);
  occurrences_storage_ = std::move(other.occurrences_storage_);
  if (view) {
    starts_ = other.starts_;
    occurrences_ = other.occurrences_;
  } else {
    adopt_storage();
  }
  other.starts_ = {};
  other.occurrences_ = {};
  return *this;
}

IndexTable IndexTable::from_raw_spans(std::span<const std::size_t> starts,
                                      std::span<const Occurrence> occurrences) {
  if (starts.empty()) {
    throw std::invalid_argument("IndexTable::from_raw_spans: empty starts");
  }
  if (starts.front() != 0) {
    throw std::invalid_argument(
        "IndexTable::from_raw_spans: starts[0] must be 0");
  }
  for (std::size_t k = 0; k + 1 < starts.size(); ++k) {
    if (starts[k] > starts[k + 1]) {
      throw std::invalid_argument(
          "IndexTable::from_raw_spans: starts not monotone");
    }
  }
  if (starts.back() != occurrences.size()) {
    throw std::invalid_argument(
        "IndexTable::from_raw_spans: starts.back() != occurrences.size()");
  }
  IndexTable table;
  table.starts_ = starts;
  table.occurrences_ = occurrences;
  return table;
}

bool IndexTable::consistent_with(const bio::SequenceBank& bank,
                                 std::size_t seed_width) const {
  // Precomputed "last valid offset + 1" per sequence keeps the hot loop
  // to two array reads and one compare -- this runs over every
  // occurrence of an mmap-loaded table on the store's trust boundary.
  if (bank.empty()) return occurrences_.empty();
  std::vector<std::uint32_t> offset_limits(bank.size());
  for (std::size_t i = 0; i < bank.size(); ++i) {
    const std::size_t length = bank[i].size();
    const std::size_t limit = length < seed_width ? 0 : length - seed_width + 1;
    offset_limits[i] =
        static_cast<std::uint32_t>(std::min<std::size_t>(limit, UINT32_MAX));
  }
  const auto count = static_cast<std::uint32_t>(offset_limits.size());
  bool ok = true;  // accumulated instead of early-exited so the loop unrolls
  for (const Occurrence& occ : occurrences_) {
    ok &= occ.sequence < count;
    ok &= occ.offset < offset_limits[occ.sequence < count ? occ.sequence : 0];
  }
  return ok;
}

IndexTable::IndexTable(const bio::SequenceBank& bank, const SeedModel& model,
                       std::size_t stride) {
  if (stride == 0) throw std::invalid_argument("IndexTable: stride must be >= 1");
  const std::size_t w = model.width();
  const std::size_t keys = model.key_space();
  std::vector<std::size_t>& starts = starts_storage_;
  std::vector<Occurrence>& occurrences = occurrences_storage_;
  starts.assign(keys + 1, 0);

  // Pass 1: count occurrences per key (counts land in starts[key + 1] so
  // the prefix sum below turns them into begin offsets directly).
  for (std::size_t s = 0; s < bank.size(); ++s) {
    const bio::Sequence& seq = bank[s];
    if (seq.size() < w) continue;
    const std::uint8_t* data = seq.data();
    const std::size_t last = seq.size() - w;
    for (std::size_t pos = 0; pos <= last; pos += stride) {
      const SeedKey key = model.key(data + pos);
      if (key != kInvalidSeedKey) ++starts[key + 1];
    }
  }
  for (std::size_t k = 0; k < keys; ++k) starts[k + 1] += starts[k];

  // Pass 2: place occurrences. cursor[k] tracks the next free slot.
  occurrences.resize(starts[keys]);
  std::vector<std::size_t> cursor(starts.begin(), starts.end() - 1);
  for (std::size_t s = 0; s < bank.size(); ++s) {
    const bio::Sequence& seq = bank[s];
    if (seq.size() < w) continue;
    const std::uint8_t* data = seq.data();
    const std::size_t last = seq.size() - w;
    for (std::size_t pos = 0; pos <= last; pos += stride) {
      const SeedKey key = model.key(data + pos);
      if (key == kInvalidSeedKey) continue;
      occurrences[cursor[key]++] = Occurrence{
          static_cast<std::uint32_t>(s), static_cast<std::uint32_t>(pos)};
    }
  }
  adopt_storage();
}

IndexTable IndexTable::build_parallel(const bio::SequenceBank& bank,
                                      const SeedModel& model,
                                      std::size_t threads,
                                      std::size_t stride) {
  if (stride == 0) throw std::invalid_argument("IndexTable: stride must be >= 1");
  const std::size_t workers =
      threads == 0 ? util::default_thread_count() : threads;
  const std::size_t w = model.width();
  const std::size_t keys = model.key_space();

  IndexTable table;
  table.starts_storage_.assign(keys + 1, 0);
  table.adopt_storage();

  const auto chunks = util::blocks(0, bank.size(), workers);
  if (chunks.empty()) return table;
  util::Executor::TaskGroup group(util::Executor::shared(), workers);

  // Pass 1: per-chunk histograms.
  std::vector<std::vector<std::size_t>> counts(
      chunks.size(), std::vector<std::size_t>(keys, 0));
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    group.run([&, c] {
      auto& local = counts[c];
      for (std::size_t s = chunks[c].first; s < chunks[c].second; ++s) {
        const bio::Sequence& seq = bank[s];
        if (seq.size() < w) continue;
        const std::uint8_t* data = seq.data();
        const std::size_t last = seq.size() - w;
        for (std::size_t pos = 0; pos <= last; pos += stride) {
          const SeedKey key = model.key(data + pos);
          if (key != kInvalidSeedKey) ++local[key];
        }
      }
    });
  }
  group.wait();

  // Merge: global starts plus each chunk's base cursor per key, laid out
  // so chunk order within a key matches bank order (serial equivalence).
  std::vector<std::vector<std::size_t>> cursors(
      chunks.size(), std::vector<std::size_t>(keys, 0));
  std::size_t running = 0;
  for (std::size_t k = 0; k < keys; ++k) {
    table.starts_storage_[k] = running;
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      cursors[c][k] = running;
      running += counts[c][k];
    }
  }
  table.starts_storage_[keys] = running;
  table.occurrences_storage_.resize(running);

  // Pass 2: parallel placement through the per-chunk cursors.
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    group.run([&, c] {
      auto& cursor = cursors[c];
      for (std::size_t s = chunks[c].first; s < chunks[c].second; ++s) {
        const bio::Sequence& seq = bank[s];
        if (seq.size() < w) continue;
        const std::uint8_t* data = seq.data();
        const std::size_t last = seq.size() - w;
        for (std::size_t pos = 0; pos <= last; pos += stride) {
          const SeedKey key = model.key(data + pos);
          if (key == kInvalidSeedKey) continue;
          table.occurrences_storage_[cursor[key]++] = Occurrence{
              static_cast<std::uint32_t>(s), static_cast<std::uint32_t>(pos)};
        }
      }
    });
  }
  group.wait();
  table.adopt_storage();
  return table;
}

std::size_t IndexTable::populated_keys() const {
  std::size_t n = 0;
  for (std::size_t k = 0; k + 1 < starts_.size(); ++k) {
    if (starts_[k + 1] > starts_[k]) ++n;
  }
  return n;
}

std::size_t IndexTable::max_list_length() const {
  std::size_t best = 0;
  for (std::size_t k = 0; k + 1 < starts_.size(); ++k) {
    best = std::max(best, starts_[k + 1] - starts_[k]);
  }
  return best;
}

std::uint64_t IndexTable::pair_count(const IndexTable& t0,
                                     const IndexTable& t1) {
  if (t0.key_space() != t1.key_space()) {
    throw std::invalid_argument("pair_count: tables use different seed models");
  }
  std::uint64_t total = 0;
  for (std::size_t k = 0; k < t0.key_space(); ++k) {
    total += static_cast<std::uint64_t>(t0.list_length(static_cast<SeedKey>(k))) *
             t1.list_length(static_cast<SeedKey>(k));
  }
  return total;
}

}  // namespace psc::index
