// Fixed-length seed neighbourhoods: the substrings S0, S1 "of length
// 2N + W composed of a seed of W characters with its left and right
// extensions of N characters" (paper, section 2.2) that the ungapped
// kernel and the PSC processing elements score.
//
// Positions that fall outside the sequence are padded with X, which scores
// mildly negative against everything under BLOSUM62; a maximal-scoring
// segment therefore never benefits from running into the padding, and the
// fixed window length the hardware requires is preserved.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bio/sequence.hpp"
#include "index/index_table.hpp"

namespace psc::index {

/// Geometry of the ungapped window.
struct WindowShape {
  std::size_t seed_width = 4;  ///< W
  std::size_t flank = 30;      ///< N

  std::size_t length() const { return seed_width + 2 * flank; }
};

/// A batch of equal-length windows stored back to back, each tagged with
/// the occurrence it came from. This is the flat stream format the RASC
/// input controllers DMA into the operator.
class WindowBatch {
 public:
  explicit WindowBatch(std::size_t window_length)
      : window_length_(window_length) {}

  std::size_t window_length() const { return window_length_; }
  std::size_t size() const { return sources_.size(); }
  bool empty() const { return sources_.empty(); }

  void clear() {
    residues_.clear();
    sources_.clear();
  }

  /// Residues of window i.
  std::span<const std::uint8_t> window(std::size_t i) const {
    return {residues_.data() + i * window_length_, window_length_};
  }

  const Occurrence& source(std::size_t i) const { return sources_[i]; }
  const std::vector<std::uint8_t>& flat() const { return residues_; }

  /// Appends the window centred on `occ`'s seed in `bank`, padding with X
  /// where the flank extends past either end of the sequence.
  void append(const bio::SequenceBank& bank, const Occurrence& occ,
              const WindowShape& shape);

 private:
  std::size_t window_length_;
  std::vector<std::uint8_t> residues_;
  std::vector<Occurrence> sources_;
};

/// Extracts windows for every occurrence in `list` into `out` (cleared
/// first). `out`'s window length must equal shape.length().
void extract_windows(const bio::SequenceBank& bank,
                     std::span<const Occurrence> list,
                     const WindowShape& shape, WindowBatch& out);

}  // namespace psc::index
