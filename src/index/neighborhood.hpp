// Fixed-length seed neighbourhoods: the substrings S0, S1 "of length
// 2N + W composed of a seed of W characters with its left and right
// extensions of N characters" (paper, section 2.2) that the ungapped
// kernel and the PSC processing elements score.
//
// Positions that fall outside the sequence are padded with X, which scores
// mildly negative against everything under BLOSUM62; a maximal-scoring
// segment therefore never benefits from running into the padding, and the
// fixed window length the hardware requires is preserved.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bio/sequence.hpp"
#include "index/index_table.hpp"

namespace psc::index {

/// Geometry of the ungapped window.
struct WindowShape {
  std::size_t seed_width = 4;  ///< W
  std::size_t flank = 30;      ///< N

  std::size_t length() const { return seed_width + 2 * flank; }
};

/// A batch of equal-length windows stored back to back, each tagged with
/// the occurrence it came from. This is the flat stream format the RASC
/// input controllers DMA into the operator.
class WindowBatch {
 public:
  explicit WindowBatch(std::size_t window_length)
      : window_length_(window_length) {}

  std::size_t window_length() const { return window_length_; }
  std::size_t size() const { return sources_.size(); }
  bool empty() const { return sources_.empty(); }

  void clear() {
    residues_.clear();
    sources_.clear();
  }

  /// Residues of window i.
  std::span<const std::uint8_t> window(std::size_t i) const {
    return {residues_.data() + i * window_length_, window_length_};
  }

  const Occurrence& source(std::size_t i) const { return sources_[i]; }
  const std::vector<std::uint8_t>& flat() const { return residues_; }

  /// Appends the window centred on `occ`'s seed in `bank`, padding with X
  /// where the flank extends past either end of the sequence.
  void append(const bio::SequenceBank& bank, const Occurrence& occ,
              const WindowShape& shape);

 private:
  std::size_t window_length_;
  std::vector<std::uint8_t> residues_;
  std::vector<Occurrence> sources_;
};

/// Extracts windows for every occurrence in `list` into `out` (cleared
/// first). `out`'s window length must equal shape.length().
void extract_windows(const bio::SequenceBank& bank,
                     std::span<const Occurrence> list,
                     const WindowShape& shape, WindowBatch& out);

/// A WindowBatch transposed into striped (position-major) order for the
/// SIMD many-vs-one kernel: residue of window i at position k lives at
/// position(k)[i], so the 16 windows a vector register carries read 16
/// contiguous bytes per position instead of 16 strided ones. The window
/// count is padded to a multiple of kLaneWidth with X so kernels never
/// need a remainder loop; padded lanes score like real windows and their
/// results are simply dropped.
class StripedWindows {
 public:
  /// Windows per vector group; matches the 16 x 16-bit lanes of a 256-bit
  /// register and divides evenly into the portable tier's lane arrays.
  static constexpr std::size_t kLaneWidth = 16;

  /// Rebuilds the striped image of `batch` (reuses storage across calls).
  void assign(const WindowBatch& batch);

  std::size_t window_length() const { return window_length_; }
  std::size_t size() const { return count_; }          ///< real windows
  std::size_t padded_size() const { return stride_; }  ///< incl. X lanes
  bool empty() const { return count_ == 0; }

  /// The padded_size() residues of position k, one byte per window.
  const std::uint8_t* position(std::size_t k) const {
    return residues_.data() + k * stride_;
  }

 private:
  std::size_t window_length_ = 0;
  std::size_t count_ = 0;
  std::size_t stride_ = 0;
  std::vector<std::uint8_t> residues_;
};

}  // namespace psc::index
