// The PSC operator's control plane (paper, section 3.1): two input
// controllers that turn window batches into residue streams, an output
// controller that drains the FIFO cascade, and the master controller FSM
// that sequences load / compute / drain phases over as many rounds as the
// IL0 list needs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "index/neighborhood.hpp"
#include "rasc/fifo.hpp"

namespace psc::rasc {

/// Streams the residues of a WindowBatch one per cycle, window after
/// window. Input Controller 0 feeds PE shift registers during the load
/// phase; Input Controller 1 broadcasts IL1 windows during compute.
class InputController {
 public:
  explicit InputController(const index::WindowBatch& batch)
      : batch_(&batch) {}

  bool exhausted() const {
    const std::size_t limit =
        limit_ < batch_->size() ? limit_ : batch_->size();
    return window_ >= limit;
  }

  std::size_t current_window() const { return window_; }

  /// Bounds the stream to windows [first, first+count) of the batch
  /// (used by the master controller to load one round's worth of IL0).
  void restrict(std::size_t first, std::size_t count);

  /// Rewinds to the start of the (possibly restricted) stream.
  void rewind();

  /// One cycle: emits the next residue. Returns nullopt when exhausted.
  struct Emission {
    std::uint8_t residue;
    std::uint32_t window_index;  ///< batch-relative window number
    bool window_complete;        ///< true on the window's last residue
  };
  std::optional<Emission> next();

 private:
  const index::WindowBatch* batch_;
  std::size_t first_ = 0;
  std::size_t limit_ = static_cast<std::size_t>(-1);
  std::size_t window_ = 0;
  std::size_t offset_ = 0;
};

/// Collects records surrendered by the FIFO cascade and hands them to the
/// host-facing result port.
class OutputController {
 public:
  void accept(const ResultRecord& record) { results_.push_back(record); }
  const std::vector<ResultRecord>& results() const { return results_; }
  std::vector<ResultRecord> take() { return std::move(results_); }
  void clear() { results_.clear(); }

 private:
  std::vector<ResultRecord> results_;
};

}  // namespace psc::rasc
