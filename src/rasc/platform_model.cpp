#include "rasc/platform_model.hpp"

#include <cmath>
#include <stdexcept>

namespace psc::rasc {

PlatformModel::PlatformModel(const PlatformConfig& config) : config_(config) {
  if (config_.dma_bandwidth <= 0.0) {
    throw std::invalid_argument("PlatformModel: dma_bandwidth <= 0");
  }
  if (config_.sram_bytes == 0) {
    throw std::invalid_argument("PlatformModel: sram_bytes == 0");
  }
}

double PlatformModel::transfer_seconds(std::size_t bytes) const {
  if (bytes == 0) return 0.0;
  return static_cast<double>(chunk_count(bytes)) * config_.dma_latency +
         static_cast<double>(bytes) / config_.dma_bandwidth;
}

std::size_t PlatformModel::chunk_count(std::size_t bytes) const {
  if (bytes == 0) return 0;
  return 1 + (bytes - 1) / config_.sram_bytes;
}

void PlatformModel::add_input_stream(std::size_t residues) {
  const std::size_t bytes = residues * config_.residue_bytes;
  bytes_in_ += bytes;
  input_seconds_ += transfer_seconds(bytes);
}

void PlatformModel::add_result_stream(std::size_t records) {
  const std::size_t bytes = records * config_.result_record_bytes;
  bytes_out_ += bytes;
  output_seconds_ += transfer_seconds(bytes);
}

void PlatformModel::add_invocation() {
  overhead_seconds_ += config_.invocation_overhead;
}

void PlatformModel::add_bitstream_load() {
  overhead_seconds_ += config_.bitstream_load_seconds;
}

void PlatformModel::reset() {
  input_seconds_ = 0.0;
  output_seconds_ = 0.0;
  overhead_seconds_ = 0.0;
  bytes_in_ = 0;
  bytes_out_ = 0;
}

}  // namespace psc::rasc
