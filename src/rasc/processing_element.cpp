#include "rasc/processing_element.hpp"

#include <stdexcept>

namespace psc::rasc {

ProcessingElement::ProcessingElement(std::size_t window_length,
                                     const bio::SubstitutionMatrix& rom)
    : window_(window_length, 0), rom_(&rom) {
  if (window_length == 0) {
    throw std::invalid_argument("ProcessingElement: zero window length");
  }
  fill_ = 0;
}

void ProcessingElement::load_residue(std::uint8_t residue,
                                     std::uint32_t il0_index) {
  if (loaded()) {
    throw std::logic_error("ProcessingElement::load_residue: already loaded");
  }
  if (fill_ == 0) il0_index_ = il0_index;
  window_[fill_++] = residue;
  phase_ = 0;
  score_ = 0;
  max_score_ = 0;
}

void ProcessingElement::reset() {
  fill_ = 0;
  phase_ = 0;
  score_ = 0;
  max_score_ = 0;
}

std::optional<int> ProcessingElement::compute_cycle(std::uint8_t il1_residue) {
  if (!loaded()) {
    throw std::logic_error("ProcessingElement::compute_cycle: not loaded");
  }
  // Shift-register read with feedback: position `phase_` re-enters the
  // register tail, so the window is intact for the next IL1 window.
  const std::uint8_t il0_residue = window_[phase_];
  score_ += rom_->score(il0_residue, il1_residue);
  if (score_ < 0) score_ = 0;
  if (score_ > max_score_) max_score_ = score_;

  ++phase_;
  if (phase_ < window_.size()) return std::nullopt;

  const int result = max_score_;
  phase_ = 0;
  score_ = 0;
  max_score_ = 0;
  return result;
}

int ProcessingElement::compute_window(const std::uint8_t* il1_window) {
  if (!loaded()) {
    throw std::logic_error("ProcessingElement::compute_window: not loaded");
  }
  // Raw ROM indexing: window residues are encoder output (always < 24),
  // so the clamping in SubstitutionMatrix::score is not needed here.
  const auto* cells = rom_->cells().data();
  int score = 0;
  int best = 0;
  for (std::size_t k = 0; k < window_.size(); ++k) {
    score += cells[window_[k] * bio::kProteinAlphabetSize + il1_window[k]];
    if (score < 0) score = 0;
    if (score > best) best = score;
  }
  return best;
}

}  // namespace psc::rasc
