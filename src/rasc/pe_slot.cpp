#include "rasc/pe_slot.hpp"

#include <stdexcept>

namespace psc::rasc {

PeSlot::PeSlot(std::size_t slot_index, std::size_t num_pes,
               std::size_t window_length, const bio::SubstitutionMatrix& rom,
               int threshold)
    : slot_index_(slot_index), threshold_(threshold) {
  if (num_pes == 0) throw std::invalid_argument("PeSlot: zero PEs");
  pes_.reserve(num_pes);
  for (std::size_t i = 0; i < num_pes; ++i) {
    pes_.emplace_back(window_length, rom);
  }
}

bool PeSlot::load_residue(std::uint8_t residue, std::uint32_t il0_index) {
  if (!has_free_pe()) {
    throw std::logic_error("PeSlot::load_residue: slot is full");
  }
  ProcessingElement& target = pes_[filling_];
  target.load_residue(residue, il0_index);
  if (target.loaded()) {
    ++loaded_;
    ++filling_;
    return true;
  }
  return false;
}

void PeSlot::reset() {
  for (auto& pe : pes_) pe.reset();
  loaded_ = 0;
  filling_ = 0;
}

void PeSlot::compute_cycle(std::uint8_t il1_residue, std::uint32_t il1_index,
                           std::vector<ResultRecord>& passing) {
  for (std::size_t i = 0; i < loaded_; ++i) {
    const std::optional<int> done = pes_[i].compute_cycle(il1_residue);
    if (done && *done >= threshold_) {
      passing.push_back(ResultRecord{pes_[i].il0_index(), il1_index, *done});
    }
  }
}

void PeSlot::compute_window(const std::uint8_t* il1_window,
                            std::uint32_t il1_index,
                            std::vector<ResultRecord>& passing) {
  for (std::size_t i = 0; i < loaded_; ++i) {
    const int score = pes_[i].compute_window(il1_window);
    if (score >= threshold_) {
      passing.push_back(ResultRecord{pes_[i].il0_index(), il1_index, score});
    }
  }
}

}  // namespace psc::rasc
